// The transport seam of the fetch pipeline.
//
// The paper's trust argument (§3) is what makes this interface small:
// an update is self-authenticating, so the TRANSPORT has no security
// obligations at all. Whatever carries the bytes — the discrete-event
// simnet, a real TCP socket to tred, sneakernet — the fetcher runs the
// identical parse → tag → pairing-check boundary on whatever arrives,
// and the identical liveness machinery (backoff, health, failover)
// around it. UpdateSource is that seam: the six lines of contract the
// Byzantine trust gate actually needs from a wire.
//
// Contract, shared by every implementation:
//   * mirrors are dense indices [0, mirror_count()); kOrigin optionally
//     names a distinguished last-resort endpoint (valid_mirror says
//     whether this source has one);
//   * request() is ONE request/response round trip: `on_reply` fires at
//     most once with the served bytes exactly as the peer sent them —
//     honest, corrupted, relabelled, or garbage. It may fire
//     synchronously (a blocking socket) or later (a simulated network);
//   * when no reply materializes — loss, timeout, a silent or shedding
//     mirror, framing damage — the callback simply never fires. The
//     CALLER owns retry timing; the source never retries on its own.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"

namespace tre::client {

/// One page of a mirror's archive scan, transport-agnostic: `updates`
/// carries the raw wire bytes of each item exactly as the peer sent
/// them (possibly hostile), `total`/`start` echo the peer's claim about
/// the archive extent so the caller can page through it.
struct RangePage {
  std::uint64_t total = 0;  // peer's claimed archive size
  std::uint64_t start = 0;  // index of updates.front() in the archive
  std::vector<Bytes> updates;
};

class UpdateSource {
 public:
  virtual ~UpdateSource() = default;

  /// Distinguished last-resort endpoint (the archive origin, when the
  /// source has one — see valid_mirror).
  static constexpr size_t kOrigin = static_cast<size_t>(-1);

  virtual size_t mirror_count() const = 0;

  /// Whether `idx` names an endpoint this source can reach. The default
  /// admits the dense range only; sources with an origin also admit
  /// kOrigin.
  virtual bool valid_mirror(size_t idx) const { return idx < mirror_count(); }

  /// One round trip against mirror `idx` for `tag`. `on_reply` receives
  /// the reply bytes verbatim (possibly hostile), at most once, possibly
  /// synchronously — or never, when no reply materializes.
  virtual void request(size_t idx, const std::string& tag,
                       std::function<void(Bytes)> on_reply) = 0;

  /// One archive-scan round trip against mirror `idx`: up to `max_count`
  /// consecutive updates starting at archive index `start`. Synchronous
  /// (catch-up is a bulk path, not a latency path); nullopt when the
  /// transport has no range facility (the default) or the round trip
  /// failed. Bytes are verbatim from the peer — the caller still owns
  /// the full parse → batch-verify trust gate.
  virtual std::optional<RangePage> request_range(size_t idx,
                                                 std::uint64_t start,
                                                 std::uint32_t max_count) {
    (void)idx;
    (void)start;
    (void)max_count;
    return std::nullopt;
  }

  /// One threshold-beacon round trip against mirror `idx`: the mirror's
  /// PARTIAL update s_i·H1(tag), as raw wire bytes
  /// (threshold::BasicPartialUpdate<B>::to_bytes, possibly hostile).
  /// Synchronous like request_range — collecting t-of-n partials is a
  /// quorum path, not a latency path. nullopt when the transport has no
  /// beacon facility (the default), the mirror holds no share, or the
  /// round trip failed. The caller owns the parse → tag → pairing gate
  /// (client::BasicUpdateFetcher::fetch_threshold).
  virtual std::optional<Bytes> request_partial(size_t idx,
                                               const std::string& tag) {
    (void)idx;
    (void)tag;
    return std::nullopt;
  }
};

}  // namespace tre::client
