// UpdateSource over the discrete-event simnet — the adapter that keeps
// every E18-style experiment running unchanged through the transport
// seam. One receiver node, one access link, one mirrored archive; a
// request() is exactly the MirroredArchive::request primitive the
// fetcher used to call directly, Byzantine replica behaviour and all.
#pragma once

#include "client/transport.h"
#include "simnet/mirrors.h"

namespace tre::client {

template <class B>
class BasicSimnetSource final : public UpdateSource {
 public:
  /// The archive must outlive the source; `receiver` is the polling
  /// node, `access_link` the loss/latency spec of its last-mile path.
  BasicSimnetSource(simnet::BasicMirroredArchive<B>& archive,
                    simnet::NodeId receiver, simnet::LinkSpec access_link)
      : archive_(archive), receiver_(receiver), access_link_(access_link) {}

  size_t mirror_count() const override { return archive_.mirror_count(); }

  /// The simnet archive HAS an origin, so kOrigin is reachable here.
  bool valid_mirror(size_t idx) const override {
    return idx == kOrigin || idx < archive_.mirror_count();
  }

  void request(size_t idx, const std::string& tag,
               std::function<void(Bytes)> on_reply) override {
    // Both sides spell the origin as size_t(-1); translate explicitly
    // anyway so neither constant silently owns the other.
    const size_t target =
        idx == kOrigin ? simnet::BasicMirroredArchive<B>::kOrigin : idx;
    archive_.request(receiver_, target, tag, access_link_,
                     std::move(on_reply));
  }

  /// Beacon seam: the origin holds no share, only mirror nodes issue
  /// partials — kOrigin is a silent miss here.
  std::optional<Bytes> request_partial(size_t idx,
                                       const std::string& tag) override {
    if (idx == kOrigin || idx >= archive_.mirror_count()) return std::nullopt;
    return archive_.partial_reply(idx, tag);
  }

 private:
  simnet::BasicMirroredArchive<B>& archive_;
  simnet::NodeId receiver_;
  simnet::LinkSpec access_link_;
};

using SimnetSource = BasicSimnetSource<core::Tre512Backend>;

}  // namespace tre::client
