// UpdateSource over real TCP sockets — the fetcher's road to tred.
//
// Each mirror slot is one daemon endpoint (host:port). request() is a
// blocking-with-deadline round trip in tred's framed protocol
// (daemon/frame.h): connect (lazily, connections persist across
// requests), send kGetUpdate, read one reply frame. A kUpdateReply
// delivers its payload to the callback VERBATIM — the payload may still
// be hostile; judging it is the fetcher's trust boundary, not ours. A
// kError reply, a timeout, framing damage, or a dropped connection
// deliver nothing: per the UpdateSource contract the callback simply
// never fires and the caller's retry machinery takes over. Framing
// damage and timeouts also drop the cached connection, so one poisoned
// byte stream can never desynchronize a later request.
//
// Synchronous delivery meets the discrete-event Timeline like this: the
// fetcher's reply either arrives before request() returns, or never —
// so the Timeline timeout the fetcher schedules is purely the "never"
// path. Callers drive `while (fetcher.busy()) timeline.advance_by(1)`.
//
// Beyond the fetcher's kGetUpdate, the transport exposes the rest of
// the protocol (get_key, get_range, ping) for tre_cli fetch --remote
// and catch-up tooling.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "client/transport.h"
#include "daemon/frame.h"

namespace tre::client {

class SocketTransport final : public UpdateSource {
 public:
  struct Endpoint {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
  };

  /// `io_timeout_ms` bounds EVERY socket wait (connect, send, reply).
  explicit SocketTransport(std::vector<Endpoint> endpoints,
                           int io_timeout_ms = 2000);
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  size_t mirror_count() const override { return endpoints_.size(); }

  /// No origin over sockets: every endpoint is just a daemon.
  void request(size_t idx, const std::string& tag,
               std::function<void(Bytes)> on_reply) override;

  /// kGetKey round trip; nullopt on any failure (see last_error()).
  std::optional<daemon::KeyReply> get_key(size_t idx);

  /// kGetRange round trip; nullopt on any failure.
  std::optional<daemon::RangeReply> get_range(size_t idx, std::uint64_t start,
                                              std::uint32_t max_count);

  /// The UpdateSource range seam, mapped onto kGetRange: lets the
  /// fetcher's batch-verified catch-up run transport-generically.
  std::optional<RangePage> request_range(size_t idx, std::uint64_t start,
                                         std::uint32_t max_count) override {
    std::optional<daemon::RangeReply> reply = get_range(idx, start, max_count);
    if (!reply) return std::nullopt;
    return RangePage{reply->total, reply->start, std::move(reply->updates)};
  }

  /// The UpdateSource threshold-beacon seam, mapped onto kGetPartial:
  /// one round trip for endpoint `idx`'s partial update on `tag`.
  /// Payload bytes verbatim (possibly hostile); nullopt on kError,
  /// timeout, or damage.
  std::optional<Bytes> request_partial(size_t idx,
                                       const std::string& tag) override;

  /// kPing/kPong liveness probe.
  bool ping(size_t idx);

  /// The most recent kError frame any round trip received (distinguishes
  /// "the daemon said kNotFound" from "the wire went dark"). Cleared at
  /// the start of each round trip.
  const std::optional<daemon::WireError>& last_error() const {
    return last_error_;
  }

  /// Sockets opened over this transport's lifetime (reconnect accounting).
  std::uint64_t connects() const { return connects_; }

 private:
  int ensure_connected(size_t idx);  ///< fd, or -1 within the deadline
  void drop(size_t idx);
  bool send_all(size_t idx, ByteSpan bytes, std::int64_t deadline_ms);

  /// One framed round trip; nullopt on connect/send/read/framing failure
  /// (the connection is dropped so the next request starts clean).
  std::optional<daemon::Frame> roundtrip(size_t idx, daemon::FrameType type,
                                         ByteSpan payload);

  std::vector<Endpoint> endpoints_;
  std::vector<int> fds_;  ///< -1 = not connected
  int io_timeout_ms_;
  std::optional<daemon::WireError> last_error_;
  std::uint64_t connects_ = 0;
};

}  // namespace tre::client
