#include "client/socket_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <ctime>

namespace tre::client {

namespace {

std::int64_t monotonic_ms() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return std::int64_t{ts.tv_sec} * 1000 + ts.tv_nsec / 1000000;
}

/// poll() one fd for `events`, honouring an absolute deadline.
bool wait_fd(int fd, short events, std::int64_t deadline_ms) {
  for (;;) {
    std::int64_t left = deadline_ms - monotonic_ms();
    if (left <= 0) return false;
    pollfd p{fd, events, 0};
    int rc = ::poll(&p, 1, static_cast<int>(left));
    if (rc > 0) return (p.revents & (events | POLLERR | POLLHUP)) != 0;
    if (rc == 0) return false;
    if (errno != EINTR) return false;
  }
}

}  // namespace

SocketTransport::SocketTransport(std::vector<Endpoint> endpoints,
                                 int io_timeout_ms)
    : endpoints_(std::move(endpoints)), io_timeout_ms_(io_timeout_ms) {
  require(!endpoints_.empty(), "SocketTransport: need at least one endpoint");
  require(io_timeout_ms_ > 0, "SocketTransport: bad timeout");
  fds_.assign(endpoints_.size(), -1);
}

SocketTransport::~SocketTransport() {
  for (int fd : fds_) {
    if (fd >= 0) ::close(fd);
  }
}

void SocketTransport::drop(size_t idx) {
  if (fds_[idx] >= 0) {
    ::close(fds_[idx]);
    fds_[idx] = -1;
  }
}

int SocketTransport::ensure_connected(size_t idx) {
  if (fds_[idx] >= 0) return fds_[idx];

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoints_[idx].port);
  if (::inet_pton(AF_INET, endpoints_[idx].host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return -1;
  }

  const std::int64_t deadline = monotonic_ms() + io_timeout_ms_;
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno == EINPROGRESS) {
    if (!wait_fd(fd, POLLOUT, deadline)) {
      ::close(fd);
      return -1;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) rc = -1;
    else rc = 0;
  }
  if (rc != 0) {
    ::close(fd);
    return -1;
  }
  fds_[idx] = fd;
  ++connects_;
  return fd;
}

bool SocketTransport::send_all(size_t idx, ByteSpan bytes,
                               std::int64_t deadline_ms) {
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::send(fds_[idx], bytes.data() + off, bytes.size() - off,
                       MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!wait_fd(fds_[idx], POLLOUT, deadline_ms)) return false;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

std::optional<daemon::Frame> SocketTransport::roundtrip(size_t idx,
                                                        daemon::FrameType type,
                                                        ByteSpan payload) {
  require(idx < endpoints_.size(), "SocketTransport: bad mirror index");
  last_error_.reset();
  if (ensure_connected(idx) < 0) return std::nullopt;

  const std::int64_t deadline = monotonic_ms() + io_timeout_ms_;
  Bytes wire = daemon::encode_frame(type, payload);
  if (!send_all(idx, wire, deadline)) {
    drop(idx);
    return std::nullopt;
  }

  // Exactly one reply frame per request: a fresh reader per round trip
  // is sound because failures (below) drop the connection, so a reused
  // socket never carries residue from an earlier exchange.
  daemon::FrameReader reader;
  std::uint8_t buf[16384];
  for (;;) {
    if (auto frame = reader.next()) {
      if (frame->type == daemon::FrameType::kError) {
        last_error_ = daemon::try_parse_error(frame->payload)
                          .value_or(daemon::WireError{});
      }
      return frame;
    }
    if (reader.broken()) {
      // Framing damage: this byte stream can never be trusted again.
      drop(idx);
      return std::nullopt;
    }
    if (!wait_fd(fds_[idx], POLLIN, deadline)) {
      drop(idx);  // a late reply must not poison the next request
      return std::nullopt;
    }
    ssize_t n = ::recv(fds_[idx], buf, sizeof(buf), 0);
    if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                   errno != EINTR)) {
      drop(idx);
      return std::nullopt;
    }
    if (n > 0) reader.feed(ByteSpan(buf, static_cast<size_t>(n)));
  }
}

void SocketTransport::request(size_t idx, const std::string& tag,
                              std::function<void(Bytes)> on_reply) {
  auto frame = roundtrip(idx, daemon::FrameType::kGetUpdate, to_bytes(tag));
  // Only a well-formed kUpdateReply delivers bytes; its payload is still
  // judged by the fetcher's trust boundary. Everything else — kError,
  // timeout, damage — is the "no reply" path of the contract.
  if (frame && frame->type == daemon::FrameType::kUpdateReply) {
    on_reply(std::move(frame->payload));
  }
}

std::optional<daemon::KeyReply> SocketTransport::get_key(size_t idx) {
  auto frame = roundtrip(idx, daemon::FrameType::kGetKey, {});
  if (!frame || frame->type != daemon::FrameType::kKeyReply) return std::nullopt;
  return daemon::try_parse_key_reply(frame->payload);
}

std::optional<daemon::RangeReply> SocketTransport::get_range(
    size_t idx, std::uint64_t start, std::uint32_t max_count) {
  auto frame = roundtrip(idx, daemon::FrameType::kGetRange,
                         daemon::encode_get_range(start, max_count));
  if (!frame || frame->type != daemon::FrameType::kRangeReply) return std::nullopt;
  return daemon::try_parse_range_reply(frame->payload);
}

std::optional<Bytes> SocketTransport::request_partial(size_t idx,
                                                      const std::string& tag) {
  auto frame = roundtrip(idx, daemon::FrameType::kGetPartial, to_bytes(tag));
  if (!frame || frame->type != daemon::FrameType::kPartialReply) {
    return std::nullopt;
  }
  return std::move(frame->payload);
}

bool SocketTransport::ping(size_t idx) {
  const Bytes probe = to_bytes("ping");
  auto frame = roundtrip(idx, daemon::FrameType::kPing, probe);
  return frame && frame->type == daemon::FrameType::kPong &&
         frame->payload == probe;
}

}  // namespace tre::client
