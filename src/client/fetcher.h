// Byzantine-resilient update fetching — the receiver side of §3's
// distribution story, hardened.
//
// The paper's passive server scales because its output is
// self-authenticating: ê(sG, H1(T)) == ê(G, I_T) holds for exactly one
// point per tag, so ANY path can carry an update and the receiver needs
// trust in nobody along it. UpdateFetcher turns that observation into a
// pipeline. Every reply from a mirror crosses one trust boundary before
// acceptance:
//
//       wire bytes ──parse──► KeyUpdate ──tag == requested?──►
//            ──ê(sG,H1(T)) == ê(G,I_T)?──► accepted
//
// and each stage's rejections are counted separately (garbage, relabel,
// forgery). Around that boundary sits the liveness machinery:
//   * exponential backoff with decorrelated jitter (drawn from the
//     node's own HmacDrbg — deterministic per seed, uncorrelated across
//     receivers, so retry storms don't synchronize);
//   * per-mirror health scores AND per-mirror backoff state, both
//     persistent across fetches: verified successes promote (and reset
//     that mirror's backoff), every failure demotes; rotation prefers
//     the healthiest alternative, so misbehaving replicas starve and a
//     mirror that was backing off at the end of one fetch is still
//     backing off when the next begins;
//   * failover after k consecutive failures on one mirror. Rotation
//     eventually visits every mirror, giving single-honest-mirror
//     liveness with NO quorum: one honest replica anywhere keeps every
//     receiver live, because acceptance never depends on agreement —
//     only on the pairing check;
//   * terminal fallback: when the precise update is unobtainable inside
//     the attempt budget, the fetcher walks the coarser tags of the
//     release's fallback chain (timeserver/resilient.h), trading
//     precision for availability exactly as ResilientTre's disjunctive
//     ciphertexts allow.
//
// Experiment E18 (bench_faults) measures the resulting availability
// latency and rejection counts as functions of loss rate and
// Byzantine-mirror fraction.
//
// Backend-generic: BasicUpdateFetcher<B> runs the identical pipeline on
// any pairing backend — the parse stage uses B's wire codec and the
// verification stage B's pairing check, so a reply encoded for the WRONG
// backend dies at the parse counter, never in the group arithmetic.
// `UpdateFetcher` is the type-1 instantiation.
//
// Transport-generic: the fetcher speaks to a client::UpdateSource
// (transport.h), never to a concrete network. BasicSimnetSource adapts
// the discrete-event mirrored archive; SocketTransport speaks tred's
// framed protocol over real TCP. The trust gate cannot tell them apart —
// that is the point.
#pragma once

#include <algorithm>
#include <functional>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "bigint/bigint.h"
#include "client/transport.h"
#include "timeserver/timeline.h"
#include "core/tre.h"
#include "obs/metrics.h"
#include "threshold/threshold.h"
#include "timeserver/resilient.h"

namespace tre::client {

struct FetcherConfig {
  std::int64_t base_backoff = 1;   ///< seconds; first retry delay
  std::int64_t max_backoff = 64;   ///< decorrelated-jitter cap
  std::int64_t reply_timeout = 8;  ///< silent-poll deadline per attempt
                                   ///< (must exceed the round-trip time)
  size_t failover_after = 2;       ///< consecutive failures before rotating
  size_t attempts_per_tag = 16;    ///< request budget per tag before fallback
  int min_health = -8;             ///< health score floor
  int max_health = 4;              ///< health score ceiling
};

/// Per-fetch accounting, split by rejection cause so experiments can
/// attribute latency to the right adversary. Computed as a delta over
/// the fetcher's registry counters (baseline taken when the fetch
/// starts); the same counters feed obs::Registry::global() as
/// client.fetch.* / client.rejected.* for fleet-wide telemetry.
struct FetchStats {
  size_t attempts = 0;        ///< requests sent
  size_t timeouts = 0;        ///< attempts with no reply inside the deadline
  size_t rejected_parse = 0;  ///< malformed bytes (garbage, framing damage)
  size_t rejected_tag = 0;    ///< well-formed update for the WRONG tag (relabel)
  size_t rejected_sig = 0;    ///< parsed clean but failed self-authentication
  size_t failovers = 0;       ///< mirror rotations
  size_t fallback_steps = 0;  ///< coarser chain tags resorted to
  size_t backoff_wait = 0;    ///< total seconds spent in retry backoff
  size_t total_rejected() const {
    return rejected_parse + rejected_tag + rejected_sig;
  }
};

template <class B>
struct BasicFetchResult {
  core::BasicKeyUpdate<B> update;  ///< VERIFIED against the server public key
  bool via_fallback = false;       ///< a coarser chain tag, not the precise one
  std::int64_t completed_at = 0;   ///< timeline instant of acceptance
  FetchStats stats;
};

/// One batch-verified catch-up page (BasicUpdateFetcher::
/// fetch_range_verified): everything in `updates` passed the trust
/// boundary; the reject counts attribute what did not.
template <class B>
struct BasicRangeFetchResult {
  std::vector<core::BasicKeyUpdate<B>> updates;  ///< VERIFIED, archive order
  std::uint64_t total = 0;    ///< mirror's claimed archive size
  std::uint64_t start = 0;    ///< archive index of the page's first item
  size_t served = 0;          ///< raw items in the page, rejects included
  size_t rejected_parse = 0;  ///< malformed page items
  size_t rejected_sig = 0;    ///< forged/relabeled items bisected out
};

/// Quorum collection over a t-of-n threshold beacon
/// (BasicUpdateFetcher::fetch_threshold): `update` is the ordinary
/// s·H1(T) update, Lagrange-aggregated client-side from `partials_used`
/// verified partials and bit-identical to what a single server holding s
/// would have issued. The reject counts attribute what each gate threw
/// away, and `byzantine_nodes` names the beacon nodes (1-based share
/// indices) whose partials failed the pairing check — exact attribution,
/// courtesy of the RLC batch's bisection.
template <class B>
struct BasicThresholdFetchResult {
  core::BasicKeyUpdate<B> update;  ///< VERIFIED against the group key
  size_t partials_used = 0;        ///< quorum size actually combined (k)
  size_t slots_polled = 0;         ///< mirror slots asked for a partial
  size_t silent = 0;               ///< slots with no reply (crash/drop)
  size_t rejected_parse = 0;       ///< malformed partial bytes
  size_t rejected_tag = 0;         ///< well-formed partial, wrong tag
  size_t rejected_dup = 0;         ///< share index already in hand
  size_t rejected_sig = 0;         ///< failed the pairing check (forged)
  std::vector<size_t> byzantine_nodes;  ///< share indices of forgers, sorted
};

namespace detail {

// Fleet-wide mirrors of the per-instance counters: every fetcher in the
// process contributes, so E18 reads per-cause rejection totals straight
// from the global registry (compiled out under -DTRE_METRICS=OFF).
// Shared across backends; per-instance registries keep fetchers apart.
struct FetcherProbes {
  obs::CounterProbe attempts{"client.fetch.attempts"};
  obs::CounterProbe timeouts{"client.fetch.timeouts"};
  obs::CounterProbe rejected_parse{"client.rejected.parse"};
  obs::CounterProbe rejected_tag{"client.rejected.tag"};
  obs::CounterProbe rejected_sig{"client.rejected.sig"};
  obs::CounterProbe failovers{"client.fetch.failovers"};
  obs::CounterProbe fallback_steps{"client.fetch.fallback_steps"};
  obs::CounterProbe backoff_wait{"client.fetch.backoff_wait_s"};
  obs::CounterProbe successes{"client.fetch.successes"};
  obs::CounterProbe failures{"client.fetch.failures"};
  // Batch-verified catch-up (fetch_range_verified): updates accepted
  // through an RLC batch, and batches whose RLC failed and bisected.
  obs::CounterProbe batch_accept{"client.batch.accept"};
  obs::CounterProbe batch_bisect{"client.batch.bisect"};
  // Threshold-beacon quorum collection (fetch_threshold): partial
  // requests sent, partials surviving the RLC batch, partials rejected
  // at any gate, and quorums successfully Lagrange-combined.
  obs::CounterProbe partial_requests{"client.partials.requests"};
  obs::CounterProbe partial_accepted{"client.partials.accepted"};
  obs::CounterProbe partial_rejected{"client.partials.rejected"};
  obs::CounterProbe threshold_combines{"client.partials.combines"};
};

inline const FetcherProbes& fetcher_probes() {
  static const FetcherProbes p;
  return p;
}

}  // namespace detail

template <class B>
class BasicUpdateFetcher {
 public:
  /// `mirrors` lists the source's mirror indices this receiver may use,
  /// preferred first (UpdateSource::kOrigin is allowed as a last-resort
  /// entry when the source has one). `seed` drives the backoff jitter.
  /// The source and the fetcher must outlive every timeline event of its
  /// fetches.
  BasicUpdateFetcher(core::BasicTreScheme<B> scheme,
                     core::BasicServerPublicKey<B> server,
                     UpdateSource& source, server::Timeline& timeline,
                     std::vector<size_t> mirrors, ByteSpan seed,
                     FetcherConfig config = {})
      : scheme_(std::move(scheme)),
        server_(std::move(server)),
        source_(&source),
        timeline_(timeline),
        mirrors_(std::move(mirrors)),
        config_(config),
        rng_(seed.empty() ? ByteSpan(to_bytes("fetcher-default")) : seed) {
    require(!mirrors_.empty(), "UpdateFetcher: need at least one mirror");
    for (size_t idx : mirrors_) {
      require(source_->valid_mirror(idx), "UpdateFetcher: bad mirror index");
    }
    require(config_.base_backoff > 0 && config_.max_backoff >= config_.base_backoff,
            "UpdateFetcher: bad backoff bounds");
    require(config_.reply_timeout > 0, "UpdateFetcher: bad reply timeout");
    require(config_.failover_after > 0 && config_.attempts_per_tag > 0,
            "UpdateFetcher: bad budgets");
    health_.assign(mirrors_.size(), 0);
    // Backoff state is PER MIRROR and persists across fetches: a replica
    // that kept timing out five minutes ago has not earned a fresh start.
    slot_backoff_.assign(mirrors_.size(), config_.base_backoff);
  }

  using SuccessFn = std::function<void(const BasicFetchResult<B>&)>;
  using FailureFn = std::function<void(const FetchStats&)>;

  /// Runs the pipeline for `tags.front()`; each time a tag's attempt
  /// budget is exhausted, moves to the next (coarser) tag. `done` fires
  /// with the first verified update; `failed` (optional) fires when the
  /// whole chain is exhausted. One fetch at a time per fetcher.
  void fetch_verified(std::vector<std::string> tags, SuccessFn done,
                      FailureFn failed = nullptr) {
    require(!busy_, "UpdateFetcher: a fetch is already running");
    require(!tags.empty(), "UpdateFetcher: no tags to fetch");
    require(done != nullptr, "UpdateFetcher: null success callback");
    busy_ = true;
    tags_ = std::move(tags);
    tag_index_ = 0;
    baseline_ = lifetime_stats();  // stats() now reads zero for this fetch
    done_ = std::move(done);
    failed_ = std::move(failed);
    // Start from the healthiest known mirror: knowledge from earlier
    // fetches (demoted replicas) carries over.
    current_slot_ = static_cast<size_t>(
        std::max_element(health_.begin(), health_.end()) - health_.begin());
    consecutive_failures_ = 0;
    start_tag();
  }

  /// Convenience: the precise release tag plus its coarser fallback
  /// chain, matching what ResilientTre::encrypt locked the message under.
  void fetch_release(const server::TimeSpec& release,
                     server::Granularity coarsest, SuccessFn done,
                     FailureFn failed = nullptr) {
    std::vector<std::string> tags;
    for (const server::TimeSpec& t : server::fallback_chain(release, coarsest)) {
      tags.push_back(t.canonical());
    }
    fetch_verified(std::move(tags), std::move(done), std::move(failed));
  }

  bool busy() const { return busy_; }

  /// Batch-verified catch-up: one range page from `mirrors[slot]`, pushed
  /// through the SAME parse → pairing trust boundary as fetch_verified,
  /// but with the N pairing checks folded into one RLC batch
  /// (TreScheme::verify_updates_batch); when the batch fails, bisection
  /// attributes the guilty items and they are dropped, never surfaced.
  /// There is no per-item tag stage here — a range scan requests no
  /// specific tag — so a relabeled item dies at the signature stage
  /// instead: the pairing check binds each sig to its update's own tag.
  ///
  /// Synchronous (catch-up is a bulk path, not a latency path) and
  /// independent of any in-flight fetch_verified state machine. Returns
  /// nullopt when the source has no range facility or the round trip
  /// failed; mirror health and backoff react exactly like the per-tag
  /// path (clean page promotes and resets backoff, rejects demote).
  std::optional<BasicRangeFetchResult<B>> fetch_range_verified(
      size_t slot, std::uint64_t start, std::uint32_t max_count,
      unsigned rlc_bits = 128) {
    require(slot < mirrors_.size(), "UpdateFetcher: bad mirror slot");
    std::optional<RangePage> page =
        source_->request_range(mirrors_[slot], start, max_count);
    if (!page) {
      health_[slot] = std::max(config_.min_health, health_[slot] - 1);
      return std::nullopt;
    }
    BasicRangeFetchResult<B> out;
    out.total = page->total;
    out.start = page->start;
    out.served = page->updates.size();
    std::vector<core::BasicKeyUpdate<B>> parsed;
    parsed.reserve(page->updates.size());
    for (const Bytes& wire : page->updates) {
      std::optional<core::BasicKeyUpdate<B>> u =
          core::BasicKeyUpdate<B>::try_from_bytes(scheme_.params(), wire);
      if (!u) {
        ++out.rejected_parse;
        rejected_parse_c_.add();
        detail::fetcher_probes().rejected_parse.add();
        continue;
      }
      parsed.push_back(std::move(*u));
    }
    std::vector<size_t> bad =
        scheme_.verify_updates_batch(server_, parsed, rng_, rlc_bits);
    if (!bad.empty()) detail::fetcher_probes().batch_bisect.add();
    out.rejected_sig = bad.size();
    rejected_sig_c_.add(bad.size());
    detail::fetcher_probes().rejected_sig.add(bad.size());
    size_t next_bad = 0;
    for (size_t i = 0; i < parsed.size(); ++i) {
      if (next_bad < bad.size() && bad[next_bad] == i) {
        ++next_bad;
        continue;
      }
      out.updates.push_back(std::move(parsed[i]));
    }
    detail::fetcher_probes().batch_accept.add(out.updates.size());
    if (out.rejected_parse == 0 && out.rejected_sig == 0) {
      if (!out.updates.empty()) {
        health_[slot] = std::min(config_.max_health, health_[slot] + 1);
        slot_backoff_[slot] = config_.base_backoff;
      }
    } else {
      health_[slot] = std::max(config_.min_health, health_[slot] - 1);
    }
    return out;
  }

  /// Threshold-beacon fetch: collects partial updates for `tag` from the
  /// fetcher's mirrors — healthiest slots first, so known-good beacon
  /// nodes are polled before previously demoted ones — until k = key
  /// threshold distinct share indices survive the trust boundary, then
  /// Lagrange-aggregates them (threshold/threshold.h) into the ordinary
  /// update and verifies THAT against the group key.
  ///
  /// Each reply crosses the same boundary shape as fetch_verified —
  /// parse, tag check, pairing check — but the pairing stage is the RLC
  /// batch with bisection, so a whole quorum costs two multi-exps and
  /// two pairings when honest, and forged partials are attributed to
  /// their exact share indices when not. Health and backoff react per
  /// slot: a verified partial promotes and resets backoff, every reject
  /// or silence demotes.
  ///
  /// Synchronous (quorum collection is a bulk path, like range catch-up)
  /// and independent of any in-flight fetch_verified. Errors:
  /// Errc::kInsufficientPartials when the mirror set cannot field k valid
  /// partials; Errc::kBadPartial when the aggregate fails the final group
  /// check (cannot happen unless the threshold key itself is wrong).
  Result<BasicThresholdFetchResult<B>> fetch_threshold(
      const threshold::BasicThresholdScheme<B>& tscheme,
      const threshold::BasicThresholdKey<B>& key, const std::string& tag,
      unsigned rlc_bits = 128) {
    const size_t k = key.config.k;
    require(k >= 1, "fetch_threshold: malformed threshold key");

    // Healthiest first; ties keep preference order (stable sort).
    std::vector<size_t> order(mirrors_.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(), [this](size_t a, size_t b) {
      return health_[a] > health_[b];
    });

    BasicThresholdFetchResult<B> out;
    std::vector<threshold::BasicPartialUpdate<B>> verified;
    std::vector<threshold::BasicPartialUpdate<B>> pending;
    std::vector<size_t> pending_slots;  // slot that served pending[i]
    std::vector<size_t> seen_indices;   // share indices already in hand

    const auto demote = [this](size_t slot) {
      health_[slot] = std::max(config_.min_health, health_[slot] - 1);
    };
    const auto reject = [&](size_t slot, size_t& counter,
                            obs::Counter& instance_c,
                            const obs::CounterProbe& fleet_c) {
      ++counter;
      instance_c.add();
      fleet_c.add();
      detail::fetcher_probes().partial_rejected.add();
      demote(slot);
    };

    // The pending batch holds structurally clean partials whose pairing
    // check is deferred; one RLC batch settles them all, bisection
    // attributing any forgery to its exact share index and slot.
    const auto flush_pending = [&]() {
      if (pending.empty()) return;
      std::vector<size_t> bad =
          tscheme.verify_partials_batch(key, pending, rng_, rlc_bits);
      size_t next_bad = 0;
      for (size_t i = 0; i < pending.size(); ++i) {
        if (next_bad < bad.size() && bad[next_bad] == i) {
          ++next_bad;
          out.byzantine_nodes.push_back(pending[i].index);
          reject(pending_slots[i], out.rejected_sig, rejected_sig_c_,
                 detail::fetcher_probes().rejected_sig);
          continue;
        }
        // Verified: promote the slot, the partial joins the quorum.
        health_[pending_slots[i]] =
            std::min(config_.max_health, health_[pending_slots[i]] + 1);
        slot_backoff_[pending_slots[i]] = config_.base_backoff;
        detail::fetcher_probes().partial_accepted.add();
        verified.push_back(std::move(pending[i]));
      }
      pending.clear();
      pending_slots.clear();
    };

    for (size_t slot : order) {
      if (verified.size() >= k) break;
      ++out.slots_polled;
      detail::fetcher_probes().partial_requests.add();
      std::optional<Bytes> wire = source_->request_partial(mirrors_[slot], tag);
      if (!wire) {
        ++out.silent;
        demote(slot);
        continue;
      }
      std::optional<threshold::BasicPartialUpdate<B>> partial =
          threshold::BasicPartialUpdate<B>::try_from_bytes(tscheme.params(),
                                                           *wire);
      if (!partial) {
        reject(slot, out.rejected_parse, rejected_parse_c_,
               detail::fetcher_probes().rejected_parse);
        continue;
      }
      if (partial->tag != tag) {
        reject(slot, out.rejected_tag, rejected_tag_c_,
               detail::fetcher_probes().rejected_tag);
        continue;
      }
      if (std::find(seen_indices.begin(), seen_indices.end(),
                    partial->index) != seen_indices.end()) {
        // A share index can only contribute once to the quorum; a second
        // copy (honest echo or replayed forgery) is dead weight.
        ++out.rejected_dup;
        detail::fetcher_probes().partial_rejected.add();
        demote(slot);
        continue;
      }
      seen_indices.push_back(partial->index);
      pending.push_back(std::move(*partial));
      pending_slots.push_back(slot);
      if (verified.size() + pending.size() >= k) flush_pending();
    }
    flush_pending();

    if (verified.size() < k) return Errc::kInsufficientPartials;
    core::BasicKeyUpdate<B> update = tscheme.combine(key, verified);
    // Belt and braces: the aggregate must verify as an ORDINARY update
    // under the group key — the same check any non-threshold-aware
    // receiver would apply.
    if (!scheme_.verify_update(key.as_server_public_key(), update)) {
      return Errc::kBadPartial;
    }
    std::sort(out.byzantine_nodes.begin(), out.byzantine_nodes.end());
    detail::fetcher_probes().threshold_combines.add();
    out.update = std::move(update);
    out.partials_used = k;
    return out;
  }

  /// Health score of `mirrors[slot]` (0 = neutral; negative = demoted).
  int health(size_t slot) const {
    require(slot < health_.size(), "UpdateFetcher: bad mirror slot");
    return health_[slot];
  }

  /// The backoff seed (seconds) the next failure on `mirrors[slot]` will
  /// jitter from. base_backoff when the mirror is in good standing;
  /// larger when it has been failing — including failures from EARLIER
  /// fetches, since backoff state persists across fetch() calls.
  std::int64_t backoff_hint(size_t slot) const {
    require(slot < slot_backoff_.size(), "UpdateFetcher: bad mirror slot");
    return slot_backoff_[slot];
  }

  /// Accounting for the current/most recent fetch (a view over the
  /// registry counters, relative to the baseline at fetch start).
  FetchStats stats() const {
    FetchStats now = lifetime_stats();
    return FetchStats{now.attempts - baseline_.attempts,
                      now.timeouts - baseline_.timeouts,
                      now.rejected_parse - baseline_.rejected_parse,
                      now.rejected_tag - baseline_.rejected_tag,
                      now.rejected_sig - baseline_.rejected_sig,
                      now.failovers - baseline_.failovers,
                      now.fallback_steps - baseline_.fallback_steps,
                      now.backoff_wait - baseline_.backoff_wait};
  }

  /// Lifetime totals across every fetch this fetcher ran.
  FetchStats lifetime_stats() const {
    FetchStats s;
    s.attempts = attempts_c_.value();
    s.timeouts = timeouts_c_.value();
    s.rejected_parse = rejected_parse_c_.value();
    s.rejected_tag = rejected_tag_c_.value();
    s.rejected_sig = rejected_sig_c_.value();
    s.failovers = failovers_c_.value();
    s.fallback_steps = fallback_steps_c_.value();
    s.backoff_wait = backoff_wait_c_.value();
    return s;
  }

  /// The instance-local registry backing stats() (snapshot/export hook).
  const obs::Registry& metrics() const { return reg_; }

 private:
  void start_tag() {
    attempts_left_ = config_.attempts_per_tag;
    // Deliberately NO backoff reset here: slot_backoff_ is per-mirror
    // state that only a verified success clears.
    if (tag_index_ > 0) {
      fallback_steps_c_.add();
      detail::fetcher_probes().fallback_steps.add();
    }
    attempt();
  }

  void attempt() {
    if (!busy_) return;
    if (attempts_left_ == 0) {
      // This tag's budget is spent: degrade precision before giving up.
      ++tag_index_;
      if (tag_index_ >= tags_.size()) {
        busy_ = false;
        live_attempt_ = 0;
        detail::fetcher_probes().failures.add();
        if (failed_) {
          FetchStats view = stats();
          failed_(view);
        }
        return;
      }
      start_tag();
      return;
    }
    --attempts_left_;
    attempts_c_.add();
    detail::fetcher_probes().attempts.add();
    std::uint64_t id = ++attempt_seq_;
    live_attempt_ = id;
    // A synchronous transport (SocketTransport) may deliver — and settle
    // the attempt — inside request() itself; the id guards make the
    // deadline scheduled next a no-op in that case.
    source_->request(mirrors_[current_slot_], tags_[tag_index_],
                     [this, id](Bytes wire) { on_reply(id, wire); });
    timeline_.schedule(config_.reply_timeout, [this, id] { on_timeout(id); });
  }

  void on_reply(std::uint64_t id, Bytes wire) {
    if (!busy_ || id != live_attempt_) return;  // stale or already settled
    const std::string& want = tags_[tag_index_];
    // The trust boundary: parse, tag check, self-authentication — in that
    // order, each failure attributed to its own counter.
    std::optional<core::BasicKeyUpdate<B>> parsed =
        core::BasicKeyUpdate<B>::try_from_bytes(scheme_.params(), wire);
    if (!parsed) {
      rejected_parse_c_.add();
      detail::fetcher_probes().rejected_parse.add();
    } else if (parsed->tag != want) {
      rejected_tag_c_.add();
      detail::fetcher_probes().rejected_tag.add();
    } else if (!scheme_.verify_update(server_, *parsed)) {
      rejected_sig_c_.add();
      detail::fetcher_probes().rejected_sig.add();
    } else {
      // Verified: the ONLY path to acceptance.
      busy_ = false;
      live_attempt_ = 0;
      health_[current_slot_] =
          std::min(config_.max_health, health_[current_slot_] + 1);
      slot_backoff_[current_slot_] = config_.base_backoff;  // earned a reset
      detail::fetcher_probes().successes.add();
      BasicFetchResult<B> result;
      result.update = std::move(*parsed);
      result.via_fallback = tag_index_ > 0;
      result.completed_at = timeline_.now();
      result.stats = stats();
      done_(result);
      return;
    }
    fail_attempt();
  }

  void on_timeout(std::uint64_t id) {
    if (!busy_ || id != live_attempt_) return;  // answered (or settled) in time
    timeouts_c_.add();
    detail::fetcher_probes().timeouts.add();
    fail_attempt();
  }

  void fail_attempt() {
    live_attempt_ = 0;  // a late reply to this attempt is ignored
    health_[current_slot_] =
        std::max(config_.min_health, health_[current_slot_] - 1);
    ++consecutive_failures_;
    if (consecutive_failures_ >= config_.failover_after && mirrors_.size() > 1) {
      rotate();
    }
    std::int64_t sleep = next_backoff();
    backoff_wait_c_.add(static_cast<std::uint64_t>(sleep));
    detail::fetcher_probes().backoff_wait.add(static_cast<std::uint64_t>(sleep));
    timeline_.schedule(sleep, [this] { attempt(); });
  }

  void rotate() {
    failovers_c_.add();
    detail::fetcher_probes().failovers.add();
    consecutive_failures_ = 0;
    // Healthiest alternative wins; ties resolve round-robin after the
    // current slot so equals are visited in order (this is what guarantees
    // an honest mirror is eventually reached).
    size_t best = current_slot_;
    int best_health = std::numeric_limits<int>::min();
    for (size_t step = 1; step < mirrors_.size(); ++step) {
      size_t slot = (current_slot_ + step) % mirrors_.size();
      if (health_[slot] > best_health) {
        best_health = health_[slot];
        best = slot;
      }
    }
    current_slot_ = best;
  }

  std::int64_t next_backoff() {
    // Decorrelated jitter: sleep ~ U[base, prev*3], capped. Growth is
    // exponential in expectation, but desynchronized across receivers.
    // `prev` is the CURRENT MIRROR's last sleep — per-slot and persistent
    // across tags and fetches, so a chronically failing replica keeps
    // its earned penalty until it serves a verified update.
    std::int64_t lo = config_.base_backoff;
    std::int64_t hi = std::min(config_.max_backoff, slot_backoff_[current_slot_] * 3);
    std::int64_t span = std::max<std::int64_t>(1, hi - lo + 1);
    Bytes draw = rng_.bytes(8);
    std::uint64_t r = bigint::BigInt<1>::from_bytes_be(draw).w[0];
    slot_backoff_[current_slot_] =
        lo + static_cast<std::int64_t>(r % static_cast<std::uint64_t>(span));
    return slot_backoff_[current_slot_];
  }

  core::BasicTreScheme<B> scheme_;
  core::BasicServerPublicKey<B> server_;
  UpdateSource* source_;
  server::Timeline& timeline_;
  std::vector<size_t> mirrors_;   // source mirror indices, preference order
  std::vector<int> health_;
  std::vector<std::int64_t> slot_backoff_;  // per-mirror, survives fetches
  FetcherConfig config_;
  hashing::HmacDrbg rng_;

  // Per-fetch state.
  bool busy_ = false;
  std::vector<std::string> tags_;
  size_t tag_index_ = 0;
  size_t current_slot_ = 0;       // into mirrors_
  size_t attempts_left_ = 0;
  size_t consecutive_failures_ = 0;
  std::uint64_t attempt_seq_ = 0;
  std::uint64_t live_attempt_ = 0;  // 0 = none in flight
  // Lifetime accounting in a private registry; handles resolved once
  // because registry lookup takes a lock. baseline_ snapshots the
  // counters when a fetch starts, making stats() per-fetch.
  obs::Registry reg_;
  obs::Counter& attempts_c_ = reg_.counter("attempts");
  obs::Counter& timeouts_c_ = reg_.counter("timeouts");
  obs::Counter& rejected_parse_c_ = reg_.counter("rejected_parse");
  obs::Counter& rejected_tag_c_ = reg_.counter("rejected_tag");
  obs::Counter& rejected_sig_c_ = reg_.counter("rejected_sig");
  obs::Counter& failovers_c_ = reg_.counter("failovers");
  obs::Counter& fallback_steps_c_ = reg_.counter("fallback_steps");
  obs::Counter& backoff_wait_c_ = reg_.counter("backoff_wait");
  FetchStats baseline_;
  SuccessFn done_;
  FailureFn failed_;
};

using UpdateFetcher = BasicUpdateFetcher<core::Tre512Backend>;
using FetchResult = BasicFetchResult<core::Tre512Backend>;

extern template class BasicUpdateFetcher<core::Tre512Backend>;

}  // namespace tre::client
