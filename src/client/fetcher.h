// Byzantine-resilient update fetching — the receiver side of §3's
// distribution story, hardened.
//
// The paper's passive server scales because its output is
// self-authenticating: ê(sG, H1(T)) == ê(G, I_T) holds for exactly one
// point per tag, so ANY path can carry an update and the receiver needs
// trust in nobody along it. UpdateFetcher turns that observation into a
// pipeline. Every reply from a mirror crosses one trust boundary before
// acceptance:
//
//       wire bytes ──parse──► KeyUpdate ──tag == requested?──►
//            ──ê(sG,H1(T)) == ê(G,I_T)?──► accepted
//
// and each stage's rejections are counted separately (garbage, relabel,
// forgery). Around that boundary sits the liveness machinery:
//   * exponential backoff with decorrelated jitter (drawn from the
//     node's own HmacDrbg — deterministic per seed, uncorrelated across
//     receivers, so retry storms don't synchronize);
//   * per-mirror health scores: verified successes promote, every
//     failure demotes; rotation prefers the healthiest alternative, so
//     misbehaving replicas starve;
//   * failover after k consecutive failures on one mirror. Rotation
//     eventually visits every mirror, giving single-honest-mirror
//     liveness with NO quorum: one honest replica anywhere keeps every
//     receiver live, because acceptance never depends on agreement —
//     only on the pairing check;
//   * terminal fallback: when the precise update is unobtainable inside
//     the attempt budget, the fetcher walks the coarser tags of the
//     release's fallback chain (timeserver/resilient.h), trading
//     precision for availability exactly as ResilientTre's disjunctive
//     ciphertexts allow.
//
// Experiment E18 (bench_faults) measures the resulting availability
// latency and rejection counts as functions of loss rate and
// Byzantine-mirror fraction.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/tre.h"
#include "obs/metrics.h"
#include "simnet/mirrors.h"
#include "timeserver/resilient.h"

namespace tre::client {

struct FetcherConfig {
  std::int64_t base_backoff = 1;   ///< seconds; first retry delay
  std::int64_t max_backoff = 64;   ///< decorrelated-jitter cap
  std::int64_t reply_timeout = 8;  ///< silent-poll deadline per attempt
                                   ///< (must exceed the round-trip time)
  size_t failover_after = 2;       ///< consecutive failures before rotating
  size_t attempts_per_tag = 16;    ///< request budget per tag before fallback
  int min_health = -8;             ///< health score floor
  int max_health = 4;              ///< health score ceiling
};

/// Per-fetch accounting, split by rejection cause so experiments can
/// attribute latency to the right adversary. Computed as a delta over
/// the fetcher's registry counters (baseline taken when the fetch
/// starts); the same counters feed obs::Registry::global() as
/// client.fetch.* / client.rejected.* for fleet-wide telemetry.
struct FetchStats {
  size_t attempts = 0;        ///< requests sent
  size_t timeouts = 0;        ///< attempts with no reply inside the deadline
  size_t rejected_parse = 0;  ///< malformed bytes (garbage, framing damage)
  size_t rejected_tag = 0;    ///< well-formed update for the WRONG tag (relabel)
  size_t rejected_sig = 0;    ///< parsed clean but failed self-authentication
  size_t failovers = 0;       ///< mirror rotations
  size_t fallback_steps = 0;  ///< coarser chain tags resorted to
  size_t backoff_wait = 0;    ///< total seconds spent in retry backoff
  size_t total_rejected() const {
    return rejected_parse + rejected_tag + rejected_sig;
  }
};

struct FetchResult {
  core::KeyUpdate update;      ///< VERIFIED against the server public key
  bool via_fallback = false;   ///< a coarser chain tag, not the precise one
  std::int64_t completed_at = 0;  ///< timeline instant of acceptance
  FetchStats stats;
};

class UpdateFetcher {
 public:
  /// `mirrors` lists the archive mirror indices this receiver may use,
  /// preferred first (MirroredArchive::kOrigin is allowed as a last
  /// resort entry). `seed` drives the backoff jitter. The fetcher must
  /// outlive every timeline event of its fetches.
  UpdateFetcher(core::TreScheme scheme, core::ServerPublicKey server,
                simnet::MirroredArchive& archive, server::Timeline& timeline,
                simnet::NodeId receiver, std::vector<size_t> mirrors,
                simnet::LinkSpec access_link, ByteSpan seed,
                FetcherConfig config = {});

  using SuccessFn = std::function<void(const FetchResult&)>;
  using FailureFn = std::function<void(const FetchStats&)>;

  /// Runs the pipeline for `tags.front()`; each time a tag's attempt
  /// budget is exhausted, moves to the next (coarser) tag. `done` fires
  /// with the first verified update; `failed` (optional) fires when the
  /// whole chain is exhausted. One fetch at a time per fetcher.
  void fetch_verified(std::vector<std::string> tags, SuccessFn done,
                      FailureFn failed = nullptr);

  /// Convenience: the precise release tag plus its coarser fallback
  /// chain, matching what ResilientTre::encrypt locked the message under.
  void fetch_release(const server::TimeSpec& release,
                     server::Granularity coarsest, SuccessFn done,
                     FailureFn failed = nullptr);

  bool busy() const { return busy_; }

  /// Health score of `mirrors[slot]` (0 = neutral; negative = demoted).
  int health(size_t slot) const;

  /// Accounting for the current/most recent fetch (a view over the
  /// registry counters, relative to the baseline at fetch start).
  FetchStats stats() const;

  /// Lifetime totals across every fetch this fetcher ran.
  FetchStats lifetime_stats() const;

  /// The instance-local registry backing stats() (snapshot/export hook).
  const obs::Registry& metrics() const { return reg_; }

 private:
  void start_tag();
  void attempt();
  void on_reply(std::uint64_t id, Bytes wire);
  void on_timeout(std::uint64_t id);
  void fail_attempt();
  void rotate();
  std::int64_t next_backoff();

  core::TreScheme scheme_;
  core::ServerPublicKey server_;
  simnet::MirroredArchive& archive_;
  server::Timeline& timeline_;
  simnet::NodeId receiver_;
  std::vector<size_t> mirrors_;   // archive mirror indices, preference order
  std::vector<int> health_;
  simnet::LinkSpec access_link_;
  FetcherConfig config_;
  hashing::HmacDrbg rng_;

  // Per-fetch state.
  bool busy_ = false;
  std::vector<std::string> tags_;
  size_t tag_index_ = 0;
  size_t current_slot_ = 0;       // into mirrors_
  size_t attempts_left_ = 0;
  size_t consecutive_failures_ = 0;
  std::int64_t prev_sleep_ = 0;
  std::uint64_t attempt_seq_ = 0;
  std::uint64_t live_attempt_ = 0;  // 0 = none in flight
  // Lifetime accounting in a private registry; handles resolved once
  // because registry lookup takes a lock. baseline_ snapshots the
  // counters when a fetch starts, making stats() per-fetch.
  obs::Registry reg_;
  obs::Counter& attempts_c_ = reg_.counter("attempts");
  obs::Counter& timeouts_c_ = reg_.counter("timeouts");
  obs::Counter& rejected_parse_c_ = reg_.counter("rejected_parse");
  obs::Counter& rejected_tag_c_ = reg_.counter("rejected_tag");
  obs::Counter& rejected_sig_c_ = reg_.counter("rejected_sig");
  obs::Counter& failovers_c_ = reg_.counter("failovers");
  obs::Counter& fallback_steps_c_ = reg_.counter("fallback_steps");
  obs::Counter& backoff_wait_c_ = reg_.counter("backoff_wait");
  FetchStats baseline_;
  SuccessFn done_;
  FailureFn failed_;
};

}  // namespace tre::client
