#include "client/fetcher.h"

#include <algorithm>
#include <limits>

#include "bigint/bigint.h"

namespace tre::client {

UpdateFetcher::UpdateFetcher(core::TreScheme scheme, core::ServerPublicKey server,
                             simnet::MirroredArchive& archive,
                             server::Timeline& timeline, simnet::NodeId receiver,
                             std::vector<size_t> mirrors,
                             simnet::LinkSpec access_link, ByteSpan seed,
                             FetcherConfig config)
    : scheme_(std::move(scheme)),
      server_(std::move(server)),
      archive_(archive),
      timeline_(timeline),
      receiver_(receiver),
      mirrors_(std::move(mirrors)),
      access_link_(access_link),
      config_(config),
      rng_(seed.empty() ? ByteSpan(to_bytes("fetcher-default")) : seed) {
  require(!mirrors_.empty(), "UpdateFetcher: need at least one mirror");
  for (size_t idx : mirrors_) {
    require(idx == simnet::MirroredArchive::kOrigin || idx < archive_.mirror_count(),
            "UpdateFetcher: bad mirror index");
  }
  require(config_.base_backoff > 0 && config_.max_backoff >= config_.base_backoff,
          "UpdateFetcher: bad backoff bounds");
  require(config_.reply_timeout > 0, "UpdateFetcher: bad reply timeout");
  require(config_.failover_after > 0 && config_.attempts_per_tag > 0,
          "UpdateFetcher: bad budgets");
  health_.assign(mirrors_.size(), 0);
}

int UpdateFetcher::health(size_t slot) const {
  require(slot < health_.size(), "UpdateFetcher: bad mirror slot");
  return health_[slot];
}

void UpdateFetcher::fetch_verified(std::vector<std::string> tags, SuccessFn done,
                                   FailureFn failed) {
  require(!busy_, "UpdateFetcher: a fetch is already running");
  require(!tags.empty(), "UpdateFetcher: no tags to fetch");
  require(done != nullptr, "UpdateFetcher: null success callback");
  busy_ = true;
  tags_ = std::move(tags);
  tag_index_ = 0;
  stats_ = FetchStats{};
  done_ = std::move(done);
  failed_ = std::move(failed);
  // Start from the healthiest known mirror: knowledge from earlier
  // fetches (demoted replicas) carries over.
  current_slot_ = static_cast<size_t>(
      std::max_element(health_.begin(), health_.end()) - health_.begin());
  consecutive_failures_ = 0;
  start_tag();
}

void UpdateFetcher::fetch_release(const server::TimeSpec& release,
                                  server::Granularity coarsest, SuccessFn done,
                                  FailureFn failed) {
  std::vector<std::string> tags;
  for (const server::TimeSpec& t : server::fallback_chain(release, coarsest)) {
    tags.push_back(t.canonical());
  }
  fetch_verified(std::move(tags), std::move(done), std::move(failed));
}

void UpdateFetcher::start_tag() {
  attempts_left_ = config_.attempts_per_tag;
  prev_sleep_ = config_.base_backoff;
  if (tag_index_ > 0) ++stats_.fallback_steps;
  attempt();
}

void UpdateFetcher::attempt() {
  if (!busy_) return;
  if (attempts_left_ == 0) {
    // This tag's budget is spent: degrade precision before giving up.
    ++tag_index_;
    if (tag_index_ >= tags_.size()) {
      busy_ = false;
      live_attempt_ = 0;
      if (failed_) failed_(stats_);
      return;
    }
    start_tag();
    return;
  }
  --attempts_left_;
  ++stats_.attempts;
  std::uint64_t id = ++attempt_seq_;
  live_attempt_ = id;
  archive_.request(receiver_, mirrors_[current_slot_], tags_[tag_index_],
                   access_link_, [this, id](Bytes wire) { on_reply(id, wire); });
  timeline_.schedule(config_.reply_timeout, [this, id] { on_timeout(id); });
}

void UpdateFetcher::on_reply(std::uint64_t id, Bytes wire) {
  if (!busy_ || id != live_attempt_) return;  // stale or already settled
  const std::string& want = tags_[tag_index_];
  // The trust boundary: parse, tag check, self-authentication — in that
  // order, each failure attributed to its own counter.
  std::optional<core::KeyUpdate> parsed =
      core::KeyUpdate::try_from_bytes(scheme_.params(), wire);
  if (!parsed) {
    ++stats_.rejected_parse;
  } else if (parsed->tag != want) {
    ++stats_.rejected_tag;
  } else if (!scheme_.verify_update(server_, *parsed)) {
    ++stats_.rejected_sig;
  } else {
    // Verified: the ONLY path to acceptance.
    busy_ = false;
    live_attempt_ = 0;
    health_[current_slot_] =
        std::min(config_.max_health, health_[current_slot_] + 1);
    FetchResult result;
    result.update = std::move(*parsed);
    result.via_fallback = tag_index_ > 0;
    result.completed_at = timeline_.now();
    result.stats = stats_;
    done_(result);
    return;
  }
  fail_attempt();
}

void UpdateFetcher::on_timeout(std::uint64_t id) {
  if (!busy_ || id != live_attempt_) return;  // answered (or settled) in time
  ++stats_.timeouts;
  fail_attempt();
}

void UpdateFetcher::fail_attempt() {
  live_attempt_ = 0;  // a late reply to this attempt is ignored
  health_[current_slot_] =
      std::max(config_.min_health, health_[current_slot_] - 1);
  ++consecutive_failures_;
  if (consecutive_failures_ >= config_.failover_after && mirrors_.size() > 1) {
    rotate();
  }
  timeline_.schedule(next_backoff(), [this] { attempt(); });
}

void UpdateFetcher::rotate() {
  ++stats_.failovers;
  consecutive_failures_ = 0;
  // Healthiest alternative wins; ties resolve round-robin after the
  // current slot so equals are visited in order (this is what guarantees
  // an honest mirror is eventually reached).
  size_t best = current_slot_;
  int best_health = std::numeric_limits<int>::min();
  for (size_t step = 1; step < mirrors_.size(); ++step) {
    size_t slot = (current_slot_ + step) % mirrors_.size();
    if (health_[slot] > best_health) {
      best_health = health_[slot];
      best = slot;
    }
  }
  current_slot_ = best;
}

std::int64_t UpdateFetcher::next_backoff() {
  // Decorrelated jitter: sleep ~ U[base, prev*3], capped. Growth is
  // exponential in expectation, but desynchronized across receivers.
  std::int64_t lo = config_.base_backoff;
  std::int64_t hi = std::min(config_.max_backoff, prev_sleep_ * 3);
  std::int64_t span = std::max<std::int64_t>(1, hi - lo + 1);
  Bytes draw = rng_.bytes(8);
  std::uint64_t r = bigint::BigInt<1>::from_bytes_be(draw).w[0];
  prev_sleep_ = lo + static_cast<std::int64_t>(r % static_cast<std::uint64_t>(span));
  return prev_sleep_;
}

}  // namespace tre::client
