#include "client/fetcher.h"

namespace tre::client {

template class BasicUpdateFetcher<core::Tre512Backend>;

}  // namespace tre::client
