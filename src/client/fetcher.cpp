#include "client/fetcher.h"

#include <algorithm>
#include <limits>

#include "bigint/bigint.h"

namespace tre::client {

namespace {

// Fleet-wide mirrors of the per-instance counters: every fetcher in the
// process contributes, so E18 reads per-cause rejection totals straight
// from the global registry (compiled out under -DTRE_METRICS=OFF).
struct Probes {
  obs::CounterProbe attempts{"client.fetch.attempts"};
  obs::CounterProbe timeouts{"client.fetch.timeouts"};
  obs::CounterProbe rejected_parse{"client.rejected.parse"};
  obs::CounterProbe rejected_tag{"client.rejected.tag"};
  obs::CounterProbe rejected_sig{"client.rejected.sig"};
  obs::CounterProbe failovers{"client.fetch.failovers"};
  obs::CounterProbe fallback_steps{"client.fetch.fallback_steps"};
  obs::CounterProbe backoff_wait{"client.fetch.backoff_wait_s"};
  obs::CounterProbe successes{"client.fetch.successes"};
  obs::CounterProbe failures{"client.fetch.failures"};

  static const Probes& get() {
    static const Probes p;
    return p;
  }
};

}  // namespace

UpdateFetcher::UpdateFetcher(core::TreScheme scheme, core::ServerPublicKey server,
                             simnet::MirroredArchive& archive,
                             server::Timeline& timeline, simnet::NodeId receiver,
                             std::vector<size_t> mirrors,
                             simnet::LinkSpec access_link, ByteSpan seed,
                             FetcherConfig config)
    : scheme_(std::move(scheme)),
      server_(std::move(server)),
      archive_(archive),
      timeline_(timeline),
      receiver_(receiver),
      mirrors_(std::move(mirrors)),
      access_link_(access_link),
      config_(config),
      rng_(seed.empty() ? ByteSpan(to_bytes("fetcher-default")) : seed) {
  require(!mirrors_.empty(), "UpdateFetcher: need at least one mirror");
  for (size_t idx : mirrors_) {
    require(idx == simnet::MirroredArchive::kOrigin || idx < archive_.mirror_count(),
            "UpdateFetcher: bad mirror index");
  }
  require(config_.base_backoff > 0 && config_.max_backoff >= config_.base_backoff,
          "UpdateFetcher: bad backoff bounds");
  require(config_.reply_timeout > 0, "UpdateFetcher: bad reply timeout");
  require(config_.failover_after > 0 && config_.attempts_per_tag > 0,
          "UpdateFetcher: bad budgets");
  health_.assign(mirrors_.size(), 0);
}

int UpdateFetcher::health(size_t slot) const {
  require(slot < health_.size(), "UpdateFetcher: bad mirror slot");
  return health_[slot];
}

FetchStats UpdateFetcher::lifetime_stats() const {
  FetchStats s;
  s.attempts = attempts_c_.value();
  s.timeouts = timeouts_c_.value();
  s.rejected_parse = rejected_parse_c_.value();
  s.rejected_tag = rejected_tag_c_.value();
  s.rejected_sig = rejected_sig_c_.value();
  s.failovers = failovers_c_.value();
  s.fallback_steps = fallback_steps_c_.value();
  s.backoff_wait = backoff_wait_c_.value();
  return s;
}

FetchStats UpdateFetcher::stats() const {
  FetchStats now = lifetime_stats();
  return FetchStats{now.attempts - baseline_.attempts,
                    now.timeouts - baseline_.timeouts,
                    now.rejected_parse - baseline_.rejected_parse,
                    now.rejected_tag - baseline_.rejected_tag,
                    now.rejected_sig - baseline_.rejected_sig,
                    now.failovers - baseline_.failovers,
                    now.fallback_steps - baseline_.fallback_steps,
                    now.backoff_wait - baseline_.backoff_wait};
}

void UpdateFetcher::fetch_verified(std::vector<std::string> tags, SuccessFn done,
                                   FailureFn failed) {
  require(!busy_, "UpdateFetcher: a fetch is already running");
  require(!tags.empty(), "UpdateFetcher: no tags to fetch");
  require(done != nullptr, "UpdateFetcher: null success callback");
  busy_ = true;
  tags_ = std::move(tags);
  tag_index_ = 0;
  baseline_ = lifetime_stats();  // stats() now reads zero for this fetch
  done_ = std::move(done);
  failed_ = std::move(failed);
  // Start from the healthiest known mirror: knowledge from earlier
  // fetches (demoted replicas) carries over.
  current_slot_ = static_cast<size_t>(
      std::max_element(health_.begin(), health_.end()) - health_.begin());
  consecutive_failures_ = 0;
  start_tag();
}

void UpdateFetcher::fetch_release(const server::TimeSpec& release,
                                  server::Granularity coarsest, SuccessFn done,
                                  FailureFn failed) {
  std::vector<std::string> tags;
  for (const server::TimeSpec& t : server::fallback_chain(release, coarsest)) {
    tags.push_back(t.canonical());
  }
  fetch_verified(std::move(tags), std::move(done), std::move(failed));
}

void UpdateFetcher::start_tag() {
  attempts_left_ = config_.attempts_per_tag;
  prev_sleep_ = config_.base_backoff;
  if (tag_index_ > 0) {
    fallback_steps_c_.add();
    Probes::get().fallback_steps.add();
  }
  attempt();
}

void UpdateFetcher::attempt() {
  if (!busy_) return;
  if (attempts_left_ == 0) {
    // This tag's budget is spent: degrade precision before giving up.
    ++tag_index_;
    if (tag_index_ >= tags_.size()) {
      busy_ = false;
      live_attempt_ = 0;
      Probes::get().failures.add();
      if (failed_) {
        FetchStats view = stats();
        failed_(view);
      }
      return;
    }
    start_tag();
    return;
  }
  --attempts_left_;
  attempts_c_.add();
  Probes::get().attempts.add();
  std::uint64_t id = ++attempt_seq_;
  live_attempt_ = id;
  archive_.request(receiver_, mirrors_[current_slot_], tags_[tag_index_],
                   access_link_, [this, id](Bytes wire) { on_reply(id, wire); });
  timeline_.schedule(config_.reply_timeout, [this, id] { on_timeout(id); });
}

void UpdateFetcher::on_reply(std::uint64_t id, Bytes wire) {
  if (!busy_ || id != live_attempt_) return;  // stale or already settled
  const std::string& want = tags_[tag_index_];
  // The trust boundary: parse, tag check, self-authentication — in that
  // order, each failure attributed to its own counter.
  std::optional<core::KeyUpdate> parsed =
      core::KeyUpdate::try_from_bytes(scheme_.params(), wire);
  if (!parsed) {
    rejected_parse_c_.add();
    Probes::get().rejected_parse.add();
  } else if (parsed->tag != want) {
    rejected_tag_c_.add();
    Probes::get().rejected_tag.add();
  } else if (!scheme_.verify_update(server_, *parsed)) {
    rejected_sig_c_.add();
    Probes::get().rejected_sig.add();
  } else {
    // Verified: the ONLY path to acceptance.
    busy_ = false;
    live_attempt_ = 0;
    health_[current_slot_] =
        std::min(config_.max_health, health_[current_slot_] + 1);
    Probes::get().successes.add();
    FetchResult result;
    result.update = std::move(*parsed);
    result.via_fallback = tag_index_ > 0;
    result.completed_at = timeline_.now();
    result.stats = stats();
    done_(result);
    return;
  }
  fail_attempt();
}

void UpdateFetcher::on_timeout(std::uint64_t id) {
  if (!busy_ || id != live_attempt_) return;  // answered (or settled) in time
  timeouts_c_.add();
  Probes::get().timeouts.add();
  fail_attempt();
}

void UpdateFetcher::fail_attempt() {
  live_attempt_ = 0;  // a late reply to this attempt is ignored
  health_[current_slot_] =
      std::max(config_.min_health, health_[current_slot_] - 1);
  ++consecutive_failures_;
  if (consecutive_failures_ >= config_.failover_after && mirrors_.size() > 1) {
    rotate();
  }
  std::int64_t sleep = next_backoff();
  backoff_wait_c_.add(static_cast<std::uint64_t>(sleep));
  Probes::get().backoff_wait.add(static_cast<std::uint64_t>(sleep));
  timeline_.schedule(sleep, [this] { attempt(); });
}

void UpdateFetcher::rotate() {
  failovers_c_.add();
  Probes::get().failovers.add();
  consecutive_failures_ = 0;
  // Healthiest alternative wins; ties resolve round-robin after the
  // current slot so equals are visited in order (this is what guarantees
  // an honest mirror is eventually reached).
  size_t best = current_slot_;
  int best_health = std::numeric_limits<int>::min();
  for (size_t step = 1; step < mirrors_.size(); ++step) {
    size_t slot = (current_slot_ + step) % mirrors_.size();
    if (health_[slot] > best_health) {
      best_health = health_[slot];
      best = slot;
    }
  }
  current_slot_ = best;
}

std::int64_t UpdateFetcher::next_backoff() {
  // Decorrelated jitter: sleep ~ U[base, prev*3], capped. Growth is
  // exponential in expectation, but desynchronized across receivers.
  std::int64_t lo = config_.base_backoff;
  std::int64_t hi = std::min(config_.max_backoff, prev_sleep_ * 3);
  std::int64_t span = std::max<std::int64_t>(1, hi - lo + 1);
  Bytes draw = rng_.bytes(8);
  std::uint64_t r = bigint::BigInt<1>::from_bytes_be(draw).w[0];
  prev_sleep_ = lo + static_cast<std::int64_t>(r % static_cast<std::uint64_t>(span));
  return prev_sleep_;
}

}  // namespace tre::client
