// FIPS-style power-on known-answer tests (KATs).
//
// A miscompiled Montgomery kernel, a corrupted precomputation table or a
// bit-flipped constant does not crash a cryptographic library — it makes
// it silently produce forgeable signatures and unopenable ciphertexts.
// The classical mitigation (FIPS 140-3 §10.3) is a power-on self-test:
// before the first key-producing operation, run every primitive against
// a known answer and refuse to operate if anything disagrees.
//
// This module is that harness. It covers:
//   * hashing: SHA-256 (FIPS 180-2 "abc"), HMAC-SHA256 (RFC 4231 #2),
//     HKDF-SHA256 (RFC 5869 #1), HMAC-DRBG (self-golden vector);
//   * pairing correctness on BOTH backends: a fixed-seed key/update
//     chain must verify bilinearly AND match a pinned digest of its
//     serialized form (so any drift in field, curve, comb, Miller-loop
//     or final-exponentiation code trips the gate);
//   * a seal/open roundtrip per ciphertext flavour per backend;
//   * zeroization: core::wipe must actually clear scalar limbs.
//
// Wiring: a static registrar installs run_power_on() as the
// common/health.h runner, so linking tre_selftest arms the gate in every
// gated entry point; the first such call executes the suite exactly
// once. A KAT failure latches the poisoned state — later calls throw
// tre::SelftestError instead of producing secrets.
//
// Fault injection (proving the gate actually trips): set
// TRE_SELFTEST_FAULT=<kat-name> and the power-on run deterministically
// corrupts that KAT's input (or, for the wipe KAT, skips the wipe),
// in the PR-2 FaultPlan style of deterministic sabotage.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace tre::selftest {

enum class Kat {
  kSha256,
  kHmac,
  kHkdf,
  kDrbg,
  kPairing512,
  kPairing381,
  kSeal512Basic,
  kSeal512Fo,
  kSeal512React,
  kSeal381Basic,
  kSeal381Fo,
  kSeal381React,
  kWipe,
};

const char* kat_name(Kat k);
std::span<const Kat> all_kats();
std::optional<Kat> kat_from_name(std::string_view name);

struct Report {
  std::vector<Kat> passed;
  std::vector<Kat> failed;

  bool ok() const { return failed.empty(); }
};

/// Runs the whole suite, optionally sabotaging one KAT (deterministic
/// input corruption). Pure: does not read the environment or touch the
/// health latch — callers decide what to do with the report.
Report run(std::optional<Kat> fault = std::nullopt);

/// The installed health runner: reads TRE_SELFTEST_FAULT (a kat_name)
/// for the injection hook and returns whether every KAT passed. The
/// health latch turns a false return into the poisoned state.
bool run_power_on();

/// No-op whose presence forces this translation unit (and therefore the
/// static registrar arming the gate) into the link. Binaries that use
/// any other selftest:: symbol get it implicitly.
void ensure_registered();

}  // namespace tre::selftest
