#include "selftest/selftest.h"

#include <cstdlib>

#include "bls12/tre381.h"
#include "common/bytes.h"
#include "common/error.h"
#include "common/health.h"
#include "core/tre.h"
#include "core/wipe.h"
#include "hashing/drbg.h"
#include "hashing/hmac.h"
#include "hashing/kdf.h"
#include "hashing/sha256.h"
#include "params/params.h"

namespace tre::selftest {

namespace {

// --- Pinned answers ---------------------------------------------------------

// FIPS 180-2 B.1: SHA-256("abc").
constexpr std::string_view kSha256Expected =
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad";

// RFC 4231 test case 2: HMAC-SHA256("Jefe", "what do ya want for nothing?").
constexpr std::string_view kHmacExpected =
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843";

// RFC 5869 test case 1: HKDF-SHA256, 42-byte OKM.
constexpr std::string_view kHkdfIkm = "0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b";
constexpr std::string_view kHkdfSalt = "000102030405060708090a0b0c";
constexpr std::string_view kHkdfInfo = "f0f1f2f3f4f5f6f7f8f9";
constexpr std::string_view kHkdfExpected =
    "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
    "34007208d5b887185865";

// Self-golden: HmacDrbg seeded with "tre-selftest-drbg", first 32 bytes.
// Pinned from the implementation at the time the harness was added; any
// drift in the DRBG (or HMAC beneath it) trips this.
constexpr std::string_view kDrbgExpected =
    "0b5ef8b01f1ce01b5f7b7eae3496fe3c6fa2c9d7b3bc7d79b5f8bd6b3f85ec8f";

// SHA-256 of tag || serialized update for the fixed-seed key/update
// chain, one per backend (pinned like kDrbgExpected).
constexpr std::string_view kPairing512Expected =
    "105edcaa1d27cb0be7d67aeb18848b546d4cea2cf1e5d994b9cf2dbde7fe8896";
constexpr std::string_view kPairing381Expected =
    "4779777d144c3cc82c48ec06478b30569c426062b49acf48c44df3c45df5789c";

// --- Individual KATs --------------------------------------------------------
// Every KAT takes `fault`: when true it deterministically sabotages its
// own input (first byte, lowest bit) — or for the wipe KAT skips the
// wipe — so the ctest fault matrix can prove the gate trips per KAT.

Bytes maybe_flip(Bytes in, bool fault) {
  if (fault && !in.empty()) in[0] ^= 1;
  return in;
}

bool kat_sha256(bool fault) {
  Bytes input = maybe_flip(to_bytes("abc"), fault);
  return hashing::sha256(input) == from_hex(kSha256Expected);
}

bool kat_hmac(bool fault) {
  Bytes data = maybe_flip(to_bytes("what do ya want for nothing?"), fault);
  return hashing::hmac_sha256(to_bytes("Jefe"), data) == from_hex(kHmacExpected);
}

bool kat_hkdf(bool fault) {
  Bytes ikm = maybe_flip(from_hex(kHkdfIkm), fault);
  return hashing::hkdf_sha256(from_hex(kHkdfSalt), ikm, from_hex(kHkdfInfo), 42) ==
         from_hex(kHkdfExpected);
}

bool kat_drbg(bool fault) {
  Bytes seed = maybe_flip(to_bytes("tre-selftest-drbg"), fault);
  hashing::HmacDrbg drbg(seed);
  return drbg.bytes(32) == from_hex(kDrbgExpected);
}

/// Fixed-seed keygen → issue_update → (1) bilinear verification and
/// (2) pinned digest of the serialized update. The digest is the actual
/// known answer: it moves if anything in the scalar, curve, comb or
/// pairing layers drifts; bilinearity alone would also pass for a
/// self-consistently wrong stack.
template <class Scheme, class B>
bool kat_pairing(const Scheme& scheme, std::string_view seed,
                 std::string_view expected_hex, bool fault) {
  hashing::HmacDrbg rng(maybe_flip(to_bytes(seed), fault));
  auto server = scheme.server_keygen(rng);
  auto update = scheme.issue_update(server, "selftest-epoch");
  if (!scheme.verify_update(server.pub, update)) return false;
  Bytes digest =
      hashing::sha256_concat({to_bytes(update.tag), B::gu_to_bytes(update.sig)});
  return digest == from_hex(expected_hex);
}

/// Seal/open roundtrip for one flavour. The fault corrupts the message
/// fed to seal; the comparison is against the pristine constant, so a
/// sabotaged input (or any seal/open defect) misses the known answer.
template <class Scheme>
bool kat_seal_roundtrip(const Scheme& scheme, core::Mode mode, bool fault) {
  const Bytes msg = to_bytes("tre-selftest-payload");
  hashing::HmacDrbg rng(to_bytes("tre-selftest-seal"));
  auto server = scheme.server_keygen(rng);
  auto user = scheme.user_keygen(server.pub, rng);
  auto update = scheme.issue_update(server, "selftest-epoch");
  auto ct = scheme.seal(mode, maybe_flip(msg, fault), user.pub, server.pub,
                        "selftest-epoch", rng);
  auto out = scheme.open(ct, user.a, update, server.pub);
  return out.has_value() && *out == msg;
}

bool kat_wipe(bool fault) {
  core::Scalar s = core::Scalar::from_u64(0x5a5a5a5a5a5a5a5aULL);
  if (!fault) core::wipe(s);  // the fault here is a wipe that never ran
  volatile const std::uint64_t* p = s.w.data();
  std::uint64_t acc = 0;
  for (size_t i = 0; i < s.w.size(); ++i) acc |= p[i];
  return acc == 0;
}

bool run_one(Kat kat, bool fault) {
  switch (kat) {
    case Kat::kSha256: return kat_sha256(fault);
    case Kat::kHmac: return kat_hmac(fault);
    case Kat::kHkdf: return kat_hkdf(fault);
    case Kat::kDrbg: return kat_drbg(fault);
    case Kat::kPairing512: {
      core::TreScheme scheme(params::load("tre-toy-96"));
      return kat_pairing<core::TreScheme, core::Tre512Backend>(
          scheme, "tre-selftest-pairing-512", kPairing512Expected, fault);
    }
    case Kat::kPairing381: {
      bls12::Tre381Scheme scheme = bls12::make_tre381();
      return kat_pairing<bls12::Tre381Scheme, bls12::Bls381Backend>(
          scheme, "tre-selftest-pairing-381", kPairing381Expected, fault);
    }
    case Kat::kSeal512Basic:
    case Kat::kSeal512Fo:
    case Kat::kSeal512React: {
      core::TreScheme scheme(params::load("tre-toy-96"));
      core::Mode mode = kat == Kat::kSeal512Basic ? core::Mode::kBasic
                        : kat == Kat::kSeal512Fo  ? core::Mode::kFo
                                                  : core::Mode::kReact;
      return kat_seal_roundtrip(scheme, mode, fault);
    }
    case Kat::kSeal381Basic:
    case Kat::kSeal381Fo:
    case Kat::kSeal381React: {
      bls12::Tre381Scheme scheme = bls12::make_tre381();
      core::Mode mode = kat == Kat::kSeal381Basic ? core::Mode::kBasic
                        : kat == Kat::kSeal381Fo  ? core::Mode::kFo
                                                  : core::Mode::kReact;
      return kat_seal_roundtrip(scheme, mode, fault);
    }
    case Kat::kWipe: return kat_wipe(fault);
  }
  return false;
}

constexpr Kat kAllKats[] = {
    Kat::kSha256,       Kat::kHmac,         Kat::kHkdf,        Kat::kDrbg,
    Kat::kPairing512,   Kat::kPairing381,   Kat::kSeal512Basic, Kat::kSeal512Fo,
    Kat::kSeal512React, Kat::kSeal381Basic, Kat::kSeal381Fo,   Kat::kSeal381React,
    Kat::kWipe,
};

// Arms the gate: from now on the first gated entry point anywhere in
// this binary executes run_power_on() once.
const bool g_registered = [] {
  health::register_runner(&run_power_on);
  return true;
}();

}  // namespace

const char* kat_name(Kat k) {
  switch (k) {
    case Kat::kSha256: return "sha256";
    case Kat::kHmac: return "hmac";
    case Kat::kHkdf: return "hkdf";
    case Kat::kDrbg: return "drbg";
    case Kat::kPairing512: return "pairing512";
    case Kat::kPairing381: return "pairing381";
    case Kat::kSeal512Basic: return "seal512-basic";
    case Kat::kSeal512Fo: return "seal512-fo";
    case Kat::kSeal512React: return "seal512-react";
    case Kat::kSeal381Basic: return "seal381-basic";
    case Kat::kSeal381Fo: return "seal381-fo";
    case Kat::kSeal381React: return "seal381-react";
    case Kat::kWipe: return "wipe";
  }
  return "unknown";
}

std::span<const Kat> all_kats() { return kAllKats; }

std::optional<Kat> kat_from_name(std::string_view name) {
  for (Kat k : kAllKats) {
    if (name == kat_name(k)) return k;
  }
  return std::nullopt;
}

Report run(std::optional<Kat> fault) {
  Report report;
  for (Kat k : kAllKats) {
    bool injected = fault.has_value() && *fault == k;
    bool ok = false;
    try {
      ok = run_one(k, injected);
    } catch (...) {
      ok = false;  // a throwing KAT is a failing KAT
    }
    (ok ? report.passed : report.failed).push_back(k);
  }
  return report;
}

bool run_power_on() {
  std::optional<Kat> fault;
  if (const char* name = std::getenv("TRE_SELFTEST_FAULT")) {
    fault = kat_from_name(name);
    // An unrecognized fault name is itself a harness defect: fail closed
    // rather than silently running the clean suite.
    if (!fault.has_value()) return false;
  }
  return run(fault).ok();
}

void ensure_registered() { (void)g_registered; }

}  // namespace tre::selftest
