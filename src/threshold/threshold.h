// Backend-generic k-of-n threshold time server.
//
// §5.3.5 distributes trust so that a receiver must corrupt ALL N servers
// — but decryption then also needs all N updates, so one crashed server
// halts every release. This layer provides the complementary k-of-n
// design (the architecture later deployed by drand/tlock): a master
// secret s is Shamir-shared across n beacon nodes; each publishes a
// PARTIAL update s_i·H1(T); any k valid partials Lagrange-combine into
// the ordinary update s·H1(T).
//
// The combined update verifies against the ordinary group key (G, sG),
// so everything else in the library — encryption, CCA transforms, key
// insulation, archives — runs unchanged on top. Corruption resistance is
// k-1 nodes; liveness tolerates n-k failures.
//
// This header subsumes the two earlier per-backend sketches
// (core::ThresholdTre on tre-512 and bls12::Threshold381 on BLS12-381):
// one BasicThresholdScheme<B> is instantiated over the same
// PairingBackend policies as the generic TRE core, and the old names
// survive as thin aliases. Artifact placement follows the core scheme:
// share commitments s_i·G live in the header group Gh (next to sG),
// partial updates s_i·H1(T) in the update group Gu.
//
// Setup comes in two flavours:
//   * dealer setup here (a trusted dealer samples the polynomial and
//     then forgets it) — the honest baseline tests and benches use;
//   * Pedersen-style distributed key generation (threshold/dkg.h),
//     which removes the dealer without changing any type below.
//
// The Lagrange combination Σᵢ λᵢ·sigᵢ IS a multi-exponentiation, so
// combining routes through B::gu_multiexp (bucketed Pippenger, signed
// digits when they win); batch verification of n partials folds into
// ONE size-2 pairing equation by random linear combination, with
// bisection attribution of the Byzantine subset — the same machinery
// the core scheme uses for verify_updates_batch.
#pragma once

#include <algorithm>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/tre_core.h"
#include "core/wipe.h"

namespace tre::threshold {

using core::Scalar;

struct ThresholdConfig {
  size_t n;  // beacon nodes
  size_t k;  // required partials, 1 <= k <= n
};

/// One node's secret share s_i = f(i).
template <class B>
struct BasicServerShare {
  size_t index = 0;  // 1..n (the Shamir evaluation point)
  Scalar share;

  /// SECRET wire format: u16 index || fixed-width big-endian scalar.
  /// For key files only — never goes over the network.
  Bytes to_bytes(const typename B::Params& params) const {
    Bytes out;
    core::detail::put_u16(out, index);
    Bytes s = share.to_bytes_be(B::scalar_bytes(params));
    out.insert(out.end(), s.begin(), s.end());
    return out;
  }
  static BasicServerShare from_bytes(const typename B::Params& params,
                                     ByteSpan bytes) {
    size_t off = 0;
    size_t index = core::detail::get_u16(bytes, off);
    Bytes s = core::detail::get_exact(bytes, off, B::scalar_bytes(params),
                                      "ServerShare: truncated scalar");
    core::detail::expect_consumed(bytes, off, "ServerShare: trailing bytes");
    return BasicServerShare{index, Scalar::from_bytes_be(s)};
  }
};

/// Public material: the group key users bind to, plus per-node share
/// commitments for partial-update verification.
template <class B>
struct BasicThresholdKey {
  ThresholdConfig config{0, 0};
  core::BasicServerPublicKey<B> group;       // (G, s·G)
  std::vector<typename B::Gh> pub_shares;    // s_i·G, index i-1

  /// The group key IS an ordinary server public key: everything built on
  /// the basic scheme (encrypt, archives, fetchers) binds to this.
  core::BasicServerPublicKey<B> as_server_public_key() const { return group; }

  /// Wire format: u16 n || u16 k || group (G, s·G) || n share
  /// commitments — all points fixed-width compressed.
  Bytes to_bytes() const {
    Bytes out;
    core::detail::put_u16(out, config.n);
    core::detail::put_u16(out, config.k);
    Bytes g = group.to_bytes();
    out.insert(out.end(), g.begin(), g.end());
    for (const typename B::Gh& ps : pub_shares) {
      Bytes w = B::gh_to_bytes(ps);
      out.insert(out.end(), w.begin(), w.end());
    }
    return out;
  }
  static BasicThresholdKey from_bytes(const typename B::Params& params,
                                      ByteSpan bytes) {
    size_t off = 0;
    BasicThresholdKey key;
    key.config.n = core::detail::get_u16(bytes, off);
    key.config.k = core::detail::get_u16(bytes, off);
    require(key.config.k >= 1 && key.config.k <= key.config.n,
            "ThresholdKey: need 1 <= k <= n");
    key.group.g = core::detail::get_gh<B>(params, bytes, off);
    key.group.sg = core::detail::get_gh<B>(params, bytes, off);
    key.pub_shares.reserve(key.config.n);
    for (size_t i = 0; i < key.config.n; ++i) {
      key.pub_shares.push_back(core::detail::get_gh<B>(params, bytes, off));
    }
    core::detail::expect_consumed(bytes, off, "ThresholdKey: trailing bytes");
    return key;
  }
};

/// s_i·H1(T), broadcast by node i at instant T.
template <class B>
struct BasicPartialUpdate {
  size_t index = 0;
  std::string tag;
  typename B::Gu sig;

  /// Wire format: u16 index || u16 tag length || tag || compressed point
  /// — the payload a beacon node serves and a threshold fetcher collects.
  Bytes to_bytes() const {
    Bytes out;
    core::detail::put_u16(out, index);
    core::detail::put_u16(out, tag.size());
    Bytes tag_bytes = tre::to_bytes(tag);
    out.insert(out.end(), tag_bytes.begin(), tag_bytes.end());
    Bytes sig_bytes = B::gu_to_bytes(sig);
    out.insert(out.end(), sig_bytes.begin(), sig_bytes.end());
    return out;
  }
  static BasicPartialUpdate from_bytes(const typename B::Params& params,
                                       ByteSpan bytes) {
    size_t off = 0;
    size_t index = core::detail::get_u16(bytes, off);
    size_t tag_len = core::detail::get_u16(bytes, off);
    Bytes tag_bytes =
        core::detail::get_exact(bytes, off, tag_len, "PartialUpdate: truncated tag");
    typename B::Gu sig = core::detail::get_gu<B>(params, bytes, off);
    core::detail::expect_consumed(bytes, off, "PartialUpdate: trailing bytes");
    return BasicPartialUpdate{index,
                              std::string(tag_bytes.begin(), tag_bytes.end()), sig};
  }

  /// Non-throwing parse for bytes from UNTRUSTED sources (mirrors, the
  /// wire): nullopt on any malformed/truncated/off-curve input. A
  /// returned partial is well-formed but NOT authenticated — callers
  /// must still pass it through verify_partial / verify_partials_batch.
  static std::optional<BasicPartialUpdate> try_from_bytes(
      const typename B::Params& params, ByteSpan bytes) {
    try {
      return from_bytes(params, bytes);
    } catch (const Error&) {
      return std::nullopt;
    }
  }

  friend bool operator==(const BasicPartialUpdate& a, const BasicPartialUpdate& b) {
    return a.index == b.index && a.tag == b.tag && B::gu_eq(a.sig, b.sig);
  }
};

namespace detail {

/// Threshold-layer probe handles, resolved once per process per backend,
/// under "<prefix>threshold.*" (docs/OBSERVABILITY.md).
template <class B>
struct ThresholdProbes {
  static std::string n(const char* suffix) {
    return std::string(B::kProbePrefix) + "threshold." + suffix;
  }

  obs::CounterProbe setups{n("setups")};
  obs::CounterProbe partials_issued{n("partials.issued")};
  obs::CounterProbe partials_verified{n("partials.verified")};
  obs::CounterProbe partials_rejected{n("partials.rejected")};
  obs::CounterProbe combines{n("combines")};
  obs::CounterProbe batch_bisections{n("batch.bisections")};
  obs::CounterProbe multiexp_calls{n("multiexp.calls")};
  obs::CounterProbe multiexp_points{n("multiexp.points")};
  obs::CounterProbe dkg_runs{n("dkg.runs")};
  obs::CounterProbe dkg_complaints{n("dkg.complaints")};
  obs::HistogramProbe combine_ns{n("combine_ns")};
  obs::HistogramProbe batch_verify_ns{n("batch_verify_ns")};

  static const ThresholdProbes& get() {
    static const ThresholdProbes p;
    return p;
  }
};

/// Evaluates f(x) = Σₘ coeffs[m]·xᵐ at x = point by Horner, over the
/// backend's scalar field.
inline field::Fp horner_eval(const field::FpCtx* fq,
                             std::span<const Scalar> coeffs, size_t point) {
  field::Fp x = field::Fp::from_u64(fq, point);
  field::Fp acc = field::Fp::from_int(fq, coeffs.back());
  for (size_t m = coeffs.size() - 1; m-- > 0;) {
    acc = acc * x + field::Fp::from_int(fq, coeffs[m]);
  }
  return acc;
}

}  // namespace detail

/// Lagrange coefficients at zero for the evaluation points `indices`
/// (distinct, 1-based): λᵢ = Πⱼ≠ᵢ xⱼ·(xⱼ - xᵢ)⁻¹ mod q. Exposed for the
/// benches and for anyone combining in the exponent by hand.
template <class B>
std::vector<Scalar> lagrange_at_zero(const typename B::Params& params,
                                     std::span<const size_t> indices) {
  const field::FpCtx* fq = B::scalar_field(params);
  std::vector<Scalar> out;
  out.reserve(indices.size());
  for (size_t i = 0; i < indices.size(); ++i) {
    field::Fp num = field::Fp::one(fq);
    field::Fp den = field::Fp::one(fq);
    field::Fp xi = field::Fp::from_u64(fq, indices[i]);
    for (size_t j = 0; j < indices.size(); ++j) {
      if (j == i) continue;
      field::Fp xj = field::Fp::from_u64(fq, indices[j]);
      num = num * xj;
      den = den * (xj - xi);
    }
    out.push_back((num * den.inverse()).to_int());
  }
  return out;
}

/// The backend-generic threshold scheme. Wraps a BasicTreScheme (for the
/// cached H1 and the pairing plumbing) and adds share issuance,
/// partial-update verification (single, and RLC-batched with Byzantine
/// attribution) and Lagrange aggregation.
template <class B>
class BasicThresholdScheme {
 public:
  using Backend = B;

  explicit BasicThresholdScheme(std::shared_ptr<const typename B::Params> params,
                                core::Tuning tuning = core::Tuning::fast())
      : scheme_(std::move(params), tuning) {}

  const typename B::Params& params() const { return scheme_.params(); }
  const core::BasicTreScheme<B>& scheme() const { return scheme_; }

  /// Dealer setup: samples s and a degree-(k-1) polynomial, returns the
  /// public key material and the n secret shares. The group generator is
  /// the backend's fixed header base (the drand layout); a DKG
  /// (threshold/dkg.h) produces the same types without the dealer.
  std::pair<BasicThresholdKey<B>, std::vector<BasicServerShare<B>>> setup(
      ThresholdConfig config, tre::hashing::RandomSource& rng) const {
    require(config.k >= 1 && config.k <= config.n, "threshold: need 1 <= k <= n");
    require(config.n <= kMaxNodes, "threshold: too many nodes");
    probes().setups.add();
    const typename B::Params& p = params();
    const field::FpCtx* fq = B::scalar_field(p);

    // f(x) = s + c_1 x + ... + c_{k-1} x^{k-1}, coefficients mod q.
    std::vector<Scalar> coeffs;
    coeffs.reserve(config.k);
    for (size_t m = 0; m < config.k; ++m) coeffs.push_back(B::random_scalar(p, rng));

    BasicThresholdKey<B> key;
    key.config = config;
    key.group.g = B::header_base(p);
    key.group.sg = B::gh_mul_secret(p, key.group.g, coeffs[0]);

    std::vector<BasicServerShare<B>> shares;
    shares.reserve(config.n);
    key.pub_shares.reserve(config.n);
    for (size_t i = 1; i <= config.n; ++i) {
      Scalar si = detail::horner_eval(fq, coeffs, i).to_int();
      key.pub_shares.push_back(B::gh_mul_secret(p, key.group.g, si));
      shares.push_back(BasicServerShare<B>{i, si});
    }
    for (Scalar& c : coeffs) core::wipe(c);  // the dealer forgets f
    return {std::move(key), std::move(shares)};
  }

  BasicPartialUpdate<B> issue_partial(const BasicServerShare<B>& share,
                                      std::string_view tag) const {
    require(share.index >= 1, "threshold: share index must be >= 1");
    probes().partials_issued.add();
    return BasicPartialUpdate<B>{
        share.index, std::string(tag),
        B::gu_mul_secret(params(), scheme_.hash_tag(tag), share.share)};
  }

  /// BLS check of one partial against its share commitment:
  /// ê(s_i·G, H1(T)) == ê(G, sig).
  bool verify_partial(const BasicThresholdKey<B>& key,
                      const BasicPartialUpdate<B>& partial) const {
    if (partial.index < 1 || partial.index > key.pub_shares.size()) return false;
    if (B::gu_is_infinity(partial.sig)) return false;
    probes().partials_verified.add();
    pairings_probe().add(2);
    return B::pairings_equal_hu(params(), key.pub_shares[partial.index - 1],
                                scheme_.hash_tag(partial.tag), key.group.g,
                                partial.sig);
  }

  /// Randomized batch verification with Byzantine ATTRIBUTION: folds N
  /// partial checks into one size-2 pairing equation,
  ///
  ///   ê(Σᵢ cᵢ·(s_i·G), H1(T)) == ê(G, Σᵢ cᵢ·sigᵢ),
  ///
  /// with fresh cᵢ ∈ [0, 2^rlc_bits); on failure, bisects to the exact
  /// guilty subset (each leaf re-checked individually, so an honest
  /// partial is never blamed). Returns the sorted positions (into
  /// `partials`) that fail; empty means all accepted. Partials must
  /// share one tag — mismatched tags and out-of-range indices are
  /// reported as bad without touching the pairing.
  std::vector<size_t> verify_partials_batch(const BasicThresholdKey<B>& key,
                                            std::span<const BasicPartialUpdate<B>> partials,
                                            tre::hashing::RandomSource& rng,
                                            unsigned rlc_bits = 128,
                                            unsigned threads = 0) const {
    std::vector<size_t> bad;
    if (partials.empty()) return bad;
    obs::Span span(probes().batch_verify_ns);
    require(rlc_bits >= 1 && rlc_bits <= 256, "threshold: rlc_bits out of range");

    const typename B::Params& p = params();
    const std::string& tag = partials[0].tag;
    std::vector<size_t> live;  // structurally sound, subject to the RLC check
    live.reserve(partials.size());
    for (size_t i = 0; i < partials.size(); ++i) {
      const BasicPartialUpdate<B>& pu = partials[i];
      if (pu.tag != tag || pu.index < 1 || pu.index > key.pub_shares.size() ||
          B::gu_is_infinity(pu.sig)) {
        bad.push_back(i);
      } else {
        live.push_back(i);
      }
    }
    if (live.empty()) {
      probes().partials_rejected.add(bad.size());
      return bad;
    }

    const typename B::Gu h1t = scheme_.hash_tag(tag);
    const size_t scalar_len = (rlc_bits + 7) / 8;
    auto draw_scalars = [&](size_t n) {
      std::vector<Scalar> out;
      out.reserve(n);
      Bytes buf = rng.bytes(n * scalar_len);
      for (size_t i = 0; i < n; ++i) {
        std::span<std::uint8_t> chunk(buf.data() + i * scalar_len, scalar_len);
        if (rlc_bits % 8 != 0) {
          chunk[0] &= static_cast<std::uint8_t>((1u << (rlc_bits % 8)) - 1);
        }
        out.push_back(Scalar::from_bytes_be(chunk));
      }
      return out;
    };

    // One RLC equation over live[lo, hi): two multi-exps + one size-2
    // pairing check.
    auto rlc_holds = [&](size_t lo, size_t hi) {
      const size_t n = hi - lo;
      std::vector<Scalar> c = draw_scalars(n);
      std::vector<typename B::Gh> commits;
      std::vector<typename B::Gu> sigs;
      commits.reserve(n);
      sigs.reserve(n);
      for (size_t k = 0; k < n; ++k) {
        const BasicPartialUpdate<B>& pu = partials[live[lo + k]];
        commits.push_back(key.pub_shares[pu.index - 1]);
        sigs.push_back(pu.sig);
      }
      probes().multiexp_calls.add(2);
      probes().multiexp_points.add(2 * n);
      typename B::Gh folded_commit = B::gh_multiexp(p, commits, c, threads);
      typename B::Gu folded_sig = B::gu_multiexp(p, sigs, c, threads);
      pairings_probe().add(2);
      return B::pairings_equal_hu(p, folded_commit, h1t, key.group.g, folded_sig);
    };

    auto check = [&](auto&& self, size_t lo, size_t hi) -> void {
      const size_t n = hi - lo;
      if (n == 0) return;
      if (n == 1) {
        const size_t idx = live[lo];
        if (!verify_partial(key, partials[idx])) bad.push_back(idx);
        return;
      }
      if (rlc_holds(lo, hi)) return;
      probes().batch_bisections.add();
      const size_t mid = lo + n / 2;
      self(self, lo, mid);
      self(self, mid, hi);
    };
    check(check, 0, live.size());

    std::sort(bad.begin(), bad.end());
    probes().partials_rejected.add(bad.size());
    return bad;
  }

  /// Lagrange-combines >= k partials (distinct indices, same tag) into
  /// the ordinary s·H1(T) update — one Gu multi-exponentiation with the
  /// λᵢ as scalars. Throws on malformed input sets; the caller should
  /// verify first (an unverified bad partial yields an update that fails
  /// verify_update()).
  core::BasicKeyUpdate<B> combine(const BasicThresholdKey<B>& key,
                                  std::span<const BasicPartialUpdate<B>> partials,
                                  unsigned threads = 0) const {
    require(partials.size() >= key.config.k,
            "threshold: not enough partial updates");
    obs::Span span(probes().combine_ns);

    // First k distinct, in-range, same-tag partials.
    std::vector<size_t> indices;
    std::vector<typename B::Gu> sigs;
    indices.reserve(key.config.k);
    sigs.reserve(key.config.k);
    for (const BasicPartialUpdate<B>& pu : partials) {
      if (indices.size() == key.config.k) break;
      require(pu.tag == partials[0].tag, "threshold: mixed tags in combine");
      require(pu.index >= 1 && pu.index <= key.config.n,
              "threshold: partial index out of range");
      require(std::find(indices.begin(), indices.end(), pu.index) == indices.end(),
              "threshold: duplicate partial index");
      indices.push_back(pu.index);
      sigs.push_back(pu.sig);
    }
    require(indices.size() == key.config.k, "threshold: not enough partial updates");

    std::vector<Scalar> lambdas = lagrange_at_zero<B>(params(), indices);
    probes().combines.add();
    probes().multiexp_calls.add();
    probes().multiexp_points.add(sigs.size());
    return core::BasicKeyUpdate<B>{
        partials[0].tag, B::gu_multiexp(params(), sigs, lambdas, threads)};
  }

  /// Verify-then-combine with typed errors: batch-verifies `partials`,
  /// drops the Byzantine subset, and combines k good ones. Returns
  /// Errc::kInsufficientPartials when fewer than k distinct valid
  /// partials survive; the aggregated update additionally passes a
  /// sanity verify_update against the group key (belt and braces — a
  /// combination of verified partials cannot fail it). `bad_out`, when
  /// non-null, receives the sorted positions of rejected partials for
  /// caller-side attribution.
  Result<core::BasicKeyUpdate<B>> try_combine(
      const BasicThresholdKey<B>& key,
      std::span<const BasicPartialUpdate<B>> partials,
      tre::hashing::RandomSource& rng, std::vector<size_t>* bad_out = nullptr,
      unsigned rlc_bits = 128, unsigned threads = 0) const {
    std::vector<size_t> bad = verify_partials_batch(key, partials, rng, rlc_bits, threads);
    if (bad_out != nullptr) *bad_out = bad;

    std::vector<BasicPartialUpdate<B>> good;
    std::vector<size_t> seen;
    good.reserve(partials.size());
    {
      size_t b = 0;
      for (size_t i = 0; i < partials.size(); ++i) {
        if (b < bad.size() && bad[b] == i) {
          ++b;
          continue;
        }
        if (std::find(seen.begin(), seen.end(), partials[i].index) != seen.end()) {
          continue;  // duplicate honest index: keep the first
        }
        seen.push_back(partials[i].index);
        good.push_back(partials[i]);
      }
    }
    if (good.size() < key.config.k) return Errc::kInsufficientPartials;

    core::BasicKeyUpdate<B> update = combine(key, good, threads);
    if (!scheme_.verify_update(key.group, update)) return Errc::kBadPartial;
    return update;
  }

  /// Recovers the master secret from >= k shares — a test/escrow utility
  /// (a production deployment never reassembles s).
  Scalar recover_secret(const BasicThresholdKey<B>& key,
                        std::span<const BasicServerShare<B>> shares) const {
    require(shares.size() >= key.config.k, "threshold: not enough shares");
    const field::FpCtx* fq = B::scalar_field(params());
    std::vector<size_t> indices;
    indices.reserve(key.config.k);
    for (size_t i = 0; i < key.config.k; ++i) {
      require(shares[i].index >= 1 && shares[i].index <= key.config.n,
              "threshold: share index out of range");
      require(std::find(indices.begin(), indices.end(), shares[i].index) ==
                  indices.end(),
              "threshold: duplicate share index");
      indices.push_back(shares[i].index);
    }
    std::vector<Scalar> lambdas = lagrange_at_zero<B>(params(), indices);
    field::Fp acc = field::Fp::zero(fq);
    for (size_t i = 0; i < key.config.k; ++i) {
      acc = acc + field::Fp::from_int(fq, shares[i].share) *
                      field::Fp::from_int(fq, lambdas[i]);
    }
    return acc.to_int();
  }

  /// Wire-format bound on n (u16 index field; far above any real beacon).
  static constexpr size_t kMaxNodes = 4096;

 private:
  static const detail::ThresholdProbes<B>& probes() {
    return detail::ThresholdProbes<B>::get();
  }
  // Pairings have no threshold-local name: they ride the core scheme's
  // counter so OBSERVABILITY's pairing totals stay whole-process truthful.
  static const obs::CounterProbe& pairings_probe() {
    return core::detail::SchemeProbes<B>::get().pairings;
  }

  core::BasicTreScheme<B> scheme_;
};

/// Best-effort scrubbing of threshold secret/key material (same caveats
/// as core/wipe.h).
template <class B>
void wipe(BasicServerShare<B>& share) {
  core::wipe(share.share);
  share.index = 0;
}

template <class B>
void wipe(BasicThresholdKey<B>& key) {
  key.group = core::BasicServerPublicKey<B>{};
  for (typename B::Gh& p : key.pub_shares) p = typename B::Gh{};
  key.pub_shares.clear();
  key.config = ThresholdConfig{0, 0};
}

}  // namespace tre::threshold
