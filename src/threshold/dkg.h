// Pedersen-style (joint-Feldman) distributed key generation.
//
// Removes the trusted dealer from threshold setup: every node acts as a
// dealer of its own random degree-(k-1) polynomial f_i, broadcasts the
// Feldman commitment C_{i,m} = c_{i,m}·G to each coefficient, and sends
// f_i(j) privately to node j. Node j checks each deal against the
// dealer's commitment,
//
//   f_i(j)·G  ==  Σₘ jᵐ·C_{i,m}            (one Gh multi-exponentiation),
//
// and broadcasts a COMPLAINT against any dealer whose deal fails. A
// complained-against dealer must justify by revealing the deal; a
// justification that still fails the same public check disqualifies the
// dealer. The surviving dealers form QUAL; the shared secret is
// s = Σ_{i∈QUAL} f_i(0) (never materialized anywhere), node j's share is
// s_j = Σ_{i∈QUAL} f_i(j), and all public material — group key sG and
// share commitments s_j·G — is computable by ANYONE from the broadcast
// commitments alone. The output types are exactly the dealer-based
// BasicThresholdKey / BasicServerShare, so everything downstream
// (partials, aggregation, fetchers) is oblivious to how setup ran.
//
// |QUAL| < k aborts with Errc::kDkgComplaint: fewer honest dealers than
// the reconstruction threshold means the run cannot guarantee an
// unbiased secret.
//
// The message structs carry wire codecs (a broadcast channel is assumed
// authenticated, as usual for DKG); run_dkg() drives the rounds
// in-process — over simnet in the tests, with a tamper hook standing in
// for a Byzantine dealer's network behaviour.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "threshold/threshold.h"

namespace tre::threshold {

/// Round-1 broadcast: dealer i's Feldman commitment to its polynomial.
template <class B>
struct DkgCommitment {
  size_t dealer = 0;                     // 1..n
  std::vector<typename B::Gh> coeffs;    // C_{i,m} = c_{i,m}·G, m = 0..k-1

  Bytes to_bytes() const {
    Bytes out;
    core::detail::put_u16(out, dealer);
    core::detail::put_u16(out, coeffs.size());
    for (const typename B::Gh& c : coeffs) {
      Bytes b = B::gh_to_bytes(c);
      out.insert(out.end(), b.begin(), b.end());
    }
    return out;
  }
  static DkgCommitment from_bytes(const typename B::Params& params, ByteSpan bytes) {
    size_t off = 0;
    DkgCommitment c;
    c.dealer = core::detail::get_u16(bytes, off);
    size_t k = core::detail::get_u16(bytes, off);
    c.coeffs.reserve(k);
    for (size_t m = 0; m < k; ++m) {
      c.coeffs.push_back(core::detail::get_gh<B>(params, bytes, off));
    }
    core::detail::expect_consumed(bytes, off, "DkgCommitment: trailing bytes");
    return c;
  }
};

/// Round-2 broadcast: node `accuser` could not verify dealer `dealer`'s
/// private deal against the public commitment.
struct DkgComplaint {
  size_t accuser = 0;
  size_t dealer = 0;
};

/// The public Feldman check, usable by any observer (in particular when
/// adjudicating a complaint against a revealed deal):
/// deal·G == Σₘ recipientᵐ·C_{dealer,m}.
template <class B>
bool dkg_check_deal(const typename B::Params& params, const ThresholdConfig& config,
                    size_t recipient, const DkgCommitment<B>& commitment,
                    const Scalar& deal) {
  if (commitment.coeffs.size() != config.k) return false;
  if (recipient < 1 || recipient > config.n) return false;
  const field::FpCtx* fq = B::scalar_field(params);
  std::vector<Scalar> powers;
  powers.reserve(config.k);
  field::Fp x = field::Fp::from_u64(fq, recipient);
  field::Fp xm = field::Fp::one(fq);
  for (size_t m = 0; m < config.k; ++m) {
    powers.push_back(xm.to_int());
    xm = xm * x;
  }
  detail::ThresholdProbes<B>::get().multiexp_calls.add();
  detail::ThresholdProbes<B>::get().multiexp_points.add(config.k);
  typename B::Gh rhs = B::gh_multiexp(params, commitment.coeffs, powers, 1);
  typename B::Gh lhs = B::gh_mul_secret(params, B::header_base(params), deal);
  return B::gh_eq(lhs, rhs);
}

/// One DKG participant: holds its own secret polynomial plus the deals
/// and commitments accepted from other dealers.
template <class B>
class DkgNode {
 public:
  DkgNode(std::shared_ptr<const typename B::Params> params, ThresholdConfig config,
          size_t index, tre::hashing::RandomSource& rng)
      : params_(std::move(params)), config_(config), index_(index) {
    require(params_ != nullptr, "dkg: null params");
    require(config.k >= 1 && config.k <= config.n, "dkg: need 1 <= k <= n");
    require(index >= 1 && index <= config.n, "dkg: node index out of range");
    const typename B::Params& p = *params_;
    coeffs_.reserve(config.k);
    commitment_.dealer = index;
    commitment_.coeffs.reserve(config.k);
    for (size_t m = 0; m < config.k; ++m) {
      coeffs_.push_back(B::random_scalar(p, rng));
      commitment_.coeffs.push_back(
          B::gh_mul_secret(p, B::header_base(p), coeffs_[m]));
    }
    received_deals_.assign(config.n + 1, Scalar{});
    have_deal_.assign(config.n + 1, false);
  }

  size_t index() const { return index_; }
  const DkgCommitment<B>& commitment() const { return commitment_; }

  /// The private deal f_i(recipient) this node sends as a dealer.
  Scalar deal_for(size_t recipient) const {
    require(recipient >= 1 && recipient <= config_.n,
            "dkg: deal recipient out of range");
    return detail::horner_eval(B::scalar_field(*params_), coeffs_, recipient)
        .to_int();
  }

  /// Ingests dealer's commitment + the deal addressed to THIS node.
  /// Returns false — i.e. "file a complaint" — when the Feldman check
  /// fails; a later justified deal may be re-submitted through here.
  bool receive(const DkgCommitment<B>& commitment, const Scalar& deal) {
    if (commitment.dealer < 1 || commitment.dealer > config_.n) return false;
    if (!dkg_check_deal<B>(*params_, config_, index_, commitment, deal)) {
      return false;
    }
    received_deals_[commitment.dealer] = deal;
    have_deal_[commitment.dealer] = true;
    return true;
  }

  /// Round 3: this node's share of the group secret, s_j = Σ_{i∈QUAL} f_i(j).
  /// (A node deals to itself too, so its own index may appear in `qual`.)
  BasicServerShare<B> finalize(std::span<const size_t> qual) const {
    const field::FpCtx* fq = B::scalar_field(*params_);
    field::Fp acc = field::Fp::zero(fq);
    for (size_t dealer : qual) {
      require(dealer >= 1 && dealer <= config_.n && have_deal_[dealer],
              "dkg: finalize over a dealer with no accepted deal");
      acc = acc + field::Fp::from_int(fq, received_deals_[dealer]);
    }
    return BasicServerShare<B>{index_, acc.to_int()};
  }

 private:
  std::shared_ptr<const typename B::Params> params_;
  ThresholdConfig config_;
  size_t index_;
  std::vector<Scalar> coeffs_;        // this node's f_i
  DkgCommitment<B> commitment_;       // C_{i,m} = c_{i,m}·G
  std::vector<Scalar> received_deals_;  // index = dealer, 1-based
  std::vector<bool> have_deal_;
};

/// Derives ALL public threshold material from the qualified dealers'
/// broadcast commitments — no secret input: group key
/// sG = Σ_{i∈QUAL} C_{i,0}, share commitment
/// s_j·G = Σ_{i∈QUAL} Σₘ jᵐ·C_{i,m} (one Gh multi-exp per node).
template <class B>
BasicThresholdKey<B> dkg_public_key(const typename B::Params& params,
                                    ThresholdConfig config,
                                    std::span<const DkgCommitment<B>> qual_commitments) {
  require(!qual_commitments.empty(), "dkg: empty qualified set");
  const field::FpCtx* fq = B::scalar_field(params);
  const Scalar one = field::Fp::one(fq).to_int();

  BasicThresholdKey<B> key;
  key.config = config;
  key.group.g = B::header_base(params);

  std::vector<typename B::Gh> constant_terms;
  constant_terms.reserve(qual_commitments.size());
  std::vector<Scalar> ones(qual_commitments.size(), one);
  for (const DkgCommitment<B>& c : qual_commitments) {
    require(c.coeffs.size() == config.k, "dkg: commitment degree mismatch");
    constant_terms.push_back(c.coeffs[0]);
  }
  key.group.sg = B::gh_multiexp(params, constant_terms, ones, 1);

  std::vector<typename B::Gh> all_coeffs;
  all_coeffs.reserve(qual_commitments.size() * config.k);
  for (const DkgCommitment<B>& c : qual_commitments) {
    all_coeffs.insert(all_coeffs.end(), c.coeffs.begin(), c.coeffs.end());
  }
  key.pub_shares.reserve(config.n);
  for (size_t j = 1; j <= config.n; ++j) {
    std::vector<Scalar> scalars;
    scalars.reserve(all_coeffs.size());
    field::Fp x = field::Fp::from_u64(fq, j);
    for (size_t i = 0; i < qual_commitments.size(); ++i) {
      field::Fp xm = field::Fp::one(fq);
      for (size_t m = 0; m < config.k; ++m) {
        scalars.push_back(xm.to_int());
        xm = xm * x;
      }
    }
    detail::ThresholdProbes<B>::get().multiexp_calls.add();
    detail::ThresholdProbes<B>::get().multiexp_points.add(all_coeffs.size());
    key.pub_shares.push_back(B::gh_multiexp(params, all_coeffs, scalars, 1));
  }
  return key;
}

/// Everything a completed run produces. `complaints` lists the UPHELD
/// complaints (the disqualifying ones) for caller-side attribution.
template <class B>
struct DkgResult {
  BasicThresholdKey<B> key;
  std::vector<BasicServerShare<B>> shares;  // one per node, index order
  std::vector<size_t> qualified;            // QUAL, ascending dealer indices
  std::vector<DkgComplaint> complaints;     // upheld only
};

/// Test/fault hook: mutate dealer→recipient deal values in flight.
/// Called for the round-1 private send (`justification` false) and again
/// for the dealer's public justification after a complaint
/// (`justification` true) — a dealer that is Byzantine rather than
/// merely unlucky corrupts both, and is disqualified.
using DkgTamper =
    std::function<void(size_t dealer, size_t recipient, bool justification,
                       Scalar& value)>;

/// Drives a full joint-Feldman run in-process: commitments, private
/// deals, complaint round, justifications, finalization. Aborts with
/// Errc::kDkgComplaint when fewer than k dealers survive.
template <class B>
Result<DkgResult<B>> run_dkg(std::shared_ptr<const typename B::Params> params,
                             ThresholdConfig config,
                             tre::hashing::RandomSource& rng,
                             const DkgTamper& tamper = nullptr) {
  require(params != nullptr, "dkg: null params");
  require(config.k >= 1 && config.k <= config.n, "dkg: need 1 <= k <= n");
  detail::ThresholdProbes<B>::get().dkg_runs.add();

  std::vector<DkgNode<B>> nodes;
  nodes.reserve(config.n);
  for (size_t i = 1; i <= config.n; ++i) {
    nodes.emplace_back(params, config, i, rng);
  }

  // Rounds 1+2: every dealer sends f_i(j) to every node; Feldman
  // failures become complaints.
  std::vector<DkgComplaint> pending;
  for (size_t i = 1; i <= config.n; ++i) {
    for (size_t j = 1; j <= config.n; ++j) {
      Scalar deal = nodes[i - 1].deal_for(j);
      if (tamper) tamper(i, j, /*justification=*/false, deal);
      if (!nodes[j - 1].receive(nodes[i - 1].commitment(), deal)) {
        pending.push_back(DkgComplaint{j, i});
      }
    }
  }

  // Justification round: a complained-against dealer reveals the deal
  // publicly; everyone re-runs the same check. A still-failing reveal
  // disqualifies the dealer; a passing one is adopted by the accuser.
  std::vector<bool> disqualified(config.n + 1, false);
  std::vector<DkgComplaint> upheld;
  for (const DkgComplaint& c : pending) {
    if (disqualified[c.dealer]) continue;
    Scalar revealed = nodes[c.dealer - 1].deal_for(c.accuser);
    if (tamper) tamper(c.dealer, c.accuser, /*justification=*/true, revealed);
    if (dkg_check_deal<B>(*params, config, c.accuser,
                          nodes[c.dealer - 1].commitment(), revealed)) {
      bool ok = nodes[c.accuser - 1].receive(nodes[c.dealer - 1].commitment(),
                                             revealed);
      require(ok, "dkg: adjudicated deal rejected by accuser");
    } else {
      disqualified[c.dealer] = true;
      upheld.push_back(c);
      detail::ThresholdProbes<B>::get().dkg_complaints.add();
    }
  }

  DkgResult<B> out;
  out.complaints = std::move(upheld);
  for (size_t i = 1; i <= config.n; ++i) {
    if (!disqualified[i]) out.qualified.push_back(i);
  }
  if (out.qualified.size() < config.k) return Errc::kDkgComplaint;

  std::vector<DkgCommitment<B>> qual_commitments;
  qual_commitments.reserve(out.qualified.size());
  for (size_t i : out.qualified) {
    qual_commitments.push_back(nodes[i - 1].commitment());
  }
  out.key = dkg_public_key<B>(*params, config, qual_commitments);
  out.shares.reserve(config.n);
  for (size_t j = 1; j <= config.n; ++j) {
    out.shares.push_back(nodes[j - 1].finalize(out.qualified));
  }
  return out;
}

}  // namespace tre::threshold
