#include "core/wipe.h"

namespace tre::core {

void wipe(Scalar& s) {
  volatile std::uint64_t* p = s.w.data();
  for (size_t i = 0; i < s.w.size(); ++i) p[i] = 0;
}

void wipe(ServerKeyPair& keys) { wipe(keys.s); }

void wipe(UserKeyPair& keys) { wipe(keys.a); }

void wipe(EpochKey& key) {
  // The epoch point is itself secret material for its epoch; replace it
  // with infinity (coordinates are public-form anyway, so structural
  // reset suffices).
  key.d = ec::G1Point::infinity(key.d.curve());
  key.tag.clear();
}

}  // namespace tre::core
