// k-of-n threshold time server — type-1 instantiation.
//
// The implementation lives in the backend-generic layer
// (threshold/threshold.h, DKG in threshold/dkg.h); this header keeps the
// historical type-1 names as thin aliases. §5.3.5 background and the
// drand/tlock framing are documented there.
//
// One deliberate behaviour change from the pre-generic sketch: setup now
// uses the parameter set's FIXED base point as the group generator
// (B::header_base — the drand layout, matching the BLS12-381
// instantiation) instead of sampling a random generator per network. The
// combined update s·H1(T) never involves the generator, so nothing
// downstream observes the difference.
#pragma once

#include "core/tre.h"
#include "threshold/threshold.h"

namespace tre::core {

using ThresholdConfig = threshold::ThresholdConfig;

/// One server's secret share s_i = f(i).
using ServerShare = threshold::BasicServerShare<Tre512Backend>;

/// Public material: the group key users bind to, plus per-server share
/// commitments for partial-update verification.
using ThresholdServerKey = threshold::BasicThresholdKey<Tre512Backend>;

/// s_i·H1(T), broadcast by server i at instant T.
using PartialUpdate = threshold::BasicPartialUpdate<Tre512Backend>;

using ThresholdTre = threshold::BasicThresholdScheme<Tre512Backend>;

}  // namespace tre::core
