// k-of-n threshold time server.
//
// §5.3.5 distributes trust so that a receiver must corrupt ALL N servers
// — but decryption then also needs all N updates, so one crashed server
// halts every release. This module provides the complementary k-of-n
// design (the architecture later deployed by drand/tlock): a master
// secret s is Shamir-shared across n servers; each publishes a PARTIAL
// update s_i·H1(T); any k valid partials Lagrange-combine into the
// ordinary update s·H1(T).
//
// The combined update verifies against the ordinary group key (G, sG),
// so everything else in the library — encryption, CCA transforms, key
// insulation, archives — runs unchanged on top. Corruption resistance is
// k-1 servers; liveness tolerates n-k failures.
//
// Setup here is dealer-based (a trusted dealer samples the polynomial
// and then forgets it); a distributed key generation protocol can
// replace the dealer without changing any type below.
#pragma once

#include <span>
#include <vector>

#include "core/tre.h"

namespace tre::core {

struct ThresholdConfig {
  size_t n;  // servers
  size_t k;  // required partials, 1 <= k <= n
};

/// One server's secret share s_i = f(i).
struct ServerShare {
  size_t index;  // 1..n (the Shamir evaluation point)
  Scalar share;
};

/// Public material: the group key users bind to, plus per-server share
/// commitments for partial-update verification.
struct ThresholdServerKey {
  ThresholdConfig config;
  ServerPublicKey group;                // (G, s·G)
  std::vector<ec::G1Point> pub_shares;  // s_i·G, index i-1
};

/// s_i·H1(T), broadcast by server i at instant T.
struct PartialUpdate {
  size_t index;
  std::string tag;
  ec::G1Point sig;
};

class ThresholdTre {
 public:
  explicit ThresholdTre(std::shared_ptr<const params::GdhParams> params);

  const params::GdhParams& params() const { return scheme_.params(); }
  const TreScheme& scheme() const { return scheme_; }

  /// Dealer setup: samples s and a degree-(k-1) polynomial, returns the
  /// public key material and the n secret shares.
  std::pair<ThresholdServerKey, std::vector<ServerShare>> setup(
      ThresholdConfig config, tre::hashing::RandomSource& rng) const;

  PartialUpdate issue_partial(const ServerShare& share, std::string_view tag) const;

  /// BLS check of one partial against its share commitment:
  /// ê(s_i·G, H1(T)) == ê(G, sig).
  bool verify_partial(const ThresholdServerKey& key, const PartialUpdate& partial) const;

  /// Lagrange-combines >= k partials (distinct indices, same tag) into
  /// the ordinary s·H1(T) update. Throws on malformed input sets; the
  /// caller should verify_partial() first (an unverified bad partial
  /// yields an update that fails verify_update()).
  KeyUpdate combine(const ThresholdServerKey& key,
                    std::span<const PartialUpdate> partials) const;

 private:
  TreScheme scheme_;
};

}  // namespace tre::core
