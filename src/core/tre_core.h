// Backend-generic TRE core — the paper's §5.1 construction written ONCE
// over an abstract pairing backend.
//
// The construction only assumes a Gap Diffie-Hellman group with a
// pairing, so the whole production surface (seal/open modes, the step-1
// receiver-key check, the Tuning memo caches, the batch APIs, the obs
// probes, the wire codecs) is a template over a `PairingBackend` policy
// and instantiated per curve:
//   * core::Tre512Backend  (core/backend512.h)  — the 2005-era type-1
//     supersingular curve. `core::TreScheme` is that instantiation, and
//     its outputs are bit-identical to the pre-template scheme.
//   * bls12::Bls381Backend (bls12/backend381.h) — BLS12-381, the type-3
//     curve today's deployments of this very scheme (drand/tlock) use.
//
// A backend names two source groups, because the type-3 artifacts split:
//   * Gu — the "update" group: key updates I_T = s·H1(T), the H1 image,
//     the user's certifiable anchor aG, and epoch keys. G_1 on both
//     backends (type-3 G_1 points are the SHORT ones — BLS signatures).
//   * Gh — the "header" group: the server generator G, the public keys
//     sG / a·sG, and the ciphertext header U = rG. G_1 again on the
//     symmetric curve; G_2 on BLS12-381.
// The pairing is oriented Gu × Gh -> Gt by named operations
// (pair_session, pair_decrypt, pairings_equal_{uh,hu}) so that each
// type-1 call site keeps its exact historical argument order — that is
// what keeps the 512 instantiation bit-identical (test_seal's golden
// vectors enforce it).
//
// The backend policy (all static; `Params` is the curve context):
//   types   : Params, Gu, Gh, Gt, GhPrecomp (fixed-base engine),
//             PairPrecomp (Miller-line engine)
//   consts  : kProbePrefix (obs name prefix, e.g. "core." /
//             "core.bls381."), kAnchorIsGh (type-1: the anchor aG lives
//             in Gh and shares its comb cache; type-3: it is a·G1gen)
//   scalars : random_scalar, scalar_bytes, group_order
//   hashing : hash_tag (H1 onto Gu)
//   groups  : {gu,gh}_{mul,mul_secret,is_infinity,in_subgroup,eq,
//             to_bytes,from_bytes,wire_bytes}, header_base, anchor_base
//   pairing : pair_session(asg, h1t), pair_decrypt(sig, u),
//             pairings_equal_uh/hu, same_secret, gt_pow, gt_to_bytes
//   precomp : make_comb, make_lines
#pragma once

#include <algorithm>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <variant>
#include <vector>

#include "bigint/prime.h"
#include "common/error.h"
#include "common/health.h"
#include "field/fp.h"
#include "common/parallel.h"
#include "common/snapshot_cache.h"
#include "hashing/drbg.h"
#include "hashing/kdf.h"
#include "obs/metrics.h"

namespace tre::core {

using Scalar = field::FpInt;  // value in [1, q); both backends share it

/// The ciphertext flavours behind one API. kBasic is the §5.1 scheme
/// verbatim (malleable, CPA only); kFo and kReact are the paper's two
/// CCA transforms. kHybrid is the defense-in-depth envelope (payload key
/// sealed under TRE *and* an RSW time-lock puzzle); its encoding lives
/// in timelock/hybrid.h — here it only reserves the wire byte. Values
/// are the wire header byte — fixed forever.
enum class Mode : std::uint8_t { kBasic = 1, kFo = 2, kReact = 3, kHybrid = 4 };

inline const char* mode_name(Mode m) {
  switch (m) {
    case Mode::kBasic: return "basic";
    case Mode::kFo: return "fo";
    case Mode::kReact: return "react";
    case Mode::kHybrid: return "hybrid";
  }
  return "unknown";
}

/// Whether encrypt() performs the paper's step-1 pairing check on the
/// receiver public key. The check proves asg is really a·(sG), i.e. the
/// receiver cannot decrypt without the server's update.
enum class KeyCheck { kVerify, kSkip };

/// Feature switches of the scalar-multiplication / precomputation engine.
/// The default enables everything; legacy() reproduces the seed cost
/// profile (no tables, no memoization, binary G_T exponentiation) and is
/// what the before/after benchmarks and the equivalence tests run against.
/// Every switch is output-transparent: ciphertexts and plaintexts are
/// bit-identical across tunings.
struct Tuning {
  bool fixed_base_comb = true;     ///< comb tables per generator
  bool cache_tags = true;          ///< memoize H1(T) per scheme
  bool cache_key_checks = true;    ///< memoize successful receiver-key pairing checks
  bool cache_pair_bases = true;    ///< memoize ê(asG, H1(T)); encrypt pays one G_T pow
  bool cache_update_lines = true;  ///< Miller-loop line precomp per key update
  bool unitary_gt_pow = true;      ///< conjugate-wNAF G_T exponentiation (type-1 only)
  /// Read-mostly cache concurrency: true = RCU-style snapshot reads with
  /// zero shared writes on a hit (common/snapshot_cache.h); false = the
  /// PR-1-era behaviour of taking a lock on every cache access. Purely a
  /// concurrency-substrate switch — cached values, hit/miss pattern and
  /// all outputs are bit-identical either way (test_concurrency proves it).
  bool snapshot_caches = true;

  static Tuning fast() { return Tuning{}; }
  /// fast() on the locked cache substrate — the "before" side of the
  /// multicore scaling comparison and of the cache-equivalence tests.
  static Tuning fast_locked() {
    Tuning t;
    t.snapshot_caches = false;
    return t;
  }
  static Tuning legacy() {
    return Tuning{false, false, false, false, false, false, false};
  }
};

namespace detail {

inline constexpr size_t kSigmaBytes = 32;  // FO commitment / REACT witness size
inline constexpr size_t kMacBytes = 32;

// Bound on each memoization map. The live working set is tiny (a few
// generators, one tag and one update per epoch), so the bound only guards
// against unbounded growth under adversarial tag floods; wholesale
// clearing on overflow is good enough.
inline constexpr size_t kMaxCacheEntries = 1024;

inline void put_u16(Bytes& out, size_t v) {
  require(v <= 0xffff, "serialization: length exceeds u16");
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
}

inline size_t get_u16(ByteSpan bytes, size_t& off) {
  require(off + 2 <= bytes.size(), "deserialization: truncated length");
  size_t v = static_cast<size_t>(bytes[off]) << 8 | bytes[off + 1];
  off += 2;
  return v;
}

inline Bytes get_exact(ByteSpan bytes, size_t& off, size_t n, const char* what) {
  require(off + n <= bytes.size(), what);
  Bytes out(bytes.begin() + static_cast<long>(off),
            bytes.begin() + static_cast<long>(off + n));
  off += n;
  return out;
}

inline void expect_consumed(ByteSpan bytes, size_t off, const char* what) {
  require(off == bytes.size(), what);
}

/// Reads one fixed-width Gu point; the backend's from_bytes validates
/// curve and subgroup membership (small-subgroup hardening), so every
/// deserialized protocol point is in the prime-order group.
template <class B>
typename B::Gu get_gu(const typename B::Params& params, ByteSpan bytes, size_t& off) {
  Bytes raw = get_exact(bytes, off, B::gu_wire_bytes(params),
                        "deserialization: truncated point");
  return B::gu_from_bytes(params, raw);
}

template <class B>
typename B::Gh get_gh(const typename B::Params& params, ByteSpan bytes, size_t& off) {
  Bytes raw = get_exact(bytes, off, B::gh_wire_bytes(params),
                        "deserialization: truncated point");
  return B::gh_from_bytes(params, raw);
}

// Hot-path probe handles, resolved once per process PER BACKEND: the
// backend's kProbePrefix labels the instruments, so the type-1 scheme
// keeps its documented "core.*" names while BLS12-381 reports under
// "core.bls381.*" (docs/OBSERVABILITY.md lists both catalogs). Under
// -DTRE_METRICS=OFF every member is an empty no-op and the optimizer
// erases the call sites.
template <class B>
struct SchemeProbes {
  static std::string n(const char* suffix) {
    return std::string(B::kProbePrefix) + suffix;
  }

  obs::CounterProbe pairings{n("pairings")};
  obs::CounterProbe mul_fixed{n("mul.fixed_base")};
  obs::CounterProbe mul_comb{n("mul.comb")};
  obs::CounterProbe mul_varying{n("mul.varying_base")};
  obs::CounterProbe tag_hit{n("cache.tags.hit")};
  obs::CounterProbe tag_miss{n("cache.tags.miss")};
  obs::CounterProbe comb_hit{n("cache.combs.hit")};
  obs::CounterProbe comb_miss{n("cache.combs.miss")};
  obs::CounterProbe keycheck_hit{n("cache.key_checks.hit")};
  obs::CounterProbe keycheck_miss{n("cache.key_checks.miss")};
  obs::CounterProbe pairbase_hit{n("cache.pair_bases.hit")};
  obs::CounterProbe pairbase_miss{n("cache.pair_bases.miss")};
  obs::CounterProbe lines_hit{n("cache.lines.hit")};
  obs::CounterProbe lines_miss{n("cache.lines.miss")};
  obs::CounterProbe seals{n("seals")};
  obs::CounterProbe opens{n("opens")};
  obs::CounterProbe updates_issued{n("updates_issued")};
  obs::CounterProbe updates_verified{n("updates_verified")};
  // Multi-exponentiation engine: invocations and total points folded.
  obs::CounterProbe multiexp_calls{n("multiexp.calls")};
  obs::CounterProbe multiexp_points{n("multiexp.points")};
  // Randomized batch verification: per-update accept/reject outcomes and
  // the number of RLC splits taken while attributing failures.
  obs::CounterProbe batch_accepted{n("batch_verify.accepted")};
  obs::CounterProbe batch_rejected{n("batch_verify.rejected")};
  obs::CounterProbe batch_bisections{n("batch_verify.bisections")};
  obs::HistogramProbe encrypt_ns{n("encrypt_ns")};
  obs::HistogramProbe decrypt_ns{n("decrypt_ns")};
  obs::HistogramProbe issue_update_ns{n("issue_update_ns")};
  obs::HistogramProbe verify_update_ns{n("verify_update_ns")};
  obs::HistogramProbe batch_verify_ns{n("batch_verify_ns")};
  // Nanoseconds spent blocked on a CONTENDED cache write lock (hits never
  // lock). count == number of contended acquisitions; stays 0 when the
  // snapshot substrate keeps writers out of each other's way.
  obs::HistogramProbe cache_lock_wait_ns{n("cache.lock_wait_ns")};

  static const SchemeProbes& get() {
    static const SchemeProbes p;
    return p;
  }
};

template <class B>
SnapshotCacheOptions cache_options(bool snapshots) {
  SnapshotCacheOptions opt;
  opt.max_entries = kMaxCacheEntries;
  opt.snapshots = snapshots;
  opt.lock_wait_ns = +[](std::uint64_t ns) {
    SchemeProbes<B>::get().cache_lock_wait_ns.record(ns);
  };
  return opt;
}

}  // namespace detail

template <class B>
struct BasicServerPublicKey {
  typename B::Gh g;   // G, server-chosen generator of the header group
  typename B::Gh sg;  // s·G

  Bytes to_bytes() const {
    return concat({B::gh_to_bytes(g), B::gh_to_bytes(sg)});
  }
  static BasicServerPublicKey from_bytes(const typename B::Params& params,
                                         ByteSpan bytes) {
    size_t off = 0;
    BasicServerPublicKey pk{detail::get_gh<B>(params, bytes, off),
                            detail::get_gh<B>(params, bytes, off)};
    detail::expect_consumed(bytes, off, "ServerPublicKey: trailing bytes");
    return pk;
  }
  friend bool operator==(const BasicServerPublicKey& a,
                         const BasicServerPublicKey& b) {
    return B::gh_eq(a.g, b.g) && B::gh_eq(a.sg, b.sg);
  }
};

template <class B>
struct BasicServerKeyPair {
  Scalar s;
  BasicServerPublicKey<B> pub;
};

template <class B>
struct BasicUserPublicKey {
  typename B::Gu ag;   // a·G (type-1) / a·G1gen (type-3): the CA anchor
  typename B::Gh asg;  // a·s·G

  Bytes to_bytes() const {
    return concat({B::gu_to_bytes(ag), B::gh_to_bytes(asg)});
  }
  static BasicUserPublicKey from_bytes(const typename B::Params& params,
                                       ByteSpan bytes) {
    size_t off = 0;
    BasicUserPublicKey pk{detail::get_gu<B>(params, bytes, off),
                          detail::get_gh<B>(params, bytes, off)};
    detail::expect_consumed(bytes, off, "UserPublicKey: trailing bytes");
    return pk;
  }
  friend bool operator==(const BasicUserPublicKey& a, const BasicUserPublicKey& b) {
    return B::gu_eq(a.ag, b.ag) && B::gh_eq(a.asg, b.asg);
  }
};

template <class B>
struct BasicUserKeyPair {
  Scalar a;
  BasicUserPublicKey<B> pub;
};

/// The server's entire per-instant output: identical for every receiver.
template <class B>
struct BasicKeyUpdate {
  std::string tag;     // the signed time / condition string T
  typename B::Gu sig;  // s·H1(T)

  /// Wire format: u16 tag length || tag || compressed point. This is what
  /// the scalability experiment (E3) counts as "bytes broadcast".
  Bytes to_bytes() const {
    Bytes out;
    detail::put_u16(out, tag.size());
    Bytes tag_bytes = tre::to_bytes(tag);
    out.insert(out.end(), tag_bytes.begin(), tag_bytes.end());
    Bytes sig_bytes = B::gu_to_bytes(sig);
    out.insert(out.end(), sig_bytes.begin(), sig_bytes.end());
    return out;
  }
  static BasicKeyUpdate from_bytes(const typename B::Params& params, ByteSpan bytes) {
    size_t off = 0;
    size_t tag_len = detail::get_u16(bytes, off);
    Bytes tag_bytes = detail::get_exact(bytes, off, tag_len, "KeyUpdate: truncated tag");
    typename B::Gu sig = detail::get_gu<B>(params, bytes, off);
    detail::expect_consumed(bytes, off, "KeyUpdate: trailing bytes");
    return BasicKeyUpdate{std::string(tag_bytes.begin(), tag_bytes.end()), sig};
  }

  /// Non-throwing parse for bytes from UNTRUSTED sources (mirrors, the
  /// wire): nullopt on any malformed/truncated/off-curve input, so a
  /// hostile reply cannot drive control flow through exceptions. A
  /// returned update is well-formed but NOT authenticated — callers must
  /// still pass it through the scheme's verify_update. Backend-tagged
  /// framing is structural: point widths and curve equations differ per
  /// backend, so bytes from the wrong backend fail here (tested).
  static std::optional<BasicKeyUpdate> try_from_bytes(const typename B::Params& params,
                                                      ByteSpan bytes) {
    try {
      return from_bytes(params, bytes);
    } catch (const Error&) {
      return std::nullopt;
    }
  }
  friend bool operator==(const BasicKeyUpdate& a, const BasicKeyUpdate& b) {
    return a.tag == b.tag && B::gu_eq(a.sig, b.sig);
  }
};

/// §5.1 ciphertext ⟨U, V⟩ = ⟨rG, M ⊕ H2(K)⟩.
template <class B>
struct BasicCiphertext {
  typename B::Gh u;
  Bytes v;

  Bytes to_bytes() const {
    Bytes out = B::gh_to_bytes(u);
    detail::put_u16(out, v.size());
    out.insert(out.end(), v.begin(), v.end());
    return out;
  }
  static BasicCiphertext from_bytes(const typename B::Params& params, ByteSpan bytes) {
    size_t off = 0;
    typename B::Gh u = detail::get_gh<B>(params, bytes, off);
    size_t n = detail::get_u16(bytes, off);
    Bytes v = detail::get_exact(bytes, off, n, "Ciphertext: truncated body");
    detail::expect_consumed(bytes, off, "Ciphertext: trailing bytes");
    return BasicCiphertext{u, std::move(v)};
  }
  /// Non-throwing parse for UNTRUSTED bytes (same contract as
  /// BasicKeyUpdate::try_from_bytes): nullopt on any malformed input.
  static std::optional<BasicCiphertext> try_from_bytes(const typename B::Params& params,
                                                       ByteSpan bytes) {
    try {
      return from_bytes(params, bytes);
    } catch (const Error&) {
      return std::nullopt;
    }
  }
};

/// Fujisaki-Okamoto ciphertext: U = rG with r = H3(σ, M),
/// c_sigma = σ ⊕ H2(K), c_msg = M ⊕ H4(σ).
template <class B>
struct BasicFoCiphertext {
  typename B::Gh u;
  Bytes c_sigma;
  Bytes c_msg;

  Bytes to_bytes() const {
    Bytes out = B::gh_to_bytes(u);
    detail::put_u16(out, c_sigma.size());
    out.insert(out.end(), c_sigma.begin(), c_sigma.end());
    detail::put_u16(out, c_msg.size());
    out.insert(out.end(), c_msg.begin(), c_msg.end());
    return out;
  }
  static BasicFoCiphertext from_bytes(const typename B::Params& params,
                                      ByteSpan bytes) {
    size_t off = 0;
    typename B::Gh u = detail::get_gh<B>(params, bytes, off);
    size_t n1 = detail::get_u16(bytes, off);
    Bytes c_sigma = detail::get_exact(bytes, off, n1, "FoCiphertext: truncated sigma");
    size_t n2 = detail::get_u16(bytes, off);
    Bytes c_msg = detail::get_exact(bytes, off, n2, "FoCiphertext: truncated body");
    detail::expect_consumed(bytes, off, "FoCiphertext: trailing bytes");
    return BasicFoCiphertext{u, std::move(c_sigma), std::move(c_msg)};
  }
  static std::optional<BasicFoCiphertext> try_from_bytes(
      const typename B::Params& params, ByteSpan bytes) {
    try {
      return from_bytes(params, bytes);
    } catch (const Error&) {
      return std::nullopt;
    }
  }
};

/// REACT ciphertext: c_r = R ⊕ H2(K), c_msg = M ⊕ G(R),
/// mac = H5(R, M, U, c_r, c_msg).
template <class B>
struct BasicReactCiphertext {
  typename B::Gh u;
  Bytes c_r;
  Bytes c_msg;
  Bytes mac;

  Bytes to_bytes() const {
    Bytes out = B::gh_to_bytes(u);
    detail::put_u16(out, c_r.size());
    out.insert(out.end(), c_r.begin(), c_r.end());
    detail::put_u16(out, c_msg.size());
    out.insert(out.end(), c_msg.begin(), c_msg.end());
    detail::put_u16(out, mac.size());
    out.insert(out.end(), mac.begin(), mac.end());
    return out;
  }
  static BasicReactCiphertext from_bytes(const typename B::Params& params,
                                         ByteSpan bytes) {
    size_t off = 0;
    typename B::Gh u = detail::get_gh<B>(params, bytes, off);
    size_t n1 = detail::get_u16(bytes, off);
    Bytes c_r = detail::get_exact(bytes, off, n1, "ReactCiphertext: truncated c_r");
    size_t n2 = detail::get_u16(bytes, off);
    Bytes c_msg = detail::get_exact(bytes, off, n2, "ReactCiphertext: truncated body");
    size_t n3 = detail::get_u16(bytes, off);
    Bytes mac = detail::get_exact(bytes, off, n3, "ReactCiphertext: truncated mac");
    detail::expect_consumed(bytes, off, "ReactCiphertext: trailing bytes");
    return BasicReactCiphertext{u, std::move(c_r), std::move(c_msg), std::move(mac)};
  }
  static std::optional<BasicReactCiphertext> try_from_bytes(
      const typename B::Params& params, ByteSpan bytes) {
    try {
      return from_bytes(params, bytes);
    } catch (const Error&) {
      return std::nullopt;
    }
  }
};

/// Mode-tagged ciphertext: any flavour under ONE wire format (a 1-byte
/// mode header followed by the flavour's own encoding). seal() produces
/// it, open() consumes it; the per-flavour entry points remain as thin
/// wrappers and interoperate bit-for-bit (a SealedCiphertext's payload
/// IS the legacy encoding).
template <class B>
struct BasicSealedCiphertext {
  std::variant<BasicCiphertext<B>, BasicFoCiphertext<B>, BasicReactCiphertext<B>> body;

  Mode mode() const { return static_cast<Mode>(body.index() + 1); }

  Bytes to_bytes() const {
    Bytes out;
    out.push_back(static_cast<std::uint8_t>(mode()));
    Bytes payload = std::visit([](const auto& ct) { return ct.to_bytes(); }, body);
    out.insert(out.end(), payload.begin(), payload.end());
    return out;
  }
  static BasicSealedCiphertext from_bytes(const typename B::Params& params,
                                          ByteSpan bytes) {
    require(!bytes.empty(), "SealedCiphertext: empty input");
    ByteSpan payload = bytes.subspan(1);
    switch (bytes[0]) {
      case static_cast<std::uint8_t>(Mode::kBasic):
        return BasicSealedCiphertext{BasicCiphertext<B>::from_bytes(params, payload)};
      case static_cast<std::uint8_t>(Mode::kFo):
        return BasicSealedCiphertext{BasicFoCiphertext<B>::from_bytes(params, payload)};
      case static_cast<std::uint8_t>(Mode::kReact):
        return BasicSealedCiphertext{
            BasicReactCiphertext<B>::from_bytes(params, payload)};
      case static_cast<std::uint8_t>(Mode::kHybrid):
        throw Error(
            "SealedCiphertext: hybrid envelope — parse with "
            "timelock::BasicHybridEnvelope::from_bytes");
      default:
        throw Error("SealedCiphertext: unknown mode byte");
    }
  }
  static std::optional<BasicSealedCiphertext> try_from_bytes(
      const typename B::Params& params, ByteSpan bytes) {
    try {
      return from_bytes(params, bytes);
    } catch (const Error&) {
      return std::nullopt;
    }
  }
};

/// §5.3.3 per-epoch decryption key a·I_T, derived on a safe device so the
/// long-term secret a never reaches the decryption device. Compromise of
/// one epoch key reveals nothing about other epochs (CDH).
template <class B>
struct BasicEpochKey {
  std::string tag;
  typename B::Gu d;  // a·s·H1(T)
};

template <class B>
class BasicTreScheme {
 public:
  using Backend = B;
  using Gt = typename B::Gt;

  explicit BasicTreScheme(std::shared_ptr<const typename B::Params> params,
                          Tuning tuning = Tuning::fast())
      : params_(std::move(params)),
        tuning_(tuning),
        cache_(std::make_shared<Cache>(tuning.snapshot_caches)) {
    require(params_ != nullptr, "TreScheme: null params");
  }

  const typename B::Params& params() const { return *params_; }
  const Tuning& tuning() const { return tuning_; }

  // --- Key generation -------------------------------------------------------

  /// Picks a random generator G and secret s (the server alone controls
  /// its generator, mitigating the §5.1-point-6 rogue-generator concern
  /// from the *user's* side: senders may additionally avoid G == H1(T)).
  BasicServerKeyPair<B> server_keygen(tre::hashing::RandomSource& rng) const {
    health::ensure_operational();
    // G = h·base for random h is a uniform generator of the order-q subgroup.
    Scalar h = B::random_scalar(*params_, rng);
    Scalar s = B::random_scalar(*params_, rng);
    typename B::Gh g = mul_fixed_base(B::header_base(*params_), h);
    return BasicServerKeyPair<B>{s,
                                 BasicServerPublicKey<B>{g, mul_varying_gh(g, s)}};
  }

  BasicUserKeyPair<B> user_keygen(const BasicServerPublicKey<B>& server,
                                  tre::hashing::RandomSource& rng) const {
    health::ensure_operational();
    Scalar a = B::random_scalar(*params_, rng);
    return BasicUserKeyPair<B>{
        a, BasicUserPublicKey<B>{mul_anchor(server, a),
                                 mul_fixed_base(server.sg, a)}};
  }

  /// Paper §5.1: the secret may be derived from a human-memorable password
  /// through a good hash. Deterministic per (password, server key).
  BasicUserKeyPair<B> user_keygen_from_password(const BasicServerPublicKey<B>& server,
                                                std::string_view password) const {
    health::ensure_operational();
    // Domain-separate by the server key so one password yields unrelated
    // secrets under different servers.
    Bytes input = concat({tre::to_bytes(password), server.to_bytes()});
    Scalar a = hash_to_scalar("TRE-PWKDF", input);
    return BasicUserKeyPair<B>{
        a, BasicUserPublicKey<B>{mul_anchor(server, a),
                                 mul_fixed_base(server.sg, a)}};
  }

  /// Structural validation of a server key (on-curve, order-q, not O).
  bool verify_server_public_key(const BasicServerPublicKey<B>& server) const {
    return !B::gh_is_infinity(server.g) && !B::gh_is_infinity(server.sg) &&
           B::gh_in_subgroup(*params_, server.g) &&
           B::gh_in_subgroup(*params_, server.sg);
  }

  /// The encryptor's check: ê(aG, sG) == ê(G, asG) (paper Encryption #1;
  /// on a type-3 backend the anchor side reads ê(A1, S) == ê(G1gen, A2)).
  bool verify_user_public_key(const BasicServerPublicKey<B>& server,
                              const BasicUserPublicKey<B>& user) const {
    if (B::gu_is_infinity(user.ag) || B::gh_is_infinity(user.asg)) return false;
    probes().pairings.add(2);
    return B::pairings_equal_uh(*params_, user.ag, server.sg,
                                B::anchor_base(*params_, server.g), user.asg);
  }

  // --- Time-bound key updates -----------------------------------------------

  /// I_T = s·H1(T). Stateless: any tag, past or future, any order.
  BasicKeyUpdate<B> issue_update(const BasicServerKeyPair<B>& server,
                                 std::string_view tag) const {
    health::ensure_operational();
    obs::Span span(probes().issue_update_ns);
    probes().updates_issued.add();
    return BasicKeyUpdate<B>{std::string(tag),
                             mul_varying_gu(hash_tag(tag), server.s)};
  }

  /// Bulk issuance: one update per tag, fanned out on the persistent
  /// worker pool (`threads` = 0 picks hardware_concurrency, 1 runs
  /// serially on the caller). Each update is identical to
  /// issue_update(server, tags[i]).
  std::vector<BasicKeyUpdate<B>> issue_updates(const BasicServerKeyPair<B>& server,
                                               std::span<const std::string> tags,
                                               unsigned threads = 0) const {
    std::vector<BasicKeyUpdate<B>> out(tags.size());
    tre::parallel_for(
        tags.size(), [&](size_t i) { out[i] = issue_update(server, tags[i]); },
        threads);
    return out;
  }

  /// Self-authentication check ê(sG, H1(T)) == ê(G, I_T).
  bool verify_update(const BasicServerPublicKey<B>& server,
                     const BasicKeyUpdate<B>& update) const {
    if (B::gu_is_infinity(update.sig)) return false;
    obs::Span span(probes().verify_update_ns);
    probes().updates_verified.add();
    probes().pairings.add(2);
    return B::pairings_equal_hu(*params_, server.sg, hash_tag(update.tag),
                                server.g, update.sig);
  }

  /// Randomized batch verification: folds N self-authentication checks
  /// into ONE size-2 pairing equation via a random linear combination.
  /// With fresh scalars cᵢ ∈ [0, 2^rlc_bits) from `rng`,
  ///
  ///   ê(sG, Σᵢ cᵢ·H1(Tᵢ)) == ê(G, Σᵢ cᵢ·I_{Tᵢ})
  ///
  /// holds for honest updates by bilinearity, and a batch hiding any
  /// forged update survives with probability ≤ 2^-rlc_bits per check
  /// (cᵢ must annihilate the forgery's offset mod the group order).
  /// Both Σ sides run through the Pippenger engine (B::gu_multiexp), so
  /// the batch costs 2 multi-exps + 2 pairings instead of 2N pairings.
  ///
  /// Returns the sorted indices of updates that FAILED (empty == all N
  /// verified). On an RLC mismatch the batch bisects with fresh scalars
  /// per sub-batch; size-1 leaves fall back to plain verify_update, so
  /// attribution is exact and the single-item path stays bit-identical
  /// to per-item verification. `rlc_bits` below the default 128 weakens
  /// soundness and exists for the statistical soundness smoke test.
  std::vector<size_t> verify_updates_batch(
      const BasicServerPublicKey<B>& server,
      std::span<const BasicKeyUpdate<B>> updates,
      tre::hashing::RandomSource& rng, unsigned rlc_bits = 128,
      unsigned threads = 0) const {
    std::vector<size_t> bad;
    if (updates.empty()) return bad;
    require(rlc_bits >= 1 && rlc_bits <= 256,
            "verify_updates_batch: rlc_bits out of range");
    obs::Span span(probes().batch_verify_ns);

    // Screen out infinity signatures up front: verify_update rejects
    // them without a pairing, and an infinity point would vanish from
    // the RLC regardless of its scalar. The survivors enter the RLC
    // with their H1(Tᵢ) hashed once (memoized via the tag cache).
    std::vector<size_t> live;
    std::vector<typename B::Gu> h1;
    live.reserve(updates.size());
    h1.reserve(updates.size());
    for (size_t i = 0; i < updates.size(); ++i) {
      if (B::gu_is_infinity(updates[i].sig)) {
        bad.push_back(i);
        continue;
      }
      live.push_back(i);
      h1.push_back(hash_tag(updates[i].tag));
    }

    const size_t scalar_len = (rlc_bits + 7) / 8;
    auto draw_scalars = [&](size_t n) {
      std::vector<Scalar> out;
      out.reserve(n);
      Bytes buf = rng.bytes(n * scalar_len);
      for (size_t i = 0; i < n; ++i) {
        std::span<std::uint8_t> chunk(buf.data() + i * scalar_len, scalar_len);
        if (rlc_bits % 8 != 0) {
          chunk[0] &= static_cast<std::uint8_t>((1u << (rlc_bits % 8)) - 1);
        }
        out.push_back(Scalar::from_bytes_be(chunk));
      }
      return out;
    };

    // One RLC check over live[lo, hi): two Gu multi-exps + one size-2
    // pairing comparison.
    auto rlc_holds = [&](size_t lo, size_t hi) {
      const size_t n = hi - lo;
      std::vector<Scalar> c = draw_scalars(n);
      std::vector<typename B::Gu> sigs;
      sigs.reserve(n);
      for (size_t k = lo; k < hi; ++k) sigs.push_back(updates[live[k]].sig);
      probes().multiexp_calls.add(2);
      probes().multiexp_points.add(2 * n);
      typename B::Gu p =
          B::gu_multiexp(*params_, std::span<const typename B::Gu>(h1).subspan(lo, n),
                         std::span<const Scalar>(c), threads);
      typename B::Gu q = B::gu_multiexp(
          *params_, std::span<const typename B::Gu>(sigs), std::span<const Scalar>(c), threads);
      probes().pairings.add(2);
      return B::pairings_equal_hu(*params_, server.sg, p, server.g, q);
    };

    auto check = [&](auto&& self, size_t lo, size_t hi) -> void {
      const size_t n = hi - lo;
      if (n == 0) return;
      if (n == 1) {
        const size_t idx = live[lo];
        if (!verify_update(server, updates[idx])) bad.push_back(idx);
        return;
      }
      if (rlc_holds(lo, hi)) return;
      probes().batch_bisections.add();
      const size_t mid = lo + n / 2;
      self(self, lo, mid);
      self(self, mid, hi);
    };
    check(check, 0, live.size());

    std::sort(bad.begin(), bad.end());
    probes().batch_rejected.add(bad.size());
    probes().batch_accepted.add(updates.size() - bad.size());
    return bad;
  }

  // --- Unified seal/open ------------------------------------------------------

  /// One entry point for all three flavours: seal(Mode::kBasic, ...) is
  /// bit-identical to encrypt(...) drawing the same randomness, and
  /// likewise for kFo/kReact. The legacy per-flavour encrypt_* methods
  /// below are thin wrappers over this.
  BasicSealedCiphertext<B> seal(Mode mode, ByteSpan msg,
                                const BasicUserPublicKey<B>& user,
                                const BasicServerPublicKey<B>& server,
                                std::string_view tag, tre::hashing::RandomSource& rng,
                                KeyCheck check = KeyCheck::kVerify) const {
    probes().seals.add();
    switch (mode) {
      case Mode::kBasic:
        return BasicSealedCiphertext<B>{seal_basic(msg, user, server, tag, rng, check)};
      case Mode::kFo:
        return BasicSealedCiphertext<B>{seal_fo(msg, user, server, tag, rng, check)};
      case Mode::kReact:
        return BasicSealedCiphertext<B>{seal_react(msg, user, server, tag, rng, check)};
      case Mode::kHybrid:
        throw Error("seal: hybrid envelopes are built by timelock::seal_hybrid");
    }
    throw Error("seal: unknown mode");
  }

  /// Decrypts any flavour; dispatches on the ciphertext's mode. nullopt
  /// on tampering (kFo/kReact) — kBasic has no integrity, so its result
  /// is always engaged but only meaningful for matching inputs. `server`
  /// is needed by the FO re-encryption check only.
  std::optional<Bytes> open(const BasicSealedCiphertext<B>& ct, const Scalar& a,
                            const BasicKeyUpdate<B>& update,
                            const BasicServerPublicKey<B>& server) const {
    probes().opens.add();
    return std::visit(
        [&](const auto& body) -> std::optional<Bytes> {
          using T = std::decay_t<decltype(body)>;
          if constexpr (std::is_same_v<T, BasicCiphertext<B>>) {
            return decrypt(body, a, update);
          } else if constexpr (std::is_same_v<T, BasicFoCiphertext<B>>) {
            return decrypt_fo(body, a, update, server);
          } else {
            return decrypt_react(body, a, update);
          }
        },
        ct.body);
  }

  /// Batch-opens N same-tag ciphertexts for one receiver through the
  /// multi-exp engine. Two batch effects:
  ///   * The decrypt pairing ê(I_T, U)^a equals ê(a·I_T, U) by
  ///     bilinearity, so the epoch key d = a·I_T is derived ONCE and the
  ///     per-item G_T exponentiation disappears (d's Miller lines are
  ///     cached, matching the §5.3.3 insecure-device path — masks stay
  ///     bit-identical to per-item decryption).
  ///   * FO re-encryption checks fold into one RLC equation
  ///     (Σᵢ cᵢ·rᵢ)·G == Σᵢ cᵢ·Uᵢ — one comb multiply + one Gh
  ///     multi-exp instead of N comb multiplies — with bisection
  ///     attributing tampered items exactly (size-1 leaves re-check
  ///     individually, so attribution never convicts an honest item).
  /// Returns one slot per ciphertext: nullopt where integrity failed
  /// (kFo/kReact); honest siblings of a tampered item still open.
  std::vector<std::optional<Bytes>> open_batch(
      std::span<const BasicSealedCiphertext<B>> cts, const Scalar& a,
      const BasicKeyUpdate<B>& update, const BasicServerPublicKey<B>& server,
      tre::hashing::RandomSource& rng, unsigned rlc_bits = 128,
      unsigned threads = 0) const {
    health::ensure_operational();
    std::vector<std::optional<Bytes>> out(cts.size());
    if (cts.empty()) return out;
    require(rlc_bits >= 1 && rlc_bits <= 256, "open_batch: rlc_bits out of range");
    probes().opens.add(cts.size());
    const BasicEpochKey<B> epoch = derive_epoch_key(a, update);

    // Per-item unmasking fans out on the pool; FO items defer their
    // re-encryption checks so those can fold into one RLC equation.
    std::vector<Scalar> fo_r(cts.size());
    std::vector<std::uint8_t> is_fo(cts.size(), 0);
    tre::parallel_for(
        cts.size(),
        [&](size_t i) {
          std::visit(
              [&](const auto& body) {
                using T = std::decay_t<decltype(body)>;
                if constexpr (std::is_same_v<T, BasicCiphertext<B>>) {
                  out[i] = decrypt_with_epoch_key(body, epoch);
                } else if constexpr (std::is_same_v<T, BasicFoCiphertext<B>>) {
                  if (body.c_sigma.size() != detail::kSigmaBytes) return;
                  Gt k = pair_with_lines(epoch.d, body.u);
                  Bytes sigma =
                      xor_bytes(body.c_sigma, mask_h2(k, detail::kSigmaBytes));
                  Bytes msg = xor_bytes(
                      body.c_msg,
                      hashing::oracle_bytes("TRE-H4", sigma, body.c_msg.size()));
                  fo_r[i] = hash_to_scalar("TRE-H3", concat({sigma, msg}));
                  is_fo[i] = 1;
                  out[i] = std::move(msg);  // provisional until the RLC passes
                } else {  // REACT: the MAC check is per-item hashing, no pairing
                  if (body.c_r.size() != detail::kSigmaBytes ||
                      body.mac.size() != detail::kMacBytes) {
                    return;
                  }
                  Gt k = pair_with_lines(epoch.d, body.u);
                  Bytes witness =
                      xor_bytes(body.c_r, mask_h2(k, detail::kSigmaBytes));
                  Bytes msg = xor_bytes(
                      body.c_msg,
                      hashing::oracle_bytes("TRE-G", witness, body.c_msg.size()));
                  Bytes mac = hashing::oracle_bytes(
                      "TRE-H5",
                      concat({witness, msg, B::gh_to_bytes(body.u), body.c_r,
                              body.c_msg}),
                      detail::kMacBytes);
                  if (ct_equal(mac, body.mac)) out[i] = std::move(msg);
                }
              },
              cts[i].body);
        },
        threads);

    // One RLC re-encryption check over every FO item that unmasked.
    std::vector<size_t> fo_idx;
    for (size_t i = 0; i < cts.size(); ++i) {
      if (is_fo[i] && out[i].has_value()) fo_idx.push_back(i);
    }
    if (fo_idx.empty()) return out;

    const field::FpCtx* fq = B::scalar_field(*params_);
    const size_t scalar_len = (rlc_bits + 7) / 8;
    auto draw_scalars = [&](size_t n) {
      std::vector<Scalar> c;
      c.reserve(n);
      Bytes buf = rng.bytes(n * scalar_len);
      for (size_t k = 0; k < n; ++k) {
        std::span<std::uint8_t> chunk(buf.data() + k * scalar_len, scalar_len);
        if (rlc_bits % 8 != 0) {
          chunk[0] &= static_cast<std::uint8_t>((1u << (rlc_bits % 8)) - 1);
        }
        c.push_back(Scalar::from_bytes_be(chunk));
      }
      return c;
    };
    auto header_of = [&](size_t idx) -> const typename B::Gh& {
      return std::get<BasicFoCiphertext<B>>(cts[idx].body).u;
    };
    auto rlc_holds = [&](size_t lo, size_t hi) {
      const size_t n = hi - lo;
      std::vector<Scalar> c = draw_scalars(n);
      field::Fp rho = field::Fp::zero(fq);
      std::vector<typename B::Gh> us;
      us.reserve(n);
      for (size_t k = 0; k < n; ++k) {
        const size_t idx = fo_idx[lo + k];
        rho = rho + field::Fp::from_int(fq, c[k]) *
                        field::Fp::from_int(fq, fo_r[idx]);
        us.push_back(header_of(idx));
      }
      probes().multiexp_calls.add();
      probes().multiexp_points.add(n);
      typename B::Gh rhs =
          B::gh_multiexp(*params_, std::span<const typename B::Gh>(us),
                         std::span<const Scalar>(c), threads);
      return B::gh_eq(mul_fixed_base(server.g, rho.to_int()), rhs);
    };
    auto check = [&](auto&& self, size_t lo, size_t hi) -> void {
      const size_t n = hi - lo;
      if (n == 0) return;
      if (n == 1) {
        const size_t idx = fo_idx[lo];
        if (!B::gh_eq(mul_fixed_base(server.g, fo_r[idx]), header_of(idx))) {
          out[idx].reset();
        }
        return;
      }
      if (rlc_holds(lo, hi)) return;
      probes().batch_bisections.add();
      const size_t mid = lo + n / 2;
      self(self, lo, mid);
      self(self, mid, hi);
    };
    check(check, 0, fo_idx.size());
    return out;
  }

  // --- §5.1 basic scheme ------------------------------------------------------

  BasicCiphertext<B> encrypt(ByteSpan msg, const BasicUserPublicKey<B>& user,
                             const BasicServerPublicKey<B>& server,
                             std::string_view tag, tre::hashing::RandomSource& rng,
                             KeyCheck check = KeyCheck::kVerify) const {
    return seal_basic(msg, user, server, tag, rng, check);
  }

  /// Encrypts every message under ONE tag for one receiver, paying the
  /// receiver-key pairing check, tag hash, and base pairing once for the
  /// whole batch; per-message work drops to one fixed-base comb multiply
  /// and one G_T exponentiation. With `threads` != 1 the per-message work
  /// fans out on the persistent worker pool (0 = hardware_concurrency).
  /// Output is bit-identical to sequential encrypt() calls drawing the
  /// same randomness.
  std::vector<BasicCiphertext<B>> encrypt_batch(
      std::span<const Bytes> msgs, const BasicUserPublicKey<B>& user,
      const BasicServerPublicKey<B>& server, std::string_view tag,
      tre::hashing::RandomSource& rng, KeyCheck check = KeyCheck::kVerify,
      unsigned threads = 0) const {
    if (check == KeyCheck::kVerify) {
      require(checked_user_key(server, user),
              "TRE encrypt_batch: receiver public key fails the pairing check");
    }
    std::vector<BasicCiphertext<B>> out(msgs.size());
    if (msgs.empty()) return out;

    // All randomness is drawn up front, in order, so the batch produces
    // exactly the ciphertexts |msgs| sequential encrypt() calls would.
    std::vector<Scalar> rs;
    rs.reserve(msgs.size());
    for (size_t i = 0; i < msgs.size(); ++i) {
      rs.push_back(B::random_scalar(*params_, rng));
    }

    const typename B::Gu h1t = hash_tag(tag);
    if (tuning_.cache_pair_bases) {
      const Gt base = pair_base(user.asg, tag, h1t);  // one pairing for the batch
      auto comb = comb_for(server.g);
      tre::parallel_for(
          msgs.size(),
          [&](size_t i) {
            typename B::Gh u =
                comb ? comb->mul_secret(rs[i]) : mul_fixed_base(server.g, rs[i]);
            Gt k = gt_pow(base, rs[i]);
            out[i] = BasicCiphertext<B>{u, xor_bytes(msgs[i], mask_h2(k, msgs[i].size()))};
          },
          threads);
    } else {
      tre::parallel_for(
          msgs.size(),
          [&](size_t i) {
            typename B::Gh u = mul_fixed_base(server.g, rs[i]);
            Gt k = B::pair_session(*params_, mul_varying_gh(user.asg, rs[i]), h1t);
            out[i] = BasicCiphertext<B>{u, xor_bytes(msgs[i], mask_h2(k, msgs[i].size()))};
          },
          threads);
    }
    return out;
  }

  /// The basic scheme has no integrity: output is only meaningful when the
  /// inputs match the ciphertext (use the FO/REACT variants otherwise).
  Bytes decrypt(const BasicCiphertext<B>& ct, const Scalar& a,
                const BasicKeyUpdate<B>& update) const {
    health::ensure_operational();
    obs::Span span(probes().decrypt_ns);
    Gt k = gt_pow(pair_with_lines(update.sig, ct.u), a);
    return xor_bytes(ct.v, mask_h2(k, ct.v.size()));
  }

  // --- Fujisaki-Okamoto (CCA) -------------------------------------------------

  BasicFoCiphertext<B> encrypt_fo(ByteSpan msg, const BasicUserPublicKey<B>& user,
                                  const BasicServerPublicKey<B>& server,
                                  std::string_view tag,
                                  tre::hashing::RandomSource& rng,
                                  KeyCheck check = KeyCheck::kVerify) const {
    return seal_fo(msg, user, server, tag, rng, check);
  }

  /// nullopt on any tampering (re-encryption check fails). The server key
  /// is needed to recompute U = H3(σ, M)·G.
  std::optional<Bytes> decrypt_fo(const BasicFoCiphertext<B>& ct, const Scalar& a,
                                  const BasicKeyUpdate<B>& update,
                                  const BasicServerPublicKey<B>& server) const {
    health::ensure_operational();
    if (ct.c_sigma.size() != detail::kSigmaBytes) return std::nullopt;
    obs::Span span(probes().decrypt_ns);
    Gt k = gt_pow(pair_with_lines(update.sig, ct.u), a);
    Bytes sigma = xor_bytes(ct.c_sigma, mask_h2(k, detail::kSigmaBytes));
    Bytes msg =
        xor_bytes(ct.c_msg, hashing::oracle_bytes("TRE-H4", sigma, ct.c_msg.size()));
    Scalar r = hash_to_scalar("TRE-H3", concat({sigma, msg}));
    // Re-encryption check through the same comb table as encryption.
    if (!B::gh_eq(mul_fixed_base(server.g, r), ct.u)) return std::nullopt;
    return msg;
  }

  // --- REACT (CCA) -------------------------------------------------------------

  BasicReactCiphertext<B> encrypt_react(ByteSpan msg,
                                        const BasicUserPublicKey<B>& user,
                                        const BasicServerPublicKey<B>& server,
                                        std::string_view tag,
                                        tre::hashing::RandomSource& rng,
                                        KeyCheck check = KeyCheck::kVerify) const {
    return seal_react(msg, user, server, tag, rng, check);
  }

  std::optional<Bytes> decrypt_react(const BasicReactCiphertext<B>& ct,
                                     const Scalar& a,
                                     const BasicKeyUpdate<B>& update) const {
    health::ensure_operational();
    if (ct.c_r.size() != detail::kSigmaBytes || ct.mac.size() != detail::kMacBytes) {
      return std::nullopt;
    }
    obs::Span span(probes().decrypt_ns);
    Gt k = gt_pow(pair_with_lines(update.sig, ct.u), a);
    Bytes witness = xor_bytes(ct.c_r, mask_h2(k, detail::kSigmaBytes));
    Bytes msg =
        xor_bytes(ct.c_msg, hashing::oracle_bytes("TRE-G", witness, ct.c_msg.size()));
    Bytes mac = hashing::oracle_bytes(
        "TRE-H5", concat({witness, msg, B::gh_to_bytes(ct.u), ct.c_r, ct.c_msg}),
        detail::kMacBytes);
    if (!ct_equal(mac, ct.mac)) return std::nullopt;
    return msg;
  }

  // --- §5.3.3 key insulation ----------------------------------------------------

  /// Safe-device step: combine the long-term secret with a fresh update.
  BasicEpochKey<B> derive_epoch_key(const Scalar& a,
                                    const BasicKeyUpdate<B>& update) const {
    health::ensure_operational();
    // a·I_T = a·s·H1(T): all the secret material a ciphertext for tag T
    // needs, and useless for any other tag (CDH). The paper's §5.3.3 text
    // writes the epoch key as aH1(T_i); only a·(s·H1(T_i)) closes the
    // decryption equation — see DESIGN.md for the fidelity note.
    return BasicEpochKey<B>{update.tag, mul_varying_gu(update.sig, a)};
  }

  /// Insecure-device step: decrypt using only the epoch key.
  Bytes decrypt_with_epoch_key(const BasicCiphertext<B>& ct,
                               const BasicEpochKey<B>& key) const {
    Gt k = pair_with_lines(key.d, ct.u);
    return xor_bytes(ct.v, mask_h2(k, ct.v.size()));
  }
  std::optional<Bytes> decrypt_fo_with_epoch_key(
      const BasicFoCiphertext<B>& ct, const BasicEpochKey<B>& key,
      const BasicServerPublicKey<B>& server) const {
    if (ct.c_sigma.size() != detail::kSigmaBytes) return std::nullopt;
    Gt k = pair_with_lines(key.d, ct.u);
    Bytes sigma = xor_bytes(ct.c_sigma, mask_h2(k, detail::kSigmaBytes));
    Bytes msg =
        xor_bytes(ct.c_msg, hashing::oracle_bytes("TRE-H4", sigma, ct.c_msg.size()));
    Scalar r = hash_to_scalar("TRE-H3", concat({sigma, msg}));
    if (!B::gh_eq(mul_fixed_base(server.g, r), ct.u)) return std::nullopt;
    return msg;
  }

  // --- §5.3.4 time-server change --------------------------------------------------

  /// Produces the user's public key under a new server without touching
  /// the CA: (a·G', a·s'·G'). On a type-3 backend the anchor a·G1gen is
  /// server-independent, so only the asg half actually changes.
  BasicUserPublicKey<B> rebind_user_key(const Scalar& a,
                                        const BasicServerPublicKey<B>& new_server) const {
    return BasicUserPublicKey<B>{mul_anchor(new_server, a),
                                 mul_fixed_base(new_server.sg, a)};
  }

  /// Anyone can check a rebound key against the aG certified under the
  /// *old* server (no re-certification, paper §5.3.4):
  ///   (1) ê(a·G', G_old) == ê(a·G_old, G')  — same secret a (on a
  ///       type-3 backend the anchor is server-independent, so this
  ///       degenerates to an equality check — see the backend policy);
  ///   (2) ê(a·G', s'G') == ê(G', a·s'G')    — well-formed under s'.
  bool verify_rebound_key(const typename B::Gu& certified_ag,
                          const typename B::Gh& old_generator,
                          const BasicServerPublicKey<B>& new_server,
                          const BasicUserPublicKey<B>& candidate) const {
    if (B::gu_is_infinity(candidate.ag) || B::gh_is_infinity(candidate.asg)) {
      return false;
    }
    // (1) Same secret a as in the certified key.
    if (!B::same_secret(*params_, candidate.ag, old_generator, certified_ag,
                        new_server.g)) {
      return false;
    }
    // (2) Well-formed under the new server key.
    return verify_user_public_key(new_server, candidate);
  }

  // --- Shared internals (used by the multi-server and policy variants) ---

  /// H1 onto G_u with the scheme's domain separation.
  typename B::Gu hash_tag(std::string_view tag) const { return cached_hash_tag(tag); }

  /// Mask bytes H2(K) of a given length.
  Bytes mask_h2(const Gt& k, size_t len) const {
    return hashing::oracle_bytes("TRE-H2", B::gt_to_bytes(*params_, k), len);
  }

  /// Random-oracle hash to a nonzero scalar in Z_q (H3-style oracles).
  Scalar hash_to_scalar(std::string_view label, ByteSpan input) const {
    // Oversample by 16 bytes so the mod-q bias is negligible; map 0 -> 1.
    Bytes wide =
        hashing::oracle_bytes(label, input, B::scalar_bytes(*params_) + 16);
    auto v = bigint::BigInt<2 * field::kMaxFieldLimbs>::from_bytes_be(wide);
    Scalar r = bigint::mod_wide(v, B::group_order(*params_));
    if (r.is_zero()) r = Scalar::from_u64(1);
    return r;
  }

 private:
  static const detail::SchemeProbes<B>& probes() {
    return detail::SchemeProbes<B>::get();
  }

  static std::string point_key_gu(const typename B::Gu& p) {
    Bytes b = B::gu_to_bytes(p);
    return std::string(b.begin(), b.end());
  }
  static std::string point_key_gh(const typename B::Gh& p) {
    Bytes b = B::gh_to_bytes(p);
    return std::string(b.begin(), b.end());
  }

  // Memoized precomputation, shared by copies of the scheme (the scheme is
  // a value type; the cache is an implementation detail keyed only on
  // public data, so sharing it across copies is safe and desirable).
  // Each map is a read-mostly SnapshotCache: hits are lock-free snapshot
  // reads (no shared writes), misses publish copy-on-write under striped
  // locks. Bounded and cleared wholesale on overflow — the working sets
  // (a handful of generators, one tag per epoch, one update per epoch)
  // are tiny, so eviction policy does not matter.
  struct Cache {
    explicit Cache(bool snapshots)
        : tags(detail::cache_options<B>(snapshots)),
          good_keys(detail::cache_options<B>(snapshots)),
          combs(detail::cache_options<B>(snapshots)),
          pair_bases(detail::cache_options<B>(snapshots)),
          lines(detail::cache_options<B>(snapshots)) {}

    SnapshotCache<typename B::Gu> tags;  // tag -> H1(T)
    SnapshotCache<char> good_keys;       // verified (server, user) keys (presence set)
    SnapshotCache<std::shared_ptr<const typename B::GhPrecomp>> combs;
    SnapshotCache<Gt> pair_bases;  // asg || tag -> ê(asG, H1(T))
    SnapshotCache<std::shared_ptr<const typename B::PairPrecomp>> lines;
  };

  /// H1(T), memoized when tuning_.cache_tags.
  typename B::Gu cached_hash_tag(std::string_view tag) const {
    if (!tuning_.cache_tags) return B::hash_tag(*params_, tre::to_bytes(tag));
    if (auto hit = cache_->tags.find(tag)) {
      probes().tag_hit.add();
      return *hit;
    }
    probes().tag_miss.add();
    typename B::Gu h = B::hash_tag(*params_, tre::to_bytes(tag));
    cache_->tags.insert(tag, h);
    return h;
  }

  /// Comb table for a long-lived generator, memoized when
  /// tuning_.fixed_base_comb; nullptr when the comb engine is disabled.
  std::shared_ptr<const typename B::GhPrecomp> comb_for(const typename B::Gh& base) const {
    if (!tuning_.fixed_base_comb || B::gh_is_infinity(base)) return nullptr;
    const std::string key = point_key_gh(base);
    if (auto hit = cache_->combs.find(key)) {
      probes().comb_hit.add();
      return *hit;
    }
    probes().comb_miss.add();
    auto comb = B::make_comb(*params_, base);
    cache_->combs.insert(key, comb);
    return comb;
  }

  /// base·k for secret k where base is a long-lived generator (params
  /// base, server G / sG): fixed-pattern comb walk when enabled, seed-era
  /// wNAF otherwise.
  typename B::Gh mul_fixed_base(const typename B::Gh& base, const Scalar& k) const {
    if (auto comb = comb_for(base)) {
      probes().mul_comb.add();
      return comb->mul_secret(k);
    }
    probes().mul_fixed.add();
    return tuning_.fixed_base_comb ? B::gh_mul_secret(*params_, base, k)
                                   : B::gh_mul(*params_, base, k);
  }

  /// base·k for secret k where base varies call to call (the asg half of
  /// a receiver key during non-cached encrypt, fresh server generators):
  /// fixed-window ladder when the engine is on, wNAF otherwise.
  typename B::Gh mul_varying_gh(const typename B::Gh& base, const Scalar& k) const {
    // A comb table costs hundreds of additions to build; for a base seen
    // once the fixed-window ladder wins.
    probes().mul_varying.add();
    return tuning_.fixed_base_comb ? B::gh_mul_secret(*params_, base, k)
                                   : B::gh_mul(*params_, base, k);
  }

  /// Same, for the update group (H1(T), update signatures).
  typename B::Gu mul_varying_gu(const typename B::Gu& base, const Scalar& k) const {
    probes().mul_varying.add();
    return tuning_.fixed_base_comb ? B::gu_mul_secret(*params_, base, k)
                                   : B::gu_mul(*params_, base, k);
  }

  /// The user's certifiable anchor a·(anchor base). On type-1 the anchor
  /// base IS the server generator, so this shares the Gh comb cache (and
  /// its probe counts) with every other fixed-base multiply; on type-3 it
  /// is the context's G_1 generator.
  typename B::Gu mul_anchor(const BasicServerPublicKey<B>& server,
                            const Scalar& a) const {
    if constexpr (B::kAnchorIsGh) {
      return mul_fixed_base(server.g, a);
    } else {
      return B::gu_mul(*params_, B::anchor_base(*params_, server.g), a);
    }
  }

  /// verify_user_public_key with positive results memoized.
  bool checked_user_key(const BasicServerPublicKey<B>& server,
                        const BasicUserPublicKey<B>& user) const {
    if (!tuning_.cache_key_checks) return verify_user_public_key(server, user);
    Bytes sk = server.to_bytes();
    Bytes uk = user.to_bytes();
    std::string key(sk.begin(), sk.end());
    key.append(uk.begin(), uk.end());
    if (cache_->good_keys.contains(key)) {
      probes().keycheck_hit.add();
      return true;
    }
    probes().keycheck_miss.add();
    // Only successful checks are memoized: a failure must stay a failure
    // even if a good key with the same bytes is later verified (impossible,
    // but cheap to keep trivially true).
    if (!verify_user_public_key(server, user)) return false;
    cache_->good_keys.insert(key, char{1});
    return true;
  }

  /// ê(asG, H1(T)) with the result memoized per (asg, tag); the per-message
  /// encryption key is then base^r.
  Gt pair_base(const typename B::Gh& asg, std::string_view tag,
               const typename B::Gu& h1t) const {
    if (!tuning_.cache_pair_bases) {
      probes().pairings.add();
      return B::pair_session(*params_, asg, h1t);
    }
    std::string key = point_key_gh(asg);  // fixed length, so asg||tag is unambiguous
    key.append(tag);
    if (auto hit = cache_->pair_bases.find(key)) {
      probes().pairbase_hit.add();
      return *hit;
    }
    probes().pairbase_miss.add();
    probes().pairings.add();
    Gt base = B::pair_session(*params_, asg, h1t);
    cache_->pair_bases.insert(key, base);
    return base;
  }

  /// ê(fixed, u) with cached Miller line precomp for `fixed` (an update
  /// signature or epoch key, reused across every ciphertext of an epoch).
  Gt pair_with_lines(const typename B::Gu& fixed, const typename B::Gh& u) const {
    probes().pairings.add();
    if (!tuning_.cache_update_lines) return B::pair_decrypt(*params_, fixed, u);
    const std::string key = point_key_gu(fixed);
    std::shared_ptr<const typename B::PairPrecomp> lines;
    if (auto hit = cache_->lines.find(key)) {
      probes().lines_hit.add();
      lines = *hit;
    } else {
      probes().lines_miss.add();
      lines = B::make_lines(*params_, fixed);
      cache_->lines.insert(key, lines);
    }
    return lines->pair(u);
  }

  /// k^e in G_T honouring tuning_.unitary_gt_pow.
  Gt gt_pow(const Gt& k, const Scalar& e) const {
    return B::gt_pow(*params_, k, e, tuning_.unitary_gt_pow);
  }

  // Per-flavour implementations behind seal()/open(); the public
  // encrypt_*/decrypt_* entry points delegate here too, so both API
  // generations share one body per flavour.
  BasicCiphertext<B> seal_basic(ByteSpan msg, const BasicUserPublicKey<B>& user,
                                const BasicServerPublicKey<B>& server,
                                std::string_view tag, tre::hashing::RandomSource& rng,
                                KeyCheck check) const {
    health::ensure_operational();
    obs::Span span(probes().encrypt_ns);
    if (check == KeyCheck::kVerify) {
      require(checked_user_key(server, user),
              "TRE encrypt: receiver public key fails the pairing check");
    }
    Scalar r = B::random_scalar(*params_, rng);
    typename B::Gh u = mul_fixed_base(server.g, r);
    typename B::Gu h1t = hash_tag(tag);
    // ê(r·asG, H1(T)) == ê(asG, H1(T))^r: with the base pairing memoized,
    // the per-message cost is one comb multiply and one G_T exponentiation.
    Gt k = tuning_.cache_pair_bases
               ? gt_pow(pair_base(user.asg, tag, h1t), r)
               : B::pair_session(*params_, mul_varying_gh(user.asg, r), h1t);
    return BasicCiphertext<B>{u, xor_bytes(msg, mask_h2(k, msg.size()))};
  }

  BasicFoCiphertext<B> seal_fo(ByteSpan msg, const BasicUserPublicKey<B>& user,
                               const BasicServerPublicKey<B>& server,
                               std::string_view tag, tre::hashing::RandomSource& rng,
                               KeyCheck check) const {
    health::ensure_operational();
    obs::Span span(probes().encrypt_ns);
    if (check == KeyCheck::kVerify) {
      require(checked_user_key(server, user),
              "TRE encrypt_fo: receiver public key fails the pairing check");
    }
    Bytes sigma = rng.bytes(detail::kSigmaBytes);
    // r = H3(sigma, M): decryption re-derives it, making the scheme
    // plaintext-aware (CCA in the ROM per Fujisaki-Okamoto).
    Scalar r = hash_to_scalar("TRE-H3", concat({sigma, msg}));
    typename B::Gh u = mul_fixed_base(server.g, r);
    typename B::Gu h1t = hash_tag(tag);
    Gt k = tuning_.cache_pair_bases
               ? gt_pow(pair_base(user.asg, tag, h1t), r)
               : B::pair_session(*params_, mul_varying_gh(user.asg, r), h1t);
    Bytes c_sigma = xor_bytes(sigma, mask_h2(k, detail::kSigmaBytes));
    Bytes c_msg = xor_bytes(msg, hashing::oracle_bytes("TRE-H4", sigma, msg.size()));
    return BasicFoCiphertext<B>{u, std::move(c_sigma), std::move(c_msg)};
  }

  BasicReactCiphertext<B> seal_react(ByteSpan msg, const BasicUserPublicKey<B>& user,
                                     const BasicServerPublicKey<B>& server,
                                     std::string_view tag,
                                     tre::hashing::RandomSource& rng,
                                     KeyCheck check) const {
    health::ensure_operational();
    obs::Span span(probes().encrypt_ns);
    if (check == KeyCheck::kVerify) {
      require(checked_user_key(server, user),
              "TRE encrypt_react: receiver public key fails the pairing check");
    }
    Bytes witness = rng.bytes(detail::kSigmaBytes);  // REACT's random R
    Scalar r = B::random_scalar(*params_, rng);
    typename B::Gh u = mul_fixed_base(server.g, r);
    typename B::Gu h1t = hash_tag(tag);
    Gt k = tuning_.cache_pair_bases
               ? gt_pow(pair_base(user.asg, tag, h1t), r)
               : B::pair_session(*params_, mul_varying_gh(user.asg, r), h1t);
    Bytes c_r = xor_bytes(witness, mask_h2(k, detail::kSigmaBytes));
    Bytes c_msg = xor_bytes(msg, hashing::oracle_bytes("TRE-G", witness, msg.size()));
    Bytes mac = hashing::oracle_bytes(
        "TRE-H5", concat({witness, msg, B::gh_to_bytes(u), c_r, c_msg}),
        detail::kMacBytes);
    return BasicReactCiphertext<B>{u, std::move(c_r), std::move(c_msg), std::move(mac)};
  }

  std::shared_ptr<const typename B::Params> params_;
  Tuning tuning_;
  std::shared_ptr<Cache> cache_;
};

/// Namespace-level spellings of the unified API, so call sites read
/// core::seal(scheme, Mode::kFo, ...) / core::open(scheme, ...) — generic
/// over the backend.
template <class B>
BasicSealedCiphertext<B> seal(const BasicTreScheme<B>& scheme, Mode mode, ByteSpan msg,
                              const BasicUserPublicKey<B>& user,
                              const BasicServerPublicKey<B>& server,
                              std::string_view tag, tre::hashing::RandomSource& rng,
                              KeyCheck check = KeyCheck::kVerify) {
  return scheme.seal(mode, msg, user, server, tag, rng, check);
}

template <class B>
std::optional<Bytes> open(const BasicTreScheme<B>& scheme,
                          const BasicSealedCiphertext<B>& ct, const Scalar& a,
                          const BasicKeyUpdate<B>& update,
                          const BasicServerPublicKey<B>& server) {
  return scheme.open(ct, a, update, server);
}

}  // namespace tre::core
