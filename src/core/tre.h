// Timed Release Encryption (TRE) — the paper's §5.1 construction with the
// §5.3 extensions.
//
// Roles and artifacts:
//   * Time server: secret s, public (G, sG) with G a server-chosen random
//     generator. Completely passive: its only output is the time-bound key
//     update I_T = s·H1(T), a BLS short signature on the time string T
//     that is self-authenticating via ê(sG, H1(T)) == ê(G, I_T).
//   * User: secret a, public (aG, a·sG) — bound to the server key so that
//     decryption provably needs the server's update.
//   * Sender: encrypts under the two public keys and a release tag T with
//     no interaction: C = ⟨rG, M ⊕ H2(ê(r·asG, H1(T)))⟩.
//   * Receiver: decrypts with K' = ê(U, I_T)^a once I_T is published.
//
// Three ciphertext flavours are provided:
//   * Basic (§5.1 verbatim): one-way / CPA-secure under BDH in the ROM.
//   * FO (Fujisaki-Okamoto, as the paper prescribes for CCA security).
//   * REACT (Okamoto-Pointcheval, the paper's stated alternative).
//
// The tag argument is an opaque byte string: a canonical time string for
// timed release (see timeserver/timespec.h) or any condition string for
// the §5.3.2 policy-lock generalization.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "ec/curve.h"
#include "hashing/drbg.h"
#include "pairing/pairing.h"
#include "params/params.h"

namespace tre::core {

using Scalar = field::FpInt;  // value in [1, q)
using Gt = pairing::Gt;

struct ServerPublicKey {
  ec::G1Point g;   // G, server-chosen generator
  ec::G1Point sg;  // s·G

  Bytes to_bytes() const;
  static ServerPublicKey from_bytes(const params::GdhParams& params, ByteSpan bytes);
  friend bool operator==(const ServerPublicKey&, const ServerPublicKey&) = default;
};

struct ServerKeyPair {
  Scalar s;
  ServerPublicKey pub;
};

struct UserPublicKey {
  ec::G1Point ag;   // a·G
  ec::G1Point asg;  // a·s·G

  Bytes to_bytes() const;
  static UserPublicKey from_bytes(const params::GdhParams& params, ByteSpan bytes);
  friend bool operator==(const UserPublicKey&, const UserPublicKey&) = default;
};

struct UserKeyPair {
  Scalar a;
  UserPublicKey pub;
};

/// The server's entire per-instant output: identical for every receiver.
struct KeyUpdate {
  std::string tag;  // the signed time / condition string T
  ec::G1Point sig;  // s·H1(T)

  /// Wire format: u16 tag length || tag || compressed point. This is what
  /// the scalability experiment (E3) counts as "bytes broadcast".
  Bytes to_bytes() const;
  static KeyUpdate from_bytes(const params::GdhParams& params, ByteSpan bytes);

  /// Non-throwing parse for bytes from UNTRUSTED sources (mirrors, the
  /// wire): nullopt on any malformed/truncated/off-curve input, so a
  /// hostile reply cannot drive control flow through exceptions. A
  /// returned update is well-formed but NOT authenticated — callers must
  /// still pass it through TreScheme::verify_update.
  static std::optional<KeyUpdate> try_from_bytes(const params::GdhParams& params,
                                                 ByteSpan bytes);
  friend bool operator==(const KeyUpdate&, const KeyUpdate&) = default;
};

/// §5.1 ciphertext ⟨U, V⟩ = ⟨rG, M ⊕ H2(K)⟩.
struct Ciphertext {
  ec::G1Point u;
  Bytes v;

  Bytes to_bytes() const;
  static Ciphertext from_bytes(const params::GdhParams& params, ByteSpan bytes);
  /// Non-throwing parse for UNTRUSTED bytes (same contract as
  /// KeyUpdate::try_from_bytes): nullopt on any malformed input.
  static std::optional<Ciphertext> try_from_bytes(const params::GdhParams& params,
                                                  ByteSpan bytes);
};

/// Fujisaki-Okamoto ciphertext: U = rG with r = H3(σ, M),
/// c_sigma = σ ⊕ H2(K), c_msg = M ⊕ H4(σ).
struct FoCiphertext {
  ec::G1Point u;
  Bytes c_sigma;
  Bytes c_msg;

  Bytes to_bytes() const;
  static FoCiphertext from_bytes(const params::GdhParams& params, ByteSpan bytes);
  static std::optional<FoCiphertext> try_from_bytes(const params::GdhParams& params,
                                                    ByteSpan bytes);
};

/// REACT ciphertext: c_r = R ⊕ H2(K), c_msg = M ⊕ G(R),
/// mac = H5(R, M, U, c_r, c_msg).
struct ReactCiphertext {
  ec::G1Point u;
  Bytes c_r;
  Bytes c_msg;
  Bytes mac;

  Bytes to_bytes() const;
  static ReactCiphertext from_bytes(const params::GdhParams& params, ByteSpan bytes);
  static std::optional<ReactCiphertext> try_from_bytes(const params::GdhParams& params,
                                                       ByteSpan bytes);
};

/// The three ciphertext flavours behind one API. kBasic is the §5.1
/// scheme verbatim (malleable, CPA only); kFo and kReact are the paper's
/// two CCA transforms. Values are the wire header byte — fixed forever.
enum class Mode : std::uint8_t { kBasic = 1, kFo = 2, kReact = 3 };

const char* mode_name(Mode m);  // "basic" / "fo" / "react"

/// Mode-tagged ciphertext: any flavour under ONE wire format (a 1-byte
/// mode header followed by the flavour's own encoding). seal() produces
/// it, open() consumes it; the per-flavour entry points remain as thin
/// wrappers and interoperate bit-for-bit (a SealedCiphertext's payload
/// IS the legacy encoding).
struct SealedCiphertext {
  std::variant<Ciphertext, FoCiphertext, ReactCiphertext> body;

  Mode mode() const { return static_cast<Mode>(body.index() + 1); }

  Bytes to_bytes() const;
  static SealedCiphertext from_bytes(const params::GdhParams& params, ByteSpan bytes);
  static std::optional<SealedCiphertext> try_from_bytes(const params::GdhParams& params,
                                                        ByteSpan bytes);
};

/// §5.3.3 per-epoch decryption key a·I_T, derived on a safe device so the
/// long-term secret a never reaches the decryption device. Compromise of
/// one epoch key reveals nothing about other epochs (CDH).
struct EpochKey {
  std::string tag;
  ec::G1Point d;  // a·s·H1(T)
};

/// Whether encrypt() performs the paper's step-1 pairing check on the
/// receiver public key. The check proves asg is really a·(sG), i.e. the
/// receiver cannot decrypt without the server's update.
enum class KeyCheck { kVerify, kSkip };

/// Feature switches of the scalar-multiplication / precomputation engine.
/// The default enables everything; legacy() reproduces the seed cost
/// profile (no tables, no memoization, binary G_T exponentiation) and is
/// what the before/after benchmarks and the equivalence tests run against.
/// Every switch is output-transparent: ciphertexts and plaintexts are
/// bit-identical across tunings.
struct Tuning {
  bool fixed_base_comb = true;     ///< G1Precomp comb tables per generator
  bool cache_tags = true;          ///< memoize H1(T) per scheme
  bool cache_key_checks = true;    ///< memoize successful receiver-key pairing checks
  bool cache_pair_bases = true;    ///< memoize ê(asG, H1(T)); encrypt pays one G_T pow
  bool cache_update_lines = true;  ///< Miller-loop line precomp per key update
  bool unitary_gt_pow = true;      ///< conjugate-wNAF G_T exponentiation
  /// Read-mostly cache concurrency: true = RCU-style snapshot reads with
  /// zero shared writes on a hit (common/snapshot_cache.h); false = the
  /// PR-1-era behaviour of taking a lock on every cache access. Purely a
  /// concurrency-substrate switch — cached values, hit/miss pattern and
  /// all outputs are bit-identical either way (test_concurrency proves it).
  bool snapshot_caches = true;

  static Tuning fast() { return Tuning{}; }
  /// fast() on the locked cache substrate — the "before" side of the
  /// multicore scaling comparison and of the cache-equivalence tests.
  static Tuning fast_locked() {
    Tuning t;
    t.snapshot_caches = false;
    return t;
  }
  static Tuning legacy() {
    return Tuning{false, false, false, false, false, false, false};
  }
};

class TreScheme {
 public:
  explicit TreScheme(std::shared_ptr<const params::GdhParams> params,
                     Tuning tuning = Tuning::fast());

  const params::GdhParams& params() const { return *params_; }
  const Tuning& tuning() const { return tuning_; }

  // --- Key generation -------------------------------------------------------

  /// Picks a random generator G and secret s (the server alone controls
  /// its generator, mitigating the §5.1-point-6 rogue-generator concern
  /// from the *user's* side: senders may additionally avoid G == H1(T)).
  ServerKeyPair server_keygen(tre::hashing::RandomSource& rng) const;

  UserKeyPair user_keygen(const ServerPublicKey& server,
                          tre::hashing::RandomSource& rng) const;

  /// Paper §5.1: the secret may be derived from a human-memorable password
  /// through a good hash. Deterministic per (password, server key).
  UserKeyPair user_keygen_from_password(const ServerPublicKey& server,
                                        std::string_view password) const;

  /// Structural validation of a server key (on-curve, order-q, not O).
  bool verify_server_public_key(const ServerPublicKey& server) const;

  /// The encryptor's check: ê(aG, sG) == ê(G, asG) (paper Encryption #1).
  bool verify_user_public_key(const ServerPublicKey& server,
                              const UserPublicKey& user) const;

  // --- Time-bound key updates -----------------------------------------------

  /// I_T = s·H1(T). Stateless: any tag, past or future, any order.
  KeyUpdate issue_update(const ServerKeyPair& server, std::string_view tag) const;

  /// Bulk issuance: one update per tag, fanned out on the persistent
  /// worker pool (`threads` = 0 picks hardware_concurrency, 1 runs
  /// serially on the caller). Each update is identical to
  /// issue_update(server, tags[i]).
  std::vector<KeyUpdate> issue_updates(const ServerKeyPair& server,
                                       std::span<const std::string> tags,
                                       unsigned threads = 0) const;

  /// Self-authentication check ê(sG, H1(T)) == ê(G, I_T).
  bool verify_update(const ServerPublicKey& server, const KeyUpdate& update) const;

  // --- Unified seal/open ------------------------------------------------------

  /// One entry point for all three flavours: seal(Mode::kBasic, ...) is
  /// bit-identical to encrypt(...) drawing the same randomness, and
  /// likewise for kFo/kReact. The legacy per-flavour encrypt_* methods
  /// below are thin wrappers over this.
  SealedCiphertext seal(Mode mode, ByteSpan msg, const UserPublicKey& user,
                        const ServerPublicKey& server, std::string_view tag,
                        tre::hashing::RandomSource& rng,
                        KeyCheck check = KeyCheck::kVerify) const;

  /// Decrypts any flavour; dispatches on the ciphertext's mode. nullopt
  /// on tampering (kFo/kReact) — kBasic has no integrity, so its result
  /// is always engaged but only meaningful for matching inputs. `server`
  /// is needed by the FO re-encryption check only.
  std::optional<Bytes> open(const SealedCiphertext& ct, const Scalar& a,
                            const KeyUpdate& update,
                            const ServerPublicKey& server) const;

  // --- §5.1 basic scheme ------------------------------------------------------

  Ciphertext encrypt(ByteSpan msg, const UserPublicKey& user,
                     const ServerPublicKey& server, std::string_view tag,
                     tre::hashing::RandomSource& rng,
                     KeyCheck check = KeyCheck::kVerify) const;

  /// Encrypts every message under ONE tag for one receiver, paying the
  /// receiver-key pairing check, tag hash, and base pairing once for the
  /// whole batch; per-message work drops to one fixed-base comb multiply
  /// and one G_T exponentiation. With `threads` != 1 the per-message work
  /// fans out on the persistent worker pool (0 = hardware_concurrency).
  /// Output is bit-identical to sequential encrypt() calls drawing the
  /// same randomness.
  std::vector<Ciphertext> encrypt_batch(std::span<const Bytes> msgs,
                                        const UserPublicKey& user,
                                        const ServerPublicKey& server,
                                        std::string_view tag,
                                        tre::hashing::RandomSource& rng,
                                        KeyCheck check = KeyCheck::kVerify,
                                        unsigned threads = 0) const;

  /// The basic scheme has no integrity: output is only meaningful when the
  /// inputs match the ciphertext (use the FO/REACT variants otherwise).
  Bytes decrypt(const Ciphertext& ct, const Scalar& a, const KeyUpdate& update) const;

  // --- Fujisaki-Okamoto (CCA) -------------------------------------------------

  FoCiphertext encrypt_fo(ByteSpan msg, const UserPublicKey& user,
                          const ServerPublicKey& server, std::string_view tag,
                          tre::hashing::RandomSource& rng,
                          KeyCheck check = KeyCheck::kVerify) const;

  /// nullopt on any tampering (re-encryption check fails). The server key
  /// is needed to recompute U = H3(σ, M)·G.
  std::optional<Bytes> decrypt_fo(const FoCiphertext& ct, const Scalar& a,
                                  const KeyUpdate& update,
                                  const ServerPublicKey& server) const;

  // --- REACT (CCA) -------------------------------------------------------------

  ReactCiphertext encrypt_react(ByteSpan msg, const UserPublicKey& user,
                                const ServerPublicKey& server, std::string_view tag,
                                tre::hashing::RandomSource& rng,
                                KeyCheck check = KeyCheck::kVerify) const;

  std::optional<Bytes> decrypt_react(const ReactCiphertext& ct, const Scalar& a,
                                     const KeyUpdate& update) const;

  // --- §5.3.3 key insulation ----------------------------------------------------

  /// Safe-device step: combine the long-term secret with a fresh update.
  EpochKey derive_epoch_key(const Scalar& a, const KeyUpdate& update) const;

  /// Insecure-device step: decrypt using only the epoch key.
  Bytes decrypt_with_epoch_key(const Ciphertext& ct, const EpochKey& key) const;
  std::optional<Bytes> decrypt_fo_with_epoch_key(const FoCiphertext& ct,
                                                 const EpochKey& key,
                                                 const ServerPublicKey& server) const;

  // --- §5.3.4 time-server change --------------------------------------------------

  /// Produces the user's public key under a new server without touching
  /// the CA: (a·G', a·s'·G').
  UserPublicKey rebind_user_key(const Scalar& a, const ServerPublicKey& new_server) const;

  /// Anyone can check a rebound key against the aG certified under the
  /// *old* server (no re-certification, paper §5.3.4):
  ///   (1) ê(a·G', G_old) == ê(a·G_old, G')  — same secret a;
  ///   (2) ê(a·G', s'G') == ê(G', a·s'G')    — well-formed under s'.
  bool verify_rebound_key(const ec::G1Point& certified_ag,
                          const ec::G1Point& old_generator,
                          const ServerPublicKey& new_server,
                          const UserPublicKey& candidate) const;

  // --- Shared internals (used by the multi-server and policy variants) ---

  /// H1 onto G_1 with the scheme's domain separation.
  ec::G1Point hash_tag(std::string_view tag) const;

  /// Mask bytes H2(K) of a given length.
  Bytes mask_h2(const Gt& k, size_t len) const;

  /// Random-oracle hash to a nonzero scalar in Z_q (H3-style oracles).
  Scalar hash_to_scalar(std::string_view label, ByteSpan input) const;

 private:
  // Memoized precomputation, shared by copies of the scheme (the scheme is
  // a value type; the cache is an implementation detail keyed only on
  // public data, so sharing it across copies is safe and desirable).
  // Each map is a read-mostly SnapshotCache: hits are lock-free snapshot
  // reads (no shared writes), misses publish copy-on-write under striped
  // locks. Bounded and cleared wholesale on overflow — the working sets
  // (a handful of generators, one tag per epoch, one update per epoch)
  // are tiny, so eviction policy does not matter.
  struct Cache;

  /// H1(T), memoized when tuning_.cache_tags.
  ec::G1Point cached_hash_tag(std::string_view tag) const;

  /// Comb table for a long-lived generator, memoized when
  /// tuning_.fixed_base_comb; nullptr when the comb engine is disabled.
  std::shared_ptr<const ec::G1Precomp> comb_for(const ec::G1Point& base) const;

  /// base·k for secret k where base is a long-lived generator (params
  /// base, server G / sG): fixed-pattern comb walk when enabled, seed-era
  /// wNAF otherwise.
  ec::G1Point mul_fixed_base(const ec::G1Point& base, const Scalar& k) const;

  /// base·k for secret k where base varies call to call (H1(T), update
  /// signatures): fixed-window ladder when the engine is on, wNAF otherwise.
  ec::G1Point mul_varying_base(const ec::G1Point& base, const Scalar& k) const;

  /// verify_user_public_key with positive results memoized.
  bool checked_user_key(const ServerPublicKey& server,
                        const UserPublicKey& user) const;

  /// ê(asG, H1(T)) with the result memoized per (asG, tag); the per-message
  /// encryption key is then base^r.
  Gt pair_base(const ec::G1Point& asg, std::string_view tag,
               const ec::G1Point& h1t) const;

  /// ê(u, fixed) with cached Miller line precomp for `fixed` (an update
  /// signature or epoch key, reused across every ciphertext of an epoch).
  Gt pair_with_lines(const ec::G1Point& fixed, const ec::G1Point& u) const;

  /// k^e in G_T honouring tuning_.unitary_gt_pow.
  Gt gt_pow(const Gt& k, const Scalar& e) const;

  // Per-flavour implementations behind seal()/open(); the public
  // encrypt_*/decrypt_* entry points delegate here too, so both API
  // generations share one body per flavour.
  Ciphertext seal_basic(ByteSpan msg, const UserPublicKey& user,
                        const ServerPublicKey& server, std::string_view tag,
                        tre::hashing::RandomSource& rng, KeyCheck check) const;
  FoCiphertext seal_fo(ByteSpan msg, const UserPublicKey& user,
                       const ServerPublicKey& server, std::string_view tag,
                       tre::hashing::RandomSource& rng, KeyCheck check) const;
  ReactCiphertext seal_react(ByteSpan msg, const UserPublicKey& user,
                             const ServerPublicKey& server, std::string_view tag,
                             tre::hashing::RandomSource& rng, KeyCheck check) const;

  std::shared_ptr<const params::GdhParams> params_;
  Tuning tuning_;
  std::shared_ptr<Cache> cache_;
};

/// Namespace-level spellings of the unified API, so call sites read
/// core::seal(scheme, Mode::kFo, ...) / core::open(scheme, ...).
inline SealedCiphertext seal(const TreScheme& scheme, Mode mode, ByteSpan msg,
                             const UserPublicKey& user, const ServerPublicKey& server,
                             std::string_view tag, tre::hashing::RandomSource& rng,
                             KeyCheck check = KeyCheck::kVerify) {
  return scheme.seal(mode, msg, user, server, tag, rng, check);
}

inline std::optional<Bytes> open(const TreScheme& scheme, const SealedCiphertext& ct,
                                 const Scalar& a, const KeyUpdate& update,
                                 const ServerPublicKey& server) {
  return scheme.open(ct, a, update, server);
}

}  // namespace tre::core
