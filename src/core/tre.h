// Timed Release Encryption (TRE) — the paper's §5.1 construction with the
// §5.3 extensions, on the legacy type-1 curve.
//
// Roles and artifacts:
//   * Time server: secret s, public (G, sG) with G a server-chosen random
//     generator. Completely passive: its only output is the time-bound key
//     update I_T = s·H1(T), a BLS short signature on the time string T
//     that is self-authenticating via ê(sG, H1(T)) == ê(G, I_T).
//   * User: secret a, public (aG, a·sG) — bound to the server key so that
//     decryption provably needs the server's update.
//   * Sender: encrypts under the two public keys and a release tag T with
//     no interaction: C = ⟨rG, M ⊕ H2(ê(r·asG, H1(T)))⟩.
//   * Receiver: decrypts with K' = ê(U, I_T)^a once I_T is published.
//
// Three ciphertext flavours are provided:
//   * Basic (§5.1 verbatim): one-way / CPA-secure under BDH in the ROM.
//   * FO (Fujisaki-Okamoto, as the paper prescribes for CCA security).
//   * REACT (Okamoto-Pointcheval, the paper's stated alternative).
//
// The tag argument is an opaque byte string: a canonical time string for
// timed release (see timeserver/timespec.h) or any condition string for
// the §5.3.2 policy-lock generalization.
//
// Since the backend-generic refactor the entire scheme lives in
// core/tre_core.h as a template over a PairingBackend policy; this header
// is the type-1 instantiation (core/backend512.h) under the historical
// names. The BLS12-381 instantiation of the SAME code is bls12/tre381.h.
#pragma once

#include "core/backend512.h"
#include "core/tre_core.h"

namespace tre::core {

using Gt = pairing::Gt;

using ServerPublicKey = BasicServerPublicKey<Tre512Backend>;
using ServerKeyPair = BasicServerKeyPair<Tre512Backend>;
using UserPublicKey = BasicUserPublicKey<Tre512Backend>;
using UserKeyPair = BasicUserKeyPair<Tre512Backend>;
using KeyUpdate = BasicKeyUpdate<Tre512Backend>;
using Ciphertext = BasicCiphertext<Tre512Backend>;
using FoCiphertext = BasicFoCiphertext<Tre512Backend>;
using ReactCiphertext = BasicReactCiphertext<Tre512Backend>;
using SealedCiphertext = BasicSealedCiphertext<Tre512Backend>;
using EpochKey = BasicEpochKey<Tre512Backend>;
using TreScheme = BasicTreScheme<Tre512Backend>;

// The type-1 scheme is compiled once into tre_core (tre.cpp); every other
// translation unit links against that instantiation.
extern template class BasicTreScheme<Tre512Backend>;

}  // namespace tre::core
