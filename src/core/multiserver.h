// §5.3.5 — multiple time servers.
//
// The sender distributes trust over N servers: decryption needs *all* N
// time-bound key updates s_i·H1(T) plus the receiver's secret, so a
// receiver must corrupt every server to open a message early.
//
//   user key   : aG (CA-certified) + parts a·s_i·G_i, one per server
//   ciphertext : ⟨rG_1, ..., rG_N, M ⊕ H2(K)⟩
//   K          : ê(r·Σ parts, H1(T)) = Π ê(G_i, H1(T))^{r·a·s_i}
//
// Each part is verifiable against the certified aG with one pairing
// equation (no re-certification), generalizing the §5.3.4 trick.
#pragma once

#include <span>
#include <vector>

#include "core/tre.h"

namespace tre::core {

struct MultiServerUserKey {
  ec::G1Point ag;                  // a·base, the CA-certified anchor
  std::vector<ec::G1Point> parts;  // a·s_i·G_i per server, same order as servers

  Bytes to_bytes() const;
  static MultiServerUserKey from_bytes(const params::GdhParams& params, ByteSpan bytes);
};

struct MultiServerCiphertext {
  std::vector<ec::G1Point> us;  // r·G_i per server
  Bytes v;

  Bytes to_bytes() const;
  static MultiServerCiphertext from_bytes(const params::GdhParams& params,
                                          ByteSpan bytes);
};

class MultiServerTre {
 public:
  explicit MultiServerTre(std::shared_ptr<const params::GdhParams> params);

  const params::GdhParams& params() const { return scheme_.params(); }

  /// The receiver publishes aG w.r.t. the system base plus one part per
  /// server the sender may require.
  MultiServerUserKey user_key(const Scalar& a,
                              std::span<const ServerPublicKey> servers) const;

  /// Sender-side validation: every part i satisfies
  /// ê(base, a·s_iG_i) == ê(aG, s_iG_i).
  bool verify_user_key(const MultiServerUserKey& user,
                       std::span<const ServerPublicKey> servers) const;

  /// One pairing regardless of N: K = ê(r·Σ parts, H1(T)).
  MultiServerCiphertext encrypt(ByteSpan msg, const MultiServerUserKey& user,
                                std::span<const ServerPublicKey> servers,
                                std::string_view tag,
                                tre::hashing::RandomSource& rng) const;

  /// Needs all N updates for the same tag, one per server, in order.
  /// Throws on count/tag mismatch; N pairings.
  Bytes decrypt(const MultiServerCiphertext& ct, const Scalar& a,
                std::span<const KeyUpdate> updates) const;

 private:
  TreScheme scheme_;
};

}  // namespace tre::core
