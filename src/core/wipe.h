// Explicit zeroization of secret key material.
//
// Key types are plain value types (copyable, container-friendly), so
// wiping is explicit rather than a destructor side effect: call these
// when a secret's lifetime ends (the CLI and examples do).
#pragma once

#include "core/tre.h"

namespace tre::core {

/// Zeroizes a scalar's limbs (compiler-resistant).
void wipe(Scalar& s);

void wipe(ServerKeyPair& keys);
void wipe(UserKeyPair& keys);
void wipe(EpochKey& key);

// Backend-generic overloads: the same operations for any scheme backend
// (BLS12-381 key material was previously not wipeable). The non-template
// overloads above stay as the exact-match choice for the type-1 aliases,
// preserving their curve-aware infinity reset.

template <class B>
void wipe(BasicServerKeyPair<B>& keys) {
  wipe(keys.s);
}

template <class B>
void wipe(BasicUserKeyPair<B>& keys) {
  wipe(keys.a);
}

/// Structural reset: the epoch point (secret for its epoch) becomes the
/// backend's default (point at infinity) and the tag is dropped.
template <class B>
void wipe(BasicEpochKey<B>& key) {
  key.d = typename B::Gu{};
  key.tag.clear();
}

}  // namespace tre::core
