// Explicit zeroization of secret key material.
//
// Key types are plain value types (copyable, container-friendly), so
// wiping is explicit rather than a destructor side effect: call these
// when a secret's lifetime ends (the CLI and examples do).
#pragma once

#include "core/tre.h"

namespace tre::core {

/// Zeroizes a scalar's limbs (compiler-resistant).
void wipe(Scalar& s);

void wipe(ServerKeyPair& keys);
void wipe(UserKeyPair& keys);
void wipe(EpochKey& key);

}  // namespace tre::core
