// PairingBackend policy for the legacy type-1 curve family (tre-512 and
// the tre-toy-* parameter sets): the 2005-era supersingular curve
// y² = x³ + ax over F_p with the distortion-map modified Weil/Tate
// pairing. Both source groups are the SAME order-q subgroup of E(F_p),
// so Gu == Gh == ec::G1Point and every artifact-placement question is
// trivial; the orientation helpers below preserve the exact historical
// argument order of each pairing call site, which keeps this
// instantiation bit-identical to the pre-template scheme (the golden
// vectors in test_backend_identity pin that down).
#pragma once

#include <memory>

#include "core/tre_core.h"
#include "ec/curve.h"
#include "pairing/pairing.h"
#include "params/params.h"

namespace tre::core {

struct Tre512Backend {
  using Params = params::GdhParams;
  using Gu = ec::G1Point;
  using Gh = ec::G1Point;
  using Gt = pairing::Gt;
  using GhPrecomp = ec::G1Precomp;
  using PairPrecomp = pairing::MillerPrecomp;

  /// Probe prefix: the historical "core.*" names (docs/OBSERVABILITY.md).
  static constexpr const char* kProbePrefix = "core.";
  /// On a symmetric pairing the user's anchor aG lives in the header
  /// group, so it shares the server-generator comb table.
  static constexpr bool kAnchorIsGh = true;

  // --- scalars ---------------------------------------------------------------
  static Scalar random_scalar(const Params& p, tre::hashing::RandomSource& rng) {
    return params::random_scalar(p, rng);
  }
  static size_t scalar_bytes(const Params& p) { return p.scalar_bytes(); }
  static const field::FpInt& group_order(const Params& p) { return p.group_order(); }
  /// The scalar field F_q (mod-group-order arithmetic for Shamir
  /// polynomials and Lagrange coefficients).
  static const field::FpCtx* scalar_field(const Params& p) { return p.curve->fq.get(); }

  // --- hashing / generators --------------------------------------------------
  static Gu hash_tag(const Params& p, ByteSpan msg) {
    return ec::hash_to_g1(p.ctx(), msg);
  }
  static const Gh& header_base(const Params& p) { return p.base; }
  /// Type-1: the anchor base IS the server's generator.
  static const Gu& anchor_base(const Params&, const Gh& server_g) { return server_g; }

  // --- header-group (Gh) operations ------------------------------------------
  static Gh gh_mul(const Params&, const Gh& p, const Scalar& k) { return p.mul(k); }
  static Gh gh_mul_secret(const Params&, const Gh& p, const Scalar& k) {
    return p.mul_secret(k);
  }
  static bool gh_is_infinity(const Gh& p) { return p.is_infinity(); }
  static bool gh_in_subgroup(const Params&, const Gh& p) { return p.in_subgroup(); }
  static bool gh_eq(const Gh& a, const Gh& b) { return a == b; }
  static Bytes gh_to_bytes(const Gh& p) { return p.to_bytes_compressed(); }
  static size_t gh_wire_bytes(const Params& p) { return p.g1_compressed_bytes(); }
  /// Σᵢ scalars[i]·points[i] in the header group (same subgroup here).
  static Gh gh_multiexp(const Params& p, std::span<const Gh> points,
                        std::span<const Scalar> scalars, unsigned threads) {
    return ec::g1_multiexp(p.ctx(), points, scalars, threads);
  }
  static Gh gh_from_bytes(const Params& p, ByteSpan bytes) {
    Gh q = ec::G1Point::from_bytes(p.ctx(), bytes);
    // Reject points on the curve but outside the order-q subgroup
    // (small-subgroup / invalid-point hardening).
    require(q.in_subgroup(), "deserialization: point outside the order-q subgroup");
    return q;
  }

  // --- update-group (Gu) operations: the same group on this curve ------------
  static Gu gu_mul(const Params& p, const Gu& q, const Scalar& k) {
    return gh_mul(p, q, k);
  }
  static Gu gu_mul_secret(const Params& p, const Gu& q, const Scalar& k) {
    return gh_mul_secret(p, q, k);
  }
  /// Σᵢ scalars[i]·points[i] via bucketed Pippenger on the work pool.
  static Gu gu_multiexp(const Params& p, std::span<const Gu> points,
                        std::span<const Scalar> scalars, unsigned threads) {
    return ec::g1_multiexp(p.ctx(), points, scalars, threads);
  }
  static bool gu_is_infinity(const Gu& p) { return p.is_infinity(); }
  static bool gu_in_subgroup(const Params& p, const Gu& q) {
    return gh_in_subgroup(p, q);
  }
  static bool gu_eq(const Gu& a, const Gu& b) { return a == b; }
  static Bytes gu_to_bytes(const Gu& p) { return p.to_bytes_compressed(); }
  static size_t gu_wire_bytes(const Params& p) { return p.g1_compressed_bytes(); }
  static Gu gu_from_bytes(const Params& p, ByteSpan bytes) {
    return gh_from_bytes(p, bytes);
  }

  // --- precomputation engines -------------------------------------------------
  static std::shared_ptr<const GhPrecomp> make_comb(const Params&, const Gh& base) {
    return std::make_shared<const ec::G1Precomp>(base);
  }
  static std::shared_ptr<const PairPrecomp> make_lines(const Params&, const Gu& fixed) {
    return std::make_shared<const pairing::MillerPrecomp>(fixed);
  }

  // --- pairing ----------------------------------------------------------------
  // Each named operation preserves its historical call-site orientation.
  /// Encrypt-side session key ê(asG, H1(T)) (or its r-multiple).
  static Gt pair_session(const Params&, const Gh& asg, const Gu& h1t) {
    return pairing::pair(asg, h1t);
  }
  /// Decrypt-side ê(U, I_T): `fixed` is the update/epoch key the Miller
  /// lines are cached for, `u` the ciphertext header.
  static Gt pair_decrypt(const Params&, const Gu& fixed, const Gh& u) {
    return pairing::pair(u, fixed);
  }
  /// ê(u1, h1) == ê(u2, h2) — the user-key check orientation.
  static bool pairings_equal_uh(const Params&, const Gu& u1, const Gh& h1,
                                const Gu& u2, const Gh& h2) {
    return pairing::pairings_equal(u1, h1, u2, h2);
  }
  /// ê(h1, u1) == ê(h2, u2) — the update-verification orientation.
  static bool pairings_equal_hu(const Params&, const Gh& h1, const Gu& u1,
                                const Gh& h2, const Gu& u2) {
    return pairing::pairings_equal(h1, u1, h2, u2);
  }
  /// §5.3.4 check (1): does `cand_ag` hide the same secret as the
  /// certified `cert_ag`? Type-1 needs the cross pairing
  /// ê(a·G', G_old) == ê(a·G_old, G').
  static bool same_secret(const Params&, const Gu& cand_ag, const Gh& old_gen,
                          const Gu& cert_ag, const Gh& new_g) {
    return pairing::pairings_equal(cand_ag, old_gen, cert_ag, new_g);
  }
  static Gt gt_pow(const Params&, const Gt& k, const Scalar& e, bool unitary) {
    return unitary ? k.pow_unitary(e) : k.pow(e);
  }
  static Bytes gt_to_bytes(const Params&, const Gt& k) { return k.to_bytes(); }
};

}  // namespace tre::core
