#include "core/tre.h"

#include "bigint/prime.h"
#include "hashing/kdf.h"

namespace tre::core {

using ec::G1Point;
using field::FpInt;

namespace {

constexpr size_t kSigmaBytes = 32;  // FO commitment / REACT witness size
constexpr size_t kMacBytes = 32;

void put_u16(Bytes& out, size_t v) {
  require(v <= 0xffff, "serialization: length exceeds u16");
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
}

size_t get_u16(ByteSpan bytes, size_t& off) {
  require(off + 2 <= bytes.size(), "deserialization: truncated length");
  size_t v = static_cast<size_t>(bytes[off]) << 8 | bytes[off + 1];
  off += 2;
  return v;
}

Bytes get_exact(ByteSpan bytes, size_t& off, size_t n, const char* what) {
  require(off + n <= bytes.size(), what);
  Bytes out(bytes.begin() + static_cast<long>(off),
            bytes.begin() + static_cast<long>(off + n));
  off += n;
  return out;
}

G1Point get_point(const params::GdhParams& params, ByteSpan bytes, size_t& off) {
  size_t n = params.g1_compressed_bytes();
  Bytes raw = get_exact(bytes, off, n, "deserialization: truncated point");
  G1Point p = G1Point::from_bytes(params.ctx(), raw);
  // Small-subgroup hardening: curve membership alone admits points of
  // order dividing the cofactor 12r; every protocol point must be in G_1.
  require(p.in_subgroup(), "deserialization: point outside the order-q subgroup");
  return p;
}

void expect_consumed(ByteSpan bytes, size_t off, const char* what) {
  require(off == bytes.size(), what);
}

}  // namespace

// --- Serialization -----------------------------------------------------------

Bytes ServerPublicKey::to_bytes() const {
  return concat({g.to_bytes_compressed(), sg.to_bytes_compressed()});
}

ServerPublicKey ServerPublicKey::from_bytes(const params::GdhParams& params,
                                            ByteSpan bytes) {
  size_t off = 0;
  ServerPublicKey pk{get_point(params, bytes, off), get_point(params, bytes, off)};
  expect_consumed(bytes, off, "ServerPublicKey: trailing bytes");
  return pk;
}

Bytes UserPublicKey::to_bytes() const {
  return concat({ag.to_bytes_compressed(), asg.to_bytes_compressed()});
}

UserPublicKey UserPublicKey::from_bytes(const params::GdhParams& params,
                                        ByteSpan bytes) {
  size_t off = 0;
  UserPublicKey pk{get_point(params, bytes, off), get_point(params, bytes, off)};
  expect_consumed(bytes, off, "UserPublicKey: trailing bytes");
  return pk;
}

Bytes KeyUpdate::to_bytes() const {
  Bytes out;
  put_u16(out, tag.size());
  Bytes tag_bytes = tre::to_bytes(tag);
  out.insert(out.end(), tag_bytes.begin(), tag_bytes.end());
  Bytes sig_bytes = sig.to_bytes_compressed();
  out.insert(out.end(), sig_bytes.begin(), sig_bytes.end());
  return out;
}

KeyUpdate KeyUpdate::from_bytes(const params::GdhParams& params, ByteSpan bytes) {
  size_t off = 0;
  size_t tag_len = get_u16(bytes, off);
  Bytes tag_bytes = get_exact(bytes, off, tag_len, "KeyUpdate: truncated tag");
  G1Point sig = get_point(params, bytes, off);
  expect_consumed(bytes, off, "KeyUpdate: trailing bytes");
  return KeyUpdate{std::string(tag_bytes.begin(), tag_bytes.end()), sig};
}

Bytes Ciphertext::to_bytes() const {
  Bytes out = u.to_bytes_compressed();
  put_u16(out, v.size());
  out.insert(out.end(), v.begin(), v.end());
  return out;
}

Ciphertext Ciphertext::from_bytes(const params::GdhParams& params, ByteSpan bytes) {
  size_t off = 0;
  G1Point u = get_point(params, bytes, off);
  size_t n = get_u16(bytes, off);
  Bytes v = get_exact(bytes, off, n, "Ciphertext: truncated body");
  expect_consumed(bytes, off, "Ciphertext: trailing bytes");
  return Ciphertext{u, std::move(v)};
}

Bytes FoCiphertext::to_bytes() const {
  Bytes out = u.to_bytes_compressed();
  put_u16(out, c_sigma.size());
  out.insert(out.end(), c_sigma.begin(), c_sigma.end());
  put_u16(out, c_msg.size());
  out.insert(out.end(), c_msg.begin(), c_msg.end());
  return out;
}

FoCiphertext FoCiphertext::from_bytes(const params::GdhParams& params, ByteSpan bytes) {
  size_t off = 0;
  G1Point u = get_point(params, bytes, off);
  size_t n1 = get_u16(bytes, off);
  Bytes c_sigma = get_exact(bytes, off, n1, "FoCiphertext: truncated sigma");
  size_t n2 = get_u16(bytes, off);
  Bytes c_msg = get_exact(bytes, off, n2, "FoCiphertext: truncated body");
  expect_consumed(bytes, off, "FoCiphertext: trailing bytes");
  return FoCiphertext{u, std::move(c_sigma), std::move(c_msg)};
}

Bytes ReactCiphertext::to_bytes() const {
  Bytes out = u.to_bytes_compressed();
  put_u16(out, c_r.size());
  out.insert(out.end(), c_r.begin(), c_r.end());
  put_u16(out, c_msg.size());
  out.insert(out.end(), c_msg.begin(), c_msg.end());
  put_u16(out, mac.size());
  out.insert(out.end(), mac.begin(), mac.end());
  return out;
}

ReactCiphertext ReactCiphertext::from_bytes(const params::GdhParams& params,
                                            ByteSpan bytes) {
  size_t off = 0;
  G1Point u = get_point(params, bytes, off);
  size_t n1 = get_u16(bytes, off);
  Bytes c_r = get_exact(bytes, off, n1, "ReactCiphertext: truncated c_r");
  size_t n2 = get_u16(bytes, off);
  Bytes c_msg = get_exact(bytes, off, n2, "ReactCiphertext: truncated body");
  size_t n3 = get_u16(bytes, off);
  Bytes mac = get_exact(bytes, off, n3, "ReactCiphertext: truncated mac");
  expect_consumed(bytes, off, "ReactCiphertext: trailing bytes");
  return ReactCiphertext{u, std::move(c_r), std::move(c_msg), std::move(mac)};
}

// --- Scheme ------------------------------------------------------------------

TreScheme::TreScheme(std::shared_ptr<const params::GdhParams> params)
    : params_(std::move(params)) {
  require(params_ != nullptr, "TreScheme: null params");
}

G1Point TreScheme::hash_tag(std::string_view tag) const {
  return ec::hash_to_g1(params_->ctx(), tre::to_bytes(tag));
}

Bytes TreScheme::mask_h2(const Gt& k, size_t len) const {
  return hashing::oracle_bytes("TRE-H2", k.to_bytes(), len);
}

Scalar TreScheme::hash_to_scalar(std::string_view label, ByteSpan input) const {
  // Oversample by 16 bytes so the mod-q bias is negligible; map 0 -> 1.
  Bytes wide = hashing::oracle_bytes(label, input, params_->scalar_bytes() + 16);
  auto v = bigint::BigInt<2 * field::kMaxFieldLimbs>::from_bytes_be(wide);
  Scalar r = bigint::mod_wide(v, params_->group_order());
  if (r.is_zero()) r = Scalar::from_u64(1);
  return r;
}

ServerKeyPair TreScheme::server_keygen(tre::hashing::RandomSource& rng) const {
  // G = h·base for random h is a uniform generator of the order-q subgroup.
  Scalar h = params::random_scalar(*params_, rng);
  Scalar s = params::random_scalar(*params_, rng);
  G1Point g = params_->base.mul(h);
  return ServerKeyPair{s, ServerPublicKey{g, g.mul(s)}};
}

UserKeyPair TreScheme::user_keygen(const ServerPublicKey& server,
                                   tre::hashing::RandomSource& rng) const {
  Scalar a = params::random_scalar(*params_, rng);
  return UserKeyPair{a, UserPublicKey{server.g.mul(a), server.sg.mul(a)}};
}

UserKeyPair TreScheme::user_keygen_from_password(const ServerPublicKey& server,
                                                 std::string_view password) const {
  // Domain-separate by the server key so one password yields unrelated
  // secrets under different servers.
  Bytes input = concat({tre::to_bytes(password), server.to_bytes()});
  Scalar a = hash_to_scalar("TRE-PWKDF", input);
  return UserKeyPair{a, UserPublicKey{server.g.mul(a), server.sg.mul(a)}};
}

bool TreScheme::verify_server_public_key(const ServerPublicKey& server) const {
  return !server.g.is_infinity() && !server.sg.is_infinity() &&
         server.g.in_subgroup() && server.sg.in_subgroup();
}

bool TreScheme::verify_user_public_key(const ServerPublicKey& server,
                                       const UserPublicKey& user) const {
  if (user.ag.is_infinity() || user.asg.is_infinity()) return false;
  return pairing::pairings_equal(user.ag, server.sg, server.g, user.asg);
}

KeyUpdate TreScheme::issue_update(const ServerKeyPair& server,
                                  std::string_view tag) const {
  return KeyUpdate{std::string(tag), hash_tag(tag).mul(server.s)};
}

bool TreScheme::verify_update(const ServerPublicKey& server,
                              const KeyUpdate& update) const {
  if (update.sig.is_infinity()) return false;
  return pairing::pairings_equal(server.sg, hash_tag(update.tag), server.g, update.sig);
}

Ciphertext TreScheme::encrypt(ByteSpan msg, const UserPublicKey& user,
                              const ServerPublicKey& server, std::string_view tag,
                              tre::hashing::RandomSource& rng, KeyCheck check) const {
  if (check == KeyCheck::kVerify) {
    require(verify_user_public_key(server, user),
            "TRE encrypt: receiver public key fails the pairing check");
  }
  Scalar r = params::random_scalar(*params_, rng);
  G1Point u = server.g.mul(r);
  Gt k = pairing::pair(user.asg.mul(r), hash_tag(tag));
  return Ciphertext{u, xor_bytes(msg, mask_h2(k, msg.size()))};
}

Bytes TreScheme::decrypt(const Ciphertext& ct, const Scalar& a,
                         const KeyUpdate& update) const {
  Gt k = pairing::pair(ct.u, update.sig).pow(a);
  return xor_bytes(ct.v, mask_h2(k, ct.v.size()));
}

FoCiphertext TreScheme::encrypt_fo(ByteSpan msg, const UserPublicKey& user,
                                   const ServerPublicKey& server, std::string_view tag,
                                   tre::hashing::RandomSource& rng,
                                   KeyCheck check) const {
  if (check == KeyCheck::kVerify) {
    require(verify_user_public_key(server, user),
            "TRE encrypt_fo: receiver public key fails the pairing check");
  }
  Bytes sigma = rng.bytes(kSigmaBytes);
  // r = H3(sigma, M): decryption re-derives it, making the scheme
  // plaintext-aware (CCA in the ROM per Fujisaki-Okamoto).
  Scalar r = hash_to_scalar("TRE-H3", concat({sigma, msg}));
  G1Point u = server.g.mul(r);
  Gt k = pairing::pair(user.asg.mul(r), hash_tag(tag));
  Bytes c_sigma = xor_bytes(sigma, mask_h2(k, kSigmaBytes));
  Bytes c_msg = xor_bytes(msg, hashing::oracle_bytes("TRE-H4", sigma, msg.size()));
  return FoCiphertext{u, std::move(c_sigma), std::move(c_msg)};
}

std::optional<Bytes> TreScheme::decrypt_fo(const FoCiphertext& ct, const Scalar& a,
                                           const KeyUpdate& update,
                                           const ServerPublicKey& server) const {
  if (ct.c_sigma.size() != kSigmaBytes) return std::nullopt;
  Gt k = pairing::pair(ct.u, update.sig).pow(a);
  Bytes sigma = xor_bytes(ct.c_sigma, mask_h2(k, kSigmaBytes));
  Bytes msg = xor_bytes(ct.c_msg, hashing::oracle_bytes("TRE-H4", sigma, ct.c_msg.size()));
  Scalar r = hash_to_scalar("TRE-H3", concat({sigma, msg}));
  if (!(server.g.mul(r) == ct.u)) return std::nullopt;
  return msg;
}

ReactCiphertext TreScheme::encrypt_react(ByteSpan msg, const UserPublicKey& user,
                                         const ServerPublicKey& server,
                                         std::string_view tag,
                                         tre::hashing::RandomSource& rng,
                                         KeyCheck check) const {
  if (check == KeyCheck::kVerify) {
    require(verify_user_public_key(server, user),
            "TRE encrypt_react: receiver public key fails the pairing check");
  }
  Bytes witness = rng.bytes(kSigmaBytes);  // REACT's random R
  Scalar r = params::random_scalar(*params_, rng);
  G1Point u = server.g.mul(r);
  Gt k = pairing::pair(user.asg.mul(r), hash_tag(tag));
  Bytes c_r = xor_bytes(witness, mask_h2(k, kSigmaBytes));
  Bytes c_msg = xor_bytes(msg, hashing::oracle_bytes("TRE-G", witness, msg.size()));
  Bytes mac = hashing::oracle_bytes(
      "TRE-H5", concat({witness, msg, u.to_bytes_compressed(), c_r, c_msg}), kMacBytes);
  return ReactCiphertext{u, std::move(c_r), std::move(c_msg), std::move(mac)};
}

std::optional<Bytes> TreScheme::decrypt_react(const ReactCiphertext& ct,
                                              const Scalar& a,
                                              const KeyUpdate& update) const {
  if (ct.c_r.size() != kSigmaBytes || ct.mac.size() != kMacBytes) return std::nullopt;
  Gt k = pairing::pair(ct.u, update.sig).pow(a);
  Bytes witness = xor_bytes(ct.c_r, mask_h2(k, kSigmaBytes));
  Bytes msg = xor_bytes(ct.c_msg, hashing::oracle_bytes("TRE-G", witness, ct.c_msg.size()));
  Bytes mac = hashing::oracle_bytes(
      "TRE-H5",
      concat({witness, msg, ct.u.to_bytes_compressed(), ct.c_r, ct.c_msg}), kMacBytes);
  if (!ct_equal(mac, ct.mac)) return std::nullopt;
  return msg;
}

EpochKey TreScheme::derive_epoch_key(const Scalar& a, const KeyUpdate& update) const {
  // a·I_T = a·s·H1(T): all the secret material a ciphertext for tag T
  // needs, and useless for any other tag (CDH). The paper's §5.3.3 text
  // writes the epoch key as aH1(T_i); only a·(s·H1(T_i)) closes the
  // decryption equation — see DESIGN.md for the fidelity note.
  return EpochKey{update.tag, update.sig.mul(a)};
}

Bytes TreScheme::decrypt_with_epoch_key(const Ciphertext& ct, const EpochKey& key) const {
  Gt k = pairing::pair(ct.u, key.d);
  return xor_bytes(ct.v, mask_h2(k, ct.v.size()));
}

std::optional<Bytes> TreScheme::decrypt_fo_with_epoch_key(
    const FoCiphertext& ct, const EpochKey& key, const ServerPublicKey& server) const {
  if (ct.c_sigma.size() != kSigmaBytes) return std::nullopt;
  Gt k = pairing::pair(ct.u, key.d);
  Bytes sigma = xor_bytes(ct.c_sigma, mask_h2(k, kSigmaBytes));
  Bytes msg = xor_bytes(ct.c_msg, hashing::oracle_bytes("TRE-H4", sigma, ct.c_msg.size()));
  Scalar r = hash_to_scalar("TRE-H3", concat({sigma, msg}));
  if (!(server.g.mul(r) == ct.u)) return std::nullopt;
  return msg;
}

UserPublicKey TreScheme::rebind_user_key(const Scalar& a,
                                         const ServerPublicKey& new_server) const {
  return UserPublicKey{new_server.g.mul(a), new_server.sg.mul(a)};
}

bool TreScheme::verify_rebound_key(const ec::G1Point& certified_ag,
                                   const ec::G1Point& old_generator,
                                   const ServerPublicKey& new_server,
                                   const UserPublicKey& candidate) const {
  if (candidate.ag.is_infinity() || candidate.asg.is_infinity()) return false;
  // (1) Same secret a as in the certified key: ê(aG', G_o) == ê(aG_o, G').
  if (!pairing::pairings_equal(candidate.ag, old_generator, certified_ag,
                               new_server.g)) {
    return false;
  }
  // (2) Well-formed under the new server key.
  return verify_user_public_key(new_server, candidate);
}

}  // namespace tre::core
