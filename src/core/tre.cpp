#include "core/tre.h"

#include <type_traits>

#include "bigint/prime.h"
#include "common/parallel.h"
#include "common/snapshot_cache.h"
#include "hashing/kdf.h"
#include "obs/metrics.h"

namespace tre::core {

using ec::G1Point;
using field::FpInt;

namespace {

constexpr size_t kSigmaBytes = 32;  // FO commitment / REACT witness size
constexpr size_t kMacBytes = 32;

void put_u16(Bytes& out, size_t v) {
  require(v <= 0xffff, "serialization: length exceeds u16");
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
}

size_t get_u16(ByteSpan bytes, size_t& off) {
  require(off + 2 <= bytes.size(), "deserialization: truncated length");
  size_t v = static_cast<size_t>(bytes[off]) << 8 | bytes[off + 1];
  off += 2;
  return v;
}

Bytes get_exact(ByteSpan bytes, size_t& off, size_t n, const char* what) {
  require(off + n <= bytes.size(), what);
  Bytes out(bytes.begin() + static_cast<long>(off),
            bytes.begin() + static_cast<long>(off + n));
  off += n;
  return out;
}

G1Point get_point(const params::GdhParams& params, ByteSpan bytes, size_t& off) {
  size_t n = params.g1_compressed_bytes();
  Bytes raw = get_exact(bytes, off, n, "deserialization: truncated point");
  G1Point p = G1Point::from_bytes(params.ctx(), raw);
  // Small-subgroup hardening: curve membership alone admits points of
  // order dividing the cofactor 12r; every protocol point must be in G_1.
  require(p.in_subgroup(), "deserialization: point outside the order-q subgroup");
  return p;
}

void expect_consumed(ByteSpan bytes, size_t off, const char* what) {
  require(off == bytes.size(), what);
}

// Hot-path probe handles, resolved once per process. Under
// -DTRE_METRICS=OFF every member is an empty no-op and the optimizer
// erases the call sites (docs/OBSERVABILITY.md lists the catalog).
struct Probes {
  obs::CounterProbe pairings{"core.pairings"};
  obs::CounterProbe mul_fixed{"core.mul.fixed_base"};
  obs::CounterProbe mul_comb{"core.mul.comb"};
  obs::CounterProbe mul_varying{"core.mul.varying_base"};
  obs::CounterProbe tag_hit{"core.cache.tags.hit"};
  obs::CounterProbe tag_miss{"core.cache.tags.miss"};
  obs::CounterProbe comb_hit{"core.cache.combs.hit"};
  obs::CounterProbe comb_miss{"core.cache.combs.miss"};
  obs::CounterProbe keycheck_hit{"core.cache.key_checks.hit"};
  obs::CounterProbe keycheck_miss{"core.cache.key_checks.miss"};
  obs::CounterProbe pairbase_hit{"core.cache.pair_bases.hit"};
  obs::CounterProbe pairbase_miss{"core.cache.pair_bases.miss"};
  obs::CounterProbe lines_hit{"core.cache.lines.hit"};
  obs::CounterProbe lines_miss{"core.cache.lines.miss"};
  obs::CounterProbe seals{"core.seals"};
  obs::CounterProbe opens{"core.opens"};
  obs::CounterProbe updates_issued{"core.updates_issued"};
  obs::CounterProbe updates_verified{"core.updates_verified"};
  obs::HistogramProbe encrypt_ns{"core.encrypt_ns"};
  obs::HistogramProbe decrypt_ns{"core.decrypt_ns"};
  obs::HistogramProbe issue_update_ns{"core.issue_update_ns"};
  obs::HistogramProbe verify_update_ns{"core.verify_update_ns"};
  // Nanoseconds spent blocked on a CONTENDED cache write lock (hits never
  // lock). count == number of contended acquisitions; stays 0 when the
  // snapshot substrate keeps writers out of each other's way.
  obs::HistogramProbe cache_lock_wait_ns{"core.cache.lock_wait_ns"};

  static const Probes& get() {
    static const Probes p;
    return p;
  }
};

}  // namespace

// --- Serialization -----------------------------------------------------------

Bytes ServerPublicKey::to_bytes() const {
  return concat({g.to_bytes_compressed(), sg.to_bytes_compressed()});
}

ServerPublicKey ServerPublicKey::from_bytes(const params::GdhParams& params,
                                            ByteSpan bytes) {
  size_t off = 0;
  ServerPublicKey pk{get_point(params, bytes, off), get_point(params, bytes, off)};
  expect_consumed(bytes, off, "ServerPublicKey: trailing bytes");
  return pk;
}

Bytes UserPublicKey::to_bytes() const {
  return concat({ag.to_bytes_compressed(), asg.to_bytes_compressed()});
}

UserPublicKey UserPublicKey::from_bytes(const params::GdhParams& params,
                                        ByteSpan bytes) {
  size_t off = 0;
  UserPublicKey pk{get_point(params, bytes, off), get_point(params, bytes, off)};
  expect_consumed(bytes, off, "UserPublicKey: trailing bytes");
  return pk;
}

Bytes KeyUpdate::to_bytes() const {
  Bytes out;
  put_u16(out, tag.size());
  Bytes tag_bytes = tre::to_bytes(tag);
  out.insert(out.end(), tag_bytes.begin(), tag_bytes.end());
  Bytes sig_bytes = sig.to_bytes_compressed();
  out.insert(out.end(), sig_bytes.begin(), sig_bytes.end());
  return out;
}

KeyUpdate KeyUpdate::from_bytes(const params::GdhParams& params, ByteSpan bytes) {
  size_t off = 0;
  size_t tag_len = get_u16(bytes, off);
  Bytes tag_bytes = get_exact(bytes, off, tag_len, "KeyUpdate: truncated tag");
  G1Point sig = get_point(params, bytes, off);
  expect_consumed(bytes, off, "KeyUpdate: trailing bytes");
  return KeyUpdate{std::string(tag_bytes.begin(), tag_bytes.end()), sig};
}

std::optional<KeyUpdate> KeyUpdate::try_from_bytes(const params::GdhParams& params,
                                                   ByteSpan bytes) {
  try {
    return from_bytes(params, bytes);
  } catch (const Error&) {
    return std::nullopt;
  }
}

Bytes Ciphertext::to_bytes() const {
  Bytes out = u.to_bytes_compressed();
  put_u16(out, v.size());
  out.insert(out.end(), v.begin(), v.end());
  return out;
}

Ciphertext Ciphertext::from_bytes(const params::GdhParams& params, ByteSpan bytes) {
  size_t off = 0;
  G1Point u = get_point(params, bytes, off);
  size_t n = get_u16(bytes, off);
  Bytes v = get_exact(bytes, off, n, "Ciphertext: truncated body");
  expect_consumed(bytes, off, "Ciphertext: trailing bytes");
  return Ciphertext{u, std::move(v)};
}

Bytes FoCiphertext::to_bytes() const {
  Bytes out = u.to_bytes_compressed();
  put_u16(out, c_sigma.size());
  out.insert(out.end(), c_sigma.begin(), c_sigma.end());
  put_u16(out, c_msg.size());
  out.insert(out.end(), c_msg.begin(), c_msg.end());
  return out;
}

FoCiphertext FoCiphertext::from_bytes(const params::GdhParams& params, ByteSpan bytes) {
  size_t off = 0;
  G1Point u = get_point(params, bytes, off);
  size_t n1 = get_u16(bytes, off);
  Bytes c_sigma = get_exact(bytes, off, n1, "FoCiphertext: truncated sigma");
  size_t n2 = get_u16(bytes, off);
  Bytes c_msg = get_exact(bytes, off, n2, "FoCiphertext: truncated body");
  expect_consumed(bytes, off, "FoCiphertext: trailing bytes");
  return FoCiphertext{u, std::move(c_sigma), std::move(c_msg)};
}

Bytes ReactCiphertext::to_bytes() const {
  Bytes out = u.to_bytes_compressed();
  put_u16(out, c_r.size());
  out.insert(out.end(), c_r.begin(), c_r.end());
  put_u16(out, c_msg.size());
  out.insert(out.end(), c_msg.begin(), c_msg.end());
  put_u16(out, mac.size());
  out.insert(out.end(), mac.begin(), mac.end());
  return out;
}

ReactCiphertext ReactCiphertext::from_bytes(const params::GdhParams& params,
                                            ByteSpan bytes) {
  size_t off = 0;
  G1Point u = get_point(params, bytes, off);
  size_t n1 = get_u16(bytes, off);
  Bytes c_r = get_exact(bytes, off, n1, "ReactCiphertext: truncated c_r");
  size_t n2 = get_u16(bytes, off);
  Bytes c_msg = get_exact(bytes, off, n2, "ReactCiphertext: truncated body");
  size_t n3 = get_u16(bytes, off);
  Bytes mac = get_exact(bytes, off, n3, "ReactCiphertext: truncated mac");
  expect_consumed(bytes, off, "ReactCiphertext: trailing bytes");
  return ReactCiphertext{u, std::move(c_r), std::move(c_msg), std::move(mac)};
}

std::optional<Ciphertext> Ciphertext::try_from_bytes(const params::GdhParams& params,
                                                     ByteSpan bytes) {
  try {
    return from_bytes(params, bytes);
  } catch (const Error&) {
    return std::nullopt;
  }
}

std::optional<FoCiphertext> FoCiphertext::try_from_bytes(const params::GdhParams& params,
                                                         ByteSpan bytes) {
  try {
    return from_bytes(params, bytes);
  } catch (const Error&) {
    return std::nullopt;
  }
}

std::optional<ReactCiphertext> ReactCiphertext::try_from_bytes(
    const params::GdhParams& params, ByteSpan bytes) {
  try {
    return from_bytes(params, bytes);
  } catch (const Error&) {
    return std::nullopt;
  }
}

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::kBasic: return "basic";
    case Mode::kFo: return "fo";
    case Mode::kReact: return "react";
  }
  return "unknown";
}

Bytes SealedCiphertext::to_bytes() const {
  Bytes out;
  out.push_back(static_cast<std::uint8_t>(mode()));
  Bytes payload = std::visit([](const auto& ct) { return ct.to_bytes(); }, body);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

SealedCiphertext SealedCiphertext::from_bytes(const params::GdhParams& params,
                                              ByteSpan bytes) {
  require(!bytes.empty(), "SealedCiphertext: empty input");
  ByteSpan payload = bytes.subspan(1);
  switch (bytes[0]) {
    case static_cast<std::uint8_t>(Mode::kBasic):
      return SealedCiphertext{Ciphertext::from_bytes(params, payload)};
    case static_cast<std::uint8_t>(Mode::kFo):
      return SealedCiphertext{FoCiphertext::from_bytes(params, payload)};
    case static_cast<std::uint8_t>(Mode::kReact):
      return SealedCiphertext{ReactCiphertext::from_bytes(params, payload)};
    default:
      throw Error("SealedCiphertext: unknown mode byte");
  }
}

std::optional<SealedCiphertext> SealedCiphertext::try_from_bytes(
    const params::GdhParams& params, ByteSpan bytes) {
  try {
    return from_bytes(params, bytes);
  } catch (const Error&) {
    return std::nullopt;
  }
}

// --- Scheme ------------------------------------------------------------------

namespace {

// Bound on each memoization map. The live working set is tiny (a few
// generators, one tag and one update per epoch), so the bound only guards
// against unbounded growth under adversarial tag floods; wholesale
// clearing on overflow is good enough.
constexpr size_t kMaxCacheEntries = 1024;

std::string point_key(const G1Point& p) {
  Bytes b = p.to_bytes_compressed();
  return std::string(b.begin(), b.end());
}

SnapshotCacheOptions cache_options(bool snapshots) {
  SnapshotCacheOptions opt;
  opt.max_entries = kMaxCacheEntries;
  opt.snapshots = snapshots;
  opt.lock_wait_ns = +[](std::uint64_t ns) {
    Probes::get().cache_lock_wait_ns.record(ns);
  };
  return opt;
}

}  // namespace

// Read-mostly memoization (common/snapshot_cache.h): every member is an
// RCU-style snapshot map — hits are lock-free with zero shared writes,
// misses compute outside any lock and publish copy-on-write under striped
// write locks. `Tuning::snapshot_caches = false` flips all five to the
// legacy take-a-lock-per-access substrate; values and outputs are
// identical either way.
struct TreScheme::Cache {
  explicit Cache(bool snapshots)
      : tags(cache_options(snapshots)),
        good_keys(cache_options(snapshots)),
        combs(cache_options(snapshots)),
        pair_bases(cache_options(snapshots)),
        lines(cache_options(snapshots)) {}

  SnapshotCache<G1Point> tags;  // tag -> H1(T)
  SnapshotCache<char> good_keys;  // verified (server, user) keys (presence set)
  SnapshotCache<std::shared_ptr<const ec::G1Precomp>> combs;
  SnapshotCache<Gt> pair_bases;  // asg || tag -> ê(asG, H1(T))
  SnapshotCache<std::shared_ptr<const pairing::MillerPrecomp>> lines;
};

TreScheme::TreScheme(std::shared_ptr<const params::GdhParams> params, Tuning tuning)
    : params_(std::move(params)),
      tuning_(tuning),
      cache_(std::make_shared<Cache>(tuning.snapshot_caches)) {
  require(params_ != nullptr, "TreScheme: null params");
}

G1Point TreScheme::cached_hash_tag(std::string_view tag) const {
  if (!tuning_.cache_tags) return ec::hash_to_g1(params_->ctx(), tre::to_bytes(tag));
  if (auto hit = cache_->tags.find(tag)) {
    Probes::get().tag_hit.add();
    return *hit;
  }
  Probes::get().tag_miss.add();
  G1Point h = ec::hash_to_g1(params_->ctx(), tre::to_bytes(tag));
  cache_->tags.insert(tag, h);
  return h;
}

std::shared_ptr<const ec::G1Precomp> TreScheme::comb_for(const G1Point& base) const {
  if (!tuning_.fixed_base_comb || base.is_infinity()) return nullptr;
  const std::string key = point_key(base);
  if (auto hit = cache_->combs.find(key)) {
    Probes::get().comb_hit.add();
    return *hit;
  }
  Probes::get().comb_miss.add();
  auto comb = std::make_shared<const ec::G1Precomp>(base);
  cache_->combs.insert(key, comb);
  return comb;
}

G1Point TreScheme::mul_fixed_base(const G1Point& base, const Scalar& k) const {
  if (auto comb = comb_for(base)) {
    Probes::get().mul_comb.add();
    return comb->mul_secret(k);
  }
  Probes::get().mul_fixed.add();
  return tuning_.fixed_base_comb ? base.mul_secret(k) : base.mul(k);
}

G1Point TreScheme::mul_varying_base(const G1Point& base, const Scalar& k) const {
  // A comb table costs hundreds of additions to build; for a base seen
  // once (H1(T), an update signature) the fixed-window ladder wins.
  Probes::get().mul_varying.add();
  return tuning_.fixed_base_comb ? base.mul_secret(k) : base.mul(k);
}

bool TreScheme::checked_user_key(const ServerPublicKey& server,
                                 const UserPublicKey& user) const {
  if (!tuning_.cache_key_checks) return verify_user_public_key(server, user);
  Bytes sk = server.to_bytes();
  Bytes uk = user.to_bytes();
  std::string key(sk.begin(), sk.end());
  key.append(uk.begin(), uk.end());
  if (cache_->good_keys.contains(key)) {
    Probes::get().keycheck_hit.add();
    return true;
  }
  Probes::get().keycheck_miss.add();
  // Only successful checks are memoized: a failure must stay a failure
  // even if a good key with the same bytes is later verified (impossible,
  // but cheap to keep trivially true).
  if (!verify_user_public_key(server, user)) return false;
  cache_->good_keys.insert(key, char{1});
  return true;
}

Gt TreScheme::pair_base(const G1Point& asg, std::string_view tag,
                        const G1Point& h1t) const {
  if (!tuning_.cache_pair_bases) {
    Probes::get().pairings.add();
    return pairing::pair(asg, h1t);
  }
  std::string key = point_key(asg);  // fixed length, so asg||tag is unambiguous
  key.append(tag);
  if (auto hit = cache_->pair_bases.find(key)) {
    Probes::get().pairbase_hit.add();
    return *hit;
  }
  Probes::get().pairbase_miss.add();
  Probes::get().pairings.add();
  Gt base = pairing::pair(asg, h1t);
  cache_->pair_bases.insert(key, base);
  return base;
}

Gt TreScheme::pair_with_lines(const G1Point& fixed, const G1Point& u) const {
  Probes::get().pairings.add();
  if (!tuning_.cache_update_lines) return pairing::pair(u, fixed);
  const std::string key = point_key(fixed);
  std::shared_ptr<const pairing::MillerPrecomp> lines;
  if (auto hit = cache_->lines.find(key)) {
    Probes::get().lines_hit.add();
    lines = *hit;
  } else {
    Probes::get().lines_miss.add();
    lines = std::make_shared<const pairing::MillerPrecomp>(fixed);
    cache_->lines.insert(key, lines);
  }
  // ê(fixed, u) == ê(u, fixed): the pairing is symmetric on cyclic G_1.
  return lines->pair(u);
}

Gt TreScheme::gt_pow(const Gt& k, const Scalar& e) const {
  return tuning_.unitary_gt_pow ? k.pow_unitary(e) : k.pow(e);
}

G1Point TreScheme::hash_tag(std::string_view tag) const {
  return cached_hash_tag(tag);
}

Bytes TreScheme::mask_h2(const Gt& k, size_t len) const {
  return hashing::oracle_bytes("TRE-H2", k.to_bytes(), len);
}

Scalar TreScheme::hash_to_scalar(std::string_view label, ByteSpan input) const {
  // Oversample by 16 bytes so the mod-q bias is negligible; map 0 -> 1.
  Bytes wide = hashing::oracle_bytes(label, input, params_->scalar_bytes() + 16);
  auto v = bigint::BigInt<2 * field::kMaxFieldLimbs>::from_bytes_be(wide);
  Scalar r = bigint::mod_wide(v, params_->group_order());
  if (r.is_zero()) r = Scalar::from_u64(1);
  return r;
}

ServerKeyPair TreScheme::server_keygen(tre::hashing::RandomSource& rng) const {
  // G = h·base for random h is a uniform generator of the order-q subgroup.
  Scalar h = params::random_scalar(*params_, rng);
  Scalar s = params::random_scalar(*params_, rng);
  G1Point g = mul_fixed_base(params_->base, h);
  return ServerKeyPair{s, ServerPublicKey{g, mul_varying_base(g, s)}};
}

UserKeyPair TreScheme::user_keygen(const ServerPublicKey& server,
                                   tre::hashing::RandomSource& rng) const {
  Scalar a = params::random_scalar(*params_, rng);
  return UserKeyPair{
      a, UserPublicKey{mul_fixed_base(server.g, a), mul_fixed_base(server.sg, a)}};
}

UserKeyPair TreScheme::user_keygen_from_password(const ServerPublicKey& server,
                                                 std::string_view password) const {
  // Domain-separate by the server key so one password yields unrelated
  // secrets under different servers.
  Bytes input = concat({tre::to_bytes(password), server.to_bytes()});
  Scalar a = hash_to_scalar("TRE-PWKDF", input);
  return UserKeyPair{
      a, UserPublicKey{mul_fixed_base(server.g, a), mul_fixed_base(server.sg, a)}};
}

bool TreScheme::verify_server_public_key(const ServerPublicKey& server) const {
  return !server.g.is_infinity() && !server.sg.is_infinity() &&
         server.g.in_subgroup() && server.sg.in_subgroup();
}

bool TreScheme::verify_user_public_key(const ServerPublicKey& server,
                                       const UserPublicKey& user) const {
  if (user.ag.is_infinity() || user.asg.is_infinity()) return false;
  Probes::get().pairings.add(2);
  return pairing::pairings_equal(user.ag, server.sg, server.g, user.asg);
}

KeyUpdate TreScheme::issue_update(const ServerKeyPair& server,
                                  std::string_view tag) const {
  obs::Span span(Probes::get().issue_update_ns);
  Probes::get().updates_issued.add();
  return KeyUpdate{std::string(tag), mul_varying_base(hash_tag(tag), server.s)};
}

std::vector<KeyUpdate> TreScheme::issue_updates(const ServerKeyPair& server,
                                                std::span<const std::string> tags,
                                                unsigned threads) const {
  std::vector<KeyUpdate> out(tags.size());
  tre::parallel_for(
      tags.size(), [&](size_t i) { out[i] = issue_update(server, tags[i]); },
      threads);
  return out;
}

bool TreScheme::verify_update(const ServerPublicKey& server,
                              const KeyUpdate& update) const {
  if (update.sig.is_infinity()) return false;
  obs::Span span(Probes::get().verify_update_ns);
  Probes::get().updates_verified.add();
  Probes::get().pairings.add(2);
  return pairing::pairings_equal(server.sg, hash_tag(update.tag), server.g, update.sig);
}

Ciphertext TreScheme::seal_basic(ByteSpan msg, const UserPublicKey& user,
                                 const ServerPublicKey& server, std::string_view tag,
                                 tre::hashing::RandomSource& rng, KeyCheck check) const {
  obs::Span span(Probes::get().encrypt_ns);
  if (check == KeyCheck::kVerify) {
    require(checked_user_key(server, user),
            "TRE encrypt: receiver public key fails the pairing check");
  }
  Scalar r = params::random_scalar(*params_, rng);
  G1Point u = mul_fixed_base(server.g, r);
  G1Point h1t = hash_tag(tag);
  // ê(r·asG, H1(T)) == ê(asG, H1(T))^r: with the base pairing memoized,
  // the per-message cost is one comb multiply and one G_T exponentiation.
  Gt k = tuning_.cache_pair_bases
             ? gt_pow(pair_base(user.asg, tag, h1t), r)
             : pairing::pair(mul_varying_base(user.asg, r), h1t);
  return Ciphertext{u, xor_bytes(msg, mask_h2(k, msg.size()))};
}

Ciphertext TreScheme::encrypt(ByteSpan msg, const UserPublicKey& user,
                              const ServerPublicKey& server, std::string_view tag,
                              tre::hashing::RandomSource& rng, KeyCheck check) const {
  return seal_basic(msg, user, server, tag, rng, check);
}

std::vector<Ciphertext> TreScheme::encrypt_batch(
    std::span<const Bytes> msgs, const UserPublicKey& user,
    const ServerPublicKey& server, std::string_view tag,
    tre::hashing::RandomSource& rng, KeyCheck check, unsigned threads) const {
  if (check == KeyCheck::kVerify) {
    require(checked_user_key(server, user),
            "TRE encrypt_batch: receiver public key fails the pairing check");
  }
  std::vector<Ciphertext> out(msgs.size());
  if (msgs.empty()) return out;

  // All randomness is drawn up front, in order, so the batch produces
  // exactly the ciphertexts |msgs| sequential encrypt() calls would.
  std::vector<Scalar> rs;
  rs.reserve(msgs.size());
  for (size_t i = 0; i < msgs.size(); ++i) {
    rs.push_back(params::random_scalar(*params_, rng));
  }

  const G1Point h1t = hash_tag(tag);
  if (tuning_.cache_pair_bases) {
    const Gt base = pair_base(user.asg, tag, h1t);  // one pairing for the batch
    auto comb = comb_for(server.g);
    tre::parallel_for(
        msgs.size(),
        [&](size_t i) {
          G1Point u = comb ? comb->mul_secret(rs[i]) : mul_fixed_base(server.g, rs[i]);
          Gt k = gt_pow(base, rs[i]);
          out[i] = Ciphertext{u, xor_bytes(msgs[i], mask_h2(k, msgs[i].size()))};
        },
        threads);
  } else {
    tre::parallel_for(
        msgs.size(),
        [&](size_t i) {
          G1Point u = mul_fixed_base(server.g, rs[i]);
          Gt k = pairing::pair(mul_varying_base(user.asg, rs[i]), h1t);
          out[i] = Ciphertext{u, xor_bytes(msgs[i], mask_h2(k, msgs[i].size()))};
        },
        threads);
  }
  return out;
}

Bytes TreScheme::decrypt(const Ciphertext& ct, const Scalar& a,
                         const KeyUpdate& update) const {
  obs::Span span(Probes::get().decrypt_ns);
  Gt k = gt_pow(pair_with_lines(update.sig, ct.u), a);
  return xor_bytes(ct.v, mask_h2(k, ct.v.size()));
}

FoCiphertext TreScheme::seal_fo(ByteSpan msg, const UserPublicKey& user,
                                const ServerPublicKey& server, std::string_view tag,
                                tre::hashing::RandomSource& rng,
                                KeyCheck check) const {
  obs::Span span(Probes::get().encrypt_ns);
  if (check == KeyCheck::kVerify) {
    require(checked_user_key(server, user),
            "TRE encrypt_fo: receiver public key fails the pairing check");
  }
  Bytes sigma = rng.bytes(kSigmaBytes);
  // r = H3(sigma, M): decryption re-derives it, making the scheme
  // plaintext-aware (CCA in the ROM per Fujisaki-Okamoto).
  Scalar r = hash_to_scalar("TRE-H3", concat({sigma, msg}));
  G1Point u = mul_fixed_base(server.g, r);
  G1Point h1t = hash_tag(tag);
  Gt k = tuning_.cache_pair_bases
             ? gt_pow(pair_base(user.asg, tag, h1t), r)
             : pairing::pair(mul_varying_base(user.asg, r), h1t);
  Bytes c_sigma = xor_bytes(sigma, mask_h2(k, kSigmaBytes));
  Bytes c_msg = xor_bytes(msg, hashing::oracle_bytes("TRE-H4", sigma, msg.size()));
  return FoCiphertext{u, std::move(c_sigma), std::move(c_msg)};
}

FoCiphertext TreScheme::encrypt_fo(ByteSpan msg, const UserPublicKey& user,
                                   const ServerPublicKey& server, std::string_view tag,
                                   tre::hashing::RandomSource& rng,
                                   KeyCheck check) const {
  return seal_fo(msg, user, server, tag, rng, check);
}

std::optional<Bytes> TreScheme::decrypt_fo(const FoCiphertext& ct, const Scalar& a,
                                           const KeyUpdate& update,
                                           const ServerPublicKey& server) const {
  if (ct.c_sigma.size() != kSigmaBytes) return std::nullopt;
  obs::Span span(Probes::get().decrypt_ns);
  Gt k = gt_pow(pair_with_lines(update.sig, ct.u), a);
  Bytes sigma = xor_bytes(ct.c_sigma, mask_h2(k, kSigmaBytes));
  Bytes msg = xor_bytes(ct.c_msg, hashing::oracle_bytes("TRE-H4", sigma, ct.c_msg.size()));
  Scalar r = hash_to_scalar("TRE-H3", concat({sigma, msg}));
  // Re-encryption check through the same comb table as encryption.
  if (!(mul_fixed_base(server.g, r) == ct.u)) return std::nullopt;
  return msg;
}

ReactCiphertext TreScheme::seal_react(ByteSpan msg, const UserPublicKey& user,
                                      const ServerPublicKey& server,
                                      std::string_view tag,
                                      tre::hashing::RandomSource& rng,
                                      KeyCheck check) const {
  obs::Span span(Probes::get().encrypt_ns);
  if (check == KeyCheck::kVerify) {
    require(checked_user_key(server, user),
            "TRE encrypt_react: receiver public key fails the pairing check");
  }
  Bytes witness = rng.bytes(kSigmaBytes);  // REACT's random R
  Scalar r = params::random_scalar(*params_, rng);
  G1Point u = mul_fixed_base(server.g, r);
  G1Point h1t = hash_tag(tag);
  Gt k = tuning_.cache_pair_bases
             ? gt_pow(pair_base(user.asg, tag, h1t), r)
             : pairing::pair(mul_varying_base(user.asg, r), h1t);
  Bytes c_r = xor_bytes(witness, mask_h2(k, kSigmaBytes));
  Bytes c_msg = xor_bytes(msg, hashing::oracle_bytes("TRE-G", witness, msg.size()));
  Bytes mac = hashing::oracle_bytes(
      "TRE-H5", concat({witness, msg, u.to_bytes_compressed(), c_r, c_msg}), kMacBytes);
  return ReactCiphertext{u, std::move(c_r), std::move(c_msg), std::move(mac)};
}

ReactCiphertext TreScheme::encrypt_react(ByteSpan msg, const UserPublicKey& user,
                                         const ServerPublicKey& server,
                                         std::string_view tag,
                                         tre::hashing::RandomSource& rng,
                                         KeyCheck check) const {
  return seal_react(msg, user, server, tag, rng, check);
}

std::optional<Bytes> TreScheme::decrypt_react(const ReactCiphertext& ct,
                                              const Scalar& a,
                                              const KeyUpdate& update) const {
  if (ct.c_r.size() != kSigmaBytes || ct.mac.size() != kMacBytes) return std::nullopt;
  obs::Span span(Probes::get().decrypt_ns);
  Gt k = gt_pow(pair_with_lines(update.sig, ct.u), a);
  Bytes witness = xor_bytes(ct.c_r, mask_h2(k, kSigmaBytes));
  Bytes msg = xor_bytes(ct.c_msg, hashing::oracle_bytes("TRE-G", witness, ct.c_msg.size()));
  Bytes mac = hashing::oracle_bytes(
      "TRE-H5",
      concat({witness, msg, ct.u.to_bytes_compressed(), ct.c_r, ct.c_msg}), kMacBytes);
  if (!ct_equal(mac, ct.mac)) return std::nullopt;
  return msg;
}

SealedCiphertext TreScheme::seal(Mode mode, ByteSpan msg, const UserPublicKey& user,
                                 const ServerPublicKey& server, std::string_view tag,
                                 tre::hashing::RandomSource& rng,
                                 KeyCheck check) const {
  Probes::get().seals.add();
  switch (mode) {
    case Mode::kBasic:
      return SealedCiphertext{seal_basic(msg, user, server, tag, rng, check)};
    case Mode::kFo:
      return SealedCiphertext{seal_fo(msg, user, server, tag, rng, check)};
    case Mode::kReact:
      return SealedCiphertext{seal_react(msg, user, server, tag, rng, check)};
  }
  throw Error("seal: unknown mode");
}

std::optional<Bytes> TreScheme::open(const SealedCiphertext& ct, const Scalar& a,
                                     const KeyUpdate& update,
                                     const ServerPublicKey& server) const {
  Probes::get().opens.add();
  return std::visit(
      [&](const auto& body) -> std::optional<Bytes> {
        using T = std::decay_t<decltype(body)>;
        if constexpr (std::is_same_v<T, Ciphertext>) {
          return decrypt(body, a, update);
        } else if constexpr (std::is_same_v<T, FoCiphertext>) {
          return decrypt_fo(body, a, update, server);
        } else {
          return decrypt_react(body, a, update);
        }
      },
      ct.body);
}

EpochKey TreScheme::derive_epoch_key(const Scalar& a, const KeyUpdate& update) const {
  // a·I_T = a·s·H1(T): all the secret material a ciphertext for tag T
  // needs, and useless for any other tag (CDH). The paper's §5.3.3 text
  // writes the epoch key as aH1(T_i); only a·(s·H1(T_i)) closes the
  // decryption equation — see DESIGN.md for the fidelity note.
  return EpochKey{update.tag, mul_varying_base(update.sig, a)};
}

Bytes TreScheme::decrypt_with_epoch_key(const Ciphertext& ct, const EpochKey& key) const {
  Gt k = pair_with_lines(key.d, ct.u);
  return xor_bytes(ct.v, mask_h2(k, ct.v.size()));
}

std::optional<Bytes> TreScheme::decrypt_fo_with_epoch_key(
    const FoCiphertext& ct, const EpochKey& key, const ServerPublicKey& server) const {
  if (ct.c_sigma.size() != kSigmaBytes) return std::nullopt;
  Gt k = pair_with_lines(key.d, ct.u);
  Bytes sigma = xor_bytes(ct.c_sigma, mask_h2(k, kSigmaBytes));
  Bytes msg = xor_bytes(ct.c_msg, hashing::oracle_bytes("TRE-H4", sigma, ct.c_msg.size()));
  Scalar r = hash_to_scalar("TRE-H3", concat({sigma, msg}));
  if (!(mul_fixed_base(server.g, r) == ct.u)) return std::nullopt;
  return msg;
}

UserPublicKey TreScheme::rebind_user_key(const Scalar& a,
                                         const ServerPublicKey& new_server) const {
  return UserPublicKey{mul_fixed_base(new_server.g, a),
                       mul_fixed_base(new_server.sg, a)};
}

bool TreScheme::verify_rebound_key(const ec::G1Point& certified_ag,
                                   const ec::G1Point& old_generator,
                                   const ServerPublicKey& new_server,
                                   const UserPublicKey& candidate) const {
  if (candidate.ag.is_infinity() || candidate.asg.is_infinity()) return false;
  // (1) Same secret a as in the certified key: ê(aG', G_o) == ê(aG_o, G').
  if (!pairing::pairings_equal(candidate.ag, old_generator, certified_ag,
                               new_server.g)) {
    return false;
  }
  // (2) Well-formed under the new server key.
  return verify_user_public_key(new_server, candidate);
}

}  // namespace tre::core
