// Explicit instantiation of the backend-generic TRE core for the type-1
// curve. The scheme logic itself lives ONCE in core/tre_core.h; see
// core/backend512.h for the backend policy and bls12/tre381.cpp for the
// BLS12-381 instantiation of the same template.
#include "core/tre.h"

namespace tre::core {

template class BasicTreScheme<Tre512Backend>;

}  // namespace tre::core
