#include "core/threshold.h"

#include <algorithm>

namespace tre::core {

using ec::G1Point;
using field::Fp;

namespace {

// Scalar-field element (mod q) from a share index.
Fp index_scalar(const field::FpCtx* fq, size_t index) {
  return Fp::from_u64(fq, static_cast<std::uint64_t>(index));
}

}  // namespace

ThresholdTre::ThresholdTre(std::shared_ptr<const params::GdhParams> params)
    : scheme_(std::move(params)) {}

std::pair<ThresholdServerKey, std::vector<ServerShare>> ThresholdTre::setup(
    ThresholdConfig config, tre::hashing::RandomSource& rng) const {
  require(config.k >= 1 && config.k <= config.n && config.n >= 1,
          "ThresholdTre: need 1 <= k <= n");
  require(config.n < scheme_.params().group_order().bit_length() * 64,
          "ThresholdTre: implausible n");
  const field::FpCtx* fq = scheme_.params().ctx()->fq.get();

  // f(x) = s + c_1 x + ... + c_{k-1} x^{k-1} over Z_q.
  std::vector<Fp> coeffs;
  coeffs.reserve(config.k);
  for (size_t i = 0; i < config.k; ++i) {
    coeffs.push_back(Fp::from_int(fq, params::random_scalar(scheme_.params(), rng)));
  }
  const Scalar s = coeffs[0].to_int();

  Scalar h = params::random_scalar(scheme_.params(), rng);
  G1Point g = scheme_.params().base.mul(h);

  ThresholdServerKey key;
  key.config = config;
  key.group = ServerPublicKey{g, g.mul(s)};

  std::vector<ServerShare> shares;
  shares.reserve(config.n);
  for (size_t i = 1; i <= config.n; ++i) {
    // Horner evaluation at x = i.
    Fp x = index_scalar(fq, i);
    Fp acc = coeffs.back();
    for (size_t c = coeffs.size() - 1; c-- > 0;) acc = acc * x + coeffs[c];
    Scalar share = acc.to_int();
    shares.push_back(ServerShare{i, share});
    key.pub_shares.push_back(g.mul(share));
  }
  return {std::move(key), std::move(shares)};
}

PartialUpdate ThresholdTre::issue_partial(const ServerShare& share,
                                          std::string_view tag) const {
  return PartialUpdate{share.index, std::string(tag),
                       scheme_.hash_tag(tag).mul(share.share)};
}

bool ThresholdTre::verify_partial(const ThresholdServerKey& key,
                                  const PartialUpdate& partial) const {
  if (partial.index < 1 || partial.index > key.pub_shares.size()) return false;
  if (partial.sig.is_infinity()) return false;
  return pairing::pairings_equal(key.pub_shares[partial.index - 1],
                                 scheme_.hash_tag(partial.tag), key.group.g,
                                 partial.sig);
}

KeyUpdate ThresholdTre::combine(const ThresholdServerKey& key,
                                std::span<const PartialUpdate> partials) const {
  require(partials.size() >= key.config.k,
          "ThresholdTre::combine: fewer partials than the threshold k");
  // Use the first k distinct indices with the common tag.
  std::vector<const PartialUpdate*> chosen;
  for (const auto& p : partials) {
    require(p.tag == partials.front().tag,
            "ThresholdTre::combine: partials disagree on the tag");
    require(p.index >= 1 && p.index <= key.config.n,
            "ThresholdTre::combine: share index out of range");
    bool duplicate = std::any_of(chosen.begin(), chosen.end(),
                                 [&](const PartialUpdate* q) { return q->index == p.index; });
    require(!duplicate, "ThresholdTre::combine: duplicate share index");
    chosen.push_back(&p);
    if (chosen.size() == key.config.k) break;
  }
  require(chosen.size() == key.config.k,
          "ThresholdTre::combine: not enough distinct partials");

  // Lagrange coefficients at 0: λ_i = Π_{j≠i} x_j / (x_j - x_i) (mod q).
  const field::FpCtx* fq = scheme_.params().ctx()->fq.get();
  G1Point combined = G1Point::infinity(scheme_.params().ctx());
  for (const PartialUpdate* pi : chosen) {
    Fp num = Fp::one(fq);
    Fp den = Fp::one(fq);
    Fp xi = index_scalar(fq, pi->index);
    for (const PartialUpdate* pj : chosen) {
      if (pj == pi) continue;
      Fp xj = index_scalar(fq, pj->index);
      num = num * xj;
      den = den * (xj - xi);
    }
    Fp lambda = num * den.inverse();
    combined = combined + pi->sig.mul(lambda.to_int());
  }
  return KeyUpdate{partials.front().tag, combined};
}

}  // namespace tre::core
