#include "core/multiserver.h"

namespace tre::core {

using ec::G1Point;

namespace {

void put_u16(Bytes& out, size_t v) {
  require(v <= 0xffff, "serialization: length exceeds u16");
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
}

size_t get_u16(ByteSpan bytes, size_t& off) {
  require(off + 2 <= bytes.size(), "deserialization: truncated length");
  size_t v = static_cast<size_t>(bytes[off]) << 8 | bytes[off + 1];
  off += 2;
  return v;
}

G1Point get_point(const params::GdhParams& params, ByteSpan bytes, size_t& off) {
  size_t n = params.g1_compressed_bytes();
  require(off + n <= bytes.size(), "deserialization: truncated point");
  G1Point p = G1Point::from_bytes(params.ctx(), bytes.subspan(off, n));
  require(p.in_subgroup(), "deserialization: point outside the order-q subgroup");
  off += n;
  return p;
}

}  // namespace

Bytes MultiServerUserKey::to_bytes() const {
  Bytes out = ag.to_bytes_compressed();
  put_u16(out, parts.size());
  for (const auto& part : parts) {
    Bytes pb = part.to_bytes_compressed();
    out.insert(out.end(), pb.begin(), pb.end());
  }
  return out;
}

MultiServerUserKey MultiServerUserKey::from_bytes(const params::GdhParams& params,
                                                  ByteSpan bytes) {
  size_t off = 0;
  MultiServerUserKey key;
  key.ag = get_point(params, bytes, off);
  size_t n = get_u16(bytes, off);
  key.parts.reserve(n);
  for (size_t i = 0; i < n; ++i) key.parts.push_back(get_point(params, bytes, off));
  require(off == bytes.size(), "MultiServerUserKey: trailing bytes");
  return key;
}

Bytes MultiServerCiphertext::to_bytes() const {
  Bytes out;
  put_u16(out, us.size());
  for (const auto& u : us) {
    Bytes ub = u.to_bytes_compressed();
    out.insert(out.end(), ub.begin(), ub.end());
  }
  put_u16(out, v.size());
  out.insert(out.end(), v.begin(), v.end());
  return out;
}

MultiServerCiphertext MultiServerCiphertext::from_bytes(const params::GdhParams& params,
                                                        ByteSpan bytes) {
  size_t off = 0;
  MultiServerCiphertext ct;
  size_t n = get_u16(bytes, off);
  ct.us.reserve(n);
  for (size_t i = 0; i < n; ++i) ct.us.push_back(get_point(params, bytes, off));
  size_t vlen = get_u16(bytes, off);
  require(off + vlen == bytes.size(), "MultiServerCiphertext: bad body length");
  ct.v.assign(bytes.begin() + static_cast<long>(off), bytes.end());
  return ct;
}

MultiServerTre::MultiServerTre(std::shared_ptr<const params::GdhParams> params)
    : scheme_(std::move(params)) {}

MultiServerUserKey MultiServerTre::user_key(
    const Scalar& a, std::span<const ServerPublicKey> servers) const {
  require(!servers.empty(), "MultiServerTre: no servers");
  MultiServerUserKey key;
  key.ag = scheme_.params().base.mul(a);
  key.parts.reserve(servers.size());
  for (const auto& server : servers) key.parts.push_back(server.sg.mul(a));
  return key;
}

bool MultiServerTre::verify_user_key(const MultiServerUserKey& user,
                                     std::span<const ServerPublicKey> servers) const {
  if (user.parts.size() != servers.size() || servers.empty()) return false;
  if (user.ag.is_infinity()) return false;
  const G1Point& base = scheme_.params().base;
  for (size_t i = 0; i < servers.size(); ++i) {
    if (user.parts[i].is_infinity()) return false;
    // ê(base, a·s_iG_i) == ê(aG, s_iG_i): both are ê(base, s_iG_i)^a.
    if (!pairing::pairings_equal(base, user.parts[i], user.ag, servers[i].sg)) {
      return false;
    }
  }
  return true;
}

MultiServerCiphertext MultiServerTre::encrypt(ByteSpan msg,
                                              const MultiServerUserKey& user,
                                              std::span<const ServerPublicKey> servers,
                                              std::string_view tag,
                                              tre::hashing::RandomSource& rng) const {
  require(verify_user_key(user, servers),
          "MultiServerTre encrypt: user key fails verification");
  Scalar r = params::random_scalar(scheme_.params(), rng);

  // K_new = Σ a·s_iG_i; K = ê(r·K_new, H1(T)).
  G1Point combined = G1Point::infinity(scheme_.params().ctx());
  for (const auto& part : user.parts) combined = combined + part;
  Gt k = pairing::pair(combined.mul(r), scheme_.hash_tag(tag));

  MultiServerCiphertext ct;
  ct.us.reserve(servers.size());
  for (const auto& server : servers) ct.us.push_back(server.g.mul(r));
  ct.v = xor_bytes(msg, scheme_.mask_h2(k, msg.size()));
  return ct;
}

Bytes MultiServerTre::decrypt(const MultiServerCiphertext& ct, const Scalar& a,
                              std::span<const KeyUpdate> updates) const {
  require(!ct.us.empty() && ct.us.size() == updates.size(),
          "MultiServerTre decrypt: need one update per server");
  for (const auto& update : updates) {
    require(update.tag == updates.front().tag,
            "MultiServerTre decrypt: updates disagree on the tag");
  }
  // K = Π ê(r·G_i, s_i·H1(T))^a — N Miller loops, one final exponentiation.
  std::vector<std::pair<G1Point, G1Point>> pairs;
  pairs.reserve(ct.us.size());
  for (size_t i = 0; i < ct.us.size(); ++i) {
    pairs.emplace_back(ct.us[i].mul(a), updates[i].sig);
  }
  Gt k = pairing::pair_product(pairs);
  return xor_bytes(ct.v, scheme_.mask_h2(k, ct.v.size()));
}

}  // namespace tre::core
