#include "core/policylock.h"

#include <algorithm>

#include "hashing/kdf.h"

namespace tre::core {

using ec::G1Point;

PolicyLock::PolicyLock(std::shared_ptr<const params::GdhParams> params)
    : scheme_(std::move(params)) {}

WitnessStatement PolicyLock::attest(const ServerKeyPair& witness,
                                    std::string_view c) const {
  return scheme_.issue_update(witness, c);
}

bool PolicyLock::verify_statement(const ServerPublicKey& witness,
                                  const WitnessStatement& st) const {
  return scheme_.verify_update(witness, st);
}

Ciphertext PolicyLock::lock(ByteSpan msg, const UserPublicKey& user,
                            const ServerPublicKey& witness,
                            std::string_view condition,
                            tre::hashing::RandomSource& rng) const {
  return scheme_.encrypt(msg, user, witness, condition, rng);
}

Bytes PolicyLock::unlock(const Ciphertext& ct, const Scalar& a,
                         const WitnessStatement& st) const {
  return scheme_.decrypt(ct, a, st);
}

G1Point PolicyLock::sum_of_hashes(std::span<const std::string> conditions) const {
  require(!conditions.empty(), "PolicyLock: no conditions");
  G1Point sum = G1Point::infinity(scheme_.params().ctx());
  for (const auto& c : conditions) sum = sum + scheme_.hash_tag(c);
  return sum;
}

Ciphertext PolicyLock::lock_all(ByteSpan msg, const UserPublicKey& user,
                                const ServerPublicKey& witness,
                                std::span<const std::string> conditions,
                                tre::hashing::RandomSource& rng) const {
  require(scheme_.verify_user_public_key(witness, user),
          "PolicyLock lock_all: receiver public key fails the pairing check");
  Scalar r = params::random_scalar(scheme_.params(), rng);
  G1Point u = witness.g.mul(r);
  Gt k = pairing::pair(user.asg.mul(r), sum_of_hashes(conditions));
  return Ciphertext{u, xor_bytes(msg, scheme_.mask_h2(k, msg.size()))};
}

Bytes PolicyLock::unlock_all(const Ciphertext& ct, const Scalar& a,
                             std::span<const std::string> conditions,
                             std::span<const WitnessStatement> statements) const {
  require(conditions.size() == statements.size() && !conditions.empty(),
          "PolicyLock unlock_all: need one statement per condition");
  // Every listed condition must be attested (order-insensitive).
  for (const auto& c : conditions) {
    bool found = std::any_of(statements.begin(), statements.end(),
                             [&](const WitnessStatement& st) { return st.tag == c; });
    require(found, "PolicyLock unlock_all: missing statement for a condition");
  }
  // K = ê(U, Σ s·H1(C_j))^a = ê(G, Σ H1(C_j))^{ras}.
  G1Point key = G1Point::infinity(scheme_.params().ctx());
  for (const auto& st : statements) key = key + st.sig;
  Gt k = pairing::pair(ct.u, key).pow(a);
  return xor_bytes(ct.v, scheme_.mask_h2(k, ct.v.size()));
}

namespace {

constexpr size_t kSessionKeyBytes = 32;

void put_u16(Bytes& out, size_t v) {
  require(v <= 0xffff, "serialization: length exceeds u16");
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
}

size_t get_u16(ByteSpan bytes, size_t& off) {
  require(off + 2 <= bytes.size(), "deserialization: truncated length");
  size_t v = static_cast<size_t>(bytes[off]) << 8 | bytes[off + 1];
  off += 2;
  return v;
}

Bytes wrap_mask(const Gt& k) {
  return hashing::oracle_bytes("TRE-RESK", k.to_bytes(), kSessionKeyBytes);
}

Bytes body_stream(ByteSpan session_key, size_t len) {
  return hashing::oracle_bytes("TRE-RESM", session_key, len);
}

}  // namespace

Bytes AnyCiphertext::to_bytes() const {
  Bytes out = u.to_bytes_compressed();
  put_u16(out, wraps.size());
  for (const auto& [cond, wrapped] : wraps) {
    put_u16(out, cond.size());
    out.insert(out.end(), cond.begin(), cond.end());
    put_u16(out, wrapped.size());
    out.insert(out.end(), wrapped.begin(), wrapped.end());
  }
  put_u16(out, body.size());
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

AnyCiphertext AnyCiphertext::from_bytes(const params::GdhParams& params,
                                        ByteSpan bytes) {
  size_t off = 0;
  size_t point_len = params.g1_compressed_bytes();
  require(bytes.size() >= point_len, "AnyCiphertext: truncated point");
  AnyCiphertext ct;
  ct.u = ec::G1Point::from_bytes(params.ctx(), bytes.subspan(0, point_len));
  require(ct.u.in_subgroup(), "AnyCiphertext: point outside the order-q subgroup");
  off = point_len;
  size_t n = get_u16(bytes, off);
  for (size_t i = 0; i < n; ++i) {
    size_t cond_len = get_u16(bytes, off);
    require(off + cond_len <= bytes.size(), "AnyCiphertext: truncated condition");
    std::string cond(bytes.begin() + static_cast<long>(off),
                     bytes.begin() + static_cast<long>(off + cond_len));
    off += cond_len;
    size_t wrap_len = get_u16(bytes, off);
    require(off + wrap_len <= bytes.size(), "AnyCiphertext: truncated wrap");
    Bytes wrapped(bytes.begin() + static_cast<long>(off),
                  bytes.begin() + static_cast<long>(off + wrap_len));
    off += wrap_len;
    ct.wraps.emplace_back(std::move(cond), std::move(wrapped));
  }
  size_t body_len = get_u16(bytes, off);
  require(off + body_len == bytes.size(), "AnyCiphertext: bad body length");
  ct.body.assign(bytes.begin() + static_cast<long>(off), bytes.end());
  return ct;
}

AnyCiphertext PolicyLock::lock_any(ByteSpan msg, const UserPublicKey& user,
                                   const ServerPublicKey& witness,
                                   std::span<const std::string> conditions,
                                   tre::hashing::RandomSource& rng) const {
  require(!conditions.empty(), "PolicyLock lock_any: no conditions");
  require(scheme_.verify_user_public_key(witness, user),
          "PolicyLock lock_any: receiver public key fails the pairing check");
  Bytes session_key = rng.bytes(kSessionKeyBytes);
  Scalar r = params::random_scalar(scheme_.params(), rng);
  ec::G1Point rasg = user.asg.mul(r);

  AnyCiphertext ct;
  ct.u = witness.g.mul(r);
  ct.wraps.reserve(conditions.size());
  for (const auto& c : conditions) {
    Gt k = pairing::pair(rasg, scheme_.hash_tag(c));
    ct.wraps.emplace_back(c, xor_bytes(session_key, wrap_mask(k)));
  }
  ct.body = xor_bytes(msg, body_stream(session_key, msg.size()));
  return ct;
}

Bytes PolicyLock::unlock_any(const AnyCiphertext& ct, const Scalar& a,
                             const WitnessStatement& st) const {
  for (const auto& [cond, wrapped] : ct.wraps) {
    if (cond != st.tag) continue;
    require(wrapped.size() == kSessionKeyBytes, "PolicyLock unlock_any: bad wrap size");
    Gt k = pairing::pair(ct.u, st.sig).pow(a);
    Bytes session_key = xor_bytes(wrapped, wrap_mask(k));
    return xor_bytes(ct.body, body_stream(session_key, ct.body.size()));
  }
  throw Error("PolicyLock unlock_any: statement matches none of the conditions");
}

}  // namespace tre::core
