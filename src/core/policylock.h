// §5.3.2 — generalization to a policy lock.
//
// The time server generalizes to a *witness* who signs arbitrary
// condition strings ("It is an emergency", "Task X completed") instead of
// time strings; the cryptography is identical, so this wrapper mostly
// provides vocabulary plus one genuine extension: locking a message under
// the CONJUNCTION of several conditions with a single witness, using the
// additive trick from §5.2 — the decryption key for {C_1..C_m} is
// Σ s·H1(C_j), the sum of the individual witness statements.
#pragma once

#include <span>
#include <vector>

#include "core/tre.h"

namespace tre::core {

/// A signed condition statement s·H1(C) — same object as a KeyUpdate.
using WitnessStatement = KeyUpdate;

/// Disjunctive ciphertext: ⟨U, {(C_j, X ⊕ H2'(K_j))}, M ⊕ G(X)⟩.
struct AnyCiphertext {
  ec::G1Point u;                                      // r·G
  std::vector<std::pair<std::string, Bytes>> wraps;   // condition -> wrapped X
  Bytes body;                                         // M ⊕ G(X)

  Bytes to_bytes() const;
  static AnyCiphertext from_bytes(const params::GdhParams& params, ByteSpan bytes);
};

class PolicyLock {
 public:
  explicit PolicyLock(std::shared_ptr<const params::GdhParams> params);

  const TreScheme& scheme() const { return scheme_; }

  /// Witness-side: attest that condition `c` now holds.
  WitnessStatement attest(const ServerKeyPair& witness, std::string_view c) const;

  /// Anyone: check a statement against the witness public key.
  bool verify_statement(const ServerPublicKey& witness,
                        const WitnessStatement& st) const;

  /// Locks msg under a single condition (delegates to TreScheme).
  Ciphertext lock(ByteSpan msg, const UserPublicKey& user,
                  const ServerPublicKey& witness, std::string_view condition,
                  tre::hashing::RandomSource& rng) const;

  Bytes unlock(const Ciphertext& ct, const Scalar& a,
               const WitnessStatement& st) const;

  /// Locks msg so that *all* conditions must be attested:
  /// K = ê(r·asG, Σ_j H1(C_j)).
  Ciphertext lock_all(ByteSpan msg, const UserPublicKey& user,
                      const ServerPublicKey& witness,
                      std::span<const std::string> conditions,
                      tre::hashing::RandomSource& rng) const;

  /// Needs one statement per condition (any order); the statements sum to
  /// s·Σ H1(C_j). Throws if the statement set does not match.
  Bytes unlock_all(const Ciphertext& ct, const Scalar& a,
                   std::span<const std::string> conditions,
                   std::span<const WitnessStatement> statements) const;

  /// Disjunction ("any-of") lock: a random session key X is wrapped once
  /// per condition (K_j = ê(r·asG, H1(C_j)) with shared randomness r);
  /// ANY single attested condition unwraps X and hence the message. This
  /// is the engine behind missing-update resilience (paper §6 future
  /// work; see timeserver/resilient.h).
  AnyCiphertext lock_any(ByteSpan msg, const UserPublicKey& user,
                         const ServerPublicKey& witness,
                         std::span<const std::string> conditions,
                         tre::hashing::RandomSource& rng) const;

  /// Opens with ONE statement whose condition appears in the ciphertext.
  /// Throws if the statement's condition is not among the wraps.
  Bytes unlock_any(const AnyCiphertext& ct, const Scalar& a,
                   const WitnessStatement& st) const;

 private:
  ec::G1Point sum_of_hashes(std::span<const std::string> conditions) const;

  TreScheme scheme_;
};

}  // namespace tre::core
