#include "params/params.h"

#include <map>
#include <mutex>

#include "bigint/prime.h"

namespace tre::params {

using field::FpInt;

namespace {

struct EmbeddedSet {
  const char* name;
  const char* p_hex;
  const char* q_hex;
};

// p = 12*q*r - 1 with p, q prime; found by the same search `generate()`
// performs (seeds recorded in tools/paramgen notes).
constexpr EmbeddedSet kEmbedded[] = {
    {"tre-toy-96", "9b725bbc4bc00b0f29aea58f", "fa08d6af57"},
    {"tre-512",
     "6429155995d43598752910865601b03f1b243370b1e40cf2fc4a74c1c3b9e526b9a0f85e45"
     "6a17cfd0f200007517f2698a6f73c9c4b29db5650707683d48de73",
     "c02c6b9586b4625b475b51096c4ad652af3f5d79"},
    {"tre-768",
     "498654e2a8580479d70030a64ea09512cfd44aaa9b4207be6b872c9cc025d3fa911d72a254"
     "51c896d2b4b76cbebdb5fd80ea0c7111a4e6bda985c72848038a5688d8c3248a9f00c51c7b"
     "3ad3ffb7deaf3a3743a1f8dc8d376d7df5ea349ade9f",
     "ba6676b3651c52536d4b9adbebcd1f5ec9c18070b6d13089"},
};

std::shared_ptr<const GdhParams> build(std::string name, const FpInt& p, const FpInt& q) {
  auto params = std::make_shared<GdhParams>();
  params->name = name;
  params->curve = ec::CurveCtx::create(name, p, q);
  Bytes seed = to_bytes("TRE-v1 system generator/" + name);
  params->base = ec::hash_to_g1(params->curve.get(), seed);
  return params;
}

}  // namespace

std::shared_ptr<const GdhParams> load(std::string_view name) {
  // Cached: repeated loads share one context, so derived values (hash
  // caches, keys) from different call sites interoperate cheaply.
  static std::mutex mu;
  static std::map<std::string, std::shared_ptr<const GdhParams>, std::less<>> cache;
  std::scoped_lock lock(mu);
  if (auto it = cache.find(name); it != cache.end()) return it->second;
  for (const auto& set : kEmbedded) {
    if (name == set.name) {
      auto params =
          build(std::string(name), FpInt::from_hex(set.p_hex), FpInt::from_hex(set.q_hex));
      cache.emplace(std::string(name), params);
      return params;
    }
  }
  throw Error("params::load: unknown parameter set");
}

std::vector<std::string> available() {
  std::vector<std::string> names;
  for (const auto& set : kEmbedded) names.emplace_back(set.name);
  return names;
}

std::shared_ptr<const GdhParams> generate(tre::hashing::RandomSource& rng,
                                          size_t qbits, size_t pbits,
                                          std::string name) {
  require(qbits >= 24 && pbits >= qbits + 8 && pbits <= 64 * field::kMaxFieldLimbs,
          "params::generate: bad sizes");
  FpInt q = bigint::random_prime<field::kMaxFieldLimbs>(rng, qbits);
  const FpInt twelve_q = bigint::mul_u64(q, 12);
  const size_t rbits = pbits - qbits - 4;
  for (;;) {
    FpInt r = bigint::random_bits<field::kMaxFieldLimbs>(rng, rbits);
    // p = 12*q*r - 1, sized to pbits.
    auto wide = bigint::mul_wide(twelve_q, r);
    bool overflow = false;
    for (size_t i = field::kMaxFieldLimbs; i < 2 * field::kMaxFieldLimbs; ++i) {
      if (wide.w[i] != 0) overflow = true;
    }
    if (overflow) continue;
    FpInt p = wide.resized<field::kMaxFieldLimbs>();
    bigint::sub_assign(p, FpInt::from_u64(1));
    if (p.bit_length() > pbits) continue;
    if (bigint::is_probable_prime(p, rng)) return build(std::move(name), p, q);
  }
}

FpInt random_scalar(const GdhParams& params, tre::hashing::RandomSource& rng) {
  return bigint::random_nonzero_below(rng, params.group_order());
}

}  // namespace tre::params
