// Named GDH parameter sets and runtime parameter generation.
//
// A parameter set fixes the curve (p, q) and a deterministic system point
// `base` (hashed to the order-q subgroup) from which servers derive their
// own random generators. The paper's sender never needs server-published
// per-epoch material — only these public domain parameters and the two
// public keys — which experiment E9 quantifies.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ec/curve.h"
#include "hashing/drbg.h"

namespace tre::params {

struct GdhParams {
  std::string name;
  std::shared_ptr<const ec::CurveCtx> curve;
  ec::G1Point base;  // deterministic generator of the order-q subgroup

  const ec::CurveCtx* ctx() const { return curve.get(); }
  const field::FpInt& group_order() const { return curve->q; }
  size_t scalar_bytes() const { return curve->fq->byte_len; }
  size_t g1_uncompressed_bytes() const { return 1 + 2 * curve->fp->byte_len; }
  size_t g1_compressed_bytes() const { return 1 + curve->fp->byte_len; }
  size_t gt_bytes() const { return 2 * curve->fp->byte_len; }
};

/// Embedded sets: "tre-toy-96" (fast tests), "tre-512" (default,
/// paper-era ~80-bit security), "tre-768".
std::shared_ptr<const GdhParams> load(std::string_view name);

/// Names of all embedded sets, smallest first.
std::vector<std::string> available();

/// Searches fresh parameters: a `qbits`-bit prime q, then a cofactor r
/// such that p = 12*q*r - 1 is a `pbits`-bit prime. Benchmarked by E9.
std::shared_ptr<const GdhParams> generate(tre::hashing::RandomSource& rng,
                                          size_t qbits, size_t pbits,
                                          std::string name = "generated");

/// Uniform scalar in [1, q): user/server secret keys, encryption nonces.
field::FpInt random_scalar(const GdhParams& params, tre::hashing::RandomSource& rng);

}  // namespace tre::params
