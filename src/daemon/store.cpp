#include "daemon/store.h"

namespace tre::daemon {

void Store::set_server_key(std::string set_name, Bytes pub_wire) {
  std::unique_lock lock(mu_);
  set_name_ = std::move(set_name);
  pub_ = std::move(pub_wire);
}

std::pair<std::string, Bytes> Store::server_key() const {
  std::shared_lock lock(mu_);
  return {set_name_, pub_};
}

Result<bool> Store::put(const std::string& tag, Bytes wire) {
  std::unique_lock lock(mu_);
  auto it = index_.find(tag);
  if (it != index_.end()) {
    if (ordered_[it->second].second != wire) return Errc::kConflict;
    return false;  // identical re-publish: nothing to do
  }
  index_.emplace(tag, ordered_.size());
  total_bytes_ += wire.size();
  ordered_.emplace_back(tag, std::move(wire));
  return true;
}

std::optional<Bytes> Store::find(std::string_view tag) const {
  std::shared_lock lock(mu_);
  auto it = index_.find(std::string(tag));
  if (it == index_.end()) return std::nullopt;
  return ordered_[it->second].second;
}

Store::RangeView Store::range(std::uint64_t start, std::uint32_t max_count,
                              size_t max_reply_bytes) const {
  std::shared_lock lock(mu_);
  RangeView view;
  view.total = ordered_.size();
  // Reply framing overhead per item is 4 length bytes; leave room for
  // the fixed 20-byte range header too.
  size_t budget = max_reply_bytes > 20 ? max_reply_bytes - 20 : 0;
  for (std::uint64_t i = start;
       i < view.total && view.updates.size() < max_count; ++i) {
    const Bytes& wire = ordered_[static_cast<size_t>(i)].second;
    if (wire.size() + 4 > budget) break;
    budget -= wire.size() + 4;
    view.updates.push_back(wire);
  }
  return view;
}

Result<bool> Store::put_partial(const std::string& tag, Bytes wire) {
  std::unique_lock lock(mu_);
  auto it = partials_.find(tag);
  if (it != partials_.end()) {
    if (it->second != wire) return Errc::kConflict;
    return false;  // identical re-publish: nothing to do
  }
  total_bytes_ += wire.size();
  partials_.emplace(tag, std::move(wire));
  return true;
}

std::optional<Bytes> Store::find_partial(std::string_view tag) const {
  std::shared_lock lock(mu_);
  auto it = partials_.find(std::string(tag));
  if (it == partials_.end()) return std::nullopt;
  return it->second;
}

size_t Store::partial_count() const {
  std::shared_lock lock(mu_);
  return partials_.size();
}

size_t Store::size() const {
  std::shared_lock lock(mu_);
  return ordered_.size();
}

size_t Store::total_bytes() const {
  std::shared_lock lock(mu_);
  return total_bytes_;
}

}  // namespace tre::daemon
