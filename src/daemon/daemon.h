// tred — the networked time-server daemon.
//
// The paper's server is PASSIVE: one self-authenticating broadcast per
// epoch, no per-user state, no interaction. What a deployment still
// needs is the read side — millions of receivers polling for the epoch
// update the moment a release time passes ("midnight storm"). tred is
// that read path as a real listening service:
//
//   * one poll(2) event loop, every socket non-blocking — thousands of
//     concurrent connections on one core, no thread-per-connection;
//   * length-framed request/response (daemon/frame.h): key updates,
//     archive range catch-up, the server public key, ping;
//   * per-connection read/write buffering with backpressure caps;
//   * idle timeouts — a receiver that polls once a day does not pin a
//     file descriptor forever;
//   * a connection cap with GRACEFUL shedding: connections beyond the
//     cap get a kError(kOverloaded) frame and a clean close, so a
//     storming client backs off instead of hanging in SYN purgatory;
//   * hostile-input discipline: a garbage frame is data, not an
//     exception — the reader latches, the peer gets kError(kMalformed),
//     the connection dies, the loop never unwinds (frame.h contract).
//
// Observability: daemon.conns / daemon.rps gauges, accepted/shed/
// idle-closed/request counters and a request-latency histogram
// (daemon.request_ns) in the global registry, mirrored per-instance in
// metrics() like every other subsystem.
//
// Threading: run() owns every socket and runs on ONE thread. stop() is
// thread- and signal-safe (atomic flag + self-pipe wakeup). The Store is
// shared and internally locked, so a publisher thread can keep appending
// epoch updates while the loop serves.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "daemon/frame.h"
#include "daemon/store.h"
#include "obs/metrics.h"

namespace tre::daemon {

struct DaemonConfig {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;            ///< 0 = ephemeral; see Daemon::port()
  size_t max_conns = 4096;           ///< cap; beyond it, shed gracefully
  std::int64_t idle_timeout_ms = 30000;
  size_t max_request_payload = kMaxRequestPayload;
  size_t max_reply_bytes = kMaxPayload;  ///< range replies are capped to fit
  std::uint32_t max_range_items = 512;   ///< per kGetRange reply
  size_t max_outbuf_bytes = 4 * kMaxPayload;  ///< slow-consumer cutoff
  int tick_ms = 100;  ///< poll timeout: idle sweep + rate gauge cadence
  int listen_backlog = 1024;
};

class Daemon {
 public:
  /// Binds and listens immediately (so port() is valid before run());
  /// throws tre::Error when the socket cannot be set up — environment
  /// failures at boot are NOT event-loop conditions.
  explicit Daemon(std::shared_ptr<Store> store, DaemonConfig config = {});
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// The bound port (the ephemeral one the kernel picked when
  /// config.port was 0).
  std::uint16_t port() const { return port_; }

  /// Serves until stop(). Call from the thread that owns the loop.
  void run();

  /// Thread- and signal-safe shutdown request; run() returns promptly.
  void stop();

  /// Point-in-time view over the instance registry (mirrored into
  /// obs::Registry::global() as daemon.*).
  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t shed = 0;          ///< connections refused at the cap
    std::uint64_t idle_closed = 0;
    std::uint64_t requests = 0;
    std::uint64_t bad_frames = 0;    ///< framing damage -> error + close
    std::uint64_t error_replies = 0; ///< kError frames sent (any cause)
    std::int64_t open_conns = 0;
  };
  Stats stats() const;

  /// The instance-local registry backing stats() (snapshot/export hook).
  const obs::Registry& metrics() const { return reg_; }

 private:
  struct Conn {
    int fd = -1;
    FrameReader reader;
    Bytes out;
    size_t out_off = 0;
    std::int64_t last_activity_ms = 0;
    bool close_after_flush = false;
    explicit Conn(size_t max_payload) : reader(max_payload) {}
  };

  void accept_ready(std::int64_t now_ms);
  bool read_ready(Conn& c, std::int64_t now_ms);   // false = close it
  bool write_ready(Conn& c, std::int64_t now_ms);  // false = close it
  void handle_frame(Conn& c, Frame frame);
  void enqueue(Conn& c, FrameType type, ByteSpan payload);
  void enqueue_error(Conn& c, Errc code, std::string_view message);
  void sweep_idle(std::int64_t now_ms);
  void update_rates(std::int64_t now_ms);
  void close_conn(size_t idx);

  std::shared_ptr<Store> store_;
  DaemonConfig cfg_;
  int listen_fd_ = -1;
  int wake_rd_ = -1;
  int wake_wr_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_requested_{false};
  std::vector<std::unique_ptr<Conn>> conns_;

  // Rate gauge bookkeeping (event-loop thread only).
  std::int64_t rate_window_start_ms_ = 0;
  std::uint64_t rate_window_requests_ = 0;

  // Instance accounting in a private registry; handles resolved once
  // because registry lookup takes a lock.
  obs::Registry reg_;
  obs::Counter& accepted_ = reg_.counter("accepted");
  obs::Counter& shed_ = reg_.counter("shed");
  obs::Counter& idle_closed_ = reg_.counter("idle_closed");
  obs::Counter& requests_ = reg_.counter("requests");
  obs::Counter& bad_frames_ = reg_.counter("bad_frames");
  obs::Counter& error_replies_ = reg_.counter("error_replies");
  obs::Gauge& open_conns_ = reg_.gauge("open_conns");
};

}  // namespace tre::daemon
