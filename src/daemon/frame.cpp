#include "daemon/frame.h"

#include <cstring>

namespace tre::daemon {

namespace {

std::uint32_t read_be32(const std::uint8_t* p) {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

std::uint64_t read_be64(const std::uint8_t* p) {
  return (std::uint64_t{read_be32(p)} << 32) | read_be32(p + 4);
}

}  // namespace

bool known_frame_type(std::uint8_t raw) {
  switch (static_cast<FrameType>(raw)) {
    case FrameType::kGetKey:
    case FrameType::kGetUpdate:
    case FrameType::kGetRange:
    case FrameType::kPing:
    case FrameType::kGetPartial:
    case FrameType::kKeyReply:
    case FrameType::kUpdateReply:
    case FrameType::kRangeReply:
    case FrameType::kPong:
    case FrameType::kPartialReply:
    case FrameType::kError:
      return true;
  }
  return false;
}

Bytes encode_frame(FrameType type, ByteSpan payload) {
  require(payload.size() <= kMaxPayload, "encode_frame: payload over the wire cap");
  Bytes out;
  out.reserve(kHeaderBytes + payload.size());
  out.insert(out.end(), kMagic.begin(), kMagic.end());
  out.push_back(kVersion);
  out.push_back(static_cast<std::uint8_t>(type));
  Bytes len = be32(static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), len.begin(), len.end());
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

const char* frame_error_name(FrameError e) {
  switch (e) {
    case FrameError::kNone: return "none";
    case FrameError::kBadMagic: return "bad magic";
    case FrameError::kBadVersion: return "bad version";
    case FrameError::kUnknownType: return "unknown frame type";
    case FrameError::kOversized: return "oversized payload";
  }
  return "unknown";
}

void FrameReader::feed(ByteSpan data) {
  if (err_ != FrameError::kNone) return;  // broken: drop everything
  // Compact once the consumed prefix dominates, keeping feed() amortized
  // O(bytes) without per-frame erases.
  if (off_ > 0 && off_ >= buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<long>(off_));
    off_ = 0;
  }
  buf_.insert(buf_.end(), data.begin(), data.end());
}

std::optional<Frame> FrameReader::next() {
  if (err_ != FrameError::kNone) return std::nullopt;
  if (buffered() < kHeaderBytes) return std::nullopt;
  const std::uint8_t* h = buf_.data() + off_;
  if (std::memcmp(h, kMagic.data(), kMagic.size()) != 0) {
    err_ = FrameError::kBadMagic;
    return std::nullopt;
  }
  if (h[4] != kVersion) {
    err_ = FrameError::kBadVersion;
    return std::nullopt;
  }
  if (!known_frame_type(h[5])) {
    err_ = FrameError::kUnknownType;
    return std::nullopt;
  }
  const std::uint64_t len = read_be32(h + 6);
  if (len > max_payload_) {
    err_ = FrameError::kOversized;
    return std::nullopt;
  }
  if (buffered() < kHeaderBytes + len) return std::nullopt;  // need more bytes
  Frame f;
  f.type = static_cast<FrameType>(h[5]);
  f.payload.assign(h + kHeaderBytes, h + kHeaderBytes + len);
  off_ += kHeaderBytes + static_cast<size_t>(len);
  return f;
}

// --- kError ------------------------------------------------------------------

std::uint8_t errc_wire_code(Errc code) {
  switch (code) {
    case Errc::kFutureInstant: return 1;
    case Errc::kBadRange: return 2;
    case Errc::kConflict: return 3;
    case Errc::kMalformed: return 4;
    case Errc::kSelftestFailed: return 5;
    case Errc::kNotFound: return 6;
    case Errc::kOverloaded: return 7;
    case Errc::kUnsupportedVersion: return 8;
    case Errc::kBadPartial: return 9;
    case Errc::kInsufficientPartials: return 10;
    case Errc::kDkgComplaint: return 11;
  }
  return 0;
}

std::optional<Errc> errc_from_wire(std::uint8_t raw) {
  switch (raw) {
    case 1: return Errc::kFutureInstant;
    case 2: return Errc::kBadRange;
    case 3: return Errc::kConflict;
    case 4: return Errc::kMalformed;
    case 5: return Errc::kSelftestFailed;
    case 6: return Errc::kNotFound;
    case 7: return Errc::kOverloaded;
    case 8: return Errc::kUnsupportedVersion;
    case 9: return Errc::kBadPartial;
    case 10: return Errc::kInsufficientPartials;
    case 11: return Errc::kDkgComplaint;
  }
  return std::nullopt;
}

Bytes encode_error(Errc code, std::string_view message) {
  Bytes out;
  out.reserve(1 + message.size());
  out.push_back(errc_wire_code(code));
  out.insert(out.end(), message.begin(), message.end());
  return out;
}

std::optional<WireError> try_parse_error(ByteSpan payload) {
  if (payload.empty()) return std::nullopt;
  std::optional<Errc> code = errc_from_wire(payload[0]);
  if (!code) return std::nullopt;
  WireError e;
  e.code = *code;
  e.message.assign(payload.begin() + 1, payload.end());
  return e;
}

// --- kKeyReply ---------------------------------------------------------------

Bytes encode_key_reply(std::string_view set_name, ByteSpan pub) {
  require(set_name.size() <= 255, "encode_key_reply: set name too long");
  Bytes out;
  out.reserve(1 + set_name.size() + pub.size());
  out.push_back(static_cast<std::uint8_t>(set_name.size()));
  out.insert(out.end(), set_name.begin(), set_name.end());
  out.insert(out.end(), pub.begin(), pub.end());
  return out;
}

std::optional<KeyReply> try_parse_key_reply(ByteSpan payload) {
  if (payload.empty()) return std::nullopt;
  const size_t name_len = payload[0];
  if (payload.size() < 1 + name_len) return std::nullopt;
  KeyReply r;
  r.set_name.assign(payload.begin() + 1, payload.begin() + 1 + static_cast<long>(name_len));
  r.pub.assign(payload.begin() + 1 + static_cast<long>(name_len), payload.end());
  if (r.pub.empty()) return std::nullopt;  // a key reply without a key
  return r;
}

// --- kGetRange / kRangeReply -------------------------------------------------

Bytes encode_get_range(std::uint64_t start, std::uint32_t max_count) {
  Bytes out = be64(start);
  Bytes cnt = be32(max_count);
  out.insert(out.end(), cnt.begin(), cnt.end());
  return out;
}

std::optional<RangeRequest> try_parse_get_range(ByteSpan payload) {
  if (payload.size() != 12) return std::nullopt;
  RangeRequest r;
  r.start = read_be64(payload.data());
  r.max_count = read_be32(payload.data() + 8);
  return r;
}

Bytes encode_range_reply(std::uint64_t total, std::uint64_t start,
                         const std::vector<Bytes>& updates) {
  Bytes out = be64(total);
  Bytes s = be64(start);
  out.insert(out.end(), s.begin(), s.end());
  Bytes cnt = be32(static_cast<std::uint32_t>(updates.size()));
  out.insert(out.end(), cnt.begin(), cnt.end());
  for (const Bytes& u : updates) {
    Bytes len = be32(static_cast<std::uint32_t>(u.size()));
    out.insert(out.end(), len.begin(), len.end());
    out.insert(out.end(), u.begin(), u.end());
  }
  require(out.size() <= kMaxPayload, "encode_range_reply: reply over the wire cap");
  return out;
}

std::optional<RangeReply> try_parse_range_reply(ByteSpan payload) {
  if (payload.size() < 20) return std::nullopt;
  RangeReply r;
  r.total = read_be64(payload.data());
  r.start = read_be64(payload.data() + 8);
  const std::uint32_t count = read_be32(payload.data() + 16);
  size_t off = 20;
  // Each item needs at least its 4-byte length; a hostile count dies on
  // the bounds checks below instead of pre-reserving unbounded memory.
  r.updates.reserve(std::min<size_t>(count, payload.size() / 4));
  for (std::uint32_t i = 0; i < count; ++i) {
    if (payload.size() - off < 4) return std::nullopt;
    const std::uint32_t len = read_be32(payload.data() + off);
    off += 4;
    if (payload.size() - off < len) return std::nullopt;
    r.updates.emplace_back(payload.begin() + static_cast<long>(off),
                           payload.begin() + static_cast<long>(off + len));
    off += len;
  }
  if (off != payload.size()) return std::nullopt;  // trailing bytes
  return r;
}

}  // namespace tre::daemon
