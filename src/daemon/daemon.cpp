#include "daemon/daemon.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <ctime>

namespace tre::daemon {

namespace {

std::int64_t monotonic_ms() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return std::int64_t{ts.tv_sec} * 1000 + ts.tv_nsec / 1000000;
}

std::uint64_t monotonic_ns() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return std::uint64_t(ts.tv_sec) * 1000000000u + std::uint64_t(ts.tv_nsec);
}

void set_nonblocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

// Fleet-wide telemetry, one set of probes shared by every instance (the
// fetcher-probes pattern). Gauges are always-on instruments resolved from
// the global registry directly — there is no GaugeProbe.
struct DaemonProbes {
  obs::CounterProbe accepted{"daemon.accepted"};
  obs::CounterProbe shed{"daemon.shed"};
  obs::CounterProbe idle_closed{"daemon.idle_closed"};
  obs::CounterProbe requests{"daemon.requests"};
  obs::CounterProbe bad_frames{"daemon.bad_frames"};
  obs::CounterProbe error_replies{"daemon.error_replies"};
  obs::HistogramProbe request_ns{"daemon.request_ns"};
};

DaemonProbes& probes() {
  static DaemonProbes p;
  return p;
}

}  // namespace

Daemon::Daemon(std::shared_ptr<Store> store, DaemonConfig config)
    : store_(std::move(store)), cfg_(std::move(config)) {
  require(store_ != nullptr, "Daemon: null store");
  require(cfg_.max_conns > 0, "Daemon: max_conns must be positive");
  require(cfg_.max_reply_bytes <= kMaxPayload,
          "Daemon: max_reply_bytes over the wire cap");
  require(cfg_.max_request_payload <= kMaxPayload,
          "Daemon: max_request_payload over the wire cap");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  require(listen_fd_ >= 0, "Daemon: socket() failed");

  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg_.port);
  if (::inet_pton(AF_INET, cfg_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    require(false, "Daemon: bad bind address");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, cfg_.listen_backlog) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    require(false, "Daemon: bind/listen failed");
  }
  socklen_t alen = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &alen);
  port_ = ntohs(addr.sin_port);
  set_nonblocking(listen_fd_);

  int pipefd[2];
  if (::pipe(pipefd) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    require(false, "Daemon: pipe() failed");
  }
  wake_rd_ = pipefd[0];
  wake_wr_ = pipefd[1];
  set_nonblocking(wake_rd_);
  set_nonblocking(wake_wr_);
}

Daemon::~Daemon() {
  for (auto& c : conns_) {
    if (c && c->fd >= 0) ::close(c->fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_rd_ >= 0) ::close(wake_rd_);
  if (wake_wr_ >= 0) ::close(wake_wr_);
}

void Daemon::stop() {
  stop_requested_.store(true, std::memory_order_release);
  // Self-pipe: one byte wakes poll() even from another thread or a signal
  // handler (write(2) is async-signal-safe). EAGAIN just means a wakeup
  // is already pending.
  const std::uint8_t b = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_wr_, &b, 1);
}

Daemon::Stats Daemon::stats() const {
  Stats s;
  s.accepted = accepted_.value();
  s.shed = shed_.value();
  s.idle_closed = idle_closed_.value();
  s.requests = requests_.value();
  s.bad_frames = bad_frames_.value();
  s.error_replies = error_replies_.value();
  s.open_conns = open_conns_.value();
  return s;
}

void Daemon::run() {
  std::vector<pollfd> pfds;
  rate_window_start_ms_ = monotonic_ms();
  rate_window_requests_ = 0;

  while (!stop_requested_.load(std::memory_order_acquire)) {
    pfds.clear();
    pfds.push_back({wake_rd_, POLLIN, 0});
    // Keep accepting even at the cap: shedding means telling the peer
    // "overloaded" and closing, which is kinder than letting its SYN rot.
    pfds.push_back({listen_fd_, POLLIN, 0});
    for (const auto& c : conns_) {
      short events = POLLIN;
      if (c->out_off < c->out.size()) events |= POLLOUT;
      pfds.push_back({c->fd, events, 0});
    }
    // accept_ready below grows conns_ mid-iteration; only the first
    // `polled` entries have pollfds, so the walk must stop there.
    const size_t polled = conns_.size();

    int rc = ::poll(pfds.data(), pfds.size(), cfg_.tick_ms);
    if (rc < 0 && errno != EINTR) break;  // poll itself failed: give up

    const std::int64_t now = monotonic_ms();

    if (rc > 0) {
      if (pfds[0].revents & POLLIN) {
        std::uint8_t drain[64];
        while (::read(wake_rd_, drain, sizeof(drain)) > 0) {}
      }
      if (pfds[1].revents & POLLIN) accept_ready(now);

      // Walk connections back to front so close_conn's swap-and-pop never
      // disturbs an index we have yet to visit. (A close may swap a
      // just-accepted, unpolled conn into slot i; it is simply not
      // visited until the next cycle.)
      for (size_t i = polled; i-- > 0;) {
        const pollfd& p = pfds[2 + i];
        Conn& c = *conns_[i];
        bool alive = true;
        if (p.revents & (POLLERR | POLLHUP | POLLNVAL)) alive = false;
        if (alive && (p.revents & POLLIN)) alive = read_ready(c, now);
        if (alive && (p.revents & POLLOUT)) alive = write_ready(c, now);
        if (!alive) close_conn(i);
      }
    }

    sweep_idle(now);
    update_rates(now);
  }

  // Drain: close everything so a restarted daemon starts clean.
  for (size_t i = conns_.size(); i-- > 0;) close_conn(i);
  update_rates(monotonic_ms());
}

void Daemon::accept_ready(std::int64_t now_ms) {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient: poll will re-arm
    set_nonblocking(fd);
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    if (conns_.size() >= cfg_.max_conns) {
      // Graceful shed: a best-effort error frame, then close. The frame
      // is small enough to fit a fresh socket buffer, so the blocking-
      // free write either lands whole or the peer just sees the close.
      Bytes frame = encode_frame(
          FrameType::kError, encode_error(Errc::kOverloaded, "connection cap"));
      [[maybe_unused]] ssize_t n = ::send(fd, frame.data(), frame.size(),
                                          MSG_NOSIGNAL | MSG_DONTWAIT);
      ::close(fd);
      shed_.add();
      error_replies_.add();
      probes().shed.add();
      probes().error_replies.add();
      continue;
    }

    auto conn = std::make_unique<Conn>(cfg_.max_request_payload);
    conn->fd = fd;
    conn->last_activity_ms = now_ms;
    conns_.push_back(std::move(conn));
    accepted_.add();
    probes().accepted.add();
    open_conns_.set(static_cast<std::int64_t>(conns_.size()));
    obs::Registry::global().gauge("daemon.conns")
        .set(static_cast<std::int64_t>(conns_.size()));
  }
}

bool Daemon::read_ready(Conn& c, std::int64_t now_ms) {
  std::uint8_t buf[16384];
  for (;;) {
    ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
    if (n == 0) return false;  // peer closed
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    c.last_activity_ms = now_ms;
    c.reader.feed(ByteSpan(buf, static_cast<size_t>(n)));
    while (auto frame = c.reader.next()) {
      handle_frame(c, std::move(*frame));
      if (c.close_after_flush) break;
    }
    if (c.reader.broken()) {
      // Framing damage is data, not an exception: tell the peer why,
      // flush, close. The reader already stopped consuming.
      bad_frames_.add();
      probes().bad_frames.add();
      Errc code = c.reader.error() == FrameError::kBadVersion
                      ? Errc::kUnsupportedVersion
                      : Errc::kMalformed;
      enqueue_error(c, code, frame_error_name(c.reader.error()));
      c.close_after_flush = true;
      break;
    }
    if (c.close_after_flush) break;
  }
  // A connection marked for close with nothing left to flush dies now.
  if (c.close_after_flush && c.out_off >= c.out.size()) return false;
  if (c.out.size() - c.out_off > cfg_.max_outbuf_bytes) return false;  // hog
  // Opportunistic flush so small replies do not wait one poll cycle.
  if (c.out_off < c.out.size()) return write_ready(c, now_ms);
  return true;
}

bool Daemon::write_ready(Conn& c, std::int64_t now_ms) {
  while (c.out_off < c.out.size()) {
    ssize_t n = ::send(c.fd, c.out.data() + c.out_off, c.out.size() - c.out_off,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      return false;
    }
    c.out_off += static_cast<size_t>(n);
    c.last_activity_ms = now_ms;
  }
  // Fully flushed: compact, and honor a deferred close.
  c.out.clear();
  c.out_off = 0;
  return !c.close_after_flush;
}

void Daemon::handle_frame(Conn& c, Frame frame) {
  const std::uint64_t t0 = monotonic_ns();
  requests_.add();
  rate_window_requests_++;
  probes().requests.add();

  switch (frame.type) {
    case FrameType::kPing:
      enqueue(c, FrameType::kPong, frame.payload);
      break;

    case FrameType::kGetKey: {
      auto [set_name, pub] = store_->server_key();
      if (pub.empty()) {
        enqueue_error(c, Errc::kNotFound, "no server key configured");
      } else {
        enqueue(c, FrameType::kKeyReply, encode_key_reply(set_name, pub));
      }
      break;
    }

    case FrameType::kGetUpdate: {
      std::string_view tag(reinterpret_cast<const char*>(frame.payload.data()),
                           frame.payload.size());
      if (tag.empty()) {
        enqueue_error(c, Errc::kMalformed, "empty tag");
        break;
      }
      if (auto wire = store_->find(tag)) {
        enqueue(c, FrameType::kUpdateReply, *wire);
      } else {
        enqueue_error(c, Errc::kNotFound, "tag not archived");
      }
      break;
    }

    case FrameType::kGetPartial: {
      std::string_view tag(reinterpret_cast<const char*>(frame.payload.data()),
                           frame.payload.size());
      if (tag.empty()) {
        enqueue_error(c, Errc::kMalformed, "empty tag");
        break;
      }
      if (auto wire = store_->find_partial(tag)) {
        enqueue(c, FrameType::kPartialReply, *wire);
      } else {
        enqueue_error(c, Errc::kNotFound, "no partial for tag");
      }
      break;
    }

    case FrameType::kGetRange: {
      auto req = try_parse_get_range(frame.payload);
      if (!req) {
        enqueue_error(c, Errc::kMalformed, "bad range request");
        break;
      }
      const std::uint32_t capped =
          std::min(req->max_count, cfg_.max_range_items);
      Store::RangeView view =
          store_->range(req->start, capped, cfg_.max_reply_bytes);
      enqueue(c, FrameType::kRangeReply,
              encode_range_reply(view.total, req->start, view.updates));
      break;
    }

    default:
      // A syntactically valid frame the SERVER has no business receiving
      // (a reply type, kError). Not framing damage — answer and move on.
      enqueue_error(c, Errc::kMalformed, "not a request frame");
      break;
  }

  probes().request_ns.record(monotonic_ns() - t0);
}

void Daemon::enqueue(Conn& c, FrameType type, ByteSpan payload) {
  Bytes frame = encode_frame(type, payload);
  c.out.insert(c.out.end(), frame.begin(), frame.end());
}

void Daemon::enqueue_error(Conn& c, Errc code, std::string_view message) {
  enqueue(c, FrameType::kError, encode_error(code, message));
  error_replies_.add();
  probes().error_replies.add();
}

void Daemon::sweep_idle(std::int64_t now_ms) {
  if (cfg_.idle_timeout_ms <= 0) return;
  for (size_t i = conns_.size(); i-- > 0;) {
    if (now_ms - conns_[i]->last_activity_ms >= cfg_.idle_timeout_ms) {
      idle_closed_.add();
      probes().idle_closed.add();
      close_conn(i);
    }
  }
}

void Daemon::update_rates(std::int64_t now_ms) {
  open_conns_.set(static_cast<std::int64_t>(conns_.size()));
  obs::Registry::global().gauge("daemon.conns")
      .set(static_cast<std::int64_t>(conns_.size()));
  const std::int64_t elapsed = now_ms - rate_window_start_ms_;
  if (elapsed >= 1000) {
    obs::Registry::global().gauge("daemon.rps")
        .set(static_cast<std::int64_t>(rate_window_requests_ * 1000 /
                                       static_cast<std::uint64_t>(elapsed)));
    rate_window_start_ms_ = now_ms;
    rate_window_requests_ = 0;
  }
}

void Daemon::close_conn(size_t idx) {
  ::close(conns_[idx]->fd);
  conns_[idx] = std::move(conns_.back());
  conns_.pop_back();
  open_conns_.set(static_cast<std::int64_t>(conns_.size()));
}

}  // namespace tre::daemon
