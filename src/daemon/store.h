// The daemon's serving surface: a thread-safe archive of PRE-SERIALIZED
// artifacts.
//
// tred never parses what it serves. Updates enter as the exact bytes
// core::BasicKeyUpdate<B>::to_bytes() produced and leave the same way;
// the pairing check that decides whether those bytes mean anything runs
// in the client (the paper's self-authentication argument — §3 — is
// what makes an untrusted byte-shuffling server safe). Keeping the store
// backend-free also means one daemon binary serves either curve: the
// set name in the key reply tells receivers which codec to parse with.
//
// Concurrency: a shared_mutex. The event loop only reads; a publisher
// thread (a TimeServer hitting a granule boundary, tre_cli serve's
// backfill) may put() concurrently. Reads are the hot path — the lock is
// uncontended-shared in steady state.
#pragma once

#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/error.h"

namespace tre::daemon {

class Store {
 public:
  /// Installs the key served for kGetKey. `set_name` routes receivers to
  /// the right backend codec ("tre-512", "bls12-381", ...).
  void set_server_key(std::string set_name, Bytes pub_wire);

  /// (set name, public key bytes); empty pub when never configured.
  std::pair<std::string, Bytes> server_key() const;

  /// Archives `wire` under `tag`, publication order preserved.
  /// Idempotent for identical bytes; a CONFLICTING re-publish is refused
  /// (returns Errc::kConflict) — the daemon must never equivocate, and a
  /// refusal is data, not an exception across the event loop.
  Result<bool> put(const std::string& tag, Bytes wire);

  std::optional<Bytes> find(std::string_view tag) const;

  /// Up to `max_count` updates starting at publication position `start`,
  /// additionally capped so the encoded reply stays within
  /// `max_reply_bytes`. `total` reports the archive size so a catch-up
  /// client can tell a capped reply from the end of history.
  struct RangeView {
    std::uint64_t total = 0;
    std::vector<Bytes> updates;
  };
  RangeView range(std::uint64_t start, std::uint32_t max_count,
                  size_t max_reply_bytes) const;

  /// Archives this beacon node's PARTIAL update wire bytes
  /// (threshold::BasicPartialUpdate<B>::to_bytes) under `tag`, same
  /// no-equivocation discipline as put(). A daemon serving partials is
  /// one node of a t-of-n beacon: it stores its OWN share's partial per
  /// tag, never anyone else's.
  Result<bool> put_partial(const std::string& tag, Bytes wire);

  std::optional<Bytes> find_partial(std::string_view tag) const;

  size_t partial_count() const;

  size_t size() const;
  size_t total_bytes() const;

 private:
  mutable std::shared_mutex mu_;
  std::string set_name_;
  Bytes pub_;
  std::vector<std::pair<std::string, Bytes>> ordered_;  // (tag, wire)
  std::unordered_map<std::string, size_t> index_;       // tag -> position
  std::unordered_map<std::string, Bytes> partials_;     // tag -> partial wire
  size_t total_bytes_ = 0;
};

}  // namespace tre::daemon
