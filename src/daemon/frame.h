// The tred wire protocol: self-describing versioned frames.
//
// Everything the daemon sends or receives is one frame:
//
//     0      4   magic "TREd"
//     4      1   protocol version (kVersion)
//     5      1   frame type (FrameType)
//     6      4   payload length N, big-endian
//     10     N   payload
//
// The framing layer is deliberately dumb: payloads are opaque bytes.
// Key updates travel exactly as core::BasicKeyUpdate<B>::to_bytes()
// emits them, so the daemon never parses group elements — the paper's
// self-authentication argument means the TRUST boundary lives in the
// client (parse -> tag -> pairing check, client/fetcher.h), and the
// server side stays a byte shuffler that scales.
//
// Error discipline (the PR-2 tre::Errc convention): nothing in this
// header throws on wire input. FrameReader::next() returns frames until
// the buffer is exhausted or framing damage is detected; damage latches
// broken() and the connection owner decides what to do (the daemon
// replies kError and closes). Only the encode_* builders — which operate
// on OUR data, not the peer's — enforce contracts with tre::require.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/error.h"

namespace tre::daemon {

inline constexpr std::array<std::uint8_t, 4> kMagic = {'T', 'R', 'E', 'd'};
inline constexpr std::uint8_t kVersion = 1;
inline constexpr size_t kHeaderBytes = 10;

/// Hard ceiling on a frame payload, both directions. Range replies are
/// additionally capped by DaemonConfig::max_reply_bytes (<= this).
inline constexpr size_t kMaxPayload = size_t{1} << 20;  // 1 MiB

/// Requests are tiny (a tag, a cursor); a peer claiming more is hostile.
inline constexpr size_t kMaxRequestPayload = 4096;

/// Request types occupy the low half, replies have the top bit set.
enum class FrameType : std::uint8_t {
  kGetKey = 0x01,      ///< -> kKeyReply: the server public key
  kGetUpdate = 0x02,   ///< payload = tag bytes -> kUpdateReply
  kGetRange = 0x03,    ///< payload = be64 start, be32 max -> kRangeReply
  kPing = 0x04,        ///< liveness probe -> kPong (payload echoed)
  kGetPartial = 0x05,  ///< payload = tag bytes -> kPartialReply (beacon nodes)
  kKeyReply = 0x81,
  kUpdateReply = 0x82,
  kRangeReply = 0x83,
  kPong = 0x84,
  /// Payload = threshold::BasicPartialUpdate<B>::to_bytes() verbatim: a
  /// beacon node's s_i·H1(tag). Like updates, the daemon never parses it.
  kPartialReply = 0x85,
  kError = 0xff,  ///< payload = 1-byte wire code, then a UTF-8 message
};

bool known_frame_type(std::uint8_t raw);

struct Frame {
  FrameType type = FrameType::kError;
  Bytes payload;
};

/// Serializes one frame. Throws tre::Error if `payload` exceeds
/// kMaxPayload (a caller bug, never a peer-controlled condition).
Bytes encode_frame(FrameType type, ByteSpan payload);

enum class FrameError : std::uint8_t {
  kNone,
  kBadMagic,
  kBadVersion,
  kUnknownType,
  kOversized,
};

const char* frame_error_name(FrameError e);

/// Incremental, non-throwing frame decoder for one connection.
///
/// feed() appends wire bytes as they arrive; next() pops complete
/// frames. The first header that fails validation (wrong magic, wrong
/// version, unknown type, length beyond `max_payload`) latches broken():
/// no further frames are produced and the connection should be torn
/// down — resynchronizing inside a hostile byte stream is a non-goal.
class FrameReader {
 public:
  explicit FrameReader(size_t max_payload = kMaxPayload)
      : max_payload_(max_payload) {}

  void feed(ByteSpan data);
  std::optional<Frame> next();

  bool broken() const { return err_ != FrameError::kNone; }
  FrameError error() const { return err_; }
  size_t buffered() const { return buf_.size() - off_; }

 private:
  size_t max_payload_;
  Bytes buf_;
  size_t off_ = 0;  // consumed prefix; compacted opportunistically
  FrameError err_ = FrameError::kNone;
};

// --- Typed payload codecs ----------------------------------------------------
// Each has an encode_* builder and a non-throwing try_parse_* reader.

/// kError payload: wire code byte, then the message.
struct WireError {
  Errc code = Errc::kMalformed;
  std::string message;
};
std::uint8_t errc_wire_code(Errc code);
std::optional<Errc> errc_from_wire(std::uint8_t raw);
Bytes encode_error(Errc code, std::string_view message);
std::optional<WireError> try_parse_error(ByteSpan payload);

/// kKeyReply payload: 1-byte set-name length, set name, raw public key.
struct KeyReply {
  std::string set_name;
  Bytes pub;
};
Bytes encode_key_reply(std::string_view set_name, ByteSpan pub);
std::optional<KeyReply> try_parse_key_reply(ByteSpan payload);

/// kGetRange payload: be64 start position, be32 max item count.
struct RangeRequest {
  std::uint64_t start = 0;
  std::uint32_t max_count = 0;
};
Bytes encode_get_range(std::uint64_t start, std::uint32_t max_count);
std::optional<RangeRequest> try_parse_get_range(ByteSpan payload);

/// kRangeReply payload: be64 archive total, be64 start, be32 count,
/// then count x (be32 length, update bytes). `total` lets a catch-up
/// client know how far behind it still is after a capped reply.
struct RangeReply {
  std::uint64_t total = 0;
  std::uint64_t start = 0;
  std::vector<Bytes> updates;
};
Bytes encode_range_reply(std::uint64_t total, std::uint64_t start,
                         const std::vector<Bytes>& updates);
std::optional<RangeReply> try_parse_range_reply(ByteSpan payload);

}  // namespace tre::daemon
