// Password-protected storage of secret scalars.
//
// Used by tre_cli to keep server/user secret keys at rest: the scalar is
// encrypted under a key derived from a password with an iterated-HMAC
// PBKDF (cost-parameterized), and authenticated so wrong passwords and
// corrupted files are detected rather than yielding garbage secrets.
//
// Blob layout: salt(16) || iters(be32) || body(scalar len) || mac(32).
#pragma once

#include <optional>
#include <string_view>

#include "common/bytes.h"
#include "hashing/drbg.h"

namespace tre::keystore {

inline constexpr std::uint32_t kDefaultIterations = 50000;

/// Seals `secret` under `password`.
Bytes seal(ByteSpan secret, std::string_view password, tre::hashing::RandomSource& rng,
           std::uint32_t iterations = kDefaultIterations);

/// Opens a sealed blob; nullopt on wrong password or tampering.
std::optional<Bytes> open(ByteSpan blob, std::string_view password);

/// The PBKDF itself (exposed for tests and cost measurement):
/// iterated HMAC-SHA256 chaining, then HKDF expansion to `out_len`.
Bytes derive_key(std::string_view password, ByteSpan salt, std::uint32_t iterations,
                 size_t out_len);

}  // namespace tre::keystore
