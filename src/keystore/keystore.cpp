#include "keystore/keystore.h"

#include "common/error.h"
#include "common/health.h"
#include "hashing/hmac.h"
#include "hashing/kdf.h"

namespace tre::keystore {

namespace {
constexpr size_t kSaltLen = 16;
constexpr size_t kMacLen = 32;
}  // namespace

Bytes derive_key(std::string_view password, ByteSpan salt, std::uint32_t iterations,
                 size_t out_len) {
  health::ensure_operational();
  require(iterations >= 1, "keystore: zero iterations");
  Bytes pw = to_bytes(password);
  Bytes state = hashing::hmac_sha256_concat(pw, {salt, to_bytes("KSv1")});
  for (std::uint32_t i = 1; i < iterations; ++i) {
    state = hashing::hmac_sha256(pw, state);
  }
  return hashing::hkdf_sha256(salt, state, to_bytes("keystore-key"), out_len);
}

Bytes seal(ByteSpan secret, std::string_view password, tre::hashing::RandomSource& rng,
           std::uint32_t iterations) {
  Bytes salt = rng.bytes(kSaltLen);
  Bytes key = derive_key(password, salt, iterations, 64);
  ByteSpan enc_key(key.data(), 32);
  ByteSpan mac_key(key.data() + 32, 32);

  Bytes body = xor_bytes(secret, hashing::keystream(enc_key, salt, secret.size()));
  Bytes out = salt;
  Bytes iters = be32(iterations);
  out.insert(out.end(), iters.begin(), iters.end());
  out.insert(out.end(), body.begin(), body.end());
  Bytes mac = hashing::hmac_sha256_concat(mac_key, {salt, iters, body});
  out.insert(out.end(), mac.begin(), mac.end());
  return out;
}

std::optional<Bytes> open(ByteSpan blob, std::string_view password) {
  if (blob.size() < kSaltLen + 4 + kMacLen) return std::nullopt;
  ByteSpan salt = blob.subspan(0, kSaltLen);
  ByteSpan iters_bytes = blob.subspan(kSaltLen, 4);
  std::uint32_t iterations = static_cast<std::uint32_t>(iters_bytes[0]) << 24 |
                             static_cast<std::uint32_t>(iters_bytes[1]) << 16 |
                             static_cast<std::uint32_t>(iters_bytes[2]) << 8 |
                             iters_bytes[3];
  if (iterations == 0) return std::nullopt;
  ByteSpan body = blob.subspan(kSaltLen + 4, blob.size() - kSaltLen - 4 - kMacLen);
  ByteSpan mac = blob.subspan(blob.size() - kMacLen);

  Bytes key = derive_key(password, salt, iterations, 64);
  ByteSpan enc_key(key.data(), 32);
  ByteSpan mac_key(key.data() + 32, 32);
  Bytes expected = hashing::hmac_sha256_concat(mac_key, {salt, iters_bytes, body});
  if (!ct_equal(expected, mac)) return std::nullopt;
  return xor_bytes(body, hashing::keystream(enc_key, salt, body.size()));
}

}  // namespace tre::keystore
