// Error-handling policy for the library.
//
// Contract violations and malformed public inputs throw `tre::Error`.
// Expected runtime failures that callers must handle (e.g. CCA decryption
// of a tampered ciphertext) are reported via std::optional returns, never
// via exceptions, so a hostile ciphertext cannot drive control flow.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace tre {

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Throws tre::Error with `msg` when `cond` is false.
inline void require(bool cond, const char* msg) {
  if (!cond) throw Error(msg);
}

/// Typed error codes for operations whose failures a caller is expected
/// to branch on (the try_* APIs). The throwing APIs remain the default;
/// these exist so server- and distribution-side code can surface faults
/// as data instead of silent gaps or exceptions across event loops.
enum class Errc {
  kFutureInstant,   ///< trust assumption 2: refusing to sign the future
  kBadRange,        ///< range with from after to
  kConflict,        ///< archive holds a different artifact for the same key
  kMalformed,       ///< wire bytes failed to parse or validate
  kSelftestFailed,  ///< a power-on known-answer test failed; the library is
                    ///< poisoned and key-producing entry points fail closed
  kNotFound,        ///< the requested artifact is not in the archive
  kOverloaded,      ///< the server is shedding load (connection cap reached)
  kUnsupportedVersion,  ///< peer speaks a protocol version we do not
  kBadPartial,          ///< a threshold partial update failed its pairing check
  kInsufficientPartials,  ///< fewer than t valid partials could be collected
  kDkgComplaint,        ///< DKG aborted: too few qualified dealers survived
                        ///< the complaint round
};

inline const char* errc_message(Errc code) {
  switch (code) {
    case Errc::kFutureInstant: return "refusing to issue an update for a future time";
    case Errc::kBadRange: return "range start is after range end";
    case Errc::kConflict: return "conflicting artifact for the same key";
    case Errc::kMalformed: return "malformed wire bytes";
    case Errc::kSelftestFailed:
      return "power-on self-test failed: refusing to produce key material";
    case Errc::kNotFound: return "requested artifact is not archived";
    case Errc::kOverloaded: return "server overloaded: connection shed";
    case Errc::kUnsupportedVersion: return "unsupported protocol version";
    case Errc::kBadPartial: return "partial update failed verification";
    case Errc::kInsufficientPartials:
      return "not enough valid partial updates to reach the threshold";
    case Errc::kDkgComplaint:
      return "distributed key generation aborted: qualified set below threshold";
  }
  return "unknown error";
}

/// Thrown by gated entry points after a self-test failure has latched the
/// poisoned state (common/health.h). Carries the typed code so callers can
/// branch on Errc::kSelftestFailed without string-matching.
class SelftestError : public Error {
 public:
  SelftestError() : Error(errc_message(Errc::kSelftestFailed)) {}
  Errc code() const { return Errc::kSelftestFailed; }
};

/// Minimal result-or-typed-error carrier (std::expected is C++23; this
/// is the subset the library needs). A Result is either a value or an
/// Errc — value() on an error throws tre::Error with the code's message,
/// so migrating callers keep exception behaviour by default.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Errc code) : code_(code) {}             // NOLINT: implicit by design

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  Errc error() const {
    require(!ok(), "Result: error() on a success");
    return code_;
  }
  const char* message() const { return errc_message(error()); }

  const T& value() const& {
    if (!ok()) throw Error(errc_message(code_));
    return *value_;
  }
  T& value() & {
    if (!ok()) throw Error(errc_message(code_));
    return *value_;
  }
  T&& value() && {
    if (!ok()) throw Error(errc_message(code_));
    return std::move(*value_);
  }

  // Pointer-style access to the success value; throws like value() when
  // the result holds an error, so misuse fails loudly, never silently.
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Errc code_ = Errc::kMalformed;
};

}  // namespace tre
