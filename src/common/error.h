// Error-handling policy for the library.
//
// Contract violations and malformed public inputs throw `tre::Error`.
// Expected runtime failures that callers must handle (e.g. CCA decryption
// of a tampered ciphertext) are reported via std::optional returns, never
// via exceptions, so a hostile ciphertext cannot drive control flow.
#pragma once

#include <stdexcept>
#include <string>

namespace tre {

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Throws tre::Error with `msg` when `cond` is false.
inline void require(bool cond, const char* msg) {
  if (!cond) throw Error(msg);
}

}  // namespace tre
