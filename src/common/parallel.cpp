#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace tre {

namespace {

unsigned hardware_threads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;  // hardware_concurrency may report 0
}

/// Pool worker count override (workers the pool SPAWNS, excluding
/// callers): TRE_POOL_THREADS, read once. Default hardware_concurrency-1
/// so a saturating parallel_for uses exactly the hardware.
unsigned configured_pool_threads() {
  if (const char* env = std::getenv("TRE_POOL_THREADS")) {
    long v = std::strtol(env, nullptr, 10);
    if (v >= 0 && v <= 1024) return static_cast<unsigned>(v);
  }
  return hardware_threads() - 1;
}

/// One blocking parallel-for invocation. Lives on the caller's stack;
/// pool workers only touch it between being admitted (under the pool
/// mutex) and their exit bookkeeping (under the pool mutex), and the
/// caller does not return before every admitted worker has exited.
struct Task {
  Task(size_t n_items, IndexFnRef f, unsigned max_parts, size_t chunk_size)
      : n(n_items), chunk(chunk_size), fn(f), max_participants(max_parts) {}

  const size_t n;
  const size_t chunk;
  const IndexFnRef fn;
  const unsigned max_participants;  // callers + workers, from parallel_workers

  std::atomic<size_t> next{0};     // the chunked ticket
  unsigned joined = 1;             // admitted participants (pool mutex); 1 = caller
  unsigned active = 1;             // participants still running (pool mutex)
  std::exception_ptr error;        // first failure (pool mutex)

  bool wants_workers() const {
    return joined < max_participants && next.load(std::memory_order_relaxed) < n;
  }
};

class Pool {
 public:
  static Pool& instance() {
    // Leaked on purpose (the obs::Registry pattern): workers park on the
    // condvar forever, and tearing the pool down during static
    // destruction would race their wakeups.
    static Pool* p = new Pool();
    return *p;
  }

  unsigned thread_count() const { return spawned_; }

  void run(size_t n, IndexFnRef fn, unsigned max_workers) {
    tasks_probe_.add();
    Task task(n, fn, max_workers,
              /*chunk=*/std::max<size_t>(1, n / (size_t{max_workers} * 4)));
    {
      std::scoped_lock lock(mu_);
      // A task that cannot admit anyone (no pool threads, or already
      // satisfied) is simply run by the caller alone, unqueued.
      if (task.wants_workers() && spawned_ > 0) {
        tasks_.push_back(&task);
        cv_.notify_all();
      }
    }

    run_chunks(task);

    std::unique_lock lock(mu_);
    // Close admissions, then wait out workers already admitted.
    tasks_.erase(std::remove(tasks_.begin(), tasks_.end(), &task), tasks_.end());
    task.active -= 1;  // the caller is done
    done_cv_.wait(lock, [&] { return task.active == 0; });
    lock.unlock();
    if (task.error) std::rethrow_exception(task.error);
  }

 private:
  Pool() {
    spawned_ = configured_pool_threads();
    threads_.reserve(spawned_);
    for (unsigned t = 0; t < spawned_; ++t) {
      threads_.emplace_back([this] { worker_loop(); });
    }
    obs::Registry::global().gauge("pool.threads").set(spawned_);
  }

  static void run_chunks(Task& task) {
    for (;;) {
      size_t begin = task.next.fetch_add(task.chunk, std::memory_order_relaxed);
      if (begin >= task.n) return;
      size_t end = std::min(begin + task.chunk, task.n);
      try {
        for (size_t i = begin; i < end; ++i) task.fn(i);
      } catch (...) {
        // Record the first failure and drain the ticket so every
        // participant winds down promptly.
        Pool& pool = instance();
        std::scoped_lock lock(pool.mu_);
        if (!task.error) task.error = std::current_exception();
        task.next.store(task.n, std::memory_order_relaxed);
        return;
      }
    }
  }

  void worker_loop() {
    for (;;) {
      Task* task = nullptr;
      {
        std::unique_lock lock(mu_);
        cv_.wait(lock, [&] {
          for (Task* t : tasks_) {
            if (t->wants_workers()) {
              task = t;
              return true;
            }
          }
          return false;
        });
        task->joined += 1;
        task->active += 1;
        if (!task->wants_workers()) {
          tasks_.erase(std::remove(tasks_.begin(), tasks_.end(), task),
                       tasks_.end());
        }
      }
      run_chunks(*task);
      {
        std::scoped_lock lock(mu_);
        task->active -= 1;
        tasks_.erase(std::remove(tasks_.begin(), tasks_.end(), task), tasks_.end());
        if (task->active == 0) done_cv_.notify_all();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;       // workers: "a task wants hands"
  std::condition_variable done_cv_;  // callers: "your task finished"
  std::vector<Task*> tasks_;         // open tasks still admitting workers
  std::vector<std::thread> threads_; // never joined; park on cv_ forever
  unsigned spawned_ = 0;
  obs::CounterProbe tasks_probe_{"pool.tasks"};
};

}  // namespace

unsigned parallel_workers(size_t n, unsigned max_threads) {
  if (n <= 1) return 1;
  unsigned cap = max_threads != 0 ? max_threads : hardware_threads();
  if (cap == 0) cap = 1;
  return static_cast<unsigned>(std::min<size_t>(cap, n));
}

unsigned pool_thread_count() { return Pool::instance().thread_count(); }

namespace detail {

void parallel_run(size_t n, IndexFnRef fn, unsigned max_workers) {
  Pool::instance().run(n, fn, max_workers);
}

}  // namespace detail

}  // namespace tre
