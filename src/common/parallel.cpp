#include "common/parallel.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace tre {

unsigned parallel_workers(size_t n, unsigned max_threads) {
  if (n <= 1) return 1;
  unsigned cap = max_threads != 0 ? max_threads : std::thread::hardware_concurrency();
  if (cap == 0) cap = 1;  // hardware_concurrency may report 0
  return static_cast<unsigned>(std::min<size_t>(cap, n));
}

void parallel_for(size_t n, const std::function<void(size_t)>& fn,
                  unsigned max_threads) {
  if (n == 0) return;
  const unsigned workers = parallel_workers(n, max_threads);
  if (workers == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mu;
  auto body = [&] {
    for (;;) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::scoped_lock lock(error_mu);
        if (!first_error) first_error = std::current_exception();
        next.store(n, std::memory_order_relaxed);  // drain remaining work
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (unsigned t = 0; t + 1 < workers; ++t) pool.emplace_back(body);
  body();  // the caller is worker 0
  for (auto& th : pool) th.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace tre
