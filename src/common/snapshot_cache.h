// Read-mostly memoization cache with RCU-style snapshot reads.
//
// The core::Tuning caches (tag hashes, verified-key checks, comb tables,
// pair bases, Miller lines) are written a handful of times per epoch and
// read on every encrypt/decrypt. A single mutex around a map serializes
// the whole hot path; this container makes the common case — a hit on a
// warm cache — touch NO shared mutable memory at all:
//
//   * The map lives in immutable snapshots (`std::shared_ptr<const Map>`),
//     republished copy-on-write by writers.
//   * Each reading thread keeps a private slot holding the snapshot it
//     last saw plus the version it was published under. A read validates
//     the slot with one atomic *load* of the shard's version counter —
//     no shared store, no reference-count traffic, no lock — and only
//     refreshes (under the shard's write lock) when a writer has
//     republished since.
//   * Misses compute the value OUTSIDE any lock (values are deterministic
//     functions of the key, so a racing duplicate insert is harmless),
//     then insert under one of `kShards` striped write locks.
//
// Memory-ordering argument: a writer stores the new snapshot pointer and
// then bumps `version` with memory_order_release; a reader that observes
// the bumped version with memory_order_acquire refreshes under the shard
// mutex, which orders the snapshot pointer read after the writer's store.
// A reader whose slot version still equals the current version holds the
// snapshot that was current when version was published — possibly one
// republish stale for a few instructions, which is fine: snapshots are
// immutable, and a stale *miss* merely recomputes a deterministic value.
//
// Reclamation: thread slots pin their snapshot via shared_ptr, so a
// republished-over snapshot is freed when the last thread moves off it.
// Slots are keyed by a process-unique shard id (never reused), so a
// destroyed cache cannot be confused with a new one at the same address;
// stale slots age out of the bounded per-thread slot list.
//
// `Options::snapshots = false` selects the legacy single-lock-per-shard
// path (a plain map behind the shard mutex) — the "before" side of the
// equivalence tests. Both modes are output-identical by construction.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace tre {

struct SnapshotCacheOptions {
  /// Aggregate entry bound; a shard that reaches its share is cleared
  /// wholesale (same flood-guard policy as the seed-era caches).
  size_t max_entries = 1024;
  /// false = legacy locked mode: plain map behind the shard mutex.
  bool snapshots = true;
  /// Called with the nanoseconds a writer (or locked-mode reader) spent
  /// blocked on a CONTENDED shard mutex; uncontended acquisitions do not
  /// report. Hook must be callable from any thread without locks.
  void (*lock_wait_ns)(std::uint64_t) = nullptr;
};

namespace detail {

/// One thread-private snapshot slot. Type-erased so every SnapshotCache
/// instantiation shares one thread_local slot list.
struct SnapshotTlsSlot {
  std::uint64_t shard_id = 0;
  std::uint64_t version = 0;
  std::shared_ptr<const void> holder;  // pins the snapshot
  const void* map = nullptr;
};

// Bounded move-to-front list: hot shards are found within the first few
// probes; slots of dead caches drift to the back and fall off.
inline constexpr size_t kSnapshotTlsSlots = 128;

inline std::vector<SnapshotTlsSlot>& snapshot_tls() {
  thread_local std::vector<SnapshotTlsSlot> slots;
  return slots;
}

inline SnapshotTlsSlot* snapshot_tls_find(std::uint64_t shard_id) {
  auto& slots = snapshot_tls();
  for (size_t i = 0; i < slots.size(); ++i) {
    if (slots[i].shard_id == shard_id) {
      if (i > 0) std::swap(slots[i], slots[i - 1]);
      return &slots[i > 0 ? i - 1 : 0];
    }
  }
  return nullptr;
}

inline SnapshotTlsSlot* snapshot_tls_insert(SnapshotTlsSlot slot) {
  auto& slots = snapshot_tls();
  if (slots.size() >= kSnapshotTlsSlots) slots.pop_back();
  slots.insert(slots.begin(), std::move(slot));
  return &slots.front();
}

inline std::uint64_t snapshot_next_shard_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

/// Locks `mu`, reporting contended wait time to `hook` (may be null).
inline void lock_reporting_wait(std::mutex& mu, void (*hook)(std::uint64_t)) {
  if (mu.try_lock()) return;
  if (hook == nullptr) {
    mu.lock();
    return;
  }
  auto t0 = std::chrono::steady_clock::now();
  mu.lock();
  auto waited = std::chrono::steady_clock::now() - t0;
  hook(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(waited).count()));
}

struct TransparentStringHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

}  // namespace detail

template <typename V>
class SnapshotCache {
 public:
  using Map = std::unordered_map<std::string, V, detail::TransparentStringHash,
                                 std::equal_to<>>;

  explicit SnapshotCache(SnapshotCacheOptions opt = {}) : opt_(opt) {
    for (Shard& s : shards_) {
      s.id = detail::snapshot_next_shard_id();
      s.snap = std::make_shared<const Map>();
    }
  }
  SnapshotCache(const SnapshotCache&) = delete;
  SnapshotCache& operator=(const SnapshotCache&) = delete;

  bool snapshots_enabled() const { return opt_.snapshots; }

  /// Value for `key`, or nullopt. Snapshot mode: lock-free, zero shared
  /// writes when the calling thread's slot is current.
  std::optional<V> find(std::string_view key) const {
    const Shard& s = shard_for(key);
    if (!opt_.snapshots) {
      detail::lock_reporting_wait(s.mu, opt_.lock_wait_ns);
      std::lock_guard<std::mutex> guard(s.mu, std::adopt_lock);
      auto it = s.plain.find(key);
      if (it == s.plain.end()) return std::nullopt;
      return it->second;
    }
    const Map* m = acquire(s);
    auto it = m->find(key);
    if (it == m->end()) return std::nullopt;
    return it->second;
  }

  bool contains(std::string_view key) const { return find(key).has_value(); }

  /// Publishes key -> value. A key already present is left untouched
  /// (values are deterministic per key, so first-write-wins is exact).
  void insert(std::string_view key, const V& value) {
    Shard& s = shard_for(key);
    detail::lock_reporting_wait(s.mu, opt_.lock_wait_ns);
    std::lock_guard<std::mutex> guard(s.mu, std::adopt_lock);
    if (!opt_.snapshots) {
      if (s.plain.size() >= per_shard_bound()) s.plain.clear();
      s.plain.emplace(std::string(key), value);
      return;
    }
    if (s.snap->find(key) != s.snap->end()) return;
    auto next = std::make_shared<Map>(*s.snap);
    if (next->size() >= per_shard_bound()) next->clear();
    next->emplace(std::string(key), value);
    s.snap = std::move(next);
    // Release pairs with the acquire in acquire(): a reader seeing the
    // new version refreshes under s.mu and therefore sees the new map.
    s.version.fetch_add(1, std::memory_order_release);
  }

  /// Entry count (sums shards; approximate under concurrent writers).
  size_t size() const {
    size_t total = 0;
    for (const Shard& s : shards_) {
      std::scoped_lock lock(s.mu);
      total += opt_.snapshots ? s.snap->size() : s.plain.size();
    }
    return total;
  }

 private:
  static constexpr size_t kShards = 4;

  struct Shard {
    mutable std::mutex mu;  // writers; locked-mode readers; slot refresh
    std::shared_ptr<const Map> snap;         // current snapshot (snapshot mode)
    std::atomic<std::uint64_t> version{1};   // bumped per republish
    Map plain;                               // locked mode storage
    std::uint64_t id = 0;                    // process-unique, never reused
  };

  size_t per_shard_bound() const {
    size_t b = opt_.max_entries / kShards;
    return b == 0 ? 1 : b;
  }

  Shard& shard_for(std::string_view key) {
    return shards_[detail::TransparentStringHash{}(key) % kShards];
  }
  const Shard& shard_for(std::string_view key) const {
    return shards_[detail::TransparentStringHash{}(key) % kShards];
  }

  /// The calling thread's view of shard `s`, refreshed if a writer has
  /// republished. Hit path: one acquire load + a thread-private probe.
  const Map* acquire(const Shard& s) const {
    std::uint64_t v = s.version.load(std::memory_order_acquire);
    detail::SnapshotTlsSlot* slot = detail::snapshot_tls_find(s.id);
    if (slot != nullptr && slot->version == v) {
      return static_cast<const Map*>(slot->map);
    }
    // Stale or first touch: re-read snapshot + version coherently under
    // the shard mutex (writers republish under the same mutex).
    std::shared_ptr<const Map> snap;
    {
      detail::lock_reporting_wait(s.mu, opt_.lock_wait_ns);
      std::lock_guard<std::mutex> guard(s.mu, std::adopt_lock);
      snap = s.snap;
      v = s.version.load(std::memory_order_relaxed);
    }
    const Map* raw = snap.get();
    if (slot != nullptr) {
      slot->version = v;
      slot->map = raw;
      slot->holder = std::move(snap);
    } else {
      detail::snapshot_tls_insert(
          detail::SnapshotTlsSlot{s.id, v, std::move(snap), raw});
    }
    return raw;
  }

  SnapshotCacheOptions opt_;
  Shard shards_[kShards];
};

}  // namespace tre
