// Parallel fan-out for the batch APIs, on a PERSISTENT worker pool.
//
// The TRE workloads that batch well (encrypt_batch over one tag, bulk
// key-update issuance, receiver fan-out) share only immutable inputs, so
// the orchestration they need is an index loop distributed over threads.
// Two things make this version cheap enough for ms-scale batches:
//
//   * The pool is lazily created once per process and reused: a
//     parallel_for call costs one queue push + condvar notify instead of
//     spawning and joining std::threads per batch.
//   * Work is handed out through a CHUNKED atomic ticket: workers grab
//     contiguous index ranges with one fetch_add, so per-item overhead is
//     a function call, not a cache-line bounce. The calling thread always
//     participates (it is worker 0), which also makes nested
//     parallel_for calls deadlock-free: a caller never blocks waiting for
//     pool capacity, it chews through its own ticket.
//
// parallel_for is a template over the callable: the per-item invocation
// is a direct (inlinable) call on the caller's lambda type; only the
// pool boundary erases the type, through a non-owning, non-allocating
// IndexFnRef (the callable outlives the blocking call by construction).
//
// Determinism: `max_threads = 1` runs serially on the caller;
// any other value only caps concurrency — outputs must not depend on the
// schedule (every TRE batch writes out[i] from input i alone).
// The pool size can be pinned with the TRE_POOL_THREADS environment
// variable (read once, at first use).
#pragma once

#include <cstddef>
#include <type_traits>
#include <utility>

namespace tre {

/// Non-owning reference to a `void(size_t)` callable. The referenced
/// callable must outlive every call — parallel_for blocks until the loop
/// completes, so stack lambdas are safe.
class IndexFnRef {
 public:
  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, IndexFnRef>>>
  IndexFnRef(F&& fn) noexcept  // NOLINT: implicit by design (function_ref idiom)
      : obj_(const_cast<void*>(static_cast<const void*>(&fn))),
        call_([](void* obj, size_t i) {
          (*static_cast<std::remove_reference_t<F>*>(obj))(i);
        }) {}

  void operator()(size_t i) const { call_(obj_, i); }

 private:
  void* obj_;
  void (*call_)(void*, size_t);
};

/// Number of workers parallel_for would use for `n` items under `max_threads`
/// (0 = std::thread::hardware_concurrency). Always in [1, n] for n > 0.
unsigned parallel_workers(size_t n, unsigned max_threads);

/// Worker threads the persistent pool owns (0 before first parallel use
/// and on single-core hosts; the caller thread is not counted).
unsigned pool_thread_count();

namespace detail {
/// Pool entry point: distributes [0, n) over up to `max_workers`
/// participants (callers + pool workers) and blocks until done. The
/// first exception thrown by any participant is rethrown on the caller.
void parallel_run(size_t n, IndexFnRef fn, unsigned max_workers);
}  // namespace detail

/// Runs fn(i) for every i in [0, n), fanning out across up to `max_threads`
/// threads (0 = hardware_concurrency; 1 = run serially on the caller).
/// `fn` must be safe to call concurrently for distinct i. The first
/// exception thrown by any worker is rethrown on the caller after the
/// loop has drained. Accepts any callable — no std::function type
/// erasure on the per-item path.
template <typename F>
void parallel_for(size_t n, F&& fn, unsigned max_threads = 0) {
  if (n == 0) return;
  const unsigned workers = parallel_workers(n, max_threads);
  if (workers == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  detail::parallel_run(n, IndexFnRef(fn), workers);
}

}  // namespace tre
