// Minimal fork-join fan-out for the batch APIs.
//
// The TRE workloads that batch well (encrypt_batch over one tag, bulk
// key-update issuance, receiver fan-out) share only immutable inputs, so a
// plain atomic work counter over std::threads is all the pool the hot
// paths need. Sized by hardware_concurrency by default; callers pass an
// explicit cap to stay deterministic in tests or to co-exist with an
// outer pool.
#pragma once

#include <cstddef>
#include <functional>

namespace tre {

/// Number of workers parallel_for would use for `n` items under `max_threads`
/// (0 = std::thread::hardware_concurrency). Always in [1, n] for n > 0.
unsigned parallel_workers(size_t n, unsigned max_threads);

/// Runs fn(i) for every i in [0, n), fanning out across up to `max_threads`
/// threads (0 = hardware_concurrency; 1 = run serially on the caller).
/// `fn` must be safe to call concurrently for distinct i. The first
/// exception thrown by any worker is rethrown on the caller after all
/// workers have joined.
void parallel_for(size_t n, const std::function<void(size_t)>& fn,
                  unsigned max_threads = 0);

}  // namespace tre
