#include "common/bytes.h"

#include <atomic>
#include <cstring>

#include "common/error.h"

namespace tre {

Bytes to_bytes(std::string_view s) { return Bytes(s.begin(), s.end()); }

std::string to_hex(ByteSpan data) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

namespace {
int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

Bytes from_hex(std::string_view hex) {
  require(hex.size() % 2 == 0, "from_hex: odd-length input");
  Bytes out(hex.size() / 2);
  for (size_t i = 0; i < out.size(); ++i) {
    int hi = hex_nibble(hex[2 * i]);
    int lo = hex_nibble(hex[2 * i + 1]);
    require(hi >= 0 && lo >= 0, "from_hex: non-hex character");
    out[i] = static_cast<std::uint8_t>(hi << 4 | lo);
  }
  return out;
}

Bytes concat(std::initializer_list<ByteSpan> parts) {
  size_t total = 0;
  for (const auto& p : parts) total += p.size();
  Bytes out;
  out.reserve(total);
  for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

void xor_inplace(std::span<std::uint8_t> a, ByteSpan b) {
  require(a.size() == b.size(), "xor_inplace: size mismatch");
  for (size_t i = 0; i < a.size(); ++i) a[i] ^= b[i];
}

Bytes xor_bytes(ByteSpan a, ByteSpan b) {
  require(a.size() == b.size(), "xor_bytes: size mismatch");
  Bytes out(a.begin(), a.end());
  xor_inplace(out, b);
  return out;
}

bool ct_equal(ByteSpan a, ByteSpan b) {
  if (a.size() != b.size()) return false;
  std::uint8_t diff = 0;
  for (size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

void secure_wipe(std::span<std::uint8_t> data) {
  // volatile pointer write defeats dead-store elimination.
  volatile std::uint8_t* p = data.data();
  for (size_t i = 0; i < data.size(); ++i) p[i] = 0;
  std::atomic_signal_fence(std::memory_order_seq_cst);
}

Bytes be64(std::uint64_t v) {
  Bytes out(8);
  for (int i = 7; i >= 0; --i) {
    out[static_cast<size_t>(i)] = static_cast<std::uint8_t>(v & 0xff);
    v >>= 8;
  }
  return out;
}

Bytes be32(std::uint32_t v) {
  Bytes out(4);
  for (int i = 3; i >= 0; --i) {
    out[static_cast<size_t>(i)] = static_cast<std::uint8_t>(v & 0xff);
    v >>= 8;
  }
  return out;
}

}  // namespace tre
