// Library health latch for the FIPS-style power-on self-test gate.
//
// Key-producing entry points (keygen, issue_update, seal/open, epoch-key
// derivation, keystore seal/open, the time-lock solver) call
// `health::ensure_operational()` before touching secret material. The
// first such call triggers the registered self-test runner once; if any
// known-answer test fails — a miscompiled kernel, a corrupted constant, a
// bit-flipped table — the poisoned state latches and every later gated
// call throws `tre::SelftestError` (Errc::kSelftestFailed) instead of
// producing secrets. See src/selftest/ for the runner and
// docs/ROBUSTNESS.md for the gate semantics.
//
// Layering: this header is the entire coupling between the core scheme
// and the self-test module. The runner (which exercises the full stack,
// both pairing backends included) registers itself from src/selftest/ via
// a static initializer; a binary that never links the self-test module
// simply runs ungated (state kOk on first use, nothing to run). Building
// with -DTRE_SELFTEST=OFF (macro TRE_SELFTEST_OFF) compiles every gate to
// an empty inline — the documented zero-overhead opt-out.
#pragma once

#include "common/error.h"

#ifndef TRE_SELFTEST_OFF
#include <atomic>
#include <mutex>
#endif

namespace tre::health {

#ifdef TRE_SELFTEST_OFF

inline constexpr bool enabled() { return false; }
inline bool poisoned() { return false; }
inline void ensure_operational() {}
inline void poison() {}
inline void register_runner(bool (*)()) {}
inline void reset_for_testing() {}

#else

inline constexpr bool enabled() { return true; }

namespace detail {

enum State : int { kUnchecked = 0, kRunning = 1, kOk = 2, kPoisoned = 3 };

inline std::atomic<int> g_state{kUnchecked};
/// The power-on runner, installed by src/selftest/ at static-init time.
/// Returns true when every known-answer test passed.
inline std::atomic<bool (*)()> g_runner{nullptr};
inline std::mutex g_mutex;

/// Slow path of ensure_operational(): runs the registered runner exactly
/// once (under the mutex; kRunning lets the runner's own gated calls —
/// the KATs exercise seal/open/keygen — pass through without recursing).
inline void run_power_on_locked() {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (g_state.load(std::memory_order_acquire) != kUnchecked) return;
  bool (*runner)() = g_runner.load(std::memory_order_acquire);
  if (runner == nullptr) {
    // No self-test module linked into this binary: run ungated.
    g_state.store(kOk, std::memory_order_release);
    return;
  }
  g_state.store(kRunning, std::memory_order_release);
  bool ok = false;
  try {
    ok = runner();
  } catch (...) {
    ok = false;  // a throwing KAT is a failing KAT
  }
  g_state.store(ok ? kOk : kPoisoned, std::memory_order_release);
}

}  // namespace detail

/// True once a self-test failure has latched.
inline bool poisoned() {
  return detail::g_state.load(std::memory_order_acquire) == detail::kPoisoned;
}

/// The gate. Hot-path cost when healthy: one acquire load and a
/// predictable branch.
inline void ensure_operational() {
  int s = detail::g_state.load(std::memory_order_acquire);
  if (s == detail::kOk || s == detail::kRunning) return;
  if (s == detail::kPoisoned) throw SelftestError();
  detail::run_power_on_locked();
  if (poisoned()) throw SelftestError();
}

/// Latches the poisoned state unconditionally (the self-test module calls
/// this when a KAT run fails after the power-on run; tests use it too).
inline void poison() {
  detail::g_state.store(detail::kPoisoned, std::memory_order_release);
}

/// Installs the power-on runner (idempotent; the self-test module's
/// static registrar is the only production caller).
inline void register_runner(bool (*runner)()) {
  detail::g_runner.store(runner, std::memory_order_release);
}

/// Returns the latch to the unchecked state so a test can re-run the
/// power-on sequence (fault-injection cases trip the gate on purpose and
/// must be able to clear it for the next case). Not for production use:
/// a real deployment never unlatches.
inline void reset_for_testing() {
  std::lock_guard<std::mutex> lock(detail::g_mutex);
  detail::g_state.store(detail::kUnchecked, std::memory_order_release);
}

#endif  // TRE_SELFTEST_OFF

}  // namespace tre::health
