// Byte-string utilities shared across the library.
//
// All protocol artifacts (hash inputs, ciphertexts, serialized group
// elements) are carried as `tre::Bytes`. Helpers here are deliberately
// small and allocation-honest; hot paths operate on spans.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace tre {

using Bytes = std::vector<std::uint8_t>;
using ByteSpan = std::span<const std::uint8_t>;

/// Builds a Bytes value from a text string (no encoding change).
Bytes to_bytes(std::string_view s);

/// Renders bytes as lowercase hex.
std::string to_hex(ByteSpan data);

/// Parses lowercase/uppercase hex; throws tre::Error on malformed input.
Bytes from_hex(std::string_view hex);

/// Concatenates any number of byte spans.
Bytes concat(std::initializer_list<ByteSpan> parts);

/// XORs `b` into `a` element-wise; requires equal sizes.
void xor_inplace(std::span<std::uint8_t> a, ByteSpan b);

/// Returns a XOR b; requires equal sizes.
Bytes xor_bytes(ByteSpan a, ByteSpan b);

/// Constant-time equality (for MACs / FO re-encryption checks).
bool ct_equal(ByteSpan a, ByteSpan b);

/// Best-effort secure zeroization that the optimizer cannot elide.
void secure_wipe(std::span<std::uint8_t> data);

/// Big-endian encoding of a 64-bit counter (used by KDFs and DEM).
Bytes be64(std::uint64_t v);

/// Big-endian encoding of a 32-bit counter.
Bytes be32(std::uint32_t v);

}  // namespace tre
