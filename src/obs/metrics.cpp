#include "obs/metrics.h"

#include <chrono>
#include <cstdio>
#include <vector>

namespace tre::obs {

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t Histogram::quantile_bound(double q) const noexcept {
  std::uint64_t total = count();
  if (total == 0) return 0;
  // Ceiling, clamped into [1, total]: q=1.0 lands on the last sample.
  auto rank = static_cast<std::uint64_t>(q * static_cast<double>(total));
  if (rank < 1) rank = 1;
  if (rank > total) rank = total;
  std::uint64_t cumulative = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    cumulative += bucket(b);
    if (cumulative >= rank) return bucket_bound(b);
  }
  return bucket_bound(kBuckets - 1);
}

Registry& Registry::global() {
  // Leaked on purpose: Span batches flush at thread exit, and a
  // destroyed registry would turn those flushes into use-after-free.
  static Registry* g = new Registry();
  return *g;
}

Counter& Registry::counter(std::string_view name) {
  std::scoped_lock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::scoped_lock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::scoped_lock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>()).first;
  }
  return *it->second;
}

std::uint64_t Registry::counter_value(std::string_view name) const {
  std::scoped_lock lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

std::int64_t Registry::gauge_value(std::string_view name) const {
  std::scoped_lock lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second->value();
}

void Registry::reset() {
  flush_this_thread();  // pending spans would otherwise resurrect post-reset
  std::scoped_lock lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

namespace {

// JSON string escaping for instrument names (metric names are plain
// dotted identifiers in practice; this keeps arbitrary names safe).
void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_u64(std::string& out, std::uint64_t v) {
  out += std::to_string(v);
}

}  // namespace

std::string Registry::to_json(int indent) const {
  flush_this_thread();
  const std::string margin(static_cast<size_t>(indent), ' ');
  std::string out;
  std::scoped_lock lock(mu_);

  out += margin + "{\n";
  out += margin + "  \"metrics_enabled\": ";
  out += kEnabled ? "true" : "false";
  out += ",\n";

  out += margin + "  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += margin + "    ";
    append_json_string(out, name);
    out += ": ";
    append_u64(out, c->value());
  }
  out += first ? "},\n" : "\n" + margin + "  },\n";

  out += margin + "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += margin + "    ";
    append_json_string(out, name);
    out += ": ";
    out += std::to_string(g->value());
  }
  out += first ? "},\n" : "\n" + margin + "  },\n";

  out += margin + "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += first ? "\n" : ",\n";
    first = false;
    std::uint64_t count = h->count();
    std::uint64_t sum = h->sum();
    out += margin + "    ";
    append_json_string(out, name);
    out += ": {\"count\": ";
    append_u64(out, count);
    out += ", \"sum\": ";
    append_u64(out, sum);
    out += ", \"mean\": ";
    char mean[32];
    std::snprintf(mean, sizeof mean, "%.3f",
                  count == 0 ? 0.0
                             : static_cast<double>(sum) / static_cast<double>(count));
    out += mean;
    out += ", \"p50\": ";
    append_u64(out, h->quantile_bound(0.50));
    out += ", \"p95\": ";
    append_u64(out, h->quantile_bound(0.95));
    out += ", \"p99\": ";
    append_u64(out, h->quantile_bound(0.99));
    out += "}";
  }
  out += first ? "}\n" : "\n" + margin + "  }\n";

  out += margin + "}";
  return out;
}

// --- Span thread-local batching ----------------------------------------------

#if TRE_METRICS_ENABLED

namespace {

// How many records a thread may hold back before publishing. Small
// enough that snapshots lag negligibly, large enough that a hot loop
// touches shared cache lines ~2% of the time.
constexpr std::uint32_t kSpanFlushEvery = 64;

struct SpanBatch {
  Histogram* h = nullptr;  // most recently used histogram (single slot)
  std::uint64_t buckets[Histogram::kBuckets] = {};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;

  void flush() noexcept {
    if (h == nullptr || count == 0) return;
    h->merge(buckets, count, sum);
    for (auto& b : buckets) b = 0;
    count = 0;
    sum = 0;
  }

  void record(Histogram* target, std::uint64_t ns) noexcept {
    if (target != h) {
      flush();
      h = target;
    }
    buckets[Histogram::bucket_of(ns)] += 1;
    count += 1;
    sum += ns;
    if (count >= kSpanFlushEvery) flush();
  }

  ~SpanBatch() { flush(); }  // thread exit publishes the tail
};

SpanBatch& tls_batch() noexcept {
  thread_local SpanBatch batch;
  return batch;
}

}  // namespace

void Span::record_batched(Histogram* h, std::uint64_t ns) noexcept {
  tls_batch().record(h, ns);
}

void flush_this_thread() noexcept { tls_batch().flush(); }

#else

void flush_this_thread() noexcept {}

#endif  // TRE_METRICS_ENABLED

}  // namespace tre::obs
