#include "obs/metrics.h"

#include <chrono>
#include <cstdio>
#include <vector>

namespace tre::obs {

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t Histogram::quantile_bound(double q) const noexcept {
  std::uint64_t total = count();
  if (total == 0) return 0;
  // Ceiling, clamped into [1, total]: q=1.0 lands on the last sample.
  auto rank = static_cast<std::uint64_t>(q * static_cast<double>(total));
  if (rank < 1) rank = 1;
  if (rank > total) rank = total;
  std::uint64_t cumulative = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    cumulative += bucket(b);
    if (cumulative >= rank) return bucket_bound(b);
  }
  return bucket_bound(kBuckets - 1);
}

Registry& Registry::global() {
  // Leaked on purpose: Span batches flush at thread exit, and a
  // destroyed registry would turn those flushes into use-after-free.
  static Registry* g = new Registry();
  return *g;
}

namespace {

// Lock `mu`, recording the wait into `contended` only when the lock was
// actually contested (try_lock failed). Uncontended registrations — the
// overwhelming majority — never touch the clock.
std::unique_lock<std::mutex> lock_timed(std::mutex& mu, Histogram& contended) {
  std::unique_lock<std::mutex> lock(mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    const std::uint64_t t0 = now_ns();
    lock.lock();
    contended.record(now_ns() - t0);  // relaxed atomics; safe under the lock
  }
  return lock;
}

}  // namespace

Registry::Registry() {
  // Publish the first generation eagerly so readers never see a null
  // index; it already carries the built-in lock-wait histogram.
  std::scoped_lock lock(mu_);
  republish_locked();
}

Registry::~Registry() = default;

void Registry::republish_locked() {
  auto next = std::make_unique<Index>();
  for (const auto& [name, c] : counters_) next->counters.emplace(name, c.get());
  for (const auto& [name, g] : gauges_) next->gauges.emplace(name, g.get());
  for (const auto& [name, h] : histograms_) next->histograms.emplace(name, h.get());
  next->histograms.emplace("registry.lock_wait", &lock_wait_);
  index_.store(next.get(), std::memory_order_release);
  retired_.push_back(std::move(next));
}

Counter& Registry::counter(std::string_view name) {
  const Index* idx = index();
  if (auto it = idx->counters.find(name); it != idx->counters.end()) {
    return *it->second;
  }
  auto lock = lock_timed(mu_, lock_wait_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
    republish_locked();
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  const Index* idx = index();
  if (auto it = idx->gauges.find(name); it != idx->gauges.end()) {
    return *it->second;
  }
  auto lock = lock_timed(mu_, lock_wait_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
    republish_locked();
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  const Index* idx = index();
  if (auto it = idx->histograms.find(name); it != idx->histograms.end()) {
    return *it->second;  // includes the built-in "registry.lock_wait"
  }
  auto lock = lock_timed(mu_, lock_wait_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>()).first;
    republish_locked();
  }
  return *it->second;
}

std::uint64_t Registry::counter_value(std::string_view name) const {
  const Index* idx = index();
  auto it = idx->counters.find(name);
  return it == idx->counters.end() ? 0 : it->second->value();
}

std::int64_t Registry::gauge_value(std::string_view name) const {
  const Index* idx = index();
  auto it = idx->gauges.find(name);
  return it == idx->gauges.end() ? 0 : it->second->value();
}

void Registry::reset() {
  flush_this_thread();  // pending spans would otherwise resurrect post-reset
  const Index* idx = index();
  for (const auto& [name, c] : idx->counters) c->reset();
  for (const auto& [name, g] : idx->gauges) g->reset();
  for (const auto& [name, h] : idx->histograms) h->reset();
}

namespace {

// JSON string escaping for instrument names (metric names are plain
// dotted identifiers in practice; this keeps arbitrary names safe).
void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_u64(std::string& out, std::uint64_t v) {
  out += std::to_string(v);
}

}  // namespace

std::string Registry::to_json(int indent) const {
  flush_this_thread();
  const std::string margin(static_cast<size_t>(indent), ' ');
  std::string out;
  // Lock-free: serializes the published index snapshot. The built-in
  // "registry.lock_wait" histogram is part of every generation.
  const Index* idx = index();

  out += margin + "{\n";
  out += margin + "  \"metrics_enabled\": ";
  out += kEnabled ? "true" : "false";
  out += ",\n";

  out += margin + "  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : idx->counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += margin + "    ";
    append_json_string(out, name);
    out += ": ";
    append_u64(out, c->value());
  }
  out += first ? "},\n" : "\n" + margin + "  },\n";

  out += margin + "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : idx->gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += margin + "    ";
    append_json_string(out, name);
    out += ": ";
    out += std::to_string(g->value());
  }
  out += first ? "},\n" : "\n" + margin + "  },\n";

  out += margin + "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : idx->histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    std::uint64_t count = h->count();
    std::uint64_t sum = h->sum();
    out += margin + "    ";
    append_json_string(out, name);
    out += ": {\"count\": ";
    append_u64(out, count);
    out += ", \"sum\": ";
    append_u64(out, sum);
    out += ", \"mean\": ";
    char mean[32];
    std::snprintf(mean, sizeof mean, "%.3f",
                  count == 0 ? 0.0
                             : static_cast<double>(sum) / static_cast<double>(count));
    out += mean;
    out += ", \"p50\": ";
    append_u64(out, h->quantile_bound(0.50));
    out += ", \"p95\": ";
    append_u64(out, h->quantile_bound(0.95));
    out += ", \"p99\": ";
    append_u64(out, h->quantile_bound(0.99));
    out += "}";
  }
  out += first ? "}\n" : "\n" + margin + "  }\n";

  out += margin + "}";
  return out;
}

// --- Span thread-local batching ----------------------------------------------

#if TRE_METRICS_ENABLED

namespace {

// How many records a thread may hold back before publishing. Small
// enough that snapshots lag negligibly, large enough that a hot loop
// touches shared cache lines ~2% of the time.
constexpr std::uint32_t kSpanFlushEvery = 64;

struct SpanBatch {
  Histogram* h = nullptr;  // most recently used histogram (single slot)
  std::uint64_t buckets[Histogram::kBuckets] = {};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;

  void flush() noexcept {
    if (h == nullptr || count == 0) return;
    h->merge(buckets, count, sum);
    for (auto& b : buckets) b = 0;
    count = 0;
    sum = 0;
  }

  void record(Histogram* target, std::uint64_t ns) noexcept {
    if (target != h) {
      flush();
      h = target;
    }
    buckets[Histogram::bucket_of(ns)] += 1;
    count += 1;
    sum += ns;
    if (count >= kSpanFlushEvery) flush();
  }

  ~SpanBatch() { flush(); }  // thread exit publishes the tail
};

SpanBatch& tls_batch() noexcept {
  thread_local SpanBatch batch;
  return batch;
}

}  // namespace

void Span::record_batched(Histogram* h, std::uint64_t ns) noexcept {
  tls_batch().record(h, ns);
}

void flush_this_thread() noexcept { tls_batch().flush(); }

#else

void flush_this_thread() noexcept {}

#endif  // TRE_METRICS_ENABLED

}  // namespace tre::obs
