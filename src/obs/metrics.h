// Low-overhead observability: named instruments, scoped spans, JSON export.
//
// Two layers with different cost/compile-time contracts:
//
//   * Instruments (`Counter`, `Gauge`, `Histogram`) and the `Registry`
//     that names them are ALWAYS functional, in every build. They back
//     API-level accounting — `client::FetchStats`, the mirror archive's
//     poll counters, `simnet::Network::Stats` — which is protocol-visible
//     data, not telemetry, and must stay exact even when metrics are
//     compiled out. Updates are relaxed atomics: lock-free, no ordering,
//     safe under concurrent readers/writers (TSan-clean by construction).
//
//   * Probes (`CounterProbe`, `HistogramProbe`, `Span`) are the telemetry
//     hooks threaded through the hot paths. They resolve a name in the
//     GLOBAL registry once (cached in a handle) and then cost one relaxed
//     atomic add — or, for `Span`, one clock read at each end plus a
//     thread-local batch update. Under `-DTRE_METRICS=OFF` every probe
//     type collapses to an empty struct with inline no-op members: the
//     call sites stay unconditional and the optimizer deletes them.
//
// Span aggregation: a Span records elapsed nanoseconds into a histogram
// through a thread-local batch (per-thread bucket deltas for the most
// recently used histogram). The hot path therefore touches no shared
// cache line at all on most records; the batch flushes to the shared
// atomics every kSpanFlushEvery records, when the thread switches
// histograms, at thread exit, and whenever the calling thread snapshots
// the registry. Cross-thread snapshots may lag by at most one batch.
// Histograms used with Span must outlive recording threads; the global
// registry is intentionally leaked so thread-exit flushes are always
// safe.
//
// Buckets are log₂: bucket b counts values v with bit_width(v) == b,
// i.e. [2^(b-1), 2^b); bucket 0 counts v == 0. Quantiles reported by
// to_json are bucket upper bounds (at most 2x the true value — the
// standard trade for fixed-size lock-free histograms).
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#ifndef TRE_METRICS_ENABLED
#define TRE_METRICS_ENABLED 1
#endif

namespace tre::obs {

/// Compile-time kill switch state (the CMake option TRE_METRICS).
inline constexpr bool kEnabled = TRE_METRICS_ENABLED != 0;

// --- Instruments (always functional) -----------------------------------------

/// Monotonic counter. Relaxed atomic increments; never decremented.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins signed level (queue depths, cache sizes).
class Gauge {
 public:
  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) noexcept { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Log₂-bucketed histogram of non-negative samples (latencies in ns,
/// sizes in bytes). Fixed storage, lock-free recording.
class Histogram {
 public:
  static constexpr size_t kBuckets = 65;  // bit_width(v) in [0, 64]

  static size_t bucket_of(std::uint64_t v) noexcept {
    return static_cast<size_t>(std::bit_width(v));
  }
  /// Largest value the bucket admits (its reported quantile bound).
  static std::uint64_t bucket_bound(size_t b) noexcept {
    if (b == 0) return 0;
    if (b >= 64) return ~std::uint64_t{0};
    return (std::uint64_t{1} << b) - 1;
  }

  void record(std::uint64_t v) noexcept {
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  /// Bulk merge (the Span thread-local batch flush path).
  void merge(const std::uint64_t (&bucket_deltas)[kBuckets], std::uint64_t count,
             std::uint64_t sum) noexcept {
    for (size_t b = 0; b < kBuckets; ++b) {
      if (bucket_deltas[b] != 0) {
        buckets_[b].fetch_add(bucket_deltas[b], std::memory_order_relaxed);
      }
    }
    count_.fetch_add(count, std::memory_order_relaxed);
    sum_.fetch_add(sum, std::memory_order_relaxed);
  }

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(size_t b) const noexcept {
    return buckets_[b].load(std::memory_order_relaxed);
  }

  /// Upper bound of the smallest bucket whose cumulative count reaches
  /// `q` (0 < q <= 1) of the total; 0 when empty.
  std::uint64_t quantile_bound(double q) const noexcept;

  void reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

// --- Registry ----------------------------------------------------------------

/// Named instruments plus JSON snapshot export. Instantiable: components
/// with per-instance accounting (a mirror cluster, a fetcher) own a
/// private registry; fleet-wide telemetry lives in `Registry::global()`.
///
/// Concurrency: the name->instrument index is an immutable snapshot
/// published through an atomic pointer (read-copy-update). Lookups of
/// already-registered names — the `counter(name)` fast path, and every
/// snapshot read (`counter_value`, `gauge_value`, `to_json`, `reset`) —
/// are one acquire load plus a map walk: lock-free, no shared writes.
/// Only first-time registration takes `mu_`, copies the index, and
/// republishes. Contended registration waits are recorded (in ns) into
/// the built-in "registry.lock_wait" histogram; its count is the number
/// of contended acquisitions. Instrument addresses are stable for the
/// registry's lifetime — resolve once and keep the reference.
class Registry {
 public:
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Process-wide registry. Never destroyed (leaked on purpose) so
  /// thread-exit Span flushes and static-destruction-order are non-issues.
  static Registry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Value of a named counter; 0 when it was never registered (so
  /// metrics-off readers degrade to zeros instead of branching).
  /// Lock-free: reads the published index snapshot.
  std::uint64_t counter_value(std::string_view name) const;
  std::int64_t gauge_value(std::string_view name) const;

  /// Snapshot as a JSON object, matching the hand-rolled BENCH_*.json
  /// style (string keys, numeric leaves):
  ///   {
  ///     "counters": {"core.pairings": 12, ...},
  ///     "gauges": {...},
  ///     "histograms": {"core.encrypt_ns": {"count": n, "sum": s,
  ///                    "mean": m, "p50": ..., "p95": ..., "p99": ...}}
  ///   }
  /// `indent` is the left margin (spaces) applied to every line, so the
  /// block can be embedded in an enclosing JSON document. Flushes the
  /// calling thread's Span batch first.
  std::string to_json(int indent = 0) const;

  /// Zeroes every registered instrument (bench runs that want per-phase
  /// deltas). Handles stay valid. Lock-free: walks the published index,
  /// so an instrument whose registration races with reset() may keep its
  /// pre-reset value — benign for the bench/test use this serves.
  void reset();

 private:
  // Immutable name->instrument view. Readers hold it only for the
  // duration of one call; superseded generations are retired (kept
  // alive) until the registry dies, so a pointer loaded by a racing
  // reader can never dangle. Registration is rare and bounded (probe
  // sites resolve once), so retired generations cost a few map nodes.
  struct Index {
    std::map<std::string, Counter*, std::less<>> counters;
    std::map<std::string, Gauge*, std::less<>> gauges;
    std::map<std::string, Histogram*, std::less<>> histograms;
  };

  const Index* index() const noexcept {
    return index_.load(std::memory_order_acquire);
  }
  /// Rebuilds the index from the owning maps and publishes it. Caller
  /// holds mu_.
  void republish_locked();

  mutable std::mutex mu_;
  // Stable addresses (unique_ptr), deterministic JSON order (std::map).
  // Owning maps are written under mu_ only; readers go through index_.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::atomic<const Index*> index_{nullptr};
  std::vector<std::unique_ptr<const Index>> retired_;  // all generations, owned
  // Built-in: nanoseconds spent blocked on mu_ by contended
  // registrations. A direct member (not in the owning maps) so recording
  // it never re-enters registration; seeded into every index generation
  // as "registry.lock_wait".
  Histogram lock_wait_;
};

/// Flushes the calling thread's pending Span batch into its histogram.
/// No-op when metrics are compiled out or nothing is pending.
void flush_this_thread() noexcept;

/// Monotonic nanosecond clock used by Span (exposed for tests/benches).
std::uint64_t now_ns() noexcept;

// --- Probes (compiled to nothing under TRE_METRICS=OFF) ----------------------

#if TRE_METRICS_ENABLED

/// Cached handle to a global-registry counter. Resolve once (static
/// local at the probe site), then add() is one relaxed atomic.
class CounterProbe {
 public:
  explicit CounterProbe(std::string_view name)
      : c_(&Registry::global().counter(name)) {}
  void add(std::uint64_t n = 1) const noexcept { c_->add(n); }

 private:
  Counter* c_;
};

/// Cached handle to a global-registry histogram.
class HistogramProbe {
 public:
  explicit HistogramProbe(std::string_view name)
      : h_(&Registry::global().histogram(name)) {}
  void record(std::uint64_t v) const noexcept { h_->record(v); }
  Histogram* get() const noexcept { return h_; }

 private:
  Histogram* h_;
};

/// RAII scoped timer: records elapsed ns into `probe`'s histogram via
/// the thread-local batch on destruction (or stop()).
class Span {
 public:
  explicit Span(const HistogramProbe& probe) noexcept
      : h_(probe.get()), start_(now_ns()) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { stop(); }

  /// Ends the span early; idempotent.
  void stop() noexcept {
    if (h_ == nullptr) return;
    record_batched(h_, now_ns() - start_);
    h_ = nullptr;
  }

 private:
  static void record_batched(Histogram* h, std::uint64_t ns) noexcept;

  Histogram* h_;
  std::uint64_t start_;
};

#else  // TRE_METRICS_ENABLED == 0: every probe is an inline no-op.

class CounterProbe {
 public:
  explicit CounterProbe(std::string_view) noexcept {}
  void add(std::uint64_t = 1) const noexcept {}
};

class HistogramProbe {
 public:
  explicit HistogramProbe(std::string_view) noexcept {}
  void record(std::uint64_t) const noexcept {}
};

class Span {
 public:
  explicit Span(const HistogramProbe&) noexcept {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  void stop() noexcept {}
};

#endif  // TRE_METRICS_ENABLED

}  // namespace tre::obs
