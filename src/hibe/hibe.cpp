#include "hibe/hibe.h"

#include "pairing/pairing.h"

namespace tre::hibe {

using ec::G1Point;
using pairing::Gt;

namespace {

// Collision-free path encoding: u16 length prefix per component, so
// ("ab","c") and ("a","bc") hash to different points.
Bytes encode_path(const IdPath& path, size_t depth) {
  Bytes out = to_bytes("HIBE-PATH");
  for (size_t i = 0; i < depth; ++i) {
    require(path[i].size() <= 0xffff, "GsHibe: path component too long");
    out.push_back(static_cast<std::uint8_t>(path[i].size() >> 8));
    out.push_back(static_cast<std::uint8_t>(path[i].size() & 0xff));
    out.insert(out.end(), path[i].begin(), path[i].end());
  }
  return out;
}

}  // namespace

Bytes NodeKey::to_bytes(const params::GdhParams& params) const {
  require(path.size() <= 255 && q.size() + 1 == path.size(),
          "NodeKey::to_bytes: malformed key");
  Bytes out;
  out.push_back(static_cast<std::uint8_t>(path.size()));
  for (const auto& component : path) {
    require(component.size() <= 0xffff, "NodeKey::to_bytes: component too long");
    out.push_back(static_cast<std::uint8_t>(component.size() >> 8));
    out.push_back(static_cast<std::uint8_t>(component.size() & 0xff));
    out.insert(out.end(), component.begin(), component.end());
  }
  Bytes sb = s.to_bytes_compressed();
  out.insert(out.end(), sb.begin(), sb.end());
  for (const auto& qi : q) {
    Bytes qb = qi.to_bytes_compressed();
    out.insert(out.end(), qb.begin(), qb.end());
  }
  out.push_back(can_derive ? 1 : 0);
  if (can_derive) {
    Bytes secret_bytes = secret.to_bytes_be(params.scalar_bytes());
    out.insert(out.end(), secret_bytes.begin(), secret_bytes.end());
  }
  return out;
}

NodeKey NodeKey::from_bytes(const params::GdhParams& params, ByteSpan bytes) {
  size_t off = 0;
  auto need = [&](size_t n, const char* what) {
    require(off + n <= bytes.size(), what);
  };
  need(1, "NodeKey: truncated depth");
  size_t depth = bytes[off++];
  require(depth >= 1, "NodeKey: empty path");
  NodeKey key;
  for (size_t i = 0; i < depth; ++i) {
    need(2, "NodeKey: truncated component length");
    size_t len = static_cast<size_t>(bytes[off]) << 8 | bytes[off + 1];
    off += 2;
    need(len, "NodeKey: truncated component");
    key.path.emplace_back(bytes.begin() + static_cast<long>(off),
                          bytes.begin() + static_cast<long>(off + len));
    off += len;
  }
  size_t w = params.g1_compressed_bytes();
  auto read_point = [&](const char* what) {
    need(w, what);
    ec::G1Point p = ec::G1Point::from_bytes(params.ctx(), bytes.subspan(off, w));
    require(p.in_subgroup(), "NodeKey: point outside the order-q subgroup");
    off += w;
    return p;
  };
  key.s = read_point("NodeKey: truncated S");
  for (size_t i = 0; i + 1 < depth; ++i) key.q.push_back(read_point("NodeKey: truncated Q"));
  need(1, "NodeKey: truncated flag");
  std::uint8_t flag = bytes[off++];
  require(flag <= 1, "NodeKey: bad derivation flag");
  key.can_derive = flag == 1;
  if (key.can_derive) {
    need(params.scalar_bytes(), "NodeKey: truncated secret");
    key.secret = Scalar::from_bytes_be(bytes.subspan(off, params.scalar_bytes()));
    off += params.scalar_bytes();
    require(!key.secret.is_zero() && key.secret < params.group_order(),
            "NodeKey: invalid derivation secret");
  }
  require(off == bytes.size(), "NodeKey: trailing bytes");
  return key;
}

GsHibe::GsHibe(std::shared_ptr<const params::GdhParams> params)
    : params_(params), mask_(params) {
  require(params_ != nullptr, "GsHibe: null params");
}

RootKey GsHibe::setup(tre::hashing::RandomSource& rng) const {
  Scalar h = params::random_scalar(*params_, rng);
  Scalar s0 = params::random_scalar(*params_, rng);
  G1Point p0 = params_->base.mul(h);
  return RootKey{s0, p0, p0.mul(s0)};
}

G1Point GsHibe::path_point(const IdPath& path) const {
  require(!path.empty(), "GsHibe: empty path");
  return ec::hash_to_g1(params_->ctx(), encode_path(path, path.size()));
}

NodeKey GsHibe::extract_root_child(const RootKey& root, std::string_view id,
                                   const Scalar& child_secret) const {
  require(!child_secret.is_zero(), "GsHibe: zero child secret");
  NodeKey key;
  key.path = {std::string(id)};
  key.s = path_point(key.path).mul(root.s0);
  key.secret = child_secret;
  key.can_derive = true;
  return key;
}

NodeKey GsHibe::derive_child(const G1Point& p0, const NodeKey& parent,
                             std::string_view id, const Scalar& child_secret) const {
  require(parent.can_derive, "GsHibe: parent key has no derivation secret");
  require(!child_secret.is_zero(), "GsHibe: zero child secret");
  NodeKey key;
  key.path = parent.path;
  key.path.emplace_back(id);
  key.s = parent.s + path_point(key.path).mul(parent.secret);
  key.q = parent.q;
  key.q.push_back(p0.mul(parent.secret));  // Q_t = s_t·P0
  key.secret = child_secret;
  key.can_derive = true;
  return key;
}

bool GsHibe::verify_node_key(const RootPublicKey& root, const NodeKey& key) const {
  if (key.path.empty() || key.q.size() + 1 != key.path.size()) return false;
  if (key.s.is_infinity()) return false;
  // ê(P0, S_t) == ê(Q0, P_1) · Π_{i=2..t} ê(Q_{i-1}, P_i)
  std::vector<std::pair<G1Point, G1Point>> pairs;
  pairs.emplace_back(root.p0, key.s);
  pairs.emplace_back(-root.q0, path_point(IdPath(key.path.begin(), key.path.begin() + 1)));
  for (size_t i = 2; i <= key.path.size(); ++i) {
    IdPath prefix(key.path.begin(), key.path.begin() + static_cast<long>(i));
    pairs.emplace_back(-key.q[i - 2], path_point(prefix));
  }
  return pairing::pair_product(pairs).is_one();
}

HibeCiphertext GsHibe::encrypt(ByteSpan msg, const IdPath& path,
                               const RootPublicKey& root,
                               tre::hashing::RandomSource& rng) const {
  require(!path.empty(), "GsHibe: empty path");
  Scalar r = params::random_scalar(*params_, rng);
  HibeCiphertext ct;
  ct.u0 = root.p0.mul(r);
  for (size_t i = 2; i <= path.size(); ++i) {
    IdPath prefix(path.begin(), path.begin() + static_cast<long>(i));
    ct.us.push_back(path_point(prefix).mul(r));
  }
  Gt g = pairing::pair(root.q0, path_point(IdPath(path.begin(), path.begin() + 1)));
  ct.v = xor_bytes(msg, mask_.mask_h2(g.pow(r), msg.size()));
  return ct;
}

Bytes GsHibe::decrypt(const HibeCiphertext& ct, const NodeKey& key) const {
  require(ct.us.size() + 1 == key.path.size() && key.q.size() == ct.us.size(),
          "GsHibe: ciphertext depth does not match key depth");
  // K = ê(U0, S_t) · Π ê(Q_{i-1}, U_i)^{-1}, one final exponentiation.
  std::vector<std::pair<G1Point, G1Point>> pairs;
  pairs.emplace_back(ct.u0, key.s);
  for (size_t i = 0; i < ct.us.size(); ++i) {
    pairs.emplace_back(-key.q[i], ct.us[i]);
  }
  Gt k = pairing::pair_product(pairs);
  return xor_bytes(ct.v, mask_.mask_h2(k, ct.v.size()));
}

}  // namespace tre::hibe
