// Gentry-Silverberg hierarchical IBE (BasicHIDE) over the GDH group.
//
// The paper's §6 names hierarchical IBE (via [7]) as the route to
// missing-update resilience; this is the underlying HIBE, built on the
// same symmetric pairing as everything else.
//
//   root     : secret s_0, public (P_0, Q_0 = s_0·P_0)
//   identity : a path (id_1, ..., id_t); P_i = H1(id_1 / ... / id_i)
//   node key : S_t = Σ_{i=1..t} s_{i-1}·P_i  and  Q_i = s_i·P_0 (i < t),
//              where s_i is the level-i ancestor's secret
//   derive   : S_{t+1} = S_t + s_t·P_{t+1}; append Q_t = s_t·P_0
//   encrypt  : ⟨rP_0, rP_2, ..., rP_t, M ⊕ H2(ê(Q_0, P_1)^r)⟩
//   decrypt  : K = ê(U_0, S_t) · Π_{i=2..t} ê(Q_{i-1}, U_i)^{-1}
//
// Like all identity-based schemes this one is escrowed by the root; the
// timeserver/hierarchical.h wrapper removes the escrow for the TRE use
// by binding the session key to the receiver's secret exactly as §5.1
// does (K raised to the receiver's a).
#pragma once

#include <string>
#include <vector>

#include "core/tre.h"

namespace tre::hibe {

using core::Scalar;
using IdPath = std::vector<std::string>;

struct RootKey {
  Scalar s0;
  ec::G1Point p0;  // generator
  ec::G1Point q0;  // s0·P0
};

struct RootPublicKey {
  ec::G1Point p0;
  ec::G1Point q0;
};

/// Private key material of a node in the hierarchy. `secret` is the
/// node's own s_t, needed only to derive children; a key stripped of it
/// (see without_derivation()) can decrypt but not extend the hierarchy.
struct NodeKey {
  IdPath path;
  ec::G1Point s;               // S_t
  std::vector<ec::G1Point> q;  // Q_1 .. Q_{t-1}
  Scalar secret;               // s_t; zero when derivation is stripped
  bool can_derive = false;

  NodeKey without_derivation() const {
    NodeKey copy = *this;
    copy.secret = Scalar{};
    copy.can_derive = false;
    return copy;
  }

  /// Wire format (what a hierarchical archive/mirror actually serves):
  /// path components, S, the Q chain, and the derivation secret if the
  /// key carries one. Points are validated into G_1 on parse.
  Bytes to_bytes(const params::GdhParams& params) const;
  static NodeKey from_bytes(const params::GdhParams& params, ByteSpan bytes);
};

struct HibeCiphertext {
  ec::G1Point u0;               // rP_0
  std::vector<ec::G1Point> us;  // rP_2 .. rP_t
  Bytes v;
};

class GsHibe {
 public:
  explicit GsHibe(std::shared_ptr<const params::GdhParams> params);

  const params::GdhParams& params() const { return *params_; }

  RootKey setup(tre::hashing::RandomSource& rng) const;
  static RootPublicKey public_of(const RootKey& root) { return {root.p0, root.q0}; }

  /// Extracts a level-1 key directly under the root.
  NodeKey extract_root_child(const RootKey& root, std::string_view id,
                             const Scalar& child_secret) const;

  /// Derives a child key from a parent that still has its secret. Only
  /// the public generator is needed: ANYONE holding a parent key with
  /// its derivation secret can extend downward (the property the
  /// hierarchical time archive exploits — publishing a completed hour's
  /// key hands out all its minutes). The child secret may be any nonzero
  /// scalar; derived tuples remain self-consistent.
  NodeKey derive_child(const ec::G1Point& p0, const NodeKey& parent,
                       std::string_view id, const Scalar& child_secret) const;

  /// ê(root.q0, H1(id_1)) pairing check of a node key's S component:
  /// verifies S_t against the public Q chain.
  bool verify_node_key(const RootPublicKey& root, const NodeKey& key) const;

  HibeCiphertext encrypt(ByteSpan msg, const IdPath& path, const RootPublicKey& root,
                         tre::hashing::RandomSource& rng) const;

  Bytes decrypt(const HibeCiphertext& ct, const NodeKey& key) const;

  /// The point P_i for a path prefix (exposed for the TRE wrapper).
  ec::G1Point path_point(const IdPath& path) const;

 private:
  std::shared_ptr<const params::GdhParams> params_;
  core::TreScheme mask_;  // reused H1/H2 plumbing
};

}  // namespace tre::hibe
