// Rivest-Shamir-Wagner offline public-key variant [19, paper footnote 2].
//
// To avoid sender-server interaction, the server pre-generates one
// keypair per future epoch and publishes the whole public-key list; it
// releases the epoch secret key when the epoch arrives. The sender can
// only target epochs the server has already provisioned — encrypting
// past the horizon fails — and the published list grows linearly with
// the horizon, which is the non-scalability experiment E3/E9 measures.
// (Contrast: a TRE sender needs two public keys for ANY future instant.)
#pragma once

#include <cstdint>
#include <vector>

#include "core/tre.h"

namespace tre::baselines {

struct EpochCiphertext {
  std::uint64_t epoch;
  ec::G1Point c1;  // x·G
  Bytes body;      // M ⊕ KDF(x·B_e)
};

class RivestPkList {
 public:
  /// Pre-generates `horizon` epoch keypairs up front.
  RivestPkList(std::shared_ptr<const params::GdhParams> params, size_t horizon,
               tre::hashing::RandomSource& rng);

  size_t horizon() const { return secrets_.size(); }

  /// Wire size of the published public-key list (what every sender must
  /// fetch and the server must host).
  size_t published_bytes() const;

  /// Throws if `epoch` is beyond the provisioned horizon — the scheme's
  /// defining limitation.
  EpochCiphertext encrypt(ByteSpan msg, std::uint64_t epoch,
                          tre::hashing::RandomSource& rng) const;

  /// The secret the server releases when `epoch` arrives.
  core::Scalar release_epoch_secret(std::uint64_t epoch) const;

  static Bytes decrypt(const params::GdhParams& params, const EpochCiphertext& ct,
                       const core::Scalar& epoch_secret);

 private:
  std::shared_ptr<const params::GdhParams> params_;
  std::vector<core::Scalar> secrets_;
  std::vector<ec::G1Point> public_list_;
};

}  // namespace tre::baselines
