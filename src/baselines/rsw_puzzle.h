// Rivest-Shamir-Wagner time-lock puzzle [19, paper §2.1].
//
// The serverless approach the paper contrasts against. The sender, who
// knows φ(n) for n = p·q, seals a key behind t sequential modular
// squarings: b = a^(2^t) mod n is cheap for the sender (reduce 2^t mod
// φ(n)) but requires t *inherently sequential* squarings from the
// solver. Release timing is therefore relative (to solve start), machine
// dependent and CPU-consuming — experiment E4 quantifies the release-time
// error against TRE's absolute semantics.
#pragma once

#include <cstdint>
#include <optional>

#include "bigint/bigint.h"
#include "bigint/montgomery.h"
#include "hashing/drbg.h"

namespace tre::baselines {

inline constexpr size_t kRswLimbs = 32;  // up to 2048-bit moduli
using RswInt = bigint::BigInt<kRswLimbs>;

/// Sender-side trapdoor: modulus and its factorization.
struct RswTrapdoor {
  RswInt n;
  RswInt phi;  // (p-1)(q-1)
};

struct RswPuzzle {
  RswInt n;
  RswInt a;          // random base
  std::uint64_t t;   // required sequential squarings
  Bytes sealed_key;  // key ⊕ KDF(a^(2^t) mod n)

  /// Wire format: u16 n-length || n be || u16 a-length || a be ||
  /// t (u64 be) || u16 key-length || sealed key. Used by the hybrid
  /// fallback envelope (timelock/hybrid.h) and the solver checkpoint
  /// fingerprint.
  Bytes to_bytes() const;
  /// Throws tre::Error on malformed input (truncation, trailing bytes,
  /// even/unit modulus, base outside [0, n), zero step count).
  static RswPuzzle from_bytes(ByteSpan bytes);
  /// Non-throwing parse for untrusted bytes.
  static std::optional<RswPuzzle> try_from_bytes(ByteSpan bytes);

  friend bool operator==(const RswPuzzle& x, const RswPuzzle& y) {
    return x.n == y.n && x.a == y.a && x.t == y.t && x.sealed_key == y.sealed_key;
  }
};

/// Caller-held intermediate solving state: x = a^(2^steps) mod n in plain
/// (non-Montgomery) form. A fresh default-constructed progress starts at
/// the base; solve_with_budget advances it in place, so repeated budgeted
/// calls continue where the previous call stopped instead of redoing the
/// whole chain (prerequisite for the timelock/ checkpointed solver).
struct RswProgress {
  RswInt x;
  std::uint64_t steps = 0;
};

class Rsw {
 public:
  /// Generates a fresh RSA modulus (`modulus_bits` total; use small sizes
  /// in tests, 1024+ for real measurements).
  static RswTrapdoor keygen(tre::hashing::RandomSource& rng, size_t modulus_bits);

  /// Seals `key` behind `t` squarings. Fast path via φ(n).
  static RswPuzzle seal(const RswTrapdoor& trapdoor, ByteSpan key, std::uint64_t t,
                        tre::hashing::RandomSource& rng);

  /// The intended (slow) opening: t sequential squarings.
  static Bytes solve(const RswPuzzle& puzzle);

  /// Runs at most `budget` squarings; sets `*done` to true and returns
  /// the key if the puzzle finished, otherwise returns empty. Used by the
  /// precision experiment to model slower/faster machines and preemption.
  /// This overload always starts from the base (one-shot semantics).
  static Bytes solve_with_budget(const RswPuzzle& puzzle, std::uint64_t budget,
                                 bool* done);

  /// Resumable variant: starts from `*progress` (default-constructed =
  /// the base), advances at most `budget` squarings, and writes the new
  /// state back, so successive budgeted calls share one squaring chain.
  static Bytes solve_with_budget(const RswPuzzle& puzzle, std::uint64_t budget,
                                 bool* done, RswProgress* progress);

  /// Opens the sealed key given b = a^(2^t) mod n (plain form) — the
  /// shared tail of solve() and the checkpointed timelock/ solver.
  static Bytes unseal(const RswPuzzle& puzzle, const RswInt& b);

  /// Squarings/second on this machine for `modulus_bits` — calibrates
  /// what real time a given t buys (the sender's only timing dial).
  static double measure_squarings_per_second(size_t modulus_bits,
                                             tre::hashing::RandomSource& rng);
};

}  // namespace tre::baselines
