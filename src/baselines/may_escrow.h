// May's trusted escrow agent [15, paper §2.2].
//
// The earliest design: senders hand the plaintext, recipient and release
// time to an agent who stores everything and forwards at the release
// time. Storage grows with every in-flight message, and the agent knows
// message, release time, sender and receiver — the baseline TRE's §3
// model is defined against. Experiment E3 measures the storage curve.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"

namespace tre::baselines {

class MayEscrowAgent {
 public:
  struct Deposit {
    std::string sender;
    std::string recipient;
    Bytes message;
    std::int64_t release_at;
  };

  /// The sender-agent interaction (plaintext disclosure included).
  void deposit(std::string_view sender, std::string_view recipient, ByteSpan msg,
               std::int64_t release_at);

  /// Messages due at or before `now`, removed from storage, delivery order.
  std::vector<Deposit> release_due(std::int64_t now);

  size_t stored_messages() const { return pending_.size(); }
  size_t stored_bytes() const { return stored_bytes_; }
  std::uint64_t total_deposits() const { return total_deposits_; }

 private:
  std::vector<Deposit> pending_;
  size_t stored_bytes_ = 0;
  std::uint64_t total_deposits_ = 0;
};

}  // namespace tre::baselines
