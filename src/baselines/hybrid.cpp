#include "baselines/hybrid.h"

#include "hashing/kdf.h"

namespace tre::baselines {

using core::Gt;
using core::Scalar;
using ec::G1Point;

Bytes HybridCiphertext::to_bytes() const {
  Bytes out = concat({c_pke.to_bytes_compressed(), c_ibe.to_bytes_compressed()});
  require(body.size() <= 0xffff, "HybridCiphertext: body too long");
  out.push_back(static_cast<std::uint8_t>(body.size() >> 8));
  out.push_back(static_cast<std::uint8_t>(body.size() & 0xff));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

HybridCiphertext HybridCiphertext::from_bytes(const params::GdhParams& params,
                                              ByteSpan bytes) {
  size_t w = params.g1_compressed_bytes();
  require(bytes.size() >= 2 * w + 2, "HybridCiphertext: truncated");
  HybridCiphertext ct;
  ct.c_pke = G1Point::from_bytes(params.ctx(), bytes.subspan(0, w));
  ct.c_ibe = G1Point::from_bytes(params.ctx(), bytes.subspan(w, w));
  require(ct.c_pke.in_subgroup() && ct.c_ibe.in_subgroup(),
          "HybridCiphertext: point outside the order-q subgroup");
  size_t n = static_cast<size_t>(bytes[2 * w]) << 8 | bytes[2 * w + 1];
  require(bytes.size() == 2 * w + 2 + n, "HybridCiphertext: bad body length");
  ct.body.assign(bytes.begin() + static_cast<long>(2 * w + 2), bytes.end());
  return ct;
}

HybridTre::HybridTre(std::shared_ptr<const params::GdhParams> params)
    : ibe_(std::move(params)) {}

PkeKeyPair HybridTre::pke_keygen(tre::hashing::RandomSource& rng) const {
  Scalar b = params::random_scalar(params(), rng);
  return PkeKeyPair{b, params().base.mul(b)};
}

Bytes HybridTre::dem_key(const G1Point& k1_point, const Gt& k2) const {
  // K1 ⊕ K2 fed to the DEM, per the footnote: derive fixed sub-keys first.
  Bytes k1 = hashing::oracle_bytes("HYB-K1", k1_point.to_bytes_compressed(), 32);
  Bytes k2b = hashing::oracle_bytes("HYB-K2", k2.to_bytes(), 32);
  return xor_bytes(k1, k2b);
}

HybridCiphertext HybridTre::encrypt(ByteSpan msg, const PkeKeyPair& receiver_pub,
                                    const core::ServerPublicKey& time_server,
                                    std::string_view tag,
                                    tre::hashing::RandomSource& rng) const {
  // PKE share: ElGamal KEM under the receiver key.
  Scalar x = params::random_scalar(params(), rng);
  G1Point c_pke = params().base.mul(x);
  G1Point k1_point = receiver_pub.bg.mul(x);

  // IBE share to identity T under the time server's master key.
  Scalar r = params::random_scalar(params(), rng);
  G1Point c_ibe = time_server.g.mul(r);
  Gt k2 = pairing::pair(time_server.sg, ec::hash_to_g1(params().ctx(), to_bytes(tag)))
              .pow(r);

  Bytes key = dem_key(k1_point, k2);
  Bytes stream = hashing::keystream(key, to_bytes(tag), msg.size());
  return HybridCiphertext{c_pke, c_ibe, xor_bytes(msg, stream)};
}

Bytes HybridTre::decrypt(const HybridCiphertext& ct, const Scalar& b,
                         const core::KeyUpdate& update) const {
  G1Point k1_point = ct.c_pke.mul(b);
  Gt k2 = pairing::pair(ct.c_ibe, update.sig);
  Bytes key = dem_key(k1_point, k2);
  Bytes stream = hashing::keystream(key, to_bytes(update.tag), ct.body.size());
  return xor_bytes(ct.body, stream);
}

}  // namespace tre::baselines
