#include "baselines/rivest_pk_list.h"

#include "hashing/kdf.h"

namespace tre::baselines {

using core::Scalar;
using ec::G1Point;

RivestPkList::RivestPkList(std::shared_ptr<const params::GdhParams> params,
                           size_t horizon, tre::hashing::RandomSource& rng)
    : params_(std::move(params)) {
  require(params_ != nullptr, "RivestPkList: null params");
  require(horizon >= 1, "RivestPkList: empty horizon");
  secrets_.reserve(horizon);
  public_list_.reserve(horizon);
  for (size_t e = 0; e < horizon; ++e) {
    Scalar x = params::random_scalar(*params_, rng);
    secrets_.push_back(x);
    public_list_.push_back(params_->base.mul(x));
  }
}

size_t RivestPkList::published_bytes() const {
  return public_list_.size() * params_->g1_compressed_bytes();
}

EpochCiphertext RivestPkList::encrypt(ByteSpan msg, std::uint64_t epoch,
                                      tre::hashing::RandomSource& rng) const {
  require(epoch < public_list_.size(),
          "RivestPkList: release epoch beyond the provisioned horizon");
  Scalar x = params::random_scalar(*params_, rng);
  G1Point shared = public_list_[epoch].mul(x);
  Bytes stream = hashing::oracle_bytes("RSW-PKLIST", shared.to_bytes_compressed(),
                                       msg.size());
  return EpochCiphertext{epoch, params_->base.mul(x), xor_bytes(msg, stream)};
}

Scalar RivestPkList::release_epoch_secret(std::uint64_t epoch) const {
  require(epoch < secrets_.size(), "RivestPkList: unknown epoch");
  return secrets_[epoch];
}

Bytes RivestPkList::decrypt(const params::GdhParams& params, const EpochCiphertext& ct,
                            const Scalar& epoch_secret) {
  G1Point shared = ct.c1.mul(epoch_secret);
  Bytes stream = hashing::oracle_bytes("RSW-PKLIST", shared.to_bytes_compressed(),
                                       ct.body.size());
  return xor_bytes(ct.body, stream);
}

}  // namespace tre::baselines
