// Footnote-3 hybrid baseline: generic PKE + IBE composition.
//
// The paper notes TRE could be emulated by encrypting sub-key K1 under
// the receiver's ordinary public key (here: ElGamal KEM over G_1) and
// sub-key K2 under an IBE with the release time as identity (here:
// Boneh-Franklin), combining the sub-keys into a DEM key. The server's
// per-instant output is the IBE private key d_T = s·H1(T) — exactly a
// TRE key update, so the server side is unchanged; the per-message cost
// is what differs. Experiment E2 measures the paper's claim that TRE
// halves the asymmetric overhead (one group element and pairing instead
// of two asymmetric components).
#pragma once

#include "baselines/bf_ibe.h"
#include "core/tre.h"

namespace tre::baselines {

/// Receiver's ordinary PKE key (independent of any server).
struct PkeKeyPair {
  core::Scalar b;
  ec::G1Point bg;
};

struct HybridCiphertext {
  ec::G1Point c_pke;  // x·G (ElGamal KEM share)
  ec::G1Point c_ibe;  // r·G (IBE share)
  Bytes body;         // M ⊕ DEM(K1 ⊕ K2)

  Bytes to_bytes() const;
  static HybridCiphertext from_bytes(const params::GdhParams& params, ByteSpan bytes);
};

class HybridTre {
 public:
  explicit HybridTre(std::shared_ptr<const params::GdhParams> params);

  const params::GdhParams& params() const { return ibe_.params(); }

  PkeKeyPair pke_keygen(tre::hashing::RandomSource& rng) const;

  HybridCiphertext encrypt(ByteSpan msg, const PkeKeyPair& receiver_pub,
                           const core::ServerPublicKey& time_server,
                           std::string_view tag,
                           tre::hashing::RandomSource& rng) const;

  /// Needs the receiver secret b plus the server's update for the tag
  /// (the IBE key for identity T).
  Bytes decrypt(const HybridCiphertext& ct, const core::Scalar& b,
                const core::KeyUpdate& update) const;

 private:
  Bytes dem_key(const ec::G1Point& k1_point, const core::Gt& k2) const;

  BfIbe ibe_;
};

}  // namespace tre::baselines
