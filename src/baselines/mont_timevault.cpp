#include "baselines/mont_timevault.h"

namespace tre::baselines {

MontTimeVault::MontTimeVault(std::shared_ptr<const params::GdhParams> params,
                             tre::hashing::RandomSource& rng)
    : ibe_(std::move(params)), master_(ibe_.setup(rng)) {}

std::string MontTimeVault::joint_id(std::string_view id, std::string_view tag) {
  std::string out;
  out.reserve(id.size() + tag.size() + 2);
  out.append(id);
  out.append("||");
  out.append(tag);
  return out;
}

void MontTimeVault::register_user(std::string_view id) {
  users_.emplace(std::string(id), users_.size());
}

core::Ciphertext MontTimeVault::encrypt(ByteSpan msg, std::string_view id,
                                        std::string_view tag,
                                        tre::hashing::RandomSource& rng) const {
  return ibe_.encrypt(msg, joint_id(id, tag), master_.pub, rng);
}

std::vector<IbePrivateKey> MontTimeVault::epoch_tick(std::string_view tag) {
  std::vector<IbePrivateKey> keys;
  keys.reserve(users_.size());
  for (const auto& [id, order] : users_) {
    (void)order;
    IbePrivateKey key = ibe_.extract(master_, joint_id(id, tag));
    // Unicast cost: the point plus the addressing overhead of one
    // dedicated transmission (identity echo).
    stats_.bytes_unicast += key.d.to_bytes_compressed().size() + key.id.size();
    ++stats_.keys_extracted;
    keys.push_back(std::move(key));
  }
  ++stats_.epochs;
  return keys;
}

Bytes MontTimeVault::decrypt(const core::Ciphertext& ct, const IbePrivateKey& key) const {
  return ibe_.decrypt(ct, key);
}

Bytes MontTimeVault::server_decrypt(const core::Ciphertext& ct, std::string_view id,
                                    std::string_view tag) const {
  IbePrivateKey key = ibe_.extract(master_, joint_id(id, tag));
  return ibe_.decrypt(ct, key);
}

}  // namespace tre::baselines
