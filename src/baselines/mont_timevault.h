// Functional model of the Mont et al. HP Time Vault service [17].
//
// The IBE-based *active-server* design the paper contrasts against: the
// sender encrypts to the identity "ID || T"; when T arrives, the server
// extracts the private key s·H1(ID||T) for EVERY registered receiver and
// transmits each key individually over a unicast channel. Server CPU and
// bandwidth per epoch therefore grow linearly in the number of users,
// and the server can read all traffic — both measured by experiment E3.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "baselines/bf_ibe.h"

namespace tre::baselines {

class MontTimeVault {
 public:
  MontTimeVault(std::shared_ptr<const params::GdhParams> params,
                tre::hashing::RandomSource& rng);

  const core::ServerPublicKey& public_key() const { return master_.pub; }
  const params::GdhParams& params() const { return ibe_.params(); }

  /// The server must know every receiver (no user anonymity).
  void register_user(std::string_view id);
  size_t user_count() const { return users_.size(); }

  /// Sender side: IBE encryption to identity "id || tag".
  core::Ciphertext encrypt(ByteSpan msg, std::string_view id, std::string_view tag,
                           tre::hashing::RandomSource& rng) const;

  /// Epoch boundary: extract and unicast one key per registered user.
  /// Returns the per-user keys (the "transmissions").
  std::vector<IbePrivateKey> epoch_tick(std::string_view tag);

  /// Receiver side, with the key unicast to them this epoch.
  Bytes decrypt(const core::Ciphertext& ct, const IbePrivateKey& key) const;

  struct Stats {
    std::uint64_t keys_extracted = 0;
    std::uint64_t bytes_unicast = 0;  // sum over per-user transmissions
    std::uint64_t epochs = 0;
  };
  const Stats& stats() const { return stats_; }

  /// The escrow problem (paper §2.2): the server decrypts anyone's mail.
  Bytes server_decrypt(const core::Ciphertext& ct, std::string_view id,
                       std::string_view tag) const;

 private:
  static std::string joint_id(std::string_view id, std::string_view tag);

  BfIbe ibe_;
  core::ServerKeyPair master_;
  std::map<std::string, size_t> users_;  // id -> registration order
  Stats stats_;
};

}  // namespace tre::baselines
