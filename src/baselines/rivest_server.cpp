#include "baselines/rivest_server.h"

#include "common/error.h"
#include "hashing/hmac.h"
#include "hashing/kdf.h"

namespace tre::baselines {

RivestServer::RivestServer(ByteSpan seed) : seed_(seed.begin(), seed.end()) {
  require(!seed_.empty(), "RivestServer: empty seed");
}

Bytes RivestServer::epoch_key(std::uint64_t e) const {
  // k_e = HMAC(seed, e): derivable from the seed alone, nothing to store.
  return hashing::hmac_sha256(seed_, be64(e));
}

RivestCiphertext RivestServer::submit(std::string_view sender_id, ByteSpan msg,
                                      std::uint64_t release_epoch) {
  ++interactions_;
  knowledge_.push_back(KnowledgeRecord{std::string(sender_id),
                                       Bytes(msg.begin(), msg.end()), release_epoch});
  Bytes key = epoch_key(release_epoch);
  Bytes body = xor_bytes(msg, hashing::keystream(key, be64(release_epoch), msg.size()));
  Bytes mac = hashing::hmac_sha256_concat(key, {be64(release_epoch), body});
  return RivestCiphertext{release_epoch, std::move(body), std::move(mac)};
}

Bytes RivestServer::publish_epoch_key(std::uint64_t e) { return epoch_key(e); }

Bytes RivestServer::decrypt(const RivestCiphertext& ct, ByteSpan epoch_key) {
  Bytes mac = hashing::hmac_sha256_concat(epoch_key, {be64(ct.epoch), ct.body});
  require(ct_equal(mac, ct.mac), "RivestServer: MAC mismatch");
  return xor_bytes(ct.body, hashing::keystream(epoch_key, be64(ct.epoch), ct.body.size()));
}

}  // namespace tre::baselines
