// Timed commitments and timed signatures (paper §2.1: Boneh-Naor [6],
// Garay-Jakobsson [12], Mao [14]) — functional models of the remaining
// puzzle-family related work.
//
// A timed commitment hides a message that (a) the committer can open
// instantly by revealing the sealing key, and (b) anyone can FORCE open
// with t sequential squarings (the RSW machinery). A timed signature is
// the [12] construction: a standard signature placed inside a timed
// commitment, so it becomes publicly available at forced-opening time
// even if the signer absconds.
//
// Fidelity note: the original [6] includes zero-knowledge proofs that
// the committed value is well-formed (verifiable at commit time); this
// model reproduces the hiding/binding/forced-opening behaviour that the
// paper's comparison concerns — timing precision and CPU cost — and
// documents the omitted proofs here.
#pragma once

#include "baselines/rsw_puzzle.h"
#include "common/bytes.h"

namespace tre::baselines {

struct TimedCommitment {
  RswPuzzle puzzle;  // seals the 32-byte key K behind t squarings
  Bytes binding;     // H(K, M): binds the committed message
  Bytes sealed_msg;  // M ⊕ stream(K)
};

class TimedCommitmentScheme {
 public:
  /// Commits to `msg`, forced-openable after `t` squarings. The returned
  /// key lets the committer open instantly.
  static std::pair<TimedCommitment, Bytes> commit(const RswTrapdoor& trapdoor,
                                                  ByteSpan msg, std::uint64_t t,
                                                  tre::hashing::RandomSource& rng);

  /// Committer-side opening: reveals K; returns the message after
  /// checking the binding (throws on mismatch — binding violation).
  static Bytes open(const TimedCommitment& c, ByteSpan key);

  /// Anyone: recover K by solving the puzzle, then open. Costs t
  /// sequential squarings.
  static Bytes forced_open(const TimedCommitment& c);

  /// Checks a claimed (key, msg) opening without unsealing anything.
  static bool verify_opening(const TimedCommitment& c, ByteSpan key, ByteSpan msg);
};

}  // namespace tre::baselines
