#include "baselines/bf_ibe.h"

namespace tre::baselines {

BfIbe::BfIbe(std::shared_ptr<const params::GdhParams> params)
    : scheme_(std::move(params)) {}

ServerKeyPair BfIbe::setup(tre::hashing::RandomSource& rng) const {
  return scheme_.server_keygen(rng);
}

IbePrivateKey BfIbe::extract(const ServerKeyPair& master, std::string_view id) const {
  return IbePrivateKey{std::string(id), scheme_.hash_tag(id).mul(master.s)};
}

bool BfIbe::verify_private_key(const ServerPublicKey& master,
                               const IbePrivateKey& key) const {
  if (key.d.is_infinity()) return false;
  return pairing::pairings_equal(master.sg, scheme_.hash_tag(key.id), master.g, key.d);
}

Ciphertext BfIbe::encrypt(ByteSpan msg, std::string_view id,
                          const ServerPublicKey& master,
                          tre::hashing::RandomSource& rng) const {
  Scalar r = params::random_scalar(scheme_.params(), rng);
  core::Gt k = pairing::pair(master.sg, scheme_.hash_tag(id)).pow(r);
  return Ciphertext{master.g.mul(r), xor_bytes(msg, scheme_.mask_h2(k, msg.size()))};
}

Bytes BfIbe::decrypt(const Ciphertext& ct, const IbePrivateKey& key) const {
  core::Gt k = pairing::pair(ct.u, key.d);
  return xor_bytes(ct.v, scheme_.mask_h2(k, ct.v.size()));
}

}  // namespace tre::baselines
