#include "baselines/may_escrow.h"

#include <algorithm>

namespace tre::baselines {

void MayEscrowAgent::deposit(std::string_view sender, std::string_view recipient,
                             ByteSpan msg, std::int64_t release_at) {
  Deposit d{std::string(sender), std::string(recipient), Bytes(msg.begin(), msg.end()),
            release_at};
  stored_bytes_ += d.sender.size() + d.recipient.size() + d.message.size();
  ++total_deposits_;
  pending_.push_back(std::move(d));
}

std::vector<MayEscrowAgent::Deposit> MayEscrowAgent::release_due(std::int64_t now) {
  std::vector<Deposit> due;
  auto it = std::stable_partition(
      pending_.begin(), pending_.end(),
      [now](const Deposit& d) { return d.release_at > now; });
  due.assign(std::make_move_iterator(it), std::make_move_iterator(pending_.end()));
  pending_.erase(it, pending_.end());
  std::sort(due.begin(), due.end(), [](const Deposit& a, const Deposit& b) {
    return a.release_at < b.release_at;
  });
  for (const Deposit& d : due) {
    stored_bytes_ -= d.sender.size() + d.recipient.size() + d.message.size();
  }
  return due;
}

}  // namespace tre::baselines
