#include "baselines/timed_commitment.h"

#include "common/error.h"
#include "hashing/kdf.h"
#include "hashing/sha256.h"

namespace tre::baselines {

namespace {

Bytes binding_of(ByteSpan key, ByteSpan msg) {
  return hashing::sha256_concat({to_bytes("TC-BIND"), key, msg});
}

Bytes stream_of(ByteSpan key, size_t len) {
  return hashing::keystream(key, to_bytes("TC-STREAM"), len);
}

}  // namespace

std::pair<TimedCommitment, Bytes> TimedCommitmentScheme::commit(
    const RswTrapdoor& trapdoor, ByteSpan msg, std::uint64_t t,
    tre::hashing::RandomSource& rng) {
  Bytes key = rng.bytes(32);
  TimedCommitment c;
  c.puzzle = Rsw::seal(trapdoor, key, t, rng);
  c.binding = binding_of(key, msg);
  c.sealed_msg = xor_bytes(msg, stream_of(key, msg.size()));
  return {std::move(c), std::move(key)};
}

Bytes TimedCommitmentScheme::open(const TimedCommitment& c, ByteSpan key) {
  Bytes msg = xor_bytes(c.sealed_msg, stream_of(key, c.sealed_msg.size()));
  require(ct_equal(binding_of(key, msg), c.binding),
          "TimedCommitment: opening fails the binding check");
  return msg;
}

Bytes TimedCommitmentScheme::forced_open(const TimedCommitment& c) {
  Bytes key = Rsw::solve(c.puzzle);
  return open(c, key);
}

bool TimedCommitmentScheme::verify_opening(const TimedCommitment& c, ByteSpan key,
                                           ByteSpan msg) {
  if (!ct_equal(binding_of(key, msg), c.binding)) return false;
  return ct_equal(xor_bytes(msg, stream_of(key, msg.size())), c.sealed_msg);
}

}  // namespace tre::baselines
