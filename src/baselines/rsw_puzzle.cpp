#include "baselines/rsw_puzzle.h"

#include <chrono>

#include "bigint/prime.h"
#include "common/error.h"
#include "hashing/kdf.h"

namespace tre::baselines {

namespace {

Bytes unseal(const RswPuzzle& puzzle, const RswInt& b) {
  Bytes pad = hashing::oracle_bytes("RSW-PAD", b.to_bytes_be(8 * kRswLimbs),
                                    puzzle.sealed_key.size());
  return xor_bytes(puzzle.sealed_key, pad);
}

}  // namespace

RswTrapdoor Rsw::keygen(tre::hashing::RandomSource& rng, size_t modulus_bits) {
  require(modulus_bits >= 64 && modulus_bits <= 64 * kRswLimbs,
          "Rsw::keygen: bad modulus size");
  size_t half = modulus_bits / 2;
  for (;;) {
    RswInt p = bigint::random_prime<kRswLimbs>(rng, half);
    RswInt q = bigint::random_prime<kRswLimbs>(rng, modulus_bits - half);
    if (p == q) continue;
    auto n_wide = bigint::mul_wide(p, q);
    RswInt n = n_wide.resized<kRswLimbs>();  // fits: half + (bits-half) bits
    RswInt p1 = bigint::sub(p, RswInt::from_u64(1));
    RswInt q1 = bigint::sub(q, RswInt::from_u64(1));
    RswInt phi = bigint::mul_wide(p1, q1).resized<kRswLimbs>();
    return RswTrapdoor{n, phi};
  }
}

RswPuzzle Rsw::seal(const RswTrapdoor& trapdoor, ByteSpan key, std::uint64_t t,
                    tre::hashing::RandomSource& rng) {
  require(t >= 1, "Rsw::seal: t must be positive");
  RswInt a = bigint::random_below(rng, trapdoor.n);
  if (a.bit_length() < 2) a = RswInt::from_u64(2);

  // Sender shortcut: e = 2^t mod phi, then b = a^e mod n. phi is even, so
  // Montgomery does not apply; plain square-and-multiply over the 64-bit
  // exponent t is cheap (sender-side only).
  RswInt e;
  {
    RswInt base = RswInt::from_u64(2);
    RswInt acc = RswInt::from_u64(1);
    std::uint64_t exp = t;
    while (exp != 0) {
      if (exp & 1) acc = bigint::mulmod(acc, base, trapdoor.phi);
      base = bigint::mulmod(base, base, trapdoor.phi);
      exp >>= 1;
    }
    e = acc;
  }

  bigint::MontCtx<kRswLimbs> mont_n(trapdoor.n);
  RswInt b = mont_n.pow_plain(a, e);

  Bytes pad = hashing::oracle_bytes("RSW-PAD", b.to_bytes_be(8 * kRswLimbs), key.size());
  return RswPuzzle{trapdoor.n, a, t, xor_bytes(key, pad)};
}

Bytes Rsw::solve(const RswPuzzle& puzzle) {
  bool done = false;
  Bytes key = solve_with_budget(puzzle, puzzle.t, &done);
  require(done, "Rsw::solve: internal budget mismatch");
  return key;
}

Bytes Rsw::solve_with_budget(const RswPuzzle& puzzle, std::uint64_t budget, bool* done) {
  require(done != nullptr, "Rsw::solve_with_budget: null done flag");
  bigint::MontCtx<kRswLimbs> mont(puzzle.n);
  RswInt x = mont.to_mont(puzzle.a);
  std::uint64_t steps = std::min(budget, puzzle.t);
  for (std::uint64_t i = 0; i < steps; ++i) x = mont.sqr(x);
  if (steps < puzzle.t) {
    *done = false;
    return {};
  }
  *done = true;
  return unseal(puzzle, mont.from_mont(x));
}

double Rsw::measure_squarings_per_second(size_t modulus_bits,
                                         tre::hashing::RandomSource& rng) {
  RswTrapdoor td = keygen(rng, modulus_bits);
  bigint::MontCtx<kRswLimbs> mont(td.n);
  RswInt x = mont.to_mont(bigint::random_below(rng, td.n));
  // Warm-up + timed run.
  for (int i = 0; i < 1000; ++i) x = mont.sqr(x);
  auto start = std::chrono::steady_clock::now();
  constexpr int kIters = 20000;
  for (int i = 0; i < kIters; ++i) x = mont.sqr(x);
  auto elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - start);
  // Keep x observable so the loop cannot be elided.
  volatile std::uint64_t sink = x.w[0];
  (void)sink;
  return kIters / elapsed.count();
}

}  // namespace tre::baselines
