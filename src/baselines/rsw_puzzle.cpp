#include "baselines/rsw_puzzle.h"

#include <chrono>

#include "bigint/prime.h"
#include "common/error.h"
#include "hashing/kdf.h"

namespace tre::baselines {

namespace {

// Little local wire helpers (u16/u64 big-endian), matching the style of
// core/tre_core.h's detail namespace without pulling core in.
void put_u16(Bytes& out, size_t v) {
  require(v <= 0xffff, "RswPuzzle: field too long for u16 length prefix");
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
}

void put_u64(Bytes& out, std::uint64_t v) {
  for (int i = 7; i >= 0; --i)
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
}

struct Cursor {
  ByteSpan bytes;
  size_t pos = 0;

  size_t remaining() const { return bytes.size() - pos; }
  ByteSpan take(size_t n) {
    require(remaining() >= n, "RswPuzzle::from_bytes: truncated input");
    ByteSpan out = bytes.subspan(pos, n);
    pos += n;
    return out;
  }
  size_t take_u16() {
    ByteSpan b = take(2);
    return (static_cast<size_t>(b[0]) << 8) | b[1];
  }
  std::uint64_t take_u64() {
    ByteSpan b = take(8);
    std::uint64_t v = 0;
    for (size_t i = 0; i < 8; ++i) v = (v << 8) | b[i];
    return v;
  }
};

Bytes minimal_be(const RswInt& v) {
  return v.to_bytes_be((v.bit_length() + 7) / 8);
}

}  // namespace

Bytes RswPuzzle::to_bytes() const {
  Bytes out;
  Bytes n_be = minimal_be(n);
  Bytes a_be = minimal_be(a);
  put_u16(out, n_be.size());
  out.insert(out.end(), n_be.begin(), n_be.end());
  put_u16(out, a_be.size());
  out.insert(out.end(), a_be.begin(), a_be.end());
  put_u64(out, t);
  put_u16(out, sealed_key.size());
  out.insert(out.end(), sealed_key.begin(), sealed_key.end());
  return out;
}

RswPuzzle RswPuzzle::from_bytes(ByteSpan bytes) {
  Cursor cur{bytes};
  RswPuzzle out;
  size_t n_len = cur.take_u16();
  require(n_len <= 8 * kRswLimbs, "RswPuzzle::from_bytes: modulus too wide");
  out.n = RswInt::from_bytes_be(cur.take(n_len));
  size_t a_len = cur.take_u16();
  require(a_len <= 8 * kRswLimbs, "RswPuzzle::from_bytes: base too wide");
  out.a = RswInt::from_bytes_be(cur.take(a_len));
  out.t = cur.take_u64();
  size_t key_len = cur.take_u16();
  ByteSpan key = cur.take(key_len);
  out.sealed_key.assign(key.begin(), key.end());
  require(cur.remaining() == 0, "RswPuzzle::from_bytes: trailing bytes");
  require(out.n.is_odd() && out.n.bit_length() > 1,
          "RswPuzzle::from_bytes: modulus must be an odd number > 1");
  require(out.a < out.n, "RswPuzzle::from_bytes: base not reduced mod n");
  require(out.t >= 1, "RswPuzzle::from_bytes: zero step count");
  return out;
}

std::optional<RswPuzzle> RswPuzzle::try_from_bytes(ByteSpan bytes) {
  try {
    return from_bytes(bytes);
  } catch (const Error&) {
    return std::nullopt;
  }
}

RswTrapdoor Rsw::keygen(tre::hashing::RandomSource& rng, size_t modulus_bits) {
  require(modulus_bits >= 64 && modulus_bits <= 64 * kRswLimbs,
          "Rsw::keygen: bad modulus size");
  size_t half = modulus_bits / 2;
  for (;;) {
    RswInt p = bigint::random_prime<kRswLimbs>(rng, half);
    RswInt q = bigint::random_prime<kRswLimbs>(rng, modulus_bits - half);
    if (p == q) continue;
    auto n_wide = bigint::mul_wide(p, q);
    RswInt n = n_wide.resized<kRswLimbs>();  // fits: half + (bits-half) bits
    RswInt p1 = bigint::sub(p, RswInt::from_u64(1));
    RswInt q1 = bigint::sub(q, RswInt::from_u64(1));
    RswInt phi = bigint::mul_wide(p1, q1).resized<kRswLimbs>();
    return RswTrapdoor{n, phi};
  }
}

RswPuzzle Rsw::seal(const RswTrapdoor& trapdoor, ByteSpan key, std::uint64_t t,
                    tre::hashing::RandomSource& rng) {
  require(t >= 1, "Rsw::seal: t must be positive");
  RswInt a = bigint::random_below(rng, trapdoor.n);
  if (a.bit_length() < 2) a = RswInt::from_u64(2);

  // Sender shortcut: e = 2^t mod phi, then b = a^e mod n. phi is even, so
  // Montgomery does not apply; plain square-and-multiply over the 64-bit
  // exponent t is cheap (sender-side only).
  RswInt e;
  {
    RswInt base = RswInt::from_u64(2);
    RswInt acc = RswInt::from_u64(1);
    std::uint64_t exp = t;
    while (exp != 0) {
      if (exp & 1) acc = bigint::mulmod(acc, base, trapdoor.phi);
      base = bigint::mulmod(base, base, trapdoor.phi);
      exp >>= 1;
    }
    e = acc;
  }

  bigint::MontCtx<kRswLimbs> mont_n(trapdoor.n);
  RswInt b = mont_n.pow_plain(a, e);

  Bytes pad = hashing::oracle_bytes("RSW-PAD", b.to_bytes_be(8 * kRswLimbs), key.size());
  return RswPuzzle{trapdoor.n, a, t, xor_bytes(key, pad)};
}

Bytes Rsw::solve(const RswPuzzle& puzzle) {
  bool done = false;
  Bytes key = solve_with_budget(puzzle, puzzle.t, &done);
  require(done, "Rsw::solve: internal budget mismatch");
  return key;
}

Bytes Rsw::solve_with_budget(const RswPuzzle& puzzle, std::uint64_t budget, bool* done) {
  RswProgress progress;  // one-shot semantics: fresh state each call
  return solve_with_budget(puzzle, budget, done, &progress);
}

Bytes Rsw::solve_with_budget(const RswPuzzle& puzzle, std::uint64_t budget,
                             bool* done, RswProgress* progress) {
  require(done != nullptr, "Rsw::solve_with_budget: null done flag");
  require(progress != nullptr, "Rsw::solve_with_budget: null progress");
  require(progress->steps <= puzzle.t, "Rsw::solve_with_budget: progress past t");
  bigint::MontCtx<kRswLimbs> mont(puzzle.n);
  RswInt x = mont.to_mont(progress->steps == 0 ? puzzle.a : progress->x);
  std::uint64_t steps = std::min(budget, puzzle.t - progress->steps);
  for (std::uint64_t i = 0; i < steps; ++i) x = mont.sqr(x);
  progress->x = mont.from_mont(x);
  progress->steps += steps;
  if (progress->steps < puzzle.t) {
    *done = false;
    return {};
  }
  *done = true;
  return unseal(puzzle, progress->x);
}

Bytes Rsw::unseal(const RswPuzzle& puzzle, const RswInt& b) {
  Bytes pad = hashing::oracle_bytes("RSW-PAD", b.to_bytes_be(8 * kRswLimbs),
                                    puzzle.sealed_key.size());
  return xor_bytes(puzzle.sealed_key, pad);
}

double Rsw::measure_squarings_per_second(size_t modulus_bits,
                                         tre::hashing::RandomSource& rng) {
  RswTrapdoor td = keygen(rng, modulus_bits);
  bigint::MontCtx<kRswLimbs> mont(td.n);
  RswInt x = mont.to_mont(bigint::random_below(rng, td.n));
  // Warm-up + timed run.
  for (int i = 0; i < 1000; ++i) x = mont.sqr(x);
  auto start = std::chrono::steady_clock::now();
  constexpr int kIters = 20000;
  for (int i = 0; i < kIters; ++i) x = mont.sqr(x);
  auto elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - start);
  // Keep x observable so the loop cannot be elided.
  volatile std::uint64_t sink = x.w[0];
  (void)sink;
  return kIters / elapsed.count();
}

}  // namespace tre::baselines
