// Boneh-Franklin BasicIdent IBE [4] — substrate for the hybrid baseline
// (paper footnote 3) and the Mont et al. time-vault model.
//
//   setup   : master secret s, public (G, sG)
//   extract : d_ID = s·H1(ID)
//   encrypt : U = rG, V = M ⊕ H2(ê(sG, H1(ID))^r)
//   decrypt : M = V ⊕ H2(ê(U, d_ID))
#pragma once

#include "core/tre.h"

namespace tre::baselines {

using core::Ciphertext;
using core::Scalar;
using core::ServerKeyPair;
using core::ServerPublicKey;

struct IbePrivateKey {
  std::string id;
  ec::G1Point d;
};

class BfIbe {
 public:
  explicit BfIbe(std::shared_ptr<const params::GdhParams> params);

  const params::GdhParams& params() const { return scheme_.params(); }

  ServerKeyPair setup(tre::hashing::RandomSource& rng) const;
  IbePrivateKey extract(const ServerKeyPair& master, std::string_view id) const;
  bool verify_private_key(const ServerPublicKey& master, const IbePrivateKey& key) const;

  Ciphertext encrypt(ByteSpan msg, std::string_view id, const ServerPublicKey& master,
                     tre::hashing::RandomSource& rng) const;
  Bytes decrypt(const Ciphertext& ct, const IbePrivateKey& key) const;

 private:
  core::TreScheme scheme_;  // reuse H1/H2 and key plumbing
};

}  // namespace tre::baselines
