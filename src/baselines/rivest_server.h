// Rivest-Shamir-Wagner interactive symmetric-key server [19, §2.2].
//
// The server derives epoch keys from a hash chain (it remembers only the
// seed); a sender must SUBMIT the plaintext and release epoch to the
// server, which returns the symmetric ciphertext; at each epoch the
// server publishes that epoch's key. The model records exactly what the
// server learns per interaction — message, release time, sender identity
// — which is the anonymity loss the paper criticizes, plus the
// interaction count that limits scalability (experiment E3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "hashing/drbg.h"

namespace tre::baselines {

struct RivestCiphertext {
  std::uint64_t epoch;
  Bytes body;  // stream-encrypted
  Bytes mac;
};

class RivestServer {
 public:
  explicit RivestServer(ByteSpan seed);

  /// The sender-server interaction. The server sees everything.
  RivestCiphertext submit(std::string_view sender_id, ByteSpan msg,
                          std::uint64_t release_epoch);

  /// Published when epoch `e` arrives (anyone may call afterwards).
  Bytes publish_epoch_key(std::uint64_t e);

  /// Receiver side with a published key.
  static Bytes decrypt(const RivestCiphertext& ct, ByteSpan epoch_key);

  /// Everything the server learned — the privacy cost of this design.
  struct KnowledgeRecord {
    std::string sender_id;
    Bytes message;
    std::uint64_t release_epoch;
  };
  const std::vector<KnowledgeRecord>& server_knowledge() const { return knowledge_; }
  std::uint64_t interactions() const { return interactions_; }

 private:
  Bytes epoch_key(std::uint64_t e) const;

  Bytes seed_;
  std::vector<KnowledgeRecord> knowledge_;
  std::uint64_t interactions_ = 0;
};

}  // namespace tre::baselines
