#include "hashing/hmac.h"

#include <array>

#include "hashing/sha256.h"

namespace tre::hashing {

namespace {

struct HmacKeySchedule {
  std::array<std::uint8_t, Sha256::kBlockSize> ipad;
  std::array<std::uint8_t, Sha256::kBlockSize> opad;
};

HmacKeySchedule schedule(ByteSpan key) {
  std::array<std::uint8_t, Sha256::kBlockSize> k{};
  if (key.size() > Sha256::kBlockSize) {
    Bytes kh = sha256(key);
    std::copy(kh.begin(), kh.end(), k.begin());
  } else {
    std::copy(key.begin(), key.end(), k.begin());
  }
  HmacKeySchedule ks;
  for (size_t i = 0; i < Sha256::kBlockSize; ++i) {
    ks.ipad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    ks.opad[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }
  return ks;
}

}  // namespace

Bytes hmac_sha256_concat(ByteSpan key, std::initializer_list<ByteSpan> parts) {
  HmacKeySchedule ks = schedule(key);
  Sha256 inner;
  inner.update(ks.ipad);
  for (const auto& p : parts) inner.update(p);
  auto inner_digest = inner.finalize();

  Sha256 outer;
  outer.update(ks.opad);
  outer.update(inner_digest);
  auto d = outer.finalize();
  return Bytes(d.begin(), d.end());
}

Bytes hmac_sha256(ByteSpan key, ByteSpan data) {
  return hmac_sha256_concat(key, {data});
}

}  // namespace tre::hashing
