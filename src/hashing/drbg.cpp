#include "hashing/drbg.h"

#include <random>

#include "hashing/hmac.h"
#include "hashing/sha256.h"

namespace tre::hashing {

HmacDrbg::HmacDrbg(ByteSpan seed)
    : k_(Sha256::kDigestSize, 0x00), v_(Sha256::kDigestSize, 0x01) {
  update(seed);
}

void HmacDrbg::update(ByteSpan provided) {
  const std::uint8_t zero = 0x00;
  const std::uint8_t one = 0x01;
  k_ = hmac_sha256_concat(k_, {v_, ByteSpan(&zero, 1), provided});
  v_ = hmac_sha256(k_, v_);
  if (!provided.empty()) {
    k_ = hmac_sha256_concat(k_, {v_, ByteSpan(&one, 1), provided});
    v_ = hmac_sha256(k_, v_);
  }
}

void HmacDrbg::reseed(ByteSpan seed) { update(seed); }

void HmacDrbg::fill(std::span<std::uint8_t> out) {
  size_t off = 0;
  while (off < out.size()) {
    v_ = hmac_sha256(k_, v_);
    size_t take = std::min(v_.size(), out.size() - off);
    std::copy(v_.begin(), v_.begin() + static_cast<long>(take), out.begin() + static_cast<long>(off));
    off += take;
  }
  update({});
}

namespace {
Bytes os_entropy(size_t n) {
  std::random_device rd;
  Bytes out;
  out.reserve(n);
  while (out.size() < n) {
    unsigned int word = rd();
    for (size_t i = 0; i < sizeof(word) && out.size() < n; ++i) {
      out.push_back(static_cast<std::uint8_t>(word >> (8 * i)));
    }
  }
  return out;
}
}  // namespace

SystemRandom::SystemRandom() : drbg_(os_entropy(48)) {}

void SystemRandom::fill(std::span<std::uint8_t> out) { drbg_.fill(out); }

}  // namespace tre::hashing
