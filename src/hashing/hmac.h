// HMAC-SHA256 (RFC 2104 / FIPS 198-1).
#pragma once

#include "common/bytes.h"

namespace tre::hashing {

/// Computes HMAC-SHA256(key, data). Keys of any length are accepted.
Bytes hmac_sha256(ByteSpan key, ByteSpan data);

/// HMAC over the concatenation of several parts, without copying them.
Bytes hmac_sha256_concat(ByteSpan key, std::initializer_list<ByteSpan> parts);

}  // namespace tre::hashing
