// Randomness sources.
//
// All scheme operations take a `RandomSource&` so tests and experiments
// are reproducible: the deterministic HMAC-DRBG (NIST SP 800-90A) is used
// with fixed seeds in tests/benches, and `SystemRandom` (OS entropy via
// std::random_device, whitened through the DRBG) in examples.
#pragma once

#include <cstdint>
#include <span>

#include "common/bytes.h"

namespace tre::hashing {

class RandomSource {
 public:
  virtual ~RandomSource() = default;

  /// Fills `out` with random bytes.
  virtual void fill(std::span<std::uint8_t> out) = 0;

  /// Convenience: returns `n` random bytes.
  Bytes bytes(size_t n) {
    Bytes out(n);
    fill(out);
    return out;
  }
};

/// HMAC-DRBG with SHA-256 (SP 800-90A §10.1.2), deterministic per seed.
class HmacDrbg final : public RandomSource {
 public:
  explicit HmacDrbg(ByteSpan seed);

  void fill(std::span<std::uint8_t> out) override;
  void reseed(ByteSpan seed);

 private:
  void update(ByteSpan provided);

  Bytes k_;
  Bytes v_;
};

/// OS-entropy-seeded DRBG for non-test use.
class SystemRandom final : public RandomSource {
 public:
  SystemRandom();
  void fill(std::span<std::uint8_t> out) override;

 private:
  HmacDrbg drbg_;
};

}  // namespace tre::hashing
