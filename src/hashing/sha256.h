// SHA-256 (FIPS 180-4), implemented from the specification.
//
// This is the only primitive hash in the library; H1 (hash-to-curve),
// H2..H5 (scheme random oracles), HMAC, HKDF, the DEM keystream and the
// DRBG are all derived from it with domain separation.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace tre::hashing {

class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;
  static constexpr size_t kBlockSize = 64;

  Sha256();

  /// Absorbs more input; may be called any number of times.
  void update(ByteSpan data);

  /// Finalizes and returns the digest. The object must not be reused
  /// afterwards without calling reset().
  std::array<std::uint8_t, kDigestSize> finalize();

  /// Returns the object to its freshly-constructed state.
  void reset();

 private:
  void compress(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, kBlockSize> buffer_;
  size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

/// One-shot convenience wrapper.
Bytes sha256(ByteSpan data);

/// One-shot over the concatenation of several parts (no copy of inputs).
Bytes sha256_concat(std::initializer_list<ByteSpan> parts);

}  // namespace tre::hashing
