// Key derivation and the data-encapsulation keystream.
//
// The paper's schemes mask a plaintext as M XOR H2(K) with
// H2 : G2 -> {0,1}^n. For arbitrary-length messages we realize H2 as an
// extendable-output function: HKDF-SHA256 keyed by the serialized pairing
// value with a per-use domain-separation label. The same primitive doubles
// as the DEM keystream for the baselines.
#pragma once

#include "common/bytes.h"

namespace tre::hashing {

/// HKDF-SHA256 extract-then-expand (RFC 5869).
Bytes hkdf_sha256(ByteSpan salt, ByteSpan ikm, ByteSpan info, size_t out_len);

/// Scheme random oracle: derives `out_len` mask bytes from `input` under
/// the given domain-separation `label` ("TRE-H2", "TRE-H3", ...).
Bytes oracle_bytes(std::string_view label, ByteSpan input, size_t out_len);

/// Deterministic keystream (SHA-256 in counter mode) used as the DEM
/// stream cipher by the hybrid/ escrow baselines.
Bytes keystream(ByteSpan key, ByteSpan nonce, size_t out_len);

}  // namespace tre::hashing
