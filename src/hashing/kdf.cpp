#include "hashing/kdf.h"

#include "common/error.h"
#include "hashing/hmac.h"
#include "hashing/sha256.h"

namespace tre::hashing {

Bytes hkdf_sha256(ByteSpan salt, ByteSpan ikm, ByteSpan info, size_t out_len) {
  require(out_len <= 255 * Sha256::kDigestSize, "hkdf: output too long");
  Bytes prk = hmac_sha256(salt, ikm);
  Bytes out;
  out.reserve(out_len);
  Bytes t;
  std::uint8_t counter = 1;
  while (out.size() < out_len) {
    t = hmac_sha256_concat(prk, {t, info, ByteSpan(&counter, 1)});
    size_t take = std::min(t.size(), out_len - out.size());
    out.insert(out.end(), t.begin(), t.begin() + static_cast<long>(take));
    ++counter;
  }
  return out;
}

Bytes oracle_bytes(std::string_view label, ByteSpan input, size_t out_len) {
  Bytes label_bytes = to_bytes(label);
  if (out_len <= 255 * Sha256::kDigestSize) {
    return hkdf_sha256(label_bytes, input, /*info=*/{}, out_len);
  }
  // Very long outputs: fall back to the counter-mode stream keyed by a
  // digest of the input.
  Bytes key = sha256_concat({label_bytes, input});
  return keystream(key, label_bytes, out_len);
}

Bytes keystream(ByteSpan key, ByteSpan nonce, size_t out_len) {
  Bytes out;
  out.reserve(out_len);
  std::uint64_t counter = 0;
  while (out.size() < out_len) {
    Bytes block = sha256_concat({key, nonce, be64(counter)});
    size_t take = std::min(block.size(), out_len - out.size());
    out.insert(out.end(), block.begin(), block.begin() + static_cast<long>(take));
    ++counter;
  }
  return out;
}

}  // namespace tre::hashing
