#include "simnet/network.h"

#include "bigint/bigint.h"
#include "common/error.h"

namespace tre::simnet {

Network::Network(server::Timeline& timeline, ByteSpan seed)
    : timeline_(timeline),
      rng_(seed.empty() ? ByteSpan(to_bytes("simnet-default")) : seed) {}

NodeId Network::add_node(std::string name) {
  names_.push_back(std::move(name));
  inbound_.push_back(0);
  return names_.size() - 1;
}

const std::string& Network::name_of(NodeId id) const {
  require(id < names_.size(), "Network: unknown node");
  return names_[id];
}

void Network::connect(NodeId a, NodeId b, LinkSpec spec) {
  require(a < names_.size() && b < names_.size() && a != b, "Network: bad link");
  require(spec.base_delay >= 0 && spec.jitter >= 0 && spec.loss >= 0.0 &&
              spec.loss <= 1.0,
          "Network: bad link spec");
  links_[{std::min(a, b), std::max(a, b)}] = spec;
}

std::uint64_t Network::inbound_count(NodeId node) const {
  require(node < inbound_.size(), "Network: unknown node");
  return inbound_[node];
}

void Network::send(NodeId from, NodeId to, size_t bytes,
                   std::function<void()> on_deliver) {
  require(from < names_.size() && to < names_.size(), "Network: unknown node");
  ++stats_.sent;
  if (faults_ && !faults_->empty() &&
      (!faults_->node_up(from, timeline_.now()) ||
       !faults_->link_up(from, to, timeline_.now()))) {
    ++stats_.dropped;
    ++stats_.fault_drops;
    return;
  }
  auto it = links_.find({std::min(from, to), std::max(from, to)});
  if (it == links_.end()) {
    ++stats_.dropped;
    return;
  }
  const LinkSpec& link = it->second;
  Bytes draw = rng_.bytes(8);
  double u = static_cast<double>(bigint::BigInt<1>::from_bytes_be(draw).w[0]) /
             (static_cast<double>(UINT64_MAX) + 1.0);
  if (u < link.loss) {
    ++stats_.dropped;
    return;
  }
  std::int64_t delay = link.base_delay;
  if (link.jitter > 0) {
    Bytes jb = rng_.bytes(8);
    delay += static_cast<std::int64_t>(bigint::BigInt<1>::from_bytes_be(jb).w[0] %
                                       static_cast<std::uint64_t>(link.jitter + 1));
  }
  ++stats_.delivered;
  stats_.bytes_carried += bytes;
  ++inbound_[to];
  // A receiver that is down at the arrival instant loses the message.
  timeline_.schedule(delay, [this, to, fn = std::move(on_deliver)] {
    if (faults_ && !faults_->node_up(to, timeline_.now())) {
      ++stats_.fault_drops;
      return;
    }
    fn();
  });
}

}  // namespace tre::simnet
