#include "simnet/network.h"

#include "bigint/bigint.h"
#include "common/error.h"

namespace tre::simnet {

namespace {

// Fleet-wide mirrors of the per-instance counters (every Network on the
// process shares these; compiled out under -DTRE_METRICS=OFF).
struct Probes {
  obs::CounterProbe sent{"simnet.net.sent"};
  obs::CounterProbe delivered{"simnet.net.delivered"};
  obs::CounterProbe dropped{"simnet.net.dropped"};
  obs::CounterProbe fault_drops{"simnet.net.fault_drops"};
  obs::CounterProbe bytes_carried{"simnet.net.bytes_carried"};

  static const Probes& get() {
    static const Probes p;
    return p;
  }
};

}  // namespace

Network::Network(server::Timeline& timeline, ByteSpan seed)
    : timeline_(timeline),
      rng_(seed.empty() ? ByteSpan(to_bytes("simnet-default")) : seed) {}

NodeId Network::add_node(std::string name) {
  names_.push_back(std::move(name));
  inbound_.push_back(0);
  return names_.size() - 1;
}

const std::string& Network::name_of(NodeId id) const {
  require(id < names_.size(), "Network: unknown node");
  return names_[id];
}

void Network::connect(NodeId a, NodeId b, LinkSpec spec) {
  require(a < names_.size() && b < names_.size() && a != b, "Network: bad link");
  require(spec.base_delay >= 0 && spec.jitter >= 0 && spec.loss >= 0.0 &&
              spec.loss <= 1.0,
          "Network: bad link spec");
  links_[{std::min(a, b), std::max(a, b)}] = spec;
}

std::uint64_t Network::inbound_count(NodeId node) const {
  require(node < inbound_.size(), "Network: unknown node");
  return inbound_[node];
}

Network::Stats Network::stats() const {
  return Stats{sent_.value(), delivered_.value(), dropped_.value(),
               fault_drops_.value(), bytes_carried_.value()};
}

void Network::send(NodeId from, NodeId to, size_t bytes,
                   std::function<void()> on_deliver) {
  require(from < names_.size() && to < names_.size(), "Network: unknown node");
  sent_.add();
  Probes::get().sent.add();
  if (faults_ && !faults_->empty() &&
      (!faults_->node_up(from, timeline_.now()) ||
       !faults_->link_up(from, to, timeline_.now()))) {
    dropped_.add();
    fault_drops_.add();
    Probes::get().dropped.add();
    Probes::get().fault_drops.add();
    return;
  }
  auto it = links_.find({std::min(from, to), std::max(from, to)});
  if (it == links_.end()) {
    dropped_.add();
    Probes::get().dropped.add();
    return;
  }
  const LinkSpec& link = it->second;
  Bytes draw = rng_.bytes(8);
  double u = static_cast<double>(bigint::BigInt<1>::from_bytes_be(draw).w[0]) /
             (static_cast<double>(UINT64_MAX) + 1.0);
  if (u < link.loss) {
    dropped_.add();
    Probes::get().dropped.add();
    return;
  }
  std::int64_t delay = link.base_delay;
  if (link.jitter > 0) {
    Bytes jb = rng_.bytes(8);
    delay += static_cast<std::int64_t>(bigint::BigInt<1>::from_bytes_be(jb).w[0] %
                                       static_cast<std::uint64_t>(link.jitter + 1));
  }
  delivered_.add();
  bytes_carried_.add(bytes);
  Probes::get().delivered.add();
  Probes::get().bytes_carried.add(bytes);
  ++inbound_[to];
  // A receiver that is down at the arrival instant loses the message.
  timeline_.schedule(delay, [this, to, fn = std::move(on_deliver)] {
    if (faults_ && !faults_->node_up(to, timeline_.now())) {
      fault_drops_.add();
      Probes::get().fault_drops.add();
      return;
    }
    fn();
  });
}

}  // namespace tre::simnet
