// Mirrored update archive over the simulated network.
//
// The paper's server keeps old updates "at a publicly accessible place";
// at planetary scale that place is a set of replicas. The origin pushes
// each new update to every mirror over its link; receivers poll their
// assigned mirror with bounded retry until the update is present. What
// the model surfaces (experiments E16/E18):
//   * availability latency — how long after the release instant a
//     receiver actually holds the update (replication + poll delay),
//   * origin offload — requests absorbed by mirrors instead of the
//     origin, the reason the passive-server design scales reads,
//   * Byzantine tolerance — mirrors are UNTRUSTED; with a FaultPlan
//     installed on the Network, a replica may serve corrupted,
//     relabelled, or garbage bytes, or none at all. Receivers survive
//     because updates self-authenticate (ê(sG,H1(T)) == ê(G,I_T)), the
//     check client/fetcher.h builds its pipeline on.
#pragma once

#include <optional>

#include "core/tre.h"
#include "simnet/network.h"
#include "timeserver/archive.h"

namespace tre::simnet {

class MirroredArchive {
 public:
  /// Builds origin + `mirror_count` mirrors, all linked to the origin
  /// with `replication_link`. `params` is needed receiver-side: fetched
  /// bytes are parsed (and possibly rejected) at the trust boundary.
  MirroredArchive(std::shared_ptr<const params::GdhParams> params, Network& net,
                  server::Timeline& timeline, size_t mirror_count,
                  LinkSpec replication_link);

  NodeId origin() const { return origin_; }
  size_t mirror_count() const { return mirrors_.size(); }
  NodeId mirror_node(size_t idx) const;

  /// Origin-side: stores locally and pushes one copy per mirror. A
  /// mirror that is crashed (per the fault plan) at the replication
  /// arrival instant misses the update until a later publish.
  void publish(const core::KeyUpdate& update);

  static constexpr size_t kOrigin = static_cast<size_t>(-1);

  /// One wire-level request/response round trip: `on_reply` receives the
  /// served bytes exactly as the replica chose to send them — honest
  /// mirrors serve `KeyUpdate::to_bytes()`, Byzantine mirrors (per the
  /// network's FaultPlan) may serve corrupted/relabelled/garbage bytes.
  /// No callback fires when the update is absent, a leg is lost, or the
  /// mirror stays silent; the CALLER owns retry timing. This is the
  /// primitive client::UpdateFetcher drives.
  void request(NodeId receiver, size_t mirror_idx, std::string tag,
               LinkSpec access_link, std::function<void(Bytes)> on_reply);

  /// Receiver-side convenience poller: polls `mirror_idx` (or the origin
  /// when mirror_idx == kOrigin) over `access_link` until a reply parses
  /// as an update for `tag` (and passes `verify` when provided), then
  /// invokes `done` with it. Retries use exponential backoff starting at
  /// `poll_period` seconds (doubling per poll, capped at 8×). A reply
  /// that is garbage, relabelled, or unverifiable counts as a failed
  /// poll and is recorded in Stats::fetch_rejected. Gives up after
  /// `max_polls` polls. For the hardened multi-mirror pipeline
  /// (failover, health, jittered backoff) use client::UpdateFetcher.
  void fetch(NodeId receiver, size_t mirror_idx, std::string tag,
             LinkSpec access_link, std::int64_t poll_period, size_t max_polls,
             std::function<void(const core::KeyUpdate&)> done,
             std::function<bool(const core::KeyUpdate&)> verify = nullptr);

  /// Point-in-time view over the instance registry (mirrored into
  /// obs::Registry::global() as simnet.archive.*).
  struct Stats {
    std::uint64_t publishes = 0;
    std::uint64_t replication_messages = 0;
    std::uint64_t origin_requests = 0;
    std::uint64_t mirror_requests = 0;
    std::uint64_t byzantine_replies = 0;  // dishonest bytes actually served
    std::uint64_t fetch_successes = 0;
    std::uint64_t fetch_rejected = 0;     // replies discarded by fetch()
    std::uint64_t fetch_timeouts = 0;
  };
  Stats stats() const;

  /// The instance-local registry backing stats() (snapshot/export hook).
  const obs::Registry& metrics() const { return reg_; }

 private:
  struct Replica {
    NodeId node;
    server::UpdateArchive archive;
  };
  struct FetchJob;

  NodeId node_for(size_t mirror_idx) const;
  const server::UpdateArchive& archive_for(size_t mirror_idx) const;

  /// What the replica puts on the wire for `tag` (empty = stay silent).
  std::optional<Bytes> replica_reply(size_t mirror_idx, const std::string& tag);

  void poll_once(std::shared_ptr<FetchJob> job);

  std::shared_ptr<const params::GdhParams> params_;
  Network& net_;
  server::Timeline& timeline_;
  NodeId origin_;
  server::UpdateArchive origin_archive_;
  std::vector<Replica> mirrors_;
  // Instance accounting in a private registry; handles resolved once
  // because registry lookup takes a lock.
  obs::Registry reg_;
  obs::Counter& publishes_ = reg_.counter("publishes");
  obs::Counter& replication_messages_ = reg_.counter("replication_messages");
  obs::Counter& origin_requests_ = reg_.counter("origin_requests");
  obs::Counter& mirror_requests_ = reg_.counter("mirror_requests");
  obs::Counter& byzantine_replies_ = reg_.counter("byzantine_replies");
  obs::Counter& fetch_successes_ = reg_.counter("fetch_successes");
  obs::Counter& fetch_rejected_ = reg_.counter("fetch_rejected");
  obs::Counter& fetch_timeouts_ = reg_.counter("fetch_timeouts");
};

}  // namespace tre::simnet
