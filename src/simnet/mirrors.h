// Mirrored update archive over the simulated network.
//
// The paper's server keeps old updates "at a publicly accessible place";
// at planetary scale that place is a set of replicas. The origin pushes
// each new update to every mirror over its link; receivers poll their
// assigned mirror with bounded retry until the update is present. What
// the model surfaces (experiments E16/E18):
//   * availability latency — how long after the release instant a
//     receiver actually holds the update (replication + poll delay),
//   * origin offload — requests absorbed by mirrors instead of the
//     origin, the reason the passive-server design scales reads,
//   * Byzantine tolerance — mirrors are UNTRUSTED; with a FaultPlan
//     installed on the Network, a replica may serve corrupted,
//     relabelled, or garbage bytes, or none at all. Receivers survive
//     because updates self-authenticate (ê(sG,H1(T)) == ê(G,I_T)), the
//     check client/fetcher.h builds its pipeline on.
//
// Backend-generic: BasicMirroredArchive<B> replicates whichever
// backend's updates the server broadcasts; the trust boundary in fetch()
// uses that backend's wire codec, so e.g. a type-1 update served to a
// BLS12-381 receiver is rejected at parse time. `MirroredArchive` is the
// type-1 instantiation.
#pragma once

#include <algorithm>
#include <map>
#include <optional>
#include <string>

#include "core/tre.h"
#include "simnet/network.h"
#include "threshold/threshold.h"
#include "timeserver/archive.h"

namespace tre::simnet {

namespace detail {

// Fleet-wide mirrors of the per-instance counters, plus per-behaviour
// breakdown of dishonest replies (compiled out under -DTRE_METRICS=OFF).
// Shared across backends: replication traffic is replication traffic.
struct MirrorProbes {
  obs::CounterProbe publishes{"simnet.archive.publishes"};
  obs::CounterProbe replication_messages{"simnet.archive.replication_messages"};
  obs::CounterProbe origin_requests{"simnet.archive.origin_requests"};
  obs::CounterProbe mirror_requests{"simnet.archive.mirror_requests"};
  obs::CounterProbe byzantine_replies{"simnet.archive.byzantine_replies"};
  obs::CounterProbe byzantine_bitflip{"simnet.archive.byzantine.bitflip"};
  obs::CounterProbe byzantine_relabel{"simnet.archive.byzantine.relabel"};
  obs::CounterProbe byzantine_garbage{"simnet.archive.byzantine.garbage"};
  obs::CounterProbe fetch_successes{"simnet.archive.fetch_successes"};
  obs::CounterProbe fetch_rejected{"simnet.archive.fetch_rejected"};
  obs::CounterProbe fetch_timeouts{"simnet.archive.fetch_timeouts"};
  // Threshold-beacon traffic: mirrors doubling as beacon nodes serving
  // their own partial updates.
  obs::CounterProbe partial_publishes{"simnet.archive.partial_publishes"};
  obs::CounterProbe partial_requests{"simnet.archive.partial_requests"};
};

inline const MirrorProbes& mirror_probes() {
  static const MirrorProbes p;
  return p;
}

}  // namespace detail

template <class B>
class BasicMirroredArchive {
 public:
  /// Builds origin + `mirror_count` mirrors, all linked to the origin
  /// with `replication_link`. `params` is needed receiver-side: fetched
  /// bytes are parsed (and possibly rejected) at the trust boundary.
  BasicMirroredArchive(std::shared_ptr<const typename B::Params> params,
                       Network& net, server::Timeline& timeline,
                       size_t mirror_count, LinkSpec replication_link)
      : params_(std::move(params)),
        net_(net),
        timeline_(timeline),
        origin_(net.add_node("origin")) {
    require(params_ != nullptr, "MirroredArchive: null params");
    mirrors_.reserve(mirror_count);
    for (size_t i = 0; i < mirror_count; ++i) {
      NodeId node = net_.add_node("mirror-" + std::to_string(i));
      net_.connect(origin_, node, replication_link);
      mirrors_.push_back(Replica{node, {}});
    }
  }

  NodeId origin() const { return origin_; }
  size_t mirror_count() const { return mirrors_.size(); }

  NodeId mirror_node(size_t idx) const {
    require(idx < mirrors_.size(), "MirroredArchive: bad mirror index");
    return mirrors_[idx].node;
  }

  /// Origin-side: stores locally and pushes one copy per mirror. A
  /// mirror that is crashed (per the fault plan) at the replication
  /// arrival instant misses the update until a later publish.
  void publish(const core::BasicKeyUpdate<B>& update) {
    publishes_.add();
    detail::mirror_probes().publishes.add();
    origin_archive_.put(update);
    size_t wire = update.to_bytes().size();
    for (size_t i = 0; i < mirrors_.size(); ++i) {
      replication_messages_.add();
      detail::mirror_probes().replication_messages.add();
      // Copy captured by value: the mirror stores it at arrival time.
      core::BasicKeyUpdate<B> copy = update;
      net_.send(origin_, mirrors_[i].node, wire,
                [this, i, copy = std::move(copy)] { mirrors_[i].archive.put(copy); });
    }
  }

  static constexpr size_t kOrigin = static_cast<size_t>(-1);

  /// One wire-level request/response round trip: `on_reply` receives the
  /// served bytes exactly as the replica chose to send them — honest
  /// mirrors serve `KeyUpdate::to_bytes()`, Byzantine mirrors (per the
  /// network's FaultPlan) may serve corrupted/relabelled/garbage bytes.
  /// No callback fires when the update is absent, a leg is lost, or the
  /// mirror stays silent; the CALLER owns retry timing. This is the
  /// primitive client::UpdateFetcher drives.
  void request(NodeId receiver, size_t mirror_idx, std::string tag,
               LinkSpec access_link, std::function<void(Bytes)> on_reply) {
    require(mirror_idx == kOrigin || mirror_idx < mirrors_.size(),
            "MirroredArchive: bad mirror index");
    NodeId target = node_for(mirror_idx);
    net_.connect(receiver, target, access_link);
    if (mirror_idx == kOrigin) {
      origin_requests_.add();
      detail::mirror_probes().origin_requests.add();
    } else {
      mirror_requests_.add();
      detail::mirror_probes().mirror_requests.add();
    }
    // Request leg; the replica decides its reply (if any) at arrival time.
    size_t request_bytes = tag.size();  // before the move below
    net_.send(receiver, target, request_bytes,
              [this, receiver, mirror_idx, target, tag = std::move(tag),
               on_reply = std::move(on_reply)]() mutable {
                std::optional<Bytes> reply = replica_reply(mirror_idx, tag);
                if (!reply) return;
                size_t wire = reply->size();
                net_.send(target, receiver, wire,
                          [bytes = std::move(*reply),
                           on_reply = std::move(on_reply)] { on_reply(bytes); });
              });
  }

  /// Beacon-node side: mirror `mirror_idx` doubles as node i of a t-of-n
  /// threshold beacon and stores ITS OWN partial update for later
  /// serving. There is no origin replication here — partials originate
  /// at the node that holds the share.
  void publish_partial(size_t mirror_idx,
                       threshold::BasicPartialUpdate<B> partial) {
    require(mirror_idx < mirrors_.size(), "MirroredArchive: bad mirror index");
    detail::mirror_probes().partial_publishes.add();
    mirrors_[mirror_idx].partials[partial.tag] = std::move(partial);
  }

  /// Wire-level beacon reply, synchronous (quorum collection is a bulk
  /// path — see UpdateSource::request_partial): what mirror `mirror_idx`
  /// puts on the wire for its partial on `tag`. Honest nodes serve
  /// PartialUpdate::to_bytes(); Byzantine nodes (per the network's
  /// FaultPlan) serve bit-flipped, relabelled, or garbage bytes; crashed
  /// or dropping nodes stay silent (nullopt).
  std::optional<Bytes> partial_reply(size_t mirror_idx, const std::string& tag) {
    require(mirror_idx < mirrors_.size(), "MirroredArchive: bad mirror index");
    detail::mirror_probes().partial_requests.add();
    FaultPlan* plan = net_.fault_plan();
    NodeId node = mirrors_[mirror_idx].node;
    if (plan && !plan->node_up(node, timeline_.now())) {
      return std::nullopt;  // crashed
    }
    const auto& partials = mirrors_[mirror_idx].partials;
    auto found = partials.find(tag);

    ByzantineMode mode = ByzantineMode::kHonest;
    if (plan) mode = plan->behaviour(node);
    switch (mode) {
      case ByzantineMode::kHonest:
        if (found == partials.end()) return std::nullopt;
        return found->second.to_bytes();
      case ByzantineMode::kDrop:
        return std::nullopt;
      case ByzantineMode::kBitFlip:
        if (found == partials.end()) return std::nullopt;
        count_byzantine(detail::mirror_probes().byzantine_bitflip);
        return plan->flip_one_bit(found->second.to_bytes());
      case ByzantineMode::kRelabel: {
        // Serve some OTHER tag's partial signature under the requested
        // tag — well-formed bytes that fail the pairing check.
        for (const auto& [other_tag, other] : partials) {
          if (other_tag == tag) continue;
          count_byzantine(detail::mirror_probes().byzantine_relabel);
          return threshold::BasicPartialUpdate<B>{other.index, tag, other.sig}
              .to_bytes();
        }
        if (found == partials.end()) return std::nullopt;
        count_byzantine(detail::mirror_probes().byzantine_garbage);
        return plan->garbage(found->second.to_bytes().size());
      }
      case ByzantineMode::kGarbage: {
        size_t len = found != partials.end()
                         ? found->second.to_bytes().size()
                         : 4 + tag.size() + B::gu_wire_bytes(*params_);
        count_byzantine(detail::mirror_probes().byzantine_garbage);
        return plan->garbage(len);
      }
    }
    return std::nullopt;
  }

  /// Receiver-side convenience poller: polls `mirror_idx` (or the origin
  /// when mirror_idx == kOrigin) over `access_link` until a reply parses
  /// as an update for `tag` (and passes `verify` when provided), then
  /// invokes `done` with it. Retries use exponential backoff starting at
  /// `poll_period` seconds (doubling per poll, capped at 8×). A reply
  /// that is garbage, relabelled, or unverifiable counts as a failed
  /// poll and is recorded in Stats::fetch_rejected. Gives up after
  /// `max_polls` polls. For the hardened multi-mirror pipeline
  /// (failover, health, jittered backoff) use client::UpdateFetcher.
  void fetch(NodeId receiver, size_t mirror_idx, std::string tag,
             LinkSpec access_link, std::int64_t poll_period, size_t max_polls,
             std::function<void(const core::BasicKeyUpdate<B>&)> done,
             std::function<bool(const core::BasicKeyUpdate<B>&)> verify = nullptr) {
    require(mirror_idx == kOrigin || mirror_idx < mirrors_.size(),
            "MirroredArchive: bad mirror index");
    require(poll_period > 0, "MirroredArchive: poll period must be positive");
    auto job = std::make_shared<FetchJob>();
    job->receiver = receiver;
    job->mirror_idx = mirror_idx;
    job->tag = std::move(tag);
    job->access_link = access_link;
    job->base_period = poll_period;
    job->polls_left = max_polls;
    job->on_done = std::move(done);
    job->verify = std::move(verify);
    poll_once(std::move(job));
  }

  /// Point-in-time view over the instance registry (mirrored into
  /// obs::Registry::global() as simnet.archive.*).
  struct Stats {
    std::uint64_t publishes = 0;
    std::uint64_t replication_messages = 0;
    std::uint64_t origin_requests = 0;
    std::uint64_t mirror_requests = 0;
    std::uint64_t byzantine_replies = 0;  // dishonest bytes actually served
    std::uint64_t fetch_successes = 0;
    std::uint64_t fetch_rejected = 0;     // replies discarded by fetch()
    std::uint64_t fetch_timeouts = 0;
  };

  Stats stats() const {
    return Stats{publishes_.value(),         replication_messages_.value(),
                 origin_requests_.value(),   mirror_requests_.value(),
                 byzantine_replies_.value(), fetch_successes_.value(),
                 fetch_rejected_.value(),    fetch_timeouts_.value()};
  }

  /// The instance-local registry backing stats() (snapshot/export hook).
  const obs::Registry& metrics() const { return reg_; }

 private:
  struct Replica {
    NodeId node;
    server::BasicUpdateArchive<B> archive;
    // Beacon-node state: this node's own partials, keyed by tag.
    std::map<std::string, threshold::BasicPartialUpdate<B>> partials;
  };

  void count_byzantine(const obs::CounterProbe& breakdown) {
    byzantine_replies_.add();
    detail::mirror_probes().byzantine_replies.add();
    breakdown.add();
  }

  struct FetchJob {
    NodeId receiver;
    size_t mirror_idx;
    std::string tag;
    LinkSpec access_link;
    std::int64_t base_period;
    size_t polls_left;
    size_t backoff_shift = 0;  // doubling exponent, capped at 8× the base
    bool done = false;
    bool timed_out = false;
    std::function<void(const core::BasicKeyUpdate<B>&)> on_done;
    std::function<bool(const core::BasicKeyUpdate<B>&)> verify;
  };

  NodeId node_for(size_t mirror_idx) const {
    return mirror_idx == kOrigin ? origin_ : mirrors_[mirror_idx].node;
  }

  const server::BasicUpdateArchive<B>& archive_for(size_t mirror_idx) const {
    return mirror_idx == kOrigin ? origin_archive_ : mirrors_[mirror_idx].archive;
  }

  /// What the replica puts on the wire for `tag` (empty = stay silent).
  std::optional<Bytes> replica_reply(size_t mirror_idx, const std::string& tag) {
    const server::BasicUpdateArchive<B>& archive = archive_for(mirror_idx);
    std::optional<core::BasicKeyUpdate<B>> found = archive.find(tag);

    ByzantineMode mode = ByzantineMode::kHonest;
    FaultPlan* plan = net_.fault_plan();
    // The origin is the server's own box; only mirrors go Byzantine.
    if (plan && mirror_idx != kOrigin) mode = plan->behaviour(node_for(mirror_idx));

    switch (mode) {
      case ByzantineMode::kHonest:
        if (!found) return std::nullopt;
        return found->to_bytes();
      case ByzantineMode::kDrop:
        return std::nullopt;
      case ByzantineMode::kBitFlip:
        if (!found) return std::nullopt;  // nothing to corrupt yet
        byzantine_replies_.add();
        detail::mirror_probes().byzantine_replies.add();
        detail::mirror_probes().byzantine_bitflip.add();
        return plan->flip_one_bit(found->to_bytes());
      case ByzantineMode::kRelabel: {
        // Serve some OTHER archived update's signature under the requested
        // tag — a well-formed point that fails self-authentication.
        const auto& all = archive.all();
        for (auto it = all.rbegin(); it != all.rend(); ++it) {
          if (it->tag != tag) {
            byzantine_replies_.add();
            detail::mirror_probes().byzantine_replies.add();
            detail::mirror_probes().byzantine_relabel.add();
            return core::BasicKeyUpdate<B>{tag, it->sig}.to_bytes();
          }
        }
        if (all.empty()) return std::nullopt;
        // Only the requested update exists: degrade to garbage of honest size.
        byzantine_replies_.add();
        detail::mirror_probes().byzantine_replies.add();
        detail::mirror_probes().byzantine_garbage.add();
        return plan->garbage(all.front().to_bytes().size());
      }
      case ByzantineMode::kGarbage: {
        size_t len = found ? found->to_bytes().size()
                           : tag.size() + 2 + B::gu_wire_bytes(*params_);
        byzantine_replies_.add();
        detail::mirror_probes().byzantine_replies.add();
        detail::mirror_probes().byzantine_garbage.add();
        return plan->garbage(len);
      }
    }
    return std::nullopt;
  }

  void poll_once(std::shared_ptr<FetchJob> job) {
    if (job->done || job->timed_out) return;
    if (job->polls_left == 0) {
      job->timed_out = true;
      fetch_timeouts_.add();
      detail::mirror_probes().fetch_timeouts.add();
      return;
    }
    --job->polls_left;
    request(job->receiver, job->mirror_idx, job->tag, job->access_link,
            [this, job](Bytes wire) {
              if (job->done || job->timed_out) return;
              // The trust boundary: bytes from an untrusted replica must
              // parse, carry the requested tag (relabelling is an attack),
              // and pass the caller's verification before acceptance.
              std::optional<core::BasicKeyUpdate<B>> parsed =
                  core::BasicKeyUpdate<B>::try_from_bytes(*params_, wire);
              if (!parsed || parsed->tag != job->tag ||
                  (job->verify && !job->verify(*parsed))) {
                fetch_rejected_.add();  // a failed poll; retry is already armed
                detail::mirror_probes().fetch_rejected.add();
                return;
              }
              job->done = true;
              fetch_successes_.add();
              detail::mirror_probes().fetch_successes.add();
              job->on_done(*parsed);
            });
    // Receiver-driven exponential backoff: the next poll fires whether or
    // not the replica answers (absence and garbage cost the same).
    std::int64_t delay = job->base_period
                         << std::min<size_t>(job->backoff_shift, 3);
    ++job->backoff_shift;
    timeline_.schedule(delay, [this, job] { poll_once(job); });
  }

  std::shared_ptr<const typename B::Params> params_;
  Network& net_;
  server::Timeline& timeline_;
  NodeId origin_;
  server::BasicUpdateArchive<B> origin_archive_;
  std::vector<Replica> mirrors_;
  // Instance accounting in a private registry; handles resolved once
  // because registry lookup takes a lock.
  obs::Registry reg_;
  obs::Counter& publishes_ = reg_.counter("publishes");
  obs::Counter& replication_messages_ = reg_.counter("replication_messages");
  obs::Counter& origin_requests_ = reg_.counter("origin_requests");
  obs::Counter& mirror_requests_ = reg_.counter("mirror_requests");
  obs::Counter& byzantine_replies_ = reg_.counter("byzantine_replies");
  obs::Counter& fetch_successes_ = reg_.counter("fetch_successes");
  obs::Counter& fetch_rejected_ = reg_.counter("fetch_rejected");
  obs::Counter& fetch_timeouts_ = reg_.counter("fetch_timeouts");
};

using MirroredArchive = BasicMirroredArchive<core::Tre512Backend>;

extern template class BasicMirroredArchive<core::Tre512Backend>;

}  // namespace tre::simnet
