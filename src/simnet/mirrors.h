// Mirrored update archive over the simulated network.
//
// The paper's server keeps old updates "at a publicly accessible place";
// at planetary scale that place is a set of replicas. The origin pushes
// each new update to every mirror over its link; receivers poll their
// assigned mirror with bounded retry until the update is present. What
// the model surfaces (experiment E16):
//   * availability latency — how long after the release instant a
//     receiver actually holds the update (replication + poll delay),
//   * origin offload — requests absorbed by mirrors instead of the
//     origin, the reason the passive-server design scales reads.
#pragma once

#include <optional>

#include "core/tre.h"
#include "simnet/network.h"
#include "timeserver/archive.h"

namespace tre::simnet {

class MirroredArchive {
 public:
  /// Builds origin + `mirror_count` mirrors, all linked to the origin
  /// with `replication_link`.
  MirroredArchive(Network& net, server::Timeline& timeline, size_t mirror_count,
                  LinkSpec replication_link);

  NodeId origin() const { return origin_; }
  size_t mirror_count() const { return mirrors_.size(); }
  NodeId mirror_node(size_t idx) const;

  /// Origin-side: stores locally and pushes one copy per mirror.
  void publish(const core::KeyUpdate& update);

  /// Receiver-side: polls `mirror_idx` (or the origin when
  /// mirror_idx == kOrigin) every `poll_period` seconds over
  /// `access_link` until the tagged update is present, then invokes
  /// `done` with it. Gives up after `max_polls` unanswered/empty polls.
  static constexpr size_t kOrigin = static_cast<size_t>(-1);
  void fetch(NodeId receiver, size_t mirror_idx, std::string tag,
             LinkSpec access_link, std::int64_t poll_period, size_t max_polls,
             std::function<void(const core::KeyUpdate&)> done);

  struct Stats {
    std::uint64_t publishes = 0;
    std::uint64_t replication_messages = 0;
    std::uint64_t origin_requests = 0;
    std::uint64_t mirror_requests = 0;
    std::uint64_t fetch_successes = 0;
    std::uint64_t fetch_timeouts = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Replica {
    NodeId node;
    server::UpdateArchive archive;
  };

  void poll_once(NodeId receiver, size_t mirror_idx, std::string tag,
                 LinkSpec access_link, std::int64_t poll_period, size_t polls_left,
                 std::function<void(const core::KeyUpdate&)> done);

  Network& net_;
  server::Timeline& timeline_;
  NodeId origin_;
  server::UpdateArchive origin_archive_;
  std::vector<Replica> mirrors_;
  Stats stats_;
};

}  // namespace tre::simnet
