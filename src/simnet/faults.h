// Deterministic fault injection for the simulated distribution path.
//
// The paper's §3 scaling story only works if the "publicly accessible
// place" survives an untrusted, partially broken distribution network:
// updates are self-authenticating, so mirrors need no trust — but the
// code has to actually exercise that freedom. A FaultPlan is a
// seed-driven script of failures that the Network and MirroredArchive
// consult:
//   * link partitions — a link carries nothing during [from, until);
//   * crash/recover windows — a node neither sends, receives, nor
//     (for mirrors) absorbs replicated updates while down;
//   * Byzantine mirror behaviours — a replica that answers requests
//     with corrupted, relabelled, or garbage bytes, or stays silent.
// Everything is deterministic under the plan's seed: the same plan and
// timeline replay bit-identically, so every adversarial schedule found
// by a sweep is a reproducible regression test.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "hashing/drbg.h"

namespace tre::simnet {

using NodeId = size_t;

/// How a mirror answers a request it chooses not to serve honestly.
/// All modes preserve liveness accounting (the request is received);
/// what varies is the reply.
enum class ByzantineMode {
  kHonest,   ///< serve the archive contents faithfully
  kBitFlip,  ///< serve the requested update with one bit flipped
  kRelabel,  ///< serve another tag's update relabelled as the requested tag
  kDrop,     ///< swallow the request, never reply
  kGarbage,  ///< reply with random bytes of plausible length
};

class FaultPlan {
 public:
  /// `seed` drives every random choice the plan makes (which bit to
  /// flip, what garbage to serve); empty falls back to a fixed default.
  explicit FaultPlan(ByteSpan seed);

  // --- Scheduled outages (half-open windows [from, until) in timeline
  // --- seconds; multiple windows per link/node accumulate) -----------------

  void partition_link(NodeId a, NodeId b, std::int64_t from, std::int64_t until);
  void crash_node(NodeId node, std::int64_t from, std::int64_t until);

  /// Marks `node` as Byzantine with the given reply behaviour (mirrors
  /// consult this; non-mirror nodes ignore it).
  void set_byzantine(NodeId node, ByzantineMode mode);

  // --- Queries (consulted by Network::send and MirroredArchive) ------------

  bool link_up(NodeId a, NodeId b, std::int64_t now) const;
  bool node_up(NodeId node, std::int64_t now) const;
  ByzantineMode behaviour(NodeId node) const;

  /// True once any fault has been scripted (lets hot paths skip lookups).
  bool empty() const {
    return link_windows_.empty() && node_windows_.empty() && byzantine_.empty();
  }

  // --- Deterministic corruption material -----------------------------------

  /// `wire` with exactly one seed-chosen bit flipped (non-empty input).
  Bytes flip_one_bit(ByteSpan wire);

  /// `len` seed-driven garbage bytes.
  Bytes garbage(size_t len);

 private:
  struct Window {
    std::int64_t from;
    std::int64_t until;
  };
  static bool covered(const std::vector<Window>& windows, std::int64_t now);

  hashing::HmacDrbg rng_;
  std::map<std::pair<NodeId, NodeId>, std::vector<Window>> link_windows_;
  std::map<NodeId, std::vector<Window>> node_windows_;
  std::map<NodeId, ByzantineMode> byzantine_;
};

}  // namespace tre::simnet
