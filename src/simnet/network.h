// Discrete-event point-to-point network simulation.
//
// Models the distribution side of the paper's §3 deployment story: the
// passive server's outputs travel over real links with latency, jitter
// and loss, to mirrors and receivers. Built on the shared Timeline so
// protocol logic and network behaviour share one deterministic clock.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "hashing/drbg.h"
#include "obs/metrics.h"
#include "simnet/faults.h"
#include "timeserver/timeline.h"

namespace tre::simnet {

struct LinkSpec {
  std::int64_t base_delay = 0;  // seconds
  std::int64_t jitter = 0;      // uniform extra delay in [0, jitter]
  double loss = 0.0;            // per-message drop probability
};

class Network {
 public:
  Network(server::Timeline& timeline, ByteSpan seed);

  NodeId add_node(std::string name);
  const std::string& name_of(NodeId id) const;
  size_t node_count() const { return names_.size(); }

  /// Bidirectional link; later connect() calls replace the spec.
  void connect(NodeId a, NodeId b, LinkSpec spec);

  /// Sends `bytes` from a to b; `on_deliver` fires at the arrival
  /// instant, or never if the message is lost or no link exists (an
  /// unreachable destination counts as a drop). With a fault plan
  /// installed, a partitioned link or crashed sender drops at the send
  /// instant, and a receiver that is down at the arrival instant loses
  /// the message even though it was carried.
  void send(NodeId from, NodeId to, size_t bytes, std::function<void()> on_deliver);

  /// Installs a fault script (non-owning; nullptr restores fault-free
  /// behaviour). The plan must outlive every send it affects.
  void set_fault_plan(FaultPlan* plan) { faults_ = plan; }
  FaultPlan* fault_plan() const { return faults_; }

  /// Point-in-time view over the instance registry (the counters behind
  /// it are also mirrored into obs::Registry::global() as simnet.net.*).
  struct Stats {
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;   // scheduled for delivery
    std::uint64_t dropped = 0;
    std::uint64_t fault_drops = 0; // subset of drops caused by the fault plan
    std::uint64_t bytes_carried = 0;
  };
  Stats stats() const;

  /// The instance-local registry backing stats() (snapshot/export hook).
  const obs::Registry& metrics() const { return reg_; }

  /// Messages addressed to `node` (load accounting for E16).
  std::uint64_t inbound_count(NodeId node) const;

 private:
  server::Timeline& timeline_;
  hashing::HmacDrbg rng_;
  std::vector<std::string> names_;
  std::map<std::pair<NodeId, NodeId>, LinkSpec> links_;
  std::vector<std::uint64_t> inbound_;
  FaultPlan* faults_ = nullptr;
  // Instance accounting lives in a private registry; handles are resolved
  // once here because registry lookup takes a lock.
  obs::Registry reg_;
  obs::Counter& sent_ = reg_.counter("sent");
  obs::Counter& delivered_ = reg_.counter("delivered");
  obs::Counter& dropped_ = reg_.counter("dropped");
  obs::Counter& fault_drops_ = reg_.counter("fault_drops");
  obs::Counter& bytes_carried_ = reg_.counter("bytes_carried");
};

}  // namespace tre::simnet
