#include "simnet/mirrors.h"

namespace tre::simnet {

template class BasicMirroredArchive<core::Tre512Backend>;

}  // namespace tre::simnet
