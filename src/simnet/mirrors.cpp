#include "simnet/mirrors.h"

#include <algorithm>

namespace tre::simnet {

namespace {

// Fleet-wide mirrors of the per-instance counters, plus per-behaviour
// breakdown of dishonest replies (compiled out under -DTRE_METRICS=OFF).
struct Probes {
  obs::CounterProbe publishes{"simnet.archive.publishes"};
  obs::CounterProbe replication_messages{"simnet.archive.replication_messages"};
  obs::CounterProbe origin_requests{"simnet.archive.origin_requests"};
  obs::CounterProbe mirror_requests{"simnet.archive.mirror_requests"};
  obs::CounterProbe byzantine_replies{"simnet.archive.byzantine_replies"};
  obs::CounterProbe byzantine_bitflip{"simnet.archive.byzantine.bitflip"};
  obs::CounterProbe byzantine_relabel{"simnet.archive.byzantine.relabel"};
  obs::CounterProbe byzantine_garbage{"simnet.archive.byzantine.garbage"};
  obs::CounterProbe fetch_successes{"simnet.archive.fetch_successes"};
  obs::CounterProbe fetch_rejected{"simnet.archive.fetch_rejected"};
  obs::CounterProbe fetch_timeouts{"simnet.archive.fetch_timeouts"};

  static const Probes& get() {
    static const Probes p;
    return p;
  }
};

}  // namespace

MirroredArchive::MirroredArchive(std::shared_ptr<const params::GdhParams> params,
                                 Network& net, server::Timeline& timeline,
                                 size_t mirror_count, LinkSpec replication_link)
    : params_(std::move(params)),
      net_(net),
      timeline_(timeline),
      origin_(net.add_node("origin")) {
  require(params_ != nullptr, "MirroredArchive: null params");
  mirrors_.reserve(mirror_count);
  for (size_t i = 0; i < mirror_count; ++i) {
    NodeId node = net_.add_node("mirror-" + std::to_string(i));
    net_.connect(origin_, node, replication_link);
    mirrors_.push_back(Replica{node, {}});
  }
}

NodeId MirroredArchive::mirror_node(size_t idx) const {
  require(idx < mirrors_.size(), "MirroredArchive: bad mirror index");
  return mirrors_[idx].node;
}

NodeId MirroredArchive::node_for(size_t mirror_idx) const {
  return mirror_idx == kOrigin ? origin_ : mirrors_[mirror_idx].node;
}

const server::UpdateArchive& MirroredArchive::archive_for(size_t mirror_idx) const {
  return mirror_idx == kOrigin ? origin_archive_ : mirrors_[mirror_idx].archive;
}

MirroredArchive::Stats MirroredArchive::stats() const {
  return Stats{publishes_.value(),         replication_messages_.value(),
               origin_requests_.value(),   mirror_requests_.value(),
               byzantine_replies_.value(), fetch_successes_.value(),
               fetch_rejected_.value(),    fetch_timeouts_.value()};
}

void MirroredArchive::publish(const core::KeyUpdate& update) {
  publishes_.add();
  Probes::get().publishes.add();
  origin_archive_.put(update);
  size_t wire = update.to_bytes().size();
  for (size_t i = 0; i < mirrors_.size(); ++i) {
    replication_messages_.add();
    Probes::get().replication_messages.add();
    // Copy captured by value: the mirror stores it at arrival time.
    core::KeyUpdate copy = update;
    net_.send(origin_, mirrors_[i].node, wire,
              [this, i, copy = std::move(copy)] { mirrors_[i].archive.put(copy); });
  }
}

std::optional<Bytes> MirroredArchive::replica_reply(size_t mirror_idx,
                                                    const std::string& tag) {
  const server::UpdateArchive& archive = archive_for(mirror_idx);
  std::optional<core::KeyUpdate> found = archive.find(tag);

  ByzantineMode mode = ByzantineMode::kHonest;
  FaultPlan* plan = net_.fault_plan();
  // The origin is the server's own box; only mirrors go Byzantine.
  if (plan && mirror_idx != kOrigin) mode = plan->behaviour(node_for(mirror_idx));

  switch (mode) {
    case ByzantineMode::kHonest:
      if (!found) return std::nullopt;
      return found->to_bytes();
    case ByzantineMode::kDrop:
      return std::nullopt;
    case ByzantineMode::kBitFlip:
      if (!found) return std::nullopt;  // nothing to corrupt yet
      byzantine_replies_.add();
      Probes::get().byzantine_replies.add();
      Probes::get().byzantine_bitflip.add();
      return plan->flip_one_bit(found->to_bytes());
    case ByzantineMode::kRelabel: {
      // Serve some OTHER archived update's signature under the requested
      // tag — a well-formed point that fails self-authentication.
      const auto& all = archive.all();
      for (auto it = all.rbegin(); it != all.rend(); ++it) {
        if (it->tag != tag) {
          byzantine_replies_.add();
          Probes::get().byzantine_replies.add();
          Probes::get().byzantine_relabel.add();
          return core::KeyUpdate{tag, it->sig}.to_bytes();
        }
      }
      if (all.empty()) return std::nullopt;
      // Only the requested update exists: degrade to garbage of honest size.
      byzantine_replies_.add();
      Probes::get().byzantine_replies.add();
      Probes::get().byzantine_garbage.add();
      return plan->garbage(all.front().to_bytes().size());
    }
    case ByzantineMode::kGarbage: {
      size_t len = found ? found->to_bytes().size()
                         : tag.size() + 2 + params_->g1_compressed_bytes();
      byzantine_replies_.add();
      Probes::get().byzantine_replies.add();
      Probes::get().byzantine_garbage.add();
      return plan->garbage(len);
    }
  }
  return std::nullopt;
}

void MirroredArchive::request(NodeId receiver, size_t mirror_idx, std::string tag,
                              LinkSpec access_link,
                              std::function<void(Bytes)> on_reply) {
  require(mirror_idx == kOrigin || mirror_idx < mirrors_.size(),
          "MirroredArchive: bad mirror index");
  NodeId target = node_for(mirror_idx);
  net_.connect(receiver, target, access_link);
  if (mirror_idx == kOrigin) {
    origin_requests_.add();
    Probes::get().origin_requests.add();
  } else {
    mirror_requests_.add();
    Probes::get().mirror_requests.add();
  }
  // Request leg; the replica decides its reply (if any) at arrival time.
  size_t request_bytes = tag.size();  // before the move below
  net_.send(receiver, target, request_bytes,
            [this, receiver, mirror_idx, target, tag = std::move(tag),
             on_reply = std::move(on_reply)]() mutable {
              std::optional<Bytes> reply = replica_reply(mirror_idx, tag);
              if (!reply) return;
              size_t wire = reply->size();
              net_.send(target, receiver, wire,
                        [bytes = std::move(*reply), on_reply = std::move(on_reply)] {
                          on_reply(bytes);
                        });
            });
}

struct MirroredArchive::FetchJob {
  NodeId receiver;
  size_t mirror_idx;
  std::string tag;
  LinkSpec access_link;
  std::int64_t base_period;
  size_t polls_left;
  size_t backoff_shift = 0;  // doubling exponent, capped at 8× the base
  bool done = false;
  bool timed_out = false;
  std::function<void(const core::KeyUpdate&)> on_done;
  std::function<bool(const core::KeyUpdate&)> verify;
};

void MirroredArchive::fetch(NodeId receiver, size_t mirror_idx, std::string tag,
                            LinkSpec access_link, std::int64_t poll_period,
                            size_t max_polls,
                            std::function<void(const core::KeyUpdate&)> done,
                            std::function<bool(const core::KeyUpdate&)> verify) {
  require(mirror_idx == kOrigin || mirror_idx < mirrors_.size(),
          "MirroredArchive: bad mirror index");
  require(poll_period > 0, "MirroredArchive: poll period must be positive");
  auto job = std::make_shared<FetchJob>();
  job->receiver = receiver;
  job->mirror_idx = mirror_idx;
  job->tag = std::move(tag);
  job->access_link = access_link;
  job->base_period = poll_period;
  job->polls_left = max_polls;
  job->on_done = std::move(done);
  job->verify = std::move(verify);
  poll_once(std::move(job));
}

void MirroredArchive::poll_once(std::shared_ptr<FetchJob> job) {
  if (job->done || job->timed_out) return;
  if (job->polls_left == 0) {
    job->timed_out = true;
    fetch_timeouts_.add();
    Probes::get().fetch_timeouts.add();
    return;
  }
  --job->polls_left;
  request(job->receiver, job->mirror_idx, job->tag, job->access_link,
          [this, job](Bytes wire) {
            if (job->done || job->timed_out) return;
            // The trust boundary: bytes from an untrusted replica must
            // parse, carry the requested tag (relabelling is an attack),
            // and pass the caller's verification before acceptance.
            std::optional<core::KeyUpdate> parsed =
                core::KeyUpdate::try_from_bytes(*params_, wire);
            if (!parsed || parsed->tag != job->tag ||
                (job->verify && !job->verify(*parsed))) {
              fetch_rejected_.add();  // a failed poll; retry is already armed
              Probes::get().fetch_rejected.add();
              return;
            }
            job->done = true;
            fetch_successes_.add();
            Probes::get().fetch_successes.add();
            job->on_done(*parsed);
          });
  // Receiver-driven exponential backoff: the next poll fires whether or
  // not the replica answers (absence and garbage cost the same).
  std::int64_t delay = job->base_period
                       << std::min<size_t>(job->backoff_shift, 3);
  ++job->backoff_shift;
  timeline_.schedule(delay, [this, job] { poll_once(job); });
}

}  // namespace tre::simnet
