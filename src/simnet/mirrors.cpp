#include "simnet/mirrors.h"

namespace tre::simnet {

MirroredArchive::MirroredArchive(Network& net, server::Timeline& timeline,
                                 size_t mirror_count, LinkSpec replication_link)
    : net_(net), timeline_(timeline), origin_(net.add_node("origin")) {
  mirrors_.reserve(mirror_count);
  for (size_t i = 0; i < mirror_count; ++i) {
    NodeId node = net_.add_node("mirror-" + std::to_string(i));
    net_.connect(origin_, node, replication_link);
    mirrors_.push_back(Replica{node, {}});
  }
}

NodeId MirroredArchive::mirror_node(size_t idx) const {
  require(idx < mirrors_.size(), "MirroredArchive: bad mirror index");
  return mirrors_[idx].node;
}

void MirroredArchive::publish(const core::KeyUpdate& update) {
  ++stats_.publishes;
  origin_archive_.put(update);
  size_t wire = update.to_bytes().size();
  for (size_t i = 0; i < mirrors_.size(); ++i) {
    ++stats_.replication_messages;
    // Copy captured by value: the mirror stores it at arrival time.
    core::KeyUpdate copy = update;
    net_.send(origin_, mirrors_[i].node, wire,
              [this, i, copy = std::move(copy)] { mirrors_[i].archive.put(copy); });
  }
}

void MirroredArchive::fetch(NodeId receiver, size_t mirror_idx, std::string tag,
                            LinkSpec access_link, std::int64_t poll_period,
                            size_t max_polls,
                            std::function<void(const core::KeyUpdate&)> done) {
  require(mirror_idx == kOrigin || mirror_idx < mirrors_.size(),
          "MirroredArchive: bad mirror index");
  NodeId target = mirror_idx == kOrigin ? origin_ : mirrors_[mirror_idx].node;
  net_.connect(receiver, target, access_link);
  poll_once(receiver, mirror_idx, std::move(tag), access_link, poll_period, max_polls,
            std::move(done));
}

void MirroredArchive::poll_once(NodeId receiver, size_t mirror_idx, std::string tag,
                                LinkSpec access_link, std::int64_t poll_period,
                                size_t polls_left,
                                std::function<void(const core::KeyUpdate&)> done) {
  if (polls_left == 0) {
    ++stats_.fetch_timeouts;
    return;
  }
  NodeId target = mirror_idx == kOrigin ? origin_ : mirrors_[mirror_idx].node;
  if (mirror_idx == kOrigin) {
    ++stats_.origin_requests;
  } else {
    ++stats_.mirror_requests;
  }

  // Request leg; at the replica, look up and either send the response
  // leg or let the receiver retry after its poll period.
  net_.send(receiver, target, tag.size(), [this, receiver, mirror_idx, tag,
                                           access_link, poll_period, polls_left,
                                           done]() mutable {
    const server::UpdateArchive& archive =
        mirror_idx == kOrigin ? origin_archive_ : mirrors_[mirror_idx].archive;
    std::optional<core::KeyUpdate> found = archive.find(tag);
    if (found) {
      size_t wire = found->to_bytes().size();
      NodeId target2 = mirror_idx == kOrigin ? origin_ : mirrors_[mirror_idx].node;
      net_.send(target2, receiver, wire, [this, update = *found, done]() {
        ++stats_.fetch_successes;
        done(update);
      });
      return;
    }
    // Not replicated yet: the receiver polls again later.
    timeline_.schedule(poll_period, [this, receiver, mirror_idx, tag, access_link,
                                     poll_period, polls_left, done]() mutable {
      poll_once(receiver, mirror_idx, std::move(tag), access_link, poll_period,
                polls_left - 1, std::move(done));
    });
  });
}

}  // namespace tre::simnet
