#include "simnet/faults.h"

#include <algorithm>

#include "bigint/bigint.h"
#include "common/error.h"

namespace tre::simnet {

FaultPlan::FaultPlan(ByteSpan seed)
    : rng_(seed.empty() ? ByteSpan(to_bytes("faultplan-default")) : seed) {}

void FaultPlan::partition_link(NodeId a, NodeId b, std::int64_t from,
                               std::int64_t until) {
  require(a != b, "FaultPlan: a link needs two distinct endpoints");
  require(from <= until, "FaultPlan: window ends before it starts");
  link_windows_[{std::min(a, b), std::max(a, b)}].push_back(Window{from, until});
}

void FaultPlan::crash_node(NodeId node, std::int64_t from, std::int64_t until) {
  require(from <= until, "FaultPlan: window ends before it starts");
  node_windows_[node].push_back(Window{from, until});
}

void FaultPlan::set_byzantine(NodeId node, ByzantineMode mode) {
  if (mode == ByzantineMode::kHonest) {
    byzantine_.erase(node);
  } else {
    byzantine_[node] = mode;
  }
}

bool FaultPlan::covered(const std::vector<Window>& windows, std::int64_t now) {
  return std::any_of(windows.begin(), windows.end(), [now](const Window& w) {
    return w.from <= now && now < w.until;
  });
}

bool FaultPlan::link_up(NodeId a, NodeId b, std::int64_t now) const {
  auto it = link_windows_.find({std::min(a, b), std::max(a, b)});
  return it == link_windows_.end() || !covered(it->second, now);
}

bool FaultPlan::node_up(NodeId node, std::int64_t now) const {
  auto it = node_windows_.find(node);
  return it == node_windows_.end() || !covered(it->second, now);
}

ByzantineMode FaultPlan::behaviour(NodeId node) const {
  auto it = byzantine_.find(node);
  return it == byzantine_.end() ? ByzantineMode::kHonest : it->second;
}

Bytes FaultPlan::flip_one_bit(ByteSpan wire) {
  require(!wire.empty(), "FaultPlan: nothing to corrupt");
  Bytes out(wire.begin(), wire.end());
  Bytes draw = rng_.bytes(8);
  std::uint64_t r = bigint::BigInt<1>::from_bytes_be(draw).w[0];
  size_t bit = static_cast<size_t>(r % (out.size() * 8));
  out[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  return out;
}

Bytes FaultPlan::garbage(size_t len) { return rng_.bytes(len); }

}  // namespace tre::simnet
