#include "field/fp.h"

#include "bigint/prime.h"

namespace tre::field {

FpCtx::FpCtx(const FpInt& modulus) : p(modulus), mont(modulus) {
  byte_len = (p.bit_length() + 7) / 8;
  p_mod_4_is_3 = (p.w[0] & 3) == 3;
  if (p_mod_4_is_3) {
    FpInt e = bigint::add(p, FpInt::from_u64(1));
    sqrt_exponent = bigint::shr(e, 2);
  }
}

Fp Fp::from_int(const FpCtx* ctx, const FpInt& v) {
  require(ctx != nullptr, "Fp: null context");
  FpInt reduced = v >= ctx->p ? bigint::mod(v, ctx->p) : v;
  return Fp(ctx, ctx->mont.to_mont(reduced));
}

Fp Fp::from_bytes_wide(const FpCtx* ctx, ByteSpan bytes) {
  require(ctx != nullptr, "Fp: null context");
  require(bytes.size() <= 2 * 8 * kMaxFieldLimbs, "Fp::from_bytes_wide: too long");
  FpIntWide wide = FpIntWide::from_bytes_be(bytes);
  FpInt reduced = bigint::mod_wide(wide, ctx->p);
  return Fp(ctx, ctx->mont.to_mont(reduced));
}

Fp Fp::from_bytes(const FpCtx* ctx, ByteSpan bytes) {
  require(ctx != nullptr, "Fp: null context");
  require(bytes.size() == ctx->byte_len, "Fp::from_bytes: wrong length");
  FpInt v = FpInt::from_bytes_be(bytes);
  require(v < ctx->p, "Fp::from_bytes: value not reduced");
  return Fp(ctx, ctx->mont.to_mont(v));
}

Fp Fp::random(const FpCtx* ctx, tre::hashing::RandomSource& rng) {
  require(ctx != nullptr, "Fp: null context");
  return Fp(ctx, ctx->mont.to_mont(bigint::random_below(rng, ctx->p)));
}

FpInt Fp::to_int() const {
  require(ctx_ != nullptr, "Fp: null context");
  return ctx_->mont.from_mont(v_);
}

Bytes Fp::to_bytes() const { return to_int().to_bytes_be(ctx_->byte_len); }

Fp Fp::inverse() const {
  require(ctx_ != nullptr, "Fp: null context");
  require(!is_zero(), "Fp: inverse of zero");
  // v = a*R. mod_inverse gives a^{-1}R^{-1}; one Montgomery mul by the
  // precomputed R^3 restores Montgomery form: a^{-1}R^{-1}·R^3·R^{-1} = a^{-1}R.
  FpInt u = bigint::mod_inverse(v_, ctx_->p);
  return Fp(ctx_, ctx_->mont.mul(u, ctx_->mont.r3()));
}

Fp Fp::pow(const FpInt& e) const {
  require(ctx_ != nullptr, "Fp: null context");
  return Fp(ctx_, ctx_->mont.pow(v_, e));
}

std::optional<Fp> Fp::sqrt() const {
  require(ctx_ != nullptr, "Fp: null context");
  require(ctx_->p_mod_4_is_3, "Fp::sqrt: requires p = 3 (mod 4)");
  Fp r = pow(ctx_->sqrt_exponent);
  if (r.squared() == *this) return r;
  return std::nullopt;
}

}  // namespace tre::field
