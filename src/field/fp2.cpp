#include "field/fp2.h"

namespace tre::field {

bool Fp2::is_one() const {
  return b_.is_zero() && a_ == Fp::one(a_.ctx());
}

std::optional<Fp2> Fp2::sqrt() const {
  const FpCtx* fp = ctx();
  if (is_zero()) return *this;
  if (b_.is_zero()) {
    // sqrt(a): in F_p when a is a QR; otherwise sqrt(-a)·i works because
    // i² = -1 and exactly one of ±a is a QR (p ≡ 3 mod 4 makes -1 a
    // non-residue).
    if (auto r = a_.sqrt()) return Fp2(*r, Fp::zero(fp));
    if (auto r = (-a_).sqrt()) return Fp2(Fp::zero(fp), *r);
    return std::nullopt;
  }
  auto alpha = norm().sqrt();
  if (!alpha) return std::nullopt;  // norm of any square is a square
  Fp half = Fp::from_u64(fp, 2).inverse();
  for (const Fp& delta : {(a_ + *alpha) * half, (a_ - *alpha) * half}) {
    auto x = delta.sqrt();
    if (!x || x->is_zero()) continue;
    Fp y = b_ * (*x + *x).inverse();
    Fp2 candidate(*x, y);
    if (candidate.squared() == *this) return candidate;
  }
  return std::nullopt;
}

Bytes Fp2::to_bytes() const {
  Bytes re_bytes = a_.to_bytes();
  Bytes im_bytes = b_.to_bytes();
  return concat({re_bytes, im_bytes});
}

Fp2 Fp2::from_bytes(const FpCtx* ctx, ByteSpan bytes) {
  require(ctx != nullptr, "Fp2: null context");
  require(bytes.size() == 2 * ctx->byte_len, "Fp2::from_bytes: wrong length");
  return Fp2(Fp::from_bytes(ctx, bytes.subspan(0, ctx->byte_len)),
             Fp::from_bytes(ctx, bytes.subspan(ctx->byte_len)));
}

}  // namespace tre::field
