#include "field/fp2.h"

#include <array>

namespace tre::field {

bool Fp2::is_one() const {
  return b_.is_zero() && a_ == Fp::one(a_.ctx());
}

Fp2 Fp2::pow(const FpInt& e) const {
  const size_t bits = e.bit_length();
  if (bits == 0) return one(ctx());
  if (bits <= 4) return pow_binary(e);

  // Odd powers x^1, x^3, ..., x^15.
  constexpr size_t kWindow = 4;
  std::array<Fp2, 8> odd;
  odd[0] = *this;
  const Fp2 sq = squared();
  for (size_t i = 1; i < odd.size(); ++i) odd[i] = odd[i - 1] * sq;

  Fp2 acc = one(ctx());
  size_t i = bits;
  while (i > 0) {
    if (!e.bit(i - 1)) {
      acc = acc.squared();
      --i;
      continue;
    }
    // Greedy window [i-1, j]: at most kWindow bits, ending on a set bit so
    // the window value is odd.
    size_t j = i >= kWindow ? i - kWindow : 0;
    while (!e.bit(j)) ++j;
    unsigned val = 0;
    for (size_t b = i; b-- > j;) val = (val << 1) | static_cast<unsigned>(e.bit(b));
    for (size_t s = 0; s < i - j; ++s) acc = acc.squared();
    acc = acc * odd[val >> 1];
    i = j;
  }
  return acc;
}

Fp2 Fp2::pow_unitary(const FpInt& e) const {
  const FpCtx* fp = ctx();
  require(norm() == Fp::one(fp), "Fp2::pow_unitary: element is not norm-1");
  // Signed digits are free: for norm-1 z, z^{-1} = conj(z). The recoding
  // lives on the stack: pow_unitary runs once per encrypt/decrypt on
  // every pool worker, so the exponentiation inner loop allocates nothing.
  std::array<std::int8_t, bigint::kWnafMaxDigits<kMaxFieldLimbs>> digits;
  const size_t ndigits = bigint::wnaf_into(e, 5, digits.data());
  std::array<Fp2, 8> odd;  // z^1, z^3, ..., z^15
  odd[0] = *this;
  const Fp2 sq = squared();
  for (size_t i = 1; i < odd.size(); ++i) odd[i] = odd[i - 1] * sq;

  Fp2 acc = one(fp);
  for (size_t i = ndigits; i-- > 0;) {
    acc = acc.squared();
    std::int8_t d = digits[i];
    if (d > 0) {
      acc = acc * odd[static_cast<size_t>(d) / 2];
    } else if (d < 0) {
      acc = acc * odd[static_cast<size_t>(-d) / 2].conjugate();
    }
  }
  return acc;
}

std::optional<Fp2> Fp2::sqrt() const {
  const FpCtx* fp = ctx();
  if (is_zero()) return *this;
  if (b_.is_zero()) {
    // sqrt(a): in F_p when a is a QR; otherwise sqrt(-a)·i works because
    // i² = -1 and exactly one of ±a is a QR (p ≡ 3 mod 4 makes -1 a
    // non-residue).
    if (auto r = a_.sqrt()) return Fp2(*r, Fp::zero(fp));
    if (auto r = (-a_).sqrt()) return Fp2(Fp::zero(fp), *r);
    return std::nullopt;
  }
  auto alpha = norm().sqrt();
  if (!alpha) return std::nullopt;  // norm of any square is a square
  Fp half = Fp::from_u64(fp, 2).inverse();
  for (const Fp& delta : {(a_ + *alpha) * half, (a_ - *alpha) * half}) {
    auto x = delta.sqrt();
    if (!x || x->is_zero()) continue;
    Fp y = b_ * (*x + *x).inverse();
    Fp2 candidate(*x, y);
    if (candidate.squared() == *this) return candidate;
  }
  return std::nullopt;
}

Bytes Fp2::to_bytes() const {
  Bytes re_bytes = a_.to_bytes();
  Bytes im_bytes = b_.to_bytes();
  return concat({re_bytes, im_bytes});
}

Fp2 Fp2::from_bytes(const FpCtx* ctx, ByteSpan bytes) {
  require(ctx != nullptr, "Fp2: null context");
  require(bytes.size() == 2 * ctx->byte_len, "Fp2::from_bytes: wrong length");
  return Fp2(Fp::from_bytes(ctx, bytes.subspan(0, ctx->byte_len)),
             Fp::from_bytes(ctx, bytes.subspan(ctx->byte_len)));
}

}  // namespace tre::field
