// Prime-field arithmetic.
//
// `Fp` is a field element in Montgomery form carrying a pointer to its
// shared, immutable `FpCtx`. One context is built per modulus (the curve
// base field p and the scalar field q each get one). The limb capacity is
// fixed at 12 (768 bits) — enough for every embedded parameter set — and
// the context's runtime limb count keeps small parameter sets fast.
#pragma once

#include <optional>

#include "bigint/bigint.h"
#include "bigint/montgomery.h"
#include "hashing/drbg.h"

namespace tre::field {

inline constexpr size_t kMaxFieldLimbs = 12;
using FpInt = bigint::BigInt<kMaxFieldLimbs>;
using FpIntWide = bigint::BigInt<2 * kMaxFieldLimbs>;

struct FpCtx {
  FpInt p;
  bigint::MontCtx<kMaxFieldLimbs> mont;
  size_t byte_len;        // fixed serialization width
  bool p_mod_4_is_3;      // enables the (p+1)/4 square root
  FpInt sqrt_exponent;    // (p+1)/4 when p ≡ 3 (mod 4)

  explicit FpCtx(const FpInt& modulus);

  FpCtx(const FpCtx&) = delete;
  FpCtx& operator=(const FpCtx&) = delete;
};

class Fp {
 public:
  Fp() = default;  // null element: usable only as assignment target

  static Fp zero(const FpCtx* ctx) { return Fp(ctx, FpInt{}); }
  static Fp one(const FpCtx* ctx) { return Fp(ctx, ctx->mont.one()); }

  /// From a plain integer (reduced mod p if needed).
  static Fp from_int(const FpCtx* ctx, const FpInt& v);
  static Fp from_u64(const FpCtx* ctx, std::uint64_t v) {
    return from_int(ctx, FpInt::from_u64(v));
  }

  /// Interprets up to 2*byte_len big-endian bytes, reduced mod p. Used to
  /// map hash output to a near-uniform field element.
  static Fp from_bytes_wide(const FpCtx* ctx, ByteSpan bytes);

  /// Fixed-width canonical deserialization (value must be < p).
  static Fp from_bytes(const FpCtx* ctx, ByteSpan bytes);

  /// Uniform random element.
  static Fp random(const FpCtx* ctx, tre::hashing::RandomSource& rng);

  FpInt to_int() const;
  Bytes to_bytes() const;

  const FpCtx* ctx() const { return ctx_; }
  bool is_zero() const { return v_.is_zero(); }

  // The four hot operations are defined inline so the Montgomery kernels
  // (bigint/montgomery.h) inline straight into the extension-tower code —
  // an out-of-line call here costs a 96-byte copy per operand on every
  // one of the dozens of base-field ops inside a single Fp12 multiply.
  Fp operator+(const Fp& o) const {
    require(ctx_ != nullptr && ctx_ == o.ctx_, "Fp: context mismatch");
    return Fp(ctx_, ctx_->mont.add(v_, o.v_));
  }
  Fp operator-(const Fp& o) const {
    require(ctx_ != nullptr && ctx_ == o.ctx_, "Fp: context mismatch");
    return Fp(ctx_, ctx_->mont.sub(v_, o.v_));
  }
  Fp operator*(const Fp& o) const {
    require(ctx_ != nullptr && ctx_ == o.ctx_, "Fp: context mismatch");
    return Fp(ctx_, ctx_->mont.mul(v_, o.v_));
  }
  Fp operator-() const {
    require(ctx_ != nullptr, "Fp: null context");
    return Fp(ctx_, ctx_->mont.sub(FpInt{}, v_));
  }
  Fp squared() const {
    require(ctx_ != nullptr, "Fp: null context");
    return Fp(ctx_, ctx_->mont.sqr(v_));
  }
  Fp inverse() const;
  Fp pow(const FpInt& e) const;
  Fp doubled() const { return *this + *this; }

  /// Square root for p ≡ 3 (mod 4); nullopt when no root exists.
  std::optional<Fp> sqrt() const;

  /// Equality is by value: elements over distinct context objects with the
  /// same modulus compare equal (Montgomery form is a function of the
  /// modulus alone). Arithmetic still requires the identical context.
  friend bool operator==(const Fp& a, const Fp& b) {
    if (a.ctx_ == b.ctx_) return a.v_ == b.v_;
    return a.ctx_ != nullptr && b.ctx_ != nullptr && a.ctx_->p == b.ctx_->p &&
           a.v_ == b.v_;
  }

 private:
  Fp(const FpCtx* ctx, const FpInt& mont_value) : ctx_(ctx), v_(mont_value) {}

  const FpCtx* ctx_ = nullptr;
  FpInt v_{};  // Montgomery form
};

}  // namespace tre::field
