// Quadratic extension F_p2 = F_p[i]/(i^2 + 1).
//
// Valid because every embedded parameter set has p ≡ 3 (mod 4), making -1
// a quadratic non-residue. The pairing's target group G_2 lives in the
// norm-1 subgroup of F_p2*, where inversion is conjugation.
#pragma once

#include "field/fp.h"

namespace tre::field {

class Fp2 {
 public:
  Fp2() = default;
  Fp2(Fp a, Fp b) : a_(a), b_(b) {}

  static Fp2 zero(const FpCtx* ctx) { return Fp2(Fp::zero(ctx), Fp::zero(ctx)); }
  static Fp2 one(const FpCtx* ctx) { return Fp2(Fp::one(ctx), Fp::zero(ctx)); }
  static Fp2 from_fp(Fp a) {
    return Fp2(a, Fp::zero(a.ctx()));
  }

  const Fp& re() const { return a_; }
  const Fp& im() const { return b_; }
  const FpCtx* ctx() const { return a_.ctx(); }

  bool is_zero() const { return a_.is_zero() && b_.is_zero(); }
  bool is_one() const;

  Fp2 operator+(const Fp2& o) const { return Fp2(a_ + o.a_, b_ + o.b_); }
  Fp2 operator-(const Fp2& o) const { return Fp2(a_ - o.a_, b_ - o.b_); }
  Fp2 operator-() const { return Fp2(-a_, -b_); }

  /// Karatsuba-style product (3 base-field multiplications).
  Fp2 operator*(const Fp2& o) const {
    Fp t0 = a_ * o.a_;
    Fp t1 = b_ * o.b_;
    Fp t2 = (a_ + b_) * (o.a_ + o.b_);
    return Fp2(t0 - t1, t2 - t0 - t1);
  }

  Fp2 scale(const Fp& s) const { return Fp2(a_ * s, b_ * s); }

  Fp2 squared() const {
    // (a+bi)^2 = (a+b)(a-b) + 2ab i
    Fp t0 = (a_ + b_) * (a_ - b_);
    Fp t1 = a_ * b_;
    return Fp2(t0, t1 + t1);
  }

  /// Complex conjugate; equals the p-power Frobenius on F_p2.
  Fp2 conjugate() const { return Fp2(a_, -b_); }

  /// Field norm a^2 + b^2 ∈ F_p.
  Fp norm() const { return a_.squared() + b_.squared(); }

  Fp2 inverse() const {
    Fp n = norm().inverse();
    return Fp2(a_ * n, -b_ * n);
  }

  /// Inverse for norm-1 elements (the pairing target group): conjugation.
  Fp2 unitary_inverse() const { return conjugate(); }

  /// Square root via the complex method (requires p ≡ 3 mod 4):
  /// for z = a + bi, sqrt(z) = x + (b/2x)i with x² = (a ± |z|)/2.
  /// nullopt when z is a non-residue. Verified before returning.
  std::optional<Fp2> sqrt() const;

  /// Sliding-window exponentiation (width-4 odd-power table). Bit-identical
  /// to pow_binary on every input; ~1.4x fewer multiplications on the long
  /// final-exponentiation and G_T exponents.
  Fp2 pow(const FpInt& e) const;

  /// Legacy square-and-multiply, kept as the cross-checked reference for
  /// pow()/pow_unitary() and for the ablation benchmarks.
  Fp2 pow_binary(const FpInt& e) const {
    Fp2 acc = one(ctx());
    for (size_t i = e.bit_length(); i-- > 0;) {
      acc = acc.squared();
      if (e.bit(i)) acc = acc * (*this);
    }
    return acc;
  }

  /// Width-5 wNAF exponentiation for NORM-1 elements (the pairing target
  /// group G_2), where inversion is free (conjugation) so signed digits
  /// cost nothing. Throws if the norm is not 1. This is the hot G_T path
  /// of TRE decryption.
  Fp2 pow_unitary(const FpInt& e) const;

  /// Serialization: re || im, fixed width.
  Bytes to_bytes() const;
  static Fp2 from_bytes(const FpCtx* ctx, ByteSpan bytes);

  friend bool operator==(const Fp2& x, const Fp2& y) {
    return x.a_ == y.a_ && x.b_ == y.b_;
  }

 private:
  Fp a_;
  Fp b_;
};

}  // namespace tre::field
