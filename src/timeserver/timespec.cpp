#include "timeserver/timespec.h"

#include <array>
#include <charconv>

#include "common/error.h"

namespace tre::server {

namespace {

// Civil-time conversion (Howard Hinnant's days_from_civil / civil_from_days).
std::int64_t days_from_civil(std::int64_t y, unsigned m, unsigned d) {
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

struct Civil {
  std::int64_t year;
  unsigned month, day, hour, minute, second;
};

Civil civil_from_unix(std::int64_t t) {
  std::int64_t days = t / 86400;
  std::int64_t rem = t % 86400;
  if (rem < 0) {
    rem += 86400;
    --days;
  }
  std::int64_t z = days + 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : -9);
  Civil c;
  c.year = y + (m <= 2);
  c.month = m;
  c.day = d;
  c.hour = static_cast<unsigned>(rem / 3600);
  c.minute = static_cast<unsigned>(rem % 3600 / 60);
  c.second = static_cast<unsigned>(rem % 60);
  return c;
}

void append_padded(std::string& out, std::int64_t v, int width) {
  std::string digits = std::to_string(v);
  require(digits.size() <= static_cast<size_t>(width), "TimeSpec: field overflow");
  out.append(static_cast<size_t>(width) - digits.size(), '0');
  out += digits;
}

bool parse_int(std::string_view text, size_t pos, size_t len, std::int64_t& out) {
  if (pos + len > text.size()) return false;
  auto [ptr, ec] = std::from_chars(text.data() + pos, text.data() + pos + len, out);
  return ec == std::errc{} && ptr == text.data() + pos + len;
}

}  // namespace

std::int64_t granule_seconds(Granularity g) {
  switch (g) {
    case Granularity::kDay:
      return 86400;
    case Granularity::kHour:
      return 3600;
    case Granularity::kMinute:
      return 60;
    case Granularity::kSecond:
      return 1;
  }
  throw Error("granule_seconds: bad granularity");
}

TimeSpec TimeSpec::from_unix(std::int64_t unix_seconds, Granularity g) {
  std::int64_t step = granule_seconds(g);
  std::int64_t t = unix_seconds;
  // Floor division truncation (handles pre-1970 times).
  std::int64_t r = t % step;
  if (r < 0) r += step;
  return TimeSpec(t - r, g);
}

std::string TimeSpec::canonical() const {
  Civil c = civil_from_unix(unix_seconds_);
  std::string out;
  append_padded(out, c.year, 4);
  out += '-';
  append_padded(out, c.month, 2);
  out += '-';
  append_padded(out, c.day, 2);
  if (granularity_ == Granularity::kDay) return out;
  out += 'T';
  append_padded(out, c.hour, 2);
  if (granularity_ >= Granularity::kMinute) {
    out += ':';
    append_padded(out, c.minute, 2);
  }
  if (granularity_ == Granularity::kSecond) {
    out += ':';
    append_padded(out, c.second, 2);
  }
  out += 'Z';
  return out;
}

std::optional<TimeSpec> TimeSpec::parse(std::string_view text) {
  // Formats: 2005-06-06 | 2005-06-06T09Z | 2005-06-06T09:00Z |
  //          2005-06-06T09:00:00Z
  std::int64_t year, month, day, hour = 0, minute = 0, second = 0;
  if (!parse_int(text, 0, 4, year) || text.size() < 10 || text[4] != '-' ||
      !parse_int(text, 5, 2, month) || text[7] != '-' || !parse_int(text, 8, 2, day)) {
    return std::nullopt;
  }
  Granularity g;
  if (text.size() == 10) {
    g = Granularity::kDay;
  } else if (text.size() == 14 && text[10] == 'T' && text.back() == 'Z' &&
             parse_int(text, 11, 2, hour)) {
    g = Granularity::kHour;
  } else if (text.size() == 17 && text[10] == 'T' && text[13] == ':' &&
             text.back() == 'Z' && parse_int(text, 11, 2, hour) &&
             parse_int(text, 14, 2, minute)) {
    g = Granularity::kMinute;
  } else if (text.size() == 20 && text[10] == 'T' && text[13] == ':' &&
             text[16] == ':' && text.back() == 'Z' && parse_int(text, 11, 2, hour) &&
             parse_int(text, 14, 2, minute) && parse_int(text, 17, 2, second)) {
    g = Granularity::kSecond;
  } else {
    return std::nullopt;
  }
  if (month < 1 || month > 12 || day < 1 || day > 31 || hour > 23 || minute > 59 ||
      second > 59) {
    return std::nullopt;
  }
  std::int64_t t = days_from_civil(year, static_cast<unsigned>(month),
                                   static_cast<unsigned>(day)) *
                       86400 +
                   hour * 3600 + minute * 60 + second;
  TimeSpec ts = from_unix(t, g);
  // Round-trip check rejects non-existent dates like Feb 30.
  if (ts.canonical() != text) return std::nullopt;
  return ts;
}

TimeSpec TimeSpec::next() const {
  return TimeSpec(unix_seconds_ + granule_seconds(granularity_), granularity_);
}

TimeSpec TimeSpec::prev() const {
  return TimeSpec(unix_seconds_ - granule_seconds(granularity_), granularity_);
}

}  // namespace tre::server
