#include "timeserver/hierarchical.h"

#include "hashing/kdf.h"
#include "pairing/pairing.h"

namespace tre::server {

using core::Scalar;
using ec::G1Point;
using hibe::IdPath;
using hibe::NodeKey;

IdPath time_path(const TimeSpec& t) {
  require(t.granularity() != Granularity::kSecond,
          "time_path: hierarchy is day/hour/minute; use minute granularity");
  IdPath path = {TimeSpec::from_unix(t.unix_seconds(), Granularity::kDay).canonical()};
  if (t.granularity() >= Granularity::kHour) {
    path.push_back(TimeSpec::from_unix(t.unix_seconds(), Granularity::kHour).canonical());
  }
  if (t.granularity() >= Granularity::kMinute) {
    path.push_back(
        TimeSpec::from_unix(t.unix_seconds(), Granularity::kMinute).canonical());
  }
  return path;
}

// --- HierarchicalTre ---------------------------------------------------------

HierarchicalTre::HierarchicalTre(std::shared_ptr<const params::GdhParams> params)
    : hibe_(params), mask_(params) {}

hibe::HibeCiphertext HierarchicalTre::encrypt(ByteSpan msg,
                                              const core::UserPublicKey& user,
                                              const hibe::RootPublicKey& root,
                                              const TimeSpec& release,
                                              tre::hashing::RandomSource& rng) const {
  // Receiver-key check, as in §5.1 step 1 (user key bound to (P0, Q0)).
  require(pairing::pairings_equal(user.ag, root.q0, root.p0, user.asg),
          "HierarchicalTre: receiver public key fails the pairing check");
  IdPath path = time_path(release);
  Scalar r = params::random_scalar(hibe_.params(), rng);

  hibe::HibeCiphertext ct;
  ct.u0 = root.p0.mul(r);
  for (size_t i = 2; i <= path.size(); ++i) {
    IdPath prefix(path.begin(), path.begin() + static_cast<long>(i));
    ct.us.push_back(hibe_.path_point(prefix).mul(r));
  }
  // K = ê(r·a·Q0, P_1) = ê(Q0, P_1)^{ra}: needs the receiver's secret to
  // reproduce, so the server (and the public) cannot decrypt.
  pairing::Gt k = pairing::pair(
      user.asg.mul(r), hibe_.path_point(IdPath(path.begin(), path.begin() + 1)));
  ct.v = xor_bytes(msg, mask_.mask_h2(k, msg.size()));
  return ct;
}

Bytes HierarchicalTre::decrypt(const hibe::HibeCiphertext& ct, const Scalar& a,
                               const NodeKey& leaf) const {
  require(ct.us.size() + 1 == leaf.path.size() && leaf.q.size() == ct.us.size(),
          "HierarchicalTre: ciphertext depth does not match key depth");
  std::vector<std::pair<G1Point, G1Point>> pairs;
  pairs.emplace_back(ct.u0, leaf.s);
  for (size_t i = 0; i < ct.us.size(); ++i) pairs.emplace_back(-leaf.q[i], ct.us[i]);
  pairing::Gt k = pairing::pair_product(pairs).pow(a);
  return xor_bytes(ct.v, mask_.mask_h2(k, ct.v.size()));
}

// --- CompactingArchive ---------------------------------------------------------

std::string CompactingArchive::join(const IdPath& path) {
  std::string out;
  for (const auto& component : path) {
    if (!out.empty()) out += '/';
    out += component;
  }
  return out;
}

void CompactingArchive::put(const NodeKey& key) {
  std::string id = join(key.path);
  keys_.insert_or_assign(id, key);
  if (!key.can_derive) return;
  // Internal key: evict everything strictly below it — each descendant
  // is now derivable locally.
  std::string prefix = id + '/';
  auto it = keys_.lower_bound(prefix);
  while (it != keys_.end() && it->first.compare(0, prefix.size(), prefix) == 0) {
    it = keys_.erase(it);
  }
}

std::optional<NodeKey> CompactingArchive::leaf_for(const hibe::GsHibe& hibe,
                                                   const G1Point& p0,
                                                   const TimeSpec& minute) const {
  IdPath path = time_path(TimeSpec::from_unix(minute.unix_seconds(), Granularity::kMinute));
  // Direct leaf.
  if (auto it = keys_.find(join(path)); it != keys_.end()) return it->second;
  const Scalar one = Scalar::from_u64(1);
  // Derive from the containing hour.
  IdPath hour_path(path.begin(), path.begin() + 2);
  if (auto it = keys_.find(join(hour_path)); it != keys_.end() && it->second.can_derive) {
    return hibe.derive_child(p0, it->second, path[2], one);
  }
  // Derive from the containing day (two hops).
  IdPath day_path(path.begin(), path.begin() + 1);
  if (auto it = keys_.find(join(day_path)); it != keys_.end() && it->second.can_derive) {
    NodeKey hour = hibe.derive_child(p0, it->second, path[1], one);
    return hibe.derive_child(p0, hour, path[2], one);
  }
  return std::nullopt;
}

size_t CompactingArchive::stored_points() const {
  size_t total = 0;
  for (const auto& [id, key] : keys_) {
    (void)id;
    total += 1 + key.q.size();
  }
  return total;
}

// --- HierarchicalTimeServer ------------------------------------------------------

HierarchicalTimeServer::HierarchicalTimeServer(
    std::shared_ptr<const params::GdhParams> params, Timeline& timeline,
    tre::hashing::RandomSource& rng)
    : params_(params),
      hibe_(params),
      timeline_(timeline),
      master_seed_(rng.bytes(32)),
      root_(hibe_.setup(rng)),
      root_pub_(hibe::GsHibe::public_of(root_)),
      next_minute_(TimeSpec::from_unix(timeline.now(), Granularity::kMinute)) {}

Scalar HierarchicalTimeServer::node_secret(const IdPath& path) const {
  Bytes input = master_seed_;
  for (const auto& component : path) {
    input.push_back(static_cast<std::uint8_t>(component.size() >> 8));
    input.push_back(static_cast<std::uint8_t>(component.size() & 0xff));
    input.insert(input.end(), component.begin(), component.end());
  }
  Bytes wide = hashing::oracle_bytes("HTS-NODE", input, params_->scalar_bytes() + 16);
  auto v = bigint::BigInt<2 * field::kMaxFieldLimbs>::from_bytes_be(wide);
  Scalar s = bigint::mod_wide(v, params_->group_order());
  if (s.is_zero()) s = Scalar::from_u64(1);
  return s;
}

NodeKey HierarchicalTimeServer::build_key(const IdPath& path) const {
  require(!path.empty() && path.size() <= 3, "HierarchicalTimeServer: bad path depth");
  IdPath prefix = {path[0]};
  NodeKey key = hibe_.extract_root_child(root_, path[0], node_secret(prefix));
  for (size_t i = 1; i < path.size(); ++i) {
    prefix.push_back(path[i]);
    key = hibe_.derive_child(root_.p0, key, path[i], node_secret(prefix));
  }
  return key;
}

hibe::NodeKey HierarchicalTimeServer::key_for(const TimeSpec& t) {
  IdPath path = time_path(t);
  if (path.size() == 3) {
    // Leaf: released the moment the minute arrives (the ordinary update).
    require(t.unix_seconds() <= timeline_.now(),
            "HierarchicalTimeServer: minute has not arrived");
    return build_key(path).without_derivation();
  }
  // Internal: released only after the whole period has passed, because
  // its derivation secret opens every contained instant.
  require(t.next().unix_seconds() <= timeline_.now(),
          "HierarchicalTimeServer: period has not completed");
  return build_key(path);
}

size_t HierarchicalTimeServer::tick() {
  size_t published = 0;
  while (next_minute_.unix_seconds() <= timeline_.now()) {
    IdPath path = time_path(next_minute_);
    archive_.put(build_key(path).without_derivation());
    ++stats_.leaves_published;
    ++published;

    TimeSpec following = next_minute_.next();
    // Hour completed? Publish the internal hour key (compacts minutes).
    std::int64_t hour_start =
        TimeSpec::from_unix(next_minute_.unix_seconds(), Granularity::kHour).unix_seconds();
    if (TimeSpec::from_unix(following.unix_seconds(), Granularity::kHour).unix_seconds() !=
        hour_start) {
      archive_.put(build_key(time_path(TimeSpec::from_unix(hour_start, Granularity::kHour))));
      ++stats_.internal_published;
      ++published;
      // Day completed? Publish the internal day key (compacts hours).
      std::int64_t day_start =
          TimeSpec::from_unix(next_minute_.unix_seconds(), Granularity::kDay).unix_seconds();
      if (TimeSpec::from_unix(following.unix_seconds(), Granularity::kDay).unix_seconds() !=
          day_start) {
        archive_.put(build_key(time_path(TimeSpec::from_unix(day_start, Granularity::kDay))));
        ++stats_.internal_published;
        ++published;
      }
    }
    next_minute_ = following;
  }
  return published;
}

}  // namespace tre::server
