#include "timeserver/broadcast.h"

namespace tre::server {

template class BasicBroadcastBus<core::Tre512Backend>;

}  // namespace tre::server
