#include "timeserver/broadcast.h"

#include <algorithm>

namespace tre::server {

BroadcastBus::BroadcastBus(Timeline& timeline, ByteSpan seed)
    : timeline_(timeline),
      rng_(seed.empty() ? ByteSpan(to_bytes("broadcast-bus-default")) : seed) {}

BroadcastBus::SubscriberId BroadcastBus::subscribe(Handler handler) {
  require(handler != nullptr, "BroadcastBus: null handler");
  subscribers_.push_back(Subscriber{next_id_, std::move(handler)});
  return next_id_++;
}

void BroadcastBus::unsubscribe(SubscriberId id) {
  std::erase_if(subscribers_, [id](const Subscriber& s) { return s.id == id; });
}

void BroadcastBus::set_loss_probability(double p) {
  require(p >= 0.0 && p <= 1.0, "BroadcastBus: loss probability out of range");
  loss_probability_ = p;
}

void BroadcastBus::set_delay_range(std::int64_t min_seconds, std::int64_t max_seconds) {
  require(0 <= min_seconds && min_seconds <= max_seconds,
          "BroadcastBus: bad delay range");
  delay_min_ = min_seconds;
  delay_max_ = max_seconds;
}

size_t BroadcastBus::subscriber_count() const { return subscribers_.size(); }

BroadcastBus::PublishOutcome BroadcastBus::publish(const core::KeyUpdate& update) {
  PublishOutcome outcome;
  ++stats_.published;
  // The server transmits once regardless of audience size — that is the
  // scheme's scalability claim; per-subscriber loss/delay model the
  // receive side of a shared medium.
  stats_.bytes_broadcast += update.to_bytes().size();
  for (const auto& sub : subscribers_) {
    Bytes draw = rng_.bytes(8);
    double u = static_cast<double>(bigint::BigInt<1>::from_bytes_be(draw).w[0]) /
               static_cast<double>(UINT64_MAX);
    if (u < loss_probability_) {
      ++stats_.drops;
      ++outcome.lost;
      outcome.missed.push_back(sub.id);
      continue;
    }
    std::int64_t delay = delay_min_;
    if (delay_max_ > delay_min_) {
      Bytes jitter = rng_.bytes(8);
      delay += static_cast<std::int64_t>(
          bigint::BigInt<1>::from_bytes_be(jitter).w[0] %
          static_cast<std::uint64_t>(delay_max_ - delay_min_ + 1));
    }
    ++stats_.deliveries;
    ++outcome.scheduled;
    // Copy update and handler by value: subscriber list may change before
    // the event fires.
    Handler handler = sub.handler;
    core::KeyUpdate copy = update;
    timeline_.schedule(delay, [handler = std::move(handler),
                               copy = std::move(copy)] { handler(copy); });
  }
  return outcome;
}

}  // namespace tre::server
