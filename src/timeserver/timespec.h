// Canonical absolute-time strings.
//
// The paper's release times are opaque strings T signed by the server;
// sender and receivers only need to agree on the encoding. TimeSpec fixes
// that encoding: UTC civil time at a declared granularity, e.g.
//   second : "2005-06-06T09:00:00Z"
//   minute : "2005-06-06T09:00Z"
//   hour   : "2005-06-06T09Z"
//   day    : "2005-06-06"
// Truncation is part of the value: a TimeSpec always sits on a granule
// boundary, so "T plus one second" at minute granularity is the next
// minute, matching the server's broadcast schedule.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace tre::server {

enum class Granularity { kDay, kHour, kMinute, kSecond };

/// Seconds covered by one granule.
std::int64_t granule_seconds(Granularity g);

class TimeSpec {
 public:
  /// Truncates `unix_seconds` down to the granule boundary.
  static TimeSpec from_unix(std::int64_t unix_seconds,
                            Granularity g = Granularity::kSecond);

  /// Parses any of the canonical formats (granularity is inferred).
  static std::optional<TimeSpec> parse(std::string_view text);

  std::int64_t unix_seconds() const { return unix_seconds_; }
  Granularity granularity() const { return granularity_; }

  /// The string the time server signs.
  std::string canonical() const;

  /// The next granule boundary (what a sender means by "right after T").
  TimeSpec next() const;
  TimeSpec prev() const;

  friend std::strong_ordering operator<=>(const TimeSpec& a, const TimeSpec& b) {
    return a.unix_seconds_ <=> b.unix_seconds_;
  }
  friend bool operator==(const TimeSpec&, const TimeSpec&) = default;

 private:
  TimeSpec(std::int64_t s, Granularity g) : unix_seconds_(s), granularity_(g) {}

  std::int64_t unix_seconds_ = 0;
  Granularity granularity_ = Granularity::kSecond;
};

}  // namespace tre::server
