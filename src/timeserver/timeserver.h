// The completely passive time server (paper §3).
//
// Operation: at every granule boundary the server signs the canonical
// time string and broadcasts the update; old updates go to the public
// archive. The server holds NO user state — it does not know how many
// receivers exist (the GPS analogy) — and it enforces the paper's two
// trust assumptions:
//   1. consistent timing: it signs exactly the timeline's current instant,
//      in order, no gaps at its granularity;
//   2. no early release: issuing an update for a future instant throws.
//
// Backend-generic: BasicTimeServer<B> runs the whole issue/archive/
// broadcast pipeline on any pairing backend; `TimeServer` is the type-1
// instantiation, and BasicTimeServer<bls12::Bls381Backend> (constructed
// over Bls12Ctx::get()) is the drand-shaped modern-curve server.
#pragma once

#include <algorithm>
#include <optional>

#include "common/error.h"
#include "core/tre.h"
#include "hashing/drbg.h"
#include "obs/metrics.h"
#include "threshold/threshold.h"
#include "timeserver/archive.h"
#include "timeserver/broadcast.h"
#include "timeserver/timespec.h"

namespace tre::server {

namespace detail {

// Fleet-wide telemetry, shared by every backend's server instances;
// BasicTimeServer::Stats remains the per-instance view.
struct ServerProbes {
  obs::CounterProbe updates_issued{"server.updates_issued"};
  obs::CounterProbe partials_issued{"server.partials_issued"};
  obs::CounterProbe broadcast_bytes{"server.broadcast_bytes"};
  obs::HistogramProbe issue_ns{"server.issue_ns"};
};

inline const ServerProbes& server_probes() {
  static const ServerProbes p;
  return p;
}

}  // namespace detail

template <class B>
class BasicTimeServer {
 public:
  /// Broadcasts at a single granularity.
  BasicTimeServer(std::shared_ptr<const typename B::Params> params,
                  Timeline& timeline, Granularity g,
                  tre::hashing::RandomSource& rng)
      : BasicTimeServer(std::move(params), timeline, std::vector<Granularity>{g},
                        rng) {}

  /// Broadcasts at several granularities simultaneously (e.g. minute +
  /// hour + day), enabling the missing-update resilience of
  /// timeserver/resilient.h: coarse boundaries are signed with their own
  /// canonical strings as they pass.
  BasicTimeServer(std::shared_ptr<const typename B::Params> params,
                  Timeline& timeline, std::vector<Granularity> levels,
                  tre::hashing::RandomSource& rng)
      : params_(std::move(params)),
        scheme_(params_),
        keys_(scheme_.server_keygen(rng)),
        timeline_(timeline),
        bus_(timeline),
        check_rng_(rng.bytes(32)) {
    require(!levels.empty(), "TimeServer: no granularities");
    // Finest first; duplicates removed.
    std::sort(levels.begin(), levels.end(),
              [](Granularity a, Granularity b) { return a > b; });
    levels.erase(std::unique(levels.begin(), levels.end()), levels.end());
    for (Granularity g : levels) {
      levels_.push_back(Level{g, TimeSpec::from_unix(timeline.now(), g)});
    }
  }

  const core::BasicServerPublicKey<B>& public_key() const { return keys_.pub; }

  /// The finest broadcast granularity.
  Granularity granularity() const { return levels_.front().granularity; }

  /// Issues and publishes every update due at or before timeline.now()
  /// that has not been issued yet. Call after advancing the timeline (or
  /// let run() self-schedule). Returns the number of updates issued.
  size_t tick() {
    size_t issued = 0;
    for (Level& level : levels_) {
      while (level.next_due.unix_seconds() <= timeline_.now()) {
        issue_unchecked(level.next_due);
        level.next_due = level.next_due.next();
        ++issued;
      }
    }
    return issued;
  }

  /// Self-scheduling mode: issues due updates and re-arms itself on the
  /// timeline at every granule boundary up to `until_unix_seconds`.
  void run(std::int64_t until_unix_seconds) {
    tick();
    std::int64_t due = next_boundary();
    if (due > until_unix_seconds) return;
    timeline_.schedule(due - timeline_.now(),
                       [this, until_unix_seconds] { run(until_unix_seconds); });
  }

  /// One-off issuance for a specific instant; enforces trust assumption 2
  /// (throws if `t` is in the future of the timeline).
  core::BasicKeyUpdate<B> issue_for(const TimeSpec& t) {
    return try_issue_for(t).value();  // throws on error
  }

  /// Non-throwing issue_for: Errc::kFutureInstant instead of an exception
  /// when `t` violates trust assumption 2. Distribution-side callers
  /// (event loops, request handlers) branch on the code.
  Result<core::BasicKeyUpdate<B>> try_issue_for(const TimeSpec& t) {
    // Trust assumption 2: never sign a future instant.
    if (t.unix_seconds() > timeline_.now()) return Errc::kFutureInstant;
    if (auto existing = archive_.find(t.canonical())) return *existing;
    return issue_unchecked(t);
  }

  // --- Beacon-node mode ------------------------------------------------------
  //
  // In a t-of-n threshold beacon no single server holds the master
  // secret: a DKG (threshold/dkg.h) hands each node one Shamir share,
  // and every node signs each instant with its share alone. A beacon
  // node therefore issues PARTIAL updates — fragments clients
  // Lagrange-aggregate into the ordinary update once any t of them are
  // in hand. Trust assumption 2 (no early release) binds each node
  // exactly as it binds the single server.

  /// Switches this server into beacon-node mode: `key` is the DKG's
  /// public output (group key + per-node verification keys), `share`
  /// this node's secret share. The server's own keypair stays live —
  /// beacon mode is additive, not a replacement.
  void enable_beacon(threshold::BasicThresholdKey<B> key,
                     threshold::BasicServerShare<B> share) {
    require(share.index >= 1 && share.index <= key.config.n,
            "enable_beacon: share index out of range");
    beacon_.emplace(Beacon{
        threshold::BasicThresholdScheme<B>(params_, scheme_.tuning()),
        std::move(key), std::move(share)});
  }

  bool beacon_enabled() const { return beacon_.has_value(); }

  /// The beacon key this node participates in (beacon mode only).
  const threshold::BasicThresholdKey<B>& beacon_key() const {
    require(beacon_.has_value(), "beacon_key: beacon mode not enabled");
    return beacon_->key;
  }

  /// One partial update for instant `t`, signed with this node's share.
  /// Errc::kFutureInstant if `t` violates trust assumption 2;
  /// Errc::kBadPartial if the fresh partial fails its own pairing check
  /// (issuer fault detection, mirroring issue_range's batch self-check).
  Result<threshold::BasicPartialUpdate<B>> try_issue_partial_for(
      const TimeSpec& t) {
    require(beacon_.has_value(),
            "try_issue_partial_for: beacon mode not enabled");
    // Trust assumption 2: never sign a future instant, not even partially.
    if (t.unix_seconds() > timeline_.now()) return Errc::kFutureInstant;
    threshold::BasicPartialUpdate<B> partial =
        beacon_->scheme.issue_partial(beacon_->share, t.canonical());
    if (!beacon_->scheme.verify_partial(beacon_->key, partial)) {
      return Errc::kBadPartial;
    }
    ++stats_.partials_issued;
    detail::server_probes().partials_issued.add();
    return partial;
  }

  /// Throwing convenience over try_issue_partial_for.
  threshold::BasicPartialUpdate<B> issue_partial_for(const TimeSpec& t) {
    return try_issue_partial_for(t).value();
  }

  /// Bulk issuance for every instant in [from, to] at `from`'s
  /// granularity, e.g. backfilling an archive gap for late joiners. Still
  /// enforces trust assumption 2 on the whole range. Already-archived
  /// instants are served from the archive; the missing signatures are
  /// computed on the persistent worker pool (`threads` as in
  /// TreScheme::issue_updates) and archived/broadcast in timeline order.
  std::vector<core::BasicKeyUpdate<B>> issue_range(const TimeSpec& from,
                                                   const TimeSpec& to,
                                                   unsigned threads = 0) {
    return try_issue_range(from, to, threads).value();  // throws on error
  }

  /// Non-throwing issue_range: Errc::kFutureInstant when the range ends in
  /// the future (trust assumption 2), Errc::kBadRange when from > to. On
  /// success the vector covers EVERY instant in [from, to] — a typed error
  /// replaces what would otherwise be a silent gap in the archive.
  Result<std::vector<core::BasicKeyUpdate<B>>> try_issue_range(
      const TimeSpec& from, const TimeSpec& to, unsigned threads = 0) {
    // Trust assumption 2 applies to the whole range.
    if (to.unix_seconds() > timeline_.now()) return Errc::kFutureInstant;
    if (from.unix_seconds() > to.unix_seconds()) return Errc::kBadRange;

    std::vector<TimeSpec> instants;
    for (TimeSpec t = from; t.unix_seconds() <= to.unix_seconds(); t = t.next()) {
      instants.push_back(t);
    }

    // Serve what the archive already has (idempotent backfill), then sign
    // the missing instants on the pool and publish them in timeline order.
    std::vector<std::optional<core::BasicKeyUpdate<B>>> out(instants.size());
    std::vector<std::string> missing_tags;
    std::vector<size_t> missing_at;
    for (size_t i = 0; i < instants.size(); ++i) {
      out[i] = archive_.find(instants[i].canonical());
      if (!out[i]) {
        missing_tags.push_back(instants[i].canonical());
        missing_at.push_back(i);
      }
    }
    std::vector<core::BasicKeyUpdate<B>> fresh =
        scheme_.issue_updates(keys_, missing_tags, threads);
    // Issuer fault detection: one RLC batch check over everything just
    // signed (two multi-exps + two pairings regardless of batch size).
    // A corrupted signer or memory fault is caught here, before any bad
    // update reaches the archive or the broadcast bus.
    require(scheme_
                .verify_updates_batch(keys_.pub, fresh, check_rng_,
                                      /*rlc_bits=*/128, threads)
                .empty(),
            "issue_range: freshly issued updates failed the batch self-check");
    for (size_t j = 0; j < fresh.size(); ++j) {
      archive_.put(fresh[j]);
      bus_.publish(fresh[j]);
      ++stats_.updates_issued;
      const std::uint64_t wire_bytes = fresh[j].to_bytes().size();
      stats_.bytes_published += wire_bytes;
      detail::server_probes().updates_issued.add();
      detail::server_probes().broadcast_bytes.add(wire_bytes);
      out[missing_at[j]] = std::move(fresh[j]);
    }

    std::vector<core::BasicKeyUpdate<B>> result;
    result.reserve(out.size());
    for (auto& u : out) result.push_back(std::move(*u));
    return result;
  }

  const BasicUpdateArchive<B>& archive() const { return archive_; }
  BasicBroadcastBus<B>& bus() { return bus_; }

  struct Stats {
    std::uint64_t updates_issued = 0;
    std::uint64_t partials_issued = 0;  // beacon mode only
    std::uint64_t bytes_published = 0;  // update wire bytes (once per instant)
  };
  const Stats& stats() const { return stats_; }

  /// Exposed for baseline comparisons that need the master secret
  /// (e.g. Mont-style extraction). TRE itself never calls this.
  const core::BasicServerKeyPair<B>& key_pair_for_baselines() const { return keys_; }

 private:
  struct Level {
    Granularity granularity;
    TimeSpec next_due;
  };

  struct Beacon {
    threshold::BasicThresholdScheme<B> scheme;
    threshold::BasicThresholdKey<B> key;
    threshold::BasicServerShare<B> share;
  };

  core::BasicKeyUpdate<B> issue_unchecked(const TimeSpec& t) {
    obs::Span span(detail::server_probes().issue_ns);
    core::BasicKeyUpdate<B> update = scheme_.issue_update(keys_, t.canonical());
    archive_.put(update);
    bus_.publish(update);
    ++stats_.updates_issued;
    const std::uint64_t wire_bytes = update.to_bytes().size();
    stats_.bytes_published += wire_bytes;
    detail::server_probes().updates_issued.add();
    detail::server_probes().broadcast_bytes.add(wire_bytes);
    return update;
  }

  std::int64_t next_boundary() const {
    std::int64_t soonest = levels_.front().next_due.unix_seconds();
    for (const Level& level : levels_) {
      soonest = std::min(soonest, level.next_due.unix_seconds());
    }
    return soonest;
  }

  std::shared_ptr<const typename B::Params> params_;
  core::BasicTreScheme<B> scheme_;
  core::BasicServerKeyPair<B> keys_;
  Timeline& timeline_;
  std::vector<Level> levels_;  // finest first
  BasicUpdateArchive<B> archive_;
  BasicBroadcastBus<B> bus_;
  // Dedicated DRBG for the issue_range batch self-check, forked from the
  // keygen rng at construction so check scalars never touch key material.
  tre::hashing::HmacDrbg check_rng_;
  std::optional<Beacon> beacon_;
  Stats stats_;
};

using TimeServer = BasicTimeServer<core::Tre512Backend>;

extern template class BasicTimeServer<core::Tre512Backend>;

}  // namespace tre::server
