// The completely passive time server (paper §3).
//
// Operation: at every granule boundary the server signs the canonical
// time string and broadcasts the update; old updates go to the public
// archive. The server holds NO user state — it does not know how many
// receivers exist (the GPS analogy) — and it enforces the paper's two
// trust assumptions:
//   1. consistent timing: it signs exactly the timeline's current instant,
//      in order, no gaps at its granularity;
//   2. no early release: issuing an update for a future instant throws.
#pragma once

#include "common/error.h"
#include "core/tre.h"
#include "timeserver/archive.h"
#include "timeserver/broadcast.h"
#include "timeserver/timespec.h"

namespace tre::server {

class TimeServer {
 public:
  /// Broadcasts at a single granularity.
  TimeServer(std::shared_ptr<const params::GdhParams> params,
             Timeline& timeline, Granularity g, tre::hashing::RandomSource& rng);

  /// Broadcasts at several granularities simultaneously (e.g. minute +
  /// hour + day), enabling the missing-update resilience of
  /// timeserver/resilient.h: coarse boundaries are signed with their own
  /// canonical strings as they pass.
  TimeServer(std::shared_ptr<const params::GdhParams> params, Timeline& timeline,
             std::vector<Granularity> levels, tre::hashing::RandomSource& rng);

  const core::ServerPublicKey& public_key() const { return keys_.pub; }

  /// The finest broadcast granularity.
  Granularity granularity() const;

  /// Issues and publishes every update due at or before timeline.now()
  /// that has not been issued yet. Call after advancing the timeline (or
  /// let run() self-schedule). Returns the number of updates issued.
  size_t tick();

  /// Self-scheduling mode: issues due updates and re-arms itself on the
  /// timeline at every granule boundary up to `until_unix_seconds`.
  void run(std::int64_t until_unix_seconds);

  /// One-off issuance for a specific instant; enforces trust assumption 2
  /// (throws if `t` is in the future of the timeline).
  core::KeyUpdate issue_for(const TimeSpec& t);

  /// Non-throwing issue_for: Errc::kFutureInstant instead of an exception
  /// when `t` violates trust assumption 2. Distribution-side callers
  /// (event loops, request handlers) branch on the code.
  Result<core::KeyUpdate> try_issue_for(const TimeSpec& t);

  /// Bulk issuance for every instant in [from, to] at `from`'s
  /// granularity, e.g. backfilling an archive gap for late joiners. Still
  /// enforces trust assumption 2 on the whole range. Already-archived
  /// instants are served from the archive; the missing signatures are
  /// computed on the persistent worker pool (`threads` as in
  /// TreScheme::issue_updates) and archived/broadcast in timeline order.
  std::vector<core::KeyUpdate> issue_range(const TimeSpec& from, const TimeSpec& to,
                                           unsigned threads = 0);

  /// Non-throwing issue_range: Errc::kFutureInstant when the range ends in
  /// the future (trust assumption 2), Errc::kBadRange when from > to. On
  /// success the vector covers EVERY instant in [from, to] — a typed error
  /// replaces what would otherwise be a silent gap in the archive.
  Result<std::vector<core::KeyUpdate>> try_issue_range(const TimeSpec& from,
                                                       const TimeSpec& to,
                                                       unsigned threads = 0);

  const UpdateArchive& archive() const { return archive_; }
  BroadcastBus& bus() { return bus_; }

  struct Stats {
    std::uint64_t updates_issued = 0;
    std::uint64_t bytes_published = 0;  // update wire bytes (once per instant)
  };
  const Stats& stats() const { return stats_; }

  /// Exposed for baseline comparisons that need the master secret
  /// (e.g. Mont-style extraction). TRE itself never calls this.
  const core::ServerKeyPair& key_pair_for_baselines() const { return keys_; }

 private:
  struct Level {
    Granularity granularity;
    TimeSpec next_due;
  };

  core::KeyUpdate issue_unchecked(const TimeSpec& t);
  std::int64_t next_boundary() const;

  core::TreScheme scheme_;
  core::ServerKeyPair keys_;
  Timeline& timeline_;
  std::vector<Level> levels_;  // finest first
  UpdateArchive archive_;
  BroadcastBus bus_;
  Stats stats_;
};

}  // namespace tre::server
