#include "timeserver/timeline.h"

#include "common/error.h"

namespace tre::server {

void Timeline::schedule(std::int64_t delay_seconds, Event fn) {
  require(delay_seconds >= 0, "Timeline: negative delay");
  queue_.push(Scheduled{now_ + delay_seconds, next_seq_++, std::move(fn)});
}

void Timeline::advance_to(std::int64_t t) {
  require(t >= now_, "Timeline: cannot move backwards");
  while (!queue_.empty() && queue_.top().at <= t) {
    // Copy out before pop: the event may schedule more events.
    Scheduled ev = queue_.top();
    queue_.pop();
    now_ = ev.at;
    ev.fn();
  }
  now_ = t;
}

}  // namespace tre::server
