// One-way broadcast channel simulation (the GPS analogy of §3).
//
// The server publishes; subscribers receive with configurable per-delivery
// loss probability and delay jitter, all deterministic under a seed.
// Receivers that miss an update fall back to the UpdateArchive — the
// examples and experiment E7 exercise exactly that path.
//
// Backend-generic: the bus carries BasicKeyUpdate<B> for whichever
// pairing backend the server runs on; `BroadcastBus` is the type-1
// instantiation.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "bigint/bigint.h"
#include "core/tre.h"
#include "hashing/drbg.h"
#include "timeserver/timeline.h"

namespace tre::server {

template <class B>
class BasicBroadcastBus {
 public:
  using Handler = std::function<void(const core::BasicKeyUpdate<B>&)>;
  using SubscriberId = size_t;

  explicit BasicBroadcastBus(Timeline& timeline, ByteSpan seed = {})
      : timeline_(timeline),
        rng_(seed.empty() ? ByteSpan(to_bytes("broadcast-bus-default")) : seed) {}

  SubscriberId subscribe(Handler handler) {
    require(handler != nullptr, "BroadcastBus: null handler");
    subscribers_.push_back(Subscriber{next_id_, std::move(handler)});
    return next_id_++;
  }

  void unsubscribe(SubscriberId id) {
    std::erase_if(subscribers_, [id](const Subscriber& s) { return s.id == id; });
  }

  /// Per-delivery drop probability in [0, 1].
  void set_loss_probability(double p) {
    require(p >= 0.0 && p <= 1.0, "BroadcastBus: loss probability out of range");
    loss_probability_ = p;
  }

  /// Uniform delivery delay in [min, max] seconds.
  void set_delay_range(std::int64_t min_seconds, std::int64_t max_seconds) {
    require(0 <= min_seconds && min_seconds <= max_seconds,
            "BroadcastBus: bad delay range");
    delay_min_ = min_seconds;
    delay_max_ = max_seconds;
  }

  /// Per-publish delivery accounting: which subscribers got a scheduled
  /// delivery and which the lossy medium silently dropped. Cumulative
  /// totals stay in Stats; this surfaces each call's gaps as data so the
  /// publisher can react (re-broadcast, archive pointer, …) instead of
  /// the loss disappearing into a counter.
  struct PublishOutcome {
    std::uint64_t scheduled = 0;         // deliveries scheduled this call
    std::uint64_t lost = 0;              // subscribers the medium dropped
    std::vector<SubscriberId> missed;    // exactly who lost this update
    bool complete() const { return lost == 0; }
  };

  /// Schedules delivery to every live subscriber (loss/delay applied
  /// independently per subscriber) and reports the outcome.
  PublishOutcome publish(const core::BasicKeyUpdate<B>& update) {
    PublishOutcome outcome;
    ++stats_.published;
    // The server transmits once regardless of audience size — that is the
    // scheme's scalability claim; per-subscriber loss/delay model the
    // receive side of a shared medium.
    stats_.bytes_broadcast += update.to_bytes().size();
    for (const auto& sub : subscribers_) {
      Bytes draw = rng_.bytes(8);
      double u = static_cast<double>(bigint::BigInt<1>::from_bytes_be(draw).w[0]) /
                 static_cast<double>(UINT64_MAX);
      if (u < loss_probability_) {
        ++stats_.drops;
        ++outcome.lost;
        outcome.missed.push_back(sub.id);
        continue;
      }
      std::int64_t delay = delay_min_;
      if (delay_max_ > delay_min_) {
        Bytes jitter = rng_.bytes(8);
        delay += static_cast<std::int64_t>(
            bigint::BigInt<1>::from_bytes_be(jitter).w[0] %
            static_cast<std::uint64_t>(delay_max_ - delay_min_ + 1));
      }
      ++stats_.deliveries;
      ++outcome.scheduled;
      // Copy update and handler by value: subscriber list may change before
      // the event fires.
      Handler handler = sub.handler;
      core::BasicKeyUpdate<B> copy = update;
      timeline_.schedule(delay, [handler = std::move(handler),
                                 copy = std::move(copy)] { handler(copy); });
    }
    return outcome;
  }

  struct Stats {
    std::uint64_t published = 0;       // publish() calls
    std::uint64_t deliveries = 0;      // per-subscriber deliveries scheduled
    std::uint64_t drops = 0;           // per-subscriber losses
    std::uint64_t bytes_broadcast = 0; // wire bytes sent by the server
  };
  const Stats& stats() const { return stats_; }
  size_t subscriber_count() const { return subscribers_.size(); }

 private:
  struct Subscriber {
    SubscriberId id;
    Handler handler;
  };

  Timeline& timeline_;
  hashing::HmacDrbg rng_;
  std::vector<Subscriber> subscribers_;
  SubscriberId next_id_ = 0;
  double loss_probability_ = 0.0;
  std::int64_t delay_min_ = 0;
  std::int64_t delay_max_ = 0;
  Stats stats_;
};

using BroadcastBus = BasicBroadcastBus<core::Tre512Backend>;

extern template class BasicBroadcastBus<core::Tre512Backend>;

}  // namespace tre::server
