// One-way broadcast channel simulation (the GPS analogy of §3).
//
// The server publishes; subscribers receive with configurable per-delivery
// loss probability and delay jitter, all deterministic under a seed.
// Receivers that miss an update fall back to the UpdateArchive — the
// examples and experiment E7 exercise exactly that path.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/tre.h"
#include "hashing/drbg.h"
#include "timeserver/timeline.h"

namespace tre::server {

class BroadcastBus {
 public:
  using Handler = std::function<void(const core::KeyUpdate&)>;
  using SubscriberId = size_t;

  explicit BroadcastBus(Timeline& timeline, ByteSpan seed = {});

  SubscriberId subscribe(Handler handler);
  void unsubscribe(SubscriberId id);

  /// Per-delivery drop probability in [0, 1].
  void set_loss_probability(double p);

  /// Uniform delivery delay in [min, max] seconds.
  void set_delay_range(std::int64_t min_seconds, std::int64_t max_seconds);

  /// Per-publish delivery accounting: which subscribers got a scheduled
  /// delivery and which the lossy medium silently dropped. Cumulative
  /// totals stay in Stats; this surfaces each call's gaps as data so the
  /// publisher can react (re-broadcast, archive pointer, …) instead of
  /// the loss disappearing into a counter.
  struct PublishOutcome {
    std::uint64_t scheduled = 0;         // deliveries scheduled this call
    std::uint64_t lost = 0;              // subscribers the medium dropped
    std::vector<SubscriberId> missed;    // exactly who lost this update
    bool complete() const { return lost == 0; }
  };

  /// Schedules delivery to every live subscriber (loss/delay applied
  /// independently per subscriber) and reports the outcome.
  PublishOutcome publish(const core::KeyUpdate& update);

  struct Stats {
    std::uint64_t published = 0;       // publish() calls
    std::uint64_t deliveries = 0;      // per-subscriber deliveries scheduled
    std::uint64_t drops = 0;           // per-subscriber losses
    std::uint64_t bytes_broadcast = 0; // wire bytes sent by the server
  };
  const Stats& stats() const { return stats_; }
  size_t subscriber_count() const;

 private:
  struct Subscriber {
    SubscriberId id;
    Handler handler;
  };

  Timeline& timeline_;
  hashing::HmacDrbg rng_;
  std::vector<Subscriber> subscribers_;
  SubscriberId next_id_ = 0;
  double loss_probability_ = 0.0;
  std::int64_t delay_min_ = 0;
  std::int64_t delay_max_ = 0;
  Stats stats_;
};

}  // namespace tre::server
