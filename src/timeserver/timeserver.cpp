#include "timeserver/timeserver.h"

#include <algorithm>

namespace tre::server {

TimeServer::TimeServer(std::shared_ptr<const params::GdhParams> params,
                       Timeline& timeline, Granularity g,
                       tre::hashing::RandomSource& rng)
    : TimeServer(std::move(params), timeline, std::vector<Granularity>{g}, rng) {}

TimeServer::TimeServer(std::shared_ptr<const params::GdhParams> params,
                       Timeline& timeline, std::vector<Granularity> levels,
                       tre::hashing::RandomSource& rng)
    : scheme_(std::move(params)),
      keys_(scheme_.server_keygen(rng)),
      timeline_(timeline),
      bus_(timeline) {
  require(!levels.empty(), "TimeServer: no granularities");
  // Finest first; duplicates removed.
  std::sort(levels.begin(), levels.end(),
            [](Granularity a, Granularity b) { return a > b; });
  levels.erase(std::unique(levels.begin(), levels.end()), levels.end());
  for (Granularity g : levels) {
    levels_.push_back(Level{g, TimeSpec::from_unix(timeline.now(), g)});
  }
}

Granularity TimeServer::granularity() const { return levels_.front().granularity; }

core::KeyUpdate TimeServer::issue_unchecked(const TimeSpec& t) {
  core::KeyUpdate update = scheme_.issue_update(keys_, t.canonical());
  archive_.put(update);
  bus_.publish(update);
  ++stats_.updates_issued;
  stats_.bytes_published += update.to_bytes().size();
  return update;
}

size_t TimeServer::tick() {
  size_t issued = 0;
  for (Level& level : levels_) {
    while (level.next_due.unix_seconds() <= timeline_.now()) {
      issue_unchecked(level.next_due);
      level.next_due = level.next_due.next();
      ++issued;
    }
  }
  return issued;
}

std::int64_t TimeServer::next_boundary() const {
  std::int64_t soonest = levels_.front().next_due.unix_seconds();
  for (const Level& level : levels_) {
    soonest = std::min(soonest, level.next_due.unix_seconds());
  }
  return soonest;
}

void TimeServer::run(std::int64_t until_unix_seconds) {
  tick();
  std::int64_t due = next_boundary();
  if (due > until_unix_seconds) return;
  timeline_.schedule(due - timeline_.now(),
                     [this, until_unix_seconds] { run(until_unix_seconds); });
}

core::KeyUpdate TimeServer::issue_for(const TimeSpec& t) {
  // Trust assumption 2: never sign a future instant.
  require(t.unix_seconds() <= timeline_.now(),
          "TimeServer: refusing to issue an update for a future time");
  if (auto existing = archive_.find(t.canonical())) return *existing;
  return issue_unchecked(t);
}

}  // namespace tre::server
