#include "timeserver/timeserver.h"

#include <algorithm>

#include "obs/metrics.h"

namespace tre::server {

namespace {

// Fleet-wide telemetry; TimeServer::Stats remains the per-instance view.
struct Probes {
  obs::CounterProbe updates_issued{"server.updates_issued"};
  obs::CounterProbe broadcast_bytes{"server.broadcast_bytes"};
  obs::HistogramProbe issue_ns{"server.issue_ns"};

  static const Probes& get() {
    static const Probes p;
    return p;
  }
};

}  // namespace

TimeServer::TimeServer(std::shared_ptr<const params::GdhParams> params,
                       Timeline& timeline, Granularity g,
                       tre::hashing::RandomSource& rng)
    : TimeServer(std::move(params), timeline, std::vector<Granularity>{g}, rng) {}

TimeServer::TimeServer(std::shared_ptr<const params::GdhParams> params,
                       Timeline& timeline, std::vector<Granularity> levels,
                       tre::hashing::RandomSource& rng)
    : scheme_(std::move(params)),
      keys_(scheme_.server_keygen(rng)),
      timeline_(timeline),
      bus_(timeline) {
  require(!levels.empty(), "TimeServer: no granularities");
  // Finest first; duplicates removed.
  std::sort(levels.begin(), levels.end(),
            [](Granularity a, Granularity b) { return a > b; });
  levels.erase(std::unique(levels.begin(), levels.end()), levels.end());
  for (Granularity g : levels) {
    levels_.push_back(Level{g, TimeSpec::from_unix(timeline.now(), g)});
  }
}

Granularity TimeServer::granularity() const { return levels_.front().granularity; }

core::KeyUpdate TimeServer::issue_unchecked(const TimeSpec& t) {
  obs::Span span(Probes::get().issue_ns);
  core::KeyUpdate update = scheme_.issue_update(keys_, t.canonical());
  archive_.put(update);
  bus_.publish(update);
  ++stats_.updates_issued;
  const std::uint64_t wire_bytes = update.to_bytes().size();
  stats_.bytes_published += wire_bytes;
  Probes::get().updates_issued.add();
  Probes::get().broadcast_bytes.add(wire_bytes);
  return update;
}

size_t TimeServer::tick() {
  size_t issued = 0;
  for (Level& level : levels_) {
    while (level.next_due.unix_seconds() <= timeline_.now()) {
      issue_unchecked(level.next_due);
      level.next_due = level.next_due.next();
      ++issued;
    }
  }
  return issued;
}

std::int64_t TimeServer::next_boundary() const {
  std::int64_t soonest = levels_.front().next_due.unix_seconds();
  for (const Level& level : levels_) {
    soonest = std::min(soonest, level.next_due.unix_seconds());
  }
  return soonest;
}

void TimeServer::run(std::int64_t until_unix_seconds) {
  tick();
  std::int64_t due = next_boundary();
  if (due > until_unix_seconds) return;
  timeline_.schedule(due - timeline_.now(),
                     [this, until_unix_seconds] { run(until_unix_seconds); });
}

std::vector<core::KeyUpdate> TimeServer::issue_range(const TimeSpec& from,
                                                     const TimeSpec& to,
                                                     unsigned threads) {
  return try_issue_range(from, to, threads).value();  // throws on error
}

Result<std::vector<core::KeyUpdate>> TimeServer::try_issue_range(const TimeSpec& from,
                                                                 const TimeSpec& to,
                                                                 unsigned threads) {
  // Trust assumption 2 applies to the whole range.
  if (to.unix_seconds() > timeline_.now()) return Errc::kFutureInstant;
  if (from.unix_seconds() > to.unix_seconds()) return Errc::kBadRange;

  std::vector<TimeSpec> instants;
  for (TimeSpec t = from; t.unix_seconds() <= to.unix_seconds(); t = t.next()) {
    instants.push_back(t);
  }

  // Serve what the archive already has (idempotent backfill), then sign
  // the missing instants on the pool and publish them in timeline order.
  std::vector<std::optional<core::KeyUpdate>> out(instants.size());
  std::vector<std::string> missing_tags;
  std::vector<size_t> missing_at;
  for (size_t i = 0; i < instants.size(); ++i) {
    out[i] = archive_.find(instants[i].canonical());
    if (!out[i]) {
      missing_tags.push_back(instants[i].canonical());
      missing_at.push_back(i);
    }
  }
  std::vector<core::KeyUpdate> fresh =
      scheme_.issue_updates(keys_, missing_tags, threads);
  for (size_t j = 0; j < fresh.size(); ++j) {
    archive_.put(fresh[j]);
    bus_.publish(fresh[j]);
    ++stats_.updates_issued;
    const std::uint64_t wire_bytes = fresh[j].to_bytes().size();
    stats_.bytes_published += wire_bytes;
    Probes::get().updates_issued.add();
    Probes::get().broadcast_bytes.add(wire_bytes);
    out[missing_at[j]] = std::move(fresh[j]);
  }

  std::vector<core::KeyUpdate> result;
  result.reserve(out.size());
  for (auto& u : out) result.push_back(std::move(*u));
  return result;
}

core::KeyUpdate TimeServer::issue_for(const TimeSpec& t) {
  return try_issue_for(t).value();  // throws on error
}

Result<core::KeyUpdate> TimeServer::try_issue_for(const TimeSpec& t) {
  // Trust assumption 2: never sign a future instant.
  if (t.unix_seconds() > timeline_.now()) return Errc::kFutureInstant;
  if (auto existing = archive_.find(t.canonical())) return *existing;
  return issue_unchecked(t);
}

}  // namespace tre::server
