#include "timeserver/timeserver.h"

namespace tre::server {

template class BasicTimeServer<core::Tre512Backend>;

}  // namespace tre::server
