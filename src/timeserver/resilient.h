// Missing-update resilience (the paper's §6 future work).
//
// A plain TRE update for instant T opens only ciphertexts with release
// tag exactly T. The paper suggests hierarchy as the fix; this module
// implements the disjunctive variant: the sender locks the message under
// a FALLBACK CHAIN — the exact release instant plus the next boundary at
// each coarser granularity, e.g. for release 2005-06-06T09:00:30Z:
//
//     2005-06-06T09:00:30Z   (second — the precise release)
//     2005-06-06T09:01Z      (next minute boundary)
//     2005-06-06T10Z         (next hour boundary)
//     2005-06-07             (next day boundary)
//
// ANY one update in the chain decrypts (core::PolicyLock::lock_any), so
// a receiver who missed the precise update — and cannot reach the
// archive — simply waits for the next coarser broadcast. Precision
// degrades gracefully instead of failing. The server broadcasts coarse
// tags anyway when run at multiple granularities (TimeServer supports
// granularity sets).
//
// Trade-off measured by experiment E11: one extra pairing and one
// 32-byte wrap per fallback level at encryption time; decryption cost is
// unchanged (one pairing, whichever level is used).
#pragma once

#include <vector>

#include "core/policylock.h"
#include "timeserver/timespec.h"

namespace tre::server {

/// The release instant plus the next boundary of every coarser
/// granularity down to `coarsest`, finest first. The chain is strictly
/// non-decreasing in time: every element releases at or after `release`.
std::vector<TimeSpec> fallback_chain(const TimeSpec& release,
                                     Granularity coarsest = Granularity::kDay);

class ResilientTre {
 public:
  explicit ResilientTre(std::shared_ptr<const params::GdhParams> params);

  const core::TreScheme& scheme() const { return lock_.scheme(); }

  /// Locks `msg` under the whole fallback chain of `release`.
  core::AnyCiphertext encrypt(ByteSpan msg, const core::UserPublicKey& user,
                              const core::ServerPublicKey& time_server,
                              const TimeSpec& release,
                              tre::hashing::RandomSource& rng,
                              Granularity coarsest = Granularity::kDay) const;

  /// Decrypts with an update for ANY chain element (exact or fallback).
  Bytes decrypt(const core::AnyCiphertext& ct, const core::Scalar& a,
                const core::KeyUpdate& update) const;

 private:
  core::PolicyLock lock_;
};

}  // namespace tre::server
