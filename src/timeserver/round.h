// Round-number addressing — the tlock/drand-shaped envelope.
//
// drand-style beacons do not sign calendar strings: they sign round
// numbers, with round r's message fixed as SHA256(BE64(r)). A tlock
// ciphertext therefore names a ROUND, and anyone can map a wall-clock
// release time to the round that covers it from the beacon's genesis
// time and period. This header pins down the repo's version of that
// contract so the threshold-beacon pipeline (threshold/, tre_cli
// --round) interoperates at the envelope level:
//
//   * round_tag(r) — the canonical tag string "round:<r>" a round's
//     update/partials are issued under. The TRE scheme signs
//     H1(round_tag(r)); the tag string, not the raw digest, is what
//     crosses every existing wire format unchanged.
//   * round_message(r) — SHA256(BE64(r)), drand's per-round message,
//     recorded for deployments that bridge to a real drand beacon (the
//     digest would then replace the tag string at the hash-to-curve
//     boundary).
//   * round_for / round_time — wall-clock <-> round conversion from a
//     (genesis, period) beacon chain description, matching drand's
//     `CurrentRound` arithmetic: round 1 is the first beacon, emitted
//     AT genesis_seconds.
#pragma once

#include <charconv>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/bytes.h"
#include "common/error.h"
#include "hashing/sha256.h"

namespace tre::server {

/// Canonical tag string for beacon round `round`: "round:<decimal>".
inline std::string round_tag(std::uint64_t round) {
  return "round:" + std::to_string(round);
}

/// Inverse of round_tag; nullopt for any tag that is not one of its
/// outputs (non-canonical digits, leading zeros, overflow, other tags).
inline std::optional<std::uint64_t> parse_round_tag(std::string_view tag) {
  constexpr std::string_view kPrefix = "round:";
  if (tag.size() <= kPrefix.size() || tag.substr(0, kPrefix.size()) != kPrefix)
    return std::nullopt;
  std::string_view digits = tag.substr(kPrefix.size());
  if (digits.size() > 1 && digits.front() == '0') return std::nullopt;
  std::uint64_t value = 0;
  auto [end, ec] = std::from_chars(digits.data(), digits.data() + digits.size(),
                                   value);
  if (ec != std::errc() || end != digits.data() + digits.size())
    return std::nullopt;
  return value;
}

/// drand's per-round message: SHA256(BE64(round)).
inline Bytes round_message(std::uint64_t round) {
  std::uint8_t be[8];
  for (int i = 7; i >= 0; --i) {
    be[i] = static_cast<std::uint8_t>(round & 0xff);
    round >>= 8;
  }
  return hashing::sha256(ByteSpan(be, sizeof be));
}

/// A beacon chain's timing description: the first round (round 1) is
/// emitted at `genesis_seconds`, one round every `period_seconds`.
struct BeaconChain {
  std::int64_t genesis_seconds = 0;
  std::int64_t period_seconds = 30;  // drand mainnet default
};

/// The latest round emitted at or before `unix_seconds` (0 = pre-genesis
/// — no round exists yet). An encryptor addressing a future release time
/// uses this round + 1 onward.
inline std::uint64_t round_for(const BeaconChain& chain,
                               std::int64_t unix_seconds) {
  require(chain.period_seconds > 0, "BeaconChain: period must be positive");
  if (unix_seconds < chain.genesis_seconds) return 0;
  return static_cast<std::uint64_t>(
             (unix_seconds - chain.genesis_seconds) / chain.period_seconds) +
         1;
}

/// The instant round `round` is emitted (round >= 1).
inline std::int64_t round_time(const BeaconChain& chain, std::uint64_t round) {
  require(round >= 1, "round_time: rounds start at 1");
  require(chain.period_seconds > 0, "BeaconChain: period must be positive");
  return chain.genesis_seconds +
         static_cast<std::int64_t>(round - 1) * chain.period_seconds;
}

}  // namespace tre::server
