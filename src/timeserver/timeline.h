// Deterministic simulated clock with an event queue.
//
// All protocol experiments run against a Timeline instead of the wall
// clock: release-time semantics depend only on event ordering and
// latencies, which the simulation controls exactly (DESIGN.md §7). The
// broadcast bus schedules delayed deliveries here.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace tre::server {

class Timeline {
 public:
  using Event = std::function<void()>;

  explicit Timeline(std::int64_t start_unix_seconds = 0) : now_(start_unix_seconds) {}

  std::int64_t now() const { return now_; }

  /// Registers `fn` to run at now + delay (delay >= 0). Events at the
  /// same instant run in scheduling order.
  void schedule(std::int64_t delay_seconds, Event fn);

  /// Advances to `t`, firing every due event in timestamp order. Events
  /// may schedule further events.
  void advance_to(std::int64_t t);

  void advance_by(std::int64_t seconds) { advance_to(now_ + seconds); }

  /// Runs everything that is already due without moving the clock.
  void drain_due() { advance_to(now_); }

  size_t pending_events() const { return queue_.size(); }

 private:
  struct Scheduled {
    std::int64_t at;
    std::uint64_t seq;  // tie-break: FIFO within an instant
    Event fn;
  };
  struct Later {
    bool operator()(const Scheduled& a, const Scheduled& b) const {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  std::int64_t now_;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Scheduled, std::vector<Scheduled>, Later> queue_;
};

}  // namespace tre::server
