// The public list of past key updates.
//
// Paper §3: "In case a receiver has missed a particular key update, he
// could still look up from the list of old key updates" — the archive is
// that list. Indexed lookup by tag plus ordered iteration for catch-up
// after an outage. Experiment E7 measures it at archive sizes up to 10^6.
//
// Backend-generic: an archive stores BasicKeyUpdate<B> for whichever
// pairing backend the server runs on; `UpdateArchive` is the type-1
// instantiation.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/tre.h"

namespace tre::server {

template <class B>
class BasicUpdateArchive {
 public:
  /// Stores an update (idempotent for an identical re-publish; conflicting
  /// signatures for the same tag throw — the server must be consistent).
  void put(const core::BasicKeyUpdate<B>& update) {
    auto it = index_.find(update.tag);
    if (it != index_.end()) {
      require(B::gu_eq(ordered_[it->second].sig, update.sig),
              "UpdateArchive: conflicting update for the same tag");
      return;
    }
    index_.emplace(update.tag, ordered_.size());
    ordered_.push_back(update);
    total_bytes_ += update.to_bytes().size();
  }

  std::optional<core::BasicKeyUpdate<B>> find(std::string_view tag) const {
    auto it = index_.find(std::string(tag));
    if (it == index_.end()) return std::nullopt;
    return ordered_[it->second];
  }
  bool contains(std::string_view tag) const {
    return index_.count(std::string(tag)) > 0;
  }

  /// All updates, oldest first (publication order).
  const std::vector<core::BasicKeyUpdate<B>>& all() const { return ordered_; }

  /// Catch-up: every update published at position >= `cursor`; advances
  /// the caller's cursor to the end.
  std::vector<core::BasicKeyUpdate<B>> since(size_t& cursor) const {
    require(cursor <= ordered_.size(), "UpdateArchive: cursor out of range");
    std::vector<core::BasicKeyUpdate<B>> out(
        ordered_.begin() + static_cast<long>(cursor), ordered_.end());
    cursor = ordered_.size();
    return out;
  }

  size_t size() const { return ordered_.size(); }

  /// Total wire bytes a mirror of the archive would store/serve.
  size_t total_bytes() const { return total_bytes_; }

 private:
  std::vector<core::BasicKeyUpdate<B>> ordered_;
  std::unordered_map<std::string, size_t> index_;  // tag -> position
  size_t total_bytes_ = 0;
};

using UpdateArchive = BasicUpdateArchive<core::Tre512Backend>;

extern template class BasicUpdateArchive<core::Tre512Backend>;

/// Validates a whole catch-up batch of updates against the server key
/// with TWO pairings total (randomized BLS batch verification) instead
/// of two per update. A single bad update makes the whole batch fail;
/// fall back to per-update verify_update() to locate it. (Type-1 only:
/// it reuses the symmetric-curve BLS batch verifier.)
bool verify_update_batch(std::shared_ptr<const params::GdhParams> params,
                         const core::ServerPublicKey& server,
                         std::span<const core::KeyUpdate> updates,
                         tre::hashing::RandomSource& rng);

}  // namespace tre::server
