// The public list of past key updates.
//
// Paper §3: "In case a receiver has missed a particular key update, he
// could still look up from the list of old key updates" — the archive is
// that list. Indexed lookup by tag plus ordered iteration for catch-up
// after an outage. Experiment E7 measures it at archive sizes up to 10^6.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/tre.h"

namespace tre::server {

class UpdateArchive {
 public:
  /// Stores an update (idempotent for an identical re-publish; conflicting
  /// signatures for the same tag throw — the server must be consistent).
  void put(const core::KeyUpdate& update);

  std::optional<core::KeyUpdate> find(std::string_view tag) const;
  bool contains(std::string_view tag) const { return index_.count(std::string(tag)) > 0; }

  /// All updates, oldest first (publication order).
  const std::vector<core::KeyUpdate>& all() const { return ordered_; }

  /// Catch-up: every update published at position >= `cursor`; advances
  /// the caller's cursor to the end.
  std::vector<core::KeyUpdate> since(size_t& cursor) const;

  size_t size() const { return ordered_.size(); }

  /// Total wire bytes a mirror of the archive would store/serve.
  size_t total_bytes() const { return total_bytes_; }

 private:
  std::vector<core::KeyUpdate> ordered_;
  std::unordered_map<std::string, size_t> index_;  // tag -> position
  size_t total_bytes_ = 0;
};

/// Validates a whole catch-up batch of updates against the server key
/// with TWO pairings total (randomized BLS batch verification) instead
/// of two per update. A single bad update makes the whole batch fail;
/// fall back to per-update verify_update() to locate it.
bool verify_update_batch(std::shared_ptr<const params::GdhParams> params,
                         const core::ServerPublicKey& server,
                         std::span<const core::KeyUpdate> updates,
                         tre::hashing::RandomSource& rng);

}  // namespace tre::server
