// Hierarchical timed release — the paper's §6 future-work design, built
// on Gentry-Silverberg HIBE (hibe/hibe.h).
//
// Time is a tree: day / hour / minute. The passive server publishes
//   * each minute's LEAF key when that minute arrives (the ordinary
//     per-instant update), and
//   * each hour's INTERNAL key — including its derivation secret — once
//     the hour has completely passed, and likewise each day's key.
//
// An internal key lets anyone derive every contained leaf, so:
//   * a receiver that missed minute updates recovers them from the next
//     completed hour/day key with local derivation — no delayed release
//     (contrast timeserver/resilient.h, which trades precision), and
//   * the public archive COMPACTS: a completed day stores 1 key instead
//     of 1440, keeping the look-up list at O(days + 24 + 60) entries.
//
// Confidentiality against the server is preserved exactly as in §5.1:
// the receiver key (a·P0, a·Q0) is an ordinary TRE user key bound to the
// HIBE root, and the session key is ê(Q_0, P_day)^{r·a}, so decryption
// needs BOTH the receiver secret and the published time key. Publishing
// an internal key releases only past instants: future siblings live
// under different node secrets.
#pragma once

#include <map>
#include <optional>

#include "hibe/hibe.h"
#include "timeserver/timeline.h"
#include "timeserver/timespec.h"

namespace tre::server {

/// (day, hour, minute) canonical-string path for `t`; shallower for
/// coarser granularities (day -> depth 1, hour -> depth 2).
hibe::IdPath time_path(const TimeSpec& t);

/// Non-escrowed hierarchical TRE (receiver-bound HIBE encryption).
class HierarchicalTre {
 public:
  explicit HierarchicalTre(std::shared_ptr<const params::GdhParams> params);

  const hibe::GsHibe& hibe() const { return hibe_; }

  /// User keys are ordinary TRE keys bound to (P0, Q0): reuse
  /// core::TreScheme::user_keygen with ServerPublicKey{P0, Q0}.
  hibe::HibeCiphertext encrypt(ByteSpan msg, const core::UserPublicKey& user,
                               const hibe::RootPublicKey& root,
                               const TimeSpec& release,
                               tre::hashing::RandomSource& rng) const;

  /// Decrypts with the receiver secret plus the leaf (or derived-leaf)
  /// node key for the release instant.
  Bytes decrypt(const hibe::HibeCiphertext& ct, const core::Scalar& a,
                const hibe::NodeKey& leaf) const;

 private:
  hibe::GsHibe hibe_;
  core::TreScheme mask_;
};

/// Public archive with hierarchical compaction.
class CompactingArchive {
 public:
  /// Stores a published key; internal keys trigger compaction (an hour
  /// key evicts its minutes, a day key evicts its hours).
  void put(const hibe::NodeKey& key);

  /// Finds or derives the leaf key for `minute`: direct hit, or derived
  /// from the containing hour/day key if those periods completed.
  std::optional<hibe::NodeKey> leaf_for(const hibe::GsHibe& hibe,
                                        const ec::G1Point& p0,
                                        const TimeSpec& minute) const;

  size_t entries() const { return keys_.size(); }
  size_t stored_points() const;  // archive size proxy (group elements held)

 private:
  static std::string join(const hibe::IdPath& path);

  std::map<std::string, hibe::NodeKey> keys_;  // joined path -> key
};

/// The passive server for the hierarchy: deterministic node secrets from
/// a master seed, publication on period boundaries.
class HierarchicalTimeServer {
 public:
  HierarchicalTimeServer(std::shared_ptr<const params::GdhParams> params,
                         Timeline& timeline, tre::hashing::RandomSource& rng);

  const hibe::RootPublicKey& public_key() const { return root_pub_; }

  /// Publishes everything newly due: minute leaves that arrived, hour
  /// keys for completed hours, day keys for completed days. Returns the
  /// number of keys published.
  size_t tick();

  const CompactingArchive& archive() const { return archive_; }

  /// The key the server would publish for a node (testing/inspection);
  /// enforces the release rule (leaf: instant arrived; internal: period
  /// completed).
  hibe::NodeKey key_for(const TimeSpec& t);

  struct Stats {
    std::uint64_t leaves_published = 0;
    std::uint64_t internal_published = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  core::Scalar node_secret(const hibe::IdPath& path) const;
  hibe::NodeKey build_key(const hibe::IdPath& path) const;

  std::shared_ptr<const params::GdhParams> params_;
  hibe::GsHibe hibe_;
  Timeline& timeline_;
  Bytes master_seed_;
  hibe::RootKey root_;
  hibe::RootPublicKey root_pub_;
  CompactingArchive archive_;
  TimeSpec next_minute_;
  Stats stats_;
};

}  // namespace tre::server
