#include "timeserver/archive.h"

#include "bls/bls.h"

namespace tre::server {

template class BasicUpdateArchive<core::Tre512Backend>;

bool verify_update_batch(std::shared_ptr<const params::GdhParams> params,
                         const core::ServerPublicKey& server,
                         std::span<const core::KeyUpdate> updates,
                         tre::hashing::RandomSource& rng) {
  // Updates are BLS signatures on their tags; reuse the batch verifier.
  bls::BlsScheme bls(std::move(params));
  std::vector<bls::SignedMessage> batch;
  batch.reserve(updates.size());
  for (const auto& upd : updates) {
    batch.push_back(bls::SignedMessage{upd.tag, bls::Signature{upd.sig}});
  }
  return bls.verify_batch(server.g, server.sg, batch, rng);
}

}  // namespace tre::server
