#include "timeserver/archive.h"

#include "bls/bls.h"

namespace tre::server {

void UpdateArchive::put(const core::KeyUpdate& update) {
  auto it = index_.find(update.tag);
  if (it != index_.end()) {
    require(ordered_[it->second].sig == update.sig,
            "UpdateArchive: conflicting update for the same tag");
    return;
  }
  index_.emplace(update.tag, ordered_.size());
  ordered_.push_back(update);
  total_bytes_ += update.to_bytes().size();
}

std::optional<core::KeyUpdate> UpdateArchive::find(std::string_view tag) const {
  auto it = index_.find(std::string(tag));
  if (it == index_.end()) return std::nullopt;
  return ordered_[it->second];
}

bool verify_update_batch(std::shared_ptr<const params::GdhParams> params,
                         const core::ServerPublicKey& server,
                         std::span<const core::KeyUpdate> updates,
                         tre::hashing::RandomSource& rng) {
  // Updates are BLS signatures on their tags; reuse the batch verifier.
  bls::BlsScheme bls(std::move(params));
  std::vector<bls::SignedMessage> batch;
  batch.reserve(updates.size());
  for (const auto& upd : updates) {
    batch.push_back(bls::SignedMessage{upd.tag, bls::Signature{upd.sig}});
  }
  return bls.verify_batch(server.g, server.sg, batch, rng);
}

std::vector<core::KeyUpdate> UpdateArchive::since(size_t& cursor) const {
  require(cursor <= ordered_.size(), "UpdateArchive: cursor out of range");
  std::vector<core::KeyUpdate> out(ordered_.begin() + static_cast<long>(cursor),
                                   ordered_.end());
  cursor = ordered_.size();
  return out;
}

}  // namespace tre::server
