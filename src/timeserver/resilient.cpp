#include "timeserver/resilient.h"

namespace tre::server {

std::vector<TimeSpec> fallback_chain(const TimeSpec& release, Granularity coarsest) {
  require(coarsest <= release.granularity(),
          "fallback_chain: coarsest level must not be finer than the release");
  std::vector<TimeSpec> chain = {release};
  // Walk from one-step-coarser down to `coarsest`, ceiling each level to
  // the first boundary at or after the release instant.
  for (int g = static_cast<int>(release.granularity()) - 1;
       g >= static_cast<int>(coarsest); --g) {
    auto granularity = static_cast<Granularity>(g);
    TimeSpec boundary = TimeSpec::from_unix(release.unix_seconds(), granularity);
    if (boundary.unix_seconds() < release.unix_seconds()) boundary = boundary.next();
    chain.push_back(boundary);
  }
  return chain;
}

ResilientTre::ResilientTre(std::shared_ptr<const params::GdhParams> params)
    : lock_(std::move(params)) {}

core::AnyCiphertext ResilientTre::encrypt(ByteSpan msg, const core::UserPublicKey& user,
                                          const core::ServerPublicKey& time_server,
                                          const TimeSpec& release,
                                          tre::hashing::RandomSource& rng,
                                          Granularity coarsest) const {
  std::vector<std::string> conditions;
  for (const TimeSpec& t : fallback_chain(release, coarsest)) {
    conditions.push_back(t.canonical());
  }
  return lock_.lock_any(msg, user, time_server, conditions, rng);
}

Bytes ResilientTre::decrypt(const core::AnyCiphertext& ct, const core::Scalar& a,
                            const core::KeyUpdate& update) const {
  return lock_.unlock_any(ct, a, update);
}

}  // namespace tre::server
