#include "bls12/bls12.h"

#include <mutex>

#include "bigint/prime.h"
#include "hashing/kdf.h"

namespace tre::bls12 {

namespace {

// The entire curve family hangs off this one 64-bit parameter.
constexpr std::uint64_t kAbsZ = 0xd201000000010000ull;  // z = -|z|

using Wide = bigint::BigInt<24>;  // scratch width for p², twist orders

// Integer square root (Newton), with exactness reported separately.
Wide isqrt(const Wide& n) {
  if (n.is_zero()) return Wide{};
  Wide x = bigint::shl(Wide::from_u64(1), (n.bit_length() + 1) / 2);
  for (;;) {
    // x1 = (x + n/x) / 2
    Wide q, rem;
    bigint::divmod(n, x, q, rem);
    Wide x1 = bigint::shr(bigint::add(x, q), 1);
    if (!(x1 < x)) return x;
    x = x1;
  }
}

// Generic Jacobian arithmetic over any field element type T providing
// ring operators, squared(), inverse(), is_zero() and a one() factory.
// Valid for a = 0 short-Weierstrass curves (both E and E').
template <class T>
struct JacT {
  T x, y, z;
  bool inf() const { return z.is_zero(); }
};

template <class T>
JacT<T> jac_dbl(const JacT<T>& p) {
  if (p.inf() || p.y.is_zero()) return JacT<T>{p.x, p.y, p.z - p.z};  // zero z
  T a = p.x.squared();
  T b = p.y.squared();
  T c = b.squared();
  T d = (p.x + b).squared() - a - c;
  d = d + d;
  T e = a + a + a;
  T x3 = e.squared() - (d + d);
  T c8 = c + c;
  c8 = c8 + c8;
  c8 = c8 + c8;
  T y3 = e * (d - x3) - c8;
  T z3 = (p.y * p.z) + (p.y * p.z);
  return JacT<T>{x3, y3, z3};
}

template <class T>
JacT<T> jac_add(const JacT<T>& p, const JacT<T>& q) {
  if (p.inf()) return q;
  if (q.inf()) return p;
  T z1z1 = p.z.squared();
  T z2z2 = q.z.squared();
  T u1 = p.x * z2z2;
  T u2 = q.x * z1z1;
  T s1 = p.y * q.z * z2z2;
  T s2 = q.y * p.z * z1z1;
  if (u1 == u2) {
    if (s1 == s2) return jac_dbl(p);
    return JacT<T>{p.x, p.y, p.z - p.z};
  }
  T h = u2 - u1;
  T i = (h + h).squared();
  T j = h * i;
  T r = (s2 - s1);
  r = r + r;
  T v = u1 * i;
  T x3 = r.squared() - j - (v + v);
  T s1j = s1 * j;
  T y3 = r * (v - x3) - (s1j + s1j);
  T z3 = ((p.z + q.z).squared() - z1z1 - z2z2) * h;
  return JacT<T>{x3, y3, z3};
}

template <class T, size_t L>
JacT<T> jac_mul(const JacT<T>& base, const bigint::BigInt<L>& k) {
  JacT<T> acc{base.x, base.y, base.z - base.z};  // infinity (z = 0)
  for (size_t i = k.bit_length(); i-- > 0;) {
    acc = jac_dbl(acc);
    if (k.bit(i)) acc = jac_add(acc, base);
  }
  return acc;
}

}  // namespace

// ---------------------------------------------------------------------------
// Context construction: derive everything from z, validate everything.

std::shared_ptr<const Bls12Ctx> Bls12Ctx::get() {
  static std::mutex mu;
  static std::shared_ptr<const Bls12Ctx> cached;
  std::scoped_lock lock(mu);
  if (!cached) cached = std::shared_ptr<const Bls12Ctx>(new Bls12Ctx());
  return cached;
}

Bls12Ctx::Bls12Ctx() : abs_z_(kAbsZ) {
  hashing::HmacDrbg validation_rng(to_bytes("bls12-381 validation"));

  // r = z⁴ - z² + 1 (even powers: sign of z irrelevant).
  FpInt z = FpInt::from_u64(abs_z_);
  FpInt z2 = bigint::mul_wide(z, z).resized<field::kMaxFieldLimbs>();
  FpInt z4 = bigint::mul_wide(z2, z2).resized<field::kMaxFieldLimbs>();
  FpInt r = bigint::add(bigint::sub(z4, z2), FpInt::from_u64(1));

  // p = ((z-1)²·r)/3 + z, with z negative: (z-1)² = (|z|+1)².
  FpInt z_plus_1 = bigint::add(z, FpInt::from_u64(1));
  FpInt zp1_sq = bigint::mul_wide(z_plus_1, z_plus_1).resized<field::kMaxFieldLimbs>();
  auto prod = bigint::mul_wide(zp1_sq, r);  // 24 limbs
  Wide quo, rem;
  bigint::divmod(prod, Wide::from_u64(3), quo, rem);
  require(rem.is_zero(), "Bls12Ctx: (z-1)²·r not divisible by 3");
  FpInt p = bigint::sub(quo.resized<field::kMaxFieldLimbs>(), z);

  require(p.bit_length() == 381, "Bls12Ctx: p has wrong size");
  require(r.bit_length() == 255, "Bls12Ctx: r has wrong size");
  require(bigint::is_probable_prime(p, validation_rng, 20), "Bls12Ctx: p not prime");
  require(bigint::is_probable_prime(r, validation_rng, 20), "Bls12Ctx: r not prime");

  fp_ = std::make_shared<const FpCtx>(p);
  fr_ = std::make_shared<const FpCtx>(r);
  require(fp_->p_mod_4_is_3, "Bls12Ctx: p != 3 (mod 4)");
  tower_ = std::make_unique<TowerCtx>(fp_.get());

  // G1 cofactor h1 = (z-1)²/3; #E(F_p) = p + |z| = h1·r.
  FpInt h1, h1_rem;
  bigint::divmod(zp1_sq, FpInt::from_u64(3), h1, h1_rem);
  require(h1_rem.is_zero(), "Bls12Ctx: (z-1)² not divisible by 3");
  g1_cofactor_ = h1;
  FpInt n1 = bigint::add(p, z);  // p + 1 - t, t = z + 1
  require(bigint::mul_wide(h1, r).resized<field::kMaxFieldLimbs>() == n1,
          "Bls12Ctx: G1 order identity failed");

  // Twist constant b' = 4(1+u).
  twist_b_ = tower_->xi.scale(Fp::from_u64(fp_.get(), 4));

  // Untwist constants 1/w², 1/w³ (w⁶ = ξ so w^{-1} = w⁵/ξ).
  {
    Fp12 w = fp12_zero(*tower_);
    w.c1.c0 = Fp2::one(fp_.get());  // w
    Fp12 w_inv = fp12_inv(*tower_, w);
    w2_inv_ = fp12_mul(*tower_, w_inv, w_inv);
    w3_inv_ = fp12_mul(*tower_, w2_inv_, w_inv);
  }

  // G2 cofactor: find the twist order among the six CM candidates.
  {
    // t = z + 1 (negative): t² = (|z|-1)². Frobenius over F_p2 has trace
    // t2 = t² - 2p (< 0 here) and CM data t2² - 4p² = -3·f2².
    FpInt abs_t = bigint::sub(z, FpInt::from_u64(1));
    Wide t_sq = bigint::mul_wide(abs_t, abs_t).resized<Wide::kLimbs>();
    Wide p_wide = p.resized<Wide::kLimbs>();
    Wide p2 = bigint::mul_wide(p, p).resized<Wide::kLimbs>();
    // |t2| = 2p - t² (t2 = t² - 2p < 0).
    Wide abs_t2 = bigint::sub(bigint::shl(p_wide, 1), t_sq);
    // f2 = sqrt((4p² - t2²)/3), exact by CM discriminant -3.
    Wide f_sq_num = bigint::sub(
        bigint::shl(p2, 2),
        bigint::mul_wide(abs_t2.resized<12>(), abs_t2.resized<12>()).resized<Wide::kLimbs>());
    Wide f_sq, f_rem;
    bigint::divmod(f_sq_num, Wide::from_u64(3), f_sq, f_rem);
    require(f_rem.is_zero(), "Bls12Ctx: CM identity failed");
    Wide f2 = isqrt(f_sq);
    require(bigint::mul_wide(f2.resized<12>(), f2.resized<12>()).resized<Wide::kLimbs>() ==
                f_sq,
            "Bls12Ctx: CM square root not exact");
    Wide three_f = bigint::add(bigint::shl(f2, 1), f2);

    Wide p2_plus_1 = bigint::add(p2, Wide::from_u64(1));
    std::vector<Wide> candidates;
    // Sextic-twist orders: n = p²+1-e for e in {±t2, ±(t2+3f2)/2,
    // ±(t2-3f2)/2}; signs resolved via magnitudes (t2 < 0 and
    // |t2| ≈ 2p dominates 3f2 ≈ 3·2^255).
    auto push = [&](const Wide& magnitude, bool e_negative) {
      candidates.push_back(e_negative ? bigint::add(p2_plus_1, magnitude)
                                      : bigint::sub(p2_plus_1, magnitude));
    };
    push(abs_t2, true);
    push(abs_t2, false);
    Wide m1 = bigint::shr(bigint::sub(abs_t2, three_f), 1);  // |(t2+3f2)/2|
    Wide m2 = bigint::shr(bigint::add(abs_t2, three_f), 1);  // |(t2-3f2)/2|
    push(m1, true);
    push(m1, false);
    push(m2, true);
    push(m2, false);

    // Sample a twist point and find the candidate order that (a) is
    // divisible by r and (b) annihilates the point.
    G2Point381 sample = g2_infinity();
    for (std::uint32_t ctr = 0; sample.inf; ++ctr) {
      Bytes h = hashing::oracle_bytes("BLS12-G2-sample", be32(ctr), 4 * fp_->byte_len);
      Fp2 x(Fp::from_bytes_wide(fp_.get(), ByteSpan(h.data(), 2 * fp_->byte_len)),
            Fp::from_bytes_wide(fp_.get(),
                                ByteSpan(h.data() + 2 * fp_->byte_len, 2 * fp_->byte_len)));
      Fp2 rhs = x.squared() * x + twist_b_;
      auto y = rhs.sqrt();
      if (!y) continue;
      sample = G2Point381{x, *y, false};
    }
    bool found = false;
    for (const Wide& n : candidates) {
      Wide q2, r2;
      bigint::divmod(n, r.resized<Wide::kLimbs>(), q2, r2);
      if (!r2.is_zero()) continue;
      // n must annihilate the sampled point.
      JacT<Fp2> jac{sample.x, sample.y, Fp2::one(fp_.get())};
      if (!jac_mul(jac, n).inf()) continue;
      require(q2.bit_length() <= 64 * field::kMaxFieldLimbs,
              "Bls12Ctx: G2 cofactor too large");
      g2_cofactor_ = q2.resized<field::kMaxFieldLimbs>();
      found = true;
      break;
    }
    require(found, "Bls12Ctx: no twist order candidate matched");
  }

  // Hard exponent (p⁴ - p² + 1)/r for the final exponentiation.
  {
    Wide p2 = bigint::mul_wide(p, p).resized<Wide::kLimbs>();
    Wide p4 = bigint::mul_wide(p2.resized<12>(), p2.resized<12>()).resized<Wide::kLimbs>();
    Wide hard = bigint::add(bigint::sub(p4, p2), Wide::from_u64(1));
    Wide quo2, rem2;
    bigint::divmod(hard, r.resized<Wide::kLimbs>(), quo2, rem2);
    require(rem2.is_zero(), "Bls12Ctx: r does not divide p⁴ - p² + 1");
    hard_exponent_ = quo2;
  }

  // Generators.
  g1_gen_ = hash_to_g1(to_bytes("BLS12-381 G1 generator / TRE-v1"));
  {
    for (std::uint32_t ctr = 0;; ++ctr) {
      Bytes h = hashing::oracle_bytes("BLS12-G2-gen", be32(ctr), 4 * fp_->byte_len);
      Fp2 x(Fp::from_bytes_wide(fp_.get(), ByteSpan(h.data(), 2 * fp_->byte_len)),
            Fp::from_bytes_wide(fp_.get(),
                                ByteSpan(h.data() + 2 * fp_->byte_len, 2 * fp_->byte_len)));
      Fp2 rhs = x.squared() * x + twist_b_;
      auto y = rhs.sqrt();
      if (!y) continue;
      G2Point381 cleared = g2_mul(G2Point381{x, *y, false}, g2_cofactor_);
      if (cleared.inf) continue;
      g2_gen_ = cleared;
      break;
    }
    require(g2_in_subgroup(g2_gen_), "Bls12Ctx: G2 generator escaped the subgroup");
    // Frobenius eigenvalue check: the untwisted generator satisfies
    // π(Q) = [p]Q — the defining property of G2 the ate pairing needs.
    PointFp12 qu = untwist(g2_gen_);
    PointFp12 frob_q = fp12_point_frobenius(qu);
    // [p]Q computed on the twist side (cheap): p ≡ p mod r on order-r points.
    FpInt p_mod_r = bigint::mod(p, r);
    G2Point381 pq = g2_mul(g2_gen_, p_mod_r);
    PointFp12 pq_untwisted = untwist(pq);
    require(!frob_q.inf && !pq_untwisted.inf &&
                fp12_eq(frob_q.x, pq_untwisted.x) && fp12_eq(frob_q.y, pq_untwisted.y),
            "Bls12Ctx: G2 generator fails the Frobenius eigenvalue check");
  }
}

// ---------------------------------------------------------------------------
// G1.

G1Point381 Bls12Ctx::g1_infinity() const {
  return G1Point381{Fp::zero(fp_.get()), Fp::zero(fp_.get()), true};
}

bool Bls12Ctx::g1_on_curve(const G1Point381& a) const {
  if (a.inf) return true;
  return a.y.squared() == a.x.squared() * a.x + Fp::from_u64(fp_.get(), 4);
}

bool Bls12Ctx::g1_eq(const G1Point381& a, const G1Point381& b) const {
  if (a.inf || b.inf) return a.inf == b.inf;
  return a.x == b.x && a.y == b.y;
}

G1Point381 Bls12Ctx::g1_neg(const G1Point381& a) const {
  if (a.inf) return a;
  return G1Point381{a.x, -a.y, false};
}

namespace {

G1Point381 jac_to_g1(const JacT<Fp>& j, const FpCtx* fp) {
  if (j.inf()) return G1Point381{Fp::zero(fp), Fp::zero(fp), true};
  Fp zi = j.z.inverse();
  Fp zi2 = zi.squared();
  return G1Point381{j.x * zi2, j.y * zi2 * zi, false};
}

G2Point381 jac_to_g2(const JacT<Fp2>& j, const FpCtx* fp) {
  if (j.inf()) return G2Point381{Fp2::zero(fp), Fp2::zero(fp), true};
  Fp2 zi = j.z.inverse();
  Fp2 zi2 = zi.squared();
  return G2Point381{j.x * zi2, j.y * zi2 * zi, false};
}

}  // namespace

G1Point381 Bls12Ctx::g1_add(const G1Point381& a, const G1Point381& b) const {
  if (a.inf) return b;
  if (b.inf) return a;
  JacT<Fp> ja{a.x, a.y, Fp::one(fp_.get())};
  JacT<Fp> jb{b.x, b.y, Fp::one(fp_.get())};
  return jac_to_g1(jac_add(ja, jb), fp_.get());
}

G1Point381 Bls12Ctx::g1_mul(const G1Point381& a, const Scalar& k) const {
  if (a.inf || k.is_zero()) return g1_infinity();
  JacT<Fp> ja{a.x, a.y, Fp::one(fp_.get())};
  return jac_to_g1(jac_mul(ja, k), fp_.get());
}

bool Bls12Ctx::g1_in_subgroup(const G1Point381& a) const {
  if (!g1_on_curve(a)) return false;
  return g1_mul(a, r()).inf;
}

G1Point381 Bls12Ctx::hash_to_g1(ByteSpan msg) const {
  for (std::uint32_t ctr = 0;; ++ctr) {
    Bytes input = concat({msg, be32(ctr)});
    Bytes h = hashing::oracle_bytes("BLS12-H1", input, 2 * fp_->byte_len);
    Fp x = Fp::from_bytes_wide(fp_.get(), h);
    Fp rhs = x.squared() * x + Fp::from_u64(fp_.get(), 4);
    auto y = rhs.sqrt();
    if (!y) continue;
    G1Point381 cleared = g1_mul(G1Point381{x, *y, false}, g1_cofactor_);
    if (!cleared.inf) return cleared;
  }
}

Bytes Bls12Ctx::g1_to_bytes(const G1Point381& a) const {
  Bytes out(1 + fp_->byte_len, 0);
  if (a.inf) return out;
  out[0] = static_cast<std::uint8_t>(0x02 | (a.y.to_int().w[0] & 1));
  Bytes xb = a.x.to_bytes();
  std::copy(xb.begin(), xb.end(), out.begin() + 1);
  return out;
}

G1Point381 Bls12Ctx::g1_from_bytes(ByteSpan bytes) const {
  require(bytes.size() == 1 + fp_->byte_len, "g1_from_bytes: wrong length");
  if (bytes[0] == 0x00) return g1_infinity();
  require(bytes[0] == 0x02 || bytes[0] == 0x03, "g1_from_bytes: bad tag");
  Fp x = Fp::from_bytes(fp_.get(), bytes.subspan(1));
  auto y = (x.squared() * x + Fp::from_u64(fp_.get(), 4)).sqrt();
  require(y.has_value(), "g1_from_bytes: not on curve");
  if ((y->to_int().w[0] & 1) != (bytes[0] & 1)) *y = -*y;
  G1Point381 p{x, *y, false};
  require(g1_in_subgroup(p), "g1_from_bytes: outside the order-r subgroup");
  return p;
}

// ---------------------------------------------------------------------------
// G2 (twist coordinates).

G2Point381 Bls12Ctx::g2_infinity() const {
  return G2Point381{Fp2::zero(fp_.get()), Fp2::zero(fp_.get()), true};
}

bool Bls12Ctx::g2_on_curve(const G2Point381& a) const {
  if (a.inf) return true;
  return a.y.squared() == a.x.squared() * a.x + twist_b_;
}

bool Bls12Ctx::g2_eq(const G2Point381& a, const G2Point381& b) const {
  if (a.inf || b.inf) return a.inf == b.inf;
  return a.x == b.x && a.y == b.y;
}

G2Point381 Bls12Ctx::g2_neg(const G2Point381& a) const {
  if (a.inf) return a;
  return G2Point381{a.x, -a.y, false};
}

G2Point381 Bls12Ctx::g2_add(const G2Point381& a, const G2Point381& b) const {
  if (a.inf) return b;
  if (b.inf) return a;
  JacT<Fp2> ja{a.x, a.y, Fp2::one(fp_.get())};
  JacT<Fp2> jb{b.x, b.y, Fp2::one(fp_.get())};
  return jac_to_g2(jac_add(ja, jb), fp_.get());
}

G2Point381 Bls12Ctx::g2_mul(const G2Point381& a, const Scalar& k) const {
  if (a.inf || k.is_zero()) return g2_infinity();
  JacT<Fp2> ja{a.x, a.y, Fp2::one(fp_.get())};
  return jac_to_g2(jac_mul(ja, k), fp_.get());
}

bool Bls12Ctx::g2_in_subgroup(const G2Point381& a) const {
  if (!g2_on_curve(a)) return false;
  return g2_mul(a, r()).inf;
}

Bytes Bls12Ctx::g2_to_bytes(const G2Point381& a) const {
  Bytes out(1 + 2 * fp_->byte_len, 0);
  if (a.inf) return out;
  std::uint64_t parity =
      a.y.re().is_zero() ? (a.y.im().to_int().w[0] & 1) : (a.y.re().to_int().w[0] & 1);
  out[0] = static_cast<std::uint8_t>(0x02 | parity);
  Bytes xb = a.x.to_bytes();
  std::copy(xb.begin(), xb.end(), out.begin() + 1);
  return out;
}

G2Point381 Bls12Ctx::g2_from_bytes(ByteSpan bytes) const {
  require(bytes.size() == 1 + 2 * fp_->byte_len, "g2_from_bytes: wrong length");
  if (bytes[0] == 0x00) return g2_infinity();
  require(bytes[0] == 0x02 || bytes[0] == 0x03, "g2_from_bytes: bad tag");
  Fp2 x = Fp2::from_bytes(fp_.get(), bytes.subspan(1));
  auto y = (x.squared() * x + twist_b_).sqrt();
  require(y.has_value(), "g2_from_bytes: not on curve");
  std::uint64_t parity =
      y->re().is_zero() ? (y->im().to_int().w[0] & 1) : (y->re().to_int().w[0] & 1);
  if (parity != (bytes[0] & 1u)) *y = -*y;
  G2Point381 p{x, *y, false};
  require(g2_in_subgroup(p), "g2_from_bytes: outside the order-r subgroup");
  return p;
}

// ---------------------------------------------------------------------------
// Pairing.

Bls12Ctx::PointFp12 Bls12Ctx::untwist(const G2Point381& q) const {
  if (q.inf) return PointFp12{fp12_zero(*tower_), fp12_zero(*tower_), true};
  Fp12 x = fp12_mul(*tower_, fp12_from_fp2(*tower_, q.x), w2_inv_);
  Fp12 y = fp12_mul(*tower_, fp12_from_fp2(*tower_, q.y), w3_inv_);
  return PointFp12{x, y, false};
}

Bls12Ctx::PointFp12 Bls12Ctx::fp12_point_frobenius(const PointFp12& a) const {
  if (a.inf) return a;
  return PointFp12{fp12_frobenius(*tower_, a.x), fp12_frobenius(*tower_, a.y), false};
}

Fp12 Bls12Ctx::miller_ate(const G1Point381& p, const G2Point381& q) const {
  const TowerCtx& t = *tower_;
  PointFp12 quntw = untwist(q);
  const Fp12 xp = fp12_from_fp(t, p.x);
  const Fp12 yp = fp12_from_fp(t, p.y);

  Fp12 f_num = fp12_one(t);
  Fp12 f_den = fp12_one(t);
  Fp12 tx = quntw.x, ty = quntw.y;  // running point T (affine over F_p12)

  FpInt loop = FpInt::from_u64(kAbsZ);
  for (size_t i = loop.bit_length() - 1; i-- > 0;) {
    f_num = fp12_sqr(t, f_num);
    f_den = fp12_sqr(t, f_den);

    // Tangent at T, evaluated at P; then T = 2T.
    Fp12 x2 = fp12_sqr(t, tx);
    Fp12 three_x2 = fp12_add(fp12_add(x2, x2), x2);
    Fp12 lambda = fp12_mul(t, three_x2, fp12_inv(t, fp12_add(ty, ty)));
    Fp12 line = fp12_sub(fp12_sub(yp, ty), fp12_mul(t, lambda, fp12_sub(xp, tx)));
    f_num = fp12_mul(t, f_num, line);
    Fp12 x_new = fp12_sub(fp12_sub(fp12_sqr(t, lambda), tx), tx);
    Fp12 y_new = fp12_sub(fp12_mul(t, lambda, fp12_sub(tx, x_new)), ty);
    tx = x_new;
    ty = y_new;
    f_den = fp12_mul(t, f_den, fp12_sub(xp, tx));

    if (loop.bit(i)) {
      // Chord through T and Q, evaluated at P; then T = T + Q.
      Fp12 lambda2 = fp12_mul(
          t, fp12_sub(quntw.y, ty), fp12_inv(t, fp12_sub(quntw.x, tx)));
      Fp12 line2 =
          fp12_sub(fp12_sub(yp, ty), fp12_mul(t, lambda2, fp12_sub(xp, tx)));
      f_num = fp12_mul(t, f_num, line2);
      Fp12 x3 = fp12_sub(fp12_sub(fp12_sqr(t, lambda2), tx), quntw.x);
      Fp12 y3 = fp12_sub(fp12_mul(t, lambda2, fp12_sub(tx, x3)), ty);
      tx = x3;
      ty = y3;
      f_den = fp12_mul(t, f_den, fp12_sub(xp, tx));
    }
  }

  // z < 0: f_{z} = 1 / f_{|z|} (the vertical correction dies in the
  // final exponentiation).
  return fp12_mul(t, f_den, fp12_inv(t, f_num));
}

Fp12 Bls12Ctx::final_exponentiation(const Fp12& f) const {
  const TowerCtx& t = *tower_;
  // Easy part: f^((p⁶-1)(p²+1)).
  Fp12 g = f;
  Fp12 frob6 = g;
  for (int i = 0; i < 6; ++i) frob6 = fp12_frobenius(t, frob6);
  Fp12 f1 = fp12_mul(t, frob6, fp12_inv(t, g));          // f^(p⁶-1)
  Fp12 f2 = fp12_mul(t, fp12_frobenius(t, fp12_frobenius(t, f1)), f1);  // ^(p²+1)
  // Hard part: generic power by (p⁴ - p² + 1)/r.
  return fp12_pow(t, f2, hard_exponent_);
}

Gt381 Bls12Ctx::pair(const G1Point381& p, const G2Point381& q) const {
  if (p.inf || q.inf) return fp12_one(*tower_);
  return final_exponentiation(miller_ate(p, q));
}

bool Bls12Ctx::pairings_equal(const G1Point381& a1, const G2Point381& a2,
                              const G1Point381& b1, const G2Point381& b2) const {
  if (a1.inf || a2.inf || b1.inf || b2.inf) {
    return fp12_eq(pair(a1, a2), pair(b1, b2));
  }
  Fp12 m = fp12_mul(*tower_, miller_ate(a1, a2), miller_ate(b1, g2_neg(b2)));
  return fp12_is_one(*tower_, final_exponentiation(m));
}

Gt381 Bls12Ctx::gt_pow(const Gt381& a, const Scalar& e) const {
  return fp12_pow(*tower_, a, e);
}

Scalar Bls12Ctx::random_scalar(tre::hashing::RandomSource& rng) const {
  return bigint::random_nonzero_below(rng, r());
}

}  // namespace tre::bls12
