#include "bls12/bls12.h"

#include <array>
#include <mutex>
#include <string>

#include "bigint/prime.h"
#include "ec/multiexp.h"
#include "hashing/kdf.h"
#include "obs/metrics.h"

namespace tre::bls12 {

namespace {

// The entire curve family hangs off this one 64-bit parameter.
constexpr std::uint64_t kAbsZ = 0xd201000000010000ull;  // z = -|z|

using Wide = bigint::BigInt<24>;  // scratch width for p², twist orders

// Pairing-engine probes (docs/OBSERVABILITY.md). These live here rather
// than in the generic SchemeProbes because the lines cache belongs to
// the shared Bls12Ctx, not to any one scheme instance.
struct PairProbes {
  obs::CounterProbe lines_hit{"core.bls381.pair.lines.hit"};
  obs::CounterProbe lines_miss{"core.bls381.pair.lines.miss"};
  obs::CounterProbe finalexp{"core.bls381.finalexp"};
  static const PairProbes& get() {
    static const PairProbes p;
    return p;
  }
};

// Integer square root (Newton), with exactness reported separately.
Wide isqrt(const Wide& n) {
  if (n.is_zero()) return Wide{};
  Wide x = bigint::shl(Wide::from_u64(1), (n.bit_length() + 1) / 2);
  for (;;) {
    // x1 = (x + n/x) / 2
    Wide q, rem;
    bigint::divmod(n, x, q, rem);
    Wide x1 = bigint::shr(bigint::add(x, q), 1);
    if (!(x1 < x)) return x;
    x = x1;
  }
}

// Generic Jacobian arithmetic over any field element type T providing
// ring operators, squared(), inverse(), is_zero() and a one() factory.
// Valid for a = 0 short-Weierstrass curves (both E and E').
template <class T>
struct JacT {
  T x, y, z;
  bool inf() const { return z.is_zero(); }
};

template <class T>
JacT<T> jac_dbl(const JacT<T>& p) {
  if (p.inf() || p.y.is_zero()) return JacT<T>{p.x, p.y, p.z - p.z};  // zero z
  T a = p.x.squared();
  T b = p.y.squared();
  T c = b.squared();
  T d = (p.x + b).squared() - a - c;
  d = d + d;
  T e = a + a + a;
  T x3 = e.squared() - (d + d);
  T c8 = c + c;
  c8 = c8 + c8;
  c8 = c8 + c8;
  T y3 = e * (d - x3) - c8;
  T z3 = (p.y * p.z) + (p.y * p.z);
  return JacT<T>{x3, y3, z3};
}

template <class T>
JacT<T> jac_add(const JacT<T>& p, const JacT<T>& q) {
  if (p.inf()) return q;
  if (q.inf()) return p;
  T z1z1 = p.z.squared();
  T z2z2 = q.z.squared();
  T u1 = p.x * z2z2;
  T u2 = q.x * z1z1;
  T s1 = p.y * q.z * z2z2;
  T s2 = q.y * p.z * z1z1;
  if (u1 == u2) {
    if (s1 == s2) return jac_dbl(p);
    return JacT<T>{p.x, p.y, p.z - p.z};
  }
  T h = u2 - u1;
  T i = (h + h).squared();
  T j = h * i;
  T r = (s2 - s1);
  r = r + r;
  T v = u1 * i;
  T x3 = r.squared() - j - (v + v);
  T s1j = s1 * j;
  T y3 = r * (v - x3) - (s1j + s1j);
  T z3 = ((p.z + q.z).squared() - z1z1 - z2z2) * h;
  return JacT<T>{x3, y3, z3};
}

template <class T>
JacT<T> jac_neg(const JacT<T>& p) {
  return JacT<T>{p.x, -p.y, p.z};
}

// Mixed addition (madd-2007-bl): affine (x2, y2) into a Jacobian
// accumulator — the Pippenger bucket-drop workhorse (one fewer field
// squaring and three fewer multiplications than the general add).
template <class T>
JacT<T> jac_add_affine(const JacT<T>& p, const T& x2, const T& y2,
                       const T& one) {
  if (p.inf()) return JacT<T>{x2, y2, one};
  T z1z1 = p.z.squared();
  T u2 = x2 * z1z1;
  T s2 = y2 * p.z * z1z1;
  if (u2 == p.x) {
    if (s2 == p.y) return jac_dbl(p);
    return JacT<T>{p.x, p.y, p.z - p.z};
  }
  T h = u2 - p.x;
  T hh = h.squared();
  T i = (hh + hh);
  i = i + i;  // 4h^2
  T j = h * i;
  T r = (s2 - p.y);
  r = r + r;
  T v = p.x * i;
  T x3 = r.squared() - j - (v + v);
  T yj = p.y * j;
  T y3 = r * (v - x3) - (yj + yj);
  T z3 = (p.z + h).squared() - z1z1 - hh;
  return JacT<T>{x3, y3, z3};
}

// Width-4 wNAF double-and-add for public scalars: same group element as
// the plain ladder at ~1/5 the additions.
template <class T, size_t L>
JacT<T> jac_mul(const JacT<T>& base, const bigint::BigInt<L>& k) {
  JacT<T> acc{base.x, base.y, base.z - base.z};  // infinity (z = 0)
  if (base.inf() || k.is_zero()) return acc;
  // Odd multiples 1B, 3B, 5B, 7B.
  std::array<JacT<T>, 4> tab;
  tab[0] = base;
  JacT<T> twice = jac_dbl(base);
  for (size_t i = 1; i < 4; ++i) tab[i] = jac_add(tab[i - 1], twice);
  std::int8_t digits[bigint::kWnafMaxDigits<L>];
  size_t n = bigint::wnaf_into(k, 4, digits);
  for (size_t i = n; i-- > 0;) {
    acc = jac_dbl(acc);
    int d = digits[i];
    if (d > 0) {
      acc = jac_add(acc, tab[(d - 1) / 2]);
    } else if (d < 0) {
      acc = jac_add(acc, jac_neg(tab[(-d - 1) / 2]));
    }
  }
  return acc;
}

// Width-4 fixed-window ladder with a constant double/add pattern: every
// window performs exactly four doublings and one addition (a dummy
// accumulator absorbs zero windows). Mirrors ec::G1Point::mul_secret —
// constant-pattern, not constant-time (field ops and the window count
// still vary; documented limitation, PERF.md).
template <class T, size_t L>
JacT<T> jac_mul_secret(const JacT<T>& base, const bigint::BigInt<L>& k) {
  JacT<T> zero{base.x, base.y, base.z - base.z};
  if (base.inf() || k.is_zero()) return zero;
  std::array<JacT<T>, 16> tab;
  tab[0] = zero;
  tab[1] = base;
  for (size_t i = 2; i < 16; ++i) tab[i] = jac_add(tab[i - 1], base);
  size_t windows = (k.bit_length() + 3) / 4;
  JacT<T> acc = zero;
  JacT<T> dummy = base;
  for (size_t w = windows; w-- > 0;) {
    for (int s = 0; s < 4; ++s) acc = jac_dbl(acc);
    unsigned d = 0;
    for (int s = 3; s >= 0; --s) {
      d = (d << 1) | (k.bit(4 * w + static_cast<size_t>(s)) ? 1u : 0u);
    }
    if (d != 0) {
      acc = jac_add(acc, tab[d]);
    } else {
      dummy = jac_add(dummy, tab[1]);  // keep the addition cadence
    }
  }
  return acc;
}

G1Point381 jac_to_g1(const JacT<Fp>& j, const FpCtx* fp) {
  if (j.inf()) return G1Point381{Fp::zero(fp), Fp::zero(fp), true};
  Fp zi = j.z.inverse();
  Fp zi2 = zi.squared();
  return G1Point381{j.x * zi2, j.y * zi2 * zi, false};
}

G2Point381 jac_to_g2(const JacT<Fp2>& j, const FpCtx* fp) {
  if (j.inf()) return G2Point381{Fp2::zero(fp), Fp2::zero(fp), true};
  Fp2 zi = j.z.inverse();
  Fp2 zi2 = zi.squared();
  return G2Point381{j.x * zi2, j.y * zi2 * zi, false};
}

}  // namespace

// ---------------------------------------------------------------------------
// Context construction: derive everything from z, validate everything.

std::shared_ptr<const Bls12Ctx> Bls12Ctx::get() {
  static std::mutex mu;
  static std::shared_ptr<const Bls12Ctx> cached;
  std::scoped_lock lock(mu);
  if (!cached) cached = std::shared_ptr<const Bls12Ctx>(new Bls12Ctx());
  return cached;
}

Bls12Ctx::Bls12Ctx() : abs_z_(kAbsZ) {
  hashing::HmacDrbg validation_rng(to_bytes("bls12-381 validation"));

  // r = z⁴ - z² + 1 (even powers: sign of z irrelevant).
  FpInt z = FpInt::from_u64(abs_z_);
  FpInt z2 = bigint::mul_wide(z, z).resized<field::kMaxFieldLimbs>();
  FpInt z4 = bigint::mul_wide(z2, z2).resized<field::kMaxFieldLimbs>();
  FpInt r = bigint::add(bigint::sub(z4, z2), FpInt::from_u64(1));

  // p = ((z-1)²·r)/3 + z, with z negative: (z-1)² = (|z|+1)².
  FpInt z_plus_1 = bigint::add(z, FpInt::from_u64(1));
  FpInt zp1_sq = bigint::mul_wide(z_plus_1, z_plus_1).resized<field::kMaxFieldLimbs>();
  auto prod = bigint::mul_wide(zp1_sq, r);  // 24 limbs
  Wide quo, rem;
  bigint::divmod(prod, Wide::from_u64(3), quo, rem);
  require(rem.is_zero(), "Bls12Ctx: (z-1)²·r not divisible by 3");
  FpInt p = bigint::sub(quo.resized<field::kMaxFieldLimbs>(), z);

  require(p.bit_length() == 381, "Bls12Ctx: p has wrong size");
  require(r.bit_length() == 255, "Bls12Ctx: r has wrong size");
  require(bigint::is_probable_prime(p, validation_rng, 20), "Bls12Ctx: p not prime");
  require(bigint::is_probable_prime(r, validation_rng, 20), "Bls12Ctx: r not prime");

  fp_ = std::make_shared<const FpCtx>(p);
  fr_ = std::make_shared<const FpCtx>(r);
  require(fp_->p_mod_4_is_3, "Bls12Ctx: p != 3 (mod 4)");
  tower_ = std::make_unique<TowerCtx>(fp_.get());

  // G1 cofactor h1 = (z-1)²/3; #E(F_p) = p + |z| = h1·r. The same
  // integer seeds the final-exponentiation chain (c3 below).
  FpInt h1, h1_rem;
  bigint::divmod(zp1_sq, FpInt::from_u64(3), h1, h1_rem);
  require(h1_rem.is_zero(), "Bls12Ctx: (z-1)² not divisible by 3");
  g1_cofactor_ = h1;
  FpInt n1 = bigint::add(p, z);  // p + 1 - t, t = z + 1
  require(bigint::mul_wide(h1, r).resized<field::kMaxFieldLimbs>() == n1,
          "Bls12Ctx: G1 order identity failed");

  // Twist constant b' = 4(1+u), and the doubling-step constants.
  twist_b_ = tower_->xi.scale(Fp::from_u64(fp_.get(), 4));
  twist_b3_ = twist_b_ + twist_b_ + twist_b_;
  half_ = Fp::from_u64(fp_.get(), 2).inverse();

  // Untwist constants 1/w², 1/w³ (w⁶ = ξ so w^{-1} = w⁵/ξ).
  {
    Fp12 w = fp12_zero(*tower_);
    w.c1.c0 = Fp2::one(fp_.get());  // w
    Fp12 w_inv = fp12_inv(*tower_, w);
    w2_inv_ = fp12_mul(*tower_, w_inv, w_inv);
    w3_inv_ = fp12_mul(*tower_, w2_inv_, w_inv);
  }

  // G2 cofactor: find the twist order among the six CM candidates.
  {
    // t = z + 1 (negative): t² = (|z|-1)². Frobenius over F_p2 has trace
    // t2 = t² - 2p (< 0 here) and CM data t2² - 4p² = -3·f2².
    FpInt abs_t = bigint::sub(z, FpInt::from_u64(1));
    Wide t_sq = bigint::mul_wide(abs_t, abs_t).resized<Wide::kLimbs>();
    Wide p_wide = p.resized<Wide::kLimbs>();
    Wide p2 = bigint::mul_wide(p, p).resized<Wide::kLimbs>();
    // |t2| = 2p - t² (t2 = t² - 2p < 0).
    Wide abs_t2 = bigint::sub(bigint::shl(p_wide, 1), t_sq);
    // f2 = sqrt((4p² - t2²)/3), exact by CM discriminant -3.
    Wide f_sq_num = bigint::sub(
        bigint::shl(p2, 2),
        bigint::mul_wide(abs_t2.resized<12>(), abs_t2.resized<12>()).resized<Wide::kLimbs>());
    Wide f_sq, f_rem;
    bigint::divmod(f_sq_num, Wide::from_u64(3), f_sq, f_rem);
    require(f_rem.is_zero(), "Bls12Ctx: CM identity failed");
    Wide f2 = isqrt(f_sq);
    require(bigint::mul_wide(f2.resized<12>(), f2.resized<12>()).resized<Wide::kLimbs>() ==
                f_sq,
            "Bls12Ctx: CM square root not exact");
    Wide three_f = bigint::add(bigint::shl(f2, 1), f2);

    Wide p2_plus_1 = bigint::add(p2, Wide::from_u64(1));
    std::vector<Wide> candidates;
    // Sextic-twist orders: n = p²+1-e for e in {±t2, ±(t2+3f2)/2,
    // ±(t2-3f2)/2}; signs resolved via magnitudes (t2 < 0 and
    // |t2| ≈ 2p dominates 3f2 ≈ 3·2^255).
    auto push = [&](const Wide& magnitude, bool e_negative) {
      candidates.push_back(e_negative ? bigint::add(p2_plus_1, magnitude)
                                      : bigint::sub(p2_plus_1, magnitude));
    };
    push(abs_t2, true);
    push(abs_t2, false);
    Wide m1 = bigint::shr(bigint::sub(abs_t2, three_f), 1);  // |(t2+3f2)/2|
    Wide m2 = bigint::shr(bigint::add(abs_t2, three_f), 1);  // |(t2-3f2)/2|
    push(m1, true);
    push(m1, false);
    push(m2, true);
    push(m2, false);

    // Sample a twist point and find the candidate order that (a) is
    // divisible by r and (b) annihilates the point.
    G2Point381 sample = g2_infinity();
    for (std::uint32_t ctr = 0; sample.inf; ++ctr) {
      Bytes h = hashing::oracle_bytes("BLS12-G2-sample", be32(ctr), 4 * fp_->byte_len);
      Fp2 x(Fp::from_bytes_wide(fp_.get(), ByteSpan(h.data(), 2 * fp_->byte_len)),
            Fp::from_bytes_wide(fp_.get(),
                                ByteSpan(h.data() + 2 * fp_->byte_len, 2 * fp_->byte_len)));
      Fp2 rhs = x.squared() * x + twist_b_;
      auto y = rhs.sqrt();
      if (!y) continue;
      sample = G2Point381{x, *y, false};
    }
    bool found = false;
    for (const Wide& n : candidates) {
      Wide q2, r2;
      bigint::divmod(n, r.resized<Wide::kLimbs>(), q2, r2);
      if (!r2.is_zero()) continue;
      // n must annihilate the sampled point.
      JacT<Fp2> jac{sample.x, sample.y, Fp2::one(fp_.get())};
      if (!jac_mul(jac, n).inf()) continue;
      require(q2.bit_length() <= 64 * field::kMaxFieldLimbs,
              "Bls12Ctx: G2 cofactor too large");
      g2_cofactor_ = q2.resized<field::kMaxFieldLimbs>();
      found = true;
      break;
    }
    require(found, "Bls12Ctx: no twist order candidate matched");
  }

  // Hard exponent (p⁴ - p² + 1)/r for the final exponentiation.
  {
    Wide p2 = bigint::mul_wide(p, p).resized<Wide::kLimbs>();
    Wide p4 = bigint::mul_wide(p2.resized<12>(), p2.resized<12>()).resized<Wide::kLimbs>();
    Wide hard = bigint::add(bigint::sub(p4, p2), Wide::from_u64(1));
    Wide quo2, rem2;
    bigint::divmod(hard, r.resized<Wide::kLimbs>(), quo2, rem2);
    require(rem2.is_zero(), "Bls12Ctx: r does not divide p⁴ - p² + 1");
    hard_exponent_ = quo2;
  }

  // Generators.
  g1_gen_ = hash_to_g1(to_bytes("BLS12-381 G1 generator / TRE-v1"));
  {
    for (std::uint32_t ctr = 0;; ++ctr) {
      Bytes h = hashing::oracle_bytes("BLS12-G2-gen", be32(ctr), 4 * fp_->byte_len);
      Fp2 x(Fp::from_bytes_wide(fp_.get(), ByteSpan(h.data(), 2 * fp_->byte_len)),
            Fp::from_bytes_wide(fp_.get(),
                                ByteSpan(h.data() + 2 * fp_->byte_len, 2 * fp_->byte_len)));
      Fp2 rhs = x.squared() * x + twist_b_;
      auto y = rhs.sqrt();
      if (!y) continue;
      G2Point381 cleared = g2_mul(G2Point381{x, *y, false}, g2_cofactor_);
      if (cleared.inf) continue;
      g2_gen_ = cleared;
      break;
    }
    require(g2_in_subgroup(g2_gen_), "Bls12Ctx: G2 generator escaped the subgroup");
    // Frobenius eigenvalue check: the untwisted generator satisfies
    // π(Q) = [p]Q — the defining property of G2 the ate pairing needs.
    PointFp12 qu = untwist(g2_gen_);
    PointFp12 frob_q = fp12_point_frobenius(qu);
    // [p]Q computed on the twist side (cheap): p ≡ p mod r on order-r points.
    FpInt p_mod_r = bigint::mod(p, r);
    G2Point381 pq = g2_mul(g2_gen_, p_mod_r);
    PointFp12 pq_untwisted = untwist(pq);
    require(!frob_q.inf && !pq_untwisted.inf &&
                fp12_eq(frob_q.x, pq_untwisted.x) && fp12_eq(frob_q.y, pq_untwisted.y),
            "Bls12Ctx: G2 generator fails the Frobenius eigenvalue check");
  }
}

// ---------------------------------------------------------------------------
// G1.

G1Point381 Bls12Ctx::g1_infinity() const {
  return G1Point381{Fp::zero(fp_.get()), Fp::zero(fp_.get()), true};
}

bool Bls12Ctx::g1_on_curve(const G1Point381& a) const {
  if (a.inf) return true;
  return a.y.squared() == a.x.squared() * a.x + Fp::from_u64(fp_.get(), 4);
}

bool Bls12Ctx::g1_eq(const G1Point381& a, const G1Point381& b) const {
  if (a.inf || b.inf) return a.inf == b.inf;
  return a.x == b.x && a.y == b.y;
}

G1Point381 Bls12Ctx::g1_neg(const G1Point381& a) const {
  if (a.inf) return a;
  return G1Point381{a.x, -a.y, false};
}

G1Point381 Bls12Ctx::g1_add(const G1Point381& a, const G1Point381& b) const {
  if (a.inf) return b;
  if (b.inf) return a;
  JacT<Fp> ja{a.x, a.y, Fp::one(fp_.get())};
  JacT<Fp> jb{b.x, b.y, Fp::one(fp_.get())};
  return jac_to_g1(jac_add(ja, jb), fp_.get());
}

G1Point381 Bls12Ctx::g1_mul(const G1Point381& a, const Scalar& k) const {
  if (a.inf || k.is_zero()) return g1_infinity();
  JacT<Fp> ja{a.x, a.y, Fp::one(fp_.get())};
  return jac_to_g1(jac_mul(ja, k), fp_.get());
}

G1Point381 Bls12Ctx::g1_mul_secret(const G1Point381& a, const Scalar& k) const {
  if (a.inf || k.is_zero()) return g1_infinity();
  JacT<Fp> ja{a.x, a.y, Fp::one(fp_.get())};
  return jac_to_g1(jac_mul_secret(ja, k), fp_.get());
}

namespace {

// Adapter feeding the shared Pippenger engine (ec/multiexp.h) with the
// private JacT<Fp> kernel: mixed adds for bucket drops, full adds for
// the running-sum fold.
struct G1MultiexpOps {
  using Acc = JacT<Fp>;

  std::span<const G1Point381> points;
  const FpCtx* fp;

  Acc zero() const { return {Fp::one(fp), Fp::one(fp), Fp::zero(fp)}; }
  void add_point(Acc& acc, size_t i) const {
    const G1Point381& p = points[i];
    if (p.inf) return;
    acc = jac_add_affine(acc, p.x, p.y, Fp::one(fp));
  }
  void add(Acc& acc, const Acc& other) const { acc = jac_add(acc, other); }
  void dbl(Acc& acc) const { acc = jac_dbl(acc); }
  void sub_point(Acc& acc, size_t i) const {
    const G1Point381& p = points[i];
    if (p.inf) return;
    acc = jac_add_affine(acc, p.x, -p.y, Fp::one(fp));
  }
};

// The same adapter over the twist: JacT is generic in its field, so the
// G2 multi-exp reuses every Jacobian kernel verbatim.
struct G2MultiexpOps {
  using Acc = JacT<Fp2>;

  std::span<const G2Point381> points;
  const FpCtx* fp;

  Acc zero() const { return {Fp2::one(fp), Fp2::one(fp), Fp2::zero(fp)}; }
  void add_point(Acc& acc, size_t i) const {
    const G2Point381& p = points[i];
    if (p.inf) return;
    acc = jac_add_affine(acc, p.x, p.y, Fp2::one(fp));
  }
  void add(Acc& acc, const Acc& other) const { acc = jac_add(acc, other); }
  void dbl(Acc& acc) const { acc = jac_dbl(acc); }
  void sub_point(Acc& acc, size_t i) const {
    const G2Point381& p = points[i];
    if (p.inf) return;
    acc = jac_add_affine(acc, p.x, -p.y, Fp2::one(fp));
  }
};

}  // namespace

G1Point381 Bls12Ctx::g1_multiexp(std::span<const G1Point381> points,
                                 std::span<const Scalar> scalars,
                                 unsigned threads) const {
  require(points.size() == scalars.size(), "g1_multiexp: size mismatch");
  G1MultiexpOps ops{points, fp_.get()};
  JacT<Fp> acc = ec::multiexp_auto(ops, scalars, threads);
  return jac_to_g1(acc, fp_.get());
}

G1Point381 Bls12Ctx::g1_multiexp_unsigned(std::span<const G1Point381> points,
                                          std::span<const Scalar> scalars,
                                          unsigned threads) const {
  require(points.size() == scalars.size(), "g1_multiexp: size mismatch");
  G1MultiexpOps ops{points, fp_.get()};
  JacT<Fp> acc = ec::multiexp_pippenger(ops, scalars, threads);
  return jac_to_g1(acc, fp_.get());
}

G2Point381 Bls12Ctx::g2_multiexp(std::span<const G2Point381> points,
                                 std::span<const Scalar> scalars,
                                 unsigned threads) const {
  require(points.size() == scalars.size(), "g2_multiexp: size mismatch");
  G2MultiexpOps ops{points, fp_.get()};
  JacT<Fp2> acc = ec::multiexp_auto(ops, scalars, threads);
  return jac_to_g2(acc, fp_.get());
}

bool Bls12Ctx::g1_in_subgroup(const G1Point381& a) const {
  if (!g1_on_curve(a)) return false;
  return g1_mul(a, r()).inf;
}

G1Point381 Bls12Ctx::hash_to_g1(ByteSpan msg) const {
  for (std::uint32_t ctr = 0;; ++ctr) {
    Bytes input = concat({msg, be32(ctr)});
    Bytes h = hashing::oracle_bytes("BLS12-H1", input, 2 * fp_->byte_len);
    Fp x = Fp::from_bytes_wide(fp_.get(), h);
    Fp rhs = x.squared() * x + Fp::from_u64(fp_.get(), 4);
    auto y = rhs.sqrt();
    if (!y) continue;
    G1Point381 cleared = g1_mul(G1Point381{x, *y, false}, g1_cofactor_);
    if (!cleared.inf) return cleared;
  }
}

Bytes Bls12Ctx::g1_to_bytes(const G1Point381& a) const {
  Bytes out(1 + fp_->byte_len, 0);
  if (a.inf) return out;
  out[0] = static_cast<std::uint8_t>(0x02 | (a.y.to_int().w[0] & 1));
  Bytes xb = a.x.to_bytes();
  std::copy(xb.begin(), xb.end(), out.begin() + 1);
  return out;
}

G1Point381 Bls12Ctx::g1_from_bytes(ByteSpan bytes) const {
  require(bytes.size() == 1 + fp_->byte_len, "g1_from_bytes: wrong length");
  if (bytes[0] == 0x00) return g1_infinity();
  require(bytes[0] == 0x02 || bytes[0] == 0x03, "g1_from_bytes: bad tag");
  Fp x = Fp::from_bytes(fp_.get(), bytes.subspan(1));
  auto y = (x.squared() * x + Fp::from_u64(fp_.get(), 4)).sqrt();
  require(y.has_value(), "g1_from_bytes: not on curve");
  if ((y->to_int().w[0] & 1) != (bytes[0] & 1)) *y = -*y;
  G1Point381 p{x, *y, false};
  require(g1_in_subgroup(p), "g1_from_bytes: outside the order-r subgroup");
  return p;
}

// ---------------------------------------------------------------------------
// G2 (twist coordinates).

G2Point381 Bls12Ctx::g2_infinity() const {
  return G2Point381{Fp2::zero(fp_.get()), Fp2::zero(fp_.get()), true};
}

bool Bls12Ctx::g2_on_curve(const G2Point381& a) const {
  if (a.inf) return true;
  return a.y.squared() == a.x.squared() * a.x + twist_b_;
}

bool Bls12Ctx::g2_eq(const G2Point381& a, const G2Point381& b) const {
  if (a.inf || b.inf) return a.inf == b.inf;
  return a.x == b.x && a.y == b.y;
}

G2Point381 Bls12Ctx::g2_neg(const G2Point381& a) const {
  if (a.inf) return a;
  return G2Point381{a.x, -a.y, false};
}

G2Point381 Bls12Ctx::g2_add(const G2Point381& a, const G2Point381& b) const {
  if (a.inf) return b;
  if (b.inf) return a;
  JacT<Fp2> ja{a.x, a.y, Fp2::one(fp_.get())};
  JacT<Fp2> jb{b.x, b.y, Fp2::one(fp_.get())};
  return jac_to_g2(jac_add(ja, jb), fp_.get());
}

G2Point381 Bls12Ctx::g2_mul(const G2Point381& a, const Scalar& k) const {
  if (a.inf || k.is_zero()) return g2_infinity();
  JacT<Fp2> ja{a.x, a.y, Fp2::one(fp_.get())};
  return jac_to_g2(jac_mul(ja, k), fp_.get());
}

G2Point381 Bls12Ctx::g2_mul_secret(const G2Point381& a, const Scalar& k) const {
  if (a.inf || k.is_zero()) return g2_infinity();
  JacT<Fp2> ja{a.x, a.y, Fp2::one(fp_.get())};
  return jac_to_g2(jac_mul_secret(ja, k), fp_.get());
}

bool Bls12Ctx::g2_in_subgroup(const G2Point381& a) const {
  if (!g2_on_curve(a)) return false;
  return g2_mul(a, r()).inf;
}

Bytes Bls12Ctx::g2_to_bytes(const G2Point381& a) const {
  Bytes out(1 + 2 * fp_->byte_len, 0);
  if (a.inf) return out;
  std::uint64_t parity =
      a.y.re().is_zero() ? (a.y.im().to_int().w[0] & 1) : (a.y.re().to_int().w[0] & 1);
  out[0] = static_cast<std::uint8_t>(0x02 | parity);
  Bytes xb = a.x.to_bytes();
  std::copy(xb.begin(), xb.end(), out.begin() + 1);
  return out;
}

G2Point381 Bls12Ctx::g2_from_bytes(ByteSpan bytes) const {
  require(bytes.size() == 1 + 2 * fp_->byte_len, "g2_from_bytes: wrong length");
  if (bytes[0] == 0x00) return g2_infinity();
  require(bytes[0] == 0x02 || bytes[0] == 0x03, "g2_from_bytes: bad tag");
  Fp2 x = Fp2::from_bytes(fp_.get(), bytes.subspan(1));
  auto y = (x.squared() * x + twist_b_).sqrt();
  require(y.has_value(), "g2_from_bytes: not on curve");
  std::uint64_t parity =
      y->re().is_zero() ? (y->im().to_int().w[0] & 1) : (y->re().to_int().w[0] & 1);
  if (parity != (bytes[0] & 1u)) *y = -*y;
  G2Point381 p{x, *y, false};
  require(g2_in_subgroup(p), "g2_from_bytes: outside the order-r subgroup");
  return p;
}

// ---------------------------------------------------------------------------
// G2 fixed-base comb.

G2Comb::G2Comb(std::shared_ptr<const Bls12Ctx> ctx, const G2Point381& base)
    : ctx_(std::move(ctx)), base_(base) {
  const FpCtx* fp = ctx_->fp();
  if (base_.inf) {
    degenerate_ = true;
    return;
  }
  // 256 covers every scalar below r (255 bits) with an even split.
  constexpr size_t kBits = 256;
  cols_ = kBits / kTeeth;  // 32
  // Tooth bases B_t = 2^(t·cols)·base, then all 2^kTeeth − 1 subset sums.
  std::array<JacT<Fp2>, kTeeth> tooth;
  JacT<Fp2> cur{base_.x, base_.y, Fp2::one(fp)};
  for (size_t t = 0; t < kTeeth; ++t) {
    tooth[t] = cur;
    if (t + 1 < kTeeth) {
      for (size_t d = 0; d < cols_; ++d) cur = jac_dbl(cur);
    }
  }
  const size_t n = (size_t{1} << kTeeth) - 1;
  std::vector<JacT<Fp2>> jac(n + 1);
  for (size_t m = 1; m <= n; ++m) {
    size_t low = m & (~m + 1);  // lowest set bit
    size_t t = 0;
    while ((low >> t) != 1) ++t;
    size_t rest = m & (m - 1);
    jac[m] = rest != 0 ? jac_add(jac[rest], tooth[t]) : tooth[t];
  }
  // Batch-normalize the table to affine with one field inversion
  // (Montgomery's trick over the non-infinity z coordinates).
  std::vector<Fp2> zs;
  zs.reserve(n);
  for (size_t m = 1; m <= n; ++m) {
    if (!jac[m].inf()) zs.push_back(jac[m].z);
  }
  std::vector<Fp2> prefix(zs.size(), Fp2::one(fp));
  Fp2 acc = Fp2::one(fp);
  for (size_t i = 0; i < zs.size(); ++i) {
    prefix[i] = acc;
    acc = acc * zs[i];
  }
  Fp2 inv = acc.inverse();
  std::vector<Fp2> zinv(zs.size(), Fp2::one(fp));
  for (size_t i = zs.size(); i-- > 0;) {
    zinv[i] = inv * prefix[i];
    inv = inv * zs[i];
  }
  table_.resize(n, ctx_->g2_infinity());
  size_t zi = 0;
  for (size_t m = 1; m <= n; ++m) {
    if (jac[m].inf()) continue;  // unreachable for an order-r base; kept safe
    Fp2 i1 = zinv[zi++];
    Fp2 i2 = i1.squared();
    table_[m - 1] = G2Point381{jac[m].x * i2, jac[m].y * i2 * i1, false};
  }
}

G2Point381 G2Comb::mul(const Scalar& k) const {
  const FpCtx* fp = ctx_->fp();
  if (degenerate_ || k.is_zero()) return ctx_->g2_infinity();
  if (k.bit_length() > cols_ * kTeeth) return ctx_->g2_mul(base_, k);
  JacT<Fp2> acc{Fp2::zero(fp), Fp2::zero(fp), Fp2::zero(fp)};
  for (size_t col = cols_; col-- > 0;) {
    acc = jac_dbl(acc);
    unsigned m = 0;
    for (size_t t = 0; t < kTeeth; ++t) {
      if (k.bit(t * cols_ + col)) m |= 1u << t;
    }
    if (m != 0) {
      const G2Point381& e = table_[m - 1];
      acc = jac_add(acc, JacT<Fp2>{e.x, e.y, Fp2::one(fp)});
    }
  }
  return jac_to_g2(acc, fp);
}

G2Point381 G2Comb::mul_secret(const Scalar& k) const {
  const FpCtx* fp = ctx_->fp();
  if (degenerate_ || k.is_zero()) return ctx_->g2_infinity();
  if (k.bit_length() > cols_ * kTeeth) return ctx_->g2_mul_secret(base_, k);
  JacT<Fp2> acc{Fp2::zero(fp), Fp2::zero(fp), Fp2::zero(fp)};
  JacT<Fp2> dummy{base_.x, base_.y, Fp2::one(fp)};
  for (size_t col = cols_; col-- > 0;) {
    acc = jac_dbl(acc);
    unsigned m = 0;
    for (size_t t = 0; t < kTeeth; ++t) {
      if (k.bit(t * cols_ + col)) m |= 1u << t;
    }
    const G2Point381& e = table_[m != 0 ? m - 1 : 0];
    JacT<Fp2> ej{e.x, e.y, Fp2::one(fp)};
    if (m != 0) {
      acc = jac_add(acc, ej);
    } else {
      dummy = jac_add(dummy, ej);  // keep the addition cadence
    }
  }
  return jac_to_g2(acc, fp);
}

// ---------------------------------------------------------------------------
// Pairing — fast engine.
//
// Optimal ate: f_{z,Q}(P) over 63 iterations of |z| (top bit implicit),
// point arithmetic in homogeneous projective coordinates ON THE TWIST
// (all F_p2, no inversions), each line an M-twist-sparse F_p12 element
// c0 + c1·v + c4·vw folded in via fp12_mul_by_014. The per-line F_p2*
// and F_p4* scalings (and the implicit w³ twist factor) die in the final
// exponentiation, so values match the reference affine loop exactly
// after it.

std::shared_ptr<const G2Prepared> Bls12Ctx::prepare_g2(const G2Point381& q) const {
  auto out = std::make_shared<G2Prepared>();
  if (q.inf) {
    out->inf = true;
    return out;
  }
  out->coeffs.reserve(70);
  // R = (X : Y : Z), homogeneous; starts at (x_Q : y_Q : 1).
  Fp2 rx = q.x, ry = q.y, rz = Fp2::one(fp_.get());
  auto dbl_step = [&]() {
    // Costello–Lange–Naehrig doubling with line; b' folded via 3b'.
    Fp2 a = (rx * ry).scale(half_);
    Fp2 b = ry.squared();
    Fp2 c = rz.squared();
    Fp2 e = twist_b3_ * c;  // 3b'·Z²
    Fp2 f = e + e + e;
    Fp2 g = (b + f).scale(half_);
    Fp2 h = (ry + rz).squared() - (b + c);
    Fp2 i = e - b;
    Fp2 j = rx.squared();
    Fp2 e2 = e.squared();
    rx = a * (b - f);
    ry = g.squared() - (e2 + e2 + e2);
    rz = b * h;
    out->coeffs.push_back(G2Prepared::Coeff{i, j + j + j, -h});
  };
  auto add_step = [&]() {
    Fp2 theta = ry - q.y * rz;
    Fp2 lambda = rx - q.x * rz;
    Fp2 c = theta.squared();
    Fp2 d = lambda.squared();
    Fp2 e = lambda * d;
    Fp2 f = rz * c;
    Fp2 g = rx * d;
    Fp2 h = e + f - (g + g);
    rx = lambda * h;
    ry = theta * (g - h) - e * ry;
    rz = rz * e;
    Fp2 j = theta * q.x - lambda * q.y;
    out->coeffs.push_back(G2Prepared::Coeff{j, -theta, lambda});
  };
  FpInt loop = FpInt::from_u64(abs_z_);
  for (size_t i = loop.bit_length() - 1; i-- > 0;) {
    dbl_step();
    if (loop.bit(i)) add_step();
  }
  return out;
}

std::shared_ptr<const G2Prepared> Bls12Ctx::prepare_g2_cached(
    const G2Point381& q) const {
  Bytes kb = g2_to_bytes(q);
  std::string key(reinterpret_cast<const char*>(kb.data()), kb.size());
  if (auto hit = g2_lines_.find(key)) {
    PairProbes::get().lines_hit.add();
    return *hit;
  }
  PairProbes::get().lines_miss.add();
  std::shared_ptr<const G2Prepared> prep = prepare_g2(q);
  g2_lines_.insert(key, prep);
  return prep;
}

Fp12 Bls12Ctx::miller_loop_multi(
    std::span<const std::pair<G1Point381, const G2Prepared*>> pairs) const {
  const TowerCtx& t = *tower_;
  Fp12 f = fp12_one(t);
  size_t idx = 0;
  auto fold = [&](const std::pair<G1Point381, const G2Prepared*>& pq) {
    const G2Prepared::Coeff& c = pq.second->coeffs[idx];
    f = fp12_mul_by_014(t, f, c.a, c.b.scale(pq.first.x), c.c.scale(pq.first.y));
  };
  FpInt loop = FpInt::from_u64(abs_z_);
  for (size_t i = loop.bit_length() - 1; i-- > 0;) {
    f = fp12_sqr(t, f);
    for (const auto& pq : pairs) fold(pq);
    ++idx;
    if (loop.bit(i)) {
      for (const auto& pq : pairs) fold(pq);
      ++idx;
    }
  }
  // z < 0: conjugation inverts modulo the final-exponentiation kernel.
  return fp12_conjugate(f);
}

Fp12 Bls12Ctx::miller_loop(const G1Point381& p, const G2Prepared& q) const {
  if (p.inf || q.inf) return fp12_one(*tower_);
  std::pair<G1Point381, const G2Prepared*> one_pair[1] = {{p, &q}};
  return miller_loop_multi(one_pair);
}

Fp12 Bls12Ctx::hard_part(const Fp12& m) const {
  const TowerCtx& t = *tower_;
  // λ = (p⁴−p²+1)/r decomposes EXACTLY (validated against hard_exponent_
  // by the r | p⁴−p²+1 construction check plus the vector tests) as
  //   λ = c0 + c1·p + c2·p² + c3·p³
  //   c3 = (z−1)²/3 (= the G1 cofactor), c2 = z·c3,
  //   c1 = z·c2 − c3, c0 = z·c1 + 1.
  // All arithmetic stays in the cyclotomic subgroup: squarings are
  // Granger–Scott, inversions are conjugations, z < 0 handled by a final
  // conjugate in exp_z.
  auto exp_z = [&](const Fp12& g) {
    return fp12_conjugate(fp12_cyclotomic_pow(t, g, FpInt::from_u64(abs_z_)));
  };
  Fp12 y3 = fp12_cyclotomic_pow(t, m, g1_cofactor_);          // m^c3
  Fp12 y2 = exp_z(y3);                                        // m^c2
  Fp12 y1 = fp12_mul(t, exp_z(y2), fp12_conjugate(y3));       // m^c1
  Fp12 y0 = fp12_mul(t, exp_z(y1), m);                        // m^c0
  Fp12 acc = fp12_mul(t, y0, fp12_frobenius(t, y1));
  acc = fp12_mul(t, acc, fp12_frobenius(t, fp12_frobenius(t, y2)));
  return fp12_mul(
      t, acc, fp12_frobenius(t, fp12_frobenius(t, fp12_frobenius(t, y3))));
}

Fp12 Bls12Ctx::final_exponentiation(const Fp12& f) const {
  PairProbes::get().finalexp.add();
  const TowerCtx& t = *tower_;
  // Easy part f^((p⁶−1)(p²+1)): one inversion, conjugation is f^(p⁶).
  Fp12 f1 = fp12_mul(t, fp12_conjugate(f), fp12_inv(t, f));
  Fp12 f2 = fp12_mul(t, fp12_frobenius(t, fp12_frobenius(t, f1)), f1);
  return hard_part(f2);
}

Gt381 Bls12Ctx::pair(const G1Point381& p, const G2Point381& q) const {
  if (p.inf || q.inf) return fp12_one(*tower_);
  return final_exponentiation(miller_loop(p, *prepare_g2(q)));
}

Gt381 Bls12Ctx::pair_cached(const G1Point381& p, const G2Point381& q) const {
  if (p.inf || q.inf) return fp12_one(*tower_);
  return final_exponentiation(miller_loop(p, *prepare_g2_cached(q)));
}

bool Bls12Ctx::pairings_equal(const G1Point381& a1, const G2Point381& a2,
                              const G1Point381& b1, const G2Point381& b2) const {
  if (a1.inf || a2.inf || b1.inf || b2.inf) {
    return fp12_eq(pair(a1, a2), pair(b1, b2));
  }
  // ê(a1,a2)·ê(−b1,b2): one shared-squaring loop, one final
  // exponentiation. Verification only sees long-lived G_2 keys, so both
  // line sets come from the cache.
  auto pa = prepare_g2_cached(a2);
  auto pb = prepare_g2_cached(b2);
  std::pair<G1Point381, const G2Prepared*> pairs[2] = {{a1, pa.get()},
                                                       {g1_neg(b1), pb.get()}};
  return fp12_is_one(*tower_, final_exponentiation(miller_loop_multi(pairs)));
}

// ---------------------------------------------------------------------------
// Pairing — reference engine (the seed implementation, kept as oracle).

Bls12Ctx::PointFp12 Bls12Ctx::untwist(const G2Point381& q) const {
  if (q.inf) return PointFp12{fp12_zero(*tower_), fp12_zero(*tower_), true};
  Fp12 x = fp12_mul(*tower_, fp12_from_fp2(*tower_, q.x), w2_inv_);
  Fp12 y = fp12_mul(*tower_, fp12_from_fp2(*tower_, q.y), w3_inv_);
  return PointFp12{x, y, false};
}

Bls12Ctx::PointFp12 Bls12Ctx::fp12_point_frobenius(const PointFp12& a) const {
  if (a.inf) return a;
  return PointFp12{fp12_frobenius(*tower_, a.x), fp12_frobenius(*tower_, a.y), false};
}

Fp12 Bls12Ctx::miller_ate_reference(
    std::span<const std::pair<G1Point381, G2Point381>> pairs) const {
  const TowerCtx& t = *tower_;
  // Affine loop over the untwisted points in F_p12 — the seed engine,
  // with one change: the N loop instances run in lockstep, so the N
  // independent slope denominators of each step are inverted with ONE
  // fp12_inv via Montgomery's trick (for N = 1 this degenerates to
  // exactly the original per-step inversion).
  struct Lane {
    Fp12 xp, yp, qx, qy, tx, ty;
  };
  std::vector<Lane> lanes;
  lanes.reserve(pairs.size());
  for (const auto& [p, q] : pairs) {
    PointFp12 quntw = untwist(q);
    lanes.push_back(Lane{fp12_from_fp(t, p.x), fp12_from_fp(t, p.y), quntw.x,
                         quntw.y, quntw.x, quntw.y});
  }
  // vals <- 1/vals with a single fp12_inv.
  auto batch_inv = [&](std::vector<Fp12>& vals) {
    std::vector<Fp12> prefix(vals.size(), fp12_one(t));
    Fp12 acc = fp12_one(t);
    for (size_t i = 0; i < vals.size(); ++i) {
      prefix[i] = acc;
      acc = fp12_mul(t, acc, vals[i]);
    }
    Fp12 inv = fp12_inv(t, acc);
    for (size_t i = vals.size(); i-- > 0;) {
      Fp12 vi = fp12_mul(t, inv, prefix[i]);
      inv = fp12_mul(t, inv, vals[i]);
      vals[i] = vi;
    }
  };

  Fp12 f_num = fp12_one(t);
  Fp12 f_den = fp12_one(t);
  std::vector<Fp12> denoms(lanes.size(), fp12_one(t));

  FpInt loop = FpInt::from_u64(abs_z_);
  for (size_t i = loop.bit_length() - 1; i-- > 0;) {
    f_num = fp12_sqr(t, f_num);
    f_den = fp12_sqr(t, f_den);

    // Tangent at T, evaluated at P; then T = 2T.
    for (size_t k = 0; k < lanes.size(); ++k) {
      denoms[k] = fp12_add(lanes[k].ty, lanes[k].ty);
    }
    batch_inv(denoms);
    for (size_t k = 0; k < lanes.size(); ++k) {
      Lane& ln = lanes[k];
      Fp12 x2 = fp12_sqr(t, ln.tx);
      Fp12 three_x2 = fp12_add(fp12_add(x2, x2), x2);
      Fp12 lambda = fp12_mul(t, three_x2, denoms[k]);
      Fp12 line =
          fp12_sub(fp12_sub(ln.yp, ln.ty), fp12_mul(t, lambda, fp12_sub(ln.xp, ln.tx)));
      f_num = fp12_mul(t, f_num, line);
      Fp12 x_new = fp12_sub(fp12_sub(fp12_sqr(t, lambda), ln.tx), ln.tx);
      Fp12 y_new = fp12_sub(fp12_mul(t, lambda, fp12_sub(ln.tx, x_new)), ln.ty);
      ln.tx = x_new;
      ln.ty = y_new;
      f_den = fp12_mul(t, f_den, fp12_sub(ln.xp, ln.tx));
    }

    if (loop.bit(i)) {
      // Chord through T and Q, evaluated at P; then T = T + Q.
      for (size_t k = 0; k < lanes.size(); ++k) {
        denoms[k] = fp12_sub(lanes[k].qx, lanes[k].tx);
      }
      batch_inv(denoms);
      for (size_t k = 0; k < lanes.size(); ++k) {
        Lane& ln = lanes[k];
        Fp12 lambda2 = fp12_mul(t, fp12_sub(ln.qy, ln.ty), denoms[k]);
        Fp12 line2 = fp12_sub(fp12_sub(ln.yp, ln.ty),
                              fp12_mul(t, lambda2, fp12_sub(ln.xp, ln.tx)));
        f_num = fp12_mul(t, f_num, line2);
        Fp12 x3 = fp12_sub(fp12_sub(fp12_sqr(t, lambda2), ln.tx), ln.qx);
        Fp12 y3 = fp12_sub(fp12_mul(t, lambda2, fp12_sub(ln.tx, x3)), ln.ty);
        ln.tx = x3;
        ln.ty = y3;
        f_den = fp12_mul(t, f_den, fp12_sub(ln.xp, ln.tx));
      }
    }
  }

  // z < 0: f_{z} = 1 / f_{|z|} (the vertical correction dies in the
  // final exponentiation).
  return fp12_mul(t, f_den, fp12_inv(t, f_num));
}

Gt381 Bls12Ctx::pair_reference(const G1Point381& p, const G2Point381& q) const {
  const TowerCtx& t = *tower_;
  if (p.inf || q.inf) return fp12_one(t);
  std::pair<G1Point381, G2Point381> one_pair[1] = {{p, q}};
  Fp12 m = miller_ate_reference(one_pair);
  // Reference final exponentiation: structured easy part + generic power
  // by the validated hard exponent — fully independent of the
  // cyclotomic chain, so fast-vs-reference tests cross-check both
  // halves of the fast engine.
  Fp12 frob6 = m;
  for (int i = 0; i < 6; ++i) frob6 = fp12_frobenius(t, frob6);
  Fp12 f1 = fp12_mul(t, frob6, fp12_inv(t, m));
  Fp12 f2 = fp12_mul(t, fp12_frobenius(t, fp12_frobenius(t, f1)), f1);
  return fp12_pow(t, f2, hard_exponent_);
}

bool Bls12Ctx::pairings_equal_reference(const G1Point381& a1, const G2Point381& a2,
                                        const G1Point381& b1,
                                        const G2Point381& b2) const {
  if (a1.inf || a2.inf || b1.inf || b2.inf) {
    return fp12_eq(pair_reference(a1, a2), pair_reference(b1, b2));
  }
  std::pair<G1Point381, G2Point381> two[2] = {{a1, a2}, {b1, g2_neg(b2)}};
  Fp12 m = miller_ate_reference(two);
  const TowerCtx& t = *tower_;
  Fp12 frob6 = m;
  for (int i = 0; i < 6; ++i) frob6 = fp12_frobenius(t, frob6);
  Fp12 f1 = fp12_mul(t, frob6, fp12_inv(t, m));
  Fp12 f2 = fp12_mul(t, fp12_frobenius(t, fp12_frobenius(t, f1)), f1);
  return fp12_is_one(t, fp12_pow(t, f2, hard_exponent_));
}

// ---------------------------------------------------------------------------
// Gt exponentiation.

Gt381 Bls12Ctx::gt_pow(const Gt381& a, const Scalar& e) const {
  return fp12_pow(*tower_, a, e);
}

Gt381 Bls12Ctx::gt_pow_unitary(const Gt381& a, const Scalar& e) const {
  const TowerCtx& t = *tower_;
  if (e.is_zero()) return fp12_one(t);
  // Width-5 wNAF over cyclotomic squarings; negative digits cost only a
  // conjugation (the input is unit-norm, e.g. any pairing output).
  std::int8_t digits[bigint::kWnafMaxDigits<field::kMaxFieldLimbs>];
  size_t n = bigint::wnaf_into(e, 5, digits);
  std::array<Fp12, 8> tab;  // a^1, a^3, ..., a^15
  tab[0] = a;
  Fp12 a2 = fp12_cyclotomic_sqr(t, a);
  for (size_t i = 1; i < 8; ++i) tab[i] = fp12_mul(t, tab[i - 1], a2);
  Fp12 acc = fp12_one(t);
  for (size_t i = n; i-- > 0;) {
    acc = fp12_cyclotomic_sqr(t, acc);
    int d = digits[i];
    if (d > 0) {
      acc = fp12_mul(t, acc, tab[static_cast<size_t>(d - 1) / 2]);
    } else if (d < 0) {
      acc = fp12_mul(t, acc, fp12_conjugate(tab[static_cast<size_t>(-d - 1) / 2]));
    }
  }
  return acc;
}

Scalar Bls12Ctx::random_scalar(tre::hashing::RandomSource& rng) const {
  return bigint::random_nonzero_below(rng, r());
}

}  // namespace tre::bls12
