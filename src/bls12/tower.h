// The F_p12 extension tower for BLS12-381.
//
//   F_p2  = F_p[u]/(u² + 1)            (reused from field/fp2.h)
//   F_p6  = F_p2[v]/(v³ − ξ), ξ = 1+u
//   F_p12 = F_p6[w]/(w² − v)           (so w⁶ = ξ)
//
// Elements are value types; operations take the shared TowerCtx, which
// owns ξ and the runtime-computed Frobenius constants γ_k = ξ^(k(p−1)/6)
// (no hardcoded tables — everything derives from the modulus).
#pragma once

#include <array>

#include "field/fp2.h"

namespace tre::bls12 {

using field::Fp;
using field::Fp2;
using field::FpCtx;
using field::FpInt;

struct Fp6 {
  Fp2 c0, c1, c2;  // c0 + c1·v + c2·v²
};

struct Fp12 {
  Fp6 c0, c1;  // c0 + c1·w
};

struct TowerCtx {
  const FpCtx* fp;
  Fp2 xi;                        // 1 + u
  std::array<Fp2, 6> frob_gamma; // γ_k = ξ^(k(p−1)/6), k = 0..5

  explicit TowerCtx(const FpCtx* fp_ctx);
};

// --- F_p6 ---------------------------------------------------------------------

Fp6 fp6_zero(const TowerCtx& t);
Fp6 fp6_one(const TowerCtx& t);
bool fp6_is_zero(const Fp6& a);
bool fp6_eq(const Fp6& a, const Fp6& b);
Fp6 fp6_add(const Fp6& a, const Fp6& b);
Fp6 fp6_sub(const Fp6& a, const Fp6& b);
Fp6 fp6_neg(const Fp6& a);
Fp6 fp6_mul(const TowerCtx& t, const Fp6& a, const Fp6& b);
Fp6 fp6_sqr(const TowerCtx& t, const Fp6& a);
Fp6 fp6_inv(const TowerCtx& t, const Fp6& a);
/// Multiplication by v: (c0, c1, c2) -> (ξ·c2, c0, c1).
Fp6 fp6_mul_by_v(const TowerCtx& t, const Fp6& a);

// --- F_p12 --------------------------------------------------------------------

Fp12 fp12_zero(const TowerCtx& t);
Fp12 fp12_one(const TowerCtx& t);
bool fp12_is_one(const TowerCtx& t, const Fp12& a);
bool fp12_eq(const Fp12& a, const Fp12& b);
Fp12 fp12_add(const Fp12& a, const Fp12& b);
Fp12 fp12_sub(const Fp12& a, const Fp12& b);
Fp12 fp12_neg(const Fp12& a);
Fp12 fp12_mul(const TowerCtx& t, const Fp12& a, const Fp12& b);
Fp12 fp12_sqr(const TowerCtx& t, const Fp12& a);
Fp12 fp12_inv(const TowerCtx& t, const Fp12& a);
Fp12 fp12_from_fp(const TowerCtx& t, const Fp& a);
Fp12 fp12_from_fp2(const TowerCtx& t, const Fp2& a);

/// The p-power Frobenius endomorphism (cheap: conjugations + γ scaling).
Fp12 fp12_frobenius(const TowerCtx& t, const Fp12& a);

/// Square-and-multiply exponentiation, MSB first.
template <size_t L>
Fp12 fp12_pow(const TowerCtx& t, const Fp12& a, const bigint::BigInt<L>& e) {
  Fp12 acc = fp12_one(t);
  for (size_t i = e.bit_length(); i-- > 0;) {
    acc = fp12_sqr(t, acc);
    if (e.bit(i)) acc = fp12_mul(t, acc, a);
  }
  return acc;
}

/// Serialization (fixed width, re-to-im order) — for H2 mask inputs.
Bytes fp12_to_bytes(const Fp12& a);

}  // namespace tre::bls12
