// The F_p12 extension tower for BLS12-381.
//
//   F_p2  = F_p[u]/(u² + 1)            (reused from field/fp2.h)
//   F_p6  = F_p2[v]/(v³ − ξ), ξ = 1+u
//   F_p12 = F_p6[w]/(w² − v)           (so w⁶ = ξ)
//
// Elements are value types; operations take the shared TowerCtx, which
// owns ξ and the runtime-computed Frobenius constants γ_k = ξ^(k(p−1)/6)
// (no hardcoded tables — everything derives from the modulus).
#pragma once

#include <array>
#include <cstdint>

#include "field/fp2.h"

namespace tre::bls12 {

using field::Fp;
using field::Fp2;
using field::FpCtx;
using field::FpInt;

struct Fp6 {
  Fp2 c0, c1, c2;  // c0 + c1·v + c2·v²
};

struct Fp12 {
  Fp6 c0, c1;  // c0 + c1·w
};

struct TowerCtx {
  const FpCtx* fp;
  Fp2 xi;                        // 1 + u
  std::array<Fp2, 6> frob_gamma; // γ_k = ξ^(k(p−1)/6), k = 0..5

  explicit TowerCtx(const FpCtx* fp_ctx);
};

// --- F_p6 ---------------------------------------------------------------------

Fp6 fp6_zero(const TowerCtx& t);
Fp6 fp6_one(const TowerCtx& t);
bool fp6_is_zero(const Fp6& a);
bool fp6_eq(const Fp6& a, const Fp6& b);
Fp6 fp6_add(const Fp6& a, const Fp6& b);
Fp6 fp6_sub(const Fp6& a, const Fp6& b);
Fp6 fp6_neg(const Fp6& a);
Fp6 fp6_mul(const TowerCtx& t, const Fp6& a, const Fp6& b);
Fp6 fp6_sqr(const TowerCtx& t, const Fp6& a);
Fp6 fp6_inv(const TowerCtx& t, const Fp6& a);
/// Multiplication by v: (c0, c1, c2) -> (ξ·c2, c0, c1).
Fp6 fp6_mul_by_v(const TowerCtx& t, const Fp6& a);
/// a · (b0 + b1·v) — sparse operand with no v² term (5 Fp2 muls).
Fp6 fp6_mul_by_01(const TowerCtx& t, const Fp6& a, const Fp2& b0, const Fp2& b1);
/// a · (b1·v) (3 Fp2 muls).
Fp6 fp6_mul_by_1(const TowerCtx& t, const Fp6& a, const Fp2& b1);

// --- F_p12 --------------------------------------------------------------------

Fp12 fp12_zero(const TowerCtx& t);
Fp12 fp12_one(const TowerCtx& t);
bool fp12_is_one(const TowerCtx& t, const Fp12& a);
bool fp12_eq(const Fp12& a, const Fp12& b);
Fp12 fp12_add(const Fp12& a, const Fp12& b);
Fp12 fp12_sub(const Fp12& a, const Fp12& b);
Fp12 fp12_neg(const Fp12& a);
Fp12 fp12_mul(const TowerCtx& t, const Fp12& a, const Fp12& b);
Fp12 fp12_sqr(const TowerCtx& t, const Fp12& a);
Fp12 fp12_inv(const TowerCtx& t, const Fp12& a);
Fp12 fp12_from_fp(const TowerCtx& t, const Fp& a);
Fp12 fp12_from_fp2(const TowerCtx& t, const Fp2& a);

/// F_p6-conjugation c0 + c1·w -> c0 − c1·w, i.e. a^(p⁶). On the
/// cyclotomic subgroup (a^(p⁶+1) = 1, e.g. any final-exponentiation
/// output) this IS the inverse, for free.
Fp12 fp12_conjugate(const Fp12& a);

/// Sparse multiplication by a Miller line ℓ = c0 + c1·v + c4·vw — the
/// shape every M-twist line evaluation takes (nonzero flattened
/// coefficients 0, 1 and 4, hence the name). ~13 Fp2 muls vs 18 for a
/// generic fp12_mul.
Fp12 fp12_mul_by_014(const TowerCtx& t, const Fp12& a, const Fp2& c0,
                     const Fp2& c1, const Fp2& c4);

/// Granger–Scott squaring for elements of the cyclotomic subgroup
/// G_Φ6(p²) = {a : a^(p⁴−p²+1) = 1} (final-exponentiation outputs and
/// everything the hard part touches). 9 Fp2 muls vs 18 for fp12_sqr.
/// PRECONDITION: a is cyclotomic; the formulas are only an identity
/// there.
Fp12 fp12_cyclotomic_sqr(const TowerCtx& t, const Fp12& a);

/// Exponentiation with cyclotomic squarings. Same precondition (and
/// exactly the same value) as fp12_pow on cyclotomic inputs. Signed
/// digits are free here: the cyclotomic inverse is a conjugation, so a
/// width-4 wNAF cuts the multiply count to ~L/5 with a table of four odd
/// powers — the hard part of the final exponentiation spends most of its
/// multiplies in this function.
template <size_t L>
Fp12 fp12_cyclotomic_pow(const TowerCtx& t, const Fp12& a,
                         const bigint::BigInt<L>& e) {
  if (e.is_zero()) return fp12_one(t);
  std::int8_t digits[bigint::kWnafMaxDigits<L>];
  size_t len = bigint::wnaf_into(e, 4, digits);
  // Odd powers a^1, a^3, a^5, a^7.
  Fp12 tab[4];
  tab[0] = a;
  Fp12 a2 = fp12_cyclotomic_sqr(t, a);
  for (size_t i = 1; i < 4; ++i) tab[i] = fp12_mul(t, tab[i - 1], a2);
  Fp12 acc = fp12_one(t);
  bool started = false;
  for (size_t i = len; i-- > 0;) {
    if (started) acc = fp12_cyclotomic_sqr(t, acc);
    std::int8_t d = digits[i];
    if (d == 0) continue;
    Fp12 term = d > 0 ? tab[(d - 1) / 2] : fp12_conjugate(tab[(-d - 1) / 2]);
    acc = started ? fp12_mul(t, acc, term) : term;
    started = true;
  }
  return acc;
}

/// The p-power Frobenius endomorphism (cheap: conjugations + γ scaling).
Fp12 fp12_frobenius(const TowerCtx& t, const Fp12& a);

/// Square-and-multiply exponentiation, MSB first.
template <size_t L>
Fp12 fp12_pow(const TowerCtx& t, const Fp12& a, const bigint::BigInt<L>& e) {
  Fp12 acc = fp12_one(t);
  for (size_t i = e.bit_length(); i-- > 0;) {
    acc = fp12_sqr(t, acc);
    if (e.bit(i)) acc = fp12_mul(t, acc, a);
  }
  return acc;
}

/// Serialization (fixed width, re-to-im order) — for H2 mask inputs.
Bytes fp12_to_bytes(const Fp12& a);

}  // namespace tre::bls12
