// PairingBackend policy instantiating the generic TRE core
// (core/tre_core.h) on BLS12-381 — the type-3 curve today's deployments
// of this scheme (drand / tlock) run on.
//
// Type-3 artifact placement (there is no distortion map, so the two
// source groups are genuinely different and each artifact must pick one):
//   * Gu = G_1 (48-byte x-coordinates, 49 B compressed) carries the
//     SMALL, per-instant artifacts: H1(T), the key update I_T = s·H1(T),
//     epoch keys a·I_T, and the user's certifiable anchor A_1 = a·G1gen.
//     Updates are the scheme's broadcast traffic, so they get the short
//     group — exactly the BLS-signature placement drand uses.
//   * Gh = G_2 (97 B compressed) carries the long-lived keys and the
//     per-ciphertext header: the server generator G, sG, the user's
//     a·sG, and U = rG. Ciphertext headers are point-to-point, not
//     broadcast, so the long group costs little.
//   * Pairings are always ê(Gu, Gh): session key ê(H1(T), r·asG),
//     decryption ê(I_T, U)^a, verification ê(H1(T), sG) == ê(I_T, G).
//
// Two §5.1 checks change shape (not meaning) relative to type-1:
//   * The user-key check becomes ê(A_1, sG) == ê(G1gen, a·sG) — the
//     anchor lives on the G_1 side, the server key on the G_2 side.
//   * The §5.3.4 same-secret check degenerates: A_1 = a·G1gen does not
//     involve the server generator at all, so "same secret as certified"
//     is a plain G_1 equality instead of a cross pairing.
#pragma once

#include <memory>

#include "bls12/bls12.h"
#include "core/tre_core.h"

namespace tre::bls12 {

/// Fixed-base engine for G_2: a real Lim–Lee comb (G2Comb), built once
/// per base through the generic core's comb cache. mul_secret keeps the
/// constant-pattern column walk.
struct Comb381 {
  std::shared_ptr<const G2Comb> comb;
  G2Point381 mul_secret(const core::Scalar& k) const { return comb->mul_secret(k); }
};

/// Per-update pairing engine. The G_2 argument here (the ciphertext
/// header U) is fresh per call, so there are no lines to reuse on that
/// side; what the fast engine gives this path is the projective Miller
/// loop + cyclotomic final exponentiation. The G_1 `fixed` point is the
/// cached state, matching the type-1 engine's shape.
struct Lines381 {
  std::shared_ptr<const Bls12Ctx> ctx;
  G1Point381 fixed;
  Gt381 pair(const G2Point381& u) const { return ctx->pair(fixed, u); }
};

struct Bls381Backend {
  using Params = Bls12Ctx;
  using Gu = G1Point381;
  using Gh = G2Point381;
  using Gt = Gt381;
  using GhPrecomp = Comb381;
  using PairPrecomp = Lines381;

  /// Per-backend probe namespace: the 381 instantiation reports under
  /// "core.bls381.*" so both backends can run in one process without
  /// mixing counters (docs/OBSERVABILITY.md).
  static constexpr const char* kProbePrefix = "core.bls381.";
  /// The anchor a·G1gen lives in G_1, not the header group.
  static constexpr bool kAnchorIsGh = false;

  // --- scalars ---------------------------------------------------------------
  static core::Scalar random_scalar(const Params& p, tre::hashing::RandomSource& rng) {
    return p.random_scalar(rng);
  }
  static size_t scalar_bytes(const Params& p) { return p.fr()->byte_len; }
  static const field::FpInt& group_order(const Params& p) { return p.r(); }
  /// The scalar field F_r (Shamir polynomials, Lagrange coefficients).
  static const field::FpCtx* scalar_field(const Params& p) { return p.fr(); }

  // --- hashing / generators --------------------------------------------------
  static Gu hash_tag(const Params& p, ByteSpan msg) { return p.hash_to_g1(msg); }
  static const Gh& header_base(const Params& p) { return p.g2_generator(); }
  /// The anchor base is the context's G_1 generator, independent of the
  /// server's G_2 generator.
  static const Gu& anchor_base(const Params& p, const Gh&) {
    return p.g1_generator();
  }

  // --- header-group (G_2) operations ------------------------------------------
  static Gh gh_mul(const Params& p, const Gh& q, const core::Scalar& k) {
    return p.g2_mul(q, k);
  }
  static Gh gh_mul_secret(const Params& p, const Gh& q, const core::Scalar& k) {
    return p.g2_mul_secret(q, k);  // constant-pattern fixed-window ladder
  }
  static bool gh_is_infinity(const Gh& q) { return q.inf; }
  static bool gh_in_subgroup(const Params& p, const Gh& q) {
    return p.g2_in_subgroup(q);
  }
  static bool gh_eq(const Gh& a, const Gh& b) {
    // Memberwise affine compare, exactly Bls12Ctx::g2_eq (which needs no
    // context state) — kept context-free for the generic structs.
    if (a.inf || b.inf) return a.inf == b.inf;
    return a.x == b.x && a.y == b.y;
  }
  static Bytes gh_to_bytes(const Gh& q) { return Bls12Ctx::get()->g2_to_bytes(q); }
  static size_t gh_wire_bytes(const Params& p) { return 1 + 2 * p.fp()->byte_len; }
  /// Σᵢ scalars[i]·points[i] on the twist (Feldman checks, RLC partial
  /// verification).
  static Gh gh_multiexp(const Params& p, std::span<const Gh> points,
                        std::span<const core::Scalar> scalars,
                        unsigned threads) {
    return p.g2_multiexp(points, scalars, threads);
  }
  static Gh gh_from_bytes(const Params& p, ByteSpan bytes) {
    return p.g2_from_bytes(bytes);  // throws tre::Error; subgroup-checked
  }

  // --- update-group (G_1) operations ------------------------------------------
  static Gu gu_mul(const Params& p, const Gu& q, const core::Scalar& k) {
    return p.g1_mul(q, k);
  }
  static Gu gu_mul_secret(const Params& p, const Gu& q, const core::Scalar& k) {
    return p.g1_mul_secret(q, k);
  }
  /// Σᵢ scalars[i]·points[i] via bucketed Pippenger on the work pool.
  static Gu gu_multiexp(const Params& p, std::span<const Gu> points,
                        std::span<const core::Scalar> scalars,
                        unsigned threads) {
    return p.g1_multiexp(points, scalars, threads);
  }
  static bool gu_is_infinity(const Gu& q) { return q.inf; }
  static bool gu_in_subgroup(const Params& p, const Gu& q) {
    return p.g1_in_subgroup(q);
  }
  static bool gu_eq(const Gu& a, const Gu& b) {
    if (a.inf || b.inf) return a.inf == b.inf;
    return a.x == b.x && a.y == b.y;
  }
  static Bytes gu_to_bytes(const Gu& q) { return Bls12Ctx::get()->g1_to_bytes(q); }
  static size_t gu_wire_bytes(const Params& p) { return 1 + p.fp()->byte_len; }
  static Gu gu_from_bytes(const Params& p, ByteSpan bytes) {
    return p.g1_from_bytes(bytes);  // throws tre::Error; subgroup-checked
  }

  // --- precomputation engines -------------------------------------------------
  static std::shared_ptr<const GhPrecomp> make_comb(const Params&, const Gh& base) {
    return std::make_shared<const Comb381>(
        Comb381{std::make_shared<const G2Comb>(Bls12Ctx::get(), base)});
  }
  static std::shared_ptr<const PairPrecomp> make_lines(const Params&, const Gu& fixed) {
    return std::make_shared<const Lines381>(Lines381{Bls12Ctx::get(), fixed});
  }

  // --- pairing ----------------------------------------------------------------
  /// ê(H1(T), asG) — the session key. asG is a long-lived user key, so
  /// its Miller lines come from the context's G_2 lines cache.
  static Gt pair_session(const Params& p, const Gh& asg, const Gu& h1t) {
    return p.pair_cached(h1t, asg);
  }
  /// ê(I_T, U)^a — decryption; `fixed` is the update/epoch key.
  static Gt pair_decrypt(const Params& p, const Gu& fixed, const Gh& u) {
    return p.pair(fixed, u);
  }
  static bool pairings_equal_uh(const Params& p, const Gu& u1, const Gh& h1,
                                const Gu& u2, const Gh& h2) {
    return p.pairings_equal(u1, h1, u2, h2);
  }
  static bool pairings_equal_hu(const Params& p, const Gh& h1, const Gu& u1,
                                const Gh& h2, const Gu& u2) {
    return p.pairings_equal(u1, h1, u2, h2);
  }
  /// §5.3.4 check (1): the type-3 anchor a·G1gen is server-independent,
  /// so "same secret as certified" is a plain G_1 equality — no pairing.
  static bool same_secret(const Params&, const Gu& cand_ag, const Gh& /*old_gen*/,
                          const Gu& cert_ag, const Gh& /*new_g*/) {
    return gu_eq(cand_ag, cert_ag);
  }
  /// Unitary inputs (pairing outputs) take cyclotomic squarings + wNAF
  /// with conjugation-inverses; the generic power stays the fallback.
  static Gt gt_pow(const Params& p, const Gt& k, const core::Scalar& e,
                   bool unitary) {
    return unitary ? p.gt_pow_unitary(k, e) : p.gt_pow(k, e);
  }
  static Bytes gt_to_bytes(const Params& p, const Gt& k) { return p.gt_to_bytes(k); }
};

}  // namespace tre::bls12

namespace tre::core {
// The 381 scheme is compiled once into tre_bls12 (tre381.cpp).
extern template class BasicTreScheme<bls12::Bls381Backend>;
}  // namespace tre::core
