// Explicit instantiation of the backend-generic TRE core for BLS12-381.
// The 142-line bespoke Tre381 this file used to hold is gone: the scheme
// logic lives once in core/tre_core.h and is bound to the type-3 curve by
// the Bls381Backend policy (bls12/backend381.h).
#include "bls12/tre381.h"

namespace tre::core {

template class BasicTreScheme<bls12::Bls381Backend>;

}  // namespace tre::core
