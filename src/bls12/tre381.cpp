#include "bls12/tre381.h"

#include "hashing/kdf.h"

namespace tre::bls12 {

Bytes Tre381::mask(const Gt381& k, size_t len) const {
  return hashing::oracle_bytes("TRE381-H2", ctx_->gt_to_bytes(k), len);
}

ServerKey381 Tre381::server_keygen(tre::hashing::RandomSource& rng) const {
  Scalar s = ctx_->random_scalar(rng);
  return ServerKey381{s, ctx_->g2_mul(ctx_->g2_generator(), s)};
}

UserKey381 Tre381::user_keygen(const G2Point381& server_pk,
                               tre::hashing::RandomSource& rng) const {
  Scalar a = ctx_->random_scalar(rng);
  return UserKey381{a, ctx_->g1_mul(ctx_->g1_generator(), a),
                    ctx_->g2_mul(server_pk, a)};
}

bool Tre381::verify_user_key(const G2Point381& server_pk, const G1Point381& a1,
                             const G2Point381& a2) const {
  if (a1.inf || a2.inf) return false;
  return ctx_->pairings_equal(a1, server_pk, ctx_->g1_generator(), a2);
}

Update381 Tre381::issue_update(const ServerKey381& server, std::string_view tag) const {
  return Update381{std::string(tag),
                   ctx_->g1_mul(ctx_->hash_to_g1(to_bytes(tag)), server.s)};
}

bool Tre381::verify_update(const G2Point381& server_pk, const Update381& update) const {
  if (update.sig.inf) return false;
  return ctx_->pairings_equal(update.sig, ctx_->g2_generator(),
                              ctx_->hash_to_g1(to_bytes(update.tag)), server_pk);
}

Ciphertext381 Tre381::encrypt(ByteSpan msg, const G1Point381& user_a1,
                              const G2Point381& user_a2, const G2Point381& server_pk,
                              std::string_view tag,
                              tre::hashing::RandomSource& rng) const {
  require(verify_user_key(server_pk, user_a1, user_a2),
          "Tre381 encrypt: receiver public key fails the pairing check");
  Scalar r = ctx_->random_scalar(rng);
  Gt381 k = ctx_->pair(ctx_->hash_to_g1(to_bytes(tag)), ctx_->g2_mul(user_a2, r));
  Ciphertext381 ct;
  ct.u = ctx_->g2_mul(ctx_->g2_generator(), r);
  ct.v = xor_bytes(msg, mask(k, msg.size()));
  return ct;
}

Bytes Tre381::decrypt(const Ciphertext381& ct, const Scalar& a,
                      const Update381& update) const {
  Gt381 k = ctx_->gt_pow(ctx_->pair(update.sig, ct.u), a);
  return xor_bytes(ct.v, mask(k, ct.v.size()));
}

Scalar Tre381::hash_to_scalar(ByteSpan input) const {
  Bytes wide = hashing::oracle_bytes("TRE381-H3", input, ctx_->fr()->byte_len + 16);
  auto v = bigint::BigInt<2 * field::kMaxFieldLimbs>::from_bytes_be(wide);
  Scalar r = bigint::mod_wide(v, ctx_->r());
  if (r.is_zero()) r = Scalar::from_u64(1);
  return r;
}

Gt381 Tre381::session_key(const G2Point381& user_a2, std::string_view tag,
                          const Scalar& r) const {
  return ctx_->pair(ctx_->hash_to_g1(to_bytes(tag)), ctx_->g2_mul(user_a2, r));
}

FoCiphertext381 Tre381::encrypt_fo(ByteSpan msg, const G1Point381& user_a1,
                                   const G2Point381& user_a2,
                                   const G2Point381& server_pk, std::string_view tag,
                                   tre::hashing::RandomSource& rng) const {
  require(verify_user_key(server_pk, user_a1, user_a2),
          "Tre381 encrypt_fo: receiver public key fails the pairing check");
  Bytes sigma = rng.bytes(32);
  Scalar r = hash_to_scalar(concat({sigma, msg}));
  Gt381 k = session_key(user_a2, tag, r);
  FoCiphertext381 ct;
  ct.u = ctx_->g2_mul(ctx_->g2_generator(), r);
  ct.c_sigma = xor_bytes(sigma, mask(k, sigma.size()));
  ct.c_msg = xor_bytes(msg, hashing::oracle_bytes("TRE381-H4", sigma, msg.size()));
  return ct;
}

std::optional<Bytes> Tre381::decrypt_fo(const FoCiphertext381& ct, const Scalar& a,
                                        const Update381& update) const {
  if (ct.c_sigma.size() != 32) return std::nullopt;
  Gt381 k = ctx_->gt_pow(ctx_->pair(update.sig, ct.u), a);
  Bytes sigma = xor_bytes(ct.c_sigma, mask(k, ct.c_sigma.size()));
  Bytes msg = xor_bytes(ct.c_msg,
                        hashing::oracle_bytes("TRE381-H4", sigma, ct.c_msg.size()));
  Scalar r = hash_to_scalar(concat({sigma, msg}));
  if (!ctx_->g2_eq(ctx_->g2_mul(ctx_->g2_generator(), r), ct.u)) return std::nullopt;
  return msg;
}

Bytes Tre381::update_to_bytes(const Update381& u) const {
  require(u.tag.size() <= 0xffff, "Tre381: tag too long");
  Bytes out;
  out.push_back(static_cast<std::uint8_t>(u.tag.size() >> 8));
  out.push_back(static_cast<std::uint8_t>(u.tag.size() & 0xff));
  out.insert(out.end(), u.tag.begin(), u.tag.end());
  Bytes sig = ctx_->g1_to_bytes(u.sig);
  out.insert(out.end(), sig.begin(), sig.end());
  return out;
}

Update381 Tre381::update_from_bytes(ByteSpan bytes) const {
  require(bytes.size() >= 2, "Tre381 update: truncated");
  size_t tag_len = static_cast<size_t>(bytes[0]) << 8 | bytes[1];
  require(bytes.size() == 2 + tag_len + 49, "Tre381 update: bad length");
  Update381 u;
  u.tag.assign(bytes.begin() + 2, bytes.begin() + 2 + static_cast<long>(tag_len));
  u.sig = ctx_->g1_from_bytes(bytes.subspan(2 + tag_len));  // subgroup-checked
  return u;
}

Bytes Tre381::ciphertext_to_bytes(const Ciphertext381& ct) const {
  Bytes out = ctx_->g2_to_bytes(ct.u);
  require(ct.v.size() <= 0xffff, "Tre381 ciphertext: body too long");
  out.push_back(static_cast<std::uint8_t>(ct.v.size() >> 8));
  out.push_back(static_cast<std::uint8_t>(ct.v.size() & 0xff));
  out.insert(out.end(), ct.v.begin(), ct.v.end());
  return out;
}

Ciphertext381 Tre381::ciphertext_from_bytes(ByteSpan bytes) const {
  size_t header = 1 + 2 * ctx_->fp()->byte_len;
  require(bytes.size() >= header + 2, "Tre381 ciphertext: truncated");
  Ciphertext381 ct;
  ct.u = ctx_->g2_from_bytes(bytes.subspan(0, header));  // subgroup-checked
  size_t n = static_cast<size_t>(bytes[header]) << 8 | bytes[header + 1];
  require(bytes.size() == header + 2 + n, "Tre381 ciphertext: bad length");
  ct.v.assign(bytes.begin() + static_cast<long>(header + 2), bytes.end());
  return ct;
}

}  // namespace tre::bls12
