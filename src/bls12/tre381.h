// The paper's TRE instantiated on BLS12-381 (type-3 pairing) — the
// layout today's deployments of this scheme (drand/tlock) use.
//
// With asymmetric groups the artifacts split:
//   * time-bound key updates live in G_1 (48-byte points — even shorter
//     than the 2005 curve's 65 bytes at a higher security level);
//   * the ciphertext header U = r·G_2 and the keys live in G_2.
//
//   server : s, public S = s·G_2 (generator fixed by the context)
//   user   : a, public (A1 = a·G_1gen, A2 = a·S ∈ G_2); the sender's
//            §5.1-step-1 check becomes ê(A1, S) == ê(G_1gen, A2)
//   update : I_T = s·H1(T) ∈ G_1; verify ê(I_T, G_2) == ê(H1(T), S)
//   encrypt: K = ê(H1(T), r·A2) = ê(H1(T), G_2)^{ras};  C = ⟨rG_2, M⊕H2(K)⟩
//   decrypt: K' = ê(I_T, U)^a
#pragma once

#include <optional>
#include <string_view>

#include "bls12/bls12.h"

namespace tre::bls12 {

struct ServerKey381 {
  Scalar s;
  G2Point381 pk;  // s·G_2
};

struct UserKey381 {
  Scalar a;
  G1Point381 a1;  // a·G_1gen (the CA-certifiable anchor)
  G2Point381 a2;  // a·(s·G_2)
};

struct Update381 {
  std::string tag;
  G1Point381 sig;  // s·H1(tag): a 48-byte BLS signature
};

struct Ciphertext381 {
  G2Point381 u;  // r·G_2
  Bytes v;
};

/// Fujisaki-Okamoto-hardened ciphertext (CCA in the ROM), mirroring the
/// type-1 backend's FoCiphertext.
struct FoCiphertext381 {
  G2Point381 u;
  Bytes c_sigma;
  Bytes c_msg;
};

class Tre381 {
 public:
  Tre381() : ctx_(Bls12Ctx::get()) {}

  const Bls12Ctx& curve() const { return *ctx_; }

  ServerKey381 server_keygen(tre::hashing::RandomSource& rng) const;
  UserKey381 user_keygen(const G2Point381& server_pk,
                         tre::hashing::RandomSource& rng) const;

  /// ê(A1, S) == ê(G_1gen, A2): the receiver really needs the update.
  bool verify_user_key(const G2Point381& server_pk, const G1Point381& a1,
                       const G2Point381& a2) const;

  Update381 issue_update(const ServerKey381& server, std::string_view tag) const;
  bool verify_update(const G2Point381& server_pk, const Update381& update) const;

  Ciphertext381 encrypt(ByteSpan msg, const G1Point381& user_a1,
                        const G2Point381& user_a2, const G2Point381& server_pk,
                        std::string_view tag, tre::hashing::RandomSource& rng) const;

  Bytes decrypt(const Ciphertext381& ct, const Scalar& a, const Update381& update) const;

  /// FO transform: r = H3(σ, M); decryption re-derives and checks U.
  FoCiphertext381 encrypt_fo(ByteSpan msg, const G1Point381& user_a1,
                             const G2Point381& user_a2, const G2Point381& server_pk,
                             std::string_view tag,
                             tre::hashing::RandomSource& rng) const;
  std::optional<Bytes> decrypt_fo(const FoCiphertext381& ct, const Scalar& a,
                                  const Update381& update) const;

  /// Wire formats (update = tag || 48-byte point; ciphertexts length-framed).
  Bytes update_to_bytes(const Update381& u) const;
  Update381 update_from_bytes(ByteSpan bytes) const;
  Bytes ciphertext_to_bytes(const Ciphertext381& ct) const;
  Ciphertext381 ciphertext_from_bytes(ByteSpan bytes) const;

  /// Wire sizes for the E17 comparison.
  size_t update_bytes() const { return 1 + 48; }
  size_t ciphertext_header_bytes() const { return 1 + 96; }

 private:
  Bytes mask(const Gt381& k, size_t len) const;
  Scalar hash_to_scalar(ByteSpan input) const;
  Gt381 session_key(const G2Point381& user_a2, std::string_view tag,
                    const Scalar& r) const;

  std::shared_ptr<const Bls12Ctx> ctx_;
};

}  // namespace tre::bls12
