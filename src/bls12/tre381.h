// The paper's TRE instantiated on BLS12-381 (type-3 pairing) — the
// layout today's deployments of this scheme (drand/tlock) use.
//
// This is the SAME generic core as core::TreScheme (core/tre_core.h):
// seal/open for all three modes, the §5.1 step-1 key check, the five
// Tuning memo caches, the batch APIs and the obs probes (under
// "core.bls381.*") are one template, bound here to the Bls381Backend
// policy. See bls12/backend381.h for the type-3 artifact-placement notes
// (updates and the user anchor in G_1, keys and ciphertext headers in
// G_2, the degenerate §5.3.4 same-secret check).
//
//   server : s, public (G = h·G_2gen, S = s·G) — like the type-1 scheme
//            the server chooses its own G_2 generator; the fixed-generator
//            drand layout is the special case G = G_2gen (see
//            ThresholdKey381::as_server_public_key)
//   user   : a, public (A1 = a·G_1gen, A2 = a·S); the sender's
//            §5.1-step-1 check is ê(A1, S) == ê(G_1gen, A2)
//   update : I_T = s·H1(T) ∈ G_1 (49 B compressed vs the 2005 curve's
//            65 B, at a far higher security level); verify
//            ê(H1(T), S) == ê(I_T, G)
//   encrypt: K = ê(H1(T), r·A2) = ê(H1(T), A2)^r;  C = ⟨rG, M ⊕ H2(K)⟩
//   decrypt: K' = ê(I_T, U)^a
//
// Wire formats are the generic backend-tagged framing: points carry their
// backend-specific compressed width (G_1 49 B, G_2 97 B), so 381 bytes
// fed to a type-1 context fail cleanly in try_from_bytes and vice versa.
#pragma once

#include "bls12/backend381.h"

namespace tre::bls12 {

using Tre381Scheme = core::BasicTreScheme<Bls381Backend>;

using ServerPublicKey381 = core::BasicServerPublicKey<Bls381Backend>;
using ServerKey381 = core::BasicServerKeyPair<Bls381Backend>;
using UserPublicKey381 = core::BasicUserPublicKey<Bls381Backend>;
using UserKey381 = core::BasicUserKeyPair<Bls381Backend>;
using Update381 = core::BasicKeyUpdate<Bls381Backend>;
using Ciphertext381 = core::BasicCiphertext<Bls381Backend>;
using FoCiphertext381 = core::BasicFoCiphertext<Bls381Backend>;
using ReactCiphertext381 = core::BasicReactCiphertext<Bls381Backend>;
using SealedCiphertext381 = core::BasicSealedCiphertext<Bls381Backend>;
using EpochKey381 = core::BasicEpochKey<Bls381Backend>;

/// Convenience constructor: the 381 scheme over the cached validated
/// context. Pairings here are reference-speed (~tens of ms), so prefer
/// Tuning::fast() (the default), whose memo caches amortize them.
inline Tre381Scheme make_tre381(core::Tuning tuning = core::Tuning::fast()) {
  return Tre381Scheme(Bls12Ctx::get(), tuning);
}

}  // namespace tre::bls12
