// BLS12-381: a modern type-3 (asymmetric) pairing backend.
//
// The paper's construction works over "any Gap Diffie-Hellman group";
// its 2005-era instantiation is the symmetric supersingular curve in
// ec/ + pairing/. This module adds the curve today's deployments of this
// very scheme (drand / tlock) run on:
//
//   E  : y² = x³ + 4           over F_p           (G_1, 48-byte points)
//   E' : y² = x³ + 4(1+u)      over F_p2          (G_2, the M-twist)
//   ê  : G_1 × G_2 -> F_p12,   optimal ate pairing, r = group order
//
// Everything derives from the single 64-bit BLS parameter z:
//   r = z⁴ − z² + 1,  p = (z−1)²·r/3 + z
// and the context validates all of it at construction (primality, curve
// orders annihilating sampled points, G_2 generator satisfying the
// Frobenius eigenvalue π(Q) = [p]Q), so no unchecked magic constants
// exist in the code.
//
// Pairing engine (docs/PERF.md "BLS12-381 pairing engine"):
//   * Miller loop in homogeneous projective coordinates over F_p2 on the
//     twist — no inversions — with each line folded in through the
//     sparse fp12_mul_by_014 (M-twist lines are c0 + c1·v + c4·vw).
//   * The G_2 argument's line coefficients depend only on Q, so they are
//     precomputed once into a G2Prepared and, for recurring keys (the
//     server's G and sG, a user's a·sG), memoized in a SnapshotCache
//     keyed by the compressed point ("core.bls381.pair.lines.*" probes).
//   * Final exponentiation: Frobenius easy part, then the hard part
//     (p⁴−p²+1)/r via the exact base-p decomposition in powers of z with
//     cyclotomic squarings — value-identical to the generic power.
//   * Scalar multiplication: width-4 wNAF for public scalars, a
//     constant-pattern fixed-window ladder for secret ones, and a
//     Lim–Lee comb (G2Comb) for fixed G_2 bases — the backend512
//     parity set.
//   * pair_reference()/pairings_equal_reference() keep the original
//     affine-over-F_p12 loop (inversions batched across lockstep pairs
//     by Montgomery's trick) as the cross-checked oracle; tests assert
//     the fast engine agrees bit-for-bit after final exponentiation.
#pragma once

#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "bls12/tower.h"
#include "common/snapshot_cache.h"
#include "hashing/drbg.h"

namespace tre::bls12 {

/// Scalars mod r.
using Scalar = FpInt;

/// Point on E(F_p): y² = x³ + 4.
struct G1Point381 {
  Fp x, y;
  bool inf = true;
};

/// Point on the twist E'(F_p2): y² = x³ + 4(1+u).
struct G2Point381 {
  Fp2 x, y;
  bool inf = true;
};

/// Pairing output: unit-subgroup element of F_p12.
using Gt381 = Fp12;

/// Precomputed Miller-loop line coefficients for a fixed G_2 argument:
/// one (a, b, c) triple per doubling step plus one per set bit of |z|.
/// At evaluation only b·x_P and c·y_P remain, so pairing against a
/// prepared Q skips all G_2 point arithmetic.
struct G2Prepared {
  struct Coeff {
    Fp2 a, b, c;
  };
  std::vector<Coeff> coeffs;
  bool inf = false;
};

class Bls12Ctx;

/// Lim–Lee fixed-base comb for G_2 (the analog of ec::G1Precomp):
/// kTeeth scalar bits per column, a batch-normalized affine table of
/// 2^kTeeth − 1 combinations, so a 255-bit multiplication costs ~32
/// doublings + ~32 mixed additions instead of a full ladder.
class G2Comb {
 public:
  G2Comb(std::shared_ptr<const Bls12Ctx> ctx, const G2Point381& base);

  const G2Point381& base() const { return base_; }
  /// Variable-time comb multiplication (public scalars).
  G2Point381 mul(const Scalar& k) const;
  /// Constant-pattern variant: every column performs one table addition
  /// (a dummy accumulator absorbs zero columns), mirroring the
  /// mul_secret policy of the type-1 backend.
  G2Point381 mul_secret(const Scalar& k) const;

  static constexpr size_t kTeeth = 8;

 private:
  std::shared_ptr<const Bls12Ctx> ctx_;
  G2Point381 base_;
  size_t cols_ = 0;
  bool degenerate_ = false;        // infinity base: mul is always infinity
  std::vector<G2Point381> table_;  // 2^kTeeth − 1 affine entries
};

class Bls12Ctx {
 public:
  /// Builds (and caches) the validated context. Throws if any derived
  /// constant fails its self-check.
  static std::shared_ptr<const Bls12Ctx> get();

  const FpCtx* fp() const { return fp_.get(); }
  const FpCtx* fr() const { return fr_.get(); }
  const TowerCtx& tower() const { return *tower_; }
  const FpInt& p() const { return fp_->p; }
  const FpInt& r() const { return fr_->p; }

  const G1Point381& g1_generator() const { return g1_gen_; }
  const G2Point381& g2_generator() const { return g2_gen_; }

  // --- G1 ---------------------------------------------------------------
  G1Point381 g1_infinity() const;
  G1Point381 g1_add(const G1Point381& a, const G1Point381& b) const;
  G1Point381 g1_neg(const G1Point381& a) const;
  G1Point381 g1_mul(const G1Point381& a, const Scalar& k) const;
  /// Fixed-window ladder with a constant double/add pattern (dummy
  /// additions on zero windows) — for long-lived secrets.
  G1Point381 g1_mul_secret(const G1Point381& a, const Scalar& k) const;
  /// Σᵢ scalars[i]·points[i] via bucketed Pippenger (src/ec/multiexp.h);
  /// windows fan out on the persistent work pool (`threads` as in
  /// tre::parallel_for). Sizes must match; infinity for an empty batch.
  G1Point381 g1_multiexp(std::span<const G1Point381> points,
                         std::span<const Scalar> scalars,
                         unsigned threads = 0) const;
  /// Unsigned running-sum fold only — parity reference for the
  /// signed-digit auto-selection (tests/test_bls12.cpp).
  G1Point381 g1_multiexp_unsigned(std::span<const G1Point381> points,
                                  std::span<const Scalar> scalars,
                                  unsigned threads = 0) const;
  bool g1_eq(const G1Point381& a, const G1Point381& b) const;
  bool g1_on_curve(const G1Point381& a) const;
  bool g1_in_subgroup(const G1Point381& a) const;
  /// Full-domain hash onto the order-r subgroup (try-and-increment +
  /// cofactor clearing) — H1 for the type-3 scheme.
  G1Point381 hash_to_g1(ByteSpan msg) const;
  Bytes g1_to_bytes(const G1Point381& a) const;  // compressed, 49 bytes
  G1Point381 g1_from_bytes(ByteSpan bytes) const;

  // --- G2 (twist coordinates) --------------------------------------------
  G2Point381 g2_infinity() const;
  G2Point381 g2_add(const G2Point381& a, const G2Point381& b) const;
  G2Point381 g2_neg(const G2Point381& a) const;
  G2Point381 g2_mul(const G2Point381& a, const Scalar& k) const;
  G2Point381 g2_mul_secret(const G2Point381& a, const Scalar& k) const;
  /// Σᵢ scalars[i]·points[i] on the twist — same engine as g1_multiexp
  /// (JacT is field-generic). Feeds Feldman commitment checks and RLC
  /// batch verification of threshold public shares.
  G2Point381 g2_multiexp(std::span<const G2Point381> points,
                         std::span<const Scalar> scalars,
                         unsigned threads = 0) const;
  bool g2_eq(const G2Point381& a, const G2Point381& b) const;
  bool g2_on_curve(const G2Point381& a) const;
  bool g2_in_subgroup(const G2Point381& a) const;
  Bytes g2_to_bytes(const G2Point381& a) const;  // 193 bytes (re|im x, y sign)
  G2Point381 g2_from_bytes(ByteSpan bytes) const;

  // --- Pairing -------------------------------------------------------------
  /// ê(P, Q) for P ∈ G_1, Q ∈ G_2; returns 1 when either is infinity.
  Gt381 pair(const G1Point381& p, const G2Point381& q) const;

  /// ê(P, Q) with Q's Miller lines served from the context's
  /// SnapshotCache ("core.bls381.pair.lines.{hit,miss}"). Use for
  /// recurring G_2 arguments (server keys, a·sG); fresh per-ciphertext
  /// headers should go through pair() to keep the cache hot-key-only.
  Gt381 pair_cached(const G1Point381& p, const G2Point381& q) const;

  /// ê(a1, a2) == ê(b1, b2) (the scheme's verification shape): one
  /// shared-squaring Miller loop over both pairs and one final
  /// exponentiation. Both G_2 arguments are cached — verification only
  /// ever sees long-lived keys.
  bool pairings_equal(const G1Point381& a1, const G2Point381& a2,
                      const G1Point381& b1, const G2Point381& b2) const;

  /// Line precomputation for a fixed Q (no cache / via the lines cache).
  std::shared_ptr<const G2Prepared> prepare_g2(const G2Point381& q) const;
  std::shared_ptr<const G2Prepared> prepare_g2_cached(const G2Point381& q) const;

  /// Un-exponentiated optimal-ate Miller value f_{z,Q}(P). Exposed (with
  /// final_exponentiation) so products of pairings can share one final
  /// exponentiation, and for the bench's sub-timings.
  Fp12 miller_loop(const G1Point381& p, const G2Prepared& q) const;

  /// f^((p¹²−1)/r): Frobenius easy part + cyclotomic hard part
  /// ("core.bls381.finalexp" counts invocations). Value-identical to the
  /// generic power by the validated hard exponent.
  Fp12 final_exponentiation(const Fp12& f) const;

  /// The original affine-over-F_p12 engine, kept as the cross-check
  /// oracle (slope inversions batched across lockstep pairs via
  /// Montgomery's trick — the only change from the seed loop).
  Gt381 pair_reference(const G1Point381& p, const G2Point381& q) const;
  bool pairings_equal_reference(const G1Point381& a1, const G2Point381& a2,
                                const G1Point381& b1, const G2Point381& b2) const;

  Gt381 gt_pow(const Gt381& a, const Scalar& e) const;
  /// Same value for unit-norm (pairing-output) elements, via cyclotomic
  /// squarings and width-5 wNAF with free conjugation-inverses.
  Gt381 gt_pow_unitary(const Gt381& a, const Scalar& e) const;
  bool gt_eq(const Gt381& a, const Gt381& b) const { return fp12_eq(a, b); }
  Bytes gt_to_bytes(const Gt381& a) const { return fp12_to_bytes(a); }

  /// Uniform scalar in [1, r).
  Scalar random_scalar(tre::hashing::RandomSource& rng) const;

 private:
  Bls12Ctx();

  // Untwist E'(F_p2) -> E(F_p12): (x, y) -> (x/w², y/w³).
  struct PointFp12 {
    Fp12 x, y;
    bool inf = true;
  };
  PointFp12 untwist(const G2Point381& q) const;
  PointFp12 fp12_point_frobenius(const PointFp12& a) const;
  Fp12 miller_ate_reference(
      std::span<const std::pair<G1Point381, G2Point381>> pairs) const;
  Fp12 miller_loop_multi(
      std::span<const std::pair<G1Point381, const G2Prepared*>> pairs) const;
  Fp12 hard_part(const Fp12& f) const;

  std::uint64_t abs_z_;
  std::shared_ptr<const FpCtx> fp_;
  std::shared_ptr<const FpCtx> fr_;
  std::unique_ptr<TowerCtx> tower_;
  FpInt g1_cofactor_;                 // (z-1)²/3
  FpInt g2_cofactor_;                 // #E'(F_p2)/r — derived + validated
  bigint::BigInt<24> hard_exponent_;  // (p⁴ - p² + 1)/r
  Fp2 twist_b_;                       // 4(1+u)
  Fp2 twist_b3_;                      // 3·4(1+u) — doubling-step constant
  Fp half_;                           // 1/2 — doubling-step constant
  Fp12 w2_inv_, w3_inv_;              // untwist constants
  G1Point381 g1_gen_;
  G2Point381 g2_gen_;
  /// Prepared-lines memo for recurring G_2 keys, keyed by compressed
  /// bytes. Mutable: the context is shared const; the cache is
  /// first-write-wins over deterministic values.
  mutable SnapshotCache<std::shared_ptr<const G2Prepared>> g2_lines_;
};

}  // namespace tre::bls12
