// BLS12-381: a modern type-3 (asymmetric) pairing backend.
//
// The paper's construction works over "any Gap Diffie-Hellman group";
// its 2005-era instantiation is the symmetric supersingular curve in
// ec/ + pairing/. This module adds the curve today's deployments of this
// very scheme (drand / tlock) run on:
//
//   E  : y² = x³ + 4           over F_p           (G_1, 48-byte points)
//   E' : y² = x³ + 4(1+u)      over F_p2          (G_2, the M-twist)
//   ê  : G_1 × G_2 -> F_p12,   ate pairing, r = group order
//
// Everything derives from the single 64-bit BLS parameter z:
//   r = z⁴ − z² + 1,  p = (z−1)²·r/3 + z
// and the context validates all of it at construction (primality, curve
// orders annihilating sampled points, G_2 generator satisfying the
// Frobenius eigenvalue π(Q) = [p]Q), so no unchecked magic constants
// exist in the code.
//
// The pairing is a straightforward reference implementation: the Miller
// loop runs over the untwisted Q in E(F_p12) with full tower arithmetic
// (no sparse-line or cyclotomic shortcuts) and the final exponentiation
// uses the structured easy part plus a generic power for the hard part.
// It is bit-for-bit the mathematical object production libraries
// compute, at reference-implementation speed (~tens of ms per pairing).
#pragma once

#include <memory>

#include "bls12/tower.h"
#include "hashing/drbg.h"

namespace tre::bls12 {

/// Scalars mod r.
using Scalar = FpInt;

/// Point on E(F_p): y² = x³ + 4.
struct G1Point381 {
  Fp x, y;
  bool inf = true;
};

/// Point on the twist E'(F_p2): y² = x³ + 4(1+u).
struct G2Point381 {
  Fp2 x, y;
  bool inf = true;
};

/// Pairing output: unit-subgroup element of F_p12.
using Gt381 = Fp12;

class Bls12Ctx {
 public:
  /// Builds (and caches) the validated context. Throws if any derived
  /// constant fails its self-check.
  static std::shared_ptr<const Bls12Ctx> get();

  const FpCtx* fp() const { return fp_.get(); }
  const FpCtx* fr() const { return fr_.get(); }
  const TowerCtx& tower() const { return *tower_; }
  const FpInt& p() const { return fp_->p; }
  const FpInt& r() const { return fr_->p; }

  const G1Point381& g1_generator() const { return g1_gen_; }
  const G2Point381& g2_generator() const { return g2_gen_; }

  // --- G1 ---------------------------------------------------------------
  G1Point381 g1_infinity() const;
  G1Point381 g1_add(const G1Point381& a, const G1Point381& b) const;
  G1Point381 g1_neg(const G1Point381& a) const;
  G1Point381 g1_mul(const G1Point381& a, const Scalar& k) const;
  bool g1_eq(const G1Point381& a, const G1Point381& b) const;
  bool g1_on_curve(const G1Point381& a) const;
  bool g1_in_subgroup(const G1Point381& a) const;
  /// Full-domain hash onto the order-r subgroup (try-and-increment +
  /// cofactor clearing) — H1 for the type-3 scheme.
  G1Point381 hash_to_g1(ByteSpan msg) const;
  Bytes g1_to_bytes(const G1Point381& a) const;  // compressed, 49 bytes
  G1Point381 g1_from_bytes(ByteSpan bytes) const;

  // --- G2 (twist coordinates) --------------------------------------------
  G2Point381 g2_infinity() const;
  G2Point381 g2_add(const G2Point381& a, const G2Point381& b) const;
  G2Point381 g2_neg(const G2Point381& a) const;
  G2Point381 g2_mul(const G2Point381& a, const Scalar& k) const;
  bool g2_eq(const G2Point381& a, const G2Point381& b) const;
  bool g2_on_curve(const G2Point381& a) const;
  bool g2_in_subgroup(const G2Point381& a) const;
  Bytes g2_to_bytes(const G2Point381& a) const;  // 193 bytes (re|im x, y sign)
  G2Point381 g2_from_bytes(ByteSpan bytes) const;

  // --- Pairing -------------------------------------------------------------
  /// ê(P, Q) for P ∈ G_1, Q ∈ G_2; returns 1 when either is infinity.
  Gt381 pair(const G1Point381& p, const G2Point381& q) const;

  /// ê(a1, a2) == ê(b1, b2) (the scheme's verification shape).
  bool pairings_equal(const G1Point381& a1, const G2Point381& a2,
                      const G1Point381& b1, const G2Point381& b2) const;

  Gt381 gt_pow(const Gt381& a, const Scalar& e) const;
  bool gt_eq(const Gt381& a, const Gt381& b) const { return fp12_eq(a, b); }
  Bytes gt_to_bytes(const Gt381& a) const { return fp12_to_bytes(a); }

  /// Uniform scalar in [1, r).
  Scalar random_scalar(tre::hashing::RandomSource& rng) const;

 private:
  Bls12Ctx();

  // Untwist E'(F_p2) -> E(F_p12): (x, y) -> (x/w², y/w³).
  struct PointFp12 {
    Fp12 x, y;
    bool inf = true;
  };
  PointFp12 untwist(const G2Point381& q) const;
  PointFp12 fp12_point_frobenius(const PointFp12& a) const;
  Fp12 miller_ate(const G1Point381& p, const G2Point381& q) const;
  Fp12 final_exponentiation(const Fp12& f) const;

  std::uint64_t abs_z_;
  std::shared_ptr<const FpCtx> fp_;
  std::shared_ptr<const FpCtx> fr_;
  std::unique_ptr<TowerCtx> tower_;
  FpInt g1_cofactor_;                 // (z-1)²/3
  FpInt g2_cofactor_;                 // #E'(F_p2)/r — derived + validated
  bigint::BigInt<24> hard_exponent_;  // (p⁴ - p² + 1)/r
  Fp2 twist_b_;                       // 4(1+u)
  Fp12 w2_inv_, w3_inv_;              // untwist constants
  G1Point381 g1_gen_;
  G2Point381 g2_gen_;
};

}  // namespace tre::bls12
