#include "bls12/tower.h"

#include "common/error.h"

namespace tre::bls12 {

TowerCtx::TowerCtx(const FpCtx* fp_ctx) : fp(fp_ctx) {
  require(fp != nullptr, "TowerCtx: null field");
  xi = Fp2(Fp::one(fp), Fp::one(fp));  // 1 + u

  // (p - 1) / 6 must be exact for the sextic tower to close.
  FpInt p_minus_1 = bigint::sub(fp->p, FpInt::from_u64(1));
  FpInt e, rem;
  bigint::divmod(p_minus_1, FpInt::from_u64(6), e, rem);
  require(rem.is_zero(), "TowerCtx: p != 1 (mod 6)");

  frob_gamma[0] = Fp2::one(fp);
  frob_gamma[1] = xi.pow(e);
  for (size_t k = 2; k < 6; ++k) frob_gamma[k] = frob_gamma[k - 1] * frob_gamma[1];
  // γ_1 must have multiplicative order 12 over the conjugation action;
  // in particular it cannot be 1, or ξ is a 6th power and the tower is
  // degenerate.
  require(!frob_gamma[1].is_one(), "TowerCtx: xi is a sextic residue");
}

// --- F_p6 ----------------------------------------------------------------------

Fp6 fp6_zero(const TowerCtx& t) {
  return Fp6{Fp2::zero(t.fp), Fp2::zero(t.fp), Fp2::zero(t.fp)};
}

Fp6 fp6_one(const TowerCtx& t) {
  return Fp6{Fp2::one(t.fp), Fp2::zero(t.fp), Fp2::zero(t.fp)};
}

bool fp6_is_zero(const Fp6& a) {
  return a.c0.is_zero() && a.c1.is_zero() && a.c2.is_zero();
}

bool fp6_eq(const Fp6& a, const Fp6& b) {
  return a.c0 == b.c0 && a.c1 == b.c1 && a.c2 == b.c2;
}

Fp6 fp6_add(const Fp6& a, const Fp6& b) {
  return Fp6{a.c0 + b.c0, a.c1 + b.c1, a.c2 + b.c2};
}

Fp6 fp6_sub(const Fp6& a, const Fp6& b) {
  return Fp6{a.c0 - b.c0, a.c1 - b.c1, a.c2 - b.c2};
}

Fp6 fp6_neg(const Fp6& a) { return Fp6{-a.c0, -a.c1, -a.c2}; }

Fp6 fp6_mul(const TowerCtx& t, const Fp6& a, const Fp6& b) {
  // Schoolbook with v³ = ξ.
  Fp2 a0b0 = a.c0 * b.c0, a0b1 = a.c0 * b.c1, a0b2 = a.c0 * b.c2;
  Fp2 a1b0 = a.c1 * b.c0, a1b1 = a.c1 * b.c1, a1b2 = a.c1 * b.c2;
  Fp2 a2b0 = a.c2 * b.c0, a2b1 = a.c2 * b.c1, a2b2 = a.c2 * b.c2;
  return Fp6{a0b0 + t.xi * (a1b2 + a2b1), a0b1 + a1b0 + t.xi * a2b2,
             a0b2 + a1b1 + a2b0};
}

Fp6 fp6_sqr(const TowerCtx& t, const Fp6& a) { return fp6_mul(t, a, a); }

Fp6 fp6_inv(const TowerCtx& t, const Fp6& a) {
  require(!fp6_is_zero(a), "fp6_inv: zero");
  // Standard tower inversion.
  Fp2 big_a = a.c0.squared() - t.xi * (a.c1 * a.c2);
  Fp2 big_b = t.xi * a.c2.squared() - a.c0 * a.c1;
  Fp2 big_c = a.c1.squared() - a.c0 * a.c2;
  Fp2 f = a.c0 * big_a + t.xi * (a.c2 * big_b + a.c1 * big_c);
  Fp2 finv = f.inverse();
  return Fp6{big_a * finv, big_b * finv, big_c * finv};
}

Fp6 fp6_mul_by_v(const TowerCtx& t, const Fp6& a) {
  return Fp6{t.xi * a.c2, a.c0, a.c1};
}

// --- F_p12 ---------------------------------------------------------------------

Fp12 fp12_zero(const TowerCtx& t) { return Fp12{fp6_zero(t), fp6_zero(t)}; }

Fp12 fp12_one(const TowerCtx& t) { return Fp12{fp6_one(t), fp6_zero(t)}; }

bool fp12_is_one(const TowerCtx& t, const Fp12& a) {
  return fp6_eq(a.c0, fp6_one(t)) && fp6_is_zero(a.c1);
}

bool fp12_eq(const Fp12& a, const Fp12& b) {
  return fp6_eq(a.c0, b.c0) && fp6_eq(a.c1, b.c1);
}

Fp12 fp12_add(const Fp12& a, const Fp12& b) {
  return Fp12{fp6_add(a.c0, b.c0), fp6_add(a.c1, b.c1)};
}

Fp12 fp12_sub(const Fp12& a, const Fp12& b) {
  return Fp12{fp6_sub(a.c0, b.c0), fp6_sub(a.c1, b.c1)};
}

Fp12 fp12_neg(const Fp12& a) { return Fp12{fp6_neg(a.c0), fp6_neg(a.c1)}; }

Fp12 fp12_mul(const TowerCtx& t, const Fp12& a, const Fp12& b) {
  // Karatsuba over w² = v.
  Fp6 t0 = fp6_mul(t, a.c0, b.c0);
  Fp6 t1 = fp6_mul(t, a.c1, b.c1);
  Fp6 mixed = fp6_mul(t, fp6_add(a.c0, a.c1), fp6_add(b.c0, b.c1));
  return Fp12{fp6_add(t0, fp6_mul_by_v(t, t1)),
              fp6_sub(fp6_sub(mixed, t0), t1)};
}

Fp12 fp12_sqr(const TowerCtx& t, const Fp12& a) { return fp12_mul(t, a, a); }

Fp12 fp12_inv(const TowerCtx& t, const Fp12& a) {
  // (a0 − a1 w) / (a0² − v a1²)
  Fp6 denom = fp6_sub(fp6_sqr(t, a.c0), fp6_mul_by_v(t, fp6_sqr(t, a.c1)));
  Fp6 dinv = fp6_inv(t, denom);
  return Fp12{fp6_mul(t, a.c0, dinv), fp6_neg(fp6_mul(t, a.c1, dinv))};
}

Fp12 fp12_from_fp(const TowerCtx& t, const Fp& a) {
  Fp12 r = fp12_zero(t);
  r.c0.c0 = Fp2::from_fp(a);
  return r;
}

Fp12 fp12_from_fp2(const TowerCtx& t, const Fp2& a) {
  Fp12 r = fp12_zero(t);
  r.c0.c0 = a;
  return r;
}

Fp12 fp12_frobenius(const TowerCtx& t, const Fp12& a) {
  // Basis monomials w^m, m = i + 2j for coefficient (i, j):
  //   (w^m)^p = γ_m · w^m, coefficients conjugated.
  Fp12 r;
  r.c0.c0 = a.c0.c0.conjugate();                       // m = 0
  r.c0.c1 = a.c0.c1.conjugate() * t.frob_gamma[2];     // v   (m = 2)
  r.c0.c2 = a.c0.c2.conjugate() * t.frob_gamma[4];     // v²  (m = 4)
  r.c1.c0 = a.c1.c0.conjugate() * t.frob_gamma[1];     // w   (m = 1)
  r.c1.c1 = a.c1.c1.conjugate() * t.frob_gamma[3];     // wv  (m = 3)
  r.c1.c2 = a.c1.c2.conjugate() * t.frob_gamma[5];     // wv² (m = 5)
  return r;
}

Bytes fp12_to_bytes(const Fp12& a) {
  return concat({a.c0.c0.to_bytes(), a.c0.c1.to_bytes(), a.c0.c2.to_bytes(),
                 a.c1.c0.to_bytes(), a.c1.c1.to_bytes(), a.c1.c2.to_bytes()});
}

}  // namespace tre::bls12
