#include "bls12/tower.h"

#include "common/error.h"

namespace tre::bls12 {

TowerCtx::TowerCtx(const FpCtx* fp_ctx) : fp(fp_ctx) {
  require(fp != nullptr, "TowerCtx: null field");
  xi = Fp2(Fp::one(fp), Fp::one(fp));  // 1 + u

  // (p - 1) / 6 must be exact for the sextic tower to close.
  FpInt p_minus_1 = bigint::sub(fp->p, FpInt::from_u64(1));
  FpInt e, rem;
  bigint::divmod(p_minus_1, FpInt::from_u64(6), e, rem);
  require(rem.is_zero(), "TowerCtx: p != 1 (mod 6)");

  frob_gamma[0] = Fp2::one(fp);
  frob_gamma[1] = xi.pow(e);
  for (size_t k = 2; k < 6; ++k) frob_gamma[k] = frob_gamma[k - 1] * frob_gamma[1];
  // γ_1 must have multiplicative order 12 over the conjugation action;
  // in particular it cannot be 1, or ξ is a 6th power and the tower is
  // degenerate.
  require(!frob_gamma[1].is_one(), "TowerCtx: xi is a sextic residue");
}

namespace {

/// Multiplication by ξ = 1 + u, the constant the tower constructor pins:
/// (a + bu)(1 + u) = (a − b) + (a + b)u — two base-field additions
/// instead of the three multiplications a generic F_p2 product costs.
/// Every ξ· below is on a hot path (F_p6/F_p12 reduction terms, the
/// cyclotomic squaring), so this is one of the larger constant-factor
/// wins in the whole pairing.
inline Fp2 mul_by_xi(const Fp2& a) {
  return Fp2(a.re() - a.im(), a.re() + a.im());
}

}  // namespace

// --- F_p6 ----------------------------------------------------------------------

Fp6 fp6_zero(const TowerCtx& t) {
  return Fp6{Fp2::zero(t.fp), Fp2::zero(t.fp), Fp2::zero(t.fp)};
}

Fp6 fp6_one(const TowerCtx& t) {
  return Fp6{Fp2::one(t.fp), Fp2::zero(t.fp), Fp2::zero(t.fp)};
}

bool fp6_is_zero(const Fp6& a) {
  return a.c0.is_zero() && a.c1.is_zero() && a.c2.is_zero();
}

bool fp6_eq(const Fp6& a, const Fp6& b) {
  return a.c0 == b.c0 && a.c1 == b.c1 && a.c2 == b.c2;
}

Fp6 fp6_add(const Fp6& a, const Fp6& b) {
  return Fp6{a.c0 + b.c0, a.c1 + b.c1, a.c2 + b.c2};
}

Fp6 fp6_sub(const Fp6& a, const Fp6& b) {
  return Fp6{a.c0 - b.c0, a.c1 - b.c1, a.c2 - b.c2};
}

Fp6 fp6_neg(const Fp6& a) { return Fp6{-a.c0, -a.c1, -a.c2}; }

Fp6 fp6_mul(const TowerCtx& /*t*/, const Fp6& a, const Fp6& b) {
  // Toom/Karatsuba with v³ = ξ: 6 Fp2 muls instead of the schoolbook 9.
  Fp2 t0 = a.c0 * b.c0;
  Fp2 t1 = a.c1 * b.c1;
  Fp2 t2 = a.c2 * b.c2;
  Fp2 c0 = t0 + mul_by_xi((a.c1 + a.c2) * (b.c1 + b.c2) - t1 - t2);
  Fp2 c1 = (a.c0 + a.c1) * (b.c0 + b.c1) - t0 - t1 + mul_by_xi(t2);
  Fp2 c2 = (a.c0 + a.c2) * (b.c0 + b.c2) - t0 - t2 + t1;
  return Fp6{c0, c1, c2};
}

Fp6 fp6_sqr(const TowerCtx& /*t*/, const Fp6& a) {
  // CH-SQR: 2 Fp2 squarings + 3 Fp2 muls.
  Fp2 s0 = a.c0.squared();
  Fp2 cross = a.c1 * a.c2;
  Fp2 s1 = a.c0 * a.c1;
  Fp2 s2 = a.c1.squared();
  Fp2 s3 = a.c0 * a.c2;
  return Fp6{s0 + mul_by_xi(cross + cross), s1 + s1 + mul_by_xi(a.c2.squared()),
             s2 + s3 + s3};
}

Fp6 fp6_mul_by_01(const TowerCtx& /*t*/, const Fp6& a, const Fp2& b0, const Fp2& b1) {
  Fp2 t0 = a.c0 * b0;
  Fp2 t1 = a.c1 * b1;
  Fp2 c0 = mul_by_xi((a.c1 + a.c2) * b1 - t1) + t0;
  Fp2 c1 = (a.c0 + a.c1) * (b0 + b1) - t0 - t1;
  Fp2 c2 = (a.c0 + a.c2) * b0 - t0 + t1;
  return Fp6{c0, c1, c2};
}

Fp6 fp6_mul_by_1(const TowerCtx& /*t*/, const Fp6& a, const Fp2& b1) {
  return Fp6{mul_by_xi(a.c2 * b1), a.c0 * b1, a.c1 * b1};
}

Fp6 fp6_inv(const TowerCtx& /*t*/, const Fp6& a) {
  require(!fp6_is_zero(a), "fp6_inv: zero");
  // Standard tower inversion.
  Fp2 big_a = a.c0.squared() - mul_by_xi(a.c1 * a.c2);
  Fp2 big_b = mul_by_xi(a.c2.squared()) - a.c0 * a.c1;
  Fp2 big_c = a.c1.squared() - a.c0 * a.c2;
  Fp2 f = a.c0 * big_a + mul_by_xi(a.c2 * big_b + a.c1 * big_c);
  Fp2 finv = f.inverse();
  return Fp6{big_a * finv, big_b * finv, big_c * finv};
}

Fp6 fp6_mul_by_v(const TowerCtx& /*t*/, const Fp6& a) {
  return Fp6{mul_by_xi(a.c2), a.c0, a.c1};
}

// --- F_p12 ---------------------------------------------------------------------

Fp12 fp12_zero(const TowerCtx& t) { return Fp12{fp6_zero(t), fp6_zero(t)}; }

Fp12 fp12_one(const TowerCtx& t) { return Fp12{fp6_one(t), fp6_zero(t)}; }

bool fp12_is_one(const TowerCtx& t, const Fp12& a) {
  return fp6_eq(a.c0, fp6_one(t)) && fp6_is_zero(a.c1);
}

bool fp12_eq(const Fp12& a, const Fp12& b) {
  return fp6_eq(a.c0, b.c0) && fp6_eq(a.c1, b.c1);
}

Fp12 fp12_add(const Fp12& a, const Fp12& b) {
  return Fp12{fp6_add(a.c0, b.c0), fp6_add(a.c1, b.c1)};
}

Fp12 fp12_sub(const Fp12& a, const Fp12& b) {
  return Fp12{fp6_sub(a.c0, b.c0), fp6_sub(a.c1, b.c1)};
}

Fp12 fp12_neg(const Fp12& a) { return Fp12{fp6_neg(a.c0), fp6_neg(a.c1)}; }

Fp12 fp12_mul(const TowerCtx& t, const Fp12& a, const Fp12& b) {
  // Karatsuba over w² = v.
  Fp6 t0 = fp6_mul(t, a.c0, b.c0);
  Fp6 t1 = fp6_mul(t, a.c1, b.c1);
  Fp6 mixed = fp6_mul(t, fp6_add(a.c0, a.c1), fp6_add(b.c0, b.c1));
  return Fp12{fp6_add(t0, fp6_mul_by_v(t, t1)),
              fp6_sub(fp6_sub(mixed, t0), t1)};
}

Fp12 fp12_sqr(const TowerCtx& t, const Fp12& a) {
  // Complex squaring over w² = v: 2 Fp6 muls.
  Fp6 ab = fp6_mul(t, a.c0, a.c1);
  Fp6 c0 = fp6_sub(
      fp6_sub(fp6_mul(t, fp6_add(a.c0, a.c1), fp6_add(a.c0, fp6_mul_by_v(t, a.c1))),
              ab),
      fp6_mul_by_v(t, ab));
  return Fp12{c0, fp6_add(ab, ab)};
}

Fp12 fp12_conjugate(const Fp12& a) { return Fp12{a.c0, fp6_neg(a.c1)}; }

Fp12 fp12_mul_by_014(const TowerCtx& t, const Fp12& a, const Fp2& c0,
                     const Fp2& c1, const Fp2& c4) {
  // ℓ = (c0 + c1·v) + (c4·v)·w; Karatsuba over w² = v.
  Fp6 aa = fp6_mul_by_01(t, a.c0, c0, c1);
  Fp6 bb = fp6_mul_by_1(t, a.c1, c4);
  Fp6 hi = fp6_mul_by_01(t, fp6_add(a.c0, a.c1), c0, c1 + c4);
  return Fp12{fp6_add(aa, fp6_mul_by_v(t, bb)),
              fp6_sub(fp6_sub(hi, aa), bb)};
}

Fp12 fp12_cyclotomic_sqr(const TowerCtx& /*t*/, const Fp12& a) {
  // Granger–Scott. View F_p12 = F_p4[w]/(w³ − s) with F_p4 = F_p2[s],
  // s² = ξ (s = vw): the element regroups into three F_p4 components
  //   g0 = (a.c0.c0, a.c1.c1), g1 = (a.c1.c0, a.c0.c2),
  //   g2 = (a.c0.c1, a.c1.c2)
  // and for cyclotomic a the square is
  //   h0 = 3g0² − 2ḡ0,  h1 = 3s·g2² + 2ḡ1,  h2 = 3g1² − 2ḡ2
  // (bars are the F_p4 conjugation s -> −s).
  const Fp2& z0 = a.c0.c0;
  const Fp2& z1 = a.c1.c1;
  const Fp2& z2 = a.c1.c0;
  const Fp2& z3 = a.c0.c2;
  const Fp2& z4 = a.c0.c1;
  const Fp2& z5 = a.c1.c2;
  // (x + y·s)² = (x² + ξy²) + 2xy·s, via one cross product.
  auto fp4_sqr = [&](const Fp2& x, const Fp2& y, Fp2& re, Fp2& im) {
    Fp2 cross = x * y;
    re = (x + y) * (x + mul_by_xi(y)) - cross - mul_by_xi(cross);
    im = cross + cross;
  };
  Fp2 t0, t1, t2, t3, t4, t5;
  fp4_sqr(z0, z1, t0, t1);  // g0²
  fp4_sqr(z2, z3, t2, t3);  // g1²
  fp4_sqr(z4, z5, t4, t5);  // g2²
  Fp12 r;
  // h0 = 3g0² − 2ḡ0.
  r.c0.c0 = (t0 - z0) + (t0 - z0) + t0;
  r.c1.c1 = (t1 + z1) + (t1 + z1) + t1;
  // h1 = 3s·g2² + 2ḡ1; s·(t4 + t5·s) = ξt5 + t4·s.
  Fp2 xi_t5 = mul_by_xi(t5);
  r.c1.c0 = (xi_t5 + z2) + (xi_t5 + z2) + xi_t5;
  r.c0.c2 = (t4 - z3) + (t4 - z3) + t4;
  // h2 = 3g1² − 2ḡ2.
  r.c0.c1 = (t2 - z4) + (t2 - z4) + t2;
  r.c1.c2 = (t3 + z5) + (t3 + z5) + t3;
  return r;
}

Fp12 fp12_inv(const TowerCtx& t, const Fp12& a) {
  // (a0 − a1 w) / (a0² − v a1²)
  Fp6 denom = fp6_sub(fp6_sqr(t, a.c0), fp6_mul_by_v(t, fp6_sqr(t, a.c1)));
  Fp6 dinv = fp6_inv(t, denom);
  return Fp12{fp6_mul(t, a.c0, dinv), fp6_neg(fp6_mul(t, a.c1, dinv))};
}

Fp12 fp12_from_fp(const TowerCtx& t, const Fp& a) {
  Fp12 r = fp12_zero(t);
  r.c0.c0 = Fp2::from_fp(a);
  return r;
}

Fp12 fp12_from_fp2(const TowerCtx& t, const Fp2& a) {
  Fp12 r = fp12_zero(t);
  r.c0.c0 = a;
  return r;
}

Fp12 fp12_frobenius(const TowerCtx& t, const Fp12& a) {
  // Basis monomials w^m, m = i + 2j for coefficient (i, j):
  //   (w^m)^p = γ_m · w^m, coefficients conjugated.
  Fp12 r;
  r.c0.c0 = a.c0.c0.conjugate();                       // m = 0
  r.c0.c1 = a.c0.c1.conjugate() * t.frob_gamma[2];     // v   (m = 2)
  r.c0.c2 = a.c0.c2.conjugate() * t.frob_gamma[4];     // v²  (m = 4)
  r.c1.c0 = a.c1.c0.conjugate() * t.frob_gamma[1];     // w   (m = 1)
  r.c1.c1 = a.c1.c1.conjugate() * t.frob_gamma[3];     // wv  (m = 3)
  r.c1.c2 = a.c1.c2.conjugate() * t.frob_gamma[5];     // wv² (m = 5)
  return r;
}

Bytes fp12_to_bytes(const Fp12& a) {
  return concat({a.c0.c0.to_bytes(), a.c0.c1.to_bytes(), a.c0.c2.to_bytes(),
                 a.c1.c0.to_bytes(), a.c1.c1.to_bytes(), a.c1.c2.to_bytes()});
}

}  // namespace tre::bls12
