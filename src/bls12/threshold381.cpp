#include "bls12/threshold381.h"

#include <algorithm>

#include "core/wipe.h"

namespace tre::bls12 {

std::pair<ThresholdKey381, std::vector<Share381>> Threshold381::setup(
    size_t n, size_t k, tre::hashing::RandomSource& rng) const {
  require(k >= 1 && k <= n && n >= 1 && n < 4096, "Threshold381: need 1 <= k <= n");
  const FpCtx* fr = ctx_->fr();

  std::vector<Fp> coeffs;
  coeffs.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    coeffs.push_back(Fp::from_int(fr, ctx_->random_scalar(rng)));
  }

  ThresholdKey381 key;
  key.n = n;
  key.k = k;
  key.group_pk = ctx_->g2_mul(ctx_->g2_generator(), coeffs[0].to_int());

  std::vector<Share381> shares;
  shares.reserve(n);
  for (size_t i = 1; i <= n; ++i) {
    Fp x = Fp::from_u64(fr, static_cast<std::uint64_t>(i));
    Fp acc = coeffs.back();
    for (size_t c = coeffs.size() - 1; c-- > 0;) acc = acc * x + coeffs[c];
    Scalar share = acc.to_int();
    shares.push_back(Share381{i, share});
    key.share_pks.push_back(ctx_->g2_mul(ctx_->g2_generator(), share));
  }
  return {std::move(key), std::move(shares)};
}

Partial381 Threshold381::issue_partial(const Share381& share,
                                       std::string_view tag) const {
  return Partial381{share.index, std::string(tag),
                    ctx_->g1_mul(ctx_->hash_to_g1(to_bytes(tag)), share.share)};
}

bool Threshold381::verify_partial(const ThresholdKey381& key,
                                  const Partial381& partial) const {
  if (partial.index < 1 || partial.index > key.share_pks.size()) return false;
  if (partial.sig.inf) return false;
  return ctx_->pairings_equal(partial.sig, ctx_->g2_generator(),
                              ctx_->hash_to_g1(to_bytes(partial.tag)),
                              key.share_pks[partial.index - 1]);
}

Update381 Threshold381::combine(const ThresholdKey381& key,
                                std::span<const Partial381> partials) const {
  require(partials.size() >= key.k, "Threshold381::combine: below threshold");
  std::vector<const Partial381*> chosen;
  for (const auto& p : partials) {
    require(p.tag == partials.front().tag, "Threshold381::combine: mixed tags");
    require(p.index >= 1 && p.index <= key.n, "Threshold381::combine: bad index");
    bool dup = std::any_of(chosen.begin(), chosen.end(),
                           [&](const Partial381* q) { return q->index == p.index; });
    require(!dup, "Threshold381::combine: duplicate index");
    chosen.push_back(&p);
    if (chosen.size() == key.k) break;
  }
  require(chosen.size() == key.k, "Threshold381::combine: not enough partials");

  const FpCtx* fr = ctx_->fr();
  G1Point381 combined = ctx_->g1_infinity();
  for (const Partial381* pi : chosen) {
    Fp num = Fp::one(fr);
    Fp den = Fp::one(fr);
    Fp xi = Fp::from_u64(fr, static_cast<std::uint64_t>(pi->index));
    for (const Partial381* pj : chosen) {
      if (pj == pi) continue;
      Fp xj = Fp::from_u64(fr, static_cast<std::uint64_t>(pj->index));
      num = num * xj;
      den = den * (xj - xi);
    }
    Fp lambda = num * den.inverse();
    combined = ctx_->g1_add(combined, ctx_->g1_mul(pi->sig, lambda.to_int()));
  }
  return Update381{partials.front().tag, combined};
}

void wipe(Share381& share) {
  core::wipe(share.share);
  share.index = 0;
}

void wipe(ThresholdKey381& key) {
  key.group_pk = G2Point381{};
  for (G2Point381& pk : key.share_pks) pk = G2Point381{};
  key.share_pks.clear();
  key.n = 0;
  key.k = 0;
}

}  // namespace tre::bls12
