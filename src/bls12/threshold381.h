// k-of-n threshold time service on BLS12-381 — structurally identical to
// the drand network that tlock builds timed release on: operators hold
// Shamir shares of s, publish partial G_1 signatures on the round/time
// tag, and any k of them combine into the ordinary 48-byte update that
// decrypts Tre381 ciphertexts.
//
// The implementation lives in the backend-generic layer
// (threshold/threshold.h, DKG in threshold/dkg.h); these are the
// BLS12-381 instantiations under the historical names. The group key
// uses the context's fixed G_2 generator (the drand layout), so
// `ThresholdKey381::as_server_public_key()` keeps producing a key that
// verifies and decrypts through Tre381Scheme exactly like a
// single-server key with G = G_2gen.
#pragma once

#include "bls12/backend381.h"
#include "bls12/tre381.h"
#include "threshold/threshold.h"

namespace tre::bls12 {

/// Public material: the group key s·G_2 users bind to (`.group`), plus
/// per-operator share commitments s_i·G_2 (`.pub_shares`).
using ThresholdKey381 = threshold::BasicThresholdKey<Bls381Backend>;

/// One operator's Shamir share s_i (zeroize with threshold::wipe).
using Share381 = threshold::BasicServerShare<Bls381Backend>;

/// s_i·H1(tag): one operator's partial G_1 signature.
using Partial381 = threshold::BasicPartialUpdate<Bls381Backend>;

using Threshold381 = threshold::BasicThresholdScheme<Bls381Backend>;

}  // namespace tre::bls12
