// k-of-n threshold time service on BLS12-381 — structurally identical to
// the drand network that tlock builds timed release on: operators hold
// Shamir shares of s, publish partial G_1 signatures on the round/time
// tag, and any k of them combine into the ordinary 48-byte update that
// decrypts Tre381 ciphertexts.
#pragma once

#include <span>
#include <vector>

#include "bls12/tre381.h"

namespace tre::bls12 {

struct ThresholdKey381 {
  size_t n = 0;
  size_t k = 0;
  G2Point381 group_pk;                    // s·G_2: what users bind to
  std::vector<G2Point381> share_pks;      // s_i·G_2 per operator

  /// The group key viewed as a generic scheme server key: the threshold
  /// service uses the context's fixed G_2 generator (the drand layout),
  /// so combined updates verify and decrypt through Tre381Scheme exactly
  /// like a single-server key with G = G_2gen.
  ServerPublicKey381 as_server_public_key() const {
    return ServerPublicKey381{Bls12Ctx::get()->g2_generator(), group_pk};
  }
};

struct Share381 {
  size_t index;  // 1..n
  Scalar share;
};

struct Partial381 {
  size_t index;
  std::string tag;
  G1Point381 sig;  // s_i·H1(tag)
};

class Threshold381 {
 public:
  Threshold381() : ctx_(Bls12Ctx::get()) {}

  /// Dealer-based setup (a DKG can replace the dealer, same types).
  std::pair<ThresholdKey381, std::vector<Share381>> setup(
      size_t n, size_t k, tre::hashing::RandomSource& rng) const;

  Partial381 issue_partial(const Share381& share, std::string_view tag) const;

  /// ê(sig, G_2) == ê(H1(tag), s_i·G_2).
  bool verify_partial(const ThresholdKey381& key, const Partial381& partial) const;

  /// Lagrange combination of >= k distinct-index partials (same tag)
  /// into a standard Update381 for the group key.
  Update381 combine(const ThresholdKey381& key,
                    std::span<const Partial381> partials) const;

 private:
  std::shared_ptr<const Bls12Ctx> ctx_;
};

/// Zeroizes an operator's Shamir share (the scalar limbs are volatile-
/// cleared via core::wipe).
void wipe(Share381& share);

/// Structural reset of the group key material: points to infinity, share
/// list dropped, parameters zeroed. The group key is public, but a
/// decommissioned service should not leave stale trust anchors around.
void wipe(ThresholdKey381& key);

}  // namespace tre::bls12
