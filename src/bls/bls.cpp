#include "bls/bls.h"

#include <set>

#include "pairing/pairing.h"

namespace tre::bls {

using ec::G1Point;

BlsScheme::BlsScheme(std::shared_ptr<const params::GdhParams> params)
    : params_(std::move(params)) {
  require(params_ != nullptr, "BlsScheme: null params");
}

KeyPair BlsScheme::keygen(tre::hashing::RandomSource& rng) const {
  Scalar h = params::random_scalar(*params_, rng);
  Scalar sk = params::random_scalar(*params_, rng);
  G1Point g = params_->base.mul(h);
  return KeyPair{sk, g, g.mul(sk)};
}

Signature BlsScheme::sign(const KeyPair& keys, ByteSpan msg) const {
  return Signature{ec::hash_to_g1(params_->ctx(), msg).mul(keys.sk)};
}

bool BlsScheme::verify(const G1Point& g, const G1Point& pk, ByteSpan msg,
                       const Signature& sig) const {
  if (sig.sig.is_infinity()) return false;
  return pairing::pairings_equal(pk, ec::hash_to_g1(params_->ctx(), msg), g, sig.sig);
}

Signature BlsScheme::aggregate(std::span<const SignedMessage> batch) const {
  require(!batch.empty(), "BlsScheme::aggregate: empty batch");
  G1Point sum = G1Point::infinity(params_->ctx());
  for (const auto& sm : batch) sum = sum + sm.sig.sig;
  return Signature{sum};
}

bool BlsScheme::verify_aggregate(const G1Point& g, const G1Point& pk,
                                 std::span<const std::string> msgs,
                                 const Signature& aggregate_sig) const {
  if (msgs.empty() || aggregate_sig.sig.is_infinity()) return false;
  std::set<std::string_view> distinct(msgs.begin(), msgs.end());
  if (distinct.size() != msgs.size()) return false;
  G1Point hsum = G1Point::infinity(params_->ctx());
  for (const auto& m : msgs) hsum = hsum + ec::hash_to_g1(params_->ctx(), to_bytes(m));
  return pairing::pairings_equal(pk, hsum, g, aggregate_sig.sig);
}

bool BlsScheme::verify_batch(const G1Point& g, const G1Point& pk,
                             std::span<const SignedMessage> batch,
                             tre::hashing::RandomSource& rng) const {
  if (batch.empty()) return true;
  G1Point sig_sum = G1Point::infinity(params_->ctx());
  G1Point hash_sum = G1Point::infinity(params_->ctx());
  for (const auto& sm : batch) {
    if (sm.sig.sig.is_infinity()) return false;
    Bytes wb = rng.bytes(8);
    Scalar w = Scalar::from_bytes_be(wb);
    if (w.is_zero()) w = Scalar::from_u64(1);
    sig_sum = sig_sum + sm.sig.sig.mul(w);
    hash_sum = hash_sum + ec::hash_to_g1(params_->ctx(), to_bytes(sm.msg)).mul(w);
  }
  return pairing::pairings_equal(pk, hash_sum, g, sig_sum);
}

}  // namespace tre::bls
