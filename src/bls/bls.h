// Boneh-Lynn-Shacham short signatures over the GDH group [5].
//
// The paper's §5.3.1 observation made first-class: a time-bound key
// update IS the BLS signature s·H1(T), self-authenticating against the
// public key (G, sG). This module exposes the signature scheme on its
// own, plus the two group-structure features the TRE deployment benefits
// from:
//   * aggregation — n signatures (same signer, distinct messages)
//     compress to one group element, verified with one pairing product;
//   * randomized batch verification — a receiver catching up on an
//     archive of n updates validates all of them with 2 pairings instead
//     of 2n (each signature is weighted by a random scalar so a forgery
//     cannot hide in the sum).
#pragma once

#include <span>
#include <string>

#include "ec/curve.h"
#include "hashing/drbg.h"
#include "params/params.h"

namespace tre::bls {

using Scalar = field::FpInt;

struct KeyPair {
  Scalar sk;
  ec::G1Point g;   // signer-chosen generator
  ec::G1Point pk;  // sk·g
};

struct Signature {
  ec::G1Point sig;  // sk·H1(msg)
};

/// A (message, signature) pair for aggregate/batch APIs.
struct SignedMessage {
  std::string msg;
  Signature sig;
};

class BlsScheme {
 public:
  explicit BlsScheme(std::shared_ptr<const params::GdhParams> params);

  const params::GdhParams& params() const { return *params_; }

  KeyPair keygen(tre::hashing::RandomSource& rng) const;

  Signature sign(const KeyPair& keys, ByteSpan msg) const;

  /// ê(pk, H1(m)) == ê(g, sig).
  bool verify(const ec::G1Point& g, const ec::G1Point& pk, ByteSpan msg,
              const Signature& sig) const;

  /// Σ sig_i: one group element regardless of n.
  Signature aggregate(std::span<const SignedMessage> batch) const;

  /// Verifies an aggregate of the same signer over distinct messages:
  /// ê(g, Σ sig_i) == ê(pk, Σ H1(m_i)). Messages must be distinct
  /// (rogue-aggregation over repeated messages is rejected).
  bool verify_aggregate(const ec::G1Point& g, const ec::G1Point& pk,
                        std::span<const std::string> msgs,
                        const Signature& aggregate_sig) const;

  /// Randomized batch verification of n individual signatures by one
  /// signer: picks random 64-bit weights w_i and checks
  /// ê(g, Σ w_i·sig_i) == ê(pk, Σ w_i·H1(m_i)). A single invalid
  /// signature escapes detection with probability 2^-64.
  bool verify_batch(const ec::G1Point& g, const ec::G1Point& pk,
                    std::span<const SignedMessage> batch,
                    tre::hashing::RandomSource& rng) const;

 private:
  std::shared_ptr<const params::GdhParams> params_;
};

}  // namespace tre::bls
