// The Gap Diffie-Hellman group G_1.
//
// E : y^2 = x^3 + 1 over F_p with p = 12*q*r - 1 (p, q prime). Because
// p ≡ 2 (mod 3), E is supersingular with #E(F_p) = p + 1 = 12*q*r, and
// G_1 is its order-q subgroup. Because p ≡ 3 (mod 4), F_p2 = F_p[i] and
// the curve has embedding degree 2: q | p^2 - 1.
//
// This is exactly the class of curves the paper (via Boneh-Franklin [4]
// and BLS [5]) instantiates its GDH group with.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "field/fp.h"
#include "field/fp2.h"

namespace tre::ec {

struct CurveCtx {
  std::string name;
  std::shared_ptr<const field::FpCtx> fp;  // base field F_p
  std::shared_ptr<const field::FpCtx> fq;  // scalar field Z_q
  field::FpInt p;
  field::FpInt q;
  field::FpInt cofactor;        // (p+1)/q = 12*r
  field::FpInt cube_root_exp;   // (2p-1)/3: x -> x^e is the cube root map
  field::Fp2 zeta;              // primitive cube root of unity in F_p2 \ F_p

  /// Builds the context; validates p ≡ 3 (mod 4), p ≡ 2 (mod 3), and
  /// q | p + 1, and derives zeta = (-1 + sqrt(3)·i) / 2.
  static std::shared_ptr<const CurveCtx> create(std::string name,
                                                const field::FpInt& p,
                                                const field::FpInt& q);
};

class G1Point {
 public:
  G1Point() = default;  // null point: usable only as assignment target

  static G1Point infinity(const CurveCtx* curve);

  /// Constructs from affine coordinates; throws if (x, y) is off-curve.
  static G1Point make(const CurveCtx* curve, const field::Fp& x, const field::Fp& y);

  bool is_infinity() const { return infinity_; }
  const field::Fp& x() const;
  const field::Fp& y() const;
  const CurveCtx* curve() const { return curve_; }

  G1Point operator+(const G1Point& o) const;
  G1Point operator-() const;
  G1Point operator-(const G1Point& o) const { return *this + (-o); }
  G1Point doubled() const;

  /// Variable-base scalar multiplication (Jacobian width-4 wNAF). Variable
  /// time in the scalar: use for PUBLIC scalars only.
  G1Point mul(const field::FpInt& k) const;

  /// Variable-base multiplication with a fixed doubling/addition schedule:
  /// a width-4 fixed-window ladder over ceil(max(|q|, |k|)/4) windows that
  /// performs one table addition per window regardless of the digit (a
  /// dummy addition is computed and discarded on zero digits). Use for
  /// SECRET scalars (server s, user a, encryption nonces): the operation
  /// pattern leaks only the scalar length class, not its bits. The limb
  /// arithmetic underneath is not constant-time — see docs/PERF.md.
  G1Point mul_secret(const field::FpInt& k) const;

  /// Membership in the order-q subgroup (q * P == O).
  bool in_subgroup() const;

  /// Uncompressed serialization: 0x04 || x || y (0x00-tag for infinity),
  /// always 1 + 2*byte_len bytes.
  Bytes to_bytes() const;

  /// Compressed serialization: (0x02 | y-parity) || x, 1 + byte_len bytes.
  /// This is the wire format of time-bound key updates (short signatures).
  Bytes to_bytes_compressed() const;

  /// Parses either serialization, validating curve membership.
  static G1Point from_bytes(const CurveCtx* curve, ByteSpan bytes);

  friend bool operator==(const G1Point& a, const G1Point& b) {
    if (a.infinity_ || b.infinity_) return a.infinity_ == b.infinity_;
    return a.x_ == b.x_ && a.y_ == b.y_;
  }

 private:
  G1Point(const CurveCtx* curve, field::Fp x, field::Fp y, bool inf)
      : curve_(curve), x_(x), y_(y), infinity_(inf) {}

  const CurveCtx* curve_ = nullptr;
  field::Fp x_;
  field::Fp y_;
  bool infinity_ = true;
};

/// Fixed-base scalar-multiplication table: a Lim-Lee comb precomputed once
/// per generator and reused for every multiplication of that point. With
/// the default 8 teeth the table holds 255 affine points (batch-normalized
/// with one field inversion) and a multiplication costs ceil(bits/8)
/// doublings plus as many mixed additions — roughly 5x fewer Jacobian
/// operations than the wNAF variable-base path on tre-512 scalars.
///
/// Used by the TRE scheme for the server generator G, the server key sG,
/// and the receiver key asG (keygen, encrypt, the FO re-encryption check).
class G1Precomp {
 public:
  /// Builds the comb for `base`, covering scalars below 2^scalar_bits
  /// (0 = the group order size |q|). Scalars wider than the table fall
  /// back to the generic variable-base path.
  explicit G1Precomp(const G1Point& base, size_t scalar_bits = 0,
                     unsigned teeth = 8);

  const G1Point& base() const { return base_; }
  size_t covered_bits() const { return bits_; }

  /// Fixed-base multiply, variable time (PUBLIC scalars).
  G1Point mul(const field::FpInt& k) const { return mul_impl(k, false); }

  /// Fixed-base multiply with a fixed per-column addition schedule
  /// (SECRET scalars); same dummy-addition caveats as G1Point::mul_secret.
  G1Point mul_secret(const field::FpInt& k) const { return mul_impl(k, true); }

 private:
  struct AffineEntry {
    field::Fp x, y;
  };

  G1Point mul_impl(const field::FpInt& k, bool fixed_pattern) const;

  G1Point base_;
  const CurveCtx* curve_ = nullptr;
  size_t bits_ = 0;       // scalar width covered by the comb
  unsigned teeth_ = 0;    // comb rows
  size_t cols_ = 0;       // ceil(bits_ / teeth_): doublings per multiply
  std::vector<AffineEntry> table_;  // entry m-1 = sum over set bits t of m of 2^{t*cols_}·base
};

/// Checks y^2 == x^3 + 1.
bool on_curve(const CurveCtx* curve, const field::Fp& x, const field::Fp& y);

/// The paper's H1 : {0,1}* -> G_1 (full-domain hash onto the order-q
/// subgroup). Admissible encoding: y from the hash, x = (y^2 - 1)^((2p-1)/3)
/// (the cube-root map, a bijection since p ≡ 2 mod 3), then cofactor
/// clearing; retries with a counter on the rare degenerate output.
G1Point hash_to_g1(const CurveCtx* curve, ByteSpan msg);

/// Σᵢ scalars[i]·points[i] via bucketed Pippenger multi-exponentiation
/// (src/ec/multiexp.h); windows fan out across the persistent work pool
/// (`threads` as in tre::parallel_for: 0 = all, 1 = serial). Sizes must
/// match; returns infinity for an empty batch. `curve` anchors the result
/// when every point is infinity.
G1Point g1_multiexp(const CurveCtx* curve, std::span<const G1Point> points,
                    std::span<const field::FpInt> scalars,
                    unsigned threads = 0);

/// Same sum via the unsigned running-sum fold only: the reference the
/// signed-digit auto-selection is parity-tested against.
G1Point g1_multiexp_unsigned(const CurveCtx* curve,
                             std::span<const G1Point> points,
                             std::span<const field::FpInt> scalars,
                             unsigned threads = 0);

}  // namespace tre::ec
