// Bucketed Pippenger multi-exponentiation (the BDLO12 shape).
//
// Computes Σᵢ kᵢ·Pᵢ for N points and N scalars in roughly
// b/c · (N + 2^c) group additions instead of the ~1.3·b·N a naive
// per-point ladder pays, where b is the widest scalar's bit length and
// c the window width chosen from N. Each c-bit window keeps 2^c − 1
// bucket accumulators; point i is dropped into the bucket named by its
// window digit, the running-sum trick converts the buckets into the
// window's partial sum (Σ d·B_d via two adds per bucket), and a Horner
// fold with c doublings per step combines the windows top-down.
//
// The engine is generic over an `Ops` adapter so each curve keeps its
// Jacobian kernel private to its .cpp:
//
//   struct Ops {
//     using Acc = ...;                       // Jacobian accumulator
//     Acc    zero() const;                   // identity
//     void   add_point(Acc&, size_t i) const;// acc += P_i (mixed add; must
//                                            //   skip infinity points)
//     void   add(Acc&, const Acc&) const;    // acc += other accumulator
//     void   dbl(Acc&) const;                // acc = 2·acc
//     void   sub_point(Acc&, size_t i) const;// OPTIONAL: acc -= P_i (mixed
//                                            //   add of −P_i; enables the
//                                            //   signed-digit variant)
//   };
//
// When the adapter provides `sub_point` (negation is one field negation
// on y for short-Weierstrass curves), the signed-digit variant recodes
// each window digit into [−2^(c−1), 2^(c−1)]: a digit d > 2^(c−1) becomes
// d − 2^c with a carry into the next window, and negative digits reuse
// the positive bucket via subtraction. That halves the bucket array —
// cost ⌈b/c⌉·(N + 2^(c−1)) — which both shrinks the running-sum fold and
// lets the optimum window widen one bit earlier. `multiexp_auto` picks
// whichever integer cost estimate wins for the batch at hand.
//
// Windows are independent, so they fan out across the persistent work
// pool via tre::parallel_for — each worker owns its bucket array and
// writes one slot of `window_sums`; only the cheap Horner fold is
// serial. RLC batch-verification scalars are ~128 bits wide, so the
// effective width (max bit_length, not the limb capacity) halves the
// window count relative to full-width exponents for free.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "bigint/bigint.h"
#include "common/parallel.h"

namespace tre::ec {

/// Window width for a batch of `n` points with `scalar_bits`-wide
/// exponents: minimizes the ⌈b/c⌉·(n + 2^c) addition estimate over
/// c ∈ [1, 16] (the doubling term b is constant across c and ignored).
/// Deterministic integer arithmetic so the choice is stable across
/// platforms; PERF.md tabulates the resulting c per decade of N.
inline unsigned multiexp_window_bits(size_t n, size_t scalar_bits) {
  unsigned best = 1;
  std::uint64_t best_cost = ~std::uint64_t{0};
  for (unsigned c = 1; c <= 16; ++c) {
    std::uint64_t windows = (scalar_bits + c - 1) / c;
    std::uint64_t cost = windows * (n + (std::uint64_t{1} << c));
    if (cost < best_cost) {
      best_cost = cost;
      best = c;
    }
  }
  return best;
}

/// Σᵢ scalars[i]·P_i where the points live behind `ops` (indexed by i).
/// Returns ops.zero() for an empty batch. Scalars are plain unsigned
/// integers; zero scalars and infinity points cost nothing.
template <class Ops, size_t L>
typename Ops::Acc multiexp_pippenger(const Ops& ops,
                                     std::span<const bigint::BigInt<L>> scalars,
                                     unsigned threads = 0) {
  using Acc = typename Ops::Acc;
  const size_t n = scalars.size();
  Acc result = ops.zero();
  if (n == 0) return result;

  size_t bits = 0;
  for (const auto& s : scalars) bits = std::max(bits, s.bit_length());
  if (bits == 0) return result;

  const unsigned c = multiexp_window_bits(n, bits);
  const size_t num_windows = (bits + c - 1) / c;
  const std::uint32_t buckets_per_window = (std::uint32_t{1} << c) - 1;

  std::vector<Acc> window_sums(num_windows, ops.zero());
  tre::parallel_for(
      num_windows,
      [&](size_t w) {
        const size_t base = w * c;
        std::vector<Acc> buckets(buckets_per_window, ops.zero());
        for (size_t i = 0; i < n; ++i) {
          std::uint32_t digit = 0;
          for (unsigned b = 0; b < c && base + b < bits; ++b) {
            digit |= static_cast<std::uint32_t>(scalars[i].bit(base + b)) << b;
          }
          if (digit == 0) continue;
          ops.add_point(buckets[digit - 1], i);
        }
        // Running sum: Σ_{d=1}^{m} d·B_d as two adds per bucket.
        Acc running = ops.zero();
        Acc acc = ops.zero();
        for (std::uint32_t d = buckets_per_window; d >= 1; --d) {
          ops.add(running, buckets[d - 1]);
          ops.add(acc, running);
        }
        window_sums[w] = acc;
      },
      threads);

  for (size_t w = num_windows; w-- > 0;) {
    if (w + 1 < num_windows) {
      for (unsigned b = 0; b < c; ++b) ops.dbl(result);
    }
    ops.add(result, window_sums[w]);
  }
  return result;
}

/// True when `Ops` offers the optional mixed subtraction the signed-digit
/// variant needs.
template <class Ops>
concept MultiexpOpsWithSub =
    requires(const Ops& ops, typename Ops::Acc& acc, size_t i) {
      ops.sub_point(acc, i);
    };

/// Window width for the signed-digit variant: same search as
/// multiexp_window_bits but against the halved bucket count (and one
/// extra window for the final carry).
inline unsigned multiexp_window_bits_signed(size_t n, size_t scalar_bits) {
  unsigned best = 1;
  std::uint64_t best_cost = ~std::uint64_t{0};
  for (unsigned c = 1; c <= 16; ++c) {
    std::uint64_t windows = (scalar_bits + c - 1) / c + 1;
    std::uint64_t cost = windows * (n + (std::uint64_t{1} << (c - 1)));
    if (cost < best_cost) {
      best_cost = cost;
      best = c;
    }
  }
  return best;
}

/// Signed-digit (wNAF-style) Pippenger: identical contract to
/// multiexp_pippenger, half the buckets per window. Requires
/// ops.sub_point. Parity with the unsigned fold is pinned by
/// tests/test_scalarmul.cpp.
template <MultiexpOpsWithSub Ops, size_t L>
typename Ops::Acc multiexp_pippenger_signed(
    const Ops& ops, std::span<const bigint::BigInt<L>> scalars,
    unsigned threads = 0) {
  using Acc = typename Ops::Acc;
  const size_t n = scalars.size();
  Acc result = ops.zero();
  if (n == 0) return result;

  size_t bits = 0;
  for (const auto& s : scalars) bits = std::max(bits, s.bit_length());
  if (bits == 0) return result;

  const unsigned c = multiexp_window_bits_signed(n, bits);
  const size_t base_windows = (bits + c - 1) / c;
  const size_t num_windows = base_windows + 1;  // room for the final carry
  const std::int32_t half = std::int32_t{1} << (c - 1);

  // Recode every scalar into digits in [−2^(c−1), 2^(c−1)]: carries
  // ripple upward through a scalar's windows, so the table is built in
  // one serial pass; the expensive window loop below stays parallel.
  std::vector<std::int32_t> digits(n * num_windows, 0);
  for (size_t i = 0; i < n; ++i) {
    std::int32_t carry = 0;
    for (size_t w = 0; w < base_windows; ++w) {
      const size_t base = w * c;
      std::int32_t d = 0;
      for (unsigned b = 0; b < c && base + b < bits; ++b) {
        d |= static_cast<std::int32_t>(scalars[i].bit(base + b)) << b;
      }
      d += carry;  // the previous window's borrow compensation
      if (d > half) {  // 2^(c−1) itself stays positive: magnitude ≤ half
        digits[i * num_windows + w] = d - (std::int32_t{1} << c);
        carry = 1;
      } else {
        digits[i * num_windows + w] = d;
        carry = 0;
      }
    }
    digits[i * num_windows + base_windows] = carry;
  }

  std::vector<Acc> window_sums(num_windows, ops.zero());
  tre::parallel_for(
      num_windows,
      [&](size_t w) {
        std::vector<Acc> buckets(static_cast<size_t>(half), ops.zero());
        for (size_t i = 0; i < n; ++i) {
          const std::int32_t d = digits[i * num_windows + w];
          if (d > 0) {
            ops.add_point(buckets[static_cast<size_t>(d) - 1], i);
          } else if (d < 0) {
            ops.sub_point(buckets[static_cast<size_t>(-d) - 1], i);
          }
        }
        Acc running = ops.zero();
        Acc acc = ops.zero();
        for (std::int32_t d = half; d >= 1; --d) {
          ops.add(running, buckets[static_cast<size_t>(d) - 1]);
          ops.add(acc, running);
        }
        window_sums[w] = acc;
      },
      threads);

  for (size_t w = num_windows; w-- > 0;) {
    if (w + 1 < num_windows) {
      for (unsigned b = 0; b < c; ++b) ops.dbl(result);
    }
    ops.add(result, window_sums[w]);
  }
  return result;
}

/// Dispatches between the unsigned and signed-digit folds by comparing
/// their integer cost estimates for this batch. Adapters without
/// sub_point always take the unsigned path.
template <class Ops, size_t L>
typename Ops::Acc multiexp_auto(const Ops& ops,
                                std::span<const bigint::BigInt<L>> scalars,
                                unsigned threads = 0) {
  if constexpr (MultiexpOpsWithSub<Ops>) {
    const size_t n = scalars.size();
    size_t bits = 0;
    for (const auto& s : scalars) bits = std::max(bits, s.bit_length());
    if (n != 0 && bits != 0) {
      const unsigned cu = multiexp_window_bits(n, bits);
      const std::uint64_t unsigned_cost =
          ((bits + cu - 1) / cu) * (n + (std::uint64_t{1} << cu));
      const unsigned cs = multiexp_window_bits_signed(n, bits);
      const std::uint64_t signed_cost =
          ((bits + cs - 1) / cs + 1) * (n + (std::uint64_t{1} << (cs - 1)));
      if (signed_cost < unsigned_cost) {
        return multiexp_pippenger_signed(ops, scalars, threads);
      }
    }
  }
  return multiexp_pippenger(ops, scalars, threads);
}

}  // namespace tre::ec
