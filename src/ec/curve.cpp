#include "ec/curve.h"


#include <array>
#include <vector>
#include "ec/multiexp.h"
#include "hashing/kdf.h"

namespace tre::ec {

using field::Fp;
using field::Fp2;
using field::FpInt;

namespace {

// Exact division helper over a 13-limb scratch width (2p-1 can exceed the
// 768-bit element width by one bit).
using WideInt = bigint::BigInt<field::kMaxFieldLimbs + 1>;

FpInt exact_div(const WideInt& num, const WideInt& den, const char* what) {
  WideInt quo, rem;
  bigint::divmod(num, den, quo, rem);
  require(rem.is_zero(), what);
  return quo.resized<field::kMaxFieldLimbs>();
}

}  // namespace

std::shared_ptr<const CurveCtx> CurveCtx::create(std::string name, const FpInt& p,
                                                 const FpInt& q) {
  auto ctx = std::make_shared<CurveCtx>();
  ctx->name = std::move(name);
  ctx->p = p;
  ctx->q = q;
  ctx->fp = std::make_shared<const field::FpCtx>(p);
  ctx->fq = std::make_shared<const field::FpCtx>(q);

  require(ctx->fp->p_mod_4_is_3, "CurveCtx: p must be 3 (mod 4)");
  {
    FpInt quo, rem;
    bigint::divmod(p, FpInt::from_u64(3), quo, rem);
    require(rem == FpInt::from_u64(2), "CurveCtx: p must be 2 (mod 3)");
  }

  WideInt p_wide = p.resized<field::kMaxFieldLimbs + 1>();
  WideInt p_plus_1 = bigint::add(p_wide, WideInt::from_u64(1));
  ctx->cofactor = exact_div(p_plus_1, q.resized<field::kMaxFieldLimbs + 1>(),
                            "CurveCtx: q must divide p + 1");

  WideInt two_p_minus_1 = bigint::sub(bigint::shl(p_wide, 1), WideInt::from_u64(1));
  ctx->cube_root_exp = exact_div(two_p_minus_1, WideInt::from_u64(3),
                                 "CurveCtx: 2p - 1 must be divisible by 3");

  // zeta = (-1 + sqrt(3) i) / 2. sqrt(3) exists in F_p for p ≡ 3 (mod 4),
  // p ≡ 2 (mod 3) by quadratic reciprocity.
  const field::FpCtx* fp = ctx->fp.get();
  auto sqrt3 = Fp::from_u64(fp, 3).sqrt();
  require(sqrt3.has_value(), "CurveCtx: 3 is not a square mod p");
  Fp inv2 = Fp::from_u64(fp, 2).inverse();
  ctx->zeta = Fp2(-inv2, *sqrt3 * inv2);
  // Sanity: zeta^2 + zeta + 1 == 0 and zeta != 1.
  require((ctx->zeta.squared() + ctx->zeta + Fp2::one(fp)).is_zero(),
          "CurveCtx: zeta is not a primitive cube root of unity");
  return ctx;
}

bool on_curve(const CurveCtx* curve, const Fp& x, const Fp& y) {
  Fp rhs = x.squared() * x + Fp::one(curve->fp.get());
  return y.squared() == rhs;
}

G1Point G1Point::infinity(const CurveCtx* curve) {
  require(curve != nullptr, "G1Point: null curve");
  const field::FpCtx* fp = curve->fp.get();
  return G1Point(curve, Fp::zero(fp), Fp::zero(fp), true);
}

G1Point G1Point::make(const CurveCtx* curve, const Fp& x, const Fp& y) {
  require(curve != nullptr, "G1Point: null curve");
  require(on_curve(curve, x, y), "G1Point: point not on curve");
  return G1Point(curve, x, y, false);
}

const Fp& G1Point::x() const {
  require(!infinity_, "G1Point: infinity has no coordinates");
  return x_;
}

const Fp& G1Point::y() const {
  require(!infinity_, "G1Point: infinity has no coordinates");
  return y_;
}

G1Point G1Point::operator-() const {
  if (infinity_) return *this;
  return G1Point(curve_, x_, -y_, false);
}

G1Point G1Point::doubled() const {
  if (infinity_) return *this;
  if (y_.is_zero()) return infinity(curve_);
  // lambda = 3x^2 / 2y
  Fp three_x2 = x_.squared();
  three_x2 = three_x2 + three_x2 + three_x2;
  Fp lambda = three_x2 * (y_ + y_).inverse();
  Fp x3 = lambda.squared() - x_ - x_;
  Fp y3 = lambda * (x_ - x3) - y_;
  return G1Point(curve_, x3, y3, false);
}

G1Point G1Point::operator+(const G1Point& o) const {
  require(curve_ != nullptr && curve_ == o.curve_, "G1Point: curve mismatch");
  if (infinity_) return o;
  if (o.infinity_) return *this;
  if (x_ == o.x_) {
    if (y_ == o.y_) return doubled();
    return infinity(curve_);  // y1 == -y2
  }
  Fp lambda = (o.y_ - y_) * (o.x_ - x_).inverse();
  Fp x3 = lambda.squared() - x_ - o.x_;
  Fp y3 = lambda * (x_ - x3) - y_;
  return G1Point(curve_, x3, y3, false);
}

namespace {

// Jacobian coordinates: x = X/Z^2, y = Y/Z^3; Z == 0 encodes infinity.
struct Jac {
  Fp X, Y, Z;
  bool is_infinity() const { return Z.is_zero(); }
};

Jac jac_from_affine(const G1Point& p, const field::FpCtx* fp) {
  if (p.is_infinity()) return {Fp::one(fp), Fp::one(fp), Fp::zero(fp)};
  return {p.x(), p.y(), Fp::one(fp)};
}

Jac jac_double(const Jac& p, const field::FpCtx* fp) {
  if (p.is_infinity() || p.Y.is_zero()) return {Fp::one(fp), Fp::one(fp), Fp::zero(fp)};
  // dbl-2009-l formulas for a = 0.
  Fp a = p.X.squared();
  Fp b = p.Y.squared();
  Fp c = b.squared();
  Fp d = (p.X + b).squared() - a - c;
  d = d + d;
  Fp e = a + a + a;
  Fp f = e.squared();
  Fp x3 = f - (d + d);
  Fp c8 = c + c;
  c8 = c8 + c8;
  c8 = c8 + c8;
  Fp y3 = e * (d - x3) - c8;
  Fp z3 = (p.Y * p.Z).doubled();
  return {x3, y3, z3};
}

Jac jac_add(const Jac& p, const Jac& q, const field::FpCtx* fp) {
  if (p.is_infinity()) return q;
  if (q.is_infinity()) return p;
  // add-2007-bl general addition.
  Fp z1z1 = p.Z.squared();
  Fp z2z2 = q.Z.squared();
  Fp u1 = p.X * z2z2;
  Fp u2 = q.X * z1z1;
  Fp s1 = p.Y * q.Z * z2z2;
  Fp s2 = q.Y * p.Z * z1z1;
  if (u1 == u2) {
    if (s1 == s2) return jac_double(p, fp);
    return {Fp::one(fp), Fp::one(fp), Fp::zero(fp)};
  }
  Fp h = u2 - u1;
  Fp i = (h + h).squared();
  Fp j = h * i;
  Fp r = (s2 - s1).doubled();
  Fp v = u1 * i;
  Fp x3 = r.squared() - j - (v + v);
  Fp s1j = s1 * j;
  Fp y3 = r * (v - x3) - (s1j + s1j);
  Fp z3 = ((p.Z + q.Z).squared() - z1z1 - z2z2) * h;
  return {x3, y3, z3};
}

// Mixed addition P + (x2, y2, 1) (madd-2007-bl): saves ~5 multiplications
// over the general addition when the second operand is affine — the case
// for every comb-table entry.
Jac jac_add_affine(const Jac& p, const Fp& x2, const Fp& y2, const field::FpCtx* fp) {
  if (p.is_infinity()) return {x2, y2, Fp::one(fp)};
  Fp z1z1 = p.Z.squared();
  Fp u2 = x2 * z1z1;
  Fp s2 = y2 * p.Z * z1z1;
  if (u2 == p.X) {
    if (s2 == p.Y) return jac_double(p, fp);
    return {Fp::one(fp), Fp::one(fp), Fp::zero(fp)};
  }
  Fp h = u2 - p.X;
  Fp hh = h.squared();
  Fp i = (hh + hh).doubled();  // 4h^2
  Fp j = h * i;
  Fp r = (s2 - p.Y).doubled();
  Fp v = p.X * i;
  Fp x3 = r.squared() - j - (v + v);
  Fp yj = p.Y * j;
  Fp y3 = r * (v - x3) - (yj + yj);
  Fp z3 = (p.Z + h).squared() - z1z1 - hh;
  return {x3, y3, z3};
}

G1Point jac_to_affine(const Jac& p, const CurveCtx* curve) {
  if (p.is_infinity()) return G1Point::infinity(curve);
  Fp zinv = p.Z.inverse();
  Fp zinv2 = zinv.squared();
  return G1Point::make(curve, p.X * zinv2, p.Y * zinv2 * zinv);
}

// Normalizes a batch of non-infinity Jacobian points to affine (x, y)
// pairs with a single field inversion (Montgomery's trick).
std::vector<std::pair<Fp, Fp>> jac_batch_to_affine(const std::vector<Jac>& pts,
                                                   const field::FpCtx* fp) {
  const size_t n = pts.size();
  std::vector<Fp> prefix(n);  // prefix[i] = Z_0 · ... · Z_i
  Fp run = Fp::one(fp);
  for (size_t i = 0; i < n; ++i) {
    require(!pts[i].is_infinity(), "jac_batch_to_affine: infinity in batch");
    run = run * pts[i].Z;
    prefix[i] = run;
  }
  Fp inv = run.inverse();
  std::vector<std::pair<Fp, Fp>> out(n);
  for (size_t i = n; i-- > 0;) {
    Fp zinv = i == 0 ? inv : inv * prefix[i - 1];
    inv = inv * pts[i].Z;  // inverse of the remaining prefix
    Fp zinv2 = zinv.squared();
    out[i] = {pts[i].X * zinv2, pts[i].Y * zinv2 * zinv};
  }
  return out;
}

}  // namespace

G1Point G1Point::mul(const FpInt& k) const {
  require(curve_ != nullptr, "G1Point: null curve");
  const field::FpCtx* fp = curve_->fp.get();
  if (infinity_ || k.is_zero()) return infinity(curve_);

  // Width-4 NAF: at most one nonzero digit in any 4 consecutive positions
  // cuts the addition count of double-and-add by ~2.4x for long scalars.
  // Precompute odd multiples P, 3P, ..., 15P in Jacobian coordinates.
  Jac base = jac_from_affine(*this, fp);
  Jac twice = jac_double(base, fp);
  std::array<Jac, 8> odd;  // odd[i] = (2i+1)P
  odd[0] = base;
  for (size_t i = 1; i < odd.size(); ++i) odd[i] = jac_add(odd[i - 1], twice, fp);

  // Stack recoding buffer: mul() sits on the in_subgroup()/verification
  // hot paths, which pool workers hammer concurrently — no heap traffic.
  std::array<std::int8_t, bigint::kWnafMaxDigits<field::kMaxFieldLimbs>> digits;
  const size_t ndigits = bigint::wnaf_into(k, 4, digits.data());
  Jac acc = {Fp::one(fp), Fp::one(fp), Fp::zero(fp)};
  for (size_t i = ndigits; i-- > 0;) {
    acc = jac_double(acc, fp);
    std::int8_t d = digits[i];
    if (d > 0) {
      acc = jac_add(acc, odd[static_cast<size_t>(d) / 2], fp);
    } else if (d < 0) {
      Jac neg = odd[static_cast<size_t>(-d) / 2];
      neg.Y = -neg.Y;
      acc = jac_add(acc, neg, fp);
    }
  }
  return jac_to_affine(acc, curve_);
}

G1Point G1Point::mul_secret(const FpInt& k) const {
  require(curve_ != nullptr, "G1Point: null curve");
  const field::FpCtx* fp = curve_->fp.get();
  if (infinity_) return infinity(curve_);

  // Fixed-window ladder, width 4: the schedule is 4 doublings + 1 table
  // addition per window over a window count fixed by max(|q|, |k|), so the
  // doubling/addition pattern is independent of the scalar's bits. Zero
  // digits perform a dummy addition whose result is discarded.
  constexpr size_t kWindow = 4;
  std::array<Jac, 16> table;  // table[d] = d·P (slot 0 unused)
  table[1] = jac_from_affine(*this, fp);
  for (size_t d = 2; d < table.size(); ++d) {
    table[d] = (d & 1) == 0 ? jac_double(table[d / 2], fp)
                            : jac_add(table[d - 1], table[1], fp);
  }

  const size_t bits = std::max(curve_->q.bit_length(), k.bit_length());
  const size_t windows = (bits + kWindow - 1) / kWindow;
  Jac acc = {Fp::one(fp), Fp::one(fp), Fp::zero(fp)};
  for (size_t w = windows; w-- > 0;) {
    for (size_t s = 0; s < kWindow; ++s) acc = jac_double(acc, fp);
    size_t d = 0;
    for (size_t b = 0; b < kWindow; ++b) {
      d = (d << 1) | static_cast<size_t>(k.bit(w * kWindow + kWindow - 1 - b));
    }
    Jac sum = jac_add(acc, table[d == 0 ? 1 : d], fp);
    if (d != 0) acc = sum;
  }
  return jac_to_affine(acc, curve_);
}

// --- G1Precomp ---------------------------------------------------------------

G1Precomp::G1Precomp(const G1Point& base, size_t scalar_bits, unsigned teeth)
    : base_(base), curve_(base.curve()) {
  require(curve_ != nullptr, "G1Precomp: null curve");
  require(teeth >= 2 && teeth <= 10, "G1Precomp: teeth out of range");
  require(!base.is_infinity(), "G1Precomp: infinity base");
  const field::FpCtx* fp = curve_->fp.get();

  teeth_ = teeth;
  bits_ = scalar_bits != 0 ? scalar_bits : curve_->q.bit_length();
  cols_ = (bits_ + teeth_ - 1) / teeth_;

  // Comb basis: B_t = 2^{t·cols_}·base.
  std::vector<Jac> basis(teeth_);
  basis[0] = jac_from_affine(base, fp);
  for (unsigned t = 1; t < teeth_; ++t) {
    Jac b = basis[t - 1];
    for (size_t s = 0; s < cols_; ++s) b = jac_double(b, fp);
    basis[t] = b;
  }

  // table[m-1] = sum over set bits t of m of B_t: one addition each, built
  // from the entry with the lowest set bit removed.
  const size_t entries = (size_t{1} << teeth_) - 1;
  std::vector<Jac> jac_table(entries);
  for (size_t m = 1; m <= entries; ++m) {
    if ((m & (m - 1)) == 0) {
      // Power of two: a basis element.
      unsigned t = 0;
      while ((m >> t) != 1) ++t;
      jac_table[m - 1] = basis[t];
    } else {
      size_t low = m & (~m + 1);
      jac_table[m - 1] = jac_add(jac_table[(m ^ low) - 1], jac_table[low - 1], fp);
    }
  }
  // An order-q base never collides into infinity here (all comb sums are
  // nonzero multiples below q... unless base has small order). Guard anyway:
  for (const Jac& j : jac_table) {
    require(!j.is_infinity(), "G1Precomp: base point has small order");
  }

  std::vector<std::pair<Fp, Fp>> affine = jac_batch_to_affine(jac_table, fp);
  table_.reserve(entries);
  for (const auto& [x, y] : affine) table_.push_back(AffineEntry{x, y});
}

G1Point G1Precomp::mul_impl(const FpInt& k, bool fixed_pattern) const {
  const field::FpCtx* fp = curve_->fp.get();
  if (k.is_zero()) return G1Point::infinity(curve_);
  if (k.bit_length() > bits_) {
    // Out of comb range (e.g. cofactor-sized scalars): generic path.
    return fixed_pattern ? base_.mul_secret(k) : base_.mul(k);
  }

  Jac acc = {Fp::one(fp), Fp::one(fp), Fp::zero(fp)};
  for (size_t j = cols_; j-- > 0;) {
    acc = jac_double(acc, fp);
    size_t m = 0;
    for (unsigned t = 0; t < teeth_; ++t) {
      size_t idx = t * cols_ + j;
      if (idx < bits_ && k.bit(idx)) m |= size_t{1} << t;
    }
    if (m != 0) {
      acc = jac_add_affine(acc, table_[m - 1].x, table_[m - 1].y, fp);
    } else if (fixed_pattern) {
      Jac dummy = jac_add_affine(acc, table_[0].x, table_[0].y, fp);
      (void)dummy;  // discarded: keeps the per-column schedule fixed
    }
  }
  return jac_to_affine(acc, curve_);
}

bool G1Point::in_subgroup() const {
  require(curve_ != nullptr, "G1Point: null curve");
  return mul(curve_->q).is_infinity();
}

Bytes G1Point::to_bytes() const {
  require(curve_ != nullptr, "G1Point: null curve");
  size_t w = curve_->fp->byte_len;
  Bytes out(1 + 2 * w, 0);
  if (infinity_) return out;  // tag 0x00
  out[0] = 0x04;
  Bytes xb = x_.to_bytes();
  Bytes yb = y_.to_bytes();
  std::copy(xb.begin(), xb.end(), out.begin() + 1);
  std::copy(yb.begin(), yb.end(), out.begin() + 1 + static_cast<long>(w));
  return out;
}

Bytes G1Point::to_bytes_compressed() const {
  require(curve_ != nullptr, "G1Point: null curve");
  size_t w = curve_->fp->byte_len;
  Bytes out(1 + w, 0);
  if (infinity_) return out;  // tag 0x00
  out[0] = static_cast<std::uint8_t>(0x02 | (y_.to_int().w[0] & 1));
  Bytes xb = x_.to_bytes();
  std::copy(xb.begin(), xb.end(), out.begin() + 1);
  return out;
}

G1Point G1Point::from_bytes(const CurveCtx* curve, ByteSpan bytes) {
  require(curve != nullptr, "G1Point: null curve");
  const field::FpCtx* fp = curve->fp.get();
  size_t w = fp->byte_len;
  require(bytes.size() == 1 + 2 * w || bytes.size() == 1 + w,
          "G1Point::from_bytes: wrong length");
  std::uint8_t tag = bytes[0];
  if (tag == 0x00) {
    for (size_t i = 1; i < bytes.size(); ++i) {
      require(bytes[i] == 0, "G1Point::from_bytes: malformed infinity");
    }
    return infinity(curve);
  }
  if (tag == 0x04) {
    require(bytes.size() == 1 + 2 * w, "G1Point::from_bytes: wrong length for 0x04");
    Fp x = Fp::from_bytes(fp, bytes.subspan(1, w));
    Fp y = Fp::from_bytes(fp, bytes.subspan(1 + w, w));
    return make(curve, x, y);
  }
  if (tag == 0x02 || tag == 0x03) {
    require(bytes.size() == 1 + w, "G1Point::from_bytes: wrong length for compressed");
    Fp x = Fp::from_bytes(fp, bytes.subspan(1, w));
    Fp rhs = x.squared() * x + Fp::one(fp);
    auto y = rhs.sqrt();
    require(y.has_value(), "G1Point::from_bytes: x has no curve point");
    std::uint64_t want_parity = tag & 1;
    if ((y->to_int().w[0] & 1) != want_parity) *y = -*y;
    return make(curve, x, *y);
  }
  throw Error("G1Point::from_bytes: unknown tag");
}

G1Point hash_to_g1(const CurveCtx* curve, ByteSpan msg) {
  require(curve != nullptr, "hash_to_g1: null curve");
  const field::FpCtx* fp = curve->fp.get();
  for (std::uint32_t counter = 0;; ++counter) {
    Bytes input = concat({msg, be32(counter)});
    Bytes h = hashing::oracle_bytes("TRE-H1", input, 2 * fp->byte_len);
    Fp y = Fp::from_bytes_wide(fp, h);
    // x = (y^2 - 1)^((2p-1)/3) is the unique cube root of y^2 - 1.
    Fp x = (y.squared() - Fp::one(fp)).pow(curve->cube_root_exp);
    G1Point p = G1Point::make(curve, x, y);
    G1Point cleared = p.mul(curve->cofactor);
    if (!cleared.is_infinity()) return cleared;
  }
}

namespace {

// Adapter handing the private Jacobian kernel to the generic Pippenger
// engine: buckets accumulate with the mixed add (affine point into
// Jacobian bucket), bucket folding uses the full add.
struct MultiexpOps {
  using Acc = Jac;

  std::span<const G1Point> points;
  const field::FpCtx* fp;

  Acc zero() const { return {Fp::one(fp), Fp::one(fp), Fp::zero(fp)}; }
  void add_point(Acc& acc, size_t i) const {
    const G1Point& p = points[i];
    if (p.is_infinity()) return;
    acc = jac_add_affine(acc, p.x(), p.y(), fp);
  }
  void add(Acc& acc, const Acc& other) const { acc = jac_add(acc, other, fp); }
  void dbl(Acc& acc) const { acc = jac_double(acc, fp); }
  void sub_point(Acc& acc, size_t i) const {
    const G1Point& p = points[i];
    if (p.is_infinity()) return;
    acc = jac_add_affine(acc, p.x(), -p.y(), fp);
  }
};

}  // namespace

G1Point g1_multiexp(const CurveCtx* curve, std::span<const G1Point> points,
                    std::span<const field::FpInt> scalars, unsigned threads) {
  require(curve != nullptr, "g1_multiexp: null curve");
  require(points.size() == scalars.size(), "g1_multiexp: size mismatch");
  MultiexpOps ops{points, curve->fp.get()};
  Jac acc = multiexp_auto(ops, scalars, threads);
  return jac_to_affine(acc, curve);
}

G1Point g1_multiexp_unsigned(const CurveCtx* curve,
                             std::span<const G1Point> points,
                             std::span<const field::FpInt> scalars,
                             unsigned threads) {
  require(curve != nullptr, "g1_multiexp: null curve");
  require(points.size() == scalars.size(), "g1_multiexp: size mismatch");
  MultiexpOps ops{points, curve->fp.get()};
  Jac acc = multiexp_pippenger(ops, scalars, threads);
  return jac_to_affine(acc, curve);
}

}  // namespace tre::ec
