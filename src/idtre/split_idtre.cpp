#include "idtre/split_idtre.h"

namespace tre::idtre {

using core::Gt;
using core::Scalar;
using ec::G1Point;

SplitAuthorityIdTre::SplitAuthorityIdTre(std::shared_ptr<const params::GdhParams> params)
    : scheme_(std::move(params)) {}

ServerKeyPair SplitAuthorityIdTre::authority_keygen(tre::hashing::RandomSource& rng) const {
  Scalar s = params::random_scalar(scheme_.params(), rng);
  const G1Point& base = scheme_.params().base;
  return ServerKeyPair{s, ServerPublicKey{base, base.mul(s)}};
}

IdPrivateKey SplitAuthorityIdTre::extract(const ServerKeyPair& ta,
                                          std::string_view id) const {
  return IdPrivateKey{std::string(id), scheme_.hash_tag(id).mul(ta.s)};
}

KeyUpdate SplitAuthorityIdTre::issue_update(const ServerKeyPair& ts,
                                            std::string_view tag) const {
  return scheme_.issue_update(ts, tag);
}

bool SplitAuthorityIdTre::verify_private_key(const ServerPublicKey& ta,
                                             const IdPrivateKey& key) const {
  if (key.d.is_infinity()) return false;
  return pairing::pairings_equal(ta.sg, scheme_.hash_tag(key.id), ta.g, key.d);
}

bool SplitAuthorityIdTre::verify_update(const ServerPublicKey& ts,
                                        const KeyUpdate& update) const {
  return scheme_.verify_update(ts, update);
}

Ciphertext SplitAuthorityIdTre::encrypt(ByteSpan msg, std::string_view id,
                                        const ServerPublicKey& ta,
                                        const ServerPublicKey& ts,
                                        std::string_view tag,
                                        tre::hashing::RandomSource& rng) const {
  require(ta.g == scheme_.params().base && ts.g == scheme_.params().base,
          "SplitAuthorityIdTre: both authorities must use the system generator");
  Scalar r = params::random_scalar(scheme_.params(), rng);
  // K = [ê(s1·G, H1(ID)) · ê(s2·G, H1(T))]^r, one final exponentiation.
  std::vector<std::pair<G1Point, G1Point>> pairs = {
      {ta.sg, scheme_.hash_tag(id)},
      {ts.sg, scheme_.hash_tag(tag)},
  };
  Gt k = pairing::pair_product(pairs).pow(r);
  return Ciphertext{scheme_.params().base.mul(r),
                    xor_bytes(msg, scheme_.mask_h2(k, msg.size()))};
}

Bytes SplitAuthorityIdTre::decrypt(const Ciphertext& ct, const IdPrivateKey& key,
                                   const KeyUpdate& update) const {
  // K' = ê(U, d_ID + I_T): the additive trick again — one pairing.
  Gt k = pairing::pair(ct.u, key.d + update.sig);
  return xor_bytes(ct.v, scheme_.mask_h2(k, ct.v.size()));
}

}  // namespace tre::idtre
