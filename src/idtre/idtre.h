// §5.2 — Identity-based Timed Release Encryption (ID-TRE).
//
// The Chen-et-al. idea the paper reproduces: the receiver's public key is
// an identity string; the trusted authority (here the same entity as the
// time server, as in the paper's exposition) extracts the private key
// s·H1(ID). Encryption binds identity and release tag additively:
//   K_E = H1(ID) + H1(T),  K = ê(sG, K_E)^r,  C = ⟨rG, M ⊕ H2(K)⟩
// and decryption sums the private key with the broadcast update:
//   K_D = s·H1(ID) + s·H1(T) = s·K_E,  K' = ê(U, K_D).
//
// Key escrow is inherent (the server can decrypt everything) — the
// paper's motivation for the non-identity-based TRE. The single broadcast
// update per instant is retained.
#pragma once

#include "core/tre.h"

namespace tre::idtre {

using core::Ciphertext;
using core::FoCiphertext;
using core::Gt;
using core::KeyUpdate;
using core::Scalar;
using core::ServerKeyPair;
using core::ServerPublicKey;

/// The extracted s·H1(ID).
struct IdPrivateKey {
  std::string id;
  ec::G1Point d;
};

class IdTreScheme {
 public:
  explicit IdTreScheme(std::shared_ptr<const params::GdhParams> params);

  const params::GdhParams& params() const { return scheme_.params(); }

  /// Authority setup == server keygen (one entity in the paper's §5.2).
  ServerKeyPair setup(tre::hashing::RandomSource& rng) const;

  /// Private-key extraction for a user identity (requires master secret).
  IdPrivateKey extract(const ServerKeyPair& authority, std::string_view id) const;

  /// Checks an extracted key against the authority public key:
  /// ê(sG, H1(ID)) == ê(G, d).
  bool verify_private_key(const ServerPublicKey& authority,
                          const IdPrivateKey& key) const;

  /// Time-bound key updates are identical to TRE's.
  KeyUpdate issue_update(const ServerKeyPair& authority, std::string_view tag) const;
  bool verify_update(const ServerPublicKey& authority, const KeyUpdate& update) const;

  Ciphertext encrypt(ByteSpan msg, std::string_view id,
                     const ServerPublicKey& authority, std::string_view tag,
                     tre::hashing::RandomSource& rng) const;

  Bytes decrypt(const Ciphertext& ct, const IdPrivateKey& key,
                const KeyUpdate& update) const;

  /// Fujisaki-Okamoto variants (CCA in the ROM).
  FoCiphertext encrypt_fo(ByteSpan msg, std::string_view id,
                          const ServerPublicKey& authority, std::string_view tag,
                          tre::hashing::RandomSource& rng) const;
  std::optional<Bytes> decrypt_fo(const FoCiphertext& ct, const IdPrivateKey& key,
                                  const KeyUpdate& update,
                                  const ServerPublicKey& authority) const;

 private:
  Gt session_key(const ServerPublicKey& authority, std::string_view id,
                 std::string_view tag, const Scalar& r) const;

  core::TreScheme scheme_;  // reused H1/H2/serialization plumbing
};

}  // namespace tre::idtre
