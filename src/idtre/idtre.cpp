#include "idtre/idtre.h"

#include "hashing/kdf.h"

namespace tre::idtre {

using ec::G1Point;

namespace {
constexpr size_t kSigmaBytes = 32;
}

IdTreScheme::IdTreScheme(std::shared_ptr<const params::GdhParams> params)
    : scheme_(std::move(params)) {}

ServerKeyPair IdTreScheme::setup(tre::hashing::RandomSource& rng) const {
  return scheme_.server_keygen(rng);
}

IdPrivateKey IdTreScheme::extract(const ServerKeyPair& authority,
                                  std::string_view id) const {
  return IdPrivateKey{std::string(id), scheme_.hash_tag(id).mul(authority.s)};
}

bool IdTreScheme::verify_private_key(const ServerPublicKey& authority,
                                     const IdPrivateKey& key) const {
  if (key.d.is_infinity()) return false;
  return pairing::pairings_equal(authority.sg, scheme_.hash_tag(key.id),
                                 authority.g, key.d);
}

KeyUpdate IdTreScheme::issue_update(const ServerKeyPair& authority,
                                    std::string_view tag) const {
  return scheme_.issue_update(authority, tag);
}

bool IdTreScheme::verify_update(const ServerPublicKey& authority,
                                const KeyUpdate& update) const {
  return scheme_.verify_update(authority, update);
}

Gt IdTreScheme::session_key(const ServerPublicKey& authority, std::string_view id,
                            std::string_view tag, const Scalar& r) const {
  G1Point ke = scheme_.hash_tag(id) + scheme_.hash_tag(tag);
  return pairing::pair(authority.sg, ke).pow(r);
}

Ciphertext IdTreScheme::encrypt(ByteSpan msg, std::string_view id,
                                const ServerPublicKey& authority,
                                std::string_view tag,
                                tre::hashing::RandomSource& rng) const {
  Scalar r = params::random_scalar(scheme_.params(), rng);
  Gt k = session_key(authority, id, tag, r);
  return Ciphertext{authority.g.mul(r), xor_bytes(msg, scheme_.mask_h2(k, msg.size()))};
}

Bytes IdTreScheme::decrypt(const Ciphertext& ct, const IdPrivateKey& key,
                           const KeyUpdate& update) const {
  // K_D = s·H1(ID) + s·H1(T).
  G1Point kd = key.d + update.sig;
  Gt k = pairing::pair(ct.u, kd);
  return xor_bytes(ct.v, scheme_.mask_h2(k, ct.v.size()));
}

FoCiphertext IdTreScheme::encrypt_fo(ByteSpan msg, std::string_view id,
                                     const ServerPublicKey& authority,
                                     std::string_view tag,
                                     tre::hashing::RandomSource& rng) const {
  Bytes sigma = rng.bytes(kSigmaBytes);
  // Reuse the TRE H3 oracle for r = H3(sigma, M).
  Scalar r = scheme_.hash_to_scalar("TRE-H3", concat({sigma, msg}));
  Gt k = session_key(authority, id, tag, r);
  Bytes c_sigma = xor_bytes(sigma, scheme_.mask_h2(k, kSigmaBytes));
  Bytes c_msg = xor_bytes(msg, hashing::oracle_bytes("TRE-H4", sigma, msg.size()));
  return FoCiphertext{authority.g.mul(r), std::move(c_sigma), std::move(c_msg)};
}

std::optional<Bytes> IdTreScheme::decrypt_fo(const FoCiphertext& ct,
                                             const IdPrivateKey& key,
                                             const KeyUpdate& update,
                                             const ServerPublicKey& authority) const {
  if (ct.c_sigma.size() != kSigmaBytes) return std::nullopt;
  G1Point kd = key.d + update.sig;
  Gt k = pairing::pair(ct.u, kd);
  Bytes sigma = xor_bytes(ct.c_sigma, scheme_.mask_h2(k, kSigmaBytes));
  Bytes msg = xor_bytes(ct.c_msg, hashing::oracle_bytes("TRE-H4", sigma, ct.c_msg.size()));
  Scalar r = scheme_.hash_to_scalar("TRE-H3", concat({sigma, msg}));
  if (!(authority.g.mul(r) == ct.u)) return std::nullopt;
  return msg;
}

}  // namespace tre::idtre
