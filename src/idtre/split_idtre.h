// §5.2 with the roles separated: "the time server is the same entity as
// the trusted server assigning private keys ...; in real cases, it could
// be a different entity."
//
// Two independent masters over a common system generator G:
//   * the identity authority TA: secret s1, issues d_ID = s1·H1(ID);
//   * the time server TS: secret s2, broadcasts I_T = s2·H1(T).
// Encryption (Chen et al.'s multi-authority composition):
//   U = rG,  K = [ê(s1·G, H1(ID)) · ê(s2·G, H1(T))]^r
// Decryption:
//   K' = ê(U, d_ID) · ê(U, I_T)
// Now neither entity alone can read mail: the TA lacks the time secret's
// role only in *when*, but crucially the TS — the only always-online
// party — can no longer decrypt anything (it would need s1). Escrow is
// confined to the offline identity authority.
#pragma once

#include "idtre/idtre.h"

namespace tre::idtre {

class SplitAuthorityIdTre {
 public:
  explicit SplitAuthorityIdTre(std::shared_ptr<const params::GdhParams> params);

  const params::GdhParams& params() const { return scheme_.params(); }

  /// Both masters share the system base as generator (required so one
  /// ciphertext component rG serves both pairings).
  ServerKeyPair authority_keygen(tre::hashing::RandomSource& rng) const;

  IdPrivateKey extract(const ServerKeyPair& ta, std::string_view id) const;
  KeyUpdate issue_update(const ServerKeyPair& ts, std::string_view tag) const;

  bool verify_private_key(const ServerPublicKey& ta, const IdPrivateKey& key) const;
  bool verify_update(const ServerPublicKey& ts, const KeyUpdate& update) const;

  Ciphertext encrypt(ByteSpan msg, std::string_view id, const ServerPublicKey& ta,
                     const ServerPublicKey& ts, std::string_view tag,
                     tre::hashing::RandomSource& rng) const;

  Bytes decrypt(const Ciphertext& ct, const IdPrivateKey& key,
                const KeyUpdate& update) const;

 private:
  core::TreScheme scheme_;
};

}  // namespace tre::idtre
