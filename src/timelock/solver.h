// Checkpointed, resumable, self-validating RSW solver.
//
// Promotes baselines::Rsw from an experiment baseline into the
// production fallback lane of the hybrid envelope (timelock/hybrid.h):
// when the time server vanishes or withholds an update, the receiver can
// still open by grinding the puzzle's t sequential squarings — possibly
// over days, across process restarts, on hardware that flips bits.
// Three hardening measures make that practical:
//
//  1. **Checkpoints.** `checkpoint()` serializes the full solver state
//     (current residue, step count, rolling replay anchor) with a
//     puzzle fingerprint and an integrity hash; `restore()` resumes
//     from those bytes.
//  2. **Replay verification on resume.** Alongside the live residue the
//     solver keeps a *rolling anchor* — the residue from at most
//     `replay_window` steps ago. `restore()` re-squares the anchor
//     forward and compares against the checkpointed head, so a
//     corrupted (or maliciously edited) checkpoint is rejected instead
//     of silently poisoning days of work.
//  3. **A parallel-verifiable check lane**, in the idiom of the LCS35
//     solvers' square.c/validate.c pair: the chain is computed modulo
//     N = n·c for a fixed 61-bit Mersenne prime c = 2^61 - 1. At any
//     step i the residue reduced mod c must equal a^(2^i) mod c, which
//     is *directly* computable in O(log i) word operations via
//     Fermat's little theorem (reduce the exponent 2^i mod c-1) — a
//     compute error in the main chain is detected with overwhelming
//     probability at the next validate() for ~6% extra work per
//     squaring (33 vs 32 limbs).
//
// `key()` validates before unsealing, so a corrupted chain yields a
// typed error, never a wrong key.
#pragma once

#include <cstdint>
#include <optional>

#include "baselines/rsw_puzzle.h"
#include "bigint/bigint.h"
#include "bigint/montgomery.h"
#include "common/bytes.h"

namespace tre::timelock {

/// One limb wider than the puzzle modulus: the work modulus is n·c with
/// c a 61-bit prime.
inline constexpr size_t kWorkLimbs = baselines::kRswLimbs + 1;
using WorkInt = bigint::BigInt<kWorkLimbs>;

/// The check-lane prime c = 2^61 - 1 (Mersenne, odd, so n·c stays a
/// valid Montgomery modulus).
inline constexpr std::uint64_t kCheckPrime = (std::uint64_t{1} << 61) - 1;

struct SolverOptions {
  /// Steps between the rolling replay anchor updates; also the maximum
  /// replay work restore() performs. Small values mean cheap resume
  /// verification, large values mean less bookkeeping per step.
  std::uint64_t replay_window = 256;
  /// Run the mod-c check lane inside key() and restore(). Disabling it
  /// skips the compare (the chain still runs mod n·c).
  bool validate_lane = true;
};

class RswSolver {
 public:
  /// Starts a fresh solve of `puzzle` (state: 0 steps done).
  explicit RswSolver(const baselines::RswPuzzle& puzzle, SolverOptions opts = {});

  /// Resumes from checkpoint bytes. Throws tre::Error when the bytes are
  /// malformed, the integrity hash or puzzle fingerprint mismatches, or
  /// the anchor replay / check lane disagrees with the checkpointed head
  /// (i.e. the checkpoint is corrupt).
  static RswSolver restore(const baselines::RswPuzzle& puzzle, ByteSpan checkpoint,
                           SolverOptions opts = {});

  /// Runs at most `budget` squarings; returns how many were performed
  /// (0 once done).
  std::uint64_t advance(std::uint64_t budget);

  bool done() const { return steps_ == puzzle_.t; }
  std::uint64_t steps_done() const { return steps_; }
  std::uint64_t total_steps() const { return puzzle_.t; }

  /// The recovered payload key. Requires done(); runs the check lane
  /// first (unless disabled) and throws tre::Error if the chain fails
  /// validation.
  Bytes key() const;

  /// Serializes the solver state: magic || fingerprint(puzzle) || steps
  /// || residue || anchor steps || anchor residue || SHA-256 tag.
  Bytes checkpoint() const;

  /// Check-lane compare: head residue mod c vs the directly computed
  /// a^(2^steps) mod c. False means the main chain has gone wrong.
  bool validate() const;

  /// Flips one bit of the head residue — test hook proving validate()
  /// and the restore() replay actually catch compute corruption.
  void corrupt_state_for_testing();

 private:
  RswSolver(const baselines::RswPuzzle& puzzle, SolverOptions opts, WorkInt x_plain,
            std::uint64_t steps, WorkInt anchor_plain, std::uint64_t anchor_steps);

  baselines::RswPuzzle puzzle_;
  SolverOptions opts_;
  bigint::MontCtx<kWorkLimbs> mont_;  // modulus n·c
  WorkInt x_;                         // a^(2^steps) mod n·c, Montgomery form
  std::uint64_t steps_ = 0;
  WorkInt anchor_;  // residue at anchor_steps_, Montgomery form
  std::uint64_t anchor_steps_ = 0;
};

}  // namespace tre::timelock
