#include "timelock/hybrid.h"

#include "bls12/backend381.h"
#include "core/backend512.h"

namespace tre::timelock {

// Compile the envelope for both backends here so template breakage
// surfaces when this library builds, not first in some downstream test.
template struct BasicHybridEnvelope<core::Tre512Backend>;
template struct BasicHybridEnvelope<bls12::Bls381Backend>;

template BasicHybridEnvelope<core::Tre512Backend> seal_hybrid(
    const core::BasicTreScheme<core::Tre512Backend>&, core::Mode, ByteSpan,
    const core::BasicUserPublicKey<core::Tre512Backend>&,
    const core::BasicServerPublicKey<core::Tre512Backend>&, std::string_view,
    const FallbackParams&, tre::hashing::RandomSource&, core::KeyCheck);
template BasicHybridEnvelope<bls12::Bls381Backend> seal_hybrid(
    const core::BasicTreScheme<bls12::Bls381Backend>&, core::Mode, ByteSpan,
    const core::BasicUserPublicKey<bls12::Bls381Backend>&,
    const core::BasicServerPublicKey<bls12::Bls381Backend>&, std::string_view,
    const FallbackParams&, tre::hashing::RandomSource&, core::KeyCheck);

}  // namespace tre::timelock
