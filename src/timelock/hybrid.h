// Hybrid time-lock fallback envelope.
//
// The paper's TRE scheme makes release timing absolute, but a vanished
// or withholding time server strands every sealed ciphertext forever —
// the single point of failure the TLP literature's hybrid constructions
// close. A HybridEnvelope seals one fresh payload key Kp down TWO
// independent lanes:
//
//   server lane:  Kp sealed with core::seal under (user, server, tag) —
//                 opens the normal way once the epoch update I_T exists;
//   fallback lane: Kp sealed behind W sequential squarings of an RSW
//                 puzzle (baselines::Rsw + the checkpointed
//                 timelock::RswSolver) — opens after roughly
//                 W / (squarings per second) of wall-clock grinding,
//                 no server required.
//
// Both lanes recover the same Kp, so the message body (Kp-keyed stream
// cipher) opens bit-identically either way. An HMAC-SHA256 under Kp
// binds the entire transcript — both sealed lanes, nonce and body — so
// any splice of lanes from different envelopes or body tampering is
// rejected, whichever lane produced the key.
//
// On the wire the envelope leads with core::Mode::kHybrid, extending
// the SealedCiphertext mode-byte namespace (core::from_bytes points
// hybrid bytes here).
#pragma once

#include <cstdint>
#include <optional>

#include "baselines/rsw_puzzle.h"
#include "common/bytes.h"
#include "common/error.h"
#include "common/health.h"
#include "core/tre_core.h"
#include "hashing/hmac.h"
#include "hashing/kdf.h"
#include "timelock/solver.h"

namespace tre::timelock {

inline constexpr size_t kPayloadKeyBytes = 32;
inline constexpr size_t kNonceBytes = 16;
inline constexpr size_t kMacBytes = 32;

namespace detail {

inline Bytes keystream(ByteSpan payload_key, ByteSpan nonce, size_t len) {
  return hashing::keystream(payload_key, nonce, len);
}

inline Bytes transcript_mac(ByteSpan payload_key, ByteSpan key_ct_bytes,
                            ByteSpan puzzle_bytes, ByteSpan nonce, ByteSpan body) {
  return hashing::hmac_sha256_concat(
      payload_key,
      {tre::to_bytes("TRE-HYBRID-MAC"), key_ct_bytes, puzzle_bytes, nonce, body});
}

inline void put_u16(Bytes& out, size_t v) {
  require(v <= 0xffff, "HybridEnvelope: field too long for u16 length prefix");
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
}

inline void put_u32(Bytes& out, size_t v) {
  require(v <= 0xffffffffu, "HybridEnvelope: body too long for u32 length prefix");
  for (int i = 3; i >= 0; --i)
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
}

struct Cursor {
  ByteSpan bytes;
  size_t pos = 0;

  size_t remaining() const { return bytes.size() - pos; }
  ByteSpan take(size_t n) {
    require(remaining() >= n, "HybridEnvelope::from_bytes: truncated input");
    ByteSpan out = bytes.subspan(pos, n);
    pos += n;
    return out;
  }
  size_t take_u16() {
    ByteSpan b = take(2);
    return (static_cast<size_t>(b[0]) << 8) | b[1];
  }
  size_t take_u32() {
    ByteSpan b = take(4);
    size_t v = 0;
    for (size_t i = 0; i < 4; ++i) v = (v << 8) | b[i];
    return v;
  }
};

}  // namespace detail

/// Sender-side dials for the fallback lane.
struct FallbackParams {
  std::uint64_t squarings;        ///< W: sequential squarings to open serverless
  size_t modulus_bits = 1024;     ///< RSW modulus size (small in tests)
};

template <class B>
struct BasicHybridEnvelope {
  core::BasicSealedCiphertext<B> key_ct;  ///< server lane: Kp under TRE
  baselines::RswPuzzle puzzle;            ///< fallback lane: Kp behind W squarings
  Bytes nonce;                            ///< kNonceBytes of per-envelope salt
  Bytes body;                             ///< msg ⊕ keystream(Kp, nonce)
  Bytes mac;                              ///< HMAC-SHA256(Kp, whole transcript)

  /// Wire: kHybrid mode byte || u16 |key_ct| || key_ct || u16 |puzzle|
  /// || puzzle || nonce || u32 |body| || body || mac.
  Bytes to_bytes() const {
    Bytes out;
    out.push_back(static_cast<std::uint8_t>(core::Mode::kHybrid));
    Bytes kct = key_ct.to_bytes();
    detail::put_u16(out, kct.size());
    out.insert(out.end(), kct.begin(), kct.end());
    Bytes pz = puzzle.to_bytes();
    detail::put_u16(out, pz.size());
    out.insert(out.end(), pz.begin(), pz.end());
    require(nonce.size() == kNonceBytes, "HybridEnvelope: bad nonce size");
    out.insert(out.end(), nonce.begin(), nonce.end());
    detail::put_u32(out, body.size());
    out.insert(out.end(), body.begin(), body.end());
    require(mac.size() == kMacBytes, "HybridEnvelope: bad mac size");
    out.insert(out.end(), mac.begin(), mac.end());
    return out;
  }

  static BasicHybridEnvelope from_bytes(const typename B::Params& params,
                                        ByteSpan bytes) {
    detail::Cursor cur{bytes};
    ByteSpan mode = cur.take(1);
    require(mode[0] == static_cast<std::uint8_t>(core::Mode::kHybrid),
            "HybridEnvelope::from_bytes: wrong mode byte");
    BasicHybridEnvelope out;
    size_t kct_len = cur.take_u16();
    out.key_ct =
        core::BasicSealedCiphertext<B>::from_bytes(params, cur.take(kct_len));
    size_t pz_len = cur.take_u16();
    out.puzzle = baselines::RswPuzzle::from_bytes(cur.take(pz_len));
    ByteSpan nonce = cur.take(kNonceBytes);
    out.nonce.assign(nonce.begin(), nonce.end());
    size_t body_len = cur.take_u32();
    ByteSpan body = cur.take(body_len);
    out.body.assign(body.begin(), body.end());
    ByteSpan mac = cur.take(kMacBytes);
    out.mac.assign(mac.begin(), mac.end());
    require(cur.remaining() == 0, "HybridEnvelope::from_bytes: trailing bytes");
    return out;
  }

  static std::optional<BasicHybridEnvelope> try_from_bytes(
      const typename B::Params& params, ByteSpan bytes) {
    try {
      return from_bytes(params, bytes);
    } catch (const Error&) {
      return std::nullopt;
    }
  }

 private:
  // Aggregate needs a default state for from_bytes to fill in; the
  // variant default-constructs to a kBasic ciphertext, immediately
  // overwritten.
  BasicHybridEnvelope() = default;

 public:
  BasicHybridEnvelope(core::BasicSealedCiphertext<B> kct, baselines::RswPuzzle pz,
                      Bytes nonce_in, Bytes body_in, Bytes mac_in)
      : key_ct(std::move(kct)),
        puzzle(std::move(pz)),
        nonce(std::move(nonce_in)),
        body(std::move(body_in)),
        mac(std::move(mac_in)) {}
};

/// Seals `msg` so it opens either through the server lane (epoch key for
/// `tag`) or after `fallback.squarings` sequential squarings.
/// `inner_mode` picks the TRE flavour protecting Kp (kFo/kReact give the
/// server lane CCA integrity; the envelope MAC covers both lanes either
/// way).
template <class B>
BasicHybridEnvelope<B> seal_hybrid(const core::BasicTreScheme<B>& scheme,
                                   core::Mode inner_mode, ByteSpan msg,
                                   const core::BasicUserPublicKey<B>& user,
                                   const core::BasicServerPublicKey<B>& server,
                                   std::string_view tag,
                                   const FallbackParams& fallback,
                                   tre::hashing::RandomSource& rng,
                                   core::KeyCheck check = core::KeyCheck::kVerify) {
  health::ensure_operational();
  require(inner_mode != core::Mode::kHybrid,
          "seal_hybrid: inner mode must be a base flavour");
  require(fallback.squarings >= 1, "seal_hybrid: need at least one squaring");
  Bytes payload_key = rng.bytes(kPayloadKeyBytes);
  core::BasicSealedCiphertext<B> key_ct =
      scheme.seal(inner_mode, payload_key, user, server, tag, rng, check);
  baselines::RswTrapdoor trapdoor =
      baselines::Rsw::keygen(rng, fallback.modulus_bits);
  baselines::RswPuzzle puzzle =
      baselines::Rsw::seal(trapdoor, payload_key, fallback.squarings, rng);
  Bytes nonce = rng.bytes(kNonceBytes);
  Bytes body = xor_bytes(msg, detail::keystream(payload_key, nonce, msg.size()));
  Bytes mac = detail::transcript_mac(payload_key, key_ct.to_bytes(),
                                     puzzle.to_bytes(), nonce, body);
  return BasicHybridEnvelope<B>(std::move(key_ct), std::move(puzzle),
                                std::move(nonce), std::move(body), std::move(mac));
}

/// Shared tail of both lanes: authenticates the transcript under the
/// recovered payload key, then strips the stream cipher. nullopt on any
/// mismatch (wrong key, spliced lanes, tampered body) — fail closed.
template <class B>
std::optional<Bytes> open_hybrid_with_key(const BasicHybridEnvelope<B>& env,
                                          ByteSpan payload_key) {
  if (payload_key.size() != kPayloadKeyBytes) return std::nullopt;
  Bytes expect = detail::transcript_mac(payload_key, env.key_ct.to_bytes(),
                                        env.puzzle.to_bytes(), env.nonce, env.body);
  if (!ct_equal(expect, env.mac)) return std::nullopt;
  return xor_bytes(env.body,
                   detail::keystream(payload_key, env.nonce, env.body.size()));
}

/// Server lane: open with the user's secret and the epoch update, like
/// core::open.
template <class B>
std::optional<Bytes> open_hybrid(const core::BasicTreScheme<B>& scheme,
                                 const BasicHybridEnvelope<B>& env,
                                 const core::Scalar& a,
                                 const core::BasicKeyUpdate<B>& update,
                                 const core::BasicServerPublicKey<B>& server) {
  std::optional<Bytes> payload_key = scheme.open(env.key_ct, a, update, server);
  if (!payload_key) return std::nullopt;
  return open_hybrid_with_key(env, *payload_key);
}

/// Fallback lane: grind the puzzle to completion with the checkpointed
/// solver and open. For long solves drive RswSolver directly (advance /
/// checkpoint / restore) and finish with open_hybrid_with_key.
template <class B>
std::optional<Bytes> open_hybrid_via_puzzle(const BasicHybridEnvelope<B>& env,
                                            SolverOptions opts = {}) {
  RswSolver solver(env.puzzle, opts);
  while (!solver.done()) solver.advance(env.puzzle.t);
  return open_hybrid_with_key(env, solver.key());
}

}  // namespace tre::timelock
