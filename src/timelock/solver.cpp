#include "timelock/solver.h"

#include <algorithm>

#include "common/error.h"
#include "common/health.h"
#include "hashing/sha256.h"

namespace tre::timelock {

namespace {

constexpr char kMagic[8] = {'T', 'R', 'E', 'C', 'K', 'P', 'T', '1'};
constexpr size_t kResidueBytes = 8 * kWorkLimbs;
// magic || fingerprint || steps || x || anchor steps || anchor x || tag
constexpr size_t kCheckpointBytes = 8 + 32 + 8 + kResidueBytes + 8 + kResidueBytes + 32;

// 64-bit modular helpers for the check lane (modulus fits a word, so
// one __int128 product per multiply — the same extension bigint/ uses).
std::uint64_t mulmod64(std::uint64_t a, std::uint64_t b, std::uint64_t m) {
  return static_cast<std::uint64_t>((static_cast<unsigned __int128>(a) * b) % m);
}

std::uint64_t powmod64(std::uint64_t base, std::uint64_t exp, std::uint64_t m) {
  std::uint64_t acc = 1 % m;
  base %= m;
  while (exp != 0) {
    if (exp & 1) acc = mulmod64(acc, base, m);
    base = mulmod64(base, base, m);
    exp >>= 1;
  }
  return acc;
}

/// a^(2^steps) mod c, computed directly: by Fermat (c prime, c ∤ a) the
/// exponent reduces mod c-1, and 2^steps mod (c-1) is one word-sized
/// square-and-multiply chain — O(log steps) work total, independent of
/// the main chain.
std::uint64_t check_lane_expected(const baselines::RswPuzzle& puzzle,
                                  std::uint64_t steps) {
  WorkInt c = WorkInt::from_u64(kCheckPrime);
  std::uint64_t a_c = bigint::mod(puzzle.a.resized<kWorkLimbs>(), c).w[0];
  if (a_c == 0) return 0;  // a ≡ 0 (mod c): the whole chain is 0 mod c
  std::uint64_t e = powmod64(2, steps, kCheckPrime - 1);
  // (c-1) | 2^steps cannot happen (c-1 has the odd factor 2^60 - 1),
  // so e = 0 only for steps where 2^steps ≡ 0, i.e. never; keep the
  // Fermat fallback anyway for defensive completeness.
  if (e == 0) return 1;
  return powmod64(a_c, e, kCheckPrime);
}

WorkInt work_modulus(const baselines::RswPuzzle& puzzle) {
  return bigint::mul_wide(puzzle.n, baselines::RswInt::from_u64(kCheckPrime))
      .resized<kWorkLimbs>();
}

void put_u64(Bytes& out, std::uint64_t v) {
  for (int i = 7; i >= 0; --i)
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
}

std::uint64_t get_u64(ByteSpan b) {
  std::uint64_t v = 0;
  for (size_t i = 0; i < 8; ++i) v = (v << 8) | b[i];
  return v;
}

}  // namespace

RswSolver::RswSolver(const baselines::RswPuzzle& puzzle, SolverOptions opts)
    : RswSolver(puzzle, opts, puzzle.a.resized<kWorkLimbs>(), 0,
                puzzle.a.resized<kWorkLimbs>(), 0) {}

RswSolver::RswSolver(const baselines::RswPuzzle& puzzle, SolverOptions opts,
                     WorkInt x_plain, std::uint64_t steps, WorkInt anchor_plain,
                     std::uint64_t anchor_steps)
    : puzzle_(puzzle), opts_(opts), mont_(work_modulus(puzzle)) {
  require(opts_.replay_window >= 1, "RswSolver: replay_window must be positive");
  require(steps <= puzzle_.t, "RswSolver: state past the puzzle's step count");
  require(anchor_steps <= steps, "RswSolver: anchor ahead of head");
  x_ = mont_.to_mont(x_plain);
  steps_ = steps;
  anchor_ = mont_.to_mont(anchor_plain);
  anchor_steps_ = anchor_steps;
}

std::uint64_t RswSolver::advance(std::uint64_t budget) {
  std::uint64_t todo = std::min(budget, puzzle_.t - steps_);
  for (std::uint64_t i = 0; i < todo; ++i) {
    x_ = mont_.sqr(x_);
    ++steps_;
    if (steps_ - anchor_steps_ >= opts_.replay_window && steps_ < puzzle_.t) {
      anchor_ = x_;
      anchor_steps_ = steps_;
    }
  }
  return todo;
}

bool RswSolver::validate() const {
  WorkInt head = mont_.from_mont(x_);
  std::uint64_t got =
      bigint::mod(head, WorkInt::from_u64(kCheckPrime)).w[0];
  return got == check_lane_expected(puzzle_, steps_);
}

Bytes RswSolver::key() const {
  health::ensure_operational();
  require(done(), "RswSolver::key: puzzle not finished");
  if (opts_.validate_lane)
    require(validate(),
            "RswSolver::key: check lane mismatch — the squaring chain is corrupt");
  // n | n·c, so the head reduced mod n is exactly a^(2^t) mod n.
  WorkInt head = mont_.from_mont(x_);
  baselines::RswInt b =
      bigint::mod_wide(head, puzzle_.n);
  return baselines::Rsw::unseal(puzzle_, b);
}

Bytes RswSolver::checkpoint() const {
  Bytes out;
  out.reserve(kCheckpointBytes);
  out.insert(out.end(), kMagic, kMagic + sizeof(kMagic));
  Bytes fp = hashing::sha256(puzzle_.to_bytes());
  out.insert(out.end(), fp.begin(), fp.end());
  put_u64(out, steps_);
  Bytes head = mont_.from_mont(x_).to_bytes_be(kResidueBytes);
  out.insert(out.end(), head.begin(), head.end());
  put_u64(out, anchor_steps_);
  Bytes anchor = mont_.from_mont(anchor_).to_bytes_be(kResidueBytes);
  out.insert(out.end(), anchor.begin(), anchor.end());
  Bytes tag = hashing::sha256(out);
  out.insert(out.end(), tag.begin(), tag.end());
  return out;
}

RswSolver RswSolver::restore(const baselines::RswPuzzle& puzzle, ByteSpan checkpoint,
                             SolverOptions opts) {
  require(checkpoint.size() == kCheckpointBytes,
          "RswSolver::restore: wrong checkpoint size");
  size_t pos = 0;
  auto take = [&](size_t n) {
    ByteSpan out = checkpoint.subspan(pos, n);
    pos += n;
    return out;
  };
  ByteSpan magic = take(sizeof(kMagic));
  require(std::equal(magic.begin(), magic.end(), kMagic),
          "RswSolver::restore: bad magic");
  ByteSpan fp = take(32);
  ByteSpan steps_be = take(8);
  ByteSpan head_be = take(kResidueBytes);
  ByteSpan anchor_steps_be = take(8);
  ByteSpan anchor_be = take(kResidueBytes);
  ByteSpan tag = take(32);

  Bytes expect_tag = hashing::sha256(checkpoint.subspan(0, checkpoint.size() - 32));
  require(std::equal(tag.begin(), tag.end(), expect_tag.begin()),
          "RswSolver::restore: integrity hash mismatch");
  Bytes expect_fp = hashing::sha256(puzzle.to_bytes());
  require(std::equal(fp.begin(), fp.end(), expect_fp.begin()),
          "RswSolver::restore: checkpoint is for a different puzzle");

  std::uint64_t steps = get_u64(steps_be);
  std::uint64_t anchor_steps = get_u64(anchor_steps_be);
  require(steps <= puzzle.t, "RswSolver::restore: steps past the puzzle");
  require(anchor_steps <= steps, "RswSolver::restore: anchor ahead of head");
  require(steps - anchor_steps <= opts.replay_window,
          "RswSolver::restore: anchor gap exceeds the replay window");

  WorkInt head = WorkInt::from_bytes_be(head_be);
  WorkInt anchor = WorkInt::from_bytes_be(anchor_be);
  WorkInt n_c = work_modulus(puzzle);
  require(head < n_c && anchor < n_c, "RswSolver::restore: residue out of range");

  // Replay the anchor forward and compare with the checkpointed head:
  // at most replay_window squarings re-verify the chain's recent tail.
  bigint::MontCtx<kWorkLimbs> mont(n_c);
  WorkInt replay = mont.to_mont(anchor);
  for (std::uint64_t i = anchor_steps; i < steps; ++i) replay = mont.sqr(replay);
  require(mont.from_mont(replay) == head,
          "RswSolver::restore: anchor replay mismatch — corrupt checkpoint");

  RswSolver solver(puzzle, opts, head, steps, anchor, anchor_steps);
  if (opts.validate_lane)
    require(solver.validate(),
            "RswSolver::restore: check lane mismatch — corrupt checkpoint");
  return solver;
}

void RswSolver::corrupt_state_for_testing() { x_.w[0] ^= 1; }

}  // namespace tre::timelock
