// Fixed-width multi-precision integers.
//
// `BigInt<L>` is an unsigned little-endian array of L 64-bit limbs with
// value semantics. All arithmetic is branch-simple and allocation-free;
// the hot modular paths go through `MontCtx` (bigint/montgomery.h).
//
// Widths used in this repo:
//   BigInt<4>   (256 bits)  — group-order scalars
//   BigInt<12>  (768 bits)  — base-field elements (all parameter sets)
//   BigInt<24>  (1536 bits) — double-width field products
//   BigInt<32>  (2048 bits) — RSW time-lock puzzle moduli
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/error.h"

namespace tre::bigint {

template <size_t L>
struct BigInt {
  static_assert(L >= 1);
  static constexpr size_t kLimbs = L;
  static constexpr size_t kBits = 64 * L;

  std::array<std::uint64_t, L> w{};

  constexpr BigInt() = default;

  static constexpr BigInt from_u64(std::uint64_t v) {
    BigInt r;
    r.w[0] = v;
    return r;
  }

  static BigInt from_hex(std::string_view hex) {
    require(!hex.empty() && hex.size() <= 2 * 8 * L, "BigInt::from_hex: bad length");
    BigInt r;
    size_t nibble = 0;
    for (size_t i = hex.size(); i-- > 0;) {
      char c = hex[i];
      std::uint64_t d;
      if (c >= '0' && c <= '9') d = static_cast<std::uint64_t>(c - '0');
      else if (c >= 'a' && c <= 'f') d = static_cast<std::uint64_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') d = static_cast<std::uint64_t>(c - 'A' + 10);
      else throw Error("BigInt::from_hex: non-hex character");
      r.w[nibble / 16] |= d << (4 * (nibble % 16));
      ++nibble;
    }
    return r;
  }

  /// Big-endian byte parsing; input must fit in L limbs.
  static BigInt from_bytes_be(ByteSpan bytes) {
    require(bytes.size() <= 8 * L, "BigInt::from_bytes_be: too long");
    BigInt r;
    size_t byte_idx = 0;
    for (size_t i = bytes.size(); i-- > 0;) {
      r.w[byte_idx / 8] |= static_cast<std::uint64_t>(bytes[i]) << (8 * (byte_idx % 8));
      ++byte_idx;
    }
    return r;
  }

  /// Big-endian serialization, fixed `len` bytes (value must fit).
  Bytes to_bytes_be(size_t len) const {
    Bytes out(len, 0);
    for (size_t i = 0; i < len && i < 8 * L; ++i) {
      out[len - 1 - i] = static_cast<std::uint8_t>(w[i / 8] >> (8 * (i % 8)));
    }
    // Anything beyond `len` bytes must be zero.
    for (size_t i = len; i < 8 * L; ++i) {
      require((w[i / 8] >> (8 * (i % 8)) & 0xff) == 0, "BigInt::to_bytes_be: value too large");
    }
    return out;
  }

  std::string to_hex() const {
    std::string out;
    bool leading = true;
    for (size_t i = L; i-- > 0;) {
      for (int shift = 60; shift >= 0; shift -= 4) {
        auto nib = static_cast<unsigned>((w[i] >> shift) & 0xf);
        if (leading && nib == 0) continue;
        leading = false;
        out.push_back("0123456789abcdef"[nib]);
      }
    }
    if (out.empty()) out = "0";
    return out;
  }

  constexpr bool is_zero() const {
    for (auto limb : w)
      if (limb != 0) return false;
    return true;
  }

  constexpr bool is_odd() const { return (w[0] & 1) != 0; }

  constexpr bool bit(size_t i) const {
    return i < kBits && ((w[i / 64] >> (i % 64)) & 1) != 0;
  }

  constexpr size_t bit_length() const {
    for (size_t i = L; i-- > 0;) {
      if (w[i] != 0) return 64 * i + (64 - static_cast<size_t>(__builtin_clzll(w[i])));
    }
    return 0;
  }

  friend constexpr bool operator==(const BigInt&, const BigInt&) = default;

  friend constexpr std::strong_ordering operator<=>(const BigInt& a, const BigInt& b) {
    for (size_t i = L; i-- > 0;) {
      if (a.w[i] != b.w[i]) return a.w[i] <=> b.w[i];
    }
    return std::strong_ordering::equal;
  }

  /// Truncating resize (narrowing requires the high limbs to be zero).
  template <size_t L2>
  BigInt<L2> resized() const {
    BigInt<L2> r;
    for (size_t i = 0; i < std::min(L, L2); ++i) r.w[i] = w[i];
    if constexpr (L2 < L) {
      for (size_t i = L2; i < L; ++i) require(w[i] == 0, "BigInt::resized: truncation");
    }
    return r;
  }
};

// ---------------------------------------------------------------------------
// Add / subtract (carry-propagating, in place), shifts.

/// a += b; returns the carry out (0 or 1).
template <size_t L>
constexpr std::uint64_t add_assign(BigInt<L>& a, const BigInt<L>& b) {
  unsigned __int128 carry = 0;
  for (size_t i = 0; i < L; ++i) {
    unsigned __int128 t = static_cast<unsigned __int128>(a.w[i]) + b.w[i] + carry;
    a.w[i] = static_cast<std::uint64_t>(t);
    carry = t >> 64;
  }
  return static_cast<std::uint64_t>(carry);
}

/// a -= b; returns the borrow out (0 or 1).
template <size_t L>
constexpr std::uint64_t sub_assign(BigInt<L>& a, const BigInt<L>& b) {
  unsigned __int128 borrow = 0;
  for (size_t i = 0; i < L; ++i) {
    unsigned __int128 t = static_cast<unsigned __int128>(a.w[i]) - b.w[i] - borrow;
    a.w[i] = static_cast<std::uint64_t>(t);
    borrow = (t >> 64) & 1;
  }
  return static_cast<std::uint64_t>(borrow);
}

template <size_t L>
constexpr BigInt<L> add(BigInt<L> a, const BigInt<L>& b) {
  add_assign(a, b);
  return a;
}

template <size_t L>
constexpr BigInt<L> sub(BigInt<L> a, const BigInt<L>& b) {
  sub_assign(a, b);
  return a;
}

/// Logical left shift by `n` bits (bits shifted past the top are lost).
template <size_t L>
constexpr BigInt<L> shl(const BigInt<L>& a, size_t n) {
  BigInt<L> r;
  size_t limb_shift = n / 64, bit_shift = n % 64;
  for (size_t i = L; i-- > 0;) {
    std::uint64_t v = 0;
    if (i >= limb_shift) {
      v = a.w[i - limb_shift] << bit_shift;
      if (bit_shift != 0 && i > limb_shift) {
        v |= a.w[i - limb_shift - 1] >> (64 - bit_shift);
      }
    }
    r.w[i] = v;
  }
  return r;
}

/// Logical right shift by `n` bits.
template <size_t L>
constexpr BigInt<L> shr(const BigInt<L>& a, size_t n) {
  BigInt<L> r;
  size_t limb_shift = n / 64, bit_shift = n % 64;
  for (size_t i = 0; i < L; ++i) {
    std::uint64_t v = 0;
    if (i + limb_shift < L) {
      v = a.w[i + limb_shift] >> bit_shift;
      if (bit_shift != 0 && i + limb_shift + 1 < L) {
        v |= a.w[i + limb_shift + 1] << (64 - bit_shift);
      }
    }
    r.w[i] = v;
  }
  return r;
}

// ---------------------------------------------------------------------------
// Scalar recoding.

/// Upper bound on the number of wNAF digits of a BigInt<L>: one digit per
/// bit, plus one for the carry a negative digit can push past the top bit.
/// Sizes the stack scratch buffers of the allocation-free hot paths.
template <size_t L>
inline constexpr size_t kWnafMaxDigits = 64 * L + 1;

/// Width-w non-adjacent form: digits in {0, ±1, ±3, ..., ±(2^{w-1} − 1)},
/// least-significant first, with at most one nonzero digit in any `width`
/// consecutive positions. Shared by the G_1 scalar-multiplication engine
/// (ec/curve.cpp) and the unitary G_T exponentiation (field/fp2.cpp).
/// `width` must be in [2, 8]. Writes into `out` (capacity at least
/// kWnafMaxDigits<L>) and returns the digit count — the hot paths use a
/// stack buffer, so recoding allocates nothing.
template <size_t L>
inline size_t wnaf_into(BigInt<L> n, unsigned width, std::int8_t* out) {
  require(width >= 2 && width <= 8, "wnaf: width out of range");
  size_t count = 0;
  const std::uint64_t mask = (std::uint64_t{1} << width) - 1;
  const std::int64_t half = std::int64_t{1} << (width - 1);
  while (!n.is_zero()) {
    if (n.is_odd()) {
      std::int64_t d = static_cast<std::int64_t>(n.w[0] & mask);
      if (d >= half) d -= 2 * half;
      out[count++] = static_cast<std::int8_t>(d);
      if (d > 0) {
        sub_assign(n, BigInt<L>::from_u64(static_cast<std::uint64_t>(d)));
      } else {
        add_assign(n, BigInt<L>::from_u64(static_cast<std::uint64_t>(-d)));
      }
    } else {
      out[count++] = 0;
    }
    n = shr(n, 1);
  }
  return count;
}

/// Allocating convenience wrapper over wnaf_into.
template <size_t L>
inline std::vector<std::int8_t> wnaf(const BigInt<L>& n, unsigned width) {
  std::vector<std::int8_t> digits(kWnafMaxDigits<L>);
  digits.resize(wnaf_into(n, width, digits.data()));
  return digits;
}

// ---------------------------------------------------------------------------
// Multiplication (schoolbook, into a double-width result).

template <size_t LA, size_t LB>
constexpr BigInt<LA + LB> mul_wide(const BigInt<LA>& a, const BigInt<LB>& b) {
  BigInt<LA + LB> r;
  for (size_t i = 0; i < LA; ++i) {
    if (a.w[i] == 0) continue;
    unsigned __int128 carry = 0;
    for (size_t j = 0; j < LB; ++j) {
      unsigned __int128 t = static_cast<unsigned __int128>(a.w[i]) * b.w[j] +
                            r.w[i + j] + carry;
      r.w[i + j] = static_cast<std::uint64_t>(t);
      carry = t >> 64;
    }
    r.w[i + LB] += static_cast<std::uint64_t>(carry);
  }
  return r;
}

/// Multiply by a single 64-bit word, keeping the carry-out.
template <size_t L>
constexpr BigInt<L> mul_u64(const BigInt<L>& a, std::uint64_t b, std::uint64_t* carry_out = nullptr) {
  BigInt<L> r;
  unsigned __int128 carry = 0;
  for (size_t i = 0; i < L; ++i) {
    unsigned __int128 t = static_cast<unsigned __int128>(a.w[i]) * b + carry;
    r.w[i] = static_cast<std::uint64_t>(t);
    carry = t >> 64;
  }
  if (carry_out != nullptr) *carry_out = static_cast<std::uint64_t>(carry);
  return r;
}

// ---------------------------------------------------------------------------
// Division and reduction (binary long division; setup paths only — the
// hot modular arithmetic uses Montgomery form).

template <size_t L>
constexpr void divmod(const BigInt<L>& num, const BigInt<L>& den, BigInt<L>& quo,
                      BigInt<L>& rem) {
  require(!den.is_zero(), "divmod: division by zero");
  quo = BigInt<L>{};
  rem = BigInt<L>{};
  size_t nbits = num.bit_length();
  for (size_t i = nbits; i-- > 0;) {
    rem = shl(rem, 1);
    if (num.bit(i)) rem.w[0] |= 1;
    if (rem >= den) {
      sub_assign(rem, den);
      quo.w[i / 64] |= std::uint64_t{1} << (i % 64);
    }
  }
}

template <size_t L>
constexpr BigInt<L> mod(const BigInt<L>& a, const BigInt<L>& m) {
  BigInt<L> q, r;
  divmod(a, m, q, r);
  return r;
}

/// Reduces a wide value modulo an L-limb modulus.
template <size_t LW, size_t L>
constexpr BigInt<L> mod_wide(const BigInt<LW>& a, const BigInt<L>& m) {
  static_assert(LW >= L);
  BigInt<LW> q, r;
  divmod(a, m.template resized<LW>(), q, r);
  return r.template resized<L>();
}

// ---------------------------------------------------------------------------
// Modular helpers (values must already be < m).

template <size_t L>
constexpr BigInt<L> addmod(const BigInt<L>& a, const BigInt<L>& b, const BigInt<L>& m) {
  BigInt<L> r = a;
  std::uint64_t carry = add_assign(r, b);
  if (carry != 0 || r >= m) sub_assign(r, m);
  return r;
}

template <size_t L>
constexpr BigInt<L> submod(const BigInt<L>& a, const BigInt<L>& b, const BigInt<L>& m) {
  BigInt<L> r = a;
  if (sub_assign(r, b) != 0) add_assign(r, m);
  return r;
}

template <size_t L>
constexpr BigInt<L> mulmod(const BigInt<L>& a, const BigInt<L>& b, const BigInt<L>& m) {
  return mod_wide(mul_wide(a, b), m);
}

/// Inverse of `a` modulo odd `m` (binary extended GCD). Throws if a and m
/// are not coprime.
template <size_t L>
BigInt<L> mod_inverse(const BigInt<L>& a_in, const BigInt<L>& m) {
  require(m.is_odd() && !m.is_zero(), "mod_inverse: modulus must be odd");
  BigInt<L> a = a_in >= m ? mod(a_in, m) : a_in;
  require(!a.is_zero(), "mod_inverse: zero has no inverse");

  auto halve_mod = [&m](BigInt<L>& x) {
    // x <- x/2 (mod m), assuming x < m.
    if (x.is_odd()) {
      std::uint64_t carry = add_assign(x, m);
      x = shr(x, 1);
      if (carry != 0) x.w[L - 1] |= std::uint64_t{1} << 63;
    } else {
      x = shr(x, 1);
    }
  };

  BigInt<L> u = a, v = m;
  BigInt<L> x1 = BigInt<L>::from_u64(1), x2{};
  while (!(u == BigInt<L>::from_u64(1)) && !(v == BigInt<L>::from_u64(1))) {
    while (!u.is_odd()) {
      u = shr(u, 1);
      halve_mod(x1);
    }
    while (!v.is_odd()) {
      v = shr(v, 1);
      halve_mod(x2);
    }
    if (u >= v) {
      sub_assign(u, v);
      x1 = submod(x1, x2, m);
    } else {
      sub_assign(v, u);
      x2 = submod(x2, x1, m);
    }
    require(!u.is_zero() && !v.is_zero(), "mod_inverse: not coprime");
  }
  return u == BigInt<L>::from_u64(1) ? x1 : x2;
}

}  // namespace tre::bigint
