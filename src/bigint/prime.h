// Primality testing and prime generation (Miller–Rabin), plus uniform
// random sampling of BigInt values. Used by the parameter generator and
// by the RSW time-lock-puzzle baseline's RSA modulus generation.
#pragma once

#include "bigint/bigint.h"
#include "bigint/montgomery.h"
#include "hashing/drbg.h"

namespace tre::bigint {

/// Uniform value in [0, bound) by rejection sampling.
template <size_t L>
BigInt<L> random_below(tre::hashing::RandomSource& rng, const BigInt<L>& bound) {
  require(!bound.is_zero(), "random_below: zero bound");
  size_t bits = bound.bit_length();
  size_t bytes = (bits + 7) / 8;
  for (;;) {
    Bytes buf = rng.bytes(bytes);
    // Mask excess high bits so the rejection rate stays below 1/2.
    if (bits % 8 != 0) buf[0] &= static_cast<std::uint8_t>((1u << (bits % 8)) - 1);
    BigInt<L> v = BigInt<L>::from_bytes_be(buf);
    if (v < bound) return v;
  }
}

/// Uniform value in [1, bound).
template <size_t L>
BigInt<L> random_nonzero_below(tre::hashing::RandomSource& rng, const BigInt<L>& bound) {
  for (;;) {
    BigInt<L> v = random_below(rng, bound);
    if (!v.is_zero()) return v;
  }
}

/// Random integer with exactly `bits` bits (top bit set).
template <size_t L>
BigInt<L> random_bits(tre::hashing::RandomSource& rng, size_t bits) {
  require(bits >= 2 && bits <= BigInt<L>::kBits, "random_bits: bad width");
  size_t bytes = (bits + 7) / 8;
  Bytes buf = rng.bytes(bytes);
  if (bits % 8 != 0) buf[0] &= static_cast<std::uint8_t>((1u << (bits % 8)) - 1);
  BigInt<L> v = BigInt<L>::from_bytes_be(buf);
  v.w[(bits - 1) / 64] |= std::uint64_t{1} << ((bits - 1) % 64);
  return v;
}

namespace detail {
inline constexpr std::uint64_t kSmallPrimes[] = {
    3,  5,  7,  11, 13, 17, 19, 23, 29, 31, 37,  41,  43,  47,  53,  59,
    61, 67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137,
    139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211};
}

/// Miller–Rabin with `rounds` random bases. Composite inputs are rejected
/// with probability >= 1 - 4^{-rounds}.
template <size_t L>
bool is_probable_prime(const BigInt<L>& n, tre::hashing::RandomSource& rng,
                       int rounds = 40) {
  if (n.bit_length() < 2) return false;            // 0, 1
  if (n == BigInt<L>::from_u64(2)) return true;
  if (!n.is_odd()) return false;

  // Trial division by small primes.
  for (std::uint64_t sp : detail::kSmallPrimes) {
    BigInt<L> p = BigInt<L>::from_u64(sp);
    if (n == p) return true;
    BigInt<L> q, r;
    divmod(n, p, q, r);
    if (r.is_zero()) return false;
  }

  // n - 1 = d * 2^s
  BigInt<L> n_minus_1 = sub(n, BigInt<L>::from_u64(1));
  BigInt<L> d = n_minus_1;
  size_t s = 0;
  while (!d.is_odd()) {
    d = shr(d, 1);
    ++s;
  }

  MontCtx<L> mont(n);
  const BigInt<L> one_m = mont.one();
  const BigInt<L> minus_one_m = mont.sub(BigInt<L>{}, one_m);

  for (int round = 0; round < rounds; ++round) {
    BigInt<L> a = random_below(rng, sub(n, BigInt<L>::from_u64(3)));
    add_assign(a, BigInt<L>::from_u64(2));  // a in [2, n-2]
    BigInt<L> x = mont.pow(mont.to_mont(a), d);
    if (x == one_m || x == minus_one_m) continue;
    bool witness = true;
    for (size_t i = 1; i < s; ++i) {
      x = mont.sqr(x);
      if (x == minus_one_m) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

/// Random prime with exactly `bits` bits.
template <size_t L>
BigInt<L> random_prime(tre::hashing::RandomSource& rng, size_t bits, int mr_rounds = 40) {
  for (;;) {
    BigInt<L> cand = random_bits<L>(rng, bits);
    cand.w[0] |= 1;
    if (is_probable_prime(cand, rng, mr_rounds)) return cand;
  }
}

}  // namespace tre::bigint
