// Montgomery modular arithmetic with a runtime limb count.
//
// One `MontCtx<L>` is built per modulus (base field p, scalar field q,
// RSW modulus n, ...). The active limb count `n` is derived from the
// modulus so that a 96-bit toy field does not pay for the 768-bit
// capacity of the limb array. Multiplication is CIOS.
#pragma once

#include <cstdint>

#include "bigint/bigint.h"

namespace tre::bigint {

template <size_t L>
class MontCtx {
 public:
  /// `modulus` must be odd and > 1.
  explicit MontCtx(const BigInt<L>& modulus) : m_(modulus) {
    require(modulus.is_odd() && modulus.bit_length() > 1, "MontCtx: modulus must be odd and > 1");
    n_ = (modulus.bit_length() + 63) / 64;

    // n0inv = -m^{-1} mod 2^64 via Newton iteration.
    std::uint64_t inv = m_.w[0];
    for (int i = 0; i < 6; ++i) inv *= 2 - m_.w[0] * inv;
    n0inv_ = ~inv + 1;  // = -inv mod 2^64

    // R mod m by 64n doublings, then R^2 mod m with one wide reduction.
    BigInt<L> r = mod(BigInt<L>::from_u64(1), m_);
    for (size_t i = 0; i < 64 * n_; ++i) r = addmod(r, r, m_);
    one_ = r;
    r2_ = mod_wide(mul_wide(r, r), m_);
    r3_ = mul(r2_, r2_);  // R^2·R^2·R^{-1} = R^3
  }

  const BigInt<L>& modulus() const { return m_; }
  size_t active_limbs() const { return n_; }
  const BigInt<L>& one() const { return one_; }  // 1 in Montgomery form
  /// R^3 mod m: one Montgomery mul by this lifts a plain a^{-1}R^{-1}
  /// (the output of mod_inverse on a Montgomery residue) back to a^{-1}R.
  const BigInt<L>& r3() const { return r3_; }

  BigInt<L> to_mont(const BigInt<L>& x) const { return mul(x, r2_); }

  BigInt<L> from_mont(const BigInt<L>& x) const {
    return mul(x, BigInt<L>::from_u64(1));
  }

  /// Montgomery product a*b*R^{-1} mod m (CIOS over the active limbs).
  ///
  /// The common limb counts dispatch to a kernel whose loop bounds are
  /// compile-time constants: the compiler fully unrolls the CIOS inner
  /// loops and keeps t[] in registers, which is worth ~3x over the
  /// runtime-bounded fallback on 6-limb (381-bit) operands. Both paths
  /// run the identical algorithm, so results are bit-equal.
  BigInt<L> mul(const BigInt<L>& a, const BigInt<L>& b) const {
    switch (n_) {
      case 2: if constexpr (L >= 2) return mul_fixed<2>(a, b); break;
      case 3: if constexpr (L >= 3) return mul_fixed<3>(a, b); break;
      case 4: if constexpr (L >= 4) return mul_fixed<4>(a, b); break;
      case 5: if constexpr (L >= 5) return mul_fixed<5>(a, b); break;
      case 6: if constexpr (L >= 6) return mul_fixed<6>(a, b); break;
      case 8: if constexpr (L >= 8) return mul_fixed<8>(a, b); break;
      default: break;
    }
    return mul_any(a, b);
  }

  BigInt<L> mul_any(const BigInt<L>& a, const BigInt<L>& b) const {
    const size_t n = n_;
    // t has n+2 limbs of live state.
    std::uint64_t t[L + 2] = {};
    for (size_t i = 0; i < n; ++i) {
      // t += a[i] * b
      unsigned __int128 carry = 0;
      for (size_t j = 0; j < n; ++j) {
        unsigned __int128 s = static_cast<unsigned __int128>(a.w[i]) * b.w[j] + t[j] + carry;
        t[j] = static_cast<std::uint64_t>(s);
        carry = s >> 64;
      }
      unsigned __int128 s = static_cast<unsigned __int128>(t[n]) + carry;
      t[n] = static_cast<std::uint64_t>(s);
      t[n + 1] = static_cast<std::uint64_t>(s >> 64);

      // t += (t[0] * n0inv mod 2^64) * m;  then t >>= 64
      std::uint64_t u = t[0] * n0inv_;
      carry = 0;
      for (size_t j = 0; j < n; ++j) {
        unsigned __int128 s2 = static_cast<unsigned __int128>(u) * m_.w[j] + t[j] + carry;
        t[j] = static_cast<std::uint64_t>(s2);
        carry = s2 >> 64;
      }
      unsigned __int128 s2 = static_cast<unsigned __int128>(t[n]) + carry;
      t[n] = static_cast<std::uint64_t>(s2);
      t[n + 1] += static_cast<std::uint64_t>(s2 >> 64);

      for (size_t j = 0; j <= n; ++j) t[j] = t[j + 1];
      t[n + 1] = 0;
    }

    BigInt<L> r;
    for (size_t j = 0; j < n; ++j) r.w[j] = t[j];
    // Conditional final subtraction: the CIOS invariant keeps t < 2m.
    // Subtract over the active limbs only so a borrow consumed by the
    // carry limb t[n] does not corrupt the inactive high limbs.
    if (t[n] != 0 || r >= m_) {
      unsigned __int128 borrow = 0;
      for (size_t j = 0; j < n; ++j) {
        unsigned __int128 s = static_cast<unsigned __int128>(r.w[j]) - m_.w[j] - borrow;
        r.w[j] = static_cast<std::uint64_t>(s);
        borrow = (s >> 64) & 1;
      }
    }
    return r;
  }

  BigInt<L> sqr(const BigInt<L>& a) const { return mul(a, a); }

  /// Modular add/sub of reduced residues (both inputs < m, so the limbs
  /// above the active count are zero). Same dispatch trick as mul():
  /// fixed-bound kernels beat the full-width addmod/submod because the
  /// L-limb compare and conditional correction shrink to n limbs.
  BigInt<L> add(const BigInt<L>& a, const BigInt<L>& b) const {
    switch (n_) {
      case 2: if constexpr (L >= 2) return add_fixed<2>(a, b); break;
      case 3: if constexpr (L >= 3) return add_fixed<3>(a, b); break;
      case 4: if constexpr (L >= 4) return add_fixed<4>(a, b); break;
      case 5: if constexpr (L >= 5) return add_fixed<5>(a, b); break;
      case 6: if constexpr (L >= 6) return add_fixed<6>(a, b); break;
      case 8: if constexpr (L >= 8) return add_fixed<8>(a, b); break;
      default: break;
    }
    return addmod(a, b, m_);
  }
  BigInt<L> sub(const BigInt<L>& a, const BigInt<L>& b) const {
    switch (n_) {
      case 2: if constexpr (L >= 2) return sub_fixed<2>(a, b); break;
      case 3: if constexpr (L >= 3) return sub_fixed<3>(a, b); break;
      case 4: if constexpr (L >= 4) return sub_fixed<4>(a, b); break;
      case 5: if constexpr (L >= 5) return sub_fixed<5>(a, b); break;
      case 6: if constexpr (L >= 6) return sub_fixed<6>(a, b); break;
      case 8: if constexpr (L >= 8) return sub_fixed<8>(a, b); break;
      default: break;
    }
    return submod(a, b, m_);
  }

  /// a^e mod m with a in Montgomery form; result in Montgomery form.
  /// Square-and-multiply, MSB first.
  template <size_t LE>
  BigInt<L> pow(const BigInt<L>& a_mont, const BigInt<LE>& e) const {
    BigInt<L> acc = one_;
    size_t bits = e.bit_length();
    for (size_t i = bits; i-- > 0;) {
      acc = sqr(acc);
      if (e.bit(i)) acc = mul(acc, a_mont);
    }
    return acc;
  }

  /// Convenience: plain-representation modular exponentiation.
  template <size_t LE>
  BigInt<L> pow_plain(const BigInt<L>& base, const BigInt<LE>& e) const {
    return from_mont(pow(to_mont(mod(base, m_)), e));
  }

 private:
  /// a >= b over the low N limbs (callers guarantee limbs >= N are equal).
  template <size_t N>
  static bool geq_fixed(const BigInt<L>& a, const BigInt<L>& b) {
    for (size_t j = N; j-- > 0;) {
      if (a.w[j] != b.w[j]) return a.w[j] > b.w[j];
    }
    return true;
  }

  /// CIOS with a compile-time limb bound — same algorithm as mul_any.
  template <size_t N>
  BigInt<L> mul_fixed(const BigInt<L>& a, const BigInt<L>& b) const {
    static_assert(N <= L);
    std::uint64_t t[N + 2] = {};
    for (size_t i = 0; i < N; ++i) {
      // t += a[i] * b
      unsigned __int128 carry = 0;
      for (size_t j = 0; j < N; ++j) {
        unsigned __int128 s = static_cast<unsigned __int128>(a.w[i]) * b.w[j] + t[j] + carry;
        t[j] = static_cast<std::uint64_t>(s);
        carry = s >> 64;
      }
      unsigned __int128 s = static_cast<unsigned __int128>(t[N]) + carry;
      t[N] = static_cast<std::uint64_t>(s);
      t[N + 1] = static_cast<std::uint64_t>(s >> 64);

      // t += (t[0] * n0inv mod 2^64) * m;  then t >>= 64
      std::uint64_t u = t[0] * n0inv_;
      carry = 0;
      for (size_t j = 0; j < N; ++j) {
        unsigned __int128 s2 = static_cast<unsigned __int128>(u) * m_.w[j] + t[j] + carry;
        t[j] = static_cast<std::uint64_t>(s2);
        carry = s2 >> 64;
      }
      unsigned __int128 s2 = static_cast<unsigned __int128>(t[N]) + carry;
      t[N] = static_cast<std::uint64_t>(s2);
      t[N + 1] += static_cast<std::uint64_t>(s2 >> 64);

      for (size_t j = 0; j <= N; ++j) t[j] = t[j + 1];
      t[N + 1] = 0;
    }

    BigInt<L> r;
    for (size_t j = 0; j < N; ++j) r.w[j] = t[j];
    if (t[N] != 0 || geq_fixed<N>(r, m_)) {
      unsigned __int128 borrow = 0;
      for (size_t j = 0; j < N; ++j) {
        unsigned __int128 s = static_cast<unsigned __int128>(r.w[j]) - m_.w[j] - borrow;
        r.w[j] = static_cast<std::uint64_t>(s);
        borrow = (s >> 64) & 1;
      }
    }
    return r;
  }

  template <size_t N>
  BigInt<L> add_fixed(const BigInt<L>& a, const BigInt<L>& b) const {
    static_assert(N <= L);
    BigInt<L> r;
    unsigned __int128 carry = 0;
    for (size_t j = 0; j < N; ++j) {
      unsigned __int128 s = static_cast<unsigned __int128>(a.w[j]) + b.w[j] + carry;
      r.w[j] = static_cast<std::uint64_t>(s);
      carry = s >> 64;
    }
    if (carry != 0 || geq_fixed<N>(r, m_)) {
      unsigned __int128 borrow = 0;
      for (size_t j = 0; j < N; ++j) {
        unsigned __int128 s = static_cast<unsigned __int128>(r.w[j]) - m_.w[j] - borrow;
        r.w[j] = static_cast<std::uint64_t>(s);
        borrow = (s >> 64) & 1;
      }
    }
    return r;
  }

  template <size_t N>
  BigInt<L> sub_fixed(const BigInt<L>& a, const BigInt<L>& b) const {
    static_assert(N <= L);
    BigInt<L> r;
    unsigned __int128 borrow = 0;
    for (size_t j = 0; j < N; ++j) {
      unsigned __int128 s = static_cast<unsigned __int128>(a.w[j]) - b.w[j] - borrow;
      r.w[j] = static_cast<std::uint64_t>(s);
      borrow = (s >> 64) & 1;
    }
    if (borrow != 0) {
      unsigned __int128 carry = 0;
      for (size_t j = 0; j < N; ++j) {
        unsigned __int128 s = static_cast<unsigned __int128>(r.w[j]) + m_.w[j] + carry;
        r.w[j] = static_cast<std::uint64_t>(s);
        carry = s >> 64;
      }
    }
    return r;
  }

  BigInt<L> m_;
  size_t n_;
  std::uint64_t n0inv_;
  BigInt<L> r2_;
  BigInt<L> r3_;
  BigInt<L> one_;
};

}  // namespace tre::bigint
