// The symmetric bilinear map ê : G_1 × G_1 -> G_2.
//
// Realized as the modified Tate pairing on the supersingular curve:
//   ê(P, Q) = f_{q,P}(φ(Q))^{(p^2-1)/q},   φ(x, y) = (ζ·x, y)
// with ζ a primitive cube root of unity in F_p2 \ F_p (the distortion
// map; well-defined because ζ^3 = 1 keeps φ(Q) on the curve).
//
// Two Miller-loop implementations:
//   * pair()/miller_loop(): Jacobian-coordinate loop, inversion-free.
//     Line and vertical values are cleared of their F_p* denominators —
//     legal because c^((p^2-1)/q) = 1 for any c in F_p*.
//   * pair_affine(): the textbook affine loop (one field inversion per
//     step), kept as the cross-checked reference implementation and for
//     the ablation benchmark.
//
// The split into miller_loop() + final_exponentiation() enables products
// of pairings (multi-server decryption, equality checks) to share a
// single final exponentiation.
//
// Precondition: inputs lie in the order-q subgroup G_1 (guaranteed for
// all scheme values: generators, public keys and H1 outputs).
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "ec/curve.h"
#include "field/fp2.h"

namespace tre::pairing {

/// Target-group element (norm-1 subgroup of F_p2*, order q).
using Gt = field::Fp2;

/// Un-exponentiated Miller-loop value, kept as numerator/denominator so
/// products need only one inversion at the end.
struct MillerValue {
  field::Fp2 num;
  field::Fp2 den;

  MillerValue operator*(const MillerValue& o) const {
    return MillerValue{num * o.num, den * o.den};
  }
};

/// f_{q,P}(φ(Q)) without the final exponentiation. Either input at
/// infinity yields the neutral value.
MillerValue miller_loop(const ec::G1Point& p, const ec::G1Point& q);

/// Π f_{q,P_i}(φ(Q_i)) computed in ONE loop: the accumulator is squared
/// once per bit of q and every pair's line values are folded into it, so
/// n pairings pay for one set of accumulator squarings instead of n.
/// Backs pair_product and pairings_equal.
MillerValue miller_loop_multi(std::span<const std::pair<ec::G1Point, ec::G1Point>> pairs);

/// z -> z^((p^2-1)/q), mapping a Miller value into G_2.
Gt final_exponentiation(const ec::CurveCtx* curve, const MillerValue& f);

/// ê(P, Q). Returns 1 when either input is infinity.
Gt pair(const ec::G1Point& p, const ec::G1Point& q);

/// Reference affine implementation (slow; tests assert it agrees).
Gt pair_affine(const ec::G1Point& p, const ec::G1Point& q);

/// Π ê(p_i, q_i) with one shared final exponentiation.
Gt pair_product(std::span<const std::pair<ec::G1Point, ec::G1Point>> pairs);

/// ê(a1, a2) == ê(b1, b2), computed as one product ê(a1,a2)·ê(b1,-b2)
/// and a single final exponentiation (the scheme's verification paths).
bool pairings_equal(const ec::G1Point& a1, const ec::G1Point& a2,
                    const ec::G1Point& b1, const ec::G1Point& b2);

/// Identity of G_2.
Gt gt_identity(const ec::CurveCtx* curve);

/// Miller loop with a precomputed first argument.
///
/// The loop's point arithmetic depends only on P, so for a P reused across
/// many pairings (a key update I_T shared by every ciphertext under one
/// tag, an epoch key, a server public key) the affine line coefficients
/// (slope, point) of every step can be computed once. pair(Q) then only
/// evaluates the stored lines at φ(Q) — about half the field work of a
/// full Miller loop. Values equal pair(P, Q) exactly (and pair(Q, P): the
/// pairing is symmetric on the cyclic G_1).
///
/// Precondition (as for pair()): P in the order-q subgroup. Degenerate
/// bases (infinity, small order) fall back to the generic loop.
class MillerPrecomp {
 public:
  explicit MillerPrecomp(const ec::G1Point& p);

  const ec::G1Point& point() const { return p_; }

  MillerValue miller(const ec::G1Point& q) const;
  Gt pair(const ec::G1Point& q) const;

 private:
  enum class StepKind : std::uint8_t {
    kSquare,    // square the accumulator (once per bit)
    kLine,      // numerator: line through V (slope lambda at (x, y)); denominator: vertical at x_after
    kLineFinal, // numerator line only (the step moved V to infinity)
    kVertical,  // numerator: vertical at x (2-torsion / V == -P); loop ends
  };
  struct Step {
    StepKind kind;
    field::Fp lambda, x, y;  // line data (unused for kSquare)
    field::Fp x_after;       // vertical denominator after the step (kLine)
  };

  ec::G1Point p_;
  bool degenerate_ = false;  // infinity or non-subgroup base: generic path
  std::vector<Step> steps_;
};

}  // namespace tre::pairing
