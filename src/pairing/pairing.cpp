#include "pairing/pairing.h"

namespace tre::pairing {

using ec::CurveCtx;
using ec::G1Point;
using field::Fp;
using field::Fp2;
using field::FpInt;

namespace {

MillerValue neutral(const field::FpCtx* fp) {
  return MillerValue{Fp2::one(fp), Fp2::one(fp)};
}

// Evaluation point φ(Q) split into its precomputed pieces.
struct DistortedQ {
  Fp2 x;  // ζ·x_Q ∈ F_p2
  Fp y;   // y_Q ∈ F_p
};

}  // namespace

Gt gt_identity(const CurveCtx* curve) { return Fp2::one(curve->fp.get()); }

// ---------------------------------------------------------------------------
// Jacobian (inversion-free) Miller loop.
//
// V = (X : Y : Z), x_V = X/Z^2, y_V = Y/Z^3. Every line/vertical value is
// multiplied through by its F_p* denominator, which the final
// exponentiation annihilates.

MillerValue miller_loop(const G1Point& p, const G1Point& q) {
  require(p.curve() != nullptr && p.curve() == q.curve(), "miller_loop: curve mismatch");
  const CurveCtx* curve = p.curve();
  const field::FpCtx* fp = curve->fp.get();
  if (p.is_infinity() || q.is_infinity()) return neutral(fp);

  const DistortedQ dq{curve->zeta.scale(q.x()), q.y()};
  const Fp xp = p.x();
  const Fp yp = p.y();

  Fp2 f_num = Fp2::one(fp);
  Fp2 f_den = Fp2::one(fp);

  // V starts at P in Jacobian coordinates with Z = 1.
  Fp X = xp, Y = yp, Z = Fp::one(fp);
  bool v_infinity = false;

  const FpInt& order = curve->q;
  for (size_t i = order.bit_length() - 1; i-- > 0;) {
    f_num = f_num.squared();
    f_den = f_den.squared();

    if (!v_infinity) {
      if (Y.is_zero()) {
        // 2-torsion: tangent is the vertical x - x_V, scaled by Z^2.
        f_num = f_num * (dq.x.scale(Z.squared()) - Fp2::from_fp(X));
        v_infinity = true;
      } else {
        // Doubling with tangent-line evaluation (a = 0 curve).
        Fp A = X.squared();         // X^2
        Fp B = Y.squared();         // Y^2
        Fp C = B.squared();         // Y^4
        Fp Z2 = Z.squared();
        Fp D = (X + B).squared() - A - C;
        D = D + D;                  // 4XY^2
        Fp E = A + A + A;           // 3X^2
        Fp X3 = E.squared() - (D + D);
        Fp C8 = C + C;
        C8 = C8 + C8;
        C8 = C8 + C8;               // 8Y^4
        Fp Y3 = E * (D - X3) - C8;
        Fp Z3 = (Y * Z).doubled();  // 2YZ

        // Tangent at V evaluated at (x, y), cleared by 2YZ^3:
        //   L = Z3·Z2·y − 2B + 3A·X − (3A·Z2)·x
        Fp scalar_part = Z3 * Z2 * dq.y - (B + B) + E * X;
        Fp2 line = Fp2::from_fp(scalar_part) - dq.x.scale(E * Z2);
        f_num = f_num * line;

        X = X3;
        Y = Y3;
        Z = Z3;
        if (Z.is_zero()) {
          v_infinity = true;  // doubled into infinity (adversarial input)
        } else {
          // Vertical at 2V, cleared by Z3^2: Z3^2·x − X3.
          f_den = f_den * (dq.x.scale(Z.squared()) - Fp2::from_fp(X));
        }
      }
    }

    if (order.bit(i) && !v_infinity) {
      // Mixed addition V + P with line evaluation.
      Fp Z2 = Z.squared();
      Fp U2 = xp * Z2;       // x_P lifted
      Fp S2 = yp * Z2 * Z;   // y_P lifted
      if (U2 == X) {
        if (S2 == Y) {
          // V == P (only reachable on adversarial low-order inputs):
          // fall back to the affine tangent — inversions are fine on
          // this cold path.
          Fp xv = X * Z2.inverse();
          Fp yv = Y * (Z2 * Z).inverse();
          Fp lambda =
              (xv.squared() + xv.squared() + xv.squared()) * (yv + yv).inverse();
          Fp2 line = (Fp2::from_fp(dq.y) - Fp2::from_fp(yv)) -
                     (dq.x - Fp2::from_fp(xv)).scale(lambda);
          f_num = f_num * line;
          Fp x_new = lambda.squared() - xv - xv;
          Fp y_new = lambda * (xv - x_new) - yv;
          X = x_new;
          Y = y_new;
          Z = Fp::one(fp);
          f_den = f_den * (dq.x - Fp2::from_fp(X));
        } else {
          // V == -P: vertical through P; V + P = O. The final addition.
          f_num = f_num * (dq.x - Fp2::from_fp(xp));
          v_infinity = true;
        }
      } else {
        Fp H = U2 - X;
        Fp RR = S2 - Y;
        Fp H2 = H.squared();
        Fp H3 = H2 * H;
        Fp XH2 = X * H2;
        Fp X3 = RR.squared() - H3 - (XH2 + XH2);
        Fp Y3 = RR * (XH2 - X3) - Y * H3;
        Fp Z3 = Z * H;

        // Line through V and P evaluated at (x, y), cleared by Z3:
        //   L = Z3·(y − y_P) − RR·(x − x_P)
        Fp scalar_part = Z3 * (dq.y - yp) + RR * xp;
        Fp2 line = Fp2::from_fp(scalar_part) - dq.x.scale(RR);
        f_num = f_num * line;

        X = X3;
        Y = Y3;
        Z = Z3;
        if (Z.is_zero()) {
          v_infinity = true;
        } else {
          f_den = f_den * (dq.x.scale(Z.squared()) - Fp2::from_fp(X));
        }
      }
    }
  }

  require(!f_num.is_zero() && !f_den.is_zero(),
          "miller_loop: degenerate value (inputs outside G_1?)");
  return MillerValue{f_num, f_den};
}

Gt final_exponentiation(const CurveCtx* curve, const MillerValue& f) {
  // f^((p-1)·(p+1)/q). z^p = conj(z) on F_p2, so (num/den)^(p-1)
  // = (conj(num)·den) / (conj(den)·num) — still only one inversion.
  Fp2 a = f.num.conjugate() * f.den;
  Fp2 b = f.den.conjugate() * f.num;
  Fp2 g = a * b.inverse();
  return g.pow(curve->cofactor);
}

Gt pair(const G1Point& p, const G1Point& q) {
  require(p.curve() != nullptr && p.curve() == q.curve(), "pair: curve mismatch");
  if (p.is_infinity() || q.is_infinity()) return gt_identity(p.curve());
  return final_exponentiation(p.curve(), miller_loop(p, q));
}

Gt pair_product(std::span<const std::pair<G1Point, G1Point>> pairs) {
  require(!pairs.empty(), "pair_product: empty input");
  const CurveCtx* curve = pairs.front().first.curve();
  require(curve != nullptr, "pair_product: null curve");
  MillerValue acc = neutral(curve->fp.get());
  for (const auto& [p, q] : pairs) {
    require(p.curve() == curve && q.curve() == curve, "pair_product: curve mismatch");
    acc = acc * miller_loop(p, q);
  }
  return final_exponentiation(curve, acc);
}

bool pairings_equal(const G1Point& a1, const G1Point& a2, const G1Point& b1,
                    const G1Point& b2) {
  const CurveCtx* curve = a1.curve();
  require(curve != nullptr, "pairings_equal: null curve");
  // ê(a1,a2)·ê(b1,b2)^{-1} == 1, sharing one final exponentiation.
  // Degenerate inputs (infinity) fall back to two plain pairings.
  if (a1.is_infinity() || a2.is_infinity() || b1.is_infinity() || b2.is_infinity()) {
    return pair(a1, a2) == pair(b1, b2);
  }
  MillerValue f = miller_loop(a1, a2) * miller_loop(b1, -b2);
  return final_exponentiation(curve, f).is_one();
}

// ---------------------------------------------------------------------------
// Reference affine implementation (kept verbatim from the first version;
// the test suite asserts pair() == pair_affine() on random inputs).

namespace {

struct Accumulator {
  Fp2 num;
  Fp2 den;

  void square() {
    num = num.squared();
    den = den.squared();
  }
  void mul_num(const Fp2& v) { num = num * v; }
  void mul_den(const Fp2& v) { den = den * v; }
};

}  // namespace

Gt pair_affine(const G1Point& p, const G1Point& q) {
  require(p.curve() != nullptr && p.curve() == q.curve(), "pair_affine: curve mismatch");
  const CurveCtx* curve = p.curve();
  const field::FpCtx* fp = curve->fp.get();
  if (p.is_infinity() || q.is_infinity()) return gt_identity(curve);

  const Fp2 qx = curve->zeta.scale(q.x());
  const Fp2 qy = Fp2::from_fp(q.y());

  Accumulator acc{Fp2::one(fp), Fp2::one(fp)};
  Fp xv = p.x();
  Fp yv = p.y();
  bool v_infinity = false;

  const Fp xp = p.x();
  const Fp yp = p.y();
  const FpInt& order = curve->q;

  auto line_through = [&](const Fp& lx, const Fp& ly, const Fp& lambda) {
    return (qy - Fp2::from_fp(ly)) - (qx - Fp2::from_fp(lx)).scale(lambda);
  };
  auto vertical_at = [&](const Fp& lx) { return qx - Fp2::from_fp(lx); };

  for (size_t i = order.bit_length() - 1; i-- > 0;) {
    acc.square();
    if (!v_infinity) {
      if (yv.is_zero()) {
        acc.mul_num(vertical_at(xv));
        v_infinity = true;
      } else {
        Fp x2 = xv.squared();
        Fp lambda = (x2 + x2 + x2) * (yv + yv).inverse();
        acc.mul_num(line_through(xv, yv, lambda));
        Fp x_new = lambda.squared() - xv - xv;
        Fp y_new = lambda * (xv - x_new) - yv;
        xv = x_new;
        yv = y_new;
        acc.mul_den(vertical_at(xv));
      }
    }
    if (order.bit(i) && !v_infinity) {
      if (xv == xp) {
        if (yv == yp) {
          Fp x2 = xv.squared();
          Fp lambda = (x2 + x2 + x2) * (yv + yv).inverse();
          acc.mul_num(line_through(xv, yv, lambda));
          Fp x_new = lambda.squared() - xv - xv;
          Fp y_new = lambda * (xv - x_new) - yv;
          xv = x_new;
          yv = y_new;
          acc.mul_den(vertical_at(xv));
        } else {
          acc.mul_num(vertical_at(xv));
          v_infinity = true;
        }
      } else {
        Fp lambda = (yp - yv) * (xp - xv).inverse();
        acc.mul_num(line_through(xv, yv, lambda));
        Fp x_new = lambda.squared() - xv - xp;
        Fp y_new = lambda * (xv - x_new) - yv;
        xv = x_new;
        yv = y_new;
        acc.mul_den(vertical_at(xv));
      }
    }
  }

  require(!acc.num.is_zero() && !acc.den.is_zero(),
          "pair_affine: degenerate Miller value (inputs outside G_1?)");
  Fp2 f = acc.num * acc.den.inverse();
  Fp2 g = f.conjugate() * f.inverse();
  return g.pow(curve->cofactor);
}

}  // namespace tre::pairing
