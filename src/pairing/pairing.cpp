#include "pairing/pairing.h"

namespace tre::pairing {

using ec::CurveCtx;
using ec::G1Point;
using field::Fp;
using field::Fp2;
using field::FpInt;

namespace {

MillerValue neutral(const field::FpCtx* fp) {
  return MillerValue{Fp2::one(fp), Fp2::one(fp)};
}

// Evaluation point φ(Q) split into its precomputed pieces.
struct DistortedQ {
  Fp2 x;  // ζ·x_Q ∈ F_p2
  Fp y;   // y_Q ∈ F_p
};

}  // namespace

Gt gt_identity(const CurveCtx* curve) { return Fp2::one(curve->fp.get()); }

// ---------------------------------------------------------------------------
// Jacobian (inversion-free) Miller loop.
//
// V = (X : Y : Z), x_V = X/Z^2, y_V = Y/Z^3. Every line/vertical value is
// multiplied through by its F_p* denominator, which the final
// exponentiation annihilates.
//
// The loop is factored into per-pair doubling/addition steps driven by a
// shared accumulator: miller_loop_multi squares f once per bit of q and
// folds every pair's line values into it, so a product of n pairings costs
// one set of accumulator squarings instead of n (pair_product,
// pairings_equal, and the multi-server/threshold paths all hit this).

namespace {

// Per-pair Miller state: the evaluation point pieces and the running V.
struct PairMillerState {
  DistortedQ dq;
  Fp xp, yp;  // P affine
  Fp X, Y, Z;
  bool v_infinity = false;
};

void miller_double_step(PairMillerState& st, Fp2& f_num, Fp2& f_den,
                        [[maybe_unused]] const field::FpCtx* fp) {
  if (st.v_infinity) return;
  if (st.Y.is_zero()) {
    // 2-torsion: tangent is the vertical x - x_V, scaled by Z^2.
    f_num = f_num * (st.dq.x.scale(st.Z.squared()) - Fp2::from_fp(st.X));
    st.v_infinity = true;
    return;
  }
  // Doubling with tangent-line evaluation (a = 0 curve).
  Fp A = st.X.squared();         // X^2
  Fp B = st.Y.squared();         // Y^2
  Fp C = B.squared();            // Y^4
  Fp Z2 = st.Z.squared();
  Fp D = (st.X + B).squared() - A - C;
  D = D + D;                     // 4XY^2
  Fp E = A + A + A;              // 3X^2
  Fp X3 = E.squared() - (D + D);
  Fp C8 = C + C;
  C8 = C8 + C8;
  C8 = C8 + C8;                  // 8Y^4
  Fp Y3 = E * (D - X3) - C8;
  Fp Z3 = (st.Y * st.Z).doubled();  // 2YZ

  // Tangent at V evaluated at (x, y), cleared by 2YZ^3:
  //   L = Z3·Z2·y − 2B + 3A·X − (3A·Z2)·x
  Fp scalar_part = Z3 * Z2 * st.dq.y - (B + B) + E * st.X;
  Fp2 line = Fp2::from_fp(scalar_part) - st.dq.x.scale(E * Z2);
  f_num = f_num * line;

  st.X = X3;
  st.Y = Y3;
  st.Z = Z3;
  if (st.Z.is_zero()) {
    st.v_infinity = true;  // doubled into infinity (adversarial input)
  } else {
    // Vertical at 2V, cleared by Z3^2: Z3^2·x − X3.
    f_den = f_den * (st.dq.x.scale(st.Z.squared()) - Fp2::from_fp(st.X));
  }
}

void miller_add_step(PairMillerState& st, Fp2& f_num, Fp2& f_den,
                     const field::FpCtx* fp) {
  if (st.v_infinity) return;
  // Mixed addition V + P with line evaluation.
  Fp Z2 = st.Z.squared();
  Fp U2 = st.xp * Z2;          // x_P lifted
  Fp S2 = st.yp * Z2 * st.Z;   // y_P lifted
  if (U2 == st.X) {
    if (S2 == st.Y) {
      // V == P (only reachable on adversarial low-order inputs):
      // fall back to the affine tangent — inversions are fine on
      // this cold path.
      Fp xv = st.X * Z2.inverse();
      Fp yv = st.Y * (Z2 * st.Z).inverse();
      Fp lambda =
          (xv.squared() + xv.squared() + xv.squared()) * (yv + yv).inverse();
      Fp2 line = (Fp2::from_fp(st.dq.y) - Fp2::from_fp(yv)) -
                 (st.dq.x - Fp2::from_fp(xv)).scale(lambda);
      f_num = f_num * line;
      Fp x_new = lambda.squared() - xv - xv;
      Fp y_new = lambda * (xv - x_new) - yv;
      st.X = x_new;
      st.Y = y_new;
      st.Z = Fp::one(fp);
      f_den = f_den * (st.dq.x - Fp2::from_fp(st.X));
    } else {
      // V == -P: vertical through P; V + P = O. The final addition.
      f_num = f_num * (st.dq.x - Fp2::from_fp(st.xp));
      st.v_infinity = true;
    }
  } else {
    Fp H = U2 - st.X;
    Fp RR = S2 - st.Y;
    Fp H2 = H.squared();
    Fp H3 = H2 * H;
    Fp XH2 = st.X * H2;
    Fp X3 = RR.squared() - H3 - (XH2 + XH2);
    Fp Y3 = RR * (XH2 - X3) - st.Y * H3;
    Fp Z3 = st.Z * H;

    // Line through V and P evaluated at (x, y), cleared by Z3:
    //   L = Z3·(y − y_P) − RR·(x − x_P)
    Fp scalar_part = Z3 * (st.dq.y - st.yp) + RR * st.xp;
    Fp2 line = Fp2::from_fp(scalar_part) - st.dq.x.scale(RR);
    f_num = f_num * line;

    st.X = X3;
    st.Y = Y3;
    st.Z = Z3;
    if (st.Z.is_zero()) {
      st.v_infinity = true;
    } else {
      f_den = f_den * (st.dq.x.scale(st.Z.squared()) - Fp2::from_fp(st.X));
    }
  }
}

}  // namespace

MillerValue miller_loop_multi(std::span<const std::pair<G1Point, G1Point>> pairs) {
  require(!pairs.empty(), "miller_loop_multi: empty input");
  const CurveCtx* curve = pairs.front().first.curve();
  require(curve != nullptr, "miller_loop_multi: null curve");
  const field::FpCtx* fp = curve->fp.get();

  // Per-worker scratch: the verification paths (pairings_equal,
  // pair_product) run inside pool workers and receiver threads, so the
  // state vector is thread-local and reused — after a thread's first
  // call the Miller loop performs no heap allocation. Safe because the
  // function never re-enters itself on the same thread (no callbacks).
  thread_local std::vector<PairMillerState> states;
  states.clear();
  states.reserve(pairs.size());
  for (const auto& [p, q] : pairs) {
    require(p.curve() == curve && q.curve() == curve,
            "miller_loop_multi: curve mismatch");
    if (p.is_infinity() || q.is_infinity()) continue;  // neutral contribution
    PairMillerState st;
    st.dq = DistortedQ{curve->zeta.scale(q.x()), q.y()};
    st.xp = p.x();
    st.yp = p.y();
    st.X = st.xp;
    st.Y = st.yp;
    st.Z = Fp::one(fp);
    states.push_back(st);
  }
  if (states.empty()) return neutral(fp);

  Fp2 f_num = Fp2::one(fp);
  Fp2 f_den = Fp2::one(fp);
  const FpInt& order = curve->q;
  for (size_t i = order.bit_length() - 1; i-- > 0;) {
    f_num = f_num.squared();
    f_den = f_den.squared();
    for (PairMillerState& st : states) miller_double_step(st, f_num, f_den, fp);
    if (order.bit(i)) {
      for (PairMillerState& st : states) miller_add_step(st, f_num, f_den, fp);
    }
  }

  require(!f_num.is_zero() && !f_den.is_zero(),
          "miller_loop_multi: degenerate value (inputs outside G_1?)");
  return MillerValue{f_num, f_den};
}

MillerValue miller_loop(const G1Point& p, const G1Point& q) {
  require(p.curve() != nullptr && p.curve() == q.curve(), "miller_loop: curve mismatch");
  if (p.is_infinity() || q.is_infinity()) return neutral(p.curve()->fp.get());
  const std::pair<G1Point, G1Point> one_pair[] = {{p, q}};
  return miller_loop_multi(one_pair);
}

Gt final_exponentiation(const CurveCtx* curve, const MillerValue& f) {
  // f^((p-1)·(p+1)/q). z^p = conj(z) on F_p2, so (num/den)^(p-1)
  // = (conj(num)·den) / (conj(den)·num) — still only one inversion.
  Fp2 a = f.num.conjugate() * f.den;
  Fp2 b = f.den.conjugate() * f.num;
  Fp2 g = a * b.inverse();
  // g = h^(p-1) has norm g·conj(g) = h^(p^2-1) = 1, so the long cofactor
  // exponentiation runs on the unitary (free-inversion wNAF) path.
  return g.pow_unitary(curve->cofactor);
}

Gt pair(const G1Point& p, const G1Point& q) {
  require(p.curve() != nullptr && p.curve() == q.curve(), "pair: curve mismatch");
  if (p.is_infinity() || q.is_infinity()) return gt_identity(p.curve());
  return final_exponentiation(p.curve(), miller_loop(p, q));
}

Gt pair_product(std::span<const std::pair<G1Point, G1Point>> pairs) {
  require(!pairs.empty(), "pair_product: empty input");
  const CurveCtx* curve = pairs.front().first.curve();
  require(curve != nullptr, "pair_product: null curve");
  // One shared Miller loop (accumulator squared once per bit for the whole
  // product) and one shared final exponentiation.
  return final_exponentiation(curve, miller_loop_multi(pairs));
}

bool pairings_equal(const G1Point& a1, const G1Point& a2, const G1Point& b1,
                    const G1Point& b2) {
  const CurveCtx* curve = a1.curve();
  require(curve != nullptr, "pairings_equal: null curve");
  // ê(a1,a2)·ê(b1,b2)^{-1} == 1: one shared Miller loop, one shared final
  // exponentiation. Degenerate inputs (infinity) fall back to two plain
  // pairings.
  if (a1.is_infinity() || a2.is_infinity() || b1.is_infinity() || b2.is_infinity()) {
    return pair(a1, a2) == pair(b1, b2);
  }
  const std::pair<G1Point, G1Point> pairs[] = {{a1, a2}, {b1, -b2}};
  return final_exponentiation(curve, miller_loop_multi(pairs)).is_one();
}

// ---------------------------------------------------------------------------
// Precomputed Miller loop (fixed first argument).
//
// Replays the affine loop of pair_affine once on P, storing each step's
// line (slope + point) and vertical x-coordinate. pair(Q) then evaluates
// the stored lines at φ(Q): ~2 base-field multiplications per line value
// instead of full Jacobian point arithmetic.

MillerPrecomp::MillerPrecomp(const ec::G1Point& p) : p_(p) {
  const CurveCtx* curve = p.curve();
  require(curve != nullptr, "MillerPrecomp: null curve");
  if (p.is_infinity()) {
    degenerate_ = true;
    return;
  }
  const Fp xp = p.x();
  const Fp yp = p.y();
  Fp xv = xp, yv = yp;
  bool v_infinity = false;

  const FpInt& order = curve->q;
  steps_.reserve(2 * order.bit_length());

  auto tangent_step = [&] {
    if (yv.is_zero()) {
      steps_.push_back(Step{StepKind::kVertical, Fp{}, xv, Fp{}, Fp{}});
      v_infinity = true;
      return;
    }
    Fp x2 = xv.squared();
    Fp lambda = (x2 + x2 + x2) * (yv + yv).inverse();
    Fp x_new = lambda.squared() - xv - xv;
    Fp y_new = lambda * (xv - x_new) - yv;
    steps_.push_back(Step{StepKind::kLine, lambda, xv, yv, x_new});
    xv = x_new;
    yv = y_new;
  };

  for (size_t i = order.bit_length() - 1; i-- > 0;) {
    steps_.push_back(Step{StepKind::kSquare, Fp{}, Fp{}, Fp{}, Fp{}});
    if (!v_infinity) tangent_step();
    if (order.bit(i) && !v_infinity) {
      if (xv == xp) {
        if (yv == yp) {
          tangent_step();  // V == P: tangent (adversarial low-order input)
        } else {
          // V == -P: vertical through P; the loop's final addition.
          steps_.push_back(Step{StepKind::kVertical, Fp{}, xv, Fp{}, Fp{}});
          v_infinity = true;
        }
      } else {
        Fp lambda = (yp - yv) * (xp - xv).inverse();
        Fp x_new = lambda.squared() - xv - xp;
        Fp y_new = lambda * (xv - x_new) - yv;
        steps_.push_back(Step{StepKind::kLine, lambda, xv, yv, x_new});
        xv = x_new;
        yv = y_new;
      }
    }
  }
}

MillerValue MillerPrecomp::miller(const ec::G1Point& q) const {
  const CurveCtx* curve = p_.curve();
  const field::FpCtx* fp = curve->fp.get();
  if (degenerate_) return miller_loop(p_, q);
  require(q.curve() == curve, "MillerPrecomp: curve mismatch");
  if (q.is_infinity()) return neutral(fp);

  const Fp2 qx = curve->zeta.scale(q.x());
  const Fp2 qy = Fp2::from_fp(q.y());

  Fp2 f_num = Fp2::one(fp);
  Fp2 f_den = Fp2::one(fp);
  for (const Step& s : steps_) {
    switch (s.kind) {
      case StepKind::kSquare:
        f_num = f_num.squared();
        f_den = f_den.squared();
        break;
      case StepKind::kLine:
        f_num = f_num * ((qy - Fp2::from_fp(s.y)) - (qx - Fp2::from_fp(s.x)).scale(s.lambda));
        f_den = f_den * (qx - Fp2::from_fp(s.x_after));
        break;
      case StepKind::kLineFinal:
        f_num = f_num * ((qy - Fp2::from_fp(s.y)) - (qx - Fp2::from_fp(s.x)).scale(s.lambda));
        break;
      case StepKind::kVertical:
        f_num = f_num * (qx - Fp2::from_fp(s.x));
        break;
    }
  }
  require(!f_num.is_zero() && !f_den.is_zero(),
          "MillerPrecomp: degenerate value (inputs outside G_1?)");
  return MillerValue{f_num, f_den};
}

Gt MillerPrecomp::pair(const ec::G1Point& q) const {
  const CurveCtx* curve = p_.curve();
  if (degenerate_) return tre::pairing::pair(p_, q);
  if (q.is_infinity()) return gt_identity(curve);
  return final_exponentiation(curve, miller(q));
}

// ---------------------------------------------------------------------------
// Reference affine implementation (kept verbatim from the first version;
// the test suite asserts pair() == pair_affine() on random inputs).

namespace {

struct Accumulator {
  Fp2 num;
  Fp2 den;

  void square() {
    num = num.squared();
    den = den.squared();
  }
  void mul_num(const Fp2& v) { num = num * v; }
  void mul_den(const Fp2& v) { den = den * v; }
};

}  // namespace

Gt pair_affine(const G1Point& p, const G1Point& q) {
  require(p.curve() != nullptr && p.curve() == q.curve(), "pair_affine: curve mismatch");
  const CurveCtx* curve = p.curve();
  const field::FpCtx* fp = curve->fp.get();
  if (p.is_infinity() || q.is_infinity()) return gt_identity(curve);

  const Fp2 qx = curve->zeta.scale(q.x());
  const Fp2 qy = Fp2::from_fp(q.y());

  Accumulator acc{Fp2::one(fp), Fp2::one(fp)};
  Fp xv = p.x();
  Fp yv = p.y();
  bool v_infinity = false;

  const Fp xp = p.x();
  const Fp yp = p.y();
  const FpInt& order = curve->q;

  auto line_through = [&](const Fp& lx, const Fp& ly, const Fp& lambda) {
    return (qy - Fp2::from_fp(ly)) - (qx - Fp2::from_fp(lx)).scale(lambda);
  };
  auto vertical_at = [&](const Fp& lx) { return qx - Fp2::from_fp(lx); };

  for (size_t i = order.bit_length() - 1; i-- > 0;) {
    acc.square();
    if (!v_infinity) {
      if (yv.is_zero()) {
        acc.mul_num(vertical_at(xv));
        v_infinity = true;
      } else {
        Fp x2 = xv.squared();
        Fp lambda = (x2 + x2 + x2) * (yv + yv).inverse();
        acc.mul_num(line_through(xv, yv, lambda));
        Fp x_new = lambda.squared() - xv - xv;
        Fp y_new = lambda * (xv - x_new) - yv;
        xv = x_new;
        yv = y_new;
        acc.mul_den(vertical_at(xv));
      }
    }
    if (order.bit(i) && !v_infinity) {
      if (xv == xp) {
        if (yv == yp) {
          Fp x2 = xv.squared();
          Fp lambda = (x2 + x2 + x2) * (yv + yv).inverse();
          acc.mul_num(line_through(xv, yv, lambda));
          Fp x_new = lambda.squared() - xv - xv;
          Fp y_new = lambda * (xv - x_new) - yv;
          xv = x_new;
          yv = y_new;
          acc.mul_den(vertical_at(xv));
        } else {
          acc.mul_num(vertical_at(xv));
          v_infinity = true;
        }
      } else {
        Fp lambda = (yp - yv) * (xp - xv).inverse();
        acc.mul_num(line_through(xv, yv, lambda));
        Fp x_new = lambda.squared() - xv - xp;
        Fp y_new = lambda * (xv - x_new) - yv;
        xv = x_new;
        yv = y_new;
        acc.mul_den(vertical_at(xv));
      }
    }
  }

  require(!acc.num.is_zero() && !acc.den.is_zero(),
          "pair_affine: degenerate Miller value (inputs outside G_1?)");
  Fp2 f = acc.num * acc.den.inverse();
  Fp2 g = f.conjugate() * f.inverse();
  return g.pow(curve->cofactor);
}

}  // namespace tre::pairing
