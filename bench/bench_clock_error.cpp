// E14: end-to-end release-time error under server clock drift and
// broadcast jitter (paper §3, trust assumption 1: the server's timing is
// consistent "within a reasonable error bound").
//
// A receiver's effective release instant is
//   true_release + server_clock_error + delivery_delay.
// We model three deployment profiles (GPS-disciplined, NTP-disciplined,
// free-running crystal) and report the distribution over many receivers.
// Contrast with E4: for TRE this error is bounded and hardware
// independent; for time-lock puzzles it scales with receiver CPU speed.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "bigint/prime.h"
#include "hashing/drbg.h"

namespace {

// Uniform double in [0, 1) from the deterministic DRBG.
double uniform(tre::hashing::RandomSource& rng) {
  tre::Bytes b = rng.bytes(8);
  return static_cast<double>(tre::bigint::BigInt<1>::from_bytes_be(b).w[0]) /
         (static_cast<double>(UINT64_MAX) + 1.0);
}

// Gaussian via Box-Muller.
double gaussian(tre::hashing::RandomSource& rng, double mean, double stddev) {
  double u1 = std::max(uniform(rng), 1e-12);
  double u2 = uniform(rng);
  return mean + stddev * std::sqrt(-2.0 * std::log(u1)) *
                    std::cos(2.0 * 3.14159265358979323846 * u2);
}

struct Profile {
  const char* name;
  double drift_ppm;        // uncorrected server oscillator drift
  double sync_period_s;    // how often the server disciplines its clock
  double jitter_mean_s;    // broadcast delivery delay mean
  double jitter_stddev_s;  // and spread
};

}  // namespace

int main() {
  using namespace tre;
  bench::header("E14: release-time error under clock drift + delivery jitter",
                "trust assumption 1 (§3): the server's absolute timing is "
                "consistent within a reasonable bound; the receiver's "
                "release error is that bound plus delivery latency — "
                "independent of receiver hardware");

  hashing::HmacDrbg rng(to_bytes("bench-e14"));
  constexpr int kReceivers = 20000;

  std::printf("%-34s | %9s | %9s | %9s | %9s\n", "deployment profile", "mean s",
              "p50 s", "p95 s", "max s");
  std::printf("-----------------------------------+-----------+-----------+-----------+-----------\n");

  for (const Profile& p :
       {Profile{"GPS-disciplined, LAN multicast", 0.001, 1, 0.002, 0.001},
        Profile{"NTP-disciplined, internet", 0.05, 64, 0.080, 0.040},
        Profile{"NTP-disciplined, satellite link", 0.05, 64, 0.550, 0.080},
        Profile{"free-running crystal (20 ppm), web", 20.0, 86400, 0.080, 0.040}}) {
    std::vector<double> errors;
    errors.reserve(kReceivers);
    for (int i = 0; i < kReceivers; ++i) {
      // Server clock error at the release instant: drift accumulates
      // since the last discipline, uniformly distributed in the period.
      double since_sync = uniform(rng) * p.sync_period_s;
      double clock_err = p.drift_ppm * 1e-6 * since_sync;
      // Delivery delay is one-sided (an update cannot arrive early).
      double delay = std::max(0.0, gaussian(rng, p.jitter_mean_s, p.jitter_stddev_s));
      errors.push_back(clock_err + delay);
    }
    std::sort(errors.begin(), errors.end());
    double mean = 0;
    for (double e : errors) mean += e;
    mean /= errors.size();
    std::printf("%-34s | %9.4f | %9.4f | %9.4f | %9.4f\n", p.name, mean,
                errors[errors.size() / 2], errors[errors.size() * 95 / 100],
                errors.back());
  }

  std::printf("\nfor comparison, E4's time-lock puzzle release error on a 2x "
              "slower machine was +100%% of the whole delay (minutes-hours), "
              "not milliseconds; TRE's error never depends on the receiver's "
              "CPU.\n");
  return 0;
}
