// E9: setup cost and the "infinite horizon" property (paper footnote 2).
//
// (a) Generating fresh GDH parameters is a one-time cost, measured per
//     security level.
// (b) A TRE sender's cost is the same for a release time tomorrow or in
//     year 9999 — there is no per-epoch server material — while the
//     Rivest offline baseline must pre-publish linearly in the horizon.
#include <cstdio>

#include "baselines/rivest_pk_list.h"
#include "bench_util.h"
#include "core/tre.h"
#include "hashing/drbg.h"

int main() {
  using namespace tre;
  bench::header("E9: parameter generation and release-horizon independence",
                "the sender can pick any release time in the possibly "
                "infinite future without any pre-published server data "
                "(paper §1 fn.2); setup is a one-time prime search");

  hashing::HmacDrbg rng(to_bytes("bench-e9"));

  std::printf("runtime parameter generation (q prime, p = 12qr-1 prime):\n");
  std::printf("%-18s | %12s\n", "q bits / p bits", "time ms");
  std::printf("-------------------+--------------\n");
  for (auto [qbits, pbits] : {std::pair<size_t, size_t>{40, 96},
                              {64, 160},
                              {96, 256},
                              {160, 512}}) {
    double ms = bench::time_ms(1, [&] { (void)params::generate(rng, qbits, pbits); });
    std::printf("%6zu / %-9zu | %12.1f\n", qbits, pbits, ms);
  }

  // Horizon independence: encryption cost for near vs far release times.
  auto params = params::load("tre-512");
  core::TreScheme scheme(params);
  core::ServerKeyPair server = scheme.server_keygen(rng);
  core::UserKeyPair user = scheme.user_keygen(server.pub, rng);
  Bytes msg = rng.bytes(256);

  std::printf("\nTRE encryption cost vs release horizon (tre-512):\n");
  std::printf("%-26s | %10s\n", "release time", "enc ms");
  std::printf("---------------------------+------------\n");
  for (const char* tag : {"2026-07-08T00:00:00Z", "2036-01-01T00:00:00Z",
                          "2126-01-01T00:00:00Z", "9999-12-31T23:59:59Z"}) {
    double ms = bench::time_ms(10, [&] {
      (void)scheme.encrypt(msg, user.pub, server.pub, tag, rng, core::KeyCheck::kSkip);
    });
    std::printf("%-26s | %10.2f\n", tag, ms);
  }

  std::printf("\nRivest offline baseline: server bytes pre-published to reach the "
              "same horizons (hourly epochs, tre-toy-96):\n");
  auto toy = params::load("tre-toy-96");
  std::printf("%-26s | %14s\n", "horizon", "bytes");
  std::printf("---------------------------+----------------\n");
  for (auto [label, hours] : {std::pair<const char*, size_t>{"1 day", 24},
                              {"1 month", 720},
                              {"1 year", 8760},
                              {"10 years", 87600}}) {
    baselines::RivestPkList list(toy, hours, rng);
    std::printf("%-26s | %14zu\n", label, list.published_bytes());
  }
  std::printf("(TRE: %zu bytes of server key material reach ANY horizon)\n",
              server.pub.to_bytes().size());
  return 0;
}
