// E10: end-to-end sealed-bid auction macro-benchmark (the paper's §1
// application) — full lifecycle latency breakdown at growing bidder
// counts, demonstrating that the only per-epoch server cost is one
// broadcast no matter how many bids are in flight.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/tre.h"
#include "hashing/drbg.h"
#include "timeserver/timeserver.h"

int main() {
  using namespace tre;
  bench::header("E10: sealed-bid auction end-to-end (tre-toy-96)",
                "per-auction server cost is one signed update; sealing and "
                "opening are per-bid receiver/sender costs (paper §1)");

  auto params = params::load("tre-toy-96");
  core::TreScheme scheme(params);
  hashing::HmacDrbg rng(to_bytes("bench-e10"));

  std::printf("%-8s | %10s | %12s | %12s | %12s | %12s\n", "bidders", "seal ms",
              "server ms", "server B", "open ms", "verify ms");
  std::printf("---------+------------+--------------+--------------+--------------+--------------\n");

  for (size_t bidders : {4u, 16u, 64u, 256u}) {
    server::Timeline timeline(0);
    server::TimeServer authority(params, timeline, server::Granularity::kHour, rng);
    core::UserKeyPair office = scheme.user_keygen(authority.public_key(), rng);
    server::TimeSpec deadline = server::TimeSpec::from_unix(3600, server::Granularity::kHour);

    // Seal: every bidder FO-encrypts their bid.
    std::vector<core::FoCiphertext> sealed;
    sealed.reserve(bidders);
    double seal_ms = bench::time_ms(1, [&] {
      for (size_t i = 0; i < bidders; ++i) {
        std::string bid = "bidder-" + std::to_string(i) + " bids $" +
                          std::to_string(1000000 + i);
        sealed.push_back(scheme.encrypt_fo(to_bytes(bid), office.pub,
                                           authority.public_key(),
                                           deadline.canonical(), rng));
      }
    });

    // Server at the deadline: one tick regardless of bid volume.
    std::uint64_t bytes_before = authority.stats().bytes_published;
    timeline.advance_to(deadline.unix_seconds());
    double server_ms = bench::time_ms(1, [&] { (void)authority.tick(); });
    std::uint64_t server_bytes = authority.stats().bytes_published - bytes_before;
    core::KeyUpdate update = *authority.archive().find(deadline.canonical());

    // Everyone verifies the self-authenticating update once.
    double verify_ms = bench::time_ms(
        3, [&] { (void)scheme.verify_update(authority.public_key(), update); });

    // Open: the office decrypts every bid.
    size_t opened = 0;
    double open_ms = bench::time_ms(1, [&] {
      opened = 0;
      for (const auto& ct : sealed) {
        if (scheme.decrypt_fo(ct, office.a, update, authority.public_key())) ++opened;
      }
    });
    if (opened != bidders) {
      std::printf("ERROR: only %zu/%zu bids opened\n", opened, bidders);
      return 1;
    }
    std::printf("%-8zu | %10.1f | %12.3f | %12llu | %12.1f | %12.2f\n", bidders,
                seal_ms, server_ms, static_cast<unsigned long long>(server_bytes),
                open_ms, verify_ms);
  }
  std::printf("\n(server ms and bytes stay flat as bids scale: the auction "
              "needs exactly one key update)\n");
  return 0;
}
