// E1 (part 1): cryptographic primitive microbenchmarks across parameter
// sets — the cost model every other experiment builds on.
#include <benchmark/benchmark.h>

#include "hashing/drbg.h"
#include "pairing/pairing.h"
#include "params/params.h"

namespace {

using namespace tre;

struct Fixture {
  std::shared_ptr<const params::GdhParams> params;
  hashing::HmacDrbg rng{to_bytes("bench-primitives")};
  ec::G1Point g, h;
  field::FpInt scalar;

  explicit Fixture(const std::string& name) : params(params::load(name)) {
    g = params->base;
    h = ec::hash_to_g1(params->ctx(), to_bytes("bench-point"));
    scalar = params::random_scalar(*params, rng);
  }
};

Fixture& fixture(const benchmark::State& state) {
  static Fixture toy("tre-toy-96");
  static Fixture mid("tre-512");
  static Fixture big("tre-768");
  switch (state.range(0)) {
    case 0:
      return toy;
    case 1:
      return mid;
    default:
      return big;
  }
}

void args(benchmark::internal::Benchmark* b) {
  b->Arg(0)->Arg(1)->Arg(2)->ArgName("set(0=toy96,1=512,2=768)");
}

void BM_Pairing(benchmark::State& state) {
  Fixture& f = fixture(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pairing::pair(f.g, f.h));
  }
}
BENCHMARK(BM_Pairing)->Apply(args)->Unit(benchmark::kMicrosecond);

void BM_ScalarMul(benchmark::State& state) {
  Fixture& f = fixture(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.g.mul(f.scalar));
  }
}
BENCHMARK(BM_ScalarMul)->Apply(args)->Unit(benchmark::kMicrosecond);

void BM_HashToG1(benchmark::State& state) {
  Fixture& f = fixture(state);
  std::uint32_t i = 0;
  for (auto _ : state) {
    Bytes msg = concat({to_bytes("tag"), be32(i++)});
    benchmark::DoNotOptimize(ec::hash_to_g1(f.params->ctx(), msg));
  }
}
BENCHMARK(BM_HashToG1)->Apply(args)->Unit(benchmark::kMicrosecond);

void BM_GtPow(benchmark::State& state) {
  Fixture& f = fixture(state);
  pairing::Gt e = pairing::pair(f.g, f.h);
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.pow(f.scalar));
  }
}
BENCHMARK(BM_GtPow)->Apply(args)->Unit(benchmark::kMicrosecond);

void BM_FpInverse(benchmark::State& state) {
  Fixture& f = fixture(state);
  field::Fp x = field::Fp::random(f.params->ctx()->fp.get(), f.rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(x.inverse());
  }
}
BENCHMARK(BM_FpInverse)->Apply(args)->Unit(benchmark::kNanosecond);

void BM_FpMul(benchmark::State& state) {
  Fixture& f = fixture(state);
  field::Fp x = field::Fp::random(f.params->ctx()->fp.get(), f.rng);
  field::Fp y = field::Fp::random(f.params->ctx()->fp.get(), f.rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(x * y);
  }
}
BENCHMARK(BM_FpMul)->Apply(args)->Unit(benchmark::kNanosecond);

void BM_PointSerialize(benchmark::State& state) {
  Fixture& f = fixture(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.h.to_bytes_compressed());
  }
}
BENCHMARK(BM_PointSerialize)->Apply(args)->Unit(benchmark::kNanosecond);

void BM_PointDeserializeCompressed(benchmark::State& state) {
  Fixture& f = fixture(state);
  Bytes enc = f.h.to_bytes_compressed();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ec::G1Point::from_bytes(f.params->ctx(), enc));
  }
}
BENCHMARK(BM_PointDeserializeCompressed)->Apply(args)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
