// E1 (ablation): the design choices DESIGN.md calls out, measured.
//
//   (a) Jacobian vs affine Miller loop — the inversion-free loop is the
//       reason a 512-bit pairing is milliseconds, not tens of them.
//   (b) Shared final exponentiation for verification — checking
//       ê(a1,a2) == ê(b1,b2) as one pairing product instead of two full
//       pairings (used by every key/update verification in the scheme).
//   (c) Product-of-pairings in multi-server decryption vs N independent
//       pairings.
//   (d) The encryptor's optional receiver-key check (KeyCheck::kVerify)
//       vs pre-checked keys — the cost the paper's Encryption step 1 adds.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/multiserver.h"
#include "core/tre.h"
#include "hashing/drbg.h"

int main() {
  using namespace tre;
  bench::header("E1-ablation: implementation design choices (tre-512)",
                "internal ablations; no direct paper claim — quantifies the "
                "choices that make the scheme practical on 2005-class and "
                "modern hardware alike");

  auto params = params::load("tre-512");
  core::TreScheme scheme(params);
  hashing::HmacDrbg rng(to_bytes("bench-ablation"));
  core::ServerKeyPair server = scheme.server_keygen(rng);
  core::UserKeyPair user = scheme.user_keygen(server.pub, rng);
  ec::G1Point h = ec::hash_to_g1(params->ctx(), to_bytes("T"));
  const int reps = 20;

  // (a) Miller loop style.
  double proj_ms = bench::time_ms(reps, [&] { (void)pairing::pair(server.pub.sg, h); });
  double aff_ms =
      bench::time_ms(reps, [&] { (void)pairing::pair_affine(server.pub.sg, h); });
  std::printf("(a) pairing, Jacobian Miller loop : %8.2f ms\n", proj_ms);
  std::printf("    pairing, affine Miller loop   : %8.2f ms  (%.1fx slower)\n\n",
              aff_ms, aff_ms / proj_ms);

  // (b) verification: shared final exponentiation vs two pairings.
  core::KeyUpdate update = scheme.issue_update(server, "T");
  double shared_ms = bench::time_ms(reps, [&] {
    (void)pairing::pairings_equal(server.pub.sg, h, server.pub.g, update.sig);
  });
  double two_ms = bench::time_ms(reps, [&] {
    (void)(pairing::pair(server.pub.sg, h) == pairing::pair(server.pub.g, update.sig));
  });
  std::printf("(b) update verify, shared final exp: %8.2f ms\n", shared_ms);
  std::printf("    update verify, two pairings    : %8.2f ms  (%.1fx slower)\n\n",
              two_ms, two_ms / shared_ms);

  // (c) multi-server decrypt at N = 4: product vs iterated pairings.
  {
    core::MultiServerTre mstre(params);
    std::vector<core::ServerKeyPair> servers;
    std::vector<core::ServerPublicKey> pubs;
    for (int i = 0; i < 4; ++i) {
      servers.push_back(scheme.server_keygen(rng));
      pubs.push_back(servers.back().pub);
    }
    core::Scalar a = params::random_scalar(*params, rng);
    auto mkey = mstre.user_key(a, pubs);
    auto ct = mstre.encrypt(to_bytes("msg"), mkey, pubs, "T", rng);
    std::vector<core::KeyUpdate> updates;
    for (const auto& s : servers) updates.push_back(scheme.issue_update(s, "T"));

    double product_ms =
        bench::time_ms(reps, [&] { (void)mstre.decrypt(ct, a, updates); });
    double iterated_ms = bench::time_ms(reps, [&] {
      pairing::Gt k = pairing::gt_identity(params->ctx());
      for (size_t i = 0; i < ct.us.size(); ++i) {
        k = k * pairing::pair(ct.us[i].mul(a), updates[i].sig);
      }
      (void)k;
    });
    std::printf("(c) 4-server decrypt, pairing product: %8.2f ms\n", product_ms);
    std::printf("    4-server decrypt, 4 full pairings : %8.2f ms  (%.2fx)\n\n",
                iterated_ms, iterated_ms / product_ms);
  }

  // (d) the paper's Encryption step-1 receiver-key check.
  Bytes msg = rng.bytes(256);
  double enc_checked = bench::time_ms(reps, [&] {
    (void)scheme.encrypt(msg, user.pub, server.pub, "T", rng, core::KeyCheck::kVerify);
  });
  double enc_skipped = bench::time_ms(reps, [&] {
    (void)scheme.encrypt(msg, user.pub, server.pub, "T", rng, core::KeyCheck::kSkip);
  });
  std::printf("(d) encrypt with per-message key check: %8.2f ms\n", enc_checked);
  std::printf("    encrypt, key pre-checked          : %8.2f ms  (check adds %.2f ms,"
              " amortizable per receiver)\n",
              enc_skipped, enc_checked - enc_skipped);
  return 0;
}
