// E16: planetary-scale dissemination of the "publicly accessible place"
// (paper §3) — a mirrored archive over simulated WAN links.
//
// Measures, for growing receiver populations and mirror counts:
//   * availability latency: seconds from the release instant until a
//     receiver holds the (missed) update, via mirror polling;
//   * origin offload: what fraction of fetch traffic the mirrors absorb.
// The passive-server design makes this trivially shardable — updates are
// public, self-authenticating, identical for everyone — which is exactly
// why one update per instant scales to any audience.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/tre.h"
#include "hashing/drbg.h"
#include "simnet/mirrors.h"

int main() {
  using namespace tre;
  bench::header("E16: mirrored archive dissemination (simulated WAN, tre-toy-96)",
                "§3: receivers that missed the broadcast recover from a "
                "public list; mirroring that list offloads the origin "
                "without any trust (updates self-authenticate)");

  auto params = params::load("tre-toy-96");
  core::TreScheme scheme(params);
  hashing::HmacDrbg rng(to_bytes("bench-e16"));
  core::ServerKeyPair server = scheme.server_keygen(rng);

  std::printf("%-10s | %-8s | %10s | %10s | %12s | %14s\n", "receivers", "mirrors",
              "p50 avail", "p95 avail", "origin reqs", "mirror reqs");
  std::printf("-----------+----------+------------+------------+--------------+--------------\n");

  for (size_t receivers : {100u, 1000u}) {
    for (size_t mirrors : {1u, 4u, 16u}) {
      server::Timeline timeline(0);
      simnet::Network net(timeline, to_bytes("e16"));
      // Replication links: 1-3 s WAN latency, 1% loss is handled by the
      // receivers' polling retry.
      simnet::MirroredArchive cluster(params, net, timeline, mirrors,
                                      simnet::LinkSpec{.base_delay = 1, .jitter = 2});

      // The release instant is t=10; the update publishes then.
      core::KeyUpdate update = scheme.issue_update(server, "T-release");
      timeline.schedule(10, [&] { cluster.publish(update); });

      std::vector<std::int64_t> availability;
      availability.reserve(receivers);
      for (size_t i = 0; i < receivers; ++i) {
        simnet::NodeId rx = net.add_node("rx" + std::to_string(i));
        // Receivers start polling at the release instant, spread over
        // mirrors round-robin, 2 s access latency with jitter.
        timeline.schedule(10, [&, rx, i] {
          cluster.fetch(rx, i % mirrors, "T-release",
                        simnet::LinkSpec{.base_delay = 2, .jitter = 1},
                        /*poll_period=*/5, /*max_polls=*/20,
                        [&availability, &timeline](const core::KeyUpdate&) {
                          availability.push_back(timeline.now() - 10);
                        });
        });
      }
      timeline.advance_to(500);

      if (availability.size() != receivers) {
        std::printf("ERROR: %zu/%zu receivers never got the update\n",
                    receivers - availability.size(), receivers);
        return 1;
      }
      std::sort(availability.begin(), availability.end());
      std::printf("%-10zu | %-8zu | %8lld s | %8lld s | %12llu | %14llu\n", receivers,
                  mirrors,
                  static_cast<long long>(availability[availability.size() / 2]),
                  static_cast<long long>(availability[availability.size() * 95 / 100]),
                  static_cast<unsigned long long>(cluster.stats().origin_requests),
                  static_cast<unsigned long long>(cluster.stats().mirror_requests));
    }
  }
  std::printf("\n(origin request count stays 0: every read is served by an "
              "untrusted mirror; integrity rides on the update's own BLS "
              "self-authentication)\n");
  return 0;
}
