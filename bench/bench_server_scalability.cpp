// E3: server cost per epoch as the receiver population grows.
//
// TRE broadcasts ONE update regardless of N (paper §5.3.1); Mont/HP Time
// Vault extracts and unicasts N keys; Rivest's offline variant must
// pre-publish a key list covering the whole horizon; May's escrow stores
// every in-flight message. The toy curve is used so the O(N) baselines
// remain runnable at N = 10^4.
#include <cstdio>
#include <string>

#include "baselines/may_escrow.h"
#include "baselines/mont_timevault.h"
#include "baselines/rivest_pk_list.h"
#include "bench_util.h"
#include "core/tre.h"
#include "hashing/drbg.h"

int main() {
  using namespace tre;
  bench::header("E3: per-epoch server cost vs number of receivers (tre-toy-96)",
                "TRE server work and bytes are O(1) in the user count; "
                "Mont et al. is O(N); Rivest offline is O(horizon); May is "
                "O(in-flight messages) (paper §1, §2.2, §5.3.1)");

  auto params = params::load("tre-toy-96");
  core::TreScheme scheme(params);
  hashing::HmacDrbg rng(to_bytes("bench-e3"));
  core::ServerKeyPair server = scheme.server_keygen(rng);

  std::printf("%-8s | %-26s | %12s | %14s\n", "N users", "system", "cpu ms/epoch",
              "bytes/epoch");
  std::printf("---------+----------------------------+--------------+--------------\n");

  for (size_t n : {1u, 10u, 100u, 1000u, 10000u}) {
    // TRE: one update, independent of N.
    double tre_ms = bench::time_ms(
        10, [&] { (void)scheme.issue_update(server, "2030-01-01T00:00:00Z"); });
    size_t tre_bytes = scheme.issue_update(server, "2030-01-01T00:00:00Z").to_bytes().size();
    std::printf("%-8zu | %-26s | %12.3f | %14zu\n", n, "TRE broadcast (this paper)",
                tre_ms, tre_bytes);

    // Mont/HP: extract + unicast per user.
    baselines::MontTimeVault vault(params, rng);
    for (size_t i = 0; i < n; ++i) vault.register_user("user-" + std::to_string(i));
    double vault_ms = bench::time_ms(1, [&] { (void)vault.epoch_tick("T0"); });
    size_t vault_bytes = vault.stats().bytes_unicast;
    std::printf("%-8zu | %-26s | %12.3f | %14zu\n", n, "Mont/HP time vault", vault_ms,
                vault_bytes);

    // May: the agent stores one message per user until release.
    baselines::MayEscrowAgent agent;
    Bytes msg(256, 0xab);
    double may_ms = bench::time_ms(1, [&] {
      for (size_t i = 0; i < n; ++i) {
        agent.deposit("s" + std::to_string(i), "r" + std::to_string(i), msg, 1000);
      }
    });
    std::printf("%-8zu | %-26s | %12.3f | %14zu (storage)\n", n, "May escrow agent",
                may_ms, agent.stored_bytes());
  }

  // Rivest offline list: cost is in the horizon, not the user count.
  std::printf("\nRivest offline public-key list (one-time publication, any N):\n");
  std::printf("%-16s | %14s | %12s\n", "horizon epochs", "bytes", "keygen ms");
  for (size_t horizon : {24u, 168u, 8760u}) {  // day, week, year of hourly epochs
    double ms = 0;
    size_t bytes = 0;
    ms = bench::time_ms(1, [&] {
      baselines::RivestPkList list(params, horizon, rng);
      bytes = list.published_bytes();
    });
    std::printf("%-16zu | %14zu | %12.1f\n", horizon, bytes, ms);
  }
  std::printf("(a TRE sender reaches ANY future instant with %zu bytes of "
              "server key material)\n",
              server.pub.to_bytes().size());

  // What the run cost in protocol operations, from the hot-path probes
  // (all-zero counters under -DTRE_METRICS=OFF).
  std::printf("\nmetrics snapshot (obs::Registry::global()):\n%s\n",
              obs::Registry::global().to_json().c_str());
  return 0;
}
