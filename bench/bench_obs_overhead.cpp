// Observability overhead: what the obs:: probe layer costs on the
// encrypt/decrypt hot loop (acceptance: <= 2% — see docs/OBSERVABILITY.md).
//
// Two measurements:
//   * probe primitives in isolation — one CounterProbe::add() and one
//     Span start/stop, in nanoseconds. Multiplied by the probes a single
//     encrypt executes, this bounds the overhead analytically.
//   * the encrypt/decrypt loop itself, ops/second, written to
//     BENCH_obs_overhead.json. Run the same binary from a
//     -DTRE_METRICS=OFF build tree and compare the two files for the
//     end-to-end number (the probes compile to nothing there).
#include <chrono>
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/tre.h"
#include "hashing/drbg.h"

int main(int argc, char** argv) {
  using namespace tre;
  bench::header("obs overhead: probe cost on the encrypt/decrypt hot loop",
                "metrics must be ~free: counters are one relaxed atomic, spans "
                "batch thread-locally; total <= 2% of an encrypt");

  auto params = params::load("tre-512");
  core::TreScheme scheme(params, core::Tuning::fast());
  hashing::HmacDrbg rng(to_bytes("bench-obs-overhead"));
  const char* tag = "2030-01-01T00:00:00Z";
  core::ServerKeyPair server = scheme.server_keygen(rng);
  core::UserKeyPair user = scheme.user_keygen(server.pub, rng);
  core::KeyUpdate update = scheme.issue_update(server, tag);
  Bytes msg = rng.bytes(256);

  // Probe primitives in isolation.
  obs::CounterProbe counter("bench.obs_overhead.counter");
  obs::HistogramProbe hist("bench.obs_overhead.span_ns");
  constexpr int kProbeReps = 1'000'000;
  double counter_ns = 1e6 * bench::time_ms(1, [&] {
                        for (int i = 0; i < kProbeReps; ++i) counter.add();
                      }) /
                      kProbeReps;
  double span_ns = 1e6 * bench::time_ms(1, [&] {
                     for (int i = 0; i < kProbeReps; ++i) obs::Span span(hist);
                   }) /
                   kProbeReps;

  // The hot loop. Warmed caches: the steady state the probes sit in.
  scheme.encrypt(msg, user.pub, server.pub, tag, rng);
  constexpr int kOpsReps = 200;
  double encrypt_ms =
      bench::time_ms(kOpsReps, [&] { scheme.encrypt(msg, user.pub, server.pub, tag, rng); });
  core::Ciphertext ct = scheme.encrypt(msg, user.pub, server.pub, tag, rng);
  double decrypt_ms = bench::time_ms(kOpsReps, [&] { scheme.decrypt(ct, user.a, update); });

  // A steady-state encrypt fires ~6 counter probes (cache hits, mul
  // kinds) and one span; bound the per-op probe bill generously at 8
  // counters + 1 span.
  double probe_bill_ns = 8 * counter_ns + span_ns;
  double overhead_pct = 100.0 * probe_bill_ns / (encrypt_ms * 1e6);

  std::printf("metrics build        : %s\n", obs::kEnabled ? "ON" : "OFF");
  std::printf("counter add          : %8.2f ns\n", counter_ns);
  std::printf("span start/stop      : %8.2f ns\n", span_ns);
  std::printf("encrypt (steady)     : %8.3f ms\n", encrypt_ms);
  std::printf("decrypt (steady)     : %8.3f ms\n", decrypt_ms);
  std::printf("probe bill/encrypt   : %8.2f ns  (8 counters + 1 span)\n", probe_bill_ns);
  std::printf("analytic overhead    : %8.4f %%  (must be <= 2%%)\n", overhead_pct);

  const char* json_path = argc > 1 ? argv[1] : "BENCH_obs_overhead.json";
  if (std::FILE* f = std::fopen(json_path, "w")) {
    std::fprintf(f, "{\n  \"metrics_enabled\": %s,\n", obs::kEnabled ? "true" : "false");
    std::fprintf(f, "  \"counter_add_ns\": %.2f,\n  \"span_ns\": %.2f,\n", counter_ns,
                 span_ns);
    std::fprintf(f, "  \"encrypt_ms\": %.4f,\n  \"decrypt_ms\": %.4f,\n", encrypt_ms,
                 decrypt_ms);
    std::fprintf(f, "  \"encrypt_ops_per_sec\": %.2f,\n", 1000.0 / encrypt_ms);
    std::fprintf(f, "  \"decrypt_ops_per_sec\": %.2f,\n", 1000.0 / decrypt_ms);
    std::fprintf(f, "  \"analytic_overhead_pct\": %.4f,\n", overhead_pct);
    std::fprintf(f, "%s\n}\n", bench::metrics_json_field(2).c_str());
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path);
  }
  return overhead_pct <= 2.0 ? 0 : 1;
}
