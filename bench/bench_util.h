// Shared helpers for the plain-table experiment harnesses (E2-E7, E9,
// E10). Each harness prints a self-describing table; EXPERIMENTS.md
// records the paper claim the table checks.
#pragma once

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>

#include "obs/metrics.h"

namespace tre::bench {

/// Milliseconds consumed by `fn()` run `reps` times, averaged.
inline double time_ms(int reps, const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) fn();
  auto elapsed =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start);
  return elapsed.count() / reps;
}

inline void header(const char* experiment, const char* claim) {
  std::printf("\n=== %s ===\n", experiment);
  std::printf("paper claim: %s\n\n", claim);
}

/// `"metrics": {...}` — the global obs registry snapshot as a field for
/// a hand-rolled BENCH_*.json object, `indent` spaces deep. The caller
/// manages surrounding commas. Under -DTRE_METRICS=OFF the snapshot is
/// still valid JSON, with "metrics_enabled": false and only the
/// always-on instruments populated.
inline std::string metrics_json_field(int indent = 2) {
  std::string margin(static_cast<size_t>(indent), ' ');
  return margin + "\"metrics\":\n" + obs::Registry::global().to_json(indent);
}

}  // namespace tre::bench
