// Shared helpers for the plain-table experiment harnesses (E2-E7, E9,
// E10). Each harness prints a self-describing table; EXPERIMENTS.md
// records the paper claim the table checks.
#pragma once

#include <chrono>
#include <cstdio>
#include <functional>

namespace tre::bench {

/// Milliseconds consumed by `fn()` run `reps` times, averaged.
inline double time_ms(int reps, const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) fn();
  auto elapsed =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start);
  return elapsed.count() / reps;
}

inline void header(const char* experiment, const char* claim) {
  std::printf("\n=== %s ===\n", experiment);
  std::printf("paper claim: %s\n\n", claim);
}

}  // namespace tre::bench
