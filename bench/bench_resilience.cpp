// E11: missing-update resilience (§6 future work, implemented here as
// disjunctive fallback chains) — what each extra fallback level costs,
// and what it buys: the worst-case release delay after an outage.
#include <cstdio>

#include "bench_util.h"
#include "hashing/drbg.h"
#include "timeserver/resilient.h"

int main() {
  using namespace tre;
  bench::header("E11: missing-update resilience via fallback chains (tre-512)",
                "extension of the paper's §6 future work: one extra pairing "
                "+ 32-byte wrap per fallback level at encryption; decryption "
                "unchanged; a receiver that misses the exact update waits at "
                "most one coarse granule instead of failing");

  auto params = params::load("tre-512");
  server::ResilientTre res(params);
  core::TreScheme scheme(params);
  hashing::HmacDrbg rng(to_bytes("bench-e11"));
  core::ServerKeyPair srv = scheme.server_keygen(rng);
  core::UserKeyPair user = scheme.user_keygen(srv.pub, rng);
  Bytes msg = rng.bytes(256);
  auto release = *server::TimeSpec::parse("2030-06-06T09:00:30Z");

  // Plain TRE for reference.
  double plain_enc = bench::time_ms(10, [&] {
    (void)scheme.encrypt(msg, user.pub, srv.pub, release.canonical(), rng,
                         core::KeyCheck::kSkip);
  });
  auto plain_ct = scheme.encrypt(msg, user.pub, srv.pub, release.canonical(), rng,
                                 core::KeyCheck::kSkip);

  std::printf("%-28s | %9s | %9s | %9s | %-24s\n", "scheme / coarsest fallback",
              "enc ms", "dec ms", "ct bytes", "worst delay after outage");
  std::printf("-----------------------------+-----------+-----------+-----------+--------------------------\n");
  std::printf("%-28s | %9.2f | %9s | %9zu | %-24s\n", "plain TRE (no fallback)",
              plain_enc, "-", plain_ct.to_bytes().size(),
              "unbounded (archive only)");

  struct Row {
    const char* label;
    server::Granularity coarsest;
    const char* delay;
  };
  for (const Row& row : {Row{"chain to minute", server::Granularity::kMinute, "59 s"},
                         Row{"chain to hour", server::Granularity::kHour, "59 min"},
                         Row{"chain to day", server::Granularity::kDay, "23.98 h"}}) {
    auto ct = res.encrypt(msg, user.pub, srv.pub, release, rng, row.coarsest);
    double enc_ms = bench::time_ms(5, [&] {
      (void)res.encrypt(msg, user.pub, srv.pub, release, rng, row.coarsest);
    });
    core::KeyUpdate exact = scheme.issue_update(srv, release.canonical());
    double dec_ms = bench::time_ms(5, [&] { (void)res.decrypt(ct, user.a, exact); });
    std::printf("%-28s | %9.2f | %9.2f | %9zu | %-24s\n", row.label, enc_ms, dec_ms,
                ct.to_bytes().size(), row.delay);
  }
  std::printf("\n(the encryption cost is the sender's alone; the passive server "
              "just broadcasts each granularity's boundary as it passes)\n");
  return 0;
}
