// E18: Byzantine-resilient update distribution under scripted faults.
//
// Sweeps message loss rate x Byzantine-mirror fraction (up to all but
// one replica misbehaving) over several simulation seeds. Every
// receiver runs the hardened UpdateFetcher pipeline — verify before
// accept, backoff with jitter, failover rotation, health scoring — and
// the harness independently re-verifies every accepted update against
// the server public key. The headline number must be zero forged or
// corrupted acceptances in every cell; the cost of the faults shows up
// as availability latency and rejected-reply counts instead.
#include <algorithm>
#include <array>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "client/fetcher.h"
#include "client/simnet_source.h"
#include "core/tre.h"
#include "hashing/drbg.h"

int main(int argc, char** argv) {
  using namespace tre;
  bench::header("E18: fault-injected mirror fetch (simulated WAN, tre-toy-96)",
                "robustness: self-authenticating updates (paper §2.4) let "
                "receivers survive lossy links and Byzantine mirrors with "
                "one honest replica — forged updates are rejected, never "
                "accepted");

  auto params = params::load("tre-toy-96");
  core::TreScheme scheme(params);
  hashing::HmacDrbg rng(to_bytes("bench-e18"));
  core::ServerKeyPair server = scheme.server_keygen(rng);
  const core::KeyUpdate genuine = scheme.issue_update(server, "T-release");
  const core::KeyUpdate stale = scheme.issue_update(server, "T-stale");

  constexpr size_t kMirrors = 4;
  constexpr size_t kReceivers = 24;
  constexpr int kSeeds = 3;
  const simnet::ByzantineMode kMix[] = {
      simnet::ByzantineMode::kBitFlip, simnet::ByzantineMode::kRelabel,
      simnet::ByzantineMode::kGarbage, simnet::ByzantineMode::kDrop};

  std::printf("%-6s | %-10s | %9s | %9s | %9s | %9s | %8s | %6s | %5s | %5s\n",
              "loss", "byzantine", "delivered", "p50 avail", "p95 avail",
              "rejected", "forged", "garble", "relbl", "forge");
  std::printf("-------+------------+-----------+-----------+-----------+-----------"
              "+----------+--------+-------+------\n");

  struct Row {
    double loss;
    size_t byz;
    size_t delivered, expected;
    std::int64_t p50, p95;
    std::uint64_t rejected, forged;
    // Per-cause rejection deltas, read back from the global registry
    // (client.rejected.*); all zero under -DTRE_METRICS=OFF.
    std::uint64_t rej_parse, rej_tag, rej_sig;
  };
  std::vector<Row> rows;
  bool all_clean = true;

  obs::Registry& greg = obs::Registry::global();
  auto rejected_by_cause = [&greg] {
    return std::array<std::uint64_t, 3>{greg.counter_value("client.rejected.parse"),
                                        greg.counter_value("client.rejected.tag"),
                                        greg.counter_value("client.rejected.sig")};
  };

  for (double loss : {0.0, 0.25, 0.5}) {
    for (size_t byz : {size_t{0}, size_t{2}, kMirrors - 1}) {
      std::vector<std::int64_t> avail;
      std::uint64_t rejected = 0, forged = 0;
      size_t expected = 0;
      const std::array<std::uint64_t, 3> cause_base = rejected_by_cause();

      for (int seed = 0; seed < kSeeds; ++seed) {
        std::string tag = "s" + std::to_string(seed);
        server::Timeline timeline(0);
        simnet::Network net(timeline, to_bytes("e18-net-" + tag));
        simnet::FaultPlan plan(to_bytes("e18-plan-" + tag));
        net.set_fault_plan(&plan);
        simnet::MirroredArchive cluster(
            params, net, timeline, kMirrors,
            simnet::LinkSpec{.base_delay = 1, .jitter = 2});
        for (size_t m = 0; m < byz; ++m) {
          plan.set_byzantine(cluster.mirror_node(m), kMix[m % 4]);
        }
        cluster.publish(stale);  // relabel ammunition predates the release
        timeline.schedule(10, [&] { cluster.publish(genuine); });

        client::FetcherConfig cfg;
        cfg.base_backoff = 2;
        cfg.reply_timeout = 12;  // > worst-case jittered RTT
        cfg.failover_after = 2;
        cfg.attempts_per_tag = 160;  // worst cell: 50% loss each way AND
                                     // 3 of 4 replicas hostile
        std::vector<std::unique_ptr<client::SimnetSource>> sources;
        std::vector<std::unique_ptr<client::UpdateFetcher>> fetchers;
        for (size_t i = 0; i < kReceivers; ++i) {
          ++expected;
          simnet::NodeId rx = net.add_node("rx" + std::to_string(i));
          std::vector<size_t> order(kMirrors);
          for (size_t m = 0; m < kMirrors; ++m) order[m] = (i + m) % kMirrors;
          sources.push_back(std::make_unique<client::SimnetSource>(
              cluster, rx,
              simnet::LinkSpec{.base_delay = 2, .jitter = 1, .loss = loss}));
          fetchers.push_back(std::make_unique<client::UpdateFetcher>(
              scheme, server.pub, *sources.back(), timeline, order,
              to_bytes("e18-rx-" + tag + "-" + std::to_string(i)), cfg));
          client::UpdateFetcher* f = fetchers.back().get();
          timeline.schedule(10, [&, f] {
            f->fetch_verified({"T-release"}, [&](const client::FetchResult& r) {
              // Independent re-check: the pipeline may only deliver the
              // genuine self-authenticating update, bit for bit.
              if (!scheme.verify_update(server.pub, r.update) ||
                  !(r.update == genuine)) {
                ++forged;
              }
              avail.push_back(r.completed_at - 10);
              rejected += r.stats.total_rejected();
            });
          });
        }
        timeline.advance_to(60000);
      }

      std::sort(avail.begin(), avail.end());
      const std::array<std::uint64_t, 3> cause_now = rejected_by_cause();
      Row row{loss,
              byz,
              avail.size(),
              expected,
              avail.empty() ? -1 : avail[avail.size() / 2],
              avail.empty() ? -1 : avail[avail.size() * 95 / 100],
              rejected,
              forged,
              cause_now[0] - cause_base[0],
              cause_now[1] - cause_base[1],
              cause_now[2] - cause_base[2]};
      rows.push_back(row);
      if (forged != 0 || avail.size() != expected) all_clean = false;
      std::printf("%-6.2f | %zu of %zu     | %4zu/%-4zu | %7lld s | %7lld s | %8llu | %6llu | %6llu | %5llu | %5llu\n",
                  loss, byz, kMirrors, row.delivered, row.expected,
                  static_cast<long long>(row.p50), static_cast<long long>(row.p95),
                  static_cast<unsigned long long>(row.rejected),
                  static_cast<unsigned long long>(row.forged),
                  static_cast<unsigned long long>(row.rej_parse),
                  static_cast<unsigned long long>(row.rej_tag),
                  static_cast<unsigned long long>(row.rej_sig));
    }
  }

  std::printf("\n(forged must be 0 everywhere: integrity never degrades under "
              "faults — only latency and wasted replies do; 'rejected' counts "
              "Byzantine/corrupt replies the verify gate turned away; the "
              "garble/relbl/forge split is the registry's client.rejected.* "
              "parse/tag/sig attribution)\n");

  const char* json_path = argc > 1 ? argv[1] : "BENCH_faults.json";
  if (std::FILE* f = std::fopen(json_path, "w")) {
    std::fprintf(f, "{\n  \"experiment\": \"E18_fault_injection\",\n");
    std::fprintf(f, "  \"params\": \"tre-toy-96\",\n");
    std::fprintf(f, "  \"mirrors\": %zu,\n  \"receivers_per_seed\": %zu,\n  \"seeds\": %d,\n",
                 kMirrors, kReceivers, kSeeds);
    std::fprintf(f, "  \"cells\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(f,
                   "    {\"loss\": %.2f, \"byzantine_mirrors\": %zu, "
                   "\"delivered\": %zu, \"expected\": %zu, "
                   "\"p50_availability_s\": %lld, \"p95_availability_s\": %lld, "
                   "\"rejected_replies\": %llu, \"forged_accepts\": %llu, "
                   "\"rejected_parse\": %llu, \"rejected_tag\": %llu, "
                   "\"rejected_sig\": %llu}%s\n",
                   r.loss, r.byz, r.delivered, r.expected,
                   static_cast<long long>(r.p50), static_cast<long long>(r.p95),
                   static_cast<unsigned long long>(r.rejected),
                   static_cast<unsigned long long>(r.forged),
                   static_cast<unsigned long long>(r.rej_parse),
                   static_cast<unsigned long long>(r.rej_tag),
                   static_cast<unsigned long long>(r.rej_sig),
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"zero_forged_everywhere\": %s,\n",
                 all_clean ? "true" : "false");
    std::fprintf(f, "%s\n}\n", bench::metrics_json_field(2).c_str());
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }
  return all_clean ? 0 : 1;
}
