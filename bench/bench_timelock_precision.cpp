// E4: release-time precision — RSW time-lock puzzles vs TRE.
//
// The paper's §2.1 criticism of puzzles: the sender can only pick a
// squaring count t calibrated against an ASSUMED machine; a receiver
// with a slower machine, or one that starts late, opens the message late
// (and an adversary with faster silicon opens it early). TRE's release
// error is just the broadcast/lookup latency, independent of receiver
// hardware. We calibrate t on this host, then model receivers of
// different relative speeds and start delays.
#include <cstdio>

#include "baselines/rsw_puzzle.h"
#include "bench_util.h"
#include "hashing/drbg.h"

int main() {
  using namespace tre;
  bench::header("E4: release-time precision, RSW puzzle vs TRE",
                "time-lock puzzles give relative, machine-dependent, "
                "CPU-burning release; TRE gives absolute release with "
                "error = update delivery latency (paper §2.1, §3)");

  hashing::HmacDrbg rng(to_bytes("bench-e4"));
  constexpr size_t kBits = 1024;

  double rate = baselines::Rsw::measure_squarings_per_second(kBits, rng);
  std::printf("calibration: %.0f modular squarings/s at %zu-bit modulus "
              "(the sender's assumed machine)\n\n",
              rate, kBits);

  const double target_seconds = 60.0;
  const auto t = static_cast<std::uint64_t>(rate * target_seconds);
  std::printf("sender seals for a %.0f s relative delay -> t = %llu squarings\n\n",
              target_seconds, static_cast<unsigned long long>(t));

  std::printf("%-34s | %14s | %12s\n", "receiver scenario", "unlock at (s)",
              "error vs 60s");
  std::printf("-----------------------------------+----------------+--------------\n");
  struct Scenario {
    const char* name;
    double speed_factor;  // relative to the calibration machine
    double start_delay;   // seconds until solving starts
  };
  for (const Scenario& sc : {Scenario{"assumed machine, starts instantly", 1.0, 0.0},
                             Scenario{"2x faster adversary", 2.0, 0.0},
                             Scenario{"4x faster adversary (GPU-era)", 4.0, 0.0},
                             Scenario{"2x slower laptop", 0.5, 0.0},
                             Scenario{"4x slower embedded device", 0.25, 0.0},
                             Scenario{"assumed machine, opens mail 5 min late",
                                      1.0, 300.0}}) {
    double unlock = sc.start_delay + static_cast<double>(t) / (rate * sc.speed_factor);
    std::printf("%-34s | %14.1f | %+11.1f s\n", sc.name, unlock, unlock - target_seconds);
  }

  std::printf("\nTRE for comparison (absolute release, hardware-independent):\n");
  std::printf("%-34s | %14s\n", "receiver scenario", "error");
  std::printf("-----------------------------------+----------------\n");
  std::printf("%-34s | %14s\n", "any machine, live broadcast", "delivery jitter (~s)");
  std::printf("%-34s | %14s\n", "any machine, archive catch-up", "one lookup RTT");
  std::printf("%-34s | %14s\n", "starts decrypting late", "0 (opens instantly)");

  // CPU burned: the puzzle costs the receiver the full t squarings.
  bool done = false;
  auto trapdoor = baselines::Rsw::keygen(rng, kBits);
  auto puzzle = baselines::Rsw::seal(trapdoor, rng.bytes(32), 50000, rng);
  double solve_ms = bench::time_ms(1, [&] {
    (void)baselines::Rsw::solve_with_budget(puzzle, 50000, &done);
  });
  std::printf("\nreceiver CPU burned by a 50k-squaring puzzle: %.0f ms of full-core "
              "work (TRE decryption: one pairing, ~tens of ms)\n",
              solve_ms);
  return done ? 0 : 1;
}
