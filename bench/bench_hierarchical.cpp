// E13: hierarchical timed release (§6 future work via HIBE).
//
// What the hierarchy buys: the public archive stays O(days + 24 + 60)
// entries instead of one entry per elapsed minute, and a receiver that
// missed updates derives any past minute locally. What it costs: deeper
// ciphertexts (one extra point and pairing per level) and a derivation
// step on catch-up.
#include <cstdio>

#include "bench_util.h"
#include "core/tre.h"
#include "hashing/drbg.h"
#include "timeserver/hierarchical.h"

int main() {
  using namespace tre;
  bench::header("E13: hierarchical vs flat archive and scheme costs",
                "§6 future work: hierarchy makes missing updates harmless "
                "and compacts the public list; archive entries drop from "
                "O(minutes) to O(days + 24 + 60)");

  auto params = params::load("tre-toy-96");
  hashing::HmacDrbg rng(to_bytes("bench-e13"));

  // Archive growth: flat (1 entry/minute) vs compacting.
  std::printf("archive size after N days of minute-granularity operation:\n");
  std::printf("%-8s | %14s | %18s | %18s\n", "days", "flat entries",
              "hierarchical entries", "hierarchical points");
  std::printf("---------+----------------+--------------------+--------------------\n");
  for (int days : {1, 7, 30}) {
    server::Timeline timeline(0);
    server::HierarchicalTimeServer hts(params, timeline, rng);
    timeline.advance_to(static_cast<std::int64_t>(days) * 86400);
    hts.tick();
    size_t flat = static_cast<size_t>(days) * 1440 + 1;
    std::printf("%-8d | %14zu | %18zu | %18zu\n", days, flat, hts.archive().entries(),
                hts.archive().stored_points());
  }

  // Catch-up derivation costs (tre-512 for realistic numbers).
  auto big = params::load("tre-512");
  server::Timeline timeline(0);
  server::HierarchicalTimeServer hts(big, timeline, rng);
  server::HierarchicalTre htre(big);
  core::TreScheme scheme(big);
  core::ServerPublicKey bind{hts.public_key().p0, hts.public_key().q0};
  core::UserKeyPair user = scheme.user_keygen(bind, rng);

  auto release = server::TimeSpec::from_unix(23 * 60, server::Granularity::kMinute);
  Bytes msg = rng.bytes(256);
  auto ct = htre.encrypt(msg, user.pub, hts.public_key(), release, rng);
  double enc_ms = bench::time_ms(5, [&] {
    (void)htre.encrypt(msg, user.pub, hts.public_key(), release, rng);
  });

  timeline.advance_to(86400);  // a day later: day key derivable
  hibe::NodeKey leaf = hts.key_for(release);
  hibe::NodeKey hour = hts.key_for(server::TimeSpec::from_unix(0, server::Granularity::kHour));
  hibe::NodeKey day = hts.key_for(server::TimeSpec::from_unix(0, server::Granularity::kDay));

  double direct_ms = bench::time_ms(5, [&] { (void)htre.decrypt(ct, user.a, leaf); });
  double via_hour_ms = bench::time_ms(5, [&] {
    hibe::NodeKey derived = htre.hibe().derive_child(hts.public_key().p0, hour,
                                                     "1970-01-01T00:23Z",
                                                     core::Scalar::from_u64(1));
    (void)htre.decrypt(ct, user.a, derived);
  });
  double via_day_ms = bench::time_ms(5, [&] {
    hibe::NodeKey h = htre.hibe().derive_child(hts.public_key().p0, day,
                                               "1970-01-01T00Z", core::Scalar::from_u64(1));
    hibe::NodeKey m = htre.hibe().derive_child(hts.public_key().p0, h,
                                               "1970-01-01T00:23Z",
                                               core::Scalar::from_u64(1));
    (void)htre.decrypt(ct, user.a, m);
  });

  // Flat TRE reference.
  core::ServerKeyPair flat_server = scheme.server_keygen(rng);
  core::UserKeyPair flat_user = scheme.user_keygen(flat_server.pub, rng);
  auto flat_ct = scheme.encrypt(msg, flat_user.pub, flat_server.pub, "T", rng,
                                core::KeyCheck::kSkip);
  core::KeyUpdate flat_upd = scheme.issue_update(flat_server, "T");
  double flat_enc = bench::time_ms(5, [&] {
    (void)scheme.encrypt(msg, flat_user.pub, flat_server.pub, "T", rng,
                         core::KeyCheck::kSkip);
  });
  double flat_dec =
      bench::time_ms(5, [&] { (void)scheme.decrypt(flat_ct, flat_user.a, flat_upd); });

  std::printf("\nscheme costs (tre-512, 256-byte message):\n");
  std::printf("%-44s %10.2f ms\n", "flat TRE encrypt:", flat_enc);
  std::printf("%-44s %10.2f ms\n", "hierarchical encrypt (depth 3):", enc_ms);
  std::printf("%-44s %10.2f ms\n", "flat TRE decrypt:", flat_dec);
  std::printf("%-44s %10.2f ms\n", "hierarchical decrypt, direct leaf:", direct_ms);
  std::printf("%-44s %10.2f ms\n", "hierarchical decrypt, derived from hour:",
              via_hour_ms);
  std::printf("%-44s %10.2f ms\n", "hierarchical decrypt, derived from day:",
              via_day_ms);
  return 0;
}
