// E12: receiver-side fan-out — one broadcast update unlocking a large
// population concurrently.
//
// The paper's scalability story is about the SERVER being O(1); this
// harness shows the complementary receiver property: decryption is
// embarrassingly parallel because receivers share nothing but immutable
// public values (parameters, server key, the update). Throughput scales
// with cores; the update is verified once per receiver or once per batch.
// E21 rides in the same binary: fleet catch-up batch verification —
// Pippenger multi-exp + randomized linear combination collapses N
// per-update pairing checks into one size-2 multi-pairing. The sweep
// reports verified-updates/sec per curve and feeds the BATCH=1 gate.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "bls12/tre381.h"
#include "core/tre.h"
#include "hashing/drbg.h"

namespace {

struct BatchRow {
  std::string curve;
  size_t n;
  double per_item_ms;  // sampled single-update verify cost scaled to N
  double batch_ms;
  double speedup;
  double verified_per_sec;
};

// One sweep point: issue N honest updates, time the per-item baseline on
// a sample (verify_update cost is flat in N, so sampling min(N, 200) and
// scaling is honest and saves 10^5 pairings), then time the whole batch.
template <class B>
BatchRow batch_case(const char* curve, tre::core::BasicTreScheme<B>& scheme,
                    const tre::core::BasicServerKeyPair<B>& server,
                    tre::hashing::HmacDrbg& rng, size_t n) {
  using namespace tre;
  std::vector<std::string> tags;
  tags.reserve(n);
  for (size_t i = 0; i < n; ++i) tags.push_back("fleet-" + std::to_string(i));
  std::vector<core::BasicKeyUpdate<B>> updates =
      scheme.issue_updates(server, tags);

  const size_t sample = std::min<size_t>(n, 200);
  double sample_ms = bench::time_ms(1, [&] {
    for (size_t i = 0; i < sample; ++i) {
      if (!scheme.verify_update(server.pub, updates[i])) std::abort();
    }
  });
  double per_item_ms =
      sample_ms * static_cast<double>(n) / static_cast<double>(sample);

  double batch_ms = bench::time_ms(1, [&] {
    if (!scheme.verify_updates_batch(server.pub, updates, rng).empty()) {
      std::abort();
    }
  });
  double speedup = batch_ms > 0 ? per_item_ms / batch_ms : 0;
  return BatchRow{curve,    n,       per_item_ms,
                  batch_ms, speedup, 1000.0 * static_cast<double>(n) / batch_ms};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tre;
  bench::header("E12: parallel decryption throughput after one broadcast (tre-512)",
                "complements §5.3.1: the single broadcast update is shared, "
                "immutable state; receiver decryptions scale with cores");

  auto params = params::load("tre-512");
  core::TreScheme scheme(params);
  hashing::HmacDrbg rng(to_bytes("bench-e12"));
  core::ServerKeyPair server = scheme.server_keygen(rng);
  const char* tag = "2030-01-01T00:00:00Z";
  core::KeyUpdate update = scheme.issue_update(server, tag);

  // A population of receivers, each with their own mail.
  constexpr size_t kReceivers = 64;
  std::vector<core::UserKeyPair> users;
  std::vector<core::Ciphertext> mail;
  Bytes msg = rng.bytes(128);
  for (size_t i = 0; i < kReceivers; ++i) {
    users.push_back(scheme.user_keygen(server.pub, rng));
    mail.push_back(scheme.encrypt(msg, users.back().pub, server.pub, tag, rng,
                                  core::KeyCheck::kSkip));
  }

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("host reports %u hardware thread(s); speedup is bounded by that.\n\n",
              hw);
  std::printf("%-8s | %12s | %14s | %8s | %10s\n", "threads", "total ms",
              "decrypts/s", "speedup", "efficiency");
  std::printf("---------+--------------+----------------+----------+-----------\n");
  double base_ms = 0;
  struct Row {
    size_t threads;
    double ops;
    double efficiency;  // speedup / threads: 1.0 = perfect per-thread scaling
  };
  std::vector<Row> json_rows;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    std::atomic<size_t> next{0};
    std::atomic<size_t> ok{0};
    double total_ms = bench::time_ms(1, [&] {
      std::vector<std::thread> pool;
      for (size_t t = 0; t < threads; ++t) {
        pool.emplace_back([&] {
          for (;;) {
            size_t i = next.fetch_add(1);
            if (i >= kReceivers) return;
            Bytes out = scheme.decrypt(mail[i], users[i].a, update);
            if (out == msg) ok.fetch_add(1);
          }
        });
      }
      for (auto& th : pool) th.join();
    });
    if (ok.load() != kReceivers) {
      std::printf("ERROR: %zu/%zu decryptions failed\n", kReceivers - ok.load(),
                  kReceivers);
      return 1;
    }
    if (threads == 1) base_ms = total_ms;
    const double speedup = base_ms / total_ms;
    const double efficiency = speedup / static_cast<double>(threads);
    std::printf("%-8zu | %12.1f | %14.0f | %7.2fx | %9.2f\n", threads, total_ms,
                1000.0 * kReceivers / total_ms, speedup, efficiency);
    json_rows.push_back(Row{threads, 1000.0 * kReceivers / total_ms, efficiency});
    next = 0;
  }
  std::printf("\n(%zu receivers, one shared 87-byte update, zero receiver-side "
              "coordination)\n", kReceivers);

  // ---- E21: fleet catch-up — randomized batch verification sweep. -----
  // A device that slept through N update broadcasts verifies the whole
  // backlog as ONE randomized linear combination: two Pippenger
  // multi-exps + one size-2 multi-pairing instead of 2N pairings.
  std::printf("\nE21: batch verification of key updates "
              "(Pippenger multi-exp + 128-bit RLC)\n");
  std::printf("%-10s | %7s | %12s | %12s | %8s | %12s\n", "curve", "N",
              "per-item ms", "batch ms", "speedup", "verified/s");
  std::printf("-----------+---------+--------------+--------------+"
              "----------+-------------\n");
  std::vector<BatchRow> batch_rows;
  {
    hashing::HmacDrbg brng(to_bytes("bench-e21"));
    auto scheme381 = bls12::make_tre381();
    auto server381 = scheme381.server_keygen(brng);
    for (size_t n : {size_t{100}, size_t{1000}, size_t{10000}, size_t{100000}}) {
      batch_rows.push_back(
          batch_case("bls12-381", scheme381, server381, brng, n));
      const BatchRow& r = batch_rows.back();
      std::printf("%-10s | %7zu | %12.1f | %12.1f | %7.1fx | %12.0f\n",
                  r.curve.c_str(), r.n, r.per_item_ms, r.batch_ms, r.speedup,
                  r.verified_per_sec);
    }
    // The 512-bit supersingular curve's pairing runs ~two decades slower;
    // issuing 10^4+ updates there would dominate the harness for no new
    // information, so its sweep stops at 10^3 — stated, not silent.
    std::printf("(tre-512 sweep capped at N=1000: per-update issuance on the "
                "512-bit curve\n makes larger N impractical in a bench run)\n");
    core::ServerKeyPair server512 = scheme.server_keygen(brng);
    for (size_t n : {size_t{100}, size_t{1000}}) {
      batch_rows.push_back(batch_case("tre-512", scheme, server512, brng, n));
      const BatchRow& r = batch_rows.back();
      std::printf("%-10s | %7zu | %12.1f | %12.1f | %7.1fx | %12.0f\n",
                  r.curve.c_str(), r.n, r.per_item_ms, r.batch_ms, r.speedup,
                  r.verified_per_sec);
    }
  }

  // Machine-readable mirror of the table (path overridable as argv[1]).
  // "hardware_threads" lets consumers (the SCALING gate, PERF.md) judge
  // whether the speedup ceiling was the code or the host.
  const char* json_path = argc > 1 ? argv[1] : "BENCH_throughput.json";
  if (std::FILE* f = std::fopen(json_path, "w")) {
    std::fprintf(f, "{\n  \"params\": \"tre-512\",\n  \"receivers\": %zu,\n",
                 kReceivers);
    std::fprintf(f, "  \"hardware_threads\": %u,\n", hw);
    std::fprintf(f, "  \"unit\": \"decrypts_per_sec\",\n  \"results\": {\n");
    for (size_t i = 0; i < json_rows.size(); ++i) {
      std::fprintf(f, "    \"threads_%zu\": %.2f%s\n", json_rows[i].threads,
                   json_rows[i].ops, i + 1 < json_rows.size() ? "," : "");
    }
    std::fprintf(f, "  },\n  \"efficiency\": {\n");
    for (size_t i = 0; i < json_rows.size(); ++i) {
      std::fprintf(f, "    \"threads_%zu\": %.3f%s\n", json_rows[i].threads,
                   json_rows[i].efficiency, i + 1 < json_rows.size() ? "," : "");
    }
    std::fprintf(f, "  },\n");
    // E21 rows: one object per line so shell gates (BATCH=1) can grep a
    // (curve, n) row and awk a field out without a JSON parser. The key
    // names deliberately avoid the threads_* namespace the SCALING gate
    // scans for.
    std::fprintf(f, "  \"batch_verify\": [\n");
    for (size_t i = 0; i < batch_rows.size(); ++i) {
      const BatchRow& r = batch_rows[i];
      std::fprintf(f,
                   "    {\"curve\": \"%s\", \"n\": %zu, \"per_item_ms\": %.2f, "
                   "\"batch_ms\": %.2f, \"speedup\": %.2f, "
                   "\"verified_per_sec\": %.0f}%s\n",
                   r.curve.c_str(), r.n, r.per_item_ms, r.batch_ms, r.speedup,
                   r.verified_per_sec, i + 1 < batch_rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "%s\n}\n", bench::metrics_json_field(2).c_str());
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}
