// E12: receiver-side fan-out — one broadcast update unlocking a large
// population concurrently.
//
// The paper's scalability story is about the SERVER being O(1); this
// harness shows the complementary receiver property: decryption is
// embarrassingly parallel because receivers share nothing but immutable
// public values (parameters, server key, the update). Throughput scales
// with cores; the update is verified once per receiver or once per batch.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/tre.h"
#include "hashing/drbg.h"

int main(int argc, char** argv) {
  using namespace tre;
  bench::header("E12: parallel decryption throughput after one broadcast (tre-512)",
                "complements §5.3.1: the single broadcast update is shared, "
                "immutable state; receiver decryptions scale with cores");

  auto params = params::load("tre-512");
  core::TreScheme scheme(params);
  hashing::HmacDrbg rng(to_bytes("bench-e12"));
  core::ServerKeyPair server = scheme.server_keygen(rng);
  const char* tag = "2030-01-01T00:00:00Z";
  core::KeyUpdate update = scheme.issue_update(server, tag);

  // A population of receivers, each with their own mail.
  constexpr size_t kReceivers = 64;
  std::vector<core::UserKeyPair> users;
  std::vector<core::Ciphertext> mail;
  Bytes msg = rng.bytes(128);
  for (size_t i = 0; i < kReceivers; ++i) {
    users.push_back(scheme.user_keygen(server.pub, rng));
    mail.push_back(scheme.encrypt(msg, users.back().pub, server.pub, tag, rng,
                                  core::KeyCheck::kSkip));
  }

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("host reports %u hardware thread(s); speedup is bounded by that.\n\n",
              hw);
  std::printf("%-8s | %12s | %14s | %8s | %10s\n", "threads", "total ms",
              "decrypts/s", "speedup", "efficiency");
  std::printf("---------+--------------+----------------+----------+-----------\n");
  double base_ms = 0;
  struct Row {
    size_t threads;
    double ops;
    double efficiency;  // speedup / threads: 1.0 = perfect per-thread scaling
  };
  std::vector<Row> json_rows;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    std::atomic<size_t> next{0};
    std::atomic<size_t> ok{0};
    double total_ms = bench::time_ms(1, [&] {
      std::vector<std::thread> pool;
      for (size_t t = 0; t < threads; ++t) {
        pool.emplace_back([&] {
          for (;;) {
            size_t i = next.fetch_add(1);
            if (i >= kReceivers) return;
            Bytes out = scheme.decrypt(mail[i], users[i].a, update);
            if (out == msg) ok.fetch_add(1);
          }
        });
      }
      for (auto& th : pool) th.join();
    });
    if (ok.load() != kReceivers) {
      std::printf("ERROR: %zu/%zu decryptions failed\n", kReceivers - ok.load(),
                  kReceivers);
      return 1;
    }
    if (threads == 1) base_ms = total_ms;
    const double speedup = base_ms / total_ms;
    const double efficiency = speedup / static_cast<double>(threads);
    std::printf("%-8zu | %12.1f | %14.0f | %7.2fx | %9.2f\n", threads, total_ms,
                1000.0 * kReceivers / total_ms, speedup, efficiency);
    json_rows.push_back(Row{threads, 1000.0 * kReceivers / total_ms, efficiency});
    next = 0;
  }
  std::printf("\n(%zu receivers, one shared 87-byte update, zero receiver-side "
              "coordination)\n", kReceivers);

  // Machine-readable mirror of the table (path overridable as argv[1]).
  // "hardware_threads" lets consumers (the SCALING gate, PERF.md) judge
  // whether the speedup ceiling was the code or the host.
  const char* json_path = argc > 1 ? argv[1] : "BENCH_throughput.json";
  if (std::FILE* f = std::fopen(json_path, "w")) {
    std::fprintf(f, "{\n  \"params\": \"tre-512\",\n  \"receivers\": %zu,\n",
                 kReceivers);
    std::fprintf(f, "  \"hardware_threads\": %u,\n", hw);
    std::fprintf(f, "  \"unit\": \"decrypts_per_sec\",\n  \"results\": {\n");
    for (size_t i = 0; i < json_rows.size(); ++i) {
      std::fprintf(f, "    \"threads_%zu\": %.2f%s\n", json_rows[i].threads,
                   json_rows[i].ops, i + 1 < json_rows.size() ? "," : "");
    }
    std::fprintf(f, "  },\n  \"efficiency\": {\n");
    for (size_t i = 0; i < json_rows.size(); ++i) {
      std::fprintf(f, "    \"threads_%zu\": %.3f%s\n", json_rows[i].threads,
                   json_rows[i].efficiency, i + 1 < json_rows.size() ? "," : "");
    }
    std::fprintf(f, "  },\n");
    std::fprintf(f, "%s\n}\n", bench::metrics_json_field(2).c_str());
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}
