// E15: k-of-n threshold time servers vs the paper's n-of-n multi-server
// design — the cost of trust distribution with liveness.
//
//   §5.3.5 (n-of-n): receiver needs ALL updates; ciphertext and decrypt
//   grow with n; one crashed server halts releases.
//   k-of-n (this repo): ciphertext and decrypt are EXACTLY the single-
//   server scheme; the combiner pays k scalar mults once per instant;
//   n-k servers may fail.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/multiserver.h"
#include "core/threshold.h"
#include "hashing/drbg.h"

int main() {
  using namespace tre;
  bench::header("E15: k-of-n threshold vs §5.3.5 n-of-n multi-server (tre-512)",
                "extension: Shamir-shared server keeps ciphertexts and "
                "decryption identical to the single-server scheme while "
                "tolerating n-k server failures; §5.3.5 pays linear "
                "ciphertexts and halts on any failure");

  auto params = params::load("tre-512");
  core::ThresholdTre ttre(params);
  core::MultiServerTre mstre(params);
  core::TreScheme scheme(params);
  hashing::HmacDrbg rng(to_bytes("bench-e15"));
  const char* tag = "2030-01-01T00:00:00Z";
  Bytes msg = rng.bytes(256);

  std::printf("%-18s | %10s | %10s | %10s | %12s | %s\n", "configuration", "enc ms",
              "dec ms", "ct bytes", "combine ms", "tolerates");
  std::printf("-------------------+------------+------------+------------+--------------+-----------\n");

  for (auto [n, k] : {std::pair<size_t, size_t>{3, 2}, {5, 3}, {9, 5}}) {
    // --- k-of-n threshold ---
    auto [key, shares] = ttre.setup(core::ThresholdConfig{n, k}, rng);
    core::UserKeyPair user = scheme.user_keygen(key.group, rng);
    auto ct = scheme.encrypt(msg, user.pub, key.group, tag, rng, core::KeyCheck::kSkip);
    std::vector<core::PartialUpdate> partials;
    for (size_t i = 1; i <= k; ++i) partials.push_back(ttre.issue_partial(shares[i - 1], tag));

    double enc_ms = bench::time_ms(5, [&] {
      (void)scheme.encrypt(msg, user.pub, key.group, tag, rng, core::KeyCheck::kSkip);
    });
    double combine_ms = bench::time_ms(5, [&] { (void)ttre.combine(key, partials); });
    core::KeyUpdate update = ttre.combine(key, partials);
    double dec_ms = bench::time_ms(5, [&] { (void)scheme.decrypt(ct, user.a, update); });
    std::printf("threshold %zu-of-%zu  | %10.2f | %10.2f | %10zu | %12.2f | %zu crashes\n",
                k, n, enc_ms, dec_ms, ct.to_bytes().size(), combine_ms, n - k);

    // --- §5.3.5 n-of-n multi-server ---
    std::vector<core::ServerKeyPair> servers;
    std::vector<core::ServerPublicKey> pubs;
    for (size_t i = 0; i < n; ++i) {
      servers.push_back(scheme.server_keygen(rng));
      pubs.push_back(servers.back().pub);
    }
    core::Scalar a = params::random_scalar(*params, rng);
    auto muser = mstre.user_key(a, pubs);
    auto mct = mstre.encrypt(msg, muser, pubs, tag, rng);
    std::vector<core::KeyUpdate> updates;
    for (const auto& s : servers) updates.push_back(scheme.issue_update(s, tag));
    double menc_ms =
        bench::time_ms(3, [&] { (void)mstre.encrypt(msg, muser, pubs, tag, rng); });
    double mdec_ms = bench::time_ms(3, [&] { (void)mstre.decrypt(mct, a, updates); });
    std::printf("§5.3.5 %zu-of-%zu    | %10.2f | %10.2f | %10zu | %12s | 0 crashes\n",
                n, n, menc_ms, mdec_ms, mct.to_bytes().size(), "-");
  }
  std::printf("\n(threshold ciphertexts and decryption never grow with n; the "
              "one-off combine cost is paid once per instant, by anyone)\n");
  return 0;
}
