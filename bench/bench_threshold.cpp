// E15 + E22: the t-of-n threshold beacon.
//
// E15 (kept from the original harness): k-of-n threshold vs the paper's
// §5.3.5 n-of-n multi-server design — ciphertexts and decryption stay
// EXACTLY the single-server scheme while tolerating n-k crashes, where
// n-of-n grows linearly and halts on any failure.
//
// E22 (the backend-generic beacon pipeline): DKG and dealer setup,
// partial issuance, RLC batch verification, and Lagrange aggregation
// (one gu_multiexp per quorum) swept over t ∈ {2,4,8,16} on BOTH
// curves, plus a FaultPlan liveness probe: with t-1 relabelling forgers
// among the beacon nodes the fetcher must still reach quorum, convict
// exactly the forgers, and deliver an aggregate byte-identical to the
// single-server update. Emits BENCH_threshold.json.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "bls12/tre381.h"
#include "client/fetcher.h"
#include "client/simnet_source.h"
#include "core/multiserver.h"
#include "core/threshold.h"
#include "core/tre.h"
#include "hashing/drbg.h"
#include "threshold/dkg.h"
#include "threshold/threshold.h"

using namespace tre;

namespace {

struct Row {
  size_t t = 0;
  size_t n = 0;
  double dkg_ms = 0;
  double setup_ms = 0;
  double issue_ms = 0;         // one partial
  double batch_verify_ms = 0;  // n honest partials, one RLC equation
  double combine_ms = 0;       // t-partial quorum, one gu_multiexp
  bool bit_identical = false;  // aggregate == single-server update
  // FaultPlan liveness: t-1 relabelling forgers among n beacon nodes.
  bool delivered = false;
  size_t convicted = 0;
  bool exact_attribution = false;
};

template <class B>
std::vector<Row> run_backend(std::shared_ptr<const typename B::Params> params,
                             const char* label) {
  threshold::BasicThresholdScheme<B> tscheme(params);
  core::BasicTreScheme<B> scheme(params);
  hashing::HmacDrbg rng(to_bytes(std::string("bench-e22-") + label));
  const char* tag = "2030-01-01T00:00:00Z";

  std::printf("\n--- %s ---\n", label);
  std::printf("%-8s | %8s | %8s | %9s | %11s | %10s | %9s | %s\n", "t-of-n",
              "dkg ms", "setup ms", "issue ms", "batchver ms", "combine ms",
              "delivered", "convicted");
  std::printf("---------+----------+----------+-----------+-------------+--"
              "----------+-----------+----------\n");

  std::vector<Row> rows;
  for (size_t t : {size_t{2}, size_t{4}, size_t{8}, size_t{16}}) {
    Row row;
    row.t = t;
    row.n = 2 * t;
    threshold::ThresholdConfig cfg{row.n, t};

    row.dkg_ms = bench::time_ms(1, [&] {
      if (!threshold::run_dkg<B>(params, cfg, rng).ok()) std::abort();
    });
    row.setup_ms = bench::time_ms(3, [&] { (void)tscheme.setup(cfg, rng); });

    auto [key, shares] = tscheme.setup(cfg, rng);
    row.issue_ms =
        bench::time_ms(3, [&] { (void)tscheme.issue_partial(shares[0], tag); });

    std::vector<threshold::BasicPartialUpdate<B>> partials;
    for (const auto& s : shares) partials.push_back(tscheme.issue_partial(s, tag));
    row.batch_verify_ms = bench::time_ms(3, [&] {
      if (!tscheme.verify_partials_batch(key, partials, rng).empty()) std::abort();
    });

    std::vector<threshold::BasicPartialUpdate<B>> quorum(partials.begin(),
                                                         partials.begin() + t);
    row.combine_ms = bench::time_ms(3, [&] { (void)tscheme.combine(key, quorum); });

    core::BasicServerKeyPair<B> single{tscheme.recover_secret(key, shares),
                                       key.group};
    row.bit_identical = tscheme.combine(key, quorum).to_bytes() ==
                        scheme.issue_update(single, tag).to_bytes();

    // --- FaultPlan liveness: the first t-1 beacon nodes forge ------------
    server::Timeline timeline(0);
    simnet::Network net(timeline, to_bytes("e22-net"));
    simnet::FaultPlan plan(to_bytes("e22-plan"));
    net.set_fault_plan(&plan);
    simnet::BasicMirroredArchive<B> archive(params, net, timeline, row.n,
                                            simnet::LinkSpec{.base_delay = 1});
    simnet::NodeId rx = net.add_node("rx");
    for (size_t i = 0; i < row.n; ++i) {
      archive.publish_partial(i, tscheme.issue_partial(shares[i], tag));
      if (i < t - 1) {
        // A relabeller serves another tag's partial under the asked tag.
        archive.publish_partial(i, tscheme.issue_partial(shares[i], "decoy"));
        plan.set_byzantine(archive.mirror_node(i),
                           simnet::ByzantineMode::kRelabel);
      }
    }
    client::BasicSimnetSource<B> source(archive, rx,
                                        simnet::LinkSpec{.base_delay = 1});
    std::vector<size_t> order(row.n);
    for (size_t i = 0; i < row.n; ++i) order[i] = i;
    client::BasicUpdateFetcher<B> fetcher(scheme, key.as_server_public_key(),
                                          source, timeline, order,
                                          to_bytes("e22-jitter"));
    auto res = fetcher.fetch_threshold(tscheme, key, tag);
    row.delivered = res.ok() && res->update.to_bytes() ==
                                    scheme.issue_update(single, tag).to_bytes();
    if (res.ok()) {
      row.convicted = res->byzantine_nodes.size();
      // Exactly the forgers' share indices 1..t-1, nobody honest.
      row.exact_attribution = res->byzantine_nodes.size() == t - 1;
      for (size_t i = 0; i < res->byzantine_nodes.size(); ++i) {
        if (res->byzantine_nodes[i] != i + 1) row.exact_attribution = false;
      }
    }

    std::printf("%2zu-of-%-2zu | %8.2f | %8.2f | %9.3f | %11.2f | %10.2f | %9s | %zu of %zu\n",
                row.t, row.n, row.dkg_ms, row.setup_ms, row.issue_ms,
                row.batch_verify_ms, row.combine_ms,
                row.delivered ? "yes" : "NO", row.convicted, t - 1);
    rows.push_back(row);
  }
  return rows;
}

// E15: the original threshold-vs-§5.3.5 cost table (tre-512).
void run_e15_comparison() {
  auto params = params::load("tre-512");
  core::ThresholdTre ttre(params);
  core::MultiServerTre mstre(params);
  core::TreScheme scheme(params);
  hashing::HmacDrbg rng(to_bytes("bench-e15"));
  const char* tag = "2030-01-01T00:00:00Z";
  Bytes msg = rng.bytes(256);

  std::printf("\n--- E15: k-of-n vs §5.3.5 n-of-n (tre-512) ---\n");
  std::printf("%-18s | %10s | %10s | %10s | %12s | %s\n", "configuration",
              "enc ms", "dec ms", "ct bytes", "combine ms", "tolerates");
  std::printf("-------------------+------------+------------+------------+--"
              "------------+-----------\n");

  for (auto [n, k] : {std::pair<size_t, size_t>{3, 2}, {5, 3}, {9, 5}}) {
    auto [key, shares] = ttre.setup(core::ThresholdConfig{n, k}, rng);
    core::UserKeyPair user = scheme.user_keygen(key.group, rng);
    auto ct = scheme.encrypt(msg, user.pub, key.group, tag, rng, core::KeyCheck::kSkip);
    std::vector<core::PartialUpdate> partials;
    for (size_t i = 1; i <= k; ++i) partials.push_back(ttre.issue_partial(shares[i - 1], tag));

    double enc_ms = bench::time_ms(5, [&] {
      (void)scheme.encrypt(msg, user.pub, key.group, tag, rng, core::KeyCheck::kSkip);
    });
    double combine_ms = bench::time_ms(5, [&] { (void)ttre.combine(key, partials); });
    core::KeyUpdate update = ttre.combine(key, partials);
    double dec_ms = bench::time_ms(5, [&] { (void)scheme.decrypt(ct, user.a, update); });
    std::printf("threshold %zu-of-%zu  | %10.2f | %10.2f | %10zu | %12.2f | %zu crashes\n",
                k, n, enc_ms, dec_ms, ct.to_bytes().size(), combine_ms, n - k);

    std::vector<core::ServerKeyPair> servers;
    std::vector<core::ServerPublicKey> pubs;
    for (size_t i = 0; i < n; ++i) {
      servers.push_back(scheme.server_keygen(rng));
      pubs.push_back(servers.back().pub);
    }
    core::Scalar a = params::random_scalar(*params, rng);
    auto muser = mstre.user_key(a, pubs);
    auto mct = mstre.encrypt(msg, muser, pubs, tag, rng);
    std::vector<core::KeyUpdate> updates;
    for (const auto& s : servers) updates.push_back(scheme.issue_update(s, tag));
    double menc_ms =
        bench::time_ms(3, [&] { (void)mstre.encrypt(msg, muser, pubs, tag, rng); });
    double mdec_ms = bench::time_ms(3, [&] { (void)mstre.decrypt(mct, a, updates); });
    std::printf("§5.3.5 %zu-of-%zu    | %10.2f | %10.2f | %10zu | %12s | 0 crashes\n",
                n, n, menc_ms, mdec_ms, mct.to_bytes().size(), "-");
  }
  std::printf("\n(threshold ciphertexts and decryption never grow with n; the "
              "one-off combine cost is paid once per instant, by anyone)\n");
}

void json_rows(std::FILE* f, const char* label, const std::vector<Row>& rows,
               const char* probe_prefix, bool last) {
  const std::string calls_name =
      std::string(probe_prefix) + "threshold.multiexp.calls";
  const std::string points_name =
      std::string(probe_prefix) + "threshold.multiexp.points";
  std::fprintf(f, "    {\"backend\": \"%s\",\n     \"rows\": [\n", label);
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "      {\"t\": %zu, \"n\": %zu, \"dkg_ms\": %.3f, "
                 "\"setup_ms\": %.3f, \"issue_partial_ms\": %.4f, "
                 "\"batch_verify_ms\": %.3f, \"combine_ms\": %.3f, "
                 "\"aggregate_bit_identical\": %s, \"liveness_delivered\": %s, "
                 "\"byzantine_convicted\": %zu, \"exact_attribution\": %s}%s\n",
                 r.t, r.n, r.dkg_ms, r.setup_ms, r.issue_ms, r.batch_verify_ms,
                 r.combine_ms, r.bit_identical ? "true" : "false",
                 r.delivered ? "true" : "false", r.convicted,
                 r.exact_attribution ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "     ],\n");
  std::fprintf(f,
               "     \"multiexp_calls\": %llu,\n     \"multiexp_points\": %llu}%s\n",
               static_cast<unsigned long long>(
                   obs::Registry::global().counter_value(calls_name)),
               static_cast<unsigned long long>(
                   obs::Registry::global().counter_value(points_name)),
               last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  bench::header(
      "E15/E22: t-of-n threshold beacon (DKG, batch verify, aggregation)",
      "extension: a Shamir-shared beacon keeps ciphertexts and decryption "
      "identical to the single-server scheme; any t partials aggregate "
      "byte-identically to s*H1(T), t-1 forging nodes are convicted exactly, "
      "and liveness survives n-t failures");

  auto rows512 =
      run_backend<core::Tre512Backend>(params::load("tre-512"), "tre-512");
  auto rows381 =
      run_backend<bls12::Bls381Backend>(bls12::Bls12Ctx::get(), "bls12-381");
  run_e15_comparison();

  bool all_ok = true;
  for (const auto* rows : {&rows512, &rows381}) {
    for (const Row& r : *rows) {
      if (!r.bit_identical || !r.delivered || !r.exact_attribution) all_ok = false;
    }
  }
  const std::uint64_t multiexp_calls =
      obs::Registry::global().counter_value("core.threshold.multiexp.calls") +
      obs::Registry::global().counter_value("core.bls381.threshold.multiexp.calls");
  if (multiexp_calls == 0) all_ok = false;

  std::printf("\n(aggregation IS a multi-exponentiation: %llu gu/gh multiexp "
              "calls routed through the Pippenger engine; every aggregate "
              "byte-identical to the single-server update, every forger "
              "convicted by RLC bisection)\n",
              static_cast<unsigned long long>(multiexp_calls));

  const char* json_path = argc > 1 ? argv[1] : "BENCH_threshold.json";
  if (std::FILE* f = std::fopen(json_path, "w")) {
    std::fprintf(f, "{\n  \"experiment\": \"E22_threshold_beacon\",\n");
    std::fprintf(f, "  \"quorums\": [2, 4, 8, 16],\n");
    std::fprintf(f, "  \"backends\": [\n");
    json_rows(f, "tre-512", rows512, "core.", /*last=*/false);
    json_rows(f, "bls12-381", rows381, "core.bls381.", /*last=*/true);
    std::fprintf(f, "  ],\n  \"all_invariants_hold\": %s,\n",
                 all_ok ? "true" : "false");
    std::fprintf(f, "%s\n}\n", bench::metrics_json_field(2).c_str());
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }
  return all_ok ? 0 : 1;
}
