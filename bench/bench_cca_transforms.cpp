// E8: cost of chosen-ciphertext security — the basic §5.1 scheme vs its
// Fujisaki-Okamoto and REACT hardenings (the two options §5 names).
#include <benchmark/benchmark.h>

#include "core/tre.h"
#include "hashing/drbg.h"

namespace {

using namespace tre;

struct Fx {
  core::TreScheme scheme{params::load("tre-512")};
  hashing::HmacDrbg rng{to_bytes("bench-cca")};
  core::ServerKeyPair server = scheme.server_keygen(rng);
  core::UserKeyPair user = scheme.user_keygen(server.pub, rng);
  core::KeyUpdate update = scheme.issue_update(server, "T");
  Bytes msg = rng.bytes(1024);
  core::Ciphertext basic = scheme.encrypt(msg, user.pub, server.pub, "T", rng);
  core::FoCiphertext fo = scheme.encrypt_fo(msg, user.pub, server.pub, "T", rng);
  core::ReactCiphertext react = scheme.encrypt_react(msg, user.pub, server.pub, "T", rng);
};

Fx& fx() {
  static Fx f;
  return f;
}

void BM_EncryptBasic(benchmark::State& state) {
  auto& f = fx();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.scheme.encrypt(f.msg, f.user.pub, f.server.pub, "T", f.rng, core::KeyCheck::kSkip));
  }
  state.counters["ct_bytes"] = static_cast<double>(f.basic.to_bytes().size());
}
BENCHMARK(BM_EncryptBasic)->Unit(benchmark::kMillisecond);

void BM_EncryptFo(benchmark::State& state) {
  auto& f = fx();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.scheme.encrypt_fo(f.msg, f.user.pub, f.server.pub, "T",
                                                 f.rng, core::KeyCheck::kSkip));
  }
  state.counters["ct_bytes"] = static_cast<double>(f.fo.to_bytes().size());
}
BENCHMARK(BM_EncryptFo)->Unit(benchmark::kMillisecond);

void BM_EncryptReact(benchmark::State& state) {
  auto& f = fx();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.scheme.encrypt_react(f.msg, f.user.pub, f.server.pub, "T",
                                                    f.rng, core::KeyCheck::kSkip));
  }
  state.counters["ct_bytes"] = static_cast<double>(f.react.to_bytes().size());
}
BENCHMARK(BM_EncryptReact)->Unit(benchmark::kMillisecond);

void BM_DecryptBasic(benchmark::State& state) {
  auto& f = fx();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.scheme.decrypt(f.basic, f.user.a, f.update));
  }
}
BENCHMARK(BM_DecryptBasic)->Unit(benchmark::kMillisecond);

void BM_DecryptFo(benchmark::State& state) {
  auto& f = fx();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.scheme.decrypt_fo(f.fo, f.user.a, f.update, f.server.pub));
  }
}
BENCHMARK(BM_DecryptFo)->Unit(benchmark::kMillisecond);

void BM_DecryptReact(benchmark::State& state) {
  auto& f = fx();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.scheme.decrypt_react(f.react, f.user.a, f.update));
  }
}
BENCHMARK(BM_DecryptReact)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
