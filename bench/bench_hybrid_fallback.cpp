// E19: hybrid time-lock fallback — what the defense-in-depth lane costs.
//
// The hybrid envelope (timelock/hybrid.h) buys insurance against a
// vanished time server: the payload key also sits behind W sequential
// squarings. This harness prices that insurance on this host:
//
//   1. raw squaring throughput, plain 32-limb chain (baselines::Rsw)
//      vs the solver's self-validating 33-limb n*c chain — the check
//      lane's per-squaring tax;
//   2. checkpoint overhead at several checkpoint intervals — the cost
//      of surviving a kill -9 mid-grind;
//   3. resume-after-kill correctness: a solve interrupted at the
//      halfway checkpoint and restored must recover exactly the key
//      the straight-through solve recovers, and both envelope lanes
//      (server epoch key, ground puzzle) must open bit-identically.
//
// Writes BENCH_hybrid.json (path overridable via argv[1]).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <functional>

#include "bench_util.h"
#include "baselines/rsw_puzzle.h"
#include "core/tre.h"
#include "hashing/drbg.h"
#include "params/params.h"
#include "timelock/hybrid.h"
#include "timelock/solver.h"

int main(int argc, char** argv) {
  using namespace tre;
  bench::header("E19: hybrid time-lock fallback lane",
                "a second, serverless opening lane costs one RSW puzzle per "
                "envelope plus W receiver-side squarings; the checkpointed "
                "self-validating solver makes multi-day grinds survivable "
                "(TLP literature's hybrid constructions; LCS35 solver idiom)");

  hashing::HmacDrbg rng(to_bytes("bench-hybrid-fallback"));
  constexpr size_t kModulusBits = 1024;
  constexpr std::uint64_t kRateSteps = 100000;

  // Noisy-host de-noising: throughput numbers take the fastest of
  // several runs (scheduler preemption only ever slows a run down).
  auto best_ms = [](int reps, const std::function<void()>& fn) {
    double best = bench::time_ms(1, fn);
    for (int i = 1; i < reps; ++i) best = std::min(best, bench::time_ms(1, fn));
    return best;
  };

  // 1. Squaring throughput: plain chain vs checked (n*c) chain.
  baselines::RswTrapdoor trapdoor = baselines::Rsw::keygen(rng, kModulusBits);
  Bytes key = rng.bytes(32);
  baselines::RswPuzzle rate_puzzle =
      baselines::Rsw::seal(trapdoor, key, kRateSteps, rng);

  bool done = false;
  double plain_ms = best_ms(5, [&] {
    (void)baselines::Rsw::solve_with_budget(rate_puzzle, kRateSteps, &done);
  });
  double plain_rate = kRateSteps / (plain_ms / 1000.0);

  double checked_ms = best_ms(5, [&] {
    timelock::RswSolver checked(rate_puzzle);
    checked.advance(kRateSteps);
  });
  double checked_rate = kRateSteps / (checked_ms / 1000.0);
  double lane_tax = 100.0 * (plain_rate / checked_rate - 1.0);

  std::printf("squaring throughput at %zu-bit modulus (%llu steps):\n",
              kModulusBits, static_cast<unsigned long long>(kRateSteps));
  std::printf("  plain 32-limb chain        : %10.0f sq/s\n", plain_rate);
  std::printf("  checked 33-limb n*c chain  : %10.0f sq/s  (%+.1f%% per-squaring "
              "tax for the validate lane)\n\n",
              checked_rate, lane_tax);

  // 2. Checkpoint overhead: grind kRateSteps writing a checkpoint every
  //    k steps, vs the uncheckpointed grind above.
  std::printf("%-24s | %12s | %10s\n", "checkpoint interval", "total (ms)",
              "overhead");
  std::printf("-------------------------+--------------+-----------\n");
  const std::uint64_t kIntervals[] = {256, 1024, 4096};
  double ckpt_overhead_pct[3] = {0, 0, 0};
  for (size_t i = 0; i < 3; ++i) {
    std::uint64_t every = kIntervals[i];
    double ms = best_ms(3, [&] {
      timelock::RswSolver s(rate_puzzle);
      Bytes last;
      while (!s.done()) {
        s.advance(every);
        last = s.checkpoint();
      }
      if (last.empty()) std::abort();
    });
    ckpt_overhead_pct[i] = 100.0 * (ms / checked_ms - 1.0);
    std::printf("every %-18llu | %12.1f | %+9.1f%%\n",
                static_cast<unsigned long long>(every), ms, ckpt_overhead_pct[i]);
  }

  // 3. Resume-after-kill correctness + both envelope lanes agree.
  core::TreScheme scheme(params::load("tre-toy-96"));
  core::ServerKeyPair server = scheme.server_keygen(rng);
  core::UserKeyPair user = scheme.user_keygen(server.pub, rng);
  const std::string tag = "bench-epoch";
  Bytes msg = to_bytes("the hybrid envelope opens either way");

  constexpr std::uint64_t kSolveSteps = 8000;
  timelock::FallbackParams fb;
  fb.squarings = kSolveSteps;
  fb.modulus_bits = kModulusBits;
  using Envelope512 = timelock::BasicHybridEnvelope<core::Tre512Backend>;
  double seal_ms = 0.0;
  Envelope512 env = [&] {
    Envelope512 out = timelock::seal_hybrid(
        scheme, core::Mode::kFo, msg, user.pub, server.pub, tag, fb, rng);
    seal_ms = bench::time_ms(4, [&] {
      (void)timelock::seal_hybrid(scheme, core::Mode::kFo, msg, user.pub,
                                  server.pub, tag, fb, rng);
    });
    return out;
  }();

  core::KeyUpdate update = scheme.issue_update(server, tag);
  std::optional<Bytes> via_server;
  double open_server_ms = bench::time_ms(4, [&] {
    via_server = timelock::open_hybrid(scheme, env, user.a, update, server.pub);
  });

  // Straight-through grind...
  timelock::RswSolver straight(env.puzzle);
  while (!straight.done()) straight.advance(kSolveSteps);
  // ...vs killed at the halfway checkpoint and restored.
  timelock::RswSolver half(env.puzzle);
  half.advance(kSolveSteps / 2);
  Bytes ckpt = half.checkpoint();
  timelock::RswSolver resumed = timelock::RswSolver::restore(env.puzzle, ckpt);
  while (!resumed.done()) resumed.advance(kSolveSteps);

  bool resume_ok = straight.key() == resumed.key();
  std::optional<Bytes> via_puzzle =
      timelock::open_hybrid_with_key(env, resumed.key());
  bool lanes_agree = via_server.has_value() && via_puzzle.has_value() &&
                     *via_server == *via_puzzle && *via_server == msg;

  std::printf("\nhybrid envelope (tre-toy-96 server lane, %llu-squaring fallback):\n",
              static_cast<unsigned long long>(kSolveSteps));
  std::printf("  seal            : %8.2f ms\n", seal_ms);
  std::printf("  open, server lane: %7.2f ms (epoch key, no grinding)\n",
              open_server_ms);
  std::printf("  open, puzzle lane: %7.0f ms of sequential squarings\n",
              kSolveSteps / checked_rate * 1000.0);
  std::printf("  resume-after-kill key match : %s\n", resume_ok ? "OK" : "FAIL");
  std::printf("  both lanes bit-identical    : %s\n", lanes_agree ? "OK" : "FAIL");

  const char* json_path = argc > 1 ? argv[1] : "BENCH_hybrid.json";
  if (std::FILE* f = std::fopen(json_path, "w")) {
    std::fprintf(f, "{\n  \"experiment\": \"E19_hybrid_fallback\",\n");
    std::fprintf(f, "  \"modulus_bits\": %zu,\n  \"rate_steps\": %llu,\n",
                 kModulusBits, static_cast<unsigned long long>(kRateSteps));
    std::fprintf(f, "  \"plain_squarings_per_s\": %.0f,\n", plain_rate);
    std::fprintf(f, "  \"checked_squarings_per_s\": %.0f,\n", checked_rate);
    std::fprintf(f, "  \"check_lane_tax_pct\": %.2f,\n", lane_tax);
    std::fprintf(f, "  \"checkpoint_overhead\": [\n");
    for (size_t i = 0; i < 3; ++i) {
      std::fprintf(f, "    {\"every\": %llu, \"overhead_pct\": %.2f}%s\n",
                   static_cast<unsigned long long>(kIntervals[i]),
                   ckpt_overhead_pct[i], i + 1 < 3 ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"seal_ms\": %.3f,\n  \"open_server_lane_ms\": %.3f,\n",
                 seal_ms, open_server_ms);
    std::fprintf(f, "  \"resume_after_kill_ok\": %s,\n",
                 resume_ok ? "true" : "false");
    std::fprintf(f, "  \"lanes_bit_identical\": %s,\n",
                 lanes_agree ? "true" : "false");
    std::fprintf(f, "%s\n}\n", bench::metrics_json_field(2).c_str());
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }
  return (done && resume_ok && lanes_agree) ? 0 : 1;
}
