// E17: the 2005 instantiation vs the modern one — SAME generic core.
//
// Since the backend refactor both columns run the identical
// core::BasicTreScheme<B> code path; only the pairing backend differs:
//   * type-1 supersingular curve, ~80-bit security (the paper's era);
//   * BLS12-381 type-3 pairing, ~128-bit security (what drand/tlock run
//     this very construction on today).
// The headline: the modern curve gives SHORTER updates (49-byte G1
// points vs 65) at much higher security; our BLS12 pairing is a
// reference implementation (no sparse/cyclotomic optimizations), so its
// timings are upper bounds. Ciphertext headers move to G2 (97 B) on the
// type-3 layout — the size trade the asymmetric pairing imposes.
//
// Alongside the table the harness writes BENCH_modern_curve.json with
// the per-backend rows plus the global metrics registry snapshot, so the
// per-backend probe prefixes (core.* vs core.bls381.*) are visible in
// one artifact.
#include <cstdio>

#include "bench_util.h"
#include "bls12/tre381.h"
#include "core/tre.h"
#include "hashing/drbg.h"

int main(int argc, char** argv) {
  using namespace tre;
  bench::header("E17: 2005 type-1 curve vs BLS12-381 type-3 (reference impl)",
                "the paper's scheme ports unchanged to modern asymmetric "
                "pairings; updates get SHORTER (49 B vs 65 B) while security "
                "rises from ~80 to ~128 bits");

  hashing::HmacDrbg rng(to_bytes("bench-e17"));
  Bytes msg = rng.bytes(256);
  const char* tag = "2030-01-01T00:00:00Z";

  // Type-1 (tre-512) through the generic core.
  core::TreScheme t1(params::load("tre-512"));
  core::ServerKeyPair s1 = t1.server_keygen(rng);
  core::UserKeyPair u1 = t1.user_keygen(s1.pub, rng);
  core::KeyUpdate upd1 = t1.issue_update(s1, tag);
  auto ct1 = t1.encrypt(msg, u1.pub, s1.pub, tag, rng, core::KeyCheck::kSkip);

  // Type-3 (BLS12-381) through the SAME generic core.
  bls12::Tre381Scheme t3 = bls12::make_tre381();
  bls12::ServerKey381 s3 = t3.server_keygen(rng);
  bls12::UserKey381 u3 = t3.user_keygen(s3.pub, rng);
  bls12::Update381 upd3 = t3.issue_update(s3, tag);
  auto ct3 = t3.encrypt(msg, u3.pub, s3.pub, tag, rng, core::KeyCheck::kSkip);

  const int reps = 3;
  struct Row {
    const char* name;
    const char* curve;
    double issue, verify, enc, dec;
    size_t update_point_bytes, update_wire_bytes, ct_header_bytes;
    const char* security;
  };
  Row rows[2];

  rows[0] = Row{"type-1 supersingular (tre-512)", "tre-512",
                bench::time_ms(reps, [&] { (void)t1.issue_update(s1, tag); }),
                bench::time_ms(reps, [&] { (void)t1.verify_update(s1.pub, upd1); }),
                bench::time_ms(reps, [&] {
                  (void)t1.encrypt(msg, u1.pub, s1.pub, tag, rng, core::KeyCheck::kSkip);
                }),
                bench::time_ms(reps, [&] { (void)t1.decrypt(ct1, u1.a, upd1); }),
                t1.params().g1_compressed_bytes(), upd1.to_bytes().size(),
                t1.params().g1_compressed_bytes(), "~80-bit"};

  const bls12::Bls12Ctx& ctx = t3.params();
  rows[1] = Row{"type-3 BLS12-381 (reference)", "bls12-381",
                bench::time_ms(reps, [&] { (void)t3.issue_update(s3, tag); }),
                bench::time_ms(reps, [&] { (void)t3.verify_update(s3.pub, upd3); }),
                bench::time_ms(reps, [&] {
                  (void)t3.encrypt(msg, u3.pub, s3.pub, tag, rng, core::KeyCheck::kSkip);
                }),
                bench::time_ms(reps, [&] { (void)t3.decrypt(ct3, u3.a, upd3); }),
                bls12::Bls381Backend::gu_wire_bytes(ctx), upd3.to_bytes().size(),
                bls12::Bls381Backend::gh_wire_bytes(ctx), "~128-bit"};

  std::printf("%-32s | %8s | %9s | %8s | %8s | %9s | %9s | %s\n", "backend",
              "issue ms", "verify ms", "enc ms", "dec ms", "update B",
              "ct-hdr B", "security");
  std::printf("---------------------------------+----------+-----------+----------+----------+-----------+-----------+---------\n");
  for (const Row& row : rows) {
    std::printf("%-32s | %8.1f | %9.1f | %8.1f | %8.1f | %9zu | %9zu | %s\n",
                row.name, row.issue, row.verify, row.enc, row.dec,
                row.update_point_bytes, row.ct_header_bytes, row.security);
  }
  std::printf("\n(the BLS12 Miller loop runs untwisted over full F_p12 with no "
              "sparse-line shortcuts — production pairings are ~20-50x faster; "
              "the SIZE comparison is exact either way)\n");

  const char* json_path = argc > 1 ? argv[1] : "BENCH_modern_curve.json";
  if (std::FILE* f = std::fopen(json_path, "w")) {
    std::fprintf(f, "{\n  \"experiment\": \"E17_modern_curve\",\n");
    std::fprintf(f, "  \"message_bytes\": %zu,\n  \"reps\": %d,\n", msg.size(), reps);
    std::fprintf(f, "  \"backends\": [\n");
    for (size_t i = 0; i < 2; ++i) {
      const Row& r = rows[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"curve\": \"%s\", "
                   "\"security\": \"%s\", "
                   "\"issue_ms\": %.3f, \"verify_ms\": %.3f, "
                   "\"encrypt_ms\": %.3f, \"decrypt_ms\": %.3f, "
                   "\"update_point_bytes\": %zu, \"update_wire_bytes\": %zu, "
                   "\"ct_header_bytes\": %zu}%s\n",
                   r.name, r.curve, r.security, r.issue, r.verify, r.enc, r.dec,
                   r.update_point_bytes, r.update_wire_bytes, r.ct_header_bytes,
                   i + 1 < 2 ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "%s\n}\n", bench::metrics_json_field(2).c_str());
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}
