// E17: the 2005 instantiation vs the modern one.
//
// Same scheme, two GDH instantiations twenty years apart:
//   * type-1 supersingular curve, ~80-bit security (the paper's era);
//   * BLS12-381 type-3 pairing, ~128-bit security (what drand/tlock run
//     this very construction on today).
// The headline: the modern curve gives SHORTER updates (48-byte G_1
// points vs 64) at much higher security; our BLS12 pairing is a
// reference implementation (no sparse/cyclotomic optimizations), so its
// timings are upper bounds.
#include <cstdio>

#include "bench_util.h"
#include "bls12/tre381.h"
#include "core/tre.h"
#include "hashing/drbg.h"

int main() {
  using namespace tre;
  bench::header("E17: 2005 type-1 curve vs BLS12-381 type-3 (reference impl)",
                "the paper's scheme ports unchanged to modern asymmetric "
                "pairings; updates get SHORTER (48 B vs 64 B) while security "
                "rises from ~80 to ~128 bits");

  hashing::HmacDrbg rng(to_bytes("bench-e17"));
  Bytes msg = rng.bytes(256);
  const char* tag = "2030-01-01T00:00:00Z";

  // Type-1 (tre-512).
  core::TreScheme t1(params::load("tre-512"));
  core::ServerKeyPair s1 = t1.server_keygen(rng);
  core::UserKeyPair u1 = t1.user_keygen(s1.pub, rng);
  core::KeyUpdate upd1 = t1.issue_update(s1, tag);
  auto ct1 = t1.encrypt(msg, u1.pub, s1.pub, tag, rng, core::KeyCheck::kSkip);

  // Type-3 (BLS12-381).
  bls12::Tre381 t3;
  bls12::ServerKey381 s3 = t3.server_keygen(rng);
  bls12::UserKey381 u3 = t3.user_keygen(s3.pk, rng);
  bls12::Update381 upd3 = t3.issue_update(s3, tag);
  auto ct3 = t3.encrypt(msg, u3.a1, u3.a2, s3.pk, tag, rng);

  const int reps = 5;
  struct Row {
    const char* name;
    double issue, verify, enc, dec;
    size_t update_bytes, ct_overhead;
    const char* security;
  };
  Row rows[2];

  rows[0] = Row{"type-1 supersingular (tre-512)",
                bench::time_ms(reps, [&] { (void)t1.issue_update(s1, tag); }),
                bench::time_ms(reps, [&] { (void)t1.verify_update(s1.pub, upd1); }),
                bench::time_ms(reps, [&] {
                  (void)t1.encrypt(msg, u1.pub, s1.pub, tag, rng, core::KeyCheck::kSkip);
                }),
                bench::time_ms(reps, [&] { (void)t1.decrypt(ct1, u1.a, upd1); }),
                t1.params().g1_compressed_bytes(),
                t1.params().g1_compressed_bytes(),
                "~80-bit"};

  rows[1] = Row{"type-3 BLS12-381 (reference)",
                bench::time_ms(reps, [&] { (void)t3.issue_update(s3, tag); }),
                bench::time_ms(reps, [&] { (void)t3.verify_update(s3.pk, upd3); }),
                bench::time_ms(reps, [&] {
                  (void)t3.encrypt(msg, u3.a1, u3.a2, s3.pk, tag, rng);
                }),
                bench::time_ms(reps, [&] { (void)t3.decrypt(ct3, u3.a, upd3); }),
                t3.update_bytes(), t3.ciphertext_header_bytes(), "~128-bit"};

  std::printf("%-32s | %8s | %9s | %8s | %8s | %9s | %9s | %s\n", "backend",
              "issue ms", "verify ms", "enc ms", "dec ms", "update B",
              "ct-hdr B", "security");
  std::printf("---------------------------------+----------+-----------+----------+----------+-----------+-----------+---------\n");
  for (const Row& row : rows) {
    std::printf("%-32s | %8.1f | %9.1f | %8.1f | %8.1f | %9zu | %9zu | %s\n",
                row.name, row.issue, row.verify, row.enc, row.dec,
                row.update_bytes, row.ct_overhead, row.security);
  }
  std::printf("\n(the BLS12 Miller loop runs untwisted over full F_p12 with no "
              "sparse-line shortcuts — production pairings are ~20-50x faster; "
              "the SIZE comparison is exact either way)\n");
  return 0;
}
