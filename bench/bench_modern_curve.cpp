// E17: the 2005 instantiation vs the modern one — SAME generic core.
//
// Since the backend refactor both columns run the identical
// core::BasicTreScheme<B> code path; only the pairing backend differs:
//   * type-1 supersingular curve, ~80-bit security (the paper's era);
//   * BLS12-381 type-3 pairing, ~128-bit security (what drand/tlock run
//     this very construction on today).
// The headline: the modern curve gives SHORTER updates (49-byte G1
// points vs 65) at much higher security, and since the projective
// Miller loop + cyclotomic final exponentiation landed the 381 column
// is within a small factor of the 2005 curve instead of ~20x behind.
//
// Alongside the table the harness writes BENCH_modern_curve.json with
// the per-backend rows (including the pre-optimization `baseline_*`
// timings, pinned from the seed run so the speedup is auditable without
// digging through git), pairing-engine sub-timings (Miller loop vs
// final exponentiation, cold vs cached lines), and the global metrics
// registry snapshot, so the per-backend probe prefixes (core.* vs
// core.bls381.*) are visible in one artifact.
#include <cstdio>

#include "bench_util.h"
#include "bls12/tre381.h"
#include "core/tre.h"
#include "hashing/drbg.h"

int main(int argc, char** argv) {
  using namespace tre;
  bench::header("E17: 2005 type-1 curve vs BLS12-381 type-3 (fast engine)",
                "the paper's scheme ports unchanged to modern asymmetric "
                "pairings; updates get SHORTER (49 B vs 65 B) while security "
                "rises from ~80 to ~128 bits");

  hashing::HmacDrbg rng(to_bytes("bench-e17"));
  Bytes msg = rng.bytes(256);
  const char* tag = "2030-01-01T00:00:00Z";

  // Type-1 (tre-512) through the generic core.
  core::TreScheme t1(params::load("tre-512"));
  core::ServerKeyPair s1 = t1.server_keygen(rng);
  core::UserKeyPair u1 = t1.user_keygen(s1.pub, rng);
  core::KeyUpdate upd1 = t1.issue_update(s1, tag);
  auto ct1 = t1.encrypt(msg, u1.pub, s1.pub, tag, rng, core::KeyCheck::kSkip);

  // Type-3 (BLS12-381) through the SAME generic core.
  bls12::Tre381Scheme t3 = bls12::make_tre381();
  bls12::ServerKey381 s3 = t3.server_keygen(rng);
  bls12::UserKey381 u3 = t3.user_keygen(s3.pub, rng);
  bls12::Update381 upd3 = t3.issue_update(s3, tag);
  auto ct3 = t3.encrypt(msg, u3.pub, s3.pub, tag, rng, core::KeyCheck::kSkip);

  // Warm every memo cache (tag hashes, Miller lines, pair bases, combs)
  // before timing: the table documents steady-state costs, matching the
  // "warm caches" convention of docs/PERF.md. With the fast engine the
  // per-op costs are single-digit milliseconds, so the rep count is high
  // enough that a stray scheduler blip does not dominate the mean.
  (void)t1.verify_update(s1.pub, upd1);
  (void)t1.decrypt(ct1, u1.a, upd1);
  (void)t3.verify_update(s3.pub, upd3);
  (void)t3.decrypt(ct3, u3.a, upd3);

  const int reps = 20;
  // The seed tree's timings (affine F_p12 Miller loop, generic
  // final-exponentiation power, double-and-add ladders) on this same
  // harness — the denominators of the speedup line below.
  struct Baseline {
    double issue, verify, enc, dec;
  };
  const Baseline kBaseline512{0.642, 3.571, 0.324, 6.694};
  const Baseline kBaseline381{0.854, 77.137, 13.352, 66.572};

  struct Row {
    const char* name;
    const char* curve;
    double issue, verify, enc, dec;
    Baseline baseline;
    size_t update_point_bytes, update_wire_bytes, ct_header_bytes;
    const char* security;
  };
  Row rows[2];

  rows[0] = Row{"type-1 supersingular (tre-512)", "tre-512",
                bench::time_ms(reps, [&] { (void)t1.issue_update(s1, tag); }),
                bench::time_ms(reps, [&] { (void)t1.verify_update(s1.pub, upd1); }),
                bench::time_ms(reps, [&] {
                  (void)t1.encrypt(msg, u1.pub, s1.pub, tag, rng, core::KeyCheck::kSkip);
                }),
                bench::time_ms(reps, [&] { (void)t1.decrypt(ct1, u1.a, upd1); }),
                kBaseline512, t1.params().g1_compressed_bytes(),
                upd1.to_bytes().size(), t1.params().g1_compressed_bytes(),
                "~80-bit"};

  const bls12::Bls12Ctx& ctx = t3.params();
  rows[1] = Row{"type-3 BLS12-381 (fast)", "bls12-381",
                bench::time_ms(reps, [&] { (void)t3.issue_update(s3, tag); }),
                bench::time_ms(reps, [&] { (void)t3.verify_update(s3.pub, upd3); }),
                bench::time_ms(reps, [&] {
                  (void)t3.encrypt(msg, u3.pub, s3.pub, tag, rng, core::KeyCheck::kSkip);
                }),
                bench::time_ms(reps, [&] { (void)t3.decrypt(ct3, u3.a, upd3); }),
                kBaseline381, bls12::Bls381Backend::gu_wire_bytes(ctx),
                upd3.to_bytes().size(), bls12::Bls381Backend::gh_wire_bytes(ctx),
                "~128-bit"};

  // Pairing-engine sub-timings (the anatomy of one ê(P, Q)): the Miller
  // loop and final exponentiation separately, plus the line-cache effect
  // on a full pairing against a fixed Q.
  bls12::G1Point381 bp = ctx.hash_to_g1(to_bytes("bench-pair-sub"));
  const bls12::G2Point381& bq = ctx.g2_generator();
  auto prepared = ctx.prepare_g2(bq);
  double prep_ms = bench::time_ms(reps, [&] { (void)ctx.prepare_g2(bq); });
  double miller_ms =
      bench::time_ms(reps, [&] { (void)ctx.miller_loop(bp, *prepared); });
  bls12::Fp12 mval = ctx.miller_loop(bp, *prepared);
  double fexp_ms =
      bench::time_ms(reps, [&] { (void)ctx.final_exponentiation(mval); });
  double pair_ms = bench::time_ms(reps, [&] { (void)ctx.pair(bp, bq); });
  double pair_cached_ms =
      bench::time_ms(reps, [&] { (void)ctx.pair_cached(bp, bq); });

  std::printf("%-32s | %8s | %9s | %8s | %8s | %9s | %9s | %s\n", "backend",
              "issue ms", "verify ms", "enc ms", "dec ms", "update B",
              "ct-hdr B", "security");
  std::printf("---------------------------------+----------+-----------+----------+----------+-----------+-----------+---------\n");
  for (const Row& row : rows) {
    std::printf("%-32s | %8.1f | %9.1f | %8.1f | %8.1f | %9zu | %9zu | %s\n",
                row.name, row.issue, row.verify, row.enc, row.dec,
                row.update_point_bytes, row.ct_header_bytes, row.security);
  }
  std::printf("\nbls12-381 speedup vs seed engine: verify %.1fx, encrypt %.1fx, "
              "decrypt %.1fx\n",
              kBaseline381.verify / rows[1].verify,
              kBaseline381.enc / rows[1].enc, kBaseline381.dec / rows[1].dec);
  std::printf("pairing anatomy: prepare_g2 %.2f ms, miller %.2f ms, "
              "final_exp %.2f ms, pair %.2f ms, pair(cached lines) %.2f ms\n",
              prep_ms, miller_ms, fexp_ms, pair_ms, pair_cached_ms);

  const char* json_path = argc > 1 ? argv[1] : "BENCH_modern_curve.json";
  if (std::FILE* f = std::fopen(json_path, "w")) {
    std::fprintf(f, "{\n  \"experiment\": \"E17_modern_curve\",\n");
    std::fprintf(f, "  \"message_bytes\": %zu,\n  \"reps\": %d,\n", msg.size(), reps);
    std::fprintf(f, "  \"backends\": [\n");
    for (size_t i = 0; i < 2; ++i) {
      const Row& r = rows[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"curve\": \"%s\", "
                   "\"security\": \"%s\", "
                   "\"issue_ms\": %.3f, \"verify_ms\": %.3f, "
                   "\"encrypt_ms\": %.3f, \"decrypt_ms\": %.3f, "
                   "\"baseline_issue_ms\": %.3f, \"baseline_verify_ms\": %.3f, "
                   "\"baseline_encrypt_ms\": %.3f, \"baseline_decrypt_ms\": %.3f, "
                   "\"update_point_bytes\": %zu, \"update_wire_bytes\": %zu, "
                   "\"ct_header_bytes\": %zu}%s\n",
                   r.name, r.curve, r.security, r.issue, r.verify, r.enc, r.dec,
                   r.baseline.issue, r.baseline.verify, r.baseline.enc,
                   r.baseline.dec, r.update_point_bytes, r.update_wire_bytes,
                   r.ct_header_bytes, i + 1 < 2 ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"pairing_anatomy_bls381\": {\"prepare_g2_ms\": %.3f, "
                 "\"miller_loop_ms\": %.3f, \"final_exp_ms\": %.3f, "
                 "\"pair_ms\": %.3f, \"pair_cached_ms\": %.3f},\n",
                 prep_ms, miller_ms, fexp_ms, pair_ms, pair_cached_ms);
    std::fprintf(f, "%s\n}\n", bench::metrics_json_field(2).c_str());
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}
