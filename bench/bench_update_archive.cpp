// E7: missed updates are recoverable from the public archive (§3, §6) —
// archive cost at realistic scale. 10^6 minute-granularity updates cover
// almost two years of operation.
//
// Update signatures are synthesized (one real signature reused under
// distinct tags): the archive's cost model depends only on entry count
// and wire size, not on signature values.
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "hashing/drbg.h"
#include "timeserver/archive.h"
#include "timeserver/timespec.h"

namespace {

// Catch-up validation: individual verifies vs one randomized batch.
void batch_verify_comparison() {
  using namespace tre;
  auto params = params::load("tre-512");
  core::TreScheme scheme(params);
  hashing::HmacDrbg rng(to_bytes("bench-e7-batch"));
  core::ServerKeyPair server = scheme.server_keygen(rng);

  std::printf("\ncatch-up validation of n real updates (tre-512):\n");
  std::printf("%-6s | %14s | %16s | %8s\n", "n", "per-update ms",
              "batch-verify ms", "speedup");
  std::printf("-------+----------------+------------------+----------\n");
  for (size_t n : {8u, 32u, 128u}) {
    std::vector<core::KeyUpdate> updates;
    for (size_t i = 0; i < n; ++i) {
      updates.push_back(scheme.issue_update(server, "t" + std::to_string(i)));
    }
    double individual_ms = bench::time_ms(1, [&] {
      for (const auto& upd : updates) {
        if (!scheme.verify_update(server.pub, upd)) std::abort();
      }
    });
    double batch_ms = bench::time_ms(1, [&] {
      if (!server::verify_update_batch(params, server.pub, updates, rng)) std::abort();
    });
    std::printf("%-6zu | %14.1f | %16.1f | %7.1fx\n", n, individual_ms, batch_ms,
                individual_ms / batch_ms);
  }
  std::printf("(batch = 2 pairings + 2n short scalar mults; per-update = 2n "
              "pairings)\n");
}

}  // namespace

int main() {
  using namespace tre;
  bench::header("E7: update archive lookup/catch-up vs size (tre-toy-96)",
                "a receiver that missed any number of updates recovers with "
                "one lookup in the server's public list (§3); archive grows "
                "linearly in elapsed time only — never in users");

  auto params = params::load("tre-toy-96");
  core::TreScheme scheme(params);
  hashing::HmacDrbg rng(to_bytes("bench-e7"));
  core::ServerKeyPair server = scheme.server_keygen(rng);
  core::KeyUpdate proto = scheme.issue_update(server, "proto");

  std::printf("%-10s | %12s | %12s | %14s | %14s\n", "updates", "insert ms",
              "lookup us", "catch-up ms", "stored bytes");
  std::printf("-----------+--------------+--------------+----------------+--------------\n");

  for (size_t n : {1000u, 10000u, 100000u, 1000000u}) {
    server::UpdateArchive archive;
    server::TimeSpec t = server::TimeSpec::from_unix(0, server::Granularity::kMinute);

    double insert_ms = bench::time_ms(1, [&] {
      server::TimeSpec cur = t;
      for (size_t i = 0; i < n; ++i) {
        archive.put(core::KeyUpdate{cur.canonical(), proto.sig});
        cur = cur.next();
      }
    });

    // Random-ish lookups across the range.
    server::TimeSpec probe = server::TimeSpec::from_unix(
        static_cast<std::int64_t>(n / 2) * 60, server::Granularity::kMinute);
    double lookup_us =
        1000.0 * bench::time_ms(10000, [&] { (void)archive.find(probe.canonical()); });

    // A receiver offline for the last 10% of the range catches up.
    size_t cursor = n - n / 10;
    double catchup_ms = bench::time_ms(1, [&] {
      size_t c = cursor;
      (void)archive.since(c);
    });

    std::printf("%-10zu | %12.1f | %12.3f | %14.2f | %14zu\n", n, insert_ms,
                lookup_us, catchup_ms, archive.total_bytes());
  }
  std::printf("\n(one year of minute updates = 525600 entries; lookups stay O(1))\n");
  batch_verify_comparison();
  return 0;
}
