// E5: multi-server TRE (§5.3.5) — trust amplification cost vs N servers.
//
// Encryption stays a single pairing (the combined key); ciphertext size
// and decryption cost grow linearly, which is the expected price of
// requiring collusion of all N servers.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/multiserver.h"
#include "hashing/drbg.h"

int main() {
  using namespace tre;
  bench::header("E5: multi-server TRE cost vs N servers (tre-512)",
                "decryption needs all N updates; ciphertext and decrypt "
                "scale linearly in N, encryption stays ~1 pairing (§5.3.5)");

  auto params = params::load("tre-512");
  core::MultiServerTre mstre(params);
  core::TreScheme scheme(params);
  hashing::HmacDrbg rng(to_bytes("bench-e5"));
  const char* tag = "2030-01-01T00:00:00Z";
  Bytes msg = rng.bytes(256);

  std::printf("%-4s | %10s | %10s | %10s | %12s\n", "N", "enc ms", "dec ms",
              "ct bytes", "key verify ms");
  std::printf("-----+------------+------------+------------+--------------\n");

  for (size_t n : {1u, 2u, 3u, 4u, 6u, 8u}) {
    std::vector<core::ServerKeyPair> servers;
    std::vector<core::ServerPublicKey> pubs;
    for (size_t i = 0; i < n; ++i) {
      servers.push_back(scheme.server_keygen(rng));
      pubs.push_back(servers.back().pub);
    }
    core::Scalar a = params::random_scalar(*params, rng);
    core::MultiServerUserKey user = mstre.user_key(a, pubs);
    std::vector<core::KeyUpdate> updates;
    for (const auto& s : servers) updates.push_back(scheme.issue_update(s, tag));

    auto ct = mstre.encrypt(msg, user, pubs, tag, rng);
    double verify_ms =
        bench::time_ms(3, [&] { (void)mstre.verify_user_key(user, pubs); });
    double enc_ms =
        bench::time_ms(3, [&] { (void)mstre.encrypt(msg, user, pubs, tag, rng); });
    double dec_ms = bench::time_ms(3, [&] { (void)mstre.decrypt(ct, a, updates); });
    std::printf("%-4zu | %10.2f | %10.2f | %10zu | %12.2f\n", n, enc_ms, dec_ms,
                ct.to_bytes().size(), verify_ms);
  }
  std::printf("\n(enc includes the per-message user-key verification of N pairing "
              "equations; the K-derivation itself is one pairing at any N)\n");
  return 0;
}
