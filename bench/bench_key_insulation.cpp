// E6: key insulation "for free" (§5.3.3) — the safe-device derivation
// cost and the insulated decryption path vs direct decryption.
#include <cstdio>

#include "bench_util.h"
#include "core/tre.h"
#include "hashing/drbg.h"

int main() {
  using namespace tre;
  bench::header("E6: key insulation (tre-512)",
                "per-epoch keys cost one scalar multiplication on the safe "
                "device; insulated decryption is no slower than direct "
                "(it skips the Gt exponentiation) (§5.3.3)");

  core::TreScheme scheme(params::load("tre-512"));
  hashing::HmacDrbg rng(to_bytes("bench-e6"));
  core::ServerKeyPair server = scheme.server_keygen(rng);
  core::UserKeyPair user = scheme.user_keygen(server.pub, rng);
  const char* tag = "2030-01-01";
  core::KeyUpdate update = scheme.issue_update(server, tag);
  Bytes msg = rng.bytes(256);
  core::Ciphertext ct = scheme.encrypt(msg, user.pub, server.pub, tag, rng);
  core::EpochKey ek = scheme.derive_epoch_key(user.a, update);

  const int reps = 20;
  double derive_ms =
      bench::time_ms(reps, [&] { (void)scheme.derive_epoch_key(user.a, update); });
  double direct_ms =
      bench::time_ms(reps, [&] { (void)scheme.decrypt(ct, user.a, update); });
  double insulated_ms =
      bench::time_ms(reps, [&] { (void)scheme.decrypt_with_epoch_key(ct, ek); });

  std::printf("%-44s %10.3f ms\n", "safe-device epoch-key derivation (per epoch):",
              derive_ms);
  std::printf("%-44s %10.3f ms\n", "direct decryption (secret key on device):",
              direct_ms);
  std::printf("%-44s %10.3f ms\n", "insulated decryption (epoch key only):",
              insulated_ms);
  std::printf("\ninsulated path is %.0f%% of the direct cost; the long-term key "
              "never touches the decryption device\n",
              100.0 * insulated_ms / direct_ms);
  return 0;
}
