// E1 (part 2): every TRE protocol operation at the default (tre-512)
// parameter set — the practicality claim of §5.1/§5.3.1.
#include <benchmark/benchmark.h>

#include "core/tre.h"
#include "hashing/drbg.h"

namespace {

using namespace tre;

struct SchemeFixture {
  core::TreScheme scheme{params::load("tre-512")};
  hashing::HmacDrbg rng{to_bytes("bench-tre-ops")};
  core::ServerKeyPair server = scheme.server_keygen(rng);
  core::UserKeyPair user = scheme.user_keygen(server.pub, rng);
  core::KeyUpdate update = scheme.issue_update(server, "2030-01-01T00:00:00Z");
  Bytes msg = rng.bytes(256);
  core::Ciphertext ct =
      scheme.encrypt(msg, user.pub, server.pub, "2030-01-01T00:00:00Z", rng);
};

SchemeFixture& fx() {
  static SchemeFixture f;
  return f;
}

void BM_ServerKeygen(benchmark::State& state) {
  auto& f = fx();
  for (auto _ : state) benchmark::DoNotOptimize(f.scheme.server_keygen(f.rng));
}
BENCHMARK(BM_ServerKeygen)->Unit(benchmark::kMillisecond);

void BM_UserKeygen(benchmark::State& state) {
  auto& f = fx();
  for (auto _ : state) benchmark::DoNotOptimize(f.scheme.user_keygen(f.server.pub, f.rng));
}
BENCHMARK(BM_UserKeygen)->Unit(benchmark::kMillisecond);

void BM_VerifyUserKey(benchmark::State& state) {
  auto& f = fx();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.scheme.verify_user_public_key(f.server.pub, f.user.pub));
  }
}
BENCHMARK(BM_VerifyUserKey)->Unit(benchmark::kMillisecond);

void BM_IssueUpdate(benchmark::State& state) {
  auto& f = fx();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.scheme.issue_update(f.server, "2030-01-01T00:00:00Z"));
  }
}
BENCHMARK(BM_IssueUpdate)->Unit(benchmark::kMillisecond);

void BM_VerifyUpdate(benchmark::State& state) {
  auto& f = fx();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.scheme.verify_update(f.server.pub, f.update));
  }
}
BENCHMARK(BM_VerifyUpdate)->Unit(benchmark::kMillisecond);

void BM_EncryptWithKeyCheck(benchmark::State& state) {
  auto& f = fx();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.scheme.encrypt(f.msg, f.user.pub, f.server.pub,
                                              "2030-01-01T00:00:00Z", f.rng,
                                              core::KeyCheck::kVerify));
  }
}
BENCHMARK(BM_EncryptWithKeyCheck)->Unit(benchmark::kMillisecond);

void BM_EncryptKeyPrechecked(benchmark::State& state) {
  auto& f = fx();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.scheme.encrypt(f.msg, f.user.pub, f.server.pub,
                                              "2030-01-01T00:00:00Z", f.rng,
                                              core::KeyCheck::kSkip));
  }
}
BENCHMARK(BM_EncryptKeyPrechecked)->Unit(benchmark::kMillisecond);

void BM_Decrypt(benchmark::State& state) {
  auto& f = fx();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.scheme.decrypt(f.ct, f.user.a, f.update));
  }
}
BENCHMARK(BM_Decrypt)->Unit(benchmark::kMillisecond);

void BM_DeriveEpochKey(benchmark::State& state) {
  auto& f = fx();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.scheme.derive_epoch_key(f.user.a, f.update));
  }
}
BENCHMARK(BM_DeriveEpochKey)->Unit(benchmark::kMillisecond);

void BM_DecryptWithEpochKey(benchmark::State& state) {
  auto& f = fx();
  core::EpochKey ek = f.scheme.derive_epoch_key(f.user.a, f.update);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.scheme.decrypt_with_epoch_key(f.ct, ek));
  }
}
BENCHMARK(BM_DecryptWithEpochKey)->Unit(benchmark::kMillisecond);

void BM_RebindUserKey(benchmark::State& state) {
  auto& f = fx();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.scheme.rebind_user_key(f.user.a, f.server.pub));
  }
}
BENCHMARK(BM_RebindUserKey)->Unit(benchmark::kMillisecond);

void BM_VerifyReboundKey(benchmark::State& state) {
  auto& f = fx();
  core::UserPublicKey rebound = f.scheme.rebind_user_key(f.user.a, f.server.pub);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.scheme.verify_rebound_key(f.user.pub.ag, f.server.pub.g,
                                                         f.server.pub, rebound));
  }
}
BENCHMARK(BM_VerifyReboundKey)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
